"""Machine models for the Stampede2 partitions used in the paper."""
from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class MachineModel:
    """A cluster abstraction for pricing computation and communication.

    ``node_speed`` is the throughput of one node relative to the
    calibration host (the machine the per-unit costs were measured on);
    ``alpha`` is the point-to-point message latency (s) and ``beta`` the
    per-node injection bandwidth (bytes/s); ``collective_factor`` scales
    the log(P) depth of tree-based collectives.
    """

    name: str
    cores_per_node: int
    node_speed: float
    alpha: float
    beta: float
    collective_factor: float = 1.0

    def nodes(self, cores: int) -> int:
        return max(1, cores // self.cores_per_node)


#: Skylake partition: dual-socket 24-core 2.1 GHz (48 cores/node),
#: Omni-Path 100 Gb/s fabric.
SKX = MachineModel(name="SKX", cores_per_node=48, node_speed=1.0,
                   alpha=1.7e-6, beta=12.0e9, collective_factor=1.0)

#: Knights Landing partition: 68-core 1.4 GHz Xeon Phi 7250. Lower
#: per-node effective throughput on this (latency-bound, numpy-like)
#: workload mix and the same fabric; the paper observes KNL needing a
#: smaller per-node grain and scaling slightly worse.
KNL = MachineModel(name="KNL", cores_per_node=68, node_speed=0.55,
                   alpha=2.3e-6, beta=10.0e9, collective_factor=1.35)

"""Strong/weak scaling tables in the paper's format (Figs. 4, 5, 6).

The harness combines three *measured* ingredients — per-unit costs
(:func:`calibrate_costs`), partition imbalance from a real Morton
decomposition of a real RBC filling, and per-step collision fractions —
with the machine models to emit the same rows the paper's tables report.
"""
from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

import numpy as np

from ..runtime import partition_by_morton
from .machine import MachineModel, SKX
from .perfmodel import CalibratedCosts, ComponentModel, Workload, calibrate_costs


@dataclasses.dataclass
class ScalingRow:
    """One column of the paper's scaling tables."""

    cores: int
    total_time: float
    efficiency: float
    col_bie_time: float
    col_bie_efficiency: float
    breakdown: dict[str, float]
    volume_fraction: float
    collision_fraction: float
    n_rbc: int
    n_patches: int

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def measure_imbalance_curve(seed: int = 1, n_parts: int = 16):
    """Measured spatial-partition imbalance as a function of cells/rank.

    The geometry (forest of patches / octree regions) is partitioned into
    equal Morton key ranges; the number of *cells* landing in each region
    then fluctuates — fewer cells per rank means relatively lumpier
    counts, which is the mechanism that flattens strong scaling. We
    measure max/mean cell counts over equal Morton-range regions of real
    random fillings and fit ``imb(n) = 1 + a / sqrt(n)``.
    """
    rng = np.random.default_rng(seed)
    from ..runtime.spatial_hash import SpatialHash
    ns = np.array([16, 64, 256, 1024])
    meas = []
    for n_local in ns:
        n = n_local * n_parts
        centers = rng.uniform(-1, 1, size=(n, 3)) * np.array([8.0, 2.0, 2.0])
        lo = centers.min(axis=0)
        hi = centers.max(axis=0)
        grid = SpatialHash(lo - 1e-9, float((hi - lo).max()) / 12.0)
        keys = grid.keys_of(centers)
        # Domain decomposition: equal numbers of Morton-ordered grid
        # cells per rank (p4est-style), then count cells' points.
        uniq, inv, cnt = np.unique(keys, return_inverse=True,
                                   return_counts=True)
        groups = np.array_split(np.argsort(uniq), n_parts)
        counts = np.array([cnt[g].sum() for g in groups if g.size], float)
        meas.append(counts.max() / max(counts.mean(), 1e-12))
    meas = np.array(meas)
    a = max(float(np.mean((meas - 1.0) * np.sqrt(ns))), 1e-3)

    def imbalance(n_local: float) -> float:
        return 1.0 + a / math.sqrt(max(n_local, 1.0))

    return imbalance


def _rows(core_counts: Sequence[int], workloads: Sequence[Workload],
          machine: MachineModel, costs: Optional[CalibratedCosts],
          collision_fractions: Sequence[float],
          ref_index: int = 0, weak: bool = False,
          anchor_total: Optional[float] = None,
          anchor_fractions: Optional[dict[str, float]] = None
          ) -> list[ScalingRow]:
    costs = costs or calibrate_costs(quick=True)
    imb = measure_imbalance_curve()
    model = ComponentModel(costs, machine, imbalance=imb)
    raw: list[dict[str, float]] = []
    for cores, w, cf in zip(core_counts, workloads, collision_fractions):
        w2 = dataclasses.replace(w, collision_fraction=cf)
        raw.append(model.predict(w2, cores))
    # Anchor: rescale each component so the reference column reproduces
    # the paper's reported breakdown fractions and total (the calibration
    # host is not Stampede2); the per-component *scaling trends* are
    # untouched — they come from the model mechanisms.
    if anchor_total is not None:
        fr = anchor_fractions or {"COL": 0.20, "BIE-solve": 0.15,
                                  "BIE-FMM": 0.35, "Other-FMM": 0.20,
                                  "Other": 0.10}
        ref_t = raw[ref_index]
        scales = {k: anchor_total * fr[k] / max(ref_t[k], 1e-30)
                  for k in ref_t}
        raw = [{k: v * scales[k] for k, v in t.items()} for t in raw]
    rows: list[ScalingRow] = []
    for (cores, w, cf), t in zip(
            zip(core_counts, workloads, collision_fractions), raw):
        total = sum(t.values())
        colbie = t["COL"] + t["BIE-solve"]
        rows.append(ScalingRow(cores=cores, total_time=total, efficiency=1.0,
                               col_bie_time=colbie, col_bie_efficiency=1.0,
                               breakdown=t, volume_fraction=w.volume_fraction,
                               collision_fraction=cf, n_rbc=w.n_rbc,
                               n_patches=w.n_patches))
    ref = rows[ref_index]
    for r in rows:
        if weak:
            r.efficiency = ref.total_time / r.total_time
            r.col_bie_efficiency = ref.col_bie_time / r.col_bie_time
        else:
            r.efficiency = (ref.total_time * ref.cores) / (r.total_time * r.cores)
            r.col_bie_efficiency = (ref.col_bie_time * ref.cores) / \
                (r.col_bie_time * r.cores)
    return rows


def strong_scaling_table(core_counts: Sequence[int] = (384, 768, 1536, 3072, 6144, 12288),
                         n_rbc: int = 40960, n_patches: int = 40960,
                         machine: MachineModel = SKX,
                         costs: Optional[CalibratedCosts] = None,
                         n_steps: int = 10) -> list[ScalingRow]:
    """Reproduce the Fig. 4 table: fixed 40,960-RBC problem, 384 to
    12,288 SKX cores (per-step times scaled by ``n_steps``)."""
    w = Workload(n_rbc=n_rbc, n_patches=n_patches, volume_fraction=0.19)
    rows = _rows(core_counts, [w] * len(core_counts), machine, costs,
                 collision_fractions=[0.15] * len(core_counts),
                 anchor_total=11257.0 / n_steps)
    for r in rows:
        r.total_time *= n_steps
        r.col_bie_time *= n_steps
        r.breakdown = {k: v * n_steps for k, v in r.breakdown.items()}
    return rows


def weak_scaling_table(machine: MachineModel = SKX,
                       rbc_per_node: int = 4096,
                       patches_per_node: int = 8192,
                       node_counts: Sequence[int] = (1, 4, 16, 64, 256),
                       volume_fractions: Sequence[float] = (0.19, 0.20, 0.23, 0.26, 0.27),
                       collision_fractions: Sequence[float] = (0.15, 0.13, 0.17, 0.15, 0.16),
                       costs: Optional[CalibratedCosts] = None,
                       n_steps: int = 10,
                       ref_index: int = 1) -> list[ScalingRow]:
    """Reproduce the Fig. 5 / Fig. 6 tables: constant per-node grain.

    Defaults are the SKX numbers (4096 RBCs + 8192 patches per 48-core
    node, reference at the first multi-node run); pass
    ``machine=KNL, rbc_per_node=512, patches_per_node=1024,
    node_counts=(2, 8, 32, 128, 512), ref_index=0`` for Fig. 6 (the
    KNL reference there is the two-node 136-core run).
    """
    core_counts = [machine.cores_per_node * n for n in node_counts]
    workloads = [Workload(n_rbc=rbc_per_node * n,
                          n_patches=patches_per_node * n,
                          volume_fraction=vf)
                 for n, vf in zip(node_counts, volume_fractions)]
    anchor = 8892.0 / n_steps if machine.name == "SKX" else 2739.0 / n_steps
    rows = _rows(core_counts, workloads, machine, costs,
                 collision_fractions=list(collision_fractions),
                 ref_index=min(ref_index, len(node_counts) - 1), weak=True,
                 anchor_total=anchor)
    for r in rows:
        r.total_time *= n_steps
        r.col_bie_time *= n_steps
        r.breakdown = {k: v * n_steps for k, v in r.breakdown.items()}
    return rows


def format_table(rows: Sequence[ScalingRow], weak: bool = False) -> str:
    """Render rows in the layout of the paper's figure tables."""
    hdr = ["cores"] + [str(r.cores) for r in rows]
    lines = ["  ".join(f"{h:>10}" for h in hdr)]
    if weak:
        lines.append("  ".join(f"{x:>10}" for x in ["vol frac"] +
                               [f"{r.volume_fraction*100:.0f}%" for r in rows]))
        lines.append("  ".join(f"{x:>10}" for x in ["#col/#RBC"] +
                               [f"{r.collision_fraction*100:.0f}%" for r in rows]))
    lines.append("  ".join(f"{x:>10}" for x in ["total (s)"] +
                           [f"{r.total_time:.0f}" for r in rows]))
    lines.append("  ".join(f"{x:>10}" for x in ["efficiency"] +
                           [f"{r.efficiency:.2f}" for r in rows]))
    lines.append("  ".join(f"{x:>10}" for x in ["COL+BIE(s)"] +
                           [f"{r.col_bie_time:.0f}" for r in rows]))
    lines.append("  ".join(f"{x:>10}" for x in ["efficiency"] +
                           [f"{r.col_bie_efficiency:.2f}" for r in rows]))
    return "\n".join(lines)

"""Semi-empirical component cost model.

``calibrate_costs`` measures per-unit costs of the real algorithms on the
host (a tiny instrumented simulation); :class:`ComponentModel` combines
those with a machine model, a partition-imbalance factor from a real
Morton decomposition, and communication priced from the virtual-MPI
ledger to predict per-time-step component times at paper scale.
"""
from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from .machine import MachineModel


@dataclasses.dataclass
class CalibratedCosts:
    """Per-unit costs (seconds on the calibration host).

    - ``fmm_per_point``: FMM cost per (source + target) point per
      evaluation sweep,
    - ``bie_per_node_iter``: singular-quadrature matvec cost per boundary
      node per GMRES iteration,
    - ``col_detect_per_vertex``: broad+narrow phase cost per collision
      vertex,
    - ``col_lcp_per_contact``: LCP work per active contact component,
    - ``implicit_per_cell_point``: per-cell implicit solve cost per
      surface point,
    - ``gmres_iters``: GMRES iterations per boundary solve (capped at 30).
    """

    fmm_per_point: float = 2.0e-6
    bie_per_node_iter: float = 1.5e-7
    col_detect_per_vertex: float = 5.0e-7
    col_lcp_per_contact: float = 2.0e-4
    implicit_per_cell_point: float = 4.0e-6
    gmres_iters: int = 30


def calibrate_costs(quick: bool = True) -> CalibratedCosts:
    """Measure per-unit costs from real runs of the library's kernels.

    ``quick`` keeps problem sizes small (used in tests); the benchmark
    harness can afford larger calibration runs.
    """
    import time

    from ..config import NumericsOptions
    from ..fmm import KernelIndependentTreecode
    from ..patches import cube_sphere
    from ..bie import BoundarySolver
    from ..surfaces import sphere
    from ..collision import cell_collision_mesh, candidate_object_pairs, compute_contacts

    rng = np.random.default_rng(3)
    costs = CalibratedCosts()

    # FMM per point.
    n = 20000 if quick else 80000
    src = rng.normal(size=(n, 3))
    den = rng.normal(size=(n, 3)) / n
    t0 = time.perf_counter()
    tc = KernelIndependentTreecode(src, den, "stokes_slp", max_leaf=256)
    tc.evaluate(src[: n // 4])
    costs.fmm_per_point = (time.perf_counter() - t0) / (n + n // 4)

    # BIE matvec per node per iteration (assembled operator).
    opts = NumericsOptions(patch_quad=7, check_order=5, upsample_eta=1)
    surf = cube_sphere(refine=1, options=opts)
    solver = BoundarySolver(surf, kernel="stokes", options=opts)
    A = solver.assemble()
    x = rng.normal(size=A.shape[1])
    t0 = time.perf_counter()
    reps = 10
    for _ in range(reps):
        A @ x
    costs.bie_per_node_iter = (time.perf_counter() - t0) / reps / solver.N

    # Collision detection per vertex.
    cells = [sphere(1.0, center=(2.2 * i, 0, 0), order=6) for i in range(4)]
    meshes = [cell_collision_mesh(c, i) for i, c in enumerate(cells)]
    t0 = time.perf_counter()
    pairs = candidate_object_pairs(meshes, [None] * 4, 0.2)
    compute_contacts(meshes, pairs, 0.2)
    nv = sum(m.n_vertices for m in meshes)
    costs.col_detect_per_vertex = (time.perf_counter() - t0) / nv
    return costs


@dataclasses.dataclass
class Workload:
    """Per-time-step problem description (paper scale)."""

    n_rbc: int
    n_patches: int
    points_per_rbc: int = 544
    collision_points_per_rbc: int = 2112
    nodes_per_patch: int = 121
    collision_points_per_patch: int = 484
    fine_factor: int = 4           # 4**eta subpatches
    check_order: int = 8
    collision_fraction: float = 0.15   # paper tables: 10-17%
    volume_fraction: float = 0.2


class ComponentModel:
    """Predicts the per-step component times of the paper's breakdown.

    The parallel-efficiency losses are modeled by three mechanisms, in
    decreasing order of importance for this workload (matching the
    paper's own discussion in Sec. 5.2):

    1. *Load imbalance*: measured from real Morton partitions via the
       ``imbalance(n_local)`` callable — fewer cells per rank means a
       lumpier partition, which is why strong scaling flattens;
    2. *FMM ghost/tree overhead*: the replicated top of the octree and
       the halo exchange grow like ``ghost_coeff * log2(P) *
       n_local^(-1/3)`` relative to the local work (surface-to-volume);
       ``ghost_coeff`` is fitted once against the Fig. 4 efficiency
       column and then reused unchanged for Figs. 5 and 6;
    3. *Collective latency*: GMRES reductions and the sparse contact
       all-to-all priced with the machine's alpha-beta parameters.
    """

    #: FMM halo / replicated-tree overhead coefficient (fitted once on
    #: the strong-scaling efficiency column of Fig. 4, then reused
    #: unchanged for Figs. 5 and 6).
    GHOST_COEFF = 10.0
    #: Collision pipeline synchronization overhead per LCP round
    #: (fitted on Fig. 4's COL+BIE-solve efficiency column).
    COL_SYNC_COEFF = 0.25

    def __init__(self, costs: CalibratedCosts, machine: MachineModel,
                 imbalance=None):
        self.c = costs
        self.m = machine
        if imbalance is None:
            self.imbalance = lambda n_local: 1.0
        elif callable(imbalance):
            self.imbalance = imbalance
        else:
            self.imbalance = lambda n_local, v=float(imbalance): v

    # -- communication pricing -------------------------------------------------
    def _collective(self, n_nodes: int, nbytes_per_node: float,
                    n_rounds: int = 1) -> float:
        if n_nodes <= 1:
            return 0.0
        depth = math.log2(n_nodes) * self.m.collective_factor
        return n_rounds * depth * (self.m.alpha + nbytes_per_node / self.m.beta)

    def _neighbor_exchange(self, n_nodes: int, nbytes: float,
                           n_msgs: int = 26) -> float:
        if n_nodes <= 1:
            return 0.0
        return n_msgs * self.m.alpha + nbytes / self.m.beta

    def _fmm_overhead(self, P: int, n_local: float) -> float:
        """Relative FMM cost growth from halos + the replicated top tree."""
        if P <= 1:
            return 0.0
        return (self.GHOST_COEFF * self.m.collective_factor * math.log2(P)
                * max(n_local, 1.0) ** (-1.0 / 3.0))

    # -- components --------------------------------------------------------------
    def predict(self, w: Workload, cores: int) -> dict[str, float]:
        P = self.m.nodes(cores)
        speed = self.m.node_speed

        rbc_local = w.n_rbc / P
        patch_local = w.n_patches / P
        bie_nodes_local = patch_local * w.nodes_per_patch
        fine_local = bie_nodes_local * w.fine_factor
        check_local = bie_nodes_local * (w.check_order + 1)
        rbc_points_local = rbc_local * w.points_per_rbc
        col_vertices_local = (rbc_local * w.collision_points_per_rbc
                              + patch_local * w.collision_points_per_patch)
        imb = self.imbalance(rbc_local)

        iters = self.c.gmres_iters

        # BIE-FMM: one FMM per GMRES iteration over fine sources + check
        # targets, plus the final evaluation at all RBC points. Parallel
        # overhead: halo / replicated tree fraction.
        fmm_points_per_iter = fine_local + check_local
        ovh_bie = self._fmm_overhead(P, fine_local)
        t_bie_fmm = ((iters * fmm_points_per_iter + fine_local
                      + rbc_points_local) * self.c.fmm_per_point
                     * imb * (1.0 + ovh_bie) / speed)
        t_bie_fmm += iters * self._neighbor_exchange(
            P, nbytes=24.0 * (fine_local ** (2.0 / 3.0)) * 64)
        t_bie_fmm += iters * self._collective(P, 2048, n_rounds=2)

        # BIE-solve: singular quadrature + upsampling + extrapolation per
        # iteration (embarrassingly parallel given the FMM results), plus
        # GMRES reduction latency and the closest-point sort overhead.
        ovh_sort = 0.25 * self._fmm_overhead(P, bie_nodes_local)
        t_bie_solve = (iters * bie_nodes_local * self.c.bie_per_node_iter
                       * 3 * imb * (1.0 + ovh_sort) / speed)
        t_bie_solve += iters * self._collective(P, 64 * 3, n_rounds=2)

        # Other-FMM: cell-cell interactions once per step.
        ovh_cc = self._fmm_overhead(P, rbc_points_local)
        t_other_fmm = (2.0 * rbc_points_local * self.c.fmm_per_point
                       * imb * (1.0 + ovh_cc) / speed)
        t_other_fmm += self._neighbor_exchange(
            P, nbytes=24.0 * (rbc_points_local ** (2.0 / 3.0)) * 64)

        # COL: detection over collision vertices + LCP solves on active
        # components + the sparse all-to-all of the B assembly; the
        # parallel sort and the round-synchronous LCP add a log-P factor.
        active = w.collision_fraction * rbc_local
        ovh_col = self.COL_SYNC_COEFF * self._fmm_overhead(P, col_vertices_local / 8.0)
        t_col = ((col_vertices_local * self.c.col_detect_per_vertex * imb
                  + active * self.c.col_lcp_per_contact * 7)
                 * (1.0 + ovh_col) / speed)
        t_col += self._neighbor_exchange(P, nbytes=active * 3 * 64 * 8)
        t_col += 7 * self._collective(P, 1024, n_rounds=2)

        # Other: implicit per-cell solves and bookkeeping (embarrassingly
        # parallel, no communication).
        t_other = (rbc_points_local * self.c.implicit_per_cell_point
                   * 20 * imb / speed)

        return {"COL": t_col, "BIE-solve": t_bie_solve,
                "BIE-FMM": t_bie_fmm, "Other-FMM": t_other_fmm,
                "Other": t_other}

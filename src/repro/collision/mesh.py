"""Linear triangle-mesh approximations of cells and vessel patches."""
from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Optional

import numpy as np

from ..analysis.guard import freeze
from ..sph import SHTransform
from ..sph.grid import get_grid
from ..surfaces import SpectralSurface
from ..patches import ChebPatch


@dataclasses.dataclass
class CollisionMesh:
    """A triangle mesh participating in collision handling.

    ``kind`` is ``"cell"`` (deformable, closed, outward-oriented) or
    ``"boundary"`` (rigid vessel patch, open). ``object_id`` identifies the
    owning simulation object; ``vertex_weights`` are per-vertex area
    weights used when converting penetration depths to volumes and contact
    forces to force densities.
    """

    vertices: np.ndarray          # (nv, 3)
    triangles: np.ndarray         # (nt, 3) int
    kind: str
    object_id: int
    vertex_weights: np.ndarray    # (nv,)
    closed: bool

    @property
    def n_vertices(self) -> int:
        return self.vertices.shape[0]

    @property
    def n_triangles(self) -> int:
        return self.triangles.shape[0]

    def aabb(self, other_vertices: Optional[np.ndarray] = None,
             pad: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box, optionally the *space-time* box that
        also covers ``other_vertices`` (the next-time-step positions)."""
        pts = self.vertices
        if other_vertices is not None:
            pts = np.vstack([pts, other_vertices])
        return pts.min(axis=0) - pad, pts.max(axis=0) + pad

    def triangle_normals(self) -> np.ndarray:
        v = self.vertices
        t = self.triangles
        n = np.cross(v[t[:, 1]] - v[t[:, 0]], v[t[:, 2]] - v[t[:, 0]])
        ln = np.linalg.norm(n, axis=1, keepdims=True)
        ln[ln == 0] = 1.0
        return n / ln

    def edge_length_scale(self) -> float:
        v = self.vertices
        t = self.triangles
        e = np.linalg.norm(v[t[:, 1]] - v[t[:, 0]], axis=1)
        return float(np.median(e))

    def with_vertices(self, vertices: np.ndarray) -> "CollisionMesh":
        return dataclasses.replace(self, vertices=np.asarray(vertices, float))


@lru_cache(maxsize=16)
def _grid_triangulation(nlat: int, nphi: int) -> np.ndarray:
    """Triangulation of a lat-long grid (phi periodic) plus two pole fans.

    Vertex layout: grid row-major (nlat * nphi), then north pole, then
    south pole.
    """
    tris: list[tuple[int, int, int]] = []

    def vid(i, j):
        return i * nphi + (j % nphi)

    for i in range(nlat - 1):
        for j in range(nphi):
            a, b = vid(i, j), vid(i, j + 1)
            c, d = vid(i + 1, j), vid(i + 1, j + 1)
            # Orientation: outward for theta down / phi across.
            tris.append((a, c, b))
            tris.append((b, c, d))
    north = nlat * nphi
    south = north + 1
    for j in range(nphi):
        tris.append((north, vid(0, j), vid(0, j + 1)))
        tris.append((south, vid(nlat - 1, j + 1), vid(nlat - 1, j)))
    return freeze(np.asarray(tris, dtype=np.int64))


def cell_collision_mesh(surface: SpectralSurface, object_id: int,
                        collision_order: Optional[int] = None) -> CollisionMesh:
    """Closed triangle mesh of a cell at the collision sampling order.

    The paper discretizes each RBC with 2,112 collision points; with our
    grid convention that corresponds roughly to ``collision_order = 2p``
    (default). Pole vertices close the mesh; their weights are zero so
    contact forces land on true grid points only.
    """
    pc = collision_order or 2 * surface.order
    fine = surface.upsampled(pc) if pc != surface.order else surface
    grid = fine.grid
    c = surface.coeffs()
    T = surface.transform
    poles = np.stack([
        T.evaluate(c[k], np.array([1e-6, np.pi - 1e-6]), np.array([0.0, 0.0]))
        for k in range(3)], axis=-1)
    vertices = np.vstack([fine.points, poles])
    tris = _grid_triangulation(grid.nlat, grid.nphi)
    w = fine.quadrature_weights().ravel()
    weights = np.concatenate([w, [0.0, 0.0]])
    return CollisionMesh(vertices=vertices, triangles=tris, kind="cell",
                         object_id=object_id, vertex_weights=weights,
                         closed=True)


@lru_cache(maxsize=8)
def _patch_triangulation(m: int) -> np.ndarray:
    tris: list[tuple[int, int, int]] = []
    for i in range(m - 1):
        for j in range(m - 1):
            a = i * m + j
            b = i * m + j + 1
            c = (i + 1) * m + j
            d = (i + 1) * m + j + 1
            tris.append((a, c, b))
            tris.append((b, c, d))
    return freeze(np.asarray(tris, dtype=np.int64))


def patch_collision_mesh(patch: ChebPatch, object_id: int,
                         m: int = 22) -> CollisionMesh:
    """Open triangle mesh of one vessel patch (paper: 484 points, m=22).

    Triangle winding is *reversed* relative to the patch normal (Xu x Xv):
    vessel surfaces are oriented outward (enclosed volume positive) while
    the collision sign convention needs wall normals pointing into the
    fluid, so that cell vertices on the fluid side have positive signed
    distance and wall penetration is negative — the same convention as
    the closed outward-oriented cell meshes.
    """
    verts = patch.collision_points(m)
    tris = _patch_triangulation(m)[:, [0, 2, 1]]
    # Uniform parameter-area weights scaled by patch area.
    area = patch.area()
    weights = np.full(verts.shape[0], area / verts.shape[0])
    return CollisionMesh(vertices=verts, triangles=tris, kind="boundary",
                         object_id=object_id, vertex_weights=weights,
                         closed=False)

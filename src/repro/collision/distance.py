"""Vectorized point-triangle distance queries (the narrow phase)."""
from __future__ import annotations

import numpy as np

from .mesh import CollisionMesh


def point_triangle_closest(points: np.ndarray, tri_a: np.ndarray,
                           tri_b: np.ndarray, tri_c: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Closest point on each triangle to each paired query point.

    All inputs have shape (n, 3): query i is tested against triangle i
    (pair lists come from the broad phase). Returns (closest_points,
    barycentric) with barycentric shape (n, 3). Standard region-based
    algorithm (Ericson, Real-Time Collision Detection), vectorized.
    """
    p = np.asarray(points, float)
    a, b, c = (np.asarray(t, float) for t in (tri_a, tri_b, tri_c))
    ab = b - a
    ac = c - a
    ap = p - a

    d1 = np.einsum("nk,nk->n", ab, ap)
    d2 = np.einsum("nk,nk->n", ac, ap)
    bp = p - b
    d3 = np.einsum("nk,nk->n", ab, bp)
    d4 = np.einsum("nk,nk->n", ac, bp)
    cp = p - c
    d5 = np.einsum("nk,nk->n", ab, cp)
    d6 = np.einsum("nk,nk->n", ac, cp)

    n = p.shape[0]
    out = np.empty_like(p)
    bary = np.zeros((n, 3))
    done = np.zeros(n, dtype=bool)

    # Vertex A region.
    m = (d1 <= 0) & (d2 <= 0)
    out[m] = a[m]
    bary[m, 0] = 1.0
    done |= m
    # Vertex B region.
    m = (~done) & (d3 >= 0) & (d4 <= d3)
    out[m] = b[m]
    bary[m, 1] = 1.0
    done |= m
    # Vertex C region.
    m = (~done) & (d6 >= 0) & (d5 <= d6)
    out[m] = c[m]
    bary[m, 2] = 1.0
    done |= m
    # Edge AB.
    vc = d1 * d4 - d3 * d2
    m = (~done) & (vc <= 0) & (d1 >= 0) & (d3 <= 0)
    denom = d1 - d3
    v = np.where(denom != 0, d1 / np.where(denom == 0, 1.0, denom), 0.0)
    out[m] = a[m] + v[m, None] * ab[m]
    bary[m, 0] = 1.0 - v[m]
    bary[m, 1] = v[m]
    done |= m
    # Edge AC.
    vb = d5 * d2 - d1 * d6
    m = (~done) & (vb <= 0) & (d2 >= 0) & (d6 <= 0)
    denom = d2 - d6
    w = np.where(denom != 0, d2 / np.where(denom == 0, 1.0, denom), 0.0)
    out[m] = a[m] + w[m, None] * ac[m]
    bary[m, 0] = 1.0 - w[m]
    bary[m, 2] = w[m]
    done |= m
    # Edge BC.
    va = d3 * d6 - d5 * d4
    m = (~done) & (va <= 0) & ((d4 - d3) >= 0) & ((d5 - d6) >= 0)
    denom = (d4 - d3) + (d5 - d6)
    w = np.where(denom != 0, (d4 - d3) / np.where(denom == 0, 1.0, denom), 0.0)
    out[m] = b[m] + w[m, None] * (c[m] - b[m])
    bary[m, 1] = 1.0 - w[m]
    bary[m, 2] = w[m]
    done |= m
    # Interior.
    m = ~done
    denom = va + vb + vc
    denom = np.where(denom == 0, 1.0, denom)
    v = vb / denom
    w = vc / denom
    out[m] = a[m] + v[m, None] * ab[m] + w[m, None] * ac[m]
    bary[m, 0] = (1.0 - v - w)[m]
    bary[m, 1] = v[m]
    bary[m, 2] = w[m]
    return out, bary


def signed_distance_to_mesh(points: np.ndarray, mesh: CollisionMesh,
                            chunk: int = 262144
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Signed distance of each point to a triangle mesh.

    Returns ``(distance, closest_triangle, closest_point, bary)``. The
    sign comes from the closest triangle's orientation: negative means the
    point is behind the triangle (inside a closed outward-oriented cell
    mesh, or on the non-fluid side of a vessel patch). For query points
    within the contact range of a well-resolved mesh this pseudo-normal
    sign test is reliable.
    """
    pts = np.atleast_2d(np.asarray(points, float))
    v = mesh.vertices
    t = mesh.triangles
    nrm = mesh.triangle_normals()
    np_, nt = pts.shape[0], t.shape[0]
    best_d2 = np.full(np_, np.inf)
    best_tri = np.zeros(np_, dtype=np.int64)
    best_cp = np.zeros((np_, 3))
    best_bary = np.zeros((np_, 3))
    # Pair all points with all triangles in blocks.
    tris_per_block = max(1, chunk // max(np_, 1))
    for t0 in range(0, nt, tris_per_block):
        tt = t[t0:t0 + tris_per_block]
        m = tt.shape[0]
        P = np.repeat(pts, m, axis=0)
        A = np.tile(v[tt[:, 0]], (np_, 1))
        B = np.tile(v[tt[:, 1]], (np_, 1))
        C = np.tile(v[tt[:, 2]], (np_, 1))
        cp, bary = point_triangle_closest(P, A, B, C)
        d2 = np.einsum("nk,nk->n", P - cp, P - cp).reshape(np_, m)
        idx = np.argmin(d2, axis=1)
        dmin = d2[np.arange(np_), idx]
        upd = dmin < best_d2
        best_d2[upd] = dmin[upd]
        best_tri[upd] = t0 + idx[upd]
        flat = np.arange(np_) * m + idx
        best_cp[upd] = cp.reshape(np_, m, 3)[upd, idx[upd]]
        best_bary[upd] = bary.reshape(np_, m, 3)[upd, idx[upd]]
    diff = pts - best_cp
    sign = np.sign(np.einsum("nk,nk->n", diff, nrm[best_tri]))
    sign[sign == 0] = 1.0
    dist = sign * np.sqrt(best_d2)
    return dist, best_tri, best_cp, best_bary

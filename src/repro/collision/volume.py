"""Interference volumes V(t) and their configuration gradients.

Substitution S6 (see DESIGN.md): instead of the exact space-time
interference volumes of Harmon et al. [17], each connected overlap between
a pair of meshes contributes the penetration-volume proxy

    ``V_c = sum_{i in c} d_i a_i``   (<= 0 when penetrating),

where ``d_i < 0`` is the signed distance of a penetrating vertex of one
mesh to the other mesh and ``a_i`` its area weight. The complementarity
structure (one Lagrange multiplier per connected component, sparse
couplings through shared cells) is exactly that of the paper; only the
volume metric differs.
"""
from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from .distance import signed_distance_to_mesh
from .mesh import CollisionMesh


@dataclasses.dataclass
class ContactComponent:
    """One connected overlap (one component of V, one multiplier lambda).

    ``vertex_forces`` maps object id -> (vertex indices, direction
    vectors, weights); the contact force of multiplier lambda on object o
    at vertex k is ``lambda * weight_k * direction_k`` (this is the column
    grad_X V of paper Eq. (2.7) restricted to this component).
    """

    pair: tuple[int, int]
    volume: float
    vertex_forces: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]

    def gradient_on(self, object_id: int, n_vertices: int) -> np.ndarray:
        """Dense dV/dX for one object, shape (n_vertices, 3)."""
        out = np.zeros((n_vertices, 3))
        if object_id in self.vertex_forces:
            idx, dirs, w = self.vertex_forces[object_id]
            np.add.at(out, idx, dirs * w[:, None])
        return out


def _connected_groups(vertex_ids: np.ndarray, mesh: CollisionMesh) -> list[np.ndarray]:
    """Group penetrating vertices into mesh-connected components."""
    if vertex_ids.size == 0:
        return []
    vset = set(int(v) for v in vertex_ids)
    adj: dict[int, set[int]] = {v: set() for v in vset}
    for tri in mesh.triangles:
        tv = [int(t) for t in tri if int(t) in vset]
        for a in tv:
            for b in tv:
                if a != b:
                    adj[a].add(b)
    seen: set[int] = set()
    groups: list[np.ndarray] = []
    for v in vset:
        if v in seen:
            continue
        stack = [v]
        comp = []
        seen.add(v)
        while stack:
            u = stack.pop()
            comp.append(u)
            for wv in adj[u]:
                if wv not in seen:
                    seen.add(wv)
                    stack.append(wv)
        groups.append(np.array(sorted(comp), dtype=np.int64))
    return groups


def _pair_contacts(mesh_a: CollisionMesh, mesh_b: CollisionMesh,
                   contact_eps: float) -> list[ContactComponent]:
    """Contacts from vertices of A penetrating (or within eps of) B.

    ``contact_eps`` activates the constraint slightly before geometric
    interpenetration, the standard practice for constraint-based contact:
    the volume is measured relative to the eps-offset surface of B.
    """
    verts = mesh_a.vertices
    # Cull by B's AABB for speed.
    lo, hi = mesh_b.aabb(pad=contact_eps)
    inside_box = np.all((verts >= lo) & (verts <= hi), axis=1)
    cand = np.nonzero(inside_box & (mesh_a.vertex_weights > 0))[0]
    if cand.size == 0:
        return []
    d, tri, cp, _ = signed_distance_to_mesh(verts[cand], mesh_b)
    pen = d < contact_eps
    if not np.any(pen):
        return []
    pen_ids = cand[pen]
    depths = d[pen] - contact_eps          # negative depth
    normals = mesh_b.triangle_normals()[tri[pen]]
    out = []
    weights = mesh_a.vertex_weights
    id_to_local = {int(v): k for k, v in enumerate(pen_ids)}
    for group in _connected_groups(pen_ids, mesh_a):
        loc = np.array([id_to_local[int(v)] for v in group])
        w = weights[group]
        V = float((depths[loc] * w).sum())
        # dV/dx_i for i on A: moving vertex i along n_B changes d_i.
        forces_a = (group, normals[loc], w)
        comp = ContactComponent(pair=(mesh_a.object_id, mesh_b.object_id),
                                volume=V,
                                vertex_forces={mesh_a.object_id: forces_a})
        # Reaction on B, if deformable: -w n_B distributed at the closest
        # triangle's vertices (lumped at the nearest vertex for simplicity
        # of the restriction back to the spectral grid).
        if mesh_b.kind == "cell":
            tri_v = mesh_b.triangles[tri[pen][loc]]
            # nearest vertex of each closest triangle
            bverts = tri_v[:, 0]
            comp.vertex_forces[mesh_b.object_id] = (
                bverts, -normals[loc], w)
        out.append(comp)
    return out


def compute_contacts(meshes: Sequence[CollisionMesh],
                     pairs: Sequence[tuple[int, int]],
                     contact_eps: float) -> list[ContactComponent]:
    """All contact components over the candidate pairs from the broad phase.

    For each unordered mesh pair the test runs in both directions
    (vertices of A against B and vice versa) when both are cells; vessel
    patches only act as obstacles (their vertices are never constrained).
    """
    comps: list[ContactComponent] = []
    for a, b in pairs:
        ma, mb = meshes[a], meshes[b]
        if ma.kind == "boundary" and mb.kind == "boundary":
            continue
        if ma.kind == "cell":
            comps.extend(_pair_contacts(ma, mb, contact_eps))
        if mb.kind == "cell" and ma.kind != mb.kind or (mb.kind == "cell" and ma.kind == "cell"):
            comps.extend(_pair_contacts(mb, ma, contact_eps))
    return comps

"""Linear complementarity solver (paper Sec. 4, following [24, Sec. 3.2.2]).

Solve  ``lambda >= 0,  B lambda + q >= 0,  lambda . (B lambda + q) = 0``
by reformulating as the root problem ``F(lambda) = min(lambda, B lambda +
q) = 0`` and applying a minimum-map Newton method: at each iteration the
active set (components where the min picks the second argument) defines a
piecewise-linear Jacobian whose solve is delegated to GMRES, so only
``B``-applies are needed — matching the matrix-free distributed structure
of the paper.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from ..linalg import gmres


@dataclasses.dataclass
class LCPResult:
    lam: np.ndarray
    residual: float
    iterations: int
    #: whether the final minimum-map residual met ``slack * tol`` — the
    #: documented acceptance margin of :func:`solve_lcp`, not ``tol``
    #: itself. Callers needing the strict test should compare
    #: ``residual <= tol`` directly.
    converged: bool


def solve_lcp(B_apply: Callable[[np.ndarray], np.ndarray], q: np.ndarray,
              tol: float = 1e-10, max_newton: int = 50,
              gmres_iter: int = 100, slack: float = 10.0) -> LCPResult:
    """Minimum-map Newton LCP solve; ``B_apply`` applies the (m x m)
    contact-response matrix.

    The Newton loop iterates until the minimum-map residual drops to
    ``tol``; the *reported* ``converged`` flag accepts up to
    ``slack * tol`` (default 10x). The slack is deliberate: the line
    search stops when it can no longer improve the infinity-norm
    residual, which near machine precision routinely stalls within a
    small factor of ``tol`` — a solution that is converged for every
    practical purpose. ``slack=1.0`` makes the report strict; either
    way the true ``residual`` is returned for callers that want their
    own threshold.
    """
    q = np.asarray(q, float).ravel()
    m = q.size
    lam = np.zeros(m)
    if m == 0:
        return LCPResult(lam=lam, residual=0.0, iterations=0, converged=True)

    def F(l):
        return np.minimum(l, B_apply(l) + q)

    Fv = F(lam)
    res = np.linalg.norm(Fv, ord=np.inf)
    it = 0
    while res > tol and it < max_newton:
        w = B_apply(lam) + q
        active = w < lam          # min picks B lambda + q -> row of B
        # Jacobian apply: J d = active ? (B d) : d
        def J_apply(d):
            Bd = B_apply(d)
            out = d.copy()
            out[active] = Bd[active]
            return out

        sol = gmres(J_apply, -Fv, tol=min(1e-12, tol * 1e-2),
                    max_iter=gmres_iter)
        d = sol.x
        # Line search on ||F||.
        t = 1.0
        improved = False
        for _ in range(30):
            cand = lam + t * d
            Fc = F(cand)
            rc = np.linalg.norm(Fc, ord=np.inf)
            if rc < res * (1 - 1e-4 * t) or rc < tol:
                lam, Fv, res = cand, Fc, rc
                improved = True
                break
            t *= 0.5
        it += 1
        if not improved:
            break
    # Project tiny negatives out.
    lam = np.maximum(lam, 0.0)
    return LCPResult(lam=lam, residual=float(res), iterations=it,
                     converged=res <= tol * slack)

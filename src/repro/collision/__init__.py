"""Parallel collision detection and constraint-based resolution (Sec. 4).

The key step that algorithmically unifies RBCs and vessel patches is a
linear triangle-mesh approximation of both (paper Sec. 4):

- :mod:`mesh` builds closed triangle meshes from spectral cell surfaces
  (2112-point upsampled sampling in the paper) and open meshes from the
  22 x 22 equispaced patch samples;
- :mod:`broadphase` finds candidate mesh pairs from space-time bounding
  boxes hashed on an implicit Morton grid (Fig. 3), optionally through the
  virtual communicator so the traffic is ledgered;
- :mod:`distance` provides vectorized point-triangle signed distances;
- :mod:`volume` computes the interference measure V(t) and its gradient
  (penetration-volume proxy, substitution S6 in DESIGN.md);
- :mod:`lcp` solves the linear complementarity subproblem with a
  minimum-map Newton method whose linear solves use GMRES;
- :mod:`ncp` runs the sequence-of-LCPs loop (~7 per step in the paper)
  that renders a candidate state contact-free.
"""
from .mesh import CollisionMesh, cell_collision_mesh, patch_collision_mesh
from .broadphase import space_time_boxes, candidate_object_pairs
from .distance import point_triangle_closest, signed_distance_to_mesh
from .volume import ContactComponent, compute_contacts
from .lcp import solve_lcp, LCPResult
from .ncp import NCPSolver, NCPReport

__all__ = [
    "CollisionMesh",
    "cell_collision_mesh",
    "patch_collision_mesh",
    "space_time_boxes",
    "candidate_object_pairs",
    "point_triangle_closest",
    "signed_distance_to_mesh",
    "ContactComponent",
    "compute_contacts",
    "solve_lcp",
    "LCPResult",
    "NCPSolver",
    "NCPReport",
]

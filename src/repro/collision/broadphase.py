"""Broad-phase candidate search via space-time AABBs on a Morton grid.

This is the adaptation of the spatial sorting of Sec. 3.3 to collision
candidates described in Sec. 4 / Fig. 3: each mesh contributes the
smallest axis-aligned box containing it at both its current and candidate
next positions (for vessel patches P+ = P); boxes are rasterized onto an
implicit uniform grid keyed by Morton codes, keys are (parallel-) sorted,
and meshes sharing a key become candidate pairs.
"""
from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..runtime.communicator import VirtualComm
from ..runtime.parallel_sort import parallel_sample_sort
from ..runtime.spatial_hash import SpatialHash
from .mesh import CollisionMesh


def space_time_boxes(meshes: Sequence[CollisionMesh],
                     candidates: Sequence[Optional[np.ndarray]],
                     pad: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """AABBs covering each mesh at its current and candidate positions."""
    lo = np.empty((len(meshes), 3))
    hi = np.empty((len(meshes), 3))
    for i, (mesh, cand) in enumerate(zip(meshes, candidates)):
        lo[i], hi[i] = mesh.aabb(other_vertices=cand, pad=pad)
    return lo, hi


def candidate_object_pairs(meshes: Sequence[CollisionMesh],
                           candidates: Sequence[Optional[np.ndarray]],
                           contact_eps: float,
                           comm: Optional[VirtualComm] = None
                           ) -> list[tuple[int, int]]:
    """Indices (i, j), i < j, of meshes whose space-time boxes share a
    Morton grid cell (at least one cell<->anything pair; boundary-boundary
    pairs are skipped since the vessel is rigid).

    When ``comm`` is given, the keys are routed through the parallel
    sample sort so the exchange is accounted in the ledger (meshes are
    assigned to ranks round-robin by index, mirroring the distributed
    ownership of cells).
    """
    lo, hi = space_time_boxes(meshes, candidates, pad=contact_eps)
    H = float(np.mean(np.linalg.norm(hi - lo, axis=1)))
    if H <= 0:
        H = max(contact_eps, 1e-6)
    grid = SpatialHash(lo.min(axis=0) - H, H)

    keys_list = []
    owner_list = []
    for i in range(len(meshes)):
        k = grid.box_keys(lo[i], hi[i])
        keys_list.append(k)
        owner_list.append(np.full(k.size, i, dtype=np.int64))
    keys = np.concatenate(keys_list)
    owners = np.concatenate(owner_list)

    if comm is not None and comm.size > 1:
        # Distribute (key, owner) records round-robin and sort in parallel;
        # the collision candidates are then discovered rank-locally.
        P = comm.size
        ks = [keys[r::P] for r in range(P)]
        vs = [owners[r::P] for r in range(P)]
        sk, sv = parallel_sample_sort(comm, ks, vs)
        keys = np.concatenate(sk)
        owners = np.concatenate(sv)
        order = np.argsort(keys, kind="stable")
    else:
        order = np.argsort(keys, kind="stable")
    keys = keys[order]
    owners = owners[order]

    pairs: set[tuple[int, int]] = set()
    start = 0
    n = keys.size
    while start < n:
        end = start
        while end < n and keys[end] == keys[start]:
            end += 1
        cell_owners = np.unique(owners[start:end])
        if cell_owners.size > 1:
            for ii in range(cell_owners.size):
                for jj in range(ii + 1, cell_owners.size):
                    a, b = int(cell_owners[ii]), int(cell_owners[jj])
                    if meshes[a].kind == "boundary" and meshes[b].kind == "boundary":
                        continue
                    pairs.add((a, b))
        start = end
    # AABB overlap check to cull hash-box false positives.
    out = []
    for a, b in sorted(pairs):
        if np.all(lo[a] <= hi[b]) and np.all(lo[b] <= hi[a]):
            out.append((a, b))
    return out

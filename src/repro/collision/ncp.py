"""The nonlinear complementarity loop (sequence of LCPs, paper Sec. 4).

Given the candidate positions produced by the unconstrained (locally
implicit) update, detect interpenetrations, and repeatedly

1. linearize the contact volumes (Eq. (4.3)),
2. solve the LCP for the multipliers lambda (Item 3b),
3. push the cells by the contact-force-induced velocity ``dt * S_i f_c``,
4. re-detect contacts,

until all components of V are nonnegative (the paper reports ~7 LCP
solves per NCP). Cell-vessel contacts move only the cell; the vessel is
rigid. Contact force densities live on the collision grid and are
band-limited back to the simulation grid before the single-layer mobility
is applied.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from ..config import NumericsOptions
from ..sph import get_transform
from ..surfaces import SpectralSurface
from ..vesicle import SingularSelfInteraction
from .broadphase import candidate_object_pairs
from .mesh import CollisionMesh, cell_collision_mesh
from .lcp import solve_lcp
from .volume import ContactComponent, compute_contacts


@dataclasses.dataclass
class NCPReport:
    """Diagnostics of one contact projection."""

    n_candidates: int
    n_components: int
    lcp_solves: int
    max_penetration_before: float
    max_penetration_after: float
    contact_active: bool
    lambdas: np.ndarray
    #: whether the projection drove every contact volume above the
    #: tolerance before exhausting ``ncp_max_lcp`` linearizations
    #: (``True`` when no contact was active). The health sentinel treats
    #: ``False`` as a step-rejection trigger under
    #: ``ResilienceOptions.reject_unresolved_contact``.
    resolved: bool = True
    #: AND of the inner LCP solves' ``converged`` flags (within the
    #: documented slack of :func:`repro.collision.lcp.solve_lcp`).
    lcp_converged: bool = True
    #: worst final minimum-map residual across the inner LCP solves.
    lcp_residual: float = 0.0


class NCPSolver:
    """Projects candidate cell positions to a contact-free state."""

    def __init__(self, boundary_meshes: Sequence[CollisionMesh],
                 options: Optional[NumericsOptions] = None,
                 collision_order: Optional[int] = None,
                 contact_eps: Optional[float] = None,
                 volume_tol_factor: float = 1e-3,
                 mesh_cache_size: int = 4):
        self.boundary_meshes = list(boundary_meshes)
        self.options = options or NumericsOptions()
        self.collision_order = collision_order
        self.contact_eps = contact_eps
        self.volume_tol_factor = volume_tol_factor
        # Per-cell collision meshes keyed by the exact positions they were
        # built from (see _cell_mesh): rebuilding a SpectralSurface + full
        # fine-grid geometry per projection iteration was a measurable
        # per-step cost even without contacts, and within the LCP loop
        # only the cells actually touched by contact forces move.
        self.mesh_cache_size = int(mesh_cache_size)
        self._mesh_cache: list[dict[bytes, CollisionMesh]] = []

    # -- mesh caching ----------------------------------------------------------
    def _cell_mesh(self, i: int, cell: SpectralSurface,
                   positions: np.ndarray, pc: int) -> CollisionMesh:
        """Collision mesh of cell ``i`` at ``positions``, cached.

        A tiny per-cell LRU keyed by the raw position bytes: across a
        projection this hits for every cell the LCP loop did not move,
        and across steps the accepted candidate mesh of step ``n`` is
        reused as the "current" mesh of step ``n + 1``.
        """
        while len(self._mesh_cache) <= i:
            self._mesh_cache.append({})
        cache = self._mesh_cache[i]
        key = positions.tobytes()
        mesh = cache.pop(key, None)
        if mesh is None:
            tmp = SpectralSurface(positions, cell.order)
            mesh = cell_collision_mesh(tmp, object_id=i, collision_order=pc)
            if len(cache) >= self.mesh_cache_size:
                cache.pop(next(iter(cache)))
        cache[key] = mesh  # (re)insert most-recently-used last
        return mesh

    # -- grid transfer helpers -------------------------------------------------
    @staticmethod
    def _restrict(cell: SpectralSurface, field_c: np.ndarray,
                  pc: int) -> np.ndarray:
        """Collision-grid vector field -> simulation grid (band-limit)."""
        Tc = get_transform(pc)
        p = cell.order
        cf = Tc.forward(np.moveaxis(field_c, -1, 0))
        return np.moveaxis(Tc.resample(cf, p), 0, -1)

    @staticmethod
    def _prolong(cell: SpectralSurface, field_p: np.ndarray,
                 pc: int) -> np.ndarray:
        """Simulation-grid vector field -> collision grid."""
        T = cell.transform
        cf = T.forward(np.moveaxis(field_p, -1, 0))
        return np.moveaxis(T.resample(cf, pc), 0, -1)

    # -- main entry -------------------------------------------------------------
    def project(self, cells: Sequence[SpectralSurface],
                candidates: Sequence[np.ndarray],
                mobilities: Sequence[Callable[[np.ndarray], np.ndarray]],
                dt: float,
                comm=None) -> tuple[list[np.ndarray], NCPReport]:
        """Resolve contacts of the candidate state.

        Parameters
        ----------
        cells:
            Cell surfaces at the *current* (pre-step, collision-free) state.
        candidates:
            Candidate next positions per cell, grid shape (nlat, nphi, 3).
        mobilities:
            Per cell, maps a force density grid field to the surface
            velocity it induces (the implicit term ``S_i``).
        dt:
            Time step.

        Returns the corrected positions and a report.
        """
        ncell = len(cells)
        if ncell == 0:
            return [], NCPReport(n_candidates=0, n_components=0, lcp_solves=0,
                                 max_penetration_before=0.0,
                                 max_penetration_after=0.0,
                                 contact_active=False, lambdas=np.zeros(0))
        pc = self.collision_order or 2 * cells[0].order
        Tc = get_transform(pc)
        nlat_c, nphi_c = Tc.grid.nlat, Tc.grid.nphi

        def build_meshes(positions):
            meshes = [self._cell_mesh(i, cell, np.asarray(pos, float), pc)
                      for i, (cell, pos) in enumerate(zip(cells, positions))]
            for bm in self.boundary_meshes:
                meshes.append(dataclasses.replace(
                    bm, object_id=ncell + (bm.object_id)))
            return meshes

        current = build_meshes([c.X for c in cells])
        eps = self.contact_eps
        if eps is None:
            scale = current[0].edge_length_scale() if current else 1.0
            eps = 0.5 * scale

        cand_pos = [np.asarray(c, float).reshape(cells[i].grid.nlat,
                                                 cells[i].grid.nphi, 3)
                    for i, c in enumerate(candidates)]
        cand_meshes = build_meshes(cand_pos)
        cand_verts = [m.vertices for m in cand_meshes[:ncell]] + \
                     [None] * len(self.boundary_meshes)
        pairs = candidate_object_pairs(current, cand_verts, eps, comm=comm)

        contacts = compute_contacts(cand_meshes, pairs, eps)
        vol_before = min((c.volume for c in contacts), default=0.0)
        vol_tol = self.volume_tol_factor * eps * \
            (np.mean([m.vertex_weights.sum() for m in cand_meshes[:ncell]])
             if ncell else 1.0)

        report = NCPReport(n_candidates=len(pairs), n_components=len(contacts),
                           lcp_solves=0,
                           max_penetration_before=-vol_before,
                           max_penetration_after=0.0,
                           contact_active=bool(contacts),
                           lambdas=np.zeros(0))
        if not contacts:
            return cand_pos, report

        positions = [p.copy() for p in cand_pos]
        lam_all = []
        resolved = False
        for _ in range(self.options.ncp_max_lcp):
            m = len(contacts)
            # Displacement response of every component's unit force.
            unit_disp: list[dict[int, np.ndarray]] = []
            for comp in contacts:
                disp: dict[int, np.ndarray] = {}
                for oid, (idx, dirs, w) in comp.vertex_forces.items():
                    if oid >= ncell:
                        continue  # rigid vessel
                    dens_c = np.zeros((nlat_c * nphi_c + 2, 3))
                    dens_c[idx] = dirs
                    dens_c = dens_c[:-2].reshape(nlat_c, nphi_c, 3)
                    dens_p = self._restrict(cells[oid], dens_c, pc)
                    u = mobilities[oid](dens_p)
                    du = self._prolong(cells[oid], dt * u, pc)
                    disp[oid] = du.reshape(-1, 3)
                unit_disp.append(disp)

            # Dense B: change of component volume c1 per unit lambda of c2.
            B = np.zeros((m, m))
            for c2, disp in enumerate(unit_disp):
                for c1, comp in enumerate(contacts):
                    acc = 0.0
                    for oid, (idx, dirs, w) in comp.vertex_forces.items():
                        if oid in disp:
                            # pole vertices (last two) carry zero weight
                            valid = idx < disp[oid].shape[0]
                            acc += float(np.einsum(
                                "nk,nk,n->", dirs[valid],
                                disp[oid][idx[valid]], w[valid]))
                    B[c1, c2] = acc
            q = np.array([c.volume for c in contacts])
            res = solve_lcp(lambda x: B @ x, q)
            report.lcp_solves += 1
            report.lcp_converged = report.lcp_converged and res.converged
            report.lcp_residual = max(report.lcp_residual, res.residual)
            lam_all.append(res.lam)

            # Apply the combined contact displacement.
            for oid in range(ncell):
                total = np.zeros((cells[oid].grid.nlat,
                                  cells[oid].grid.nphi, 3))
                touched = False
                for lam_c, comp in zip(res.lam, contacts):
                    if lam_c == 0.0 or oid not in comp.vertex_forces:
                        continue
                    idx, dirs, w = comp.vertex_forces[oid]
                    dens_c = np.zeros((nlat_c * nphi_c + 2, 3))
                    dens_c[idx] = lam_c * dirs
                    dens_p = self._restrict(
                        cells[oid], dens_c[:-2].reshape(nlat_c, nphi_c, 3), pc)
                    total += dens_p
                    touched = True
                if touched:
                    positions[oid] = positions[oid] + dt * mobilities[oid](total)

            cand_meshes = build_meshes(positions)
            contacts = compute_contacts(cand_meshes, pairs, eps)
            worst = min((c.volume for c in contacts), default=0.0)
            if worst >= -abs(vol_tol):
                resolved = True
                break

        report.resolved = resolved
        report.max_penetration_after = -min(
            (c.volume for c in contacts), default=0.0)
        report.lambdas = (np.concatenate(lam_all) if lam_all else np.zeros(0))
        return positions, report

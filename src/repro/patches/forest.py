"""Forest of quadtrees over the vessel quad mesh (p4est substitute, S4).

The paper manages the patch hierarchy with p4est [7]: every face of the
input quad mesh is the root of a quadtree whose leaves are the current
patches; refining a leaf produces 4 children via polynomial subdivision.
This module reimplements the services the paper uses:

- leaf storage in global Morton order (tree id major, then interleaved
  quadrant coordinates), the order used to partition patches across ranks,
- refine / coarsen with exact polynomial patch data transfer,
- parent/child relations between the coarse and fine discretizations,
- equal-load partitioning of the leaves across P ranks.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from .patch import ChebPatch


def _interleave2(i: int, j: int, level: int) -> int:
    """Morton interleave of quadrant coordinates at a given level."""
    code = 0
    for b in range(level):
        code |= ((i >> b) & 1) << (2 * b + 1)
        code |= ((j >> b) & 1) << (2 * b)
    return code


@dataclasses.dataclass
class PatchNode:
    """One leaf quadrant: a patch at position (i, j) of ``level`` within
    its root tree."""

    tree: int
    level: int
    i: int
    j: int
    patch: ChebPatch

    def morton_key(self, max_level: int = 16) -> int:
        """Global ordering key: tree-major, then Morton within the tree.

        Quadrant coords are promoted to ``max_level`` so keys of leaves at
        different levels interleave correctly (p4est's linear order).
        """
        shift = max_level - self.level
        code = _interleave2(self.i << shift, self.j << shift, max_level)
        return (self.tree << (2 * max_level + 1)) | code

    def child_coords(self) -> list[tuple[int, int, int]]:
        """(level+1, i, j) of the 4 children in subdivision order.

        ``ChebPatch.subdivide(2)`` emits children with the u (i) block
        varying slowest, v (j) fastest.
        """
        out = []
        for bi in range(2):
            for bj in range(2):
                out.append((self.level + 1, 2 * self.i + bi, 2 * self.j + bj))
        return out


class QuadForest:
    """A forest of quadtrees whose leaves carry polynomial patches."""

    def __init__(self, roots: Sequence[ChebPatch]):
        self.leaves: list[PatchNode] = [
            PatchNode(tree=t, level=0, i=0, j=0, patch=p)
            for t, p in enumerate(roots)
        ]
        self.n_trees = len(self.leaves)
        self._sort()

    def _sort(self) -> None:
        self.leaves.sort(key=lambda n: n.morton_key())

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    def patches(self) -> list[ChebPatch]:
        """Leaf patches in global Morton order."""
        return [n.patch for n in self.leaves]

    # -- refinement ------------------------------------------------------------
    def refine(self, marker: Optional[Callable[[PatchNode], bool]] = None) -> int:
        """Refine all leaves where ``marker`` returns True (default: all).

        Returns the number of leaves refined. Patch data transfers exactly
        (polynomial subdivision).
        """
        new_leaves: list[PatchNode] = []
        count = 0
        for node in self.leaves:
            if marker is None or marker(node):
                kids = node.patch.subdivide(2)
                for (lvl, ci, cj), kp in zip(node.child_coords(), kids):
                    new_leaves.append(PatchNode(node.tree, lvl, ci, cj, kp))
                count += 1
            else:
                new_leaves.append(node)
        self.leaves = new_leaves
        self._sort()
        return count

    def refine_uniform(self, times: int = 1) -> None:
        for _ in range(times):
            self.refine()

    def coarsen(self, marker: Optional[Callable[[PatchNode], bool]] = None) -> int:
        """Coarsen families of 4 sibling leaves where all 4 are marked.

        The parent patch is reconstructed by resampling the children at
        the parent's nodes (exact, since the children are restrictions of
        the same polynomial... for refined-then-coarsened data; for
        independently modified children this is an L2-consistent merge).
        Returns the number of families merged.
        """
        by_parent: dict[tuple[int, int, int, int], list[PatchNode]] = {}
        for n in self.leaves:
            if n.level == 0:
                continue
            key = (n.tree, n.level - 1, n.i // 2, n.j // 2)
            by_parent.setdefault(key, []).append(n)
        merged = 0
        to_remove: set[int] = set()
        new_nodes: list[PatchNode] = []
        for (tree, lvl, pi, pj), kids in by_parent.items():
            if len(kids) != 4:
                continue
            if marker is not None and not all(marker(k) for k in kids):
                continue
            parent_patch = self._merge_children(kids)
            new_nodes.append(PatchNode(tree, lvl, pi, pj, parent_patch))
            to_remove.update(id(k) for k in kids)
            merged += 1
        if merged:
            self.leaves = [n for n in self.leaves if id(n) not in to_remove]
            self.leaves.extend(new_nodes)
            self._sort()
        return merged

    @staticmethod
    def _merge_children(kids: list[PatchNode]) -> ChebPatch:
        n = kids[0].patch.n
        from ..quadrature.interpolation import chebyshev_lobatto_nodes
        nodes = chebyshev_lobatto_nodes(n)
        vals = np.empty((n, n, 3))
        kid_map = {(k.i % 2, k.j % 2): k.patch for k in kids}
        for a, u in enumerate(nodes):
            for b, v in enumerate(nodes):
                bi = 0 if u <= 0 else 1
                bj = 0 if v <= 0 else 1
                # Parent param -> child param.
                cu = 2.0 * u + (1.0 if bi == 0 else -1.0)
                cv = 2.0 * v + (1.0 if bj == 0 else -1.0)
                vals[a, b] = kid_map[(bi, bj)].evaluate(np.array([[cu, cv]]))[0]
        return ChebPatch(vals)

    # -- partitioning -----------------------------------------------------------
    def partition(self, n_ranks: int) -> list[list[int]]:
        """Split the Morton-ordered leaves into contiguous, balanced rank
        ranges (p4est's weighted partition with unit weights)."""
        n = self.n_leaves
        counts = [n // n_ranks + (1 if r < n % n_ranks else 0)
                  for r in range(n_ranks)]
        out = []
        start = 0
        for c in counts:
            out.append(list(range(start, start + c)))
            start += c
        return out

    def levels(self) -> np.ndarray:
        return np.array([n.level for n in self.leaves])

"""Tensor-product polynomial patch infrastructure for the vessel boundary.

The domain boundary Gamma is a collection of non-overlapping high-order
tensor-product polynomial patches P_i : [-1,1]^2 -> R^3 (paper Sec. 3.1),
each sampled at Clenshaw-Curtis quadrature points. This subpackage provides
the patch representation (:class:`ChebPatch`), assembled surfaces
(:class:`PatchSurface`), closed-geometry builders (cube-sphere, torus,
deformed tubes), exact polynomial subdivision (the fine discretization and
weak-scaling refinement), the p4est-substitute forest of quadtrees, and the
parallel Newton closest-point search of Sec. 3.3.
"""
from .patch import ChebPatch, cheb_diff_matrix
from .surface import PatchSurface
from .builders import (
    cube_sphere,
    torus_surface,
    deformed_sphere,
    capsule_tube,
)
from .closest_point import closest_point_on_patch, ClosestPointResult, surface_closest_point
from .forest import QuadForest, PatchNode

__all__ = [
    "ChebPatch",
    "cheb_diff_matrix",
    "PatchSurface",
    "cube_sphere",
    "torus_surface",
    "deformed_sphere",
    "capsule_tube",
    "closest_point_on_patch",
    "surface_closest_point",
    "ClosestPointResult",
    "QuadForest",
    "PatchNode",
]

"""A single tensor-product Chebyshev polynomial patch.

A patch is stored by its values at the n x n tensor Clenshaw-Curtis
(Chebyshev-Lobatto) nodes; interpolation/differentiation use the stable
barycentric formula and the standard Chebyshev differentiation matrix, so
all operations are spectrally accurate for the polynomial the patch
represents. The paper uses 8th-order patches sampled at 11 x 11 points.
"""
from __future__ import annotations

from functools import lru_cache
from typing import Callable, Optional

import numpy as np

from ..analysis.guard import freeze
from ..quadrature import clenshaw_curtis, tensor_clenshaw_curtis
from ..quadrature.interpolation import (
    barycentric_matrix,
    chebyshev_lobatto_nodes,
    interp_matrix_2d,
)


@lru_cache(maxsize=32)
def cheb_diff_matrix(n: int) -> np.ndarray:
    """Chebyshev differentiation matrix on ascending CL nodes (n x n)."""
    x = chebyshev_lobatto_nodes(n)
    c = np.ones(n)
    c[0] = 2.0
    c[-1] = 2.0
    c = c * (-1.0) ** np.arange(n)
    X = np.tile(x[:, None], (1, n))
    dX = X - X.T
    D = np.outer(c, 1.0 / c) / (dX + np.eye(n))
    D -= np.diag(D.sum(axis=1))
    return freeze(D)


@lru_cache(maxsize=64)
def _sub_interp_matrix(n: int, k: int):
    """Interpolation matrices mapping a patch's nodal values to the nodal
    values of its k x k parametric subpatches (exact for polynomials)."""
    nodes = chebyshev_lobatto_nodes(n)
    mats = {}
    for bi in range(k):
        lo_u = -1.0 + 2.0 * bi / k
        targets_u = lo_u + (nodes + 1.0) / k
        Mu = barycentric_matrix(nodes, targets_u)
        mats[bi] = freeze(Mu)
    return mats


class ChebPatch:
    """One polynomial patch P : [-1, 1]^2 -> R^3.

    Parameters
    ----------
    values:
        Nodal positions at the tensor CL grid, shape (n, n, 3), u-index
        first (matching ``tensor_clenshaw_curtis``).
    """

    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=float)
        if values.ndim != 3 or values.shape[0] != values.shape[1] or values.shape[2] != 3:
            raise ValueError("patch values must have shape (n, n, 3)")
        self.n = values.shape[0]
        self.values = values
        self._D = cheb_diff_matrix(self.n)

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_function(cls, fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                      n: int) -> "ChebPatch":
        """Sample a smooth map (u, v) -> R^3 at the CL tensor nodes."""
        x = chebyshev_lobatto_nodes(n)
        U, V = np.meshgrid(x, x, indexing="ij")
        pts = fn(U.ravel(), V.ravel())
        return cls(np.asarray(pts, float).reshape(n, n, 3))

    # -- evaluation ---------------------------------------------------------
    def evaluate(self, uv: np.ndarray) -> np.ndarray:
        """Positions at (m, 2) parameter points."""
        M = interp_matrix_2d(self.n, uv)
        return M @ self.values.reshape(-1, 3)

    def _nodal_derivative(self, du: int, dv: int) -> np.ndarray:
        V = self.values
        for _ in range(du):
            V = np.einsum("ij,jkl->ikl", self._D, V)
        for _ in range(dv):
            V = np.einsum("ij,kjl->kil", self._D, V)
        return V

    def derivatives(self, uv: np.ndarray, second: bool = False):
        """First (and optionally second) parametric derivatives at points.

        Returns ``(X, Xu, Xv)`` or ``(X, Xu, Xv, Xuu, Xuv, Xvv)``.
        """
        M = interp_matrix_2d(self.n, uv)
        flat = lambda V: M @ V.reshape(-1, 3)
        X = flat(self.values)
        Xu = flat(self._nodal_derivative(1, 0))
        Xv = flat(self._nodal_derivative(0, 1))
        if not second:
            return X, Xu, Xv
        Xuu = flat(self._nodal_derivative(2, 0))
        Xuv = flat(self._nodal_derivative(1, 1))
        Xvv = flat(self._nodal_derivative(0, 2))
        return X, Xu, Xv, Xuu, Xuv, Xvv

    def normals(self, uv: np.ndarray) -> np.ndarray:
        """Unit normals (orientation: Xu x Xv)."""
        _, Xu, Xv = self.derivatives(uv)
        nrm = np.cross(Xu, Xv)
        return nrm / np.linalg.norm(nrm, axis=-1, keepdims=True)

    # -- quadrature -----------------------------------------------------------
    def quadrature(self, q: Optional[int] = None):
        """Nodes, weights (with area element), and normals of the tensor
        CC rule of size q (defaults to the patch's own n)."""
        q = q or self.n
        uv, w2 = tensor_clenshaw_curtis(q)
        X, Xu, Xv = self.derivatives(uv)
        cr = np.cross(Xu, Xv)
        W = np.linalg.norm(cr, axis=-1)
        normals = cr / W[:, None]
        return X, w2 * W, normals

    def area(self) -> float:
        _, w, _ = self.quadrature()
        return float(w.sum())

    def size(self) -> float:
        """Patch size L = sqrt(area), the length scale of paper Sec. 5.1."""
        return float(np.sqrt(self.area()))

    def bounding_box(self, pad: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box of the nodal values, padded by ``pad``.

        (The CL nodes of a polynomial patch give a tight practical bound;
        the near-zone inflation d_eps of Sec. 3.3 is applied via ``pad``.)
        """
        lo = self.values.reshape(-1, 3).min(axis=0) - pad
        hi = self.values.reshape(-1, 3).max(axis=0) + pad
        return lo, hi

    # -- subdivision ------------------------------------------------------------
    def subdivide(self, k: int = 2) -> list["ChebPatch"]:
        """Split into k x k equivalent subpatches (exact resampling).

        Used both for the fine discretization of the singular quadrature
        (k = 2**eta) and for the weak-scaling refinement of Sec. 5.2
        ("subdivide the M polynomial patches into 4M new but equivalent
        polynomial patches").
        """
        mats = _sub_interp_matrix(self.n, k)
        out = []
        flatv = self.values.reshape(self.n, self.n, 3)
        for bi in range(k):
            Mu = mats[bi]
            tmp = np.einsum("iu,uvk->ivk", Mu, flatv)
            for bj in range(k):
                Mv = mats[bj]
                child = np.einsum("jv,ivk->ijk", Mv, tmp)
                out.append(ChebPatch(child))
        return out

    def collision_points(self, m: int) -> np.ndarray:
        """m x m equispaced parameter samples for the collision mesh
        (paper: 484 = 22 x 22 points per patch)."""
        t = np.linspace(-1.0, 1.0, m)
        U, V = np.meshgrid(t, t, indexing="ij")
        uv = np.column_stack([U.ravel(), V.ravel()])
        return self.evaluate(uv)

"""Closed patch-surface builders.

The BIE convergence experiments (paper Fig. 9) need smooth closed surfaces
with controllable patch sizes; the flow examples need tube-like vessels.
All builders return :class:`PatchSurface` objects with outward normals.

- :func:`cube_sphere` — the unit sphere from 6 * 4**k projected cube faces.
- :func:`torus_surface` — torus from an nu x nv parametric grid.
- :func:`deformed_sphere` — apply a smooth diffeomorphism to a cube-sphere;
  with the default stretch map this produces the pill/tube vessel segments
  used by the flow examples.
- :func:`capsule_tube` — convenience wrapper: an elongated tube of given
  length/radius along an axis (a single smooth vessel segment).
"""
from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..config import NumericsOptions
from .patch import ChebPatch
from .surface import PatchSurface

_FACES = (
    # (axis that is +-1, sign, u-axis, v-axis) chosen so Xu x Xv points outward.
    (0, +1, 1, 2),
    (0, -1, 2, 1),
    (1, +1, 2, 0),
    (1, -1, 0, 2),
    (2, +1, 0, 1),
    (2, -1, 1, 0),
)


def _cube_face_patch_fn(axis: int, sign: int, ua: int, va: int,
                        lo_u: float, hi_u: float, lo_v: float, hi_v: float,
                        radius: float, center: np.ndarray,
                        warp: Optional[Callable[[np.ndarray], np.ndarray]] = None):
    def fn(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        # Map patch params to the face subsquare.
        s = lo_u + (u + 1.0) * 0.5 * (hi_u - lo_u)
        t = lo_v + (v + 1.0) * 0.5 * (hi_v - lo_v)
        pts = np.zeros((u.size, 3))
        pts[:, axis] = sign
        pts[:, ua] = s
        pts[:, va] = t
        pts /= np.linalg.norm(pts, axis=1, keepdims=True)
        pts = radius * pts
        if warp is not None:
            pts = warp(pts)
        return pts + center
    return fn


def cube_sphere(refine: int = 0, radius: float = 1.0, center=(0.0, 0.0, 0.0),
                options: Optional[NumericsOptions] = None,
                warp: Optional[Callable[[np.ndarray], np.ndarray]] = None
                ) -> PatchSurface:
    """Sphere from 6 * 4**refine patches (gnomonic cube projection).

    Each cube face is split into 2**refine x 2**refine subsquares before
    projection, so the maximum patch size L decreases ~2x per refinement —
    the knob the Fig. 9 convergence study turns. ``warp`` post-composes a
    smooth map R^3 -> R^3 (applied before recentering).
    """
    opts = options or NumericsOptions()
    n = opts.patch_quad
    k = 2 ** refine
    center = np.asarray(center, float)
    patches = []
    edges = np.linspace(-1.0, 1.0, k + 1)
    for axis, sign, ua, va in _FACES:
        for i in range(k):
            for j in range(k):
                fn = _cube_face_patch_fn(axis, sign, ua, va,
                                         edges[i], edges[i + 1],
                                         edges[j], edges[j + 1],
                                         radius, center, warp)
                patches.append(ChebPatch.from_function(fn, n))
    surf = PatchSurface(patches, opts)
    if surf.volume() < 0:
        surf = surf.flip_orientation()
    return surf


def torus_surface(R: float = 2.0, r: float = 0.7, nu: int = 8, nv: int = 4,
                  center=(0.0, 0.0, 0.0),
                  options: Optional[NumericsOptions] = None) -> PatchSurface:
    """Torus split into nu x nv patches over its periodic parametrization."""
    opts = options or NumericsOptions()
    n = opts.patch_quad
    center = np.asarray(center, float)
    patches = []
    ue = np.linspace(0.0, 2.0 * np.pi, nu + 1)
    ve = np.linspace(0.0, 2.0 * np.pi, nv + 1)

    def make(i, j):
        def fn(u, v):
            a = ue[i] + (u + 1.0) * 0.5 * (ue[i + 1] - ue[i])
            b = ve[j] + (v + 1.0) * 0.5 * (ve[j + 1] - ve[j])
            x = (R + r * np.cos(b)) * np.cos(a)
            y = (R + r * np.cos(b)) * np.sin(a)
            z = r * np.sin(b)
            return np.column_stack([x, y, z]) + center
        return fn

    for i in range(nu):
        for j in range(nv):
            patches.append(ChebPatch.from_function(make(i, j), n))
    surf = PatchSurface(patches, opts)
    if surf.volume() < 0:
        surf = surf.flip_orientation()
    return surf


def deformed_sphere(refine: int = 0, radius: float = 1.0,
                    stretch=(1.0, 1.0, 1.0), center=(0.0, 0.0, 0.0),
                    bend: float = 0.0,
                    options: Optional[NumericsOptions] = None) -> PatchSurface:
    """Cube-sphere composed with an affine stretch and an optional bend.

    ``stretch`` scales the axes (an ellipsoid / elongated tube); ``bend``
    adds the smooth shear x += bend * z^2, producing a curved vessel
    segment reminiscent of the capillaries in the paper's Fig. 1 geometry.
    """
    stretch = np.asarray(stretch, float)

    def warp(pts: np.ndarray) -> np.ndarray:
        out = pts * stretch
        if bend != 0.0:
            out = out.copy()
            out[:, 0] = out[:, 0] + bend * out[:, 2] ** 2
        return out

    return cube_sphere(refine=refine, radius=radius, center=center,
                       options=options, warp=warp)


def capsule_tube(length: float = 6.0, radius: float = 1.0, refine: int = 1,
                 axis: int = 2, center=(0.0, 0.0, 0.0), bend: float = 0.0,
                 options: Optional[NumericsOptions] = None) -> PatchSurface:
    """A smooth elongated vessel segment (pill shape) along ``axis``.

    Built as a deformed sphere: the smooth profile map z -> (L/2) z keeps
    the surface a polynomial-friendly diffeomorphic image of the sphere,
    with hemispherical-ish ends where inlet/outlet boundary conditions are
    prescribed by :mod:`repro.vessel.boundary_conditions`.
    """
    stretch = np.ones(3)
    stretch[axis] = 0.5 * length / radius
    return deformed_sphere(refine=refine, radius=radius, stretch=stretch,
                           center=center, bend=bend, options=options)

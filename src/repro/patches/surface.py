"""A boundary surface assembled from polynomial patches.

:class:`PatchSurface` caches the concatenated coarse discretization
(quadrature nodes/weights/normals over all patches, paper Eq. (3.1)), the
fine discretization used by the singular quadrature (each patch split into
4**eta subpatches with a q-point rule), the per-patch sizes L, and the
near-zone bounding boxes of Sec. 3.3.
"""
from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

import numpy as np

from ..config import NumericsOptions
from .patch import ChebPatch


@dataclasses.dataclass
class _Discretization:
    points: np.ndarray    # (N, 3)
    weights: np.ndarray   # (N,)  includes area element
    normals: np.ndarray   # (N, 3)
    patch_of: np.ndarray  # (N,) patch index of each node


class PatchSurface:
    """An oriented closed surface given by non-overlapping patches."""

    def __init__(self, patches: Sequence[ChebPatch],
                 options: Optional[NumericsOptions] = None):
        self.patches = list(patches)
        if not self.patches:
            raise ValueError("surface needs at least one patch")
        self.options = options or NumericsOptions()
        self._coarse: Optional[_Discretization] = None
        self._fine: Optional[_Discretization] = None
        self._sizes: Optional[np.ndarray] = None

    @property
    def n_patches(self) -> int:
        return len(self.patches)

    # -- discretizations ------------------------------------------------------
    def coarse(self) -> _Discretization:
        """The coarse discretization: q x q CC rule on every patch."""
        if self._coarse is None:
            self._coarse = self._discretize(self.patches, self.options.patch_quad,
                                            np.arange(self.n_patches))
        return self._coarse

    def fine(self) -> _Discretization:
        """The fine discretization: 4**eta subpatches per patch, each with
        its own CC rule (paper Fig. 2 caption: eta such that 16 subpatches
        with 11th-order rules in the reference setup)."""
        if self._fine is None:
            k = 2 ** self.options.upsample_eta
            fine_patches: list[ChebPatch] = []
            owners: list[int] = []
            for i, p in enumerate(self.patches):
                kids = p.subdivide(k)
                fine_patches.extend(kids)
                owners.extend([i] * len(kids))
            self._fine = self._discretize(fine_patches, self.options.patch_quad,
                                          np.asarray(owners))
            self._fine_patches = fine_patches
        return self._fine

    @staticmethod
    def _discretize(patches: Iterable[ChebPatch], q: int,
                    owners: np.ndarray) -> _Discretization:
        pts, wts, nms, own = [], [], [], []
        for patch, owner in zip(patches, np.asarray(owners)):
            X, w, n = patch.quadrature(q)
            pts.append(X)
            wts.append(w)
            nms.append(n)
            own.append(np.full(w.size, owner, dtype=int))
        return _Discretization(points=np.concatenate(pts),
                               weights=np.concatenate(wts),
                               normals=np.concatenate(nms),
                               patch_of=np.concatenate(own))

    def nodes_per_patch(self) -> int:
        return self.options.patch_quad ** 2

    # -- geometry summaries -----------------------------------------------------
    def patch_sizes(self) -> np.ndarray:
        """L_i = sqrt(area of patch i) (paper Sec. 5.1)."""
        if self._sizes is None:
            self._sizes = np.array([p.size() for p in self.patches])
        return self._sizes

    def area(self) -> float:
        return float(self.coarse().weights.sum())

    def volume(self) -> float:
        """Enclosed volume via the divergence theorem (orientation-aware)."""
        d = self.coarse()
        return float(np.einsum("nk,nk,n->", d.points, d.normals, d.weights)) / 3.0

    def bounding_boxes(self, pad_factor: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Per-patch AABBs inflated by ``pad_factor * L`` (the near-zone
        boxes B_{P, eps} of Sec. 3.3). Returns (lo, hi) arrays (n_patches, 3)."""
        L = self.patch_sizes()
        lo = np.empty((self.n_patches, 3))
        hi = np.empty((self.n_patches, 3))
        for i, p in enumerate(self.patches):
            lo[i], hi[i] = p.bounding_box(pad=pad_factor * L[i])
        return lo, hi

    def collision_points(self, m: Optional[int] = None) -> tuple[np.ndarray, np.ndarray]:
        """Equispaced collision samples for every patch.

        Returns ``(points, patch_of)``; the paper uses m = 22 (484 points).
        """
        m = m or 22
        pts = [p.collision_points(m) for p in self.patches]
        owner = np.repeat(np.arange(self.n_patches), m * m)
        return np.concatenate(pts), owner

    # -- refinement --------------------------------------------------------------
    def refined(self, k: int = 2) -> "PatchSurface":
        """Uniformly subdivide every patch into k x k children.

        This is the weak-scaling refinement step of Sec. 5.2 (k = 2 gives
        4x the patches).
        """
        out: list[ChebPatch] = []
        for p in self.patches:
            out.extend(p.subdivide(k))
        return PatchSurface(out, self.options)

    def flip_orientation(self) -> "PatchSurface":
        """Reverse the normal direction (swap u and v)."""
        flipped = [ChebPatch(np.transpose(p.values, (1, 0, 2))) for p in self.patches]
        return PatchSurface(flipped, self.options)

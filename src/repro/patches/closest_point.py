"""Closest-point search on patch surfaces (paper Sec. 3.3, step d).

Given a target ``x``, minimize ``|x - P_i(u, v)|`` over ``(u, v) in
[-1,1]^2`` with Newton's method plus backtracking line search, seeded from
the nearest quadrature sample; candidate patches come from the spatial-hash
broad phase in :mod:`repro.runtime.spatial_hash` (or brute force for the
serial path here).
"""
from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from .patch import ChebPatch
from .surface import PatchSurface


@dataclasses.dataclass
class ClosestPointResult:
    """Result of a closest-point query against one surface."""

    patch_index: int
    uv: np.ndarray
    point: np.ndarray
    distance: float
    normal: np.ndarray
    #: patch size L of the owning patch (sets the check-point scale).
    patch_size: float


def closest_point_on_patch(patch: ChebPatch, x: np.ndarray,
                           uv0: Optional[np.ndarray] = None,
                           iters: int = 30, tol: float = 1e-12
                           ) -> tuple[np.ndarray, np.ndarray, float]:
    """Newton + backtracking minimization of |x - P(u,v)| on one patch.

    The parameters are clamped to [-1, 1]^2 (the minimum may be on the
    patch edge; the neighboring patch then yields the true closest point,
    which the surface-level search accounts for by examining several
    candidate patches). Returns (uv, point, distance).
    """
    x = np.asarray(x, float)
    if uv0 is None:
        # Seed from a coarse parameter sampling.
        t = np.linspace(-1.0, 1.0, patch.n)
        U, V = np.meshgrid(t, t, indexing="ij")
        uv_s = np.column_stack([U.ravel(), V.ravel()])
        pts = patch.evaluate(uv_s)
        uv = uv_s[np.argmin(np.einsum("nk,nk->n", pts - x, pts - x))].copy()
    else:
        uv = np.asarray(uv0, float).copy()

    def fval(uv_):
        p = patch.evaluate(uv_[None, :])[0]
        return 0.5 * float(np.sum((p - x) ** 2))

    f0 = fval(uv)
    for _ in range(iters):
        X, Xu, Xv, Xuu, Xuv, Xvv = patch.derivatives(uv[None, :], second=True)
        r = X[0] - x
        g = np.array([r @ Xu[0], r @ Xv[0]])
        H = np.array([
            [Xu[0] @ Xu[0] + r @ Xuu[0], Xu[0] @ Xv[0] + r @ Xuv[0]],
            [Xu[0] @ Xv[0] + r @ Xuv[0], Xv[0] @ Xv[0] + r @ Xvv[0]],
        ])
        # Guard indefinite Hessians with a gradient-descent fallback.
        try:
            step = np.linalg.solve(H, g)
            if step @ g <= 0:
                step = g
        except np.linalg.LinAlgError:
            step = g
        t = 1.0
        improved = False
        for _ in range(25):
            cand = np.clip(uv - t * step, -1.0, 1.0)
            fc = fval(cand)
            if fc < f0 - 1e-16:
                uv, f0 = cand, fc
                improved = True
                break
            t *= 0.5
        if not improved or np.linalg.norm(t * step) < tol:
            break
    p = patch.evaluate(uv[None, :])[0]
    return uv, p, float(np.linalg.norm(p - x))


def surface_closest_point(surface: PatchSurface, x: np.ndarray,
                          candidates: Optional[Sequence[int]] = None,
                          n_candidates: int = 4) -> ClosestPointResult:
    """Closest point on a whole patch surface.

    ``candidates`` restricts the search to given patch indices (as supplied
    by the parallel spatial-hash filter); otherwise the few patches whose
    coarse nodes are nearest are refined with Newton.
    """
    x = np.asarray(x, float)
    d = surface.coarse()
    if candidates is None:
        d2 = np.einsum("nk,nk->n", d.points - x, d.points - x)
        # Best patches by their closest coarse node.
        order = np.argsort(d2)
        cand: list[int] = []
        for idx in order:
            pid = int(d.patch_of[idx])
            if pid not in cand:
                cand.append(pid)
            if len(cand) >= n_candidates:
                break
    else:
        cand = list(candidates)

    best: Optional[ClosestPointResult] = None
    L = surface.patch_sizes()
    for pid in cand:
        patch = surface.patches[pid]
        uv, p, dist = closest_point_on_patch(patch, x)
        if best is None or dist < best.distance:
            nrm = patch.normals(uv[None, :])[0]
            best = ClosestPointResult(patch_index=pid, uv=uv, point=p,
                                      distance=dist, normal=nrm,
                                      patch_size=float(L[pid]))
    if best is None:
        raise RuntimeError(
            "closest-point query had no candidate patches to refine "
            f"(surface has {len(surface.patches)} patches, candidates="
            f"{candidates!r}) — the spatial-hash filter passed an empty "
            "candidate list")
    return best

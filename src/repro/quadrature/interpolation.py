"""Barycentric polynomial interpolation on Chebyshev-Lobatto grids.

These matrices implement the density upsampling operator ``U`` of the
singular quadrature scheme (paper Sec. 3.1, step 1): values known at the
coarse per-patch Clenshaw-Curtis nodes are interpolated to the nodes of the
``4**eta`` fine subpatches. Interpolation at Chebyshev nodes is numerically
stable at any order via the barycentric formula.
"""
from __future__ import annotations

import numpy as np

from ..analysis.guard import PER_ORDER_CACHE_SIZE, freeze, locked_cache


def chebyshev_lobatto_nodes(n: int) -> np.ndarray:
    """Ascending Chebyshev-Lobatto nodes on [-1, 1] (the CC nodes)."""
    if n == 1:
        return np.zeros(1)
    k = np.arange(n)
    return -np.cos(np.pi * k / (n - 1))


@locked_cache(maxsize=PER_ORDER_CACHE_SIZE)
def _bary_weights_cached(n: int) -> np.ndarray:
    # Closed form for Chebyshev-Lobatto points: w_k = (-1)^k * delta_k,
    # delta = 1/2 at the endpoints, 1 elsewhere.
    w = np.ones(n)
    w[0] = 0.5
    w[-1] = 0.5
    w *= (-1.0) ** np.arange(n)
    return freeze(w)


def barycentric_weights(nodes: np.ndarray) -> np.ndarray:
    """Barycentric weights for arbitrary distinct nodes (O(n^2))."""
    nodes = np.asarray(nodes, dtype=float)
    n = nodes.size
    w = np.ones(n)
    for j in range(n):
        diff = nodes[j] - np.delete(nodes, j)
        w[j] = 1.0 / np.prod(diff)
    return w


def barycentric_matrix(nodes: np.ndarray, targets: np.ndarray,
                       weights: np.ndarray | None = None) -> np.ndarray:
    """Dense interpolation matrix from ``nodes`` to ``targets``.

    ``M @ f(nodes)`` equals the interpolating polynomial evaluated at
    ``targets``. Exact hits on a node return the nodal value.
    """
    nodes = np.asarray(nodes, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if weights is None:
        weights = barycentric_weights(nodes)
    diff = targets[:, None] - nodes[None, :]
    exact_rows, exact_cols = np.nonzero(diff == 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = weights[None, :] / diff
        M = terms / terms.sum(axis=1, keepdims=True)
    if exact_rows.size:
        M[exact_rows, :] = 0.0
        M[exact_rows, exact_cols] = 1.0
    return M


def chebyshev_interp_matrix(n: int, targets: np.ndarray) -> np.ndarray:
    """Interpolation matrix from the n-point Chebyshev-Lobatto grid."""
    nodes = chebyshev_lobatto_nodes(n)
    return barycentric_matrix(nodes, targets, _bary_weights_cached(n))


def interp_matrix_2d(n: int, targets_uv: np.ndarray) -> np.ndarray:
    """Tensor-product interpolation matrix on the reference square.

    Maps values sampled at the ``n x n`` tensor Chebyshev-Lobatto grid
    (u fastest, matching :func:`tensor_clenshaw_curtis`) to arbitrary
    ``(m, 2)`` target parameter locations.
    """
    targets_uv = np.atleast_2d(np.asarray(targets_uv, dtype=float))
    Mu = chebyshev_interp_matrix(n, targets_uv[:, 0])  # (m, n)
    Mv = chebyshev_interp_matrix(n, targets_uv[:, 1])  # (m, n)
    # Value at (u, v) = sum_{i,j} Mu[:, i] * Mv[:, j] * f[i, j] with f
    # stored u-fastest: flat index = i * n + j? We store U along rows
    # (meshgrid indexing="ij"), flat = i_u * n + i_v.
    m = targets_uv.shape[0]
    M = (Mu[:, :, None] * Mv[:, None, :]).reshape(m, n * n)
    return M

"""Clenshaw-Curtis quadrature on [-1, 1] and its tensor product.

The vessel boundary is discretized per-patch with a tensor-product q-th
order Clenshaw-Curtis rule (paper Sec. 3.1: 11x11 points for 8th-order
patches; the fine discretization uses an 11th-order rule on each of the
4**eta subpatches).
"""
from __future__ import annotations

import numpy as np

from ..analysis.guard import PER_ORDER_CACHE_SIZE, freeze, locked_cache


@locked_cache(maxsize=PER_ORDER_CACHE_SIZE)
def _cc_cached(n: int) -> tuple[np.ndarray, np.ndarray]:
    if n < 1:
        raise ValueError("Clenshaw-Curtis rule needs at least one node")
    if n == 1:
        return freeze(np.zeros(1), np.array([2.0]))
    # Chebyshev-Lobatto nodes x_k = cos(pi k / (n-1)), ascending order.
    k = np.arange(n)
    x = -np.cos(np.pi * k / (n - 1))
    # Weights via the standard cosine-sum formula (exact for degree n-1).
    w = np.zeros(n)
    jmax = (n - 1) // 2
    for i in range(n):
        theta = np.pi * i / (n - 1)
        s = 0.0
        for j in range(1, jmax + 1):
            b = 2.0 if 2 * j < n - 1 else 1.0
            s += b / (4.0 * j * j - 1.0) * np.cos(2.0 * j * theta)
        w[i] = 2.0 / (n - 1) * (1.0 - s)
    w[0] *= 0.5
    w[-1] *= 0.5
    return freeze(x, w)


def clenshaw_curtis(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Return nodes and weights of the n-point Clenshaw-Curtis rule.

    Nodes are Chebyshev-Lobatto points in ascending order on [-1, 1]; the
    rule integrates polynomials of degree ``n - 1`` exactly.
    """
    x, w = _cc_cached(int(n))
    return x.copy(), w.copy()


def tensor_clenshaw_curtis(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Tensor-product rule on the reference square Q = [-1, 1]^2.

    Returns ``(nodes, weights)`` where ``nodes`` is ``(n*n, 2)`` with the
    *u* index varying fastest, matching the patch sampling convention used
    throughout :mod:`repro.patches`.
    """
    x, w = clenshaw_curtis(n)
    U, V = np.meshgrid(x, x, indexing="ij")  # U varies along rows
    nodes = np.column_stack([U.ravel(), V.ravel()])
    weights = np.outer(w, w).ravel()
    return nodes, weights

"""1-D polynomial extrapolation stencils for the check-point scheme.

Step 5 of the singular/near-singular quadrature (paper Sec. 3.1) extrapolates
velocities from the check points ``c_i = y - (R + i r) n`` back to the target
``x`` at (signed) distance ``d`` from the surface along the same normal. With
check points at parameters ``t_i = R + i r`` and the target at ``t = d``,
the weights ``e_q`` are those of Lagrange extrapolation.
"""
from __future__ import annotations

import numpy as np

from .interpolation import barycentric_matrix, barycentric_weights


def extrapolation_weights(R: float, r: float, p: int, target_t: float = 0.0) -> np.ndarray:
    """Weights ``e_q`` of the (p+1)-point extrapolation to ``target_t``.

    Check points live at ``t_i = R + i * r`` for ``i = 0..p``; the target is
    at parameter ``target_t`` (0 for an on-surface target; positive values
    are points between the surface and the first check point). The returned
    weights satisfy ``u(target) = sum_q e_q u(c_q)`` exactly for polynomials
    of degree ``p``.
    """
    if p < 0:
        raise ValueError("extrapolation order p must be non-negative")
    t = R + r * np.arange(p + 1, dtype=float)
    w = barycentric_weights(t)
    M = barycentric_matrix(t, np.array([target_t]), w)
    return M[0]

"""Quadrature rules and extrapolation stencils.

Implements the 1-D building blocks the paper's discretizations are assembled
from: Clenshaw-Curtis rules on [-1, 1] (vessel patches), Gauss-Legendre rules
(RBC colatitude grid), barycentric Chebyshev-Lobatto interpolation (density
upsampling onto the fine discretization), and the 1-D polynomial
extrapolation stencil used by the singular/near-singular quadrature scheme of
Section 3.1 (Fig. 2).
"""
from .clenshaw_curtis import clenshaw_curtis, tensor_clenshaw_curtis
from .gauss_legendre import gauss_legendre
from .interpolation import (
    barycentric_weights,
    barycentric_matrix,
    chebyshev_lobatto_nodes,
    interp_matrix_2d,
)
from .extrapolation import extrapolation_weights

__all__ = [
    "clenshaw_curtis",
    "tensor_clenshaw_curtis",
    "gauss_legendre",
    "barycentric_weights",
    "barycentric_matrix",
    "chebyshev_lobatto_nodes",
    "interp_matrix_2d",
    "extrapolation_weights",
]

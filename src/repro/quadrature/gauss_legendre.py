"""Gauss-Legendre quadrature, cached.

Used for the colatitude direction of the spherical-harmonic grid: with
``p + 1`` Gauss-Legendre nodes in ``cos(theta)`` the forward transform of a
band-limited (order p) function is exact.
"""
from __future__ import annotations

import numpy as np

from ..analysis.guard import PER_ORDER_CACHE_SIZE, freeze, locked_cache


@locked_cache(maxsize=PER_ORDER_CACHE_SIZE)
def _gl_cached(n: int) -> tuple[np.ndarray, np.ndarray]:
    x, w = np.polynomial.legendre.leggauss(int(n))
    return freeze(x, w)


def gauss_legendre(n: int, a: float = -1.0, b: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Return the n-point Gauss-Legendre rule on [a, b] (ascending nodes)."""
    if n < 1:
        raise ValueError("Gauss-Legendre rule needs at least one node")
    x, w = _gl_cached(int(n))
    if (a, b) != (-1.0, 1.0):
        mid = 0.5 * (a + b)
        half = 0.5 * (b - a)
        return mid + half * x, half * w
    return x.copy(), w.copy()

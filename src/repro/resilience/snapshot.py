"""Pre-step snapshot and rollback of the mutable per-cell state.

The transactional step captures everything :meth:`repro.core.stepper.
TimeStepper.step` mutates, so a rejected step can be rolled back and
retried at a smaller ``dt``. Two kinds of state are captured:

- **Copies** of the arrays the step overwrites in place or reseeds:
  positions, spectral coefficients, tensions. Copies are taken so one
  snapshot survives multiple restore/retry cycles.
- **References** to the cached per-cell operator state: the
  ``_f_ext`` force cache, the factorized tension/implicit solvers and
  the self-interaction operator attributes. These are safe to hold by
  reference because the stepper *replaces* them (new arrays, new solver
  objects, new tuples) rather than mutating in place —
  ``SingularSelfInteraction._correct_matrix`` / ``_finalize_full``
  assign fresh arrays, and the solver caches are ``None``-ed and
  rebuilt. Restoring puts the original objects back.

The snapshot also records each cell's pre-step area and volume, which
the health sentinel's drift checks compare against.
"""
from __future__ import annotations

import dataclasses
from typing import List, Optional

#: the attributes of :class:`repro.vesicle.SingularSelfInteraction` that
#: together determine its behavior (operator matrix, reference
#: configuration of the geometric correction, refresh-cycle phase,
#: cached rotated geometry). All array values are replaced — never
#: mutated — by the refresh paths, so reference snapshots suffice.
SELFOP_ATTRS = (
    "_matrix", "_ref_matrix", "_ref_area", "_ref_points", "_ref_weights",
    "_rotated_geometry_stale", "_pending_install", "_since_full",
    "X_rot", "w_rot",
)


@dataclasses.dataclass
class StepSnapshot:
    """Rollback point of one :class:`~repro.core.stepper.TimeStepper`."""

    t: float
    positions: List
    coeffs: List
    sigmas: List
    f_ext: List
    tension_solvers: List
    impl_lu: List
    selfop_state: List
    areas: List[float]
    volumes: List[float]


def capture_state(stepper, t: float) -> StepSnapshot:
    """Snapshot every piece of state :meth:`TimeStepper.step` mutates."""
    cells = stepper.cells
    return StepSnapshot(
        t=float(t),
        positions=[c.X.copy() for c in cells],
        # coeffs() hits the cache seeded by the previous step (or the
        # constructor's operator assembly), so this is a copy, not an SHT.
        coeffs=[c.coeffs().copy() for c in cells],
        sigmas=[s.copy() for s in stepper.sigmas],
        f_ext=list(stepper._f_ext),
        tension_solvers=list(stepper._tension_solvers),
        impl_lu=list(stepper._impl_lu),
        selfop_state=[{a: getattr(op, a) for a in SELFOP_ATTRS}
                      for op in stepper._self_ops],
        areas=[c.area() for c in cells],
        volumes=[c.volume() for c in cells],
    )


def restore_state(stepper, snapshot: StepSnapshot) -> None:
    """Roll ``stepper`` back to ``snapshot``.

    Positions and coefficients are restored from fresh copies (the
    snapshot stays valid for further retries); the coefficient reseed
    matters for bit-identity — ``set_positions`` clears the coefficient
    cache, and recomputing per cell would differ in the last bit from
    the stacked forward SHT that seeded the originals. The interaction
    backend's per-cell evaluators are refreshed so no stepped geometry
    survives in a cache.
    """
    for i, c in enumerate(stepper.cells):
        c.set_positions(snapshot.positions[i])
        c.seed_coeffs(snapshot.coeffs[i].copy())
    stepper.sigmas = [s.copy() for s in snapshot.sigmas]
    stepper._f_ext = list(snapshot.f_ext)
    stepper._tension_solvers = list(snapshot.tension_solvers)
    stepper._impl_lu = list(snapshot.impl_lu)
    for op, state in zip(stepper._self_ops, snapshot.selfop_state):
        for attr, value in state.items():
            setattr(op, attr, value)
    for i in range(len(stepper.cells)):
        stepper.backend.refresh(i)

"""Resilience layer: health sentinel, transactional stepping, checkpoints.

Long contact-rich runs (the paper's regime: thousands of steps, dozens
of cells) fail in practice through a handful of well-understood modes —
a non-converged contact projection, a fast-summation blow-up, a
degenerate quadrature producing NaNs — and a single corrupted step
silently poisons everything after it. This package makes
:meth:`repro.core.simulation.Simulation.step` transactional:

- :mod:`~repro.resilience.health` folds the solver diagnostics the step
  already computes into one structured :class:`StepHealth` verdict;
- :mod:`~repro.resilience.snapshot` captures/restores the mutable
  per-cell state so a rejected step rolls back bit-exactly;
- :mod:`~repro.resilience.checkpoint` persists a mid-run state to disk
  and resumes it bit-identically.

Policy (what rejects a step, how many dt-halved retries, the backend
degradation chain) lives in :class:`repro.config.ResilienceOptions`.
"""
from .health import (HealthSentinel, StepHealth, StepRejectedError,
                     WarnOnceRegistry, reset_warnings, warn_once)
from .snapshot import StepSnapshot, capture_state, restore_state
from .checkpoint import (CHECKPOINT_VERSION, load_checkpoint,
                         save_checkpoint)

__all__ = [
    "HealthSentinel", "StepHealth", "StepRejectedError",
    "WarnOnceRegistry", "reset_warnings", "warn_once",
    "StepSnapshot", "capture_state", "restore_state",
    "CHECKPOINT_VERSION", "save_checkpoint", "load_checkpoint",
]

"""The health sentinel: cheap per-step validation of the stepped state.

Long-horizon contact-rich runs are exactly the regime where a single bad
step — a non-converged contact solve, a near-singular quadrature
blow-up, a NaN from a degenerate close pair — corrupts the trajectory
silently. The sentinel folds the already-computed solver diagnostics
(GMRES ``converged`` flags, LCP/NCP residuals, singular LU slices) and
two cheap state invariants (finiteness, per-cell area/volume drift
against the pre-step snapshot) into one structured :class:`StepHealth`
verdict. Every input is either already on the :class:`~repro.core.stepper.
StepReport` or a cached surface quantity the next step computes anyway,
so the sentinel adds no appreciable per-step cost (gated at <3% by
``benchmarks/bench_step_breakdown.py``).

Which findings *reject* a step is policy, not physics, and lives in
:class:`repro.config.ResilienceOptions`. Two findings are deliberately
record-only: BIE non-convergence (the paper caps the boundary GMRES at
30 iterations by design, so hitting the cap is the expected steady-state
behavior, not a fault) and singular LU slices (already degraded
gracefully to the GMRES fallback by :mod:`repro.linalg.dense`).

This module imports nothing from :mod:`repro.core` so the stepper can
import :func:`warn_once` without a cycle.
"""
from __future__ import annotations

import dataclasses
import itertools
import logging
import threading
from typing import List

import numpy as np

_log = logging.getLogger(__name__)


class WarnOnceRegistry:
    """Per-run once-only warning registry.

    Each :class:`~repro.core.stepper.TimeStepper` owns one, so recurring
    per-step conditions (a capped BIE solve, a degraded backend) are
    logged exactly once *per simulation* — not once per process. The old
    process-global registry meant the first simulation to hit "BIE
    capped" silenced that warning for every other simulation sharing the
    interpreter (a sweep runs many), and a test calling
    ``reset_warnings()`` nuked other live runs' state.

    Keys carry run identity: every instance gets a process-unique
    ``run_id`` (stamped into the logged message), and the seen-set is
    per-instance, so two concurrent simulations never suppress each
    other's findings. The registry is lock-guarded because refresh tasks
    may run on the thread pool.
    """

    _ids = itertools.count(1)

    def __init__(self, run_id: "str | None" = None):
        self.run_id = run_id if run_id is not None \
            else f"run-{next(WarnOnceRegistry._ids)}"
        self._seen: set = set()
        self._lock = threading.Lock()

    def warn_once(self, key: str, message: str) -> bool:
        """Emit ``message`` through :mod:`logging` the first time ``key``
        is seen *by this registry*; later calls with the same key are
        silent. Returns whether the warning fired."""
        full_key = (self.run_id, key)
        with self._lock:
            if full_key in self._seen:
                return False
            self._seen.add(full_key)
        _log.warning("[%s] %s", self.run_id, message)
        return True

    def reset(self) -> None:
        """Forget every key this registry has seen."""
        with self._lock:
            self._seen.clear()


#: the process-wide registry behind the deprecated module-level
#: :func:`warn_once` / :func:`reset_warnings` shims; bound simulations
#: each carry their own instance instead.
# repro-lint: disable=global-mutable — deprecated shim registry; new code
# binds a per-simulation WarnOnceRegistry (see class docstring)
_module_registry = WarnOnceRegistry(run_id="process")


def warn_once(key: str, message: str) -> bool:
    """Deprecated module-level shim over a process-wide
    :class:`WarnOnceRegistry`. Kept for the few module-level call sites
    and for backward compatibility; simulation-scoped code should use
    the registry bound on its stepper (``stepper.warnings.warn_once``)
    so one run's findings never suppress another's."""
    return _module_registry.warn_once(key, message)


def reset_warnings() -> None:
    """Forget every key of the deprecated module-level shim registry
    (test isolation). Per-simulation registries are unaffected — use
    ``stepper.warnings.reset()`` for those."""
    _module_registry.reset()


class StepRejectedError(RuntimeError):
    """A step failed its health checks and the retry budget (or the dt
    floor) is exhausted; the simulation state has been rolled back to
    the last accepted step. ``health`` carries the final
    :class:`StepHealth` verdict when the failure was a sentinel
    rejection (``None`` when the step raised instead)."""

    def __init__(self, message: str, health: "StepHealth | None" = None):
        super().__init__(message)
        self.health = health


@dataclasses.dataclass
class StepHealth:
    """Structured verdict of one step's sentinel evaluation."""

    #: overall verdict; ``bool(health)`` mirrors it.
    healthy: bool
    #: human-readable reason per failed check (empty when healthy).
    failures: List[str]
    #: cells whose positions or tensions contain non-finite values.
    nonfinite_cells: List[int]
    #: worst relative surface-area drift across cells within the step.
    area_drift: float
    #: worst relative enclosed-volume drift across cells within the step.
    volume_drift: float

    def __bool__(self) -> bool:
        return self.healthy


class HealthSentinel:
    """Evaluates a stepped simulation state against a
    :class:`repro.config.ResilienceOptions` policy.

    ``warnings`` scopes the record-only findings' once-per-run log lines
    to one simulation (pass the stepper's :class:`WarnOnceRegistry`);
    when omitted, the deprecated process-wide shim registry is used."""

    def __init__(self, policy, warnings: "WarnOnceRegistry | None" = None):
        self.policy = policy
        self.warnings = warnings if warnings is not None else _module_registry

    def evaluate(self, stepper, report, snapshot) -> StepHealth:
        """Validate the post-step state of ``stepper`` against the
        pre-step ``snapshot``; ``report`` supplies the solver flags the
        step already computed. Pure observation — never mutates the
        simulation."""
        pol = self.policy
        failures: List[str] = []
        nonfinite: List[int] = []
        for i, c in enumerate(stepper.cells):
            if not np.isfinite(c.X).all():
                nonfinite.append(i)
        for i, s in enumerate(stepper.sigmas):
            if i not in nonfinite and not np.isfinite(s).all():
                nonfinite.append(i)
        nonfinite.sort()
        if nonfinite:
            failures.append(f"non-finite positions/tensions on cells "
                            f"{nonfinite}")

        area_drift = 0.0
        volume_drift = 0.0
        if not nonfinite:
            # area()/volume() read the cached surface geometry the next
            # step needs anyway, so this only front-loads that work.
            for i, c in enumerate(stepper.cells):
                a0, v0 = snapshot.areas[i], snapshot.volumes[i]
                if a0 > 0.0:
                    area_drift = max(area_drift, abs(c.area() / a0 - 1.0))
                if v0 != 0.0:
                    volume_drift = max(volume_drift,
                                       abs(c.volume() / v0 - 1.0))
            if area_drift > pol.max_area_drift:
                failures.append(
                    f"surface area drifted {area_drift:.3g} in one step "
                    f"(bound {pol.max_area_drift:.3g})")
            if volume_drift > pol.max_volume_drift:
                failures.append(
                    f"enclosed volume drifted {volume_drift:.3g} in one "
                    f"step (bound {pol.max_volume_drift:.3g})")

        if pol.reject_nonconverged_implicit:
            bad = [i for i, ok in enumerate(report.implicit_converged)
                   if not ok]
            if bad:
                failures.append(f"implicit solve non-converged on cells "
                                f"{bad}")
            if not report.tension_converged:
                failures.append("tension solve non-converged")
        if (pol.reject_unresolved_contact and report.ncp is not None
                and not (report.ncp.resolved and report.ncp.lcp_converged)):
            failures.append(
                "contact projection unresolved (penetration "
                f"{report.ncp.max_penetration_after:.3g} after "
                f"{report.ncp.lcp_solves} LCP solves, lcp_converged="
                f"{report.ncp.lcp_converged})")

        # Record-only findings (see the module docstring for why these
        # never reject): surfaced through warn_once so long runs log
        # them exactly once.
        if not report.bie_converged:
            self.warnings.warn_once(
                "bie-nonconverged",
                "boundary-integral GMRES hit its iteration cap "
                "without reaching tolerance (the paper's capped-"
                "iteration regime); recording, not rejecting")
        if report.lu_singular:
            self.warnings.warn_once(
                "lu-singular",
                f"singular LU factorization on cells "
                f"{report.lu_singular}; solves routed through the "
                "GMRES fallback")

        return StepHealth(healthy=not failures, failures=failures,
                          nonfinite_cells=nonfinite,
                          area_drift=float(area_drift),
                          volume_drift=float(volume_drift))

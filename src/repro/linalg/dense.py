"""Dense LU factorizations for the per-cell direct solves.

The tension Schur complement and the implicit bending operator are small
dense matrices (N and 3N per cell); factorizing them once per refresh and
back-substituting per solve replaces the inner GMRES loops entirely. SciPy's
LAPACK-backed ``lu_factor``/``lu_solve`` is used when available; the numpy
fallback solves against the stored matrix directly (same results, no reuse
of the factorization across solves).

:class:`StackedLUFactorization` holds the factorizations of a whole
equal-shape *batch* ``(k, n, n)`` — the per-cell operators of an
equal-order cell group — in one stacked buffer, driving the same
``getrf``/``getrs`` LAPACK kernels ``lu_factor``/``lu_solve`` wrap, so a
stacked solve is bit-identical to ``k`` independent
:class:`LUFactorization` solves while factor/solve dispatch happens once
per group instead of once per cell.

A singular operator (``getrf`` reports an exactly-zero ``U`` diagonal)
is detected at factorization: instead of the LAPACK behavior of keeping
the factorization and letting every solve produce inf/nan, the affected
matrix (slice) is retained and its solves are routed through the
matrix-free :func:`repro.linalg.gmres` — finite least-squares-style
iterates instead of poisoned output — and the condition is surfaced on
``.singular`` so the health sentinel can report which cells degraded.
"""
from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from ..analysis.contracts import checked
from .gmres import gmres

try:
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve
    from scipy.linalg import get_lapack_funcs as _get_lapack_funcs
    from scipy.linalg import LinAlgWarning as _LinAlgWarning
except ImportError:  # pragma: no cover - scipy is a standard dependency
    _lu_factor = None
    _lu_solve = None
    _get_lapack_funcs = None
    _LinAlgWarning = RuntimeWarning


def _gmres_fallback_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Matrix-free GMRES solve against a singular operator (1-D rhs or
    stacked columns): the iterates stay finite — GMRES minimizes the
    residual over the Krylov space, returning a least-squares-style
    solution where a triangular back-substitution would divide by the
    zero pivot."""
    n = matrix.shape[0]

    def matvec(x: np.ndarray) -> np.ndarray:
        return matrix @ x

    if rhs.ndim == 1:
        return gmres(matvec, rhs, tol=1e-12, max_iter=n).x
    cols = [gmres(matvec, rhs[:, k], tol=1e-12, max_iter=n).x
            for k in range(rhs.shape[1])]
    return np.stack(cols, axis=1)


class LUFactorization:
    """LU factorization of a square dense operator, reusable across solves.

    A singular matrix (exactly-zero ``U`` pivot, the condition LAPACK's
    ``getrf`` flags with ``info > 0``) is detected at construction and
    marked on :attr:`singular`; its solves route through a matrix-free
    GMRES fallback instead of producing inf/nan.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"expected a square matrix, got {matrix.shape}")
        self.shape = matrix.shape
        #: whether the factorization hit an exactly-zero pivot (solves
        #: fall back to GMRES against the retained matrix).
        self.singular = False
        if _lu_factor is not None:
            with warnings.catch_warnings():
                # scipy's own "matrix is singular" warning is superseded
                # by the explicit fallback warning below.
                warnings.simplefilter("ignore", _LinAlgWarning)
                self._lu = _lu_factor(matrix)
            self.singular = bool(np.any(np.diag(self._lu[0]) == 0.0))
            self._matrix = matrix.copy() if self.singular else None
            if self.singular:
                warnings.warn(
                    "matrix is singular (exactly-zero U pivot); solves "
                    "will run through the GMRES fallback instead of the "
                    "factorization", _LinAlgWarning, stacklevel=2)
        else:  # pragma: no cover - scipy is a standard dependency
            self._lu = None
            self._matrix = matrix.copy()

    @classmethod
    def from_factors(cls, lu: np.ndarray, piv: np.ndarray
                     ) -> "LUFactorization":
        """Rebuild a factorization from stored ``(lu, piv)`` factors
        (:attr:`factors` of a previous instance — checkpoint restore).

        ``getrs`` against identical factor arrays is bit-identical
        regardless of whether they originally came from a per-cell
        ``lu_factor`` or a slice of a stacked ``getrf`` pass, which is
        what lets checkpoints serialize factors instead of reassembling
        operators. Requires SciPy (the factors are LAPACK's packed
        form); checkpoints are not written on the numpy fallback.
        """
        if _lu_factor is None:  # pragma: no cover - scipy is standard
            raise NotImplementedError(
                "restoring serialized LU factors requires scipy")
        self = cls.__new__(cls)
        lu = np.ascontiguousarray(np.asarray(lu, float))
        piv = np.ascontiguousarray(np.asarray(piv, np.int32))
        if lu.ndim != 2 or lu.shape[0] != lu.shape[1]:
            raise ValueError(f"expected square LU factors, got {lu.shape}")
        self.shape = lu.shape
        self._lu = (lu, piv)
        self.singular = bool(np.any(np.diag(lu) == 0.0))
        self._matrix = None
        if self.singular:
            raise ValueError(
                "serialized LU factors are singular; the originating "
                "factorization solved through its retained matrix, which "
                "is not serialized")
        return self

    @property
    def factors(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(lu, piv)`` factor pair, for checkpoint serialization
        (feed back through :meth:`from_factors`). Raises on the numpy
        fallback and on singular factorizations (no reusable factors)."""
        if self._lu is None or self.singular:
            raise NotImplementedError(
                "no serializable LU factors (numpy fallback or singular "
                "matrix)")
        return self._lu

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` (1-D or stacked columns)."""
        rhs = np.asarray(rhs, float)
        if self.singular:
            return _gmres_fallback_solve(self._matrix, rhs)
        if self._lu is not None:
            return _lu_solve(self._lu, rhs)
        try:  # pragma: no cover - scipy is a standard dependency
            return np.linalg.solve(self._matrix, rhs)
        except np.linalg.LinAlgError:  # pragma: no cover
            self.singular = True
            return _gmres_fallback_solve(self._matrix, rhs)


class StackedLUFactorization:
    """LU factorizations of an equal-shape batch of square operators.

    The batch is factorized at construction from a ``(k, n, n)`` stack
    (or a sequence of ``k`` matrices) with the same LAPACK ``getrf``
    SciPy's ``lu_factor`` wraps, into one stacked ``(k, n, n)`` factor
    buffer; solves run ``getrs`` per slice exactly like ``lu_solve``, so
    every result is bit-identical to the corresponding per-cell
    :class:`LUFactorization`. :meth:`handle` hands out a single-slice
    view with the ``.solve`` interface of :class:`LUFactorization`, so
    per-cell consumers (the factorized tension/implicit solvers) can
    hold a slice of a group factorization without knowing about the
    batch.

    Without SciPy, mirrors :class:`LUFactorization`'s fallback: matrices
    are stored and solves call ``numpy.linalg.solve`` per slice.
    """

    def __init__(self, matrices: np.ndarray | Sequence[np.ndarray]):
        if not isinstance(matrices, np.ndarray):
            matrices = np.stack([np.asarray(m, float) for m in matrices])
        matrices = np.asarray(matrices, float)
        if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
            raise ValueError("expected a (k, n, n) stack of square "
                             f"matrices, got {matrices.shape}")
        self.shape = matrices.shape
        #: slice indices whose factorization hit an exactly-zero pivot;
        #: their solves run through the GMRES fallback (the slice matrix
        #: is retained in ``_singular_matrices``).
        self.singular: tuple[int, ...] = ()
        self._singular_matrices: dict[int, np.ndarray] = {}
        if _get_lapack_funcs is not None:
            getrf, = _get_lapack_funcs(("getrf",), (matrices[0],))
            self._lu = np.empty_like(matrices)
            self._piv = np.empty(matrices.shape[:2], dtype=np.int32)
            self._getrs = _get_lapack_funcs(("getrs",),
                                            (matrices[0],))[0]
            singular = []
            for i in range(matrices.shape[0]):
                lu, piv, info = getrf(matrices[i])
                if info > 0:
                    # a back-substitution against the zero pivot would
                    # poison the run with inf/nan; keep the slice matrix
                    # and route its solves through GMRES instead
                    warnings.warn(
                        f"matrix {i} of the stack is singular "
                        f"(U[{info - 1}, {info - 1}] is exactly zero); "
                        "its solves will run through the GMRES fallback "
                        "instead of the factorization",
                        _LinAlgWarning, stacklevel=2)
                    singular.append(i)
                    self._singular_matrices[i] = matrices[i].copy()
                self._lu[i] = lu
                self._piv[i] = piv
            self.singular = tuple(singular)
            self._matrices = None
        else:  # pragma: no cover - scipy is a standard dependency
            self._lu = None
            self._matrices = matrices.copy()

    def __len__(self) -> int:
        return self.shape[0]

    def solve_one(self, i: int, rhs: np.ndarray) -> np.ndarray:
        """Solve slice ``i``'s system (1-D rhs or stacked columns)."""
        rhs = np.asarray(rhs, float)
        if i in self._singular_matrices:
            return _gmres_fallback_solve(self._singular_matrices[i], rhs)
        if self._lu is not None:
            x, info = self._getrs(self._lu[i], self._piv[i], rhs)
            return x
        try:  # pragma: no cover - scipy is a standard dependency
            return np.linalg.solve(self._matrices[i], rhs)
        except np.linalg.LinAlgError:  # pragma: no cover
            self._singular_matrices[i] = self._matrices[i].copy()
            self.singular = tuple(sorted({*self.singular, i}))
            return _gmres_fallback_solve(self._matrices[i], rhs)

    @checked(rhs="(k, n)", out="(k, n) f8")
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve all systems against a ``(k, n)`` right-hand-side stack."""
        rhs = np.asarray(rhs, float)
        if rhs.shape[0] != self.shape[0]:
            raise ValueError(f"expected {self.shape[0]} right-hand sides, "
                             f"got {rhs.shape[0]}")
        return np.stack([self.solve_one(i, rhs[i])
                         for i in range(self.shape[0])])

    def handle(self, i: int) -> "StackedLUHandle":
        return StackedLUHandle(self, i)


class StackedLUHandle:
    """Single-slice view of a :class:`StackedLUFactorization` with the
    ``.solve`` interface of :class:`LUFactorization`."""

    def __init__(self, stacked: StackedLUFactorization, index: int):
        self._stacked = stacked
        self._index = index
        self.shape = stacked.shape[1:]

    @property
    def singular(self) -> bool:
        """Whether this slice's factorization hit a zero pivot (its
        solves run through the GMRES fallback)."""
        return self._index in self._stacked._singular_matrices

    @property
    def factors(self) -> tuple[np.ndarray, np.ndarray]:
        """This slice's ``(lu, piv)`` factors (checkpoint serialization;
        see :attr:`LUFactorization.factors`). getrs on the copied
        factors reproduces this handle's solves bit-identically."""
        st = self._stacked
        if st._lu is None or self.singular:
            raise NotImplementedError(
                "no serializable LU factors (numpy fallback or singular "
                "slice)")
        return st._lu[self._index], st._piv[self._index]

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._stacked.solve_one(self._index, rhs)

"""Dense LU factorizations for the per-cell direct solves.

The tension Schur complement and the implicit bending operator are small
dense matrices (N and 3N per cell); factorizing them once per refresh and
back-substituting per solve replaces the inner GMRES loops entirely. SciPy's
LAPACK-backed ``lu_factor``/``lu_solve`` is used when available; the numpy
fallback solves against the stored matrix directly (same results, no reuse
of the factorization across solves).
"""
from __future__ import annotations

import numpy as np

try:
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve
except ImportError:  # pragma: no cover - scipy is a standard dependency
    _lu_factor = None
    _lu_solve = None


class LUFactorization:
    """LU factorization of a square dense operator, reusable across solves."""

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"expected a square matrix, got {matrix.shape}")
        self.shape = matrix.shape
        if _lu_factor is not None:
            self._lu = _lu_factor(matrix)
            self._matrix = None
        else:
            self._lu = None
            self._matrix = matrix.copy()

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` (1-D or stacked columns)."""
        rhs = np.asarray(rhs, float)
        if self._lu is not None:
            return _lu_solve(self._lu, rhs)
        return np.linalg.solve(self._matrix, rhs)

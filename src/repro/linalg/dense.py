"""Dense LU factorizations for the per-cell direct solves.

The tension Schur complement and the implicit bending operator are small
dense matrices (N and 3N per cell); factorizing them once per refresh and
back-substituting per solve replaces the inner GMRES loops entirely. SciPy's
LAPACK-backed ``lu_factor``/``lu_solve`` is used when available; the numpy
fallback solves against the stored matrix directly (same results, no reuse
of the factorization across solves).

:class:`StackedLUFactorization` holds the factorizations of a whole
equal-shape *batch* ``(k, n, n)`` — the per-cell operators of an
equal-order cell group — in one stacked buffer, driving the same
``getrf``/``getrs`` LAPACK kernels ``lu_factor``/``lu_solve`` wrap, so a
stacked solve is bit-identical to ``k`` independent
:class:`LUFactorization` solves while factor/solve dispatch happens once
per group instead of once per cell.
"""
from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from ..analysis.contracts import checked

try:
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve
    from scipy.linalg import get_lapack_funcs as _get_lapack_funcs
    from scipy.linalg import LinAlgWarning as _LinAlgWarning
except ImportError:  # pragma: no cover - scipy is a standard dependency
    _lu_factor = None
    _lu_solve = None
    _get_lapack_funcs = None
    _LinAlgWarning = RuntimeWarning


class LUFactorization:
    """LU factorization of a square dense operator, reusable across solves."""

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"expected a square matrix, got {matrix.shape}")
        self.shape = matrix.shape
        if _lu_factor is not None:
            self._lu = _lu_factor(matrix)
            self._matrix = None
        else:
            self._lu = None
            self._matrix = matrix.copy()

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` (1-D or stacked columns)."""
        rhs = np.asarray(rhs, float)
        if self._lu is not None:
            return _lu_solve(self._lu, rhs)
        return np.linalg.solve(self._matrix, rhs)


class StackedLUFactorization:
    """LU factorizations of an equal-shape batch of square operators.

    The batch is factorized at construction from a ``(k, n, n)`` stack
    (or a sequence of ``k`` matrices) with the same LAPACK ``getrf``
    SciPy's ``lu_factor`` wraps, into one stacked ``(k, n, n)`` factor
    buffer; solves run ``getrs`` per slice exactly like ``lu_solve``, so
    every result is bit-identical to the corresponding per-cell
    :class:`LUFactorization`. :meth:`handle` hands out a single-slice
    view with the ``.solve`` interface of :class:`LUFactorization`, so
    per-cell consumers (the factorized tension/implicit solvers) can
    hold a slice of a group factorization without knowing about the
    batch.

    Without SciPy, mirrors :class:`LUFactorization`'s fallback: matrices
    are stored and solves call ``numpy.linalg.solve`` per slice.
    """

    def __init__(self, matrices: np.ndarray | Sequence[np.ndarray]):
        if not isinstance(matrices, np.ndarray):
            matrices = np.stack([np.asarray(m, float) for m in matrices])
        matrices = np.asarray(matrices, float)
        if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
            raise ValueError("expected a (k, n, n) stack of square "
                             f"matrices, got {matrices.shape}")
        self.shape = matrices.shape
        if _get_lapack_funcs is not None:
            getrf, = _get_lapack_funcs(("getrf",), (matrices[0],))
            self._lu = np.empty_like(matrices)
            self._piv = np.empty(matrices.shape[:2], dtype=np.int32)
            self._getrs = _get_lapack_funcs(("getrs",),
                                            (matrices[0],))[0]
            for i in range(matrices.shape[0]):
                lu, piv, info = getrf(matrices[i])
                if info > 0:
                    # mirror scipy.linalg.lu_factor: warn and keep the
                    # factorization (solves yield inf/nan), so flipping
                    # batched_lu never changes whether a run completes
                    warnings.warn(
                        f"matrix {i} of the stack is singular "
                        f"(U[{info - 1}, {info - 1}] is exactly zero); "
                        "solves against it will produce inf/nan",
                        _LinAlgWarning, stacklevel=2)
                self._lu[i] = lu
                self._piv[i] = piv
            self._matrices = None
        else:  # pragma: no cover - scipy is a standard dependency
            self._lu = None
            self._matrices = matrices.copy()

    def __len__(self) -> int:
        return self.shape[0]

    def solve_one(self, i: int, rhs: np.ndarray) -> np.ndarray:
        """Solve slice ``i``'s system (1-D rhs or stacked columns)."""
        rhs = np.asarray(rhs, float)
        if self._lu is not None:
            x, info = self._getrs(self._lu[i], self._piv[i], rhs)
            return x
        return np.linalg.solve(self._matrices[i], rhs)

    @checked(rhs="(k, n)", out="(k, n) f8")
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve all systems against a ``(k, n)`` right-hand-side stack."""
        rhs = np.asarray(rhs, float)
        if rhs.shape[0] != self.shape[0]:
            raise ValueError(f"expected {self.shape[0]} right-hand sides, "
                             f"got {rhs.shape[0]}")
        return np.stack([self.solve_one(i, rhs[i])
                         for i in range(self.shape[0])])

    def handle(self, i: int) -> "StackedLUHandle":
        return StackedLUHandle(self, i)


class StackedLUHandle:
    """Single-slice view of a :class:`StackedLUFactorization` with the
    ``.solve`` interface of :class:`LUFactorization`."""

    def __init__(self, stacked: StackedLUFactorization, index: int):
        self._stacked = stacked
        self._index = index
        self.shape = stacked.shape[1:]

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._stacked.solve_one(self._index, rhs)

"""Restarted GMRES with iteration capping.

The boundary integral operator of Eq. (2.5) is well conditioned (second-kind
Fredholm), so GMRES converges in a few dozen iterations; the paper caps the
iteration count at 30 to emulate the typical per-time-step work. We implement
GMRES directly (rather than wrapping :func:`scipy.sparse.linalg.gmres`) so
that the cap, the residual history and the matvec counter are first-class.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

Matvec = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class GMRESResult:
    """Outcome of a :func:`gmres` solve.

    ``x`` is the final iterate, ``residuals`` the relative residual history
    (one entry per inner iteration, starting with the initial residual),
    ``iterations`` the total number of inner iterations performed,
    ``converged`` whether the tolerance was met before hitting the cap, and
    ``matvecs`` the number of operator applications.
    """

    x: np.ndarray
    residuals: list[float]
    iterations: int
    converged: bool
    matvecs: int

    @property
    def final_residual(self) -> float:
        return self.residuals[-1]


def gmres(
    matvec: Matvec,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 30,
    restart: Optional[int] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> GMRESResult:
    """Solve ``A x = b`` where ``A`` is given only through ``matvec``.

    Parameters
    ----------
    matvec:
        Function applying the (square) operator to a 1-D vector.
    b:
        Right-hand side, 1-D.
    x0:
        Initial guess (defaults to zero).
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    max_iter:
        Hard cap on the total number of inner iterations; the paper uses 30.
    restart:
        Restart length; ``None`` means no restart (full GMRES up to the cap).
    callback:
        Called as ``callback(k, relres)`` after each inner iteration.
    """
    b = np.asarray(b, dtype=float).ravel()
    n = b.size
    if restart is None or restart > max_iter:
        restart = max_iter
    restart = max(1, int(restart))

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float).ravel().copy()
    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        return GMRESResult(x=np.zeros(n), residuals=[0.0], iterations=0,
                           converged=True, matvecs=0)

    matvecs = 0
    residuals: list[float] = []
    total_iters = 0

    r = b - (matvec(x) if x.any() else 0.0 * b)
    if x.any():
        matvecs += 1
    relres = np.linalg.norm(r) / bnorm
    residuals.append(float(relres))
    if relres <= tol:
        return GMRESResult(x=x, residuals=residuals, iterations=0,
                           converged=True, matvecs=matvecs)

    while total_iters < max_iter:
        m = min(restart, max_iter - total_iters)
        # Arnoldi basis and Hessenberg factor.
        Q = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        beta = np.linalg.norm(r)
        Q[:, 0] = r / beta
        g = np.zeros(m + 1)
        g[0] = beta

        k_used = 0
        breakdown = False
        for k in range(m):
            # Copy defensively: a matvec may return (a view of) its input.
            w = np.array(matvec(Q[:, k]), dtype=float)
            matvecs += 1
            # Modified Gram-Schmidt.
            for j in range(k + 1):
                H[j, k] = Q[:, j] @ w
                w -= H[j, k] * Q[:, j]
            H[k + 1, k] = np.linalg.norm(w)
            if H[k + 1, k] > 1e-300:
                Q[:, k + 1] = w / H[k + 1, k]
            else:
                breakdown = True
            # Apply accumulated Givens rotations to the new column.
            for j in range(k):
                h0 = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                h1 = -sn[j] * H[j, k] + cs[j] * H[j + 1, k]
                H[j, k], H[j + 1, k] = h0, h1
            denom = np.hypot(H[k, k], H[k + 1, k])
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k] = H[k, k] / denom
                sn[k] = H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]

            k_used = k + 1
            total_iters += 1
            relres = abs(g[k + 1]) / bnorm
            residuals.append(float(relres))
            if callback is not None:
                callback(total_iters, float(relres))
            if relres <= tol or breakdown:
                break

        # Solve the small triangular system and update x.
        if k_used > 0:
            y = np.zeros(k_used)
            for i in range(k_used - 1, -1, -1):
                y[i] = (g[i] - H[i, i + 1:k_used] @ y[i + 1:k_used]) / H[i, i]
            x = x + Q[:, :k_used] @ y

        r = b - matvec(x)
        matvecs += 1
        relres = np.linalg.norm(r) / bnorm
        residuals[-1] = float(relres)
        if relres <= tol:
            return GMRESResult(x=x, residuals=residuals,
                               iterations=total_iters, converged=True,
                               matvecs=matvecs)
        if breakdown:
            break

    return GMRESResult(x=x, residuals=residuals, iterations=total_iters,
                       converged=relres <= tol, matvecs=matvecs)

"""Dense-free linear algebra used throughout the solver.

The paper relies on PETSc's GMRES; here we provide our own restarted GMRES
(:func:`repro.linalg.gmres.gmres`) with the iteration-cap semantics of
Section 5.1 of the paper, plus small helpers for block vector layouts.
"""
from .gmres import GMRESResult, gmres
from .blocks import flatten_fields, unflatten_fields
from .dense import (LUFactorization, StackedLUFactorization,
                    StackedLUHandle)

__all__ = ["gmres", "GMRESResult", "flatten_fields", "unflatten_fields",
           "LUFactorization", "StackedLUFactorization", "StackedLUHandle"]

"""Helpers for flattening collections of per-cell field arrays.

The time stepper and contact solver treat the global state as one long
vector (as PETSc would), while the physics modules want per-cell
``(n_points, 3)`` arrays. These helpers convert between the two layouts
without copying more than necessary.
"""
from __future__ import annotations

from typing import Sequence

import numpy as np


def flatten_fields(fields: Sequence[np.ndarray]) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Concatenate arrays into one 1-D vector, remembering shapes.

    Returns the flat vector and the list of original shapes needed by
    :func:`unflatten_fields`.
    """
    shapes = [tuple(f.shape) for f in fields]
    if not fields:
        return np.zeros(0), shapes
    flat = np.concatenate([np.asarray(f, dtype=float).ravel() for f in fields])
    return flat, shapes


def unflatten_fields(flat: np.ndarray, shapes: Sequence[tuple[int, ...]]) -> list[np.ndarray]:
    """Inverse of :func:`flatten_fields`."""
    out: list[np.ndarray] = []
    offset = 0
    for shape in shapes:
        size = int(np.prod(shape)) if shape else 1
        out.append(np.asarray(flat[offset:offset + size]).reshape(shape))
        offset += size
    if offset != flat.size:
        raise ValueError(
            f"flat vector of size {flat.size} does not match shapes totalling {offset}"
        )
    return out

"""repro — boundary-integral simulation of red blood cell flows through
vascular networks.

A from-scratch Python reproduction of "Scalable Simulation of Realistic
Volume Fraction Red Blood Cell Flows through Vascular Networks" (Lu,
Morse, Rahimian, Stadler, Zorin — SC '19). See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Public API highlights
---------------------
- :class:`repro.Scenario` / :class:`repro.ScenarioBuilder` — the fluent
  front door: ``Scenario.builder().config(presets.shear()).cells([...])
  .backend("treecode").build()`` returns a ready simulation.
- :class:`repro.ReproConfig` — the single serializable configuration
  (time step, fluid, force terms, backend, numerics); validates on
  construction and round-trips through ``to_dict``/``from_dict``/JSON.
- :mod:`repro.presets` — named configs for the paper's scenarios
  (``sedimentation``, ``shear``, ``vessel_flow``, ``relaxation``,
  ``strong_scaling``, ``weak_scaling``).
- :mod:`repro.physics.terms` — composable force terms (``Bending``,
  ``Tension``, ``Gravity``, ``ShearFlow``, ``BackgroundFlow``) plus a
  registry for user-defined ones.
- :mod:`repro.core.interactions` — pluggable cell-cell interaction
  backends: ``"direct"`` (exact pairwise) and ``"treecode"`` (far field
  through :mod:`repro.fmm`).
- :class:`repro.core.Simulation` — the simulation platform the builder
  assembles.
- :mod:`repro.resilience` — transactional stepping (health sentinel,
  rollback + dt-halved retries, backend degradation) and bit-identical
  checkpoint/restart (``save_checkpoint`` / ``load_checkpoint``);
  policy in :class:`repro.ResilienceOptions`.
- :class:`repro.bie.BoundarySolver` — the parallel boundary solver
  (paper Sec. 3).
- :class:`repro.collision.NCPSolver` — contact-free time stepping
  (paper Sec. 4).
- :mod:`repro.vessel` — vascular geometry, boundary conditions, the RBC
  filling algorithm.
- :mod:`repro.scaling` — machine models and the strong/weak scaling
  harness that regenerates the paper's Figs. 4-6.

Deprecation
-----------
``repro.core.SimulationConfig`` (flag-style physics selection) is
deprecated: ``Simulation(cells, config=SimulationConfig(...))`` still
runs, emitting a ``DeprecationWarning`` and converting via
:meth:`ReproConfig.from_legacy`. New code should build a
:class:`ReproConfig` — start from a preset and compose force terms.
"""
from . import config
from .config import NumericsOptions, ReproConfig, ResilienceOptions
from . import presets
from .core import Scenario, ScenarioBuilder, Simulation
from .resilience import (StepRejectedError, load_checkpoint,
                         save_checkpoint)

__version__ = "1.2.0"

__all__ = [
    "config",
    "presets",
    "NumericsOptions",
    "ReproConfig",
    "ResilienceOptions",
    "Scenario",
    "ScenarioBuilder",
    "Simulation",
    "StepRejectedError",
    "save_checkpoint",
    "load_checkpoint",
    "__version__",
]

"""repro — boundary-integral simulation of red blood cell flows through
vascular networks.

A from-scratch Python reproduction of "Scalable Simulation of Realistic
Volume Fraction Red Blood Cell Flows through Vascular Networks" (Lu,
Morse, Rahimian, Stadler, Zorin — SC '19). See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Public API highlights
---------------------
- :class:`repro.core.Simulation` — the simulation platform.
- :class:`repro.bie.BoundarySolver` — the parallel boundary solver
  (paper Sec. 3).
- :class:`repro.collision.NCPSolver` — contact-free time stepping
  (paper Sec. 4).
- :mod:`repro.vessel` — vascular geometry, boundary conditions, the RBC
  filling algorithm.
- :mod:`repro.scaling` — machine models and the strong/weak scaling
  harness that regenerates the paper's Figs. 4-6.
"""
from . import config
from .config import NumericsOptions

__version__ = "1.0.0"

__all__ = ["config", "NumericsOptions", "__version__"]

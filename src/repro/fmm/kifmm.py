"""Global-octree kernel-independent FMM (the true O(N) two-pass driver).

The treecode of :mod:`repro.fmm.treecode` stops after the upward pass and
pays O(N log N) per evaluation through its multipole acceptance descent;
this module adds the downward pass over one *global* octree, turning the
all-sources sum into the classical O(N) KIFMM of Ying, Biros & Zorin:

- **Upward** (P2M/M2M): every leaf fits an equivalent density on its
  small (1.3) surface from check values on its large (2.6) surface;
  parents aggregate children through cached per-octant translation
  matrices (scale-free by the kernel's degree -1 homogeneity).
- **Downward** (M2L/P2L/L2L): each box accumulates check values on its
  *small* surface from the equivalent densities of its V list and the
  raw sources of its X list, then fits a *downward* equivalent density
  on its large surface (the role-swapped fit of ``_fit_operator``),
  adding the parent's local field through cached per-octant L2L
  matrices.
- **Evaluation** (L2P + U/W): a target inside leaf ``b`` sums ``b``'s
  downward density (all well-separated sources), direct kernels over the
  U list (all adjacent sources) and the W-list equivalents. Targets
  outside every leaf (outside the root cube, or in a pruned octant) fall
  back to the treecode's MAC descent over the same upward data.

M2L is the flop bottleneck, so it is batched: interaction pairs are
grouped by (level, integer offset) — every pair in a group shares one
unit translation matrix — and the 316 possible offsets are compressed to
16 canonical ones through the signed-permutation symmetries of the cube
(Stokeslet equivariance ``S(Rx) = R S(x) R^T`` plus the induced surface
point permutation), cutting the cached-operator memory ~20x.

Per-leaf, per-octant and per-group stages map over the PR 4 executor;
every task only reads shared state and returns its contribution, which
the caller folds in fixed order — threaded runs are bit-identical to
serial and the ``"checked"`` executor's rerun sampling passes.
"""
from __future__ import annotations

import threading
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.guard import freeze
from ..kernels import (
    laplace_slp_apply,
    laplace_slp_matrix,
    stokes_slp_apply,
    stokes_slp_matrix,
)
from ..runtime.executor import Executor, SerialExecutor
from .octree import Octree
from .treecode import (
    _CHECK_EXTRA,
    _CHECK_RADIUS,
    _EQUIV_RADIUS,
    KernelName,
    _cube_surface,
    _fit_operator,
)

_IDENTITY9 = (1, 0, 0, 0, 1, 0, 0, 0, 1)


def _kernel_matrix(kernel: KernelName, src: np.ndarray, trg: np.ndarray,
                   viscosity: float) -> np.ndarray:
    if kernel == "stokes_slp":
        return stokes_slp_matrix(src, trg, viscosity)
    return laplace_slp_matrix(src, trg)


# -- cube-symmetry compression of the translation operators -----------------
@lru_cache(maxsize=512)
def _offset_symmetry(off: Tuple[int, int, int]
                     ) -> Tuple[Tuple[int, int, int], Tuple[int, ...]]:
    """Canonical form of an integer box offset under the cube group.

    Returns ``(d_star, R)`` with ``R @ off == d_star`` and
    ``d*_x >= d*_y >= d*_z >= 0``; ``R`` (row-major 9-tuple) is a signed
    axis permutation, i.e. a symmetry of the cube surface.
    """
    order = sorted(range(3), key=lambda i: (-abs(off[i]), i))
    signs = [1 if off[col] >= 0 else -1 for col in order]
    r9 = tuple(sign if i == col else 0
               for sign, col in zip(signs, order) for i in range(3))
    d_star = tuple(sign * off[col] for sign, col in zip(signs, order))
    return d_star, r9


@lru_cache(maxsize=256)
def _surface_permutation(e: int, r9: Tuple[int, ...]
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Permutation ``p`` with ``R @ surf[i] == surf[p[i]]`` (and its
    inverse) for a signed axis permutation ``R`` of the cube surface."""
    surf = _cube_surface(e)
    R = np.array(r9, float).reshape(3, 3)
    index = {tuple(q): i
             for i, q in enumerate(np.round(surf, 12).tolist())}
    mapped = np.round(surf @ R.T, 12)
    p = np.array([index[tuple(q)] for q in mapped.tolist()], dtype=np.int64)
    # argsort of a permutation is its inverse
    inv = freeze(np.argsort(p, kind="stable"))
    p = freeze(p)
    return p, inv


@lru_cache(maxsize=64)
def _m2l_matrix(kernel: KernelName, e: int, viscosity: float,
                d_star: Tuple[int, int, int],
                dtype_str: str = "float64") -> np.ndarray:
    """Combined M2L operator for a canonical offset: source equivalent
    density (small surface around the box at ``2 * d_star``) directly to
    the target's *downward equivalent density*, i.e. the downward fit is
    folded in. That keeps the hot GEMMs square in the density resolution
    even though the fit itself is overdetermined, and makes the operator
    scale-free (the fit's box factor cancels the unit kernel's 1/s)."""
    surf = _cube_surface(e)
    src = 2.0 * np.asarray(d_star, float) + _EQUIV_RADIUS * surf
    trg = _EQUIV_RADIUS * _cube_surface(e + _CHECK_EXTRA)
    M = _kernel_matrix(kernel, src, trg, viscosity)
    fit_down = _fit_operator(kernel, e, viscosity,
                             _CHECK_RADIUS, _EQUIV_RADIUS)
    work = np.dtype(dtype_str)
    return freeze((fit_down @ M).astype(work, copy=False))


def _rotate_in(e: int, r9: Tuple[int, ...], Q: np.ndarray) -> np.ndarray:
    """Map a density stack (k, m, ncomp) into the canonical frame of a
    signed axis permutation ``R``: permute surface points by ``R`` and
    (for vector densities) rotate components by ``R^T``."""
    if r9 == _IDENTITY9:
        return Q
    _, inv = _surface_permutation(e, r9)
    Qp = Q[:, inv, :]
    if Q.shape[2] == 3:
        Qp = Qp @ np.array(r9, float).reshape(3, 3).T
    return Qp


def _rotate_out(e: int, r9: Tuple[int, ...], V: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_rotate_in`: map canonical-frame results back."""
    if r9 == _IDENTITY9:
        return V
    p, _ = _surface_permutation(e, r9)
    V = V[:, p, :]
    if V.shape[2] == 3:
        V = V @ np.array(r9, float).reshape(3, 3)
    return V


def _apply_m2l(kernel: KernelName, e: int, viscosity: float,
               off: Tuple[int, int, int], Q: np.ndarray,
               dtype_str: str = "float64") -> np.ndarray:
    """Batched M2L: upward densities ``Q`` (k, m, ncomp) of k source
    boxes at integer offset ``off`` from their targets -> the targets'
    downward-density contributions (same shape).

    Non-canonical offsets route through the canonical operator: with
    ``d* = R off``, kernel equivariance (and the fit's, which conjugates
    the same way) gives ``V = P^T (T* (P (Q R^T))) R`` where ``P``
    permutes surface points by ``R``. Only the 16 canonical operators
    are ever assembled.
    """
    k, m, ncomp = Q.shape
    d_star, r9 = _offset_symmetry(off)
    M = _m2l_matrix(kernel, e, viscosity, d_star, dtype_str)
    Qw = _rotate_in(e, r9, Q).reshape(k, m * ncomp).astype(M.dtype,
                                                           copy=False)
    V = (Qw @ M.T).astype(np.float64, copy=False).reshape(k, m, ncomp)
    return _rotate_out(e, r9, V)


def _octant_center(octant: int) -> np.ndarray:
    bits = np.array([(octant >> 2) & 1, (octant >> 1) & 1, octant & 1])
    return np.where(bits, 0.5, -0.5)


@lru_cache(maxsize=64)
def _m2m_matrix(kernel: KernelName, e: int, viscosity: float,
                octant: int) -> np.ndarray:
    """Child equivalent density -> parent equivalent density (scale-free:
    the parent fit's box factor cancels the unit kernel's 1/s)."""
    src = _octant_center(octant) + (0.5 * _EQUIV_RADIUS) * _cube_surface(e)
    trg = _CHECK_RADIUS * _cube_surface(e + _CHECK_EXTRA)
    M = _kernel_matrix(kernel, src, trg, viscosity)
    fit = _fit_operator(kernel, e, viscosity)
    return freeze(fit @ M)


@lru_cache(maxsize=64)
def _l2l_matrix(kernel: KernelName, e: int, viscosity: float,
                octant: int) -> np.ndarray:
    """Parent downward density -> child downward density (the 0.5 is the
    child/parent half-width ratio left over by homogeneity)."""
    src = _CHECK_RADIUS * _cube_surface(e)
    trg = _octant_center(octant) \
        + (0.5 * _EQUIV_RADIUS) * _cube_surface(e + _CHECK_EXTRA)
    M = _kernel_matrix(kernel, src, trg, viscosity)
    fit_down = _fit_operator(kernel, e, viscosity,
                             _CHECK_RADIUS, _EQUIV_RADIUS)
    return freeze(0.5 * (fit_down @ M))


class GlobalKIFMM:
    """O(N) summation of weighted single-layer sources over one octree.

    Construction runs both passes (so the per-step cost is paid once);
    :meth:`evaluate` then serves any number of target batches. Parameters
    mirror :class:`repro.fmm.KernelIndependentTreecode`; ``mac`` only
    steers the fallback descent for targets outside every leaf, and
    ``farfield_dtype="float32"`` runs the far translation/evaluation
    GEMMs (M2L, M2P, L2P) in single precision while every direct kernel
    (P2M check values, P2L, P2P) stays float64.

    ``stats`` counts source-target pair work per route (``p2p``,
    ``m2p``, ``m2l``, ``l2p``, ``p2l``); concurrent evaluations fold
    their local counters under a lock, so the totals are exact under
    executor fan-out.
    """

    def __init__(self, sources: np.ndarray, weighted_density: np.ndarray,
                 kernel: KernelName = "stokes_slp", viscosity: float = 1.0,
                 max_leaf: int = 128, equiv_points_per_edge: int = 5,
                 mac: float = 3.0, farfield_dtype: str = "float64",
                 executor: Optional[Executor] = None):
        self.kernel: KernelName = kernel
        self.viscosity = float(viscosity)
        self.mac = float(mac)
        self.farfield_dtype = str(farfield_dtype)
        self._far_dtype = (None if self.farfield_dtype == "float64"
                           else self.farfield_dtype)
        self.executor = executor if executor is not None else SerialExecutor()
        self.sources = np.atleast_2d(np.asarray(sources, float))
        den = np.asarray(weighted_density, float)
        self.ncomp = 3 if kernel == "stokes_slp" else 1
        self.density = den.reshape(self.sources.shape[0], self.ncomp)
        self.e = int(equiv_points_per_edge)
        self._surf = _cube_surface(self.e)
        self._ck_surf = _cube_surface(self.e + _CHECK_EXTRA)
        self._fit = _fit_operator(kernel, self.e, self.viscosity)
        self._fit_down = _fit_operator(kernel, self.e, self.viscosity,
                                       _CHECK_RADIUS, _EQUIV_RADIUS)
        self.tree = Octree(self.sources, max_leaf=max_leaf)
        self.lists = self.tree.interaction_lists()
        self.stats = {"p2p": 0, "m2p": 0, "m2l": 0, "l2p": 0, "p2l": 0}
        self._stats_lock = threading.Lock()
        m = self._surf.shape[0]
        #: per-box equivalent densities, box-indexed (the executor tasks
        #: never write these; contributions fold after each gather).
        self.up = np.zeros((self.tree.n_nodes, m, self.ncomp))
        self.down = np.zeros((self.tree.n_nodes, m, self.ncomp))
        self._upward()
        self._downward()

    # -- shared small helpers -------------------------------------------------
    def _box_eval(self, src: np.ndarray, den: np.ndarray,
                  trg: np.ndarray, dtype=None) -> np.ndarray:
        if self.kernel == "stokes_slp":
            return stokes_slp_apply(src, den, trg, self.viscosity,
                                    dtype=dtype)
        return laplace_slp_apply(src, den.ravel(), trg)[:, None]

    def _disjoint_eval(self, src: np.ndarray, den: np.ndarray,
                       trg: np.ndarray) -> np.ndarray:
        """Direct kernel sum for source/target sets known to be well
        separated (P2M and P2L check surfaces sit >= 1.9 box half-widths
        from their sources) in a few unchunked GEMMs — the chunking and
        close-pair patching of :func:`stokes_slp_apply` is per-call
        overhead these many small tree stages cannot afford. The
        factored ``r^2 = |x|^2 + |y|^2 - 2 x.y`` expansion is safe here:
        the guaranteed separation keeps it far above the float64
        cancellation floor at these local (few-box-width) coordinate
        scales."""
        c = src.mean(axis=0)
        s = src - c
        t = trg - c
        s2 = np.einsum("sk,sk->s", s, s)
        t2 = np.einsum("tk,tk->t", t, t)
        inv_r = 1.0 / np.sqrt(t2[:, None] + s2[None, :] - 2.0 * (t @ s.T))
        if self.kernel != "stokes_slp":
            return (inv_r @ den.reshape(-1, 1)) / (4.0 * np.pi)
        # sum_s r (r.f)/r^3 = t (sum_s c_s) - c @ s with c_ts = (r.f)/r^3
        sf = np.einsum("sk,sk->s", s, den)
        cmat = (t @ den.T - sf[None, :]) * inv_r ** 3
        out = inv_r @ den + t * cmat.sum(axis=1)[:, None] - cmat @ s
        out *= 1.0 / (8.0 * np.pi * self.viscosity)
        return out

    def _equiv_points(self, nid: int) -> np.ndarray:
        node = self.tree.nodes[nid]
        return node.center + (_EQUIV_RADIUS * node.half) * self._surf

    def _down_check_points(self, nid: int) -> np.ndarray:
        node = self.tree.nodes[nid]
        return node.center + (_EQUIV_RADIUS * node.half) * self._ck_surf

    def _down_equiv_points(self, nid: int) -> np.ndarray:
        node = self.tree.nodes[nid]
        return node.center + (_CHECK_RADIUS * node.half) * self._surf

    def _box_half(self, level: int) -> float:
        return self.tree.nodes[0].half * 0.5 ** level

    def _octant_ids(self, ids: np.ndarray) -> np.ndarray:
        anchors = self.tree.anchors[ids]
        return ((anchors[:, 0] & 1) << 2 | (anchors[:, 1] & 1) << 1
                | (anchors[:, 2] & 1)).astype(np.int64)

    # -- upward pass ----------------------------------------------------------
    def _upward(self) -> None:
        tree, m, nc = self.tree, self._surf.shape[0], self.ncomp
        leaves = tree.leaves()

        def p2m(nid: int) -> np.ndarray:
            node = tree.nodes[nid]
            ck = node.center + (_CHECK_RADIUS * node.half) * self._ck_surf
            vals = self._disjoint_eval(self.sources[node.indices],
                                       self.density[node.indices], ck)
            # Homogeneity: unit fit at box scale s gives q = s * fit @ v.
            return node.half * (
                self._fit @ vals.reshape(-1)).reshape(m, nc)

        for nid, q in zip(leaves, self.executor.map(p2m, leaves)):
            self.up[nid] = q

        for level in range(tree.depth(), 0, -1):
            ids = tree.level_nodes()[level]
            if ids.size == 0:
                continue
            octants = self._octant_ids(ids)
            parents = np.array([tree.nodes[int(i)].parent for i in ids],
                               dtype=np.int64)

            def m2m(o: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
                sel = ids[octants == o]
                if sel.size == 0:
                    return None
                T = _m2m_matrix(self.kernel, self.e, self.viscosity, o)
                contrib = self.up[sel].reshape(sel.size, -1) @ T.T
                return parents[octants == o], contrib.reshape(sel.size, m, nc)

            for res in self.executor.map(m2m, range(8)):
                if res is not None:
                    # one child per (parent, octant): parent rows unique
                    self.up[res[0]] += res[1]

    # -- downward pass --------------------------------------------------------
    def _downward(self) -> None:
        """Accumulate downward densities directly in density space: the
        cached M2L operators already contain the downward fit (and are
        scale-free), the P2L route applies it per box, and L2L then
        sweeps parent totals down level by level."""
        tree, m, nc = self.tree, self._surf.shape[0], self.ncomp
        raw = self.lists.v_groups(tree.anchors)
        # Batch by *canonical* offset: members of one canonical class are
        # rotated into its frame, stacked, pushed through a single GEMM
        # against the one cached operator, then rotated back — at most 16
        # GEMMs for the whole tree instead of one per raw offset (316).
        canon: Dict[Tuple[int, int, int],
                    List[Tuple[Tuple[int, int, int],
                               np.ndarray, np.ndarray]]] = {}
        for off, (tgt, src) in raw.items():
            canon.setdefault(_offset_symmetry(off)[0], []).append(
                (off, tgt, src))
        citems = sorted(canon.items())

        def m2l(item) -> List[Tuple[np.ndarray, np.ndarray]]:
            d_star, members = item
            M = _m2l_matrix(self.kernel, self.e, self.viscosity, d_star,
                            self.farfield_dtype)
            rots = [_offset_symmetry(off)[1] for off, _, _ in members]
            blocks = [_rotate_in(self.e, r9, self.up[src])
                      for r9, (_, _, src) in zip(rots, members)]
            sizes = [b.shape[0] for b in blocks]
            Qw = np.concatenate(blocks).reshape(-1, m * nc).astype(
                M.dtype, copy=False)
            V = (Qw @ M.T).astype(np.float64, copy=False).reshape(-1, m, nc)
            out = []
            pos = 0
            for (off, tgt, _), r9, k in zip(members, rots, sizes):
                out.append((tgt, _rotate_out(self.e, r9, V[pos:pos + k])))
                pos += k
            return out

        for results in self.executor.map(m2l, citems):
            for tgt, vals in results:
                self.down[tgt] += vals  # tgt rows unique per raw offset
        self.stats["m2l"] += sum(t.size * m for t, _ in raw.values())

        xboxes = [b for b in range(tree.n_nodes) if self.lists.X[b]]

        def p2l(b: int) -> np.ndarray:
            idx = np.concatenate([tree.nodes[a].indices
                                  for a in self.lists.X[b]])
            vals = self._disjoint_eval(self.sources[idx], self.density[idx],
                                       self._down_check_points(b))
            s = tree.nodes[b].half
            return s * (self._fit_down @ vals.reshape(-1)).reshape(m, nc)

        for b, vals in zip(xboxes, self.executor.map(p2l, xboxes)):
            self.down[b] += vals
            self.stats["p2l"] += self._ck_surf.shape[0] * sum(
                tree.nodes[a].indices.size for a in self.lists.X[b])

        for level in range(1, tree.depth() + 1):
            ids = tree.level_nodes()[level]
            if ids.size == 0:
                continue
            octants = self._octant_ids(ids)
            parents = np.array([tree.nodes[int(i)].parent for i in ids],
                               dtype=np.int64)
            for o in range(8):
                sel = ids[octants == o]
                if sel.size == 0:
                    continue
                C = _l2l_matrix(self.kernel, self.e, self.viscosity, o)
                contrib = self.down[parents[octants == o]].reshape(
                    sel.size, -1) @ C.T
                self.down[sel] += contrib.reshape(sel.size, m, nc)

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, targets: np.ndarray) -> np.ndarray:
        """Potential at arbitrary targets (self-pairs at distance 0 are
        skipped by the kernels, exactly as in the direct sums)."""
        targets = np.atleast_2d(np.asarray(targets, float))
        out = np.zeros((targets.shape[0], self.ncomp))
        tree, m = self.tree, self._surf.shape[0]
        leaf_ids = tree.leaf_of_points(targets)
        assigned = np.nonzero(leaf_ids >= 0)[0]
        order = assigned[np.argsort(leaf_ids[assigned], kind="stable")]
        bounds = np.nonzero(np.diff(leaf_ids[order]))[0] + 1
        groups = [(int(leaf_ids[g[0]]), g)
                  for g in np.split(order, bounds) if g.size]

        def leaf_task(group) -> Tuple[np.ndarray, np.ndarray, dict]:
            b, tidx = group
            trg = targets[tidx]
            local = {"p2p": 0, "m2p": 0, "l2p": tidx.size * m}
            vals = self._box_eval(self._down_equiv_points(b), self.down[b],
                                  trg, dtype=self._far_dtype)
            if self.lists.U[b]:
                idx = np.concatenate([tree.nodes[u].indices
                                      for u in self.lists.U[b]])
                vals += self._box_eval(self.sources[idx], self.density[idx],
                                       trg)
                local["p2p"] = tidx.size * idx.size
            if self.lists.W[b]:
                pts = np.concatenate([self._equiv_points(w)
                                      for w in self.lists.W[b]])
                den = self.up[self.lists.W[b]].reshape(-1, self.ncomp)
                vals += self._box_eval(pts, den, trg, dtype=self._far_dtype)
                local["m2p"] = tidx.size * pts.shape[0]
            return tidx, vals, local

        local = {key: 0 for key in self.stats}
        for tidx, vals, st in self.executor.map(leaf_task, groups):
            out[tidx] = vals
            for key, count in st.items():
                local[key] += count
        missed = np.nonzero(leaf_ids < 0)[0]
        if missed.size:
            self._descend_mac(0, targets, missed, out, local)
        with self._stats_lock:
            for key, count in local.items():
                self.stats[key] += count
        return out if self.ncomp > 1 else out.ravel()

    def _descend_mac(self, nid: int, targets: np.ndarray, tidx: np.ndarray,
                     out: np.ndarray, stats: dict) -> None:
        """Treecode fallback over the upward data, for targets that lie
        outside every leaf (outside the root cube or in pruned octants —
        e.g. vessel-wall evaluation points)."""
        if tidx.size == 0:
            return
        node = self.tree.nodes[nid]
        d = np.linalg.norm(targets[tidx] - node.center, axis=1)
        far = d >= self.mac * node.half
        far_idx, near_idx = tidx[far], tidx[~far]
        if far_idx.size:
            out[far_idx] += self._box_eval(self._equiv_points(nid),
                                           self.up[nid], targets[far_idx],
                                           dtype=self._far_dtype)
            stats["m2p"] += far_idx.size * self._surf.shape[0]
        if near_idx.size:
            if node.is_leaf:
                out[near_idx] += self._box_eval(
                    self.sources[node.indices], self.density[node.indices],
                    targets[near_idx])
                stats["p2p"] += near_idx.size * node.indices.size
            else:
                for cid in node.children:
                    self._descend_mac(cid, targets, near_idx, out, stats)


def stokes_slp_global_fmm(src: np.ndarray, weighted_density: np.ndarray,
                          trg: np.ndarray, viscosity: float = 1.0,
                          **kwargs) -> np.ndarray:
    """One-shot O(N) replacement for :func:`repro.kernels.stokes_slp_apply`."""
    fmm = GlobalKIFMM(src, weighted_density, "stokes_slp", viscosity,
                      **kwargs)
    return fmm.evaluate(trg)

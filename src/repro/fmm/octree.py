"""Adaptive point octree in Morton order."""
from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np


@dataclasses.dataclass
class OctreeNode:
    """One box: cube of half-width ``half`` centered at ``center``.

    ``indices`` holds the source indices of leaves; internal nodes store
    children ids. ``equiv`` is filled by the upward pass of the treecode.
    """

    center: np.ndarray
    half: float
    level: int
    indices: Optional[np.ndarray]
    children: list[int]
    parent: int
    equiv: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class Octree:
    """Adaptive octree over a point cloud (leaf capacity bound)."""

    def __init__(self, points: np.ndarray, max_leaf: int = 64,
                 max_level: int = 12):
        pts = np.atleast_2d(np.asarray(points, float))
        self.points = pts
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        center = 0.5 * (lo + hi)
        half = 0.5 * float((hi - lo).max()) * 1.0000001 + 1e-12
        self.nodes: list[OctreeNode] = [OctreeNode(
            center=center, half=half, level=0,
            indices=np.arange(pts.shape[0]), children=[], parent=-1)]
        self.max_leaf = int(max_leaf)
        self.max_level = int(max_level)
        self._build(0)

    def _build(self, nid: int) -> None:
        node = self.nodes[nid]
        idx = node.indices
        if idx.size <= self.max_leaf or node.level >= self.max_level:
            return
        pts = self.points[idx]
        oct_id = ((pts[:, 0] > node.center[0]).astype(int) << 2 |
                  (pts[:, 1] > node.center[1]).astype(int) << 1 |
                  (pts[:, 2] > node.center[2]).astype(int))
        node.indices = None
        qh = 0.5 * node.half
        for o in range(8):
            sel = idx[oct_id == o]
            if sel.size == 0:
                continue
            off = np.array([qh if (o >> 2) & 1 else -qh,
                            qh if (o >> 1) & 1 else -qh,
                            qh if o & 1 else -qh])
            cid = len(self.nodes)
            self.nodes.append(OctreeNode(center=node.center + off, half=qh,
                                         level=node.level + 1, indices=sel,
                                         children=[], parent=nid))
            node.children.append(cid)
            self._build(cid)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def leaves(self) -> list[int]:
        return [i for i, n in enumerate(self.nodes) if n.is_leaf]

    def depth(self) -> int:
        return max(n.level for n in self.nodes)

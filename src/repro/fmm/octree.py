"""Adaptive point octree in Morton order.

The tree stores, besides the box geometry, the *integer anchor* of every
box — its (i, j, k) coordinate on the uniform grid of its level — so
that box adjacency is exact integer arithmetic and the per-level node
orderings are true Morton (Z-curve) orderings of
:func:`repro.runtime.spatial_hash.morton_keys_3d` keys.  On top of that
:meth:`Octree.interaction_lists` builds the standard adaptive-FMM box
lists (colleagues and the U/V/W/X lists of Ying, Biros & Zorin) that the
global KIFMM driver of :mod:`repro.fmm.kifmm` consumes:

- ``colleagues[b]``: boxes of the same level whose closed cubes touch
  ``b``'s (``b`` included).
- ``U[b]`` (leaves only): every adjacent leaf of *any* level, ``b``
  included — handled by direct P2P.
- ``V[b]``: same-level children of ``b``'s parent's colleagues that are
  not adjacent to ``b`` — handled by M2L.
- ``W[b]`` (leaves only): strict descendants of ``b``'s colleagues whose
  parent is adjacent to ``b`` but which are not adjacent themselves —
  their multipole is evaluated directly at ``b``'s targets (M2P).
- ``X[b]``: the dual of W (``b in W[a]``) — leaf ``a``'s *source points*
  enter ``b``'s local expansion directly (P2L).

Every source point of the cloud reaches every target leaf through
exactly one of these routes (pinned by a brute-force test over random
clouds), which is what makes the two-pass FMM exact up to the
equivalent-density approximation.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..runtime.spatial_hash import morton_keys_3d


@dataclasses.dataclass
class OctreeNode:
    """One box: cube of half-width ``half`` centered at ``center``.

    ``indices`` holds the source indices of leaves; internal nodes store
    children ids. ``anchor`` is the integer (i, j, k) grid coordinate of
    the box on its level's uniform grid (root = (0, 0, 0)); a child's
    anchor is ``2 * parent_anchor + octant_bits``, matching the Morton
    bit convention of :func:`morton_keys_3d`. ``equiv`` is filled by the
    upward pass of the treecode.
    """

    center: np.ndarray
    half: float
    level: int
    indices: Optional[np.ndarray]
    children: list[int]
    parent: int
    anchor: Tuple[int, int, int] = (0, 0, 0)
    equiv: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclasses.dataclass
class InteractionLists:
    """The adaptive-FMM box lists of one :class:`Octree` (see module
    docstring for the definitions). ``U`` and ``W`` are empty for
    internal boxes; ``V`` and ``X`` exist for every box."""

    colleagues: List[List[int]]
    U: List[List[int]]
    V: List[List[int]]
    W: List[List[int]]
    X: List[List[int]]

    def v_groups(self, anchors: np.ndarray
                 ) -> Dict[Tuple[int, int, int],
                           Tuple[np.ndarray, np.ndarray]]:
        """V-list pairs grouped by integer offset ``anchor[src] -
        anchor[tgt]``.

        The offset fixes the *relative* geometry of an M2L interaction,
        and the kernel's homogeneity removes the level scale entirely
        (the combined M2L operators of :mod:`repro.fmm.kifmm` are
        scale-free), so every pair in a group — across all levels —
        shares one unit translation operator: the key to batching M2L as
        a few dense GEMMs. Within a group each target appears at most
        once (a box has at most one V partner per offset), so folding a
        group's contributions is a pure fancy-indexed add. Keys are
        returned in sorted (deterministic) order.
        """
        counts = [len(v) for v in self.V]
        if sum(counts) == 0:
            return {}
        tgt_all = np.repeat(np.arange(len(self.V), dtype=np.int64), counts)
        src_all = np.fromiter((s for v in self.V for s in v),
                              dtype=np.int64, count=sum(counts))
        offs = anchors[src_all] - anchors[tgt_all]
        # V offsets have components in [-3, 3]: a base-7 code sorts them
        # in the same order as the offset tuples themselves.
        code = ((offs[:, 0] + 3) * 49 + (offs[:, 1] + 3) * 7
                + (offs[:, 2] + 3))
        order = np.argsort(code, kind="stable")
        codes, starts = np.unique(code[order], return_index=True)
        bounds = np.append(starts[1:], order.size)
        out: Dict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray]] = {}
        for c, a, b in zip(codes, starts, bounds):
            key = (int(c) // 49 - 3, (int(c) // 7) % 7 - 3, int(c) % 7 - 3)
            sel = order[a:b]
            out[key] = (tgt_all[sel], src_all[sel])
        return out


class Octree:
    """Adaptive octree over a point cloud (leaf capacity bound)."""

    def __init__(self, points: np.ndarray, max_leaf: int = 64,
                 max_level: int = 12):
        pts = np.atleast_2d(np.asarray(points, float))
        self.points = pts
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        center = 0.5 * (lo + hi)
        half = 0.5 * float((hi - lo).max()) * 1.0000001 + 1e-12
        self.nodes: list[OctreeNode] = [OctreeNode(
            center=center, half=half, level=0,
            indices=np.arange(pts.shape[0]), children=[], parent=-1)]
        self.max_leaf = int(max_leaf)
        self.max_level = int(max_level)
        self._build(0)
        self._depth = max(n.level for n in self.nodes)
        self._levels: Optional[List[np.ndarray]] = None
        self._lists: Optional[InteractionLists] = None
        self._leaf_ranges_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def _build(self, nid: int) -> None:
        node = self.nodes[nid]
        idx = node.indices
        if idx.size <= self.max_leaf or node.level >= self.max_level:
            return
        pts = self.points[idx]
        oct_id = ((pts[:, 0] > node.center[0]).astype(int) << 2 |
                  (pts[:, 1] > node.center[1]).astype(int) << 1 |
                  (pts[:, 2] > node.center[2]).astype(int))
        node.indices = None
        qh = 0.5 * node.half
        ax, ay, az = node.anchor
        for o in range(8):
            sel = idx[oct_id == o]
            if sel.size == 0:
                continue
            bx, by, bz = (o >> 2) & 1, (o >> 1) & 1, o & 1
            off = np.array([qh if bx else -qh,
                            qh if by else -qh,
                            qh if bz else -qh])
            cid = len(self.nodes)
            self.nodes.append(OctreeNode(
                center=node.center + off, half=qh, level=node.level + 1,
                indices=sel, children=[], parent=nid,
                anchor=(2 * ax + bx, 2 * ay + by, 2 * az + bz)))
            node.children.append(cid)
            self._build(cid)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def leaves(self) -> list[int]:
        return [i for i, n in enumerate(self.nodes) if n.is_leaf]

    def depth(self) -> int:
        return self._depth

    # -- level-linearized Morton-ordered storage ------------------------------
    @property
    def anchors(self) -> np.ndarray:
        """(n_nodes, 3) integer anchors (each row at its node's level)."""
        return np.array([n.anchor for n in self.nodes], dtype=np.int64)

    @property
    def levels(self) -> np.ndarray:
        return np.array([n.level for n in self.nodes], dtype=np.int64)

    def morton_keys(self) -> np.ndarray:
        """Morton key of every node's anchor (orders nodes along the
        Z-curve *within* a level; keys of different levels are not
        comparable)."""
        return morton_keys_3d(self.anchors)

    def level_nodes(self) -> List[np.ndarray]:
        """Node ids grouped by level, each group sorted by Morton key."""
        if self._levels is None:
            keys = self.morton_keys()
            lev = self.levels
            out = []
            for l in range(self.depth() + 1):
                ids = np.nonzero(lev == l)[0]
                out.append(ids[np.argsort(keys[ids], kind="stable")])
            self._levels = out
        return self._levels

    def subtree_indices(self, nid: int) -> np.ndarray:
        """All source indices under box ``nid`` (the leaf indices of its
        subtree, concatenated in depth-first order)."""
        node = self.nodes[nid]
        if node.is_leaf:
            return node.indices
        return np.concatenate([self.subtree_indices(c)
                               for c in node.children])

    # -- integer-exact adjacency ---------------------------------------------
    def adjacent(self, a: int, b: int) -> bool:
        """Whether the closed cubes of boxes ``a`` and ``b`` intersect
        (sharing a face, edge or corner counts). Pure integer arithmetic
        on finest-level grid units — this runs in the inner loop of the
        interaction-list build, so no array temporaries."""
        na, nb = self.nodes[a], self.nodes[b]
        sa = self._depth - na.level
        sb = self._depth - nb.level
        wa, wb = 1 << sa, 1 << sb
        aa, ab = na.anchor, nb.anchor
        for i in range(3):
            la = aa[i] << sa
            lb = ab[i] << sb
            if la > lb + wb or lb > la + wa:
                return False
        return True

    # -- interaction lists ----------------------------------------------------
    def interaction_lists(self) -> InteractionLists:
        """Build (and cache) the colleague/U/V/W/X lists of every box."""
        if self._lists is not None:
            return self._lists
        n = self.n_nodes
        colleagues: List[List[int]] = [[] for _ in range(n)]
        U: List[List[int]] = [[] for _ in range(n)]
        V: List[List[int]] = [[] for _ in range(n)]
        W: List[List[int]] = [[] for _ in range(n)]
        X: List[List[int]] = [[] for _ in range(n)]
        colleagues[0] = [0]
        # Top-down colleague/V construction: candidates for box B are the
        # children of B's parent's colleagues; adjacency splits them.
        for level in range(1, self.depth() + 1):
            for b in self.level_nodes()[level]:
                b = int(b)
                for c in colleagues[self.nodes[b].parent]:
                    for d in self.nodes[c].children:
                        if self.adjacent(d, b):
                            colleagues[b].append(d)
                        else:
                            V[b].append(d)
        # U (adjacent leaves of any level) and W for leaves; X as the
        # dual of W.
        for b in self.leaves():
            for c in colleagues[b]:
                if self.nodes[c].is_leaf:
                    U[b].append(c)
            # Coarser adjacent leaves are colleagues of an ancestor.
            a = self.nodes[b].parent
            while a >= 0:
                for c in colleagues[a]:
                    if self.nodes[c].is_leaf and self.adjacent(c, b):
                        U[b].append(c)
                a = self.nodes[a].parent
            # Finer boxes: descend adjacent colleagues' subtrees.
            stack = [d for c in colleagues[b]
                     for d in self.nodes[c].children]
            while stack:
                d = stack.pop()
                if self.adjacent(d, b):
                    if self.nodes[d].is_leaf:
                        U[b].append(d)
                    else:
                        stack.extend(self.nodes[d].children)
                else:
                    W[b].append(d)
                    X[d].append(b)
        self._lists = InteractionLists(colleagues=colleagues, U=U, V=V,
                                       W=W, X=X)
        return self._lists

    # -- point-to-leaf assignment --------------------------------------------
    def _leaf_ranges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Leaf ids with their finest-level Morton key ranges, sorted.

        A leaf's subtree covers a *contiguous* run of finest-grid Morton
        keys (``[key(anchor) << 3g, (key(anchor)+1) << 3g)`` for a level
        gap of ``g``), and distinct leaves cover disjoint runs — so
        point-in-leaf lookup is one ``searchsorted``.
        """
        if self._leaf_ranges_cache is None:
            ids = np.array(self.leaves(), dtype=np.int64)
            keys = morton_keys_3d(self.anchors[ids])
            gap = (3 * (self._depth - self.levels[ids])).astype(np.uint64)
            key_lo = keys << gap
            key_hi = ((keys + np.uint64(1)) << gap) - np.uint64(1)
            order = np.argsort(key_lo)
            self._leaf_ranges_cache = (ids[order], key_lo[order],
                                       key_hi[order])
        return self._leaf_ranges_cache

    def leaf_of_points(self, targets: np.ndarray) -> np.ndarray:
        """Leaf box id containing each target, or -1.

        A target falls outside every leaf when it lies outside the root
        cube or inside a pruned (source-free) octant; such targets need
        a fallback evaluation (the treecode-style MAC descent).
        """
        targets = np.atleast_2d(np.asarray(targets, float))
        root = self.nodes[0]
        lo = root.center - root.half
        width = 2.0 * root.half
        out = np.full(targets.shape[0], -1, dtype=np.int64)
        inside = np.nonzero(np.all((targets >= lo)
                                   & (targets <= lo + width), axis=1))[0]
        if inside.size == 0:
            return out
        depth = self.depth()
        scaled = np.floor((targets[inside] - lo) / width
                          * (1 << depth)).astype(np.int64)
        tkeys = morton_keys_3d(np.clip(scaled, 0, (1 << depth) - 1))
        ids, key_lo, key_hi = self._leaf_ranges()
        pos = np.clip(np.searchsorted(key_lo, tkeys, side="right") - 1,
                      0, ids.size - 1)
        hit = (tkeys >= key_lo[pos]) & (tkeys <= key_hi[pos])
        out[inside] = np.where(hit, ids[pos], -1)
        return out

"""Kernel-independent fast summation (PVFMM substitute, S3 in DESIGN.md).

The paper evaluates all global integrals with PVFMM [26, 27]. Here the
same role is played by a pure-numpy *kernel-independent treecode*: an
adaptive octree is built over the sources; each box carries an equivalent
density on a cube check surface fitted by regularized least squares (the
KIFMM upward pass: P2M at leaves, M2M up the tree); a target evaluates
well-separated boxes through their equivalent sources (multipole
acceptance criterion) and near boxes directly. Complexity O(N log N)
with accuracy set by the equivalent-surface resolution, verified against
the direct O(N^2) sums in the tests. The Stokes and Laplace single and
double layers are all supported through the same machinery — kernel
independence is the point of the method.
"""
from .octree import InteractionLists, Octree, OctreeNode
from .treecode import KernelIndependentTreecode, stokes_slp_fmm, laplace_slp_fmm
from .kifmm import GlobalKIFMM, stokes_slp_global_fmm

__all__ = [
    "InteractionLists",
    "Octree",
    "OctreeNode",
    "KernelIndependentTreecode",
    "GlobalKIFMM",
    "stokes_slp_fmm",
    "stokes_slp_global_fmm",
    "laplace_slp_fmm",
]

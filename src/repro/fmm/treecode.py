"""Kernel-independent equivalent-density treecode.

Upward pass: every box replaces its sources by an *equivalent density* on
a cube surface around it, fitted so that the field matches on a larger
check surface (Tikhonov-regularized least squares, the KIFMM recipe of
Ying/Biros/Zorin that PVFMM implements). M2M promotes child equivalents
to the parent. Evaluation: a target descends the tree; boxes satisfying
the multipole acceptance criterion (target far from the box relative to
its size) are evaluated through their ~O(p^2) equivalent sources, others
are opened, leaves are evaluated directly.
"""
from __future__ import annotations

import threading
from functools import lru_cache
from typing import Callable, Literal

import numpy as np

from ..analysis.guard import freeze
from ..kernels import (
    laplace_slp_apply,
    laplace_slp_matrix,
    stokes_slp_apply,
    stokes_slp_matrix,
    stokes_dlp_apply,
)
from .octree import Octree

KernelName = Literal["stokes_slp", "laplace_slp"]

#: Relative radii of the equivalent and check surfaces (the PVFMM
#: convention: the equivalent surface hugs the box, the check surface
#: sits just inside the minimum well-separated distance of 3 box
#: half-widths). Measured against direct sums, (1.05, 2.95) is 10-60x
#: more accurate per surface resolution than the wider (1.3, 2.6) pair
#: it replaced — the fit extrapolates less.
_EQUIV_RADIUS = 1.05
_CHECK_RADIUS = 2.95
#: Check surfaces carry ``e + _CHECK_EXTRA`` points per edge: the fits
#: are overdetermined least squares, which kills the field-sampling
#: aliasing a square check grid suffers near the separation boundary
#: (another ~30x at e=5, saturating past +2 extra points).
_CHECK_EXTRA = 2


@lru_cache(maxsize=8)
def _cube_surface(e: int) -> np.ndarray:
    """e x e points per face of the unit cube surface, shape (m, 3)."""
    t = np.linspace(-1.0, 1.0, e)
    pts = []
    for axis in range(3):
        for sign in (-1.0, 1.0):
            A, B = np.meshgrid(t, t, indexing="ij")
            face = np.empty((e * e, 3))
            face[:, axis] = sign
            others = [k for k in range(3) if k != axis]
            face[:, others[0]] = A.ravel()
            face[:, others[1]] = B.ravel()
            pts.append(face)
    pts = np.unique(np.round(np.vstack(pts), 12), axis=0)
    return freeze(pts)


@lru_cache(maxsize=32)
def _fit_operator(kernel: KernelName, e: int, viscosity: float,
                  density_radius: float = _EQUIV_RADIUS,
                  check_radius: float = _CHECK_RADIUS) -> np.ndarray:
    """Pseudo-inverse mapping check-surface values -> equivalent density
    at unit scale (both kernels are homogeneous of degree -1, so the
    operator rescales by the box size at apply time).

    The defaults fit the *upward* equivalent density (sources on the
    small surface, matched on the large one); the downward pass of the
    global FMM swaps the radii (density on the large surface, matched on
    the small one). Cached: every tree of every step shares the handful
    of distinct (kernel, resolution, viscosity, radii) SVDs.
    """
    eq = density_radius * _cube_surface(e)
    ck = check_radius * _cube_surface(e + _CHECK_EXTRA)
    if kernel == "stokes_slp":
        M = stokes_slp_matrix(eq, ck, viscosity)
    else:
        M = laplace_slp_matrix(eq, ck)
    U, s, Vt = np.linalg.svd(M, full_matrices=False)
    cutoff = s[0] * 1e-9
    sinv = np.where(s > cutoff, 1.0 / s, 0.0)
    return freeze((Vt.T * sinv) @ U.T)


class KernelIndependentTreecode:
    """Fast summation of weighted single-layer sources.

    Parameters
    ----------
    sources, weighted_density:
        Source points and their weighted densities ((n,3) for Stokes,
        (n,) for Laplace).
    kernel:
        ``"stokes_slp"`` or ``"laplace_slp"``.
    equiv_points_per_edge:
        Resolution of the equivalent surface (accuracy knob).
    mac:
        Multipole acceptance: a box is used in far form when
        ``dist(target, box center) >= mac * box_half_width``.
    farfield_dtype:
        ``"float32"`` evaluates the equivalent-density (M2P) sums in
        single precision; the equivalent-density *fits* of the upward
        pass and the direct leaf (P2P) sums stay float64, so only the
        far field — already carrying the multipole approximation error —
        is affected. Stokes kernel only (the Laplace path ignores it).
    """

    def __init__(self, sources: np.ndarray, weighted_density: np.ndarray,
                 kernel: KernelName = "stokes_slp", viscosity: float = 1.0,
                 max_leaf: int = 128, equiv_points_per_edge: int = 5,
                 mac: float = 3.0, farfield_dtype: str = "float64"):
        self.kernel: KernelName = kernel
        self.viscosity = viscosity
        self.mac = float(mac)
        self.farfield_dtype = str(farfield_dtype)
        self._far_dtype = (None if self.farfield_dtype == "float64"
                           else self.farfield_dtype)
        self.sources = np.atleast_2d(np.asarray(sources, float))
        den = np.asarray(weighted_density, float)
        self.ncomp = 3 if kernel == "stokes_slp" else 1
        self.density = den.reshape(self.sources.shape[0], self.ncomp) \
            if self.ncomp == 3 else den.reshape(-1, 1)
        self.tree = Octree(self.sources, max_leaf=max_leaf)
        self.e = int(equiv_points_per_edge)
        self._surf = _cube_surface(self.e)
        self._ck_surf = _cube_surface(self.e + _CHECK_EXTRA)
        self._fit = _fit_operator(kernel, self.e, viscosity)
        #: interaction counters (source-target pair counts per route).
        #: Each evaluate() accumulates locally and folds under the lock,
        #: so concurrent evaluations from executor fan-out stay exact.
        self.stats = {"p2p": 0, "m2p": 0}
        self._stats_lock = threading.Lock()
        self._upward()

    # -- upward pass ---------------------------------------------------------
    def _box_eval(self, src: np.ndarray, den: np.ndarray,
                  trg: np.ndarray, dtype=None) -> np.ndarray:
        if self.kernel == "stokes_slp":
            return stokes_slp_apply(src, den, trg, self.viscosity,
                                    dtype=dtype)
        return laplace_slp_apply(src, den.ravel(), trg)[:, None]

    def _equiv_points(self, node) -> np.ndarray:
        return node.center + (_EQUIV_RADIUS * node.half) * self._surf

    def _check_points(self, node) -> np.ndarray:
        return node.center + (_CHECK_RADIUS * node.half) * self._ck_surf

    def _upward(self) -> None:
        order = sorted(range(self.tree.n_nodes),
                       key=lambda i: -self.tree.nodes[i].level)
        for nid in order:
            node = self.tree.nodes[nid]
            ck = self._check_points(node)
            if node.is_leaf:
                vals = self._box_eval(self.sources[node.indices],
                                      self.density[node.indices], ck)
            else:
                vals = np.zeros((ck.shape[0], self.ncomp))
                for cid in node.children:
                    child = self.tree.nodes[cid]
                    vals += self._box_eval(self._equiv_points(child),
                                           child.equiv, ck)
            # Homogeneity of degree -1: the unit-scale fit operator solves
            # M_unit q = v; at box scale s the kernel matrix is M_unit / s,
            # so q_s = s * (fit @ v).
            s = node.half
            equiv = s * (self._fit @ vals.reshape(-1)).reshape(-1, self.ncomp)
            node.equiv = equiv

    # -- evaluation -------------------------------------------------------------
    def evaluate(self, targets: np.ndarray) -> np.ndarray:
        """Potential at arbitrary targets (self-pairs at distance 0 are
        skipped by the kernels)."""
        targets = np.atleast_2d(np.asarray(targets, float))
        out = np.zeros((targets.shape[0], self.ncomp))
        local = {"p2p": 0, "m2p": 0}
        self._descend(0, targets, np.arange(targets.shape[0]), out, local)
        with self._stats_lock:
            for key, count in local.items():
                self.stats[key] += count
        return out if self.ncomp > 1 else out.ravel()

    def _descend(self, nid: int, targets: np.ndarray, tidx: np.ndarray,
                 out: np.ndarray, stats: dict) -> None:
        if tidx.size == 0:
            return
        node = self.tree.nodes[nid]
        d = np.linalg.norm(targets[tidx] - node.center, axis=1)
        far = d >= self.mac * node.half
        far_idx = tidx[far]
        near_idx = tidx[~far]
        if far_idx.size:
            vals = self._box_eval(self._equiv_points(node), node.equiv,
                                  targets[far_idx], dtype=self._far_dtype)
            out[far_idx] += vals
            stats["m2p"] += far_idx.size * self._surf.shape[0]
        if near_idx.size:
            if node.is_leaf:
                vals = self._box_eval(self.sources[node.indices],
                                      self.density[node.indices],
                                      targets[near_idx])
                out[near_idx] += vals
                stats["p2p"] += near_idx.size * node.indices.size
            else:
                for cid in node.children:
                    self._descend(cid, targets, near_idx, out, stats)


def stokes_slp_fmm(src: np.ndarray, weighted_density: np.ndarray,
                   trg: np.ndarray, viscosity: float = 1.0,
                   **kwargs) -> np.ndarray:
    """Drop-in fast replacement for :func:`repro.kernels.stokes_slp_apply`."""
    tc = KernelIndependentTreecode(src, weighted_density, "stokes_slp",
                                   viscosity, **kwargs)
    return tc.evaluate(trg)


def laplace_slp_fmm(src: np.ndarray, weighted_density: np.ndarray,
                    trg: np.ndarray, **kwargs) -> np.ndarray:
    """Drop-in fast replacement for :func:`repro.kernels.laplace_slp_apply`."""
    tc = KernelIndependentTreecode(src, weighted_density, "laplace_slp",
                                   **kwargs)
    return tc.evaluate(trg)

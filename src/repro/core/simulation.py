"""Top-level simulation driver: the public entry point of the platform."""
from __future__ import annotations

import dataclasses
import warnings
from fractions import Fraction
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..bie import BoundarySolver
from ..collision import NCPSolver, patch_collision_mesh
from ..config import NumericsOptions, ReproConfig
from ..patches import PatchSurface
from ..resilience import (HealthSentinel, StepRejectedError, capture_state,
                          restore_state)
from ..surfaces import SpectralSurface
from ..vessel.recycling import OutletRecycler
from .interactions import BACKENDS, InteractionBackend, make_backend
from .stepper import StepReport, TimeStepper
from .timers import ComponentTimers

#: exception classes the transactional step treats as a *recoverable*
#: step failure (rolled back and retried at smaller dt): numerical
#: breakdowns and the runtime errors solver layers raise on corrupted
#: input. Programming errors (TypeError, AttributeError, ...) propagate.
RECOVERABLE_ERRORS = (ArithmeticError, ValueError, RuntimeError,
                      np.linalg.LinAlgError)


@dataclasses.dataclass
class SimulationConfig:
    """Deprecated flag-style configuration of a blood-flow simulation.

    Superseded by :class:`repro.config.ReproConfig`, whose ``forces``
    list replaces the ``with_tension`` / ``gravity`` /
    ``background_flow`` flags. Passing a ``SimulationConfig`` to
    :class:`Simulation` still works (it is converted via
    :meth:`ReproConfig.from_legacy`) but emits a ``DeprecationWarning``.
    """

    dt: float = 0.05
    bending_modulus: float = 0.01
    viscosity: float = 1.0
    with_tension: bool = False
    with_collisions: bool = True
    gravity: Optional[tuple[float, tuple[float, float, float]]] = None
    background_flow: Optional[Callable[[np.ndarray], np.ndarray]] = None
    collision_points_per_patch_edge: int = 12
    numerics: NumericsOptions = dataclasses.field(default_factory=NumericsOptions)


class Simulation:
    """A confined (or free-space) RBC flow simulation.

    Parameters
    ----------
    cells:
        Initial cell surfaces (see :func:`repro.vessel.fill_with_rbcs`).
    vessel:
        Optional closed patch surface (outward normals, fluid inside).
    boundary_bc:
        Dirichlet data at the vessel's coarse nodes (see
        :mod:`repro.vessel.boundary_conditions`); zero means no-slip
        everywhere.
    config:
        A :class:`repro.config.ReproConfig` (preferred; see
        :mod:`repro.presets` for paper scenarios) or a deprecated
        :class:`SimulationConfig`.
    recycler:
        Optional inlet/outlet cell recycler.
    backend:
        Optional pre-built :class:`InteractionBackend` instance
        overriding ``config.backend``.
    """

    def __init__(self, cells: Sequence[SpectralSurface],
                 vessel: Optional[PatchSurface] = None,
                 boundary_bc: Optional[np.ndarray] = None,
                 config: Optional[Union[ReproConfig, SimulationConfig]] = None,
                 recycler: Optional[OutletRecycler] = None,
                 backend: Optional[InteractionBackend] = None):
        if isinstance(config, SimulationConfig):
            warnings.warn(
                "SimulationConfig is deprecated; build a ReproConfig with "
                "composable force terms instead (see repro.presets)",
                DeprecationWarning, stacklevel=2)
            config = ReproConfig.from_legacy(config)
        self.config = config or ReproConfig()
        if backend is not None and backend.name in BACKENDS:
            # Keep the archived config faithful to the run when a
            # pre-built backend instance overrides config.backend.
            self.config = dataclasses.replace(
                self.config, backend=backend.name,
                backend_options=backend.options())
        self.cells = list(cells)
        self.vessel = vessel
        self.recycler = recycler
        self.timers = ComponentTimers()
        # Numerics are shared policy; copy before stamping the fluid
        # viscosity so a caller-supplied bundle is never mutated.
        opts = dataclasses.replace(self.config.numerics,
                                   viscosity=self.config.viscosity)

        solver = None
        if vessel is not None:
            solver = BoundarySolver(vessel, kernel="stokes",
                                    viscosity=self.config.viscosity,
                                    options=opts)

        ncp = None
        if self.config.with_collisions:
            boundary_meshes = []
            if vessel is not None:
                m = self.config.collision_points_per_patch_edge
                for k, patch in enumerate(vessel.patches):
                    boundary_meshes.append(
                        patch_collision_mesh(patch, object_id=k, m=m))
            ncp = NCPSolver(boundary_meshes=boundary_meshes, options=opts)

        if backend is None:
            backend = make_backend(self.config.backend,
                                   **self.config.backend_options)

        self.stepper = TimeStepper(
            self.cells, options=opts, boundary_solver=solver,
            boundary_bc=boundary_bc, forces=self.config.forces,
            backend=backend, ncp_solver=ncp, timers=self.timers,
            resilience=self.config.resilience)

        self.t = 0.0
        self.history: list[StepReport] = []

    @property
    def boundary_solver(self) -> Optional[BoundarySolver]:
        return self.stepper.boundary_solver

    @property
    def backend(self) -> InteractionBackend:
        return self.stepper.backend

    @property
    def executor(self):
        """The per-cell stage executor (see ``NumericsOptions.executor`` /
        ``workers``); ``sim.executor.close()`` releases worker threads
        early when a threaded simulation is discarded mid-run."""
        return self.stepper.executor

    @property
    def checkpointable(self) -> bool:
        """Whether :func:`repro.resilience.save_checkpoint` supports this
        scene. Vessel-bound and recycling scenes are not yet serializable
        (the checkpoint format covers free-space cell state only), so
        callers that checkpoint opportunistically — the sweep runner
        above all — consult this instead of catching the
        ``NotImplementedError`` the save would raise."""
        return self.vessel is None and self.recycler is None

    # -- driving ------------------------------------------------------------
    def step(self) -> StepReport:
        """Advance one *nominal* time step, transactionally.

        With ``config.resilience.enabled`` (the default) the step is a
        transaction: the mutable per-cell state is snapshotted, the
        stepped state is validated by the health sentinel (finiteness,
        area/volume drift, the solver convergence flags the step already
        computed), and a failed — or crashed — step is rolled back and
        retried at half the time step, sub-stepping back onto the
        nominal time grid. The returned report always spans exactly
        ``config.dt`` (sub-step reports ride along on
        ``StepReport.substeps``), so accepted trajectories live on
        multiples of the nominal dt regardless of retries; healthy steps
        are bit-identical to stepping with resilience disabled. Raises
        :class:`~repro.resilience.StepRejectedError` when the retry
        budget or the dt floor is exhausted, with the simulation rolled
        back to the last accepted sub-step.

        Recycling (if configured) runs once per accepted nominal step.
        """
        pol = self.config.resilience
        if pol is None or not pol.enabled:
            report = self.stepper.step(self.t, self.config.dt)
            self.t += self.config.dt
        else:
            report = self._transactional_step(pol)
            self.t += self.config.dt
        if self.recycler is not None:
            report.recycled = self.recycler.recycle(self.cells)
            for i in report.recycled:
                self.stepper.refresh_cell(i)
        self.history.append(report)
        return report

    def _transactional_step(self, pol) -> StepReport:
        """One nominal step as a rollback transaction (see :meth:`step`).

        Sub-step bookkeeping uses exact :class:`~fractions.Fraction`
        arithmetic over the *fraction of the nominal dt* — halving and
        re-summing dyadic floats directly (``dt - dt/2 - dt/4 ...``)
        accumulates rounding, which would knock the sub-step sizes (and
        with them the trajectory) off the exact halves the retries are
        defined on.
        """
        dt_nominal = self.config.dt
        sentinel = HealthSentinel(pol, warnings=self.stepper.warnings)
        t0 = self.t
        remaining = Fraction(1)     # of the nominal step, still to cover
        frac = Fraction(1)          # current sub-step size
        retries = 0
        substeps: list[StepReport] = []
        while remaining > 0:
            frac = min(frac, remaining)
            done = Fraction(1) - remaining
            # float(done/frac) is exact for dyadic fractions, so this
            # rounds once — matching the raw path's t arithmetic when
            # the step is clean.
            t_sub = t0 + dt_nominal * float(done)
            dt_sub = dt_nominal * float(frac)
            snapshot = capture_state(self.stepper, t_sub)
            failure = None
            health = None
            report = None
            try:
                report = self.stepper.step(t_sub, dt_sub)
            except RECOVERABLE_ERRORS as exc:
                failure = f"step raised {type(exc).__name__}: {exc}"
            if report is not None:
                health = sentinel.evaluate(self.stepper, report, snapshot)
                report.health = health
                if not health:
                    failure = "; ".join(health.failures)
            if failure is None:
                substeps.append(report)
                remaining -= frac
                continue
            restore_state(self.stepper, snapshot)
            retries += 1
            if retries > pol.max_retries:
                raise StepRejectedError(
                    f"step at t={t_sub:.6g} rejected after "
                    f"{pol.max_retries} retries ({failure}); state rolled "
                    "back to the last accepted sub-step", health=health)
            if float(frac) / 2.0 < pol.dt_floor_factor:
                raise StepRejectedError(
                    f"step at t={t_sub:.6g} still failing at dt = "
                    f"{float(frac):g} x nominal; halving again would cross "
                    f"the dt floor ({pol.dt_floor_factor:g} x nominal). "
                    f"Last failure: {failure}", health=health)
            frac = frac / 2
        if len(substeps) == 1 and retries == 0:
            return substeps[0]
        final = dataclasses.replace(substeps[-1], t=t0, dt=dt_nominal,
                                    substeps=substeps, retries=retries)
        return final

    def run(self, n_steps: int,
            callback: Optional[Callable[[int, StepReport], None]] = None
            ) -> list[StepReport]:
        out = []
        for k in range(n_steps):
            rep = self.step()
            out.append(rep)
            if callback is not None:
                callback(k, rep)
        return out

    # -- diagnostics ---------------------------------------------------------
    def centroids(self) -> np.ndarray:
        return np.array([c.centroid() for c in self.cells])

    def total_cell_volume(self) -> float:
        return float(sum(c.volume() for c in self.cells))

    def total_cell_area(self) -> float:
        return float(sum(c.area() for c in self.cells))

    def volume_fraction(self, lumen_volume: Optional[float] = None) -> float:
        if lumen_volume is None:
            if self.vessel is None:
                raise ValueError("need lumen_volume without a vessel")
            lumen_volume = self.vessel.volume()
        return self.total_cell_volume() / lumen_volume

    def n_dof(self) -> int:
        """Unknowns per time step: cell positions (+ tension) + boundary
        density, the count reported in the paper's scaling tables."""
        per_cell = 3 + (1 if self.stepper.with_tension else 0)
        n = sum(per_cell * c.n_points for c in self.cells)
        if self.vessel is not None:
            n += 3 * self.vessel.coarse().points.shape[0]
        return n

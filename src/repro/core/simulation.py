"""Top-level simulation driver: the public entry point of the platform."""
from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..bie import BoundarySolver
from ..collision import NCPSolver, patch_collision_mesh
from ..config import NumericsOptions, ReproConfig
from ..patches import PatchSurface
from ..surfaces import SpectralSurface
from ..vessel.recycling import OutletRecycler
from .interactions import BACKENDS, InteractionBackend, make_backend
from .stepper import StepReport, TimeStepper
from .timers import ComponentTimers


@dataclasses.dataclass
class SimulationConfig:
    """Deprecated flag-style configuration of a blood-flow simulation.

    Superseded by :class:`repro.config.ReproConfig`, whose ``forces``
    list replaces the ``with_tension`` / ``gravity`` /
    ``background_flow`` flags. Passing a ``SimulationConfig`` to
    :class:`Simulation` still works (it is converted via
    :meth:`ReproConfig.from_legacy`) but emits a ``DeprecationWarning``.
    """

    dt: float = 0.05
    bending_modulus: float = 0.01
    viscosity: float = 1.0
    with_tension: bool = False
    with_collisions: bool = True
    gravity: Optional[tuple[float, tuple[float, float, float]]] = None
    background_flow: Optional[Callable[[np.ndarray], np.ndarray]] = None
    collision_points_per_patch_edge: int = 12
    numerics: NumericsOptions = dataclasses.field(default_factory=NumericsOptions)


class Simulation:
    """A confined (or free-space) RBC flow simulation.

    Parameters
    ----------
    cells:
        Initial cell surfaces (see :func:`repro.vessel.fill_with_rbcs`).
    vessel:
        Optional closed patch surface (outward normals, fluid inside).
    boundary_bc:
        Dirichlet data at the vessel's coarse nodes (see
        :mod:`repro.vessel.boundary_conditions`); zero means no-slip
        everywhere.
    config:
        A :class:`repro.config.ReproConfig` (preferred; see
        :mod:`repro.presets` for paper scenarios) or a deprecated
        :class:`SimulationConfig`.
    recycler:
        Optional inlet/outlet cell recycler.
    backend:
        Optional pre-built :class:`InteractionBackend` instance
        overriding ``config.backend``.
    """

    def __init__(self, cells: Sequence[SpectralSurface],
                 vessel: Optional[PatchSurface] = None,
                 boundary_bc: Optional[np.ndarray] = None,
                 config: Optional[Union[ReproConfig, SimulationConfig]] = None,
                 recycler: Optional[OutletRecycler] = None,
                 backend: Optional[InteractionBackend] = None):
        if isinstance(config, SimulationConfig):
            warnings.warn(
                "SimulationConfig is deprecated; build a ReproConfig with "
                "composable force terms instead (see repro.presets)",
                DeprecationWarning, stacklevel=2)
            config = ReproConfig.from_legacy(config)
        self.config = config or ReproConfig()
        if backend is not None and backend.name in BACKENDS:
            # Keep the archived config faithful to the run when a
            # pre-built backend instance overrides config.backend.
            self.config = dataclasses.replace(
                self.config, backend=backend.name,
                backend_options=backend.options())
        self.cells = list(cells)
        self.vessel = vessel
        self.recycler = recycler
        self.timers = ComponentTimers()
        # Numerics are shared policy; copy before stamping the fluid
        # viscosity so a caller-supplied bundle is never mutated.
        opts = dataclasses.replace(self.config.numerics,
                                   viscosity=self.config.viscosity)

        solver = None
        if vessel is not None:
            solver = BoundarySolver(vessel, kernel="stokes",
                                    viscosity=self.config.viscosity,
                                    options=opts)

        ncp = None
        if self.config.with_collisions:
            boundary_meshes = []
            if vessel is not None:
                m = self.config.collision_points_per_patch_edge
                for k, patch in enumerate(vessel.patches):
                    boundary_meshes.append(
                        patch_collision_mesh(patch, object_id=k, m=m))
            ncp = NCPSolver(boundary_meshes=boundary_meshes, options=opts)

        if backend is None:
            backend = make_backend(self.config.backend,
                                   **self.config.backend_options)

        self.stepper = TimeStepper(
            self.cells, options=opts, boundary_solver=solver,
            boundary_bc=boundary_bc, forces=self.config.forces,
            backend=backend, ncp_solver=ncp, timers=self.timers)

        self.t = 0.0
        self.history: list[StepReport] = []

    @property
    def boundary_solver(self) -> Optional[BoundarySolver]:
        return self.stepper.boundary_solver

    @property
    def backend(self) -> InteractionBackend:
        return self.stepper.backend

    @property
    def executor(self):
        """The per-cell stage executor (see ``NumericsOptions.executor`` /
        ``workers``); ``sim.executor.close()`` releases worker threads
        early when a threaded simulation is discarded mid-run."""
        return self.stepper.executor

    # -- driving ------------------------------------------------------------
    def step(self) -> StepReport:
        """Advance one time step (and recycle outlet cells if configured)."""
        report = self.stepper.step(self.t, self.config.dt)
        self.t += self.config.dt
        if self.recycler is not None:
            report.recycled = self.recycler.recycle(self.cells)
            for i in report.recycled:
                self.stepper.refresh_cell(i)
        self.history.append(report)
        return report

    def run(self, n_steps: int,
            callback: Optional[Callable[[int, StepReport], None]] = None
            ) -> list[StepReport]:
        out = []
        for k in range(n_steps):
            rep = self.step()
            out.append(rep)
            if callback is not None:
                callback(k, rep)
        return out

    # -- diagnostics ---------------------------------------------------------
    def centroids(self) -> np.ndarray:
        return np.array([c.centroid() for c in self.cells])

    def total_cell_volume(self) -> float:
        return float(sum(c.volume() for c in self.cells))

    def total_cell_area(self) -> float:
        return float(sum(c.area() for c in self.cells))

    def volume_fraction(self, lumen_volume: Optional[float] = None) -> float:
        if lumen_volume is None:
            if self.vessel is None:
                raise ValueError("need lumen_volume without a vessel")
            lumen_volume = self.vessel.volume()
        return self.total_cell_volume() / lumen_volume

    def n_dof(self) -> int:
        """Unknowns per time step: cell positions (+ tension) + boundary
        density, the count reported in the paper's scaling tables."""
        per_cell = 3 + (1 if self.stepper.with_tension else 0)
        n = sum(per_cell * c.n_points for c in self.cells)
        if self.vessel is not None:
            n += 3 * self.vessel.coarse().points.shape[0]
        return n

"""Top-level simulation driver: the public entry point of the platform."""
from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from ..bie import BoundarySolver
from ..collision import NCPSolver, patch_collision_mesh
from ..config import NumericsOptions
from ..patches import PatchSurface
from ..surfaces import SpectralSurface
from ..vessel.recycling import OutletRecycler
from .stepper import StepReport, TimeStepper
from .timers import ComponentTimers


@dataclasses.dataclass
class SimulationConfig:
    """User-facing configuration of a blood-flow simulation."""

    dt: float = 0.05
    bending_modulus: float = 0.01
    viscosity: float = 1.0
    with_tension: bool = False
    with_collisions: bool = True
    gravity: Optional[tuple[float, tuple[float, float, float]]] = None
    background_flow: Optional[Callable[[np.ndarray], np.ndarray]] = None
    collision_points_per_patch_edge: int = 12
    numerics: NumericsOptions = dataclasses.field(default_factory=NumericsOptions)


class Simulation:
    """A confined (or free-space) RBC flow simulation.

    Parameters
    ----------
    cells:
        Initial cell surfaces (see :func:`repro.vessel.fill_with_rbcs`).
    vessel:
        Optional closed patch surface (outward normals, fluid inside).
    boundary_bc:
        Dirichlet data at the vessel's coarse nodes (see
        :mod:`repro.vessel.boundary_conditions`); zero means no-slip
        everywhere.
    recycler:
        Optional inlet/outlet cell recycler.
    """

    def __init__(self, cells: Sequence[SpectralSurface],
                 vessel: Optional[PatchSurface] = None,
                 boundary_bc: Optional[np.ndarray] = None,
                 config: Optional[SimulationConfig] = None,
                 recycler: Optional[OutletRecycler] = None):
        self.config = config or SimulationConfig()
        self.cells = list(cells)
        self.vessel = vessel
        self.recycler = recycler
        self.timers = ComponentTimers()
        opts = self.config.numerics
        opts.viscosity = self.config.viscosity

        solver = None
        if vessel is not None:
            solver = BoundarySolver(vessel, kernel="stokes",
                                    viscosity=self.config.viscosity,
                                    options=opts)

        ncp = None
        if self.config.with_collisions:
            boundary_meshes = []
            if vessel is not None:
                m = self.config.collision_points_per_patch_edge
                for k, patch in enumerate(vessel.patches):
                    boundary_meshes.append(
                        patch_collision_mesh(patch, object_id=k, m=m))
            ncp = NCPSolver(boundary_meshes=boundary_meshes, options=opts)

        gravity = None
        if self.config.gravity is not None:
            drho, gvec = self.config.gravity
            gravity = (drho, np.asarray(gvec, float))

        self.stepper = TimeStepper(
            self.cells, options=opts, boundary_solver=solver,
            boundary_bc=boundary_bc,
            background_flow=self.config.background_flow,
            bending_modulus=self.config.bending_modulus,
            gravity=gravity, with_tension=self.config.with_tension,
            ncp_solver=ncp, timers=self.timers)

        self.t = 0.0
        self.history: list[StepReport] = []

    @property
    def boundary_solver(self) -> Optional[BoundarySolver]:
        return self.stepper.boundary_solver

    # -- driving ------------------------------------------------------------
    def step(self) -> StepReport:
        """Advance one time step (and recycle outlet cells if configured)."""
        report = self.stepper.step(self.t, self.config.dt)
        self.t += self.config.dt
        if self.recycler is not None:
            report.recycled = self.recycler.recycle(self.cells)
            if report.recycled:
                for i in report.recycled:
                    self.stepper._self_ops[i].refresh()
        self.history.append(report)
        return report

    def run(self, n_steps: int,
            callback: Optional[Callable[[int, StepReport], None]] = None
            ) -> list[StepReport]:
        out = []
        for k in range(n_steps):
            rep = self.step()
            out.append(rep)
            if callback is not None:
                callback(k, rep)
        return out

    # -- diagnostics ---------------------------------------------------------
    def centroids(self) -> np.ndarray:
        return np.array([c.centroid() for c in self.cells])

    def total_cell_volume(self) -> float:
        return float(sum(c.volume() for c in self.cells))

    def total_cell_area(self) -> float:
        return float(sum(c.area() for c in self.cells))

    def volume_fraction(self, lumen_volume: Optional[float] = None) -> float:
        if lumen_volume is None:
            if self.vessel is None:
                raise ValueError("need lumen_volume without a vessel")
            lumen_volume = self.vessel.volume()
        return self.total_cell_volume() / lumen_volume

    def n_dof(self) -> int:
        """Unknowns per time step: cell positions (+ tension) + boundary
        density, the count reported in the paper's scaling tables."""
        per_cell = 3 + (1 if self.config.with_tension else 0)
        n = sum(per_cell * c.n_points for c in self.cells)
        if self.vessel is not None:
            n += 3 * self.vessel.coarse().points.shape[0]
        return n

"""Component wall-time accounting in the paper's categories.

Paper Sec. 5.2 decomposes time into COL (collision detection/resolution),
BIE-solve (computing u_Gamma excluding FMM calls), BIE-FMM (FMM calls for
u_Gamma), Other-FMM (FMM calls of other algorithms) and Other. Two finer
categories split the per-cell solves out of Other: Tension (the
inextensibility Schur solve) and Implicit (the locally-implicit position
update), so the benchmark can track the direct-vs-iterative solver work
separately.
"""
from __future__ import annotations

import contextlib
import threading
import time
from collections import defaultdict

CATEGORIES = ("COL", "BIE-solve", "BIE-FMM", "Other-FMM", "Tension",
              "Implicit", "Other")


class ComponentTimers:
    """Accumulates seconds per category; nested scopes attribute time to
    the innermost category.

    Thread-safe: the scope stack is thread-local (nesting is a
    per-thread notion) and the shared accumulators are lock-guarded, so
    executor worker threads may open scopes concurrently with the main
    thread's stage scopes.
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = defaultdict(float)
        self._local = threading.local()
        self._lock = threading.Lock()

    def _thread_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextlib.contextmanager
    def scope(self, category: str):
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        stack = self._thread_stack()
        start = time.perf_counter()
        stack.append(category)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stack.pop()
            with self._lock:
                self.seconds[category] += elapsed
                # subtract from the enclosing scope so categories are
                # exclusive (within this thread's nesting)
                if stack:
                    self.seconds[stack[-1]] -= elapsed

    def fold(self, deltas: dict[str, float]) -> None:
        """Fold per-category seconds measured elsewhere into this timer.

        Used by the process executor: worker processes time their tasks
        on a private ComponentTimers and ship the per-category deltas
        back with the results. Folding is plain locked addition — like a
        scope opened on a fresh worker thread, the seconds do *not*
        subtract from whatever scope the calling thread has open, so the
        parent's stage scope still accounts its own (dispatch/gather)
        wall time while the worker seconds land in their own categories.
        """
        if not deltas:
            return
        unknown = set(deltas) - set(CATEGORIES)
        if unknown:
            raise ValueError(f"unknown categories {sorted(unknown)!r}")
        with self._lock:
            for category, elapsed in deltas.items():
                self.seconds[category] += elapsed

    def total(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> dict[str, float]:
        return {c: self.seconds.get(c, 0.0) for c in CATEGORIES}

    def reset(self) -> None:
        self.seconds.clear()

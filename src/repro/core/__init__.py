"""The simulation platform (paper Sec. 2.2, "Algorithm summary").

:class:`Simulation` couples all subsystems: spectral RBCs with bending /
tension forces, the boundary solver for the vessel, the explicit
inter-cell interaction pipeline (steps 1a-1e), the locally-implicit
per-cell update (step 2), and the contact projection (NCP). Component
wall-times are accumulated in the same categories the paper reports
(COL, BIE-solve, BIE-FMM, Other-FMM, Other) so the scaling harness can
regenerate Figs. 4-6.
"""
from .timers import ComponentTimers
from .stepper import TimeStepper, StepReport
from .simulation import Simulation, SimulationConfig

__all__ = [
    "ComponentTimers",
    "TimeStepper",
    "StepReport",
    "Simulation",
    "SimulationConfig",
]

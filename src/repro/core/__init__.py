"""The simulation platform (paper Sec. 2.2, "Algorithm summary").

:class:`Simulation` couples all subsystems: spectral RBCs with composable
:class:`~repro.physics.terms.ForceTerm` physics, the boundary solver for
the vessel, the pluggable cell-cell interaction backend (steps 1a-1e),
the locally-implicit per-cell update (step 2), and the contact
projection (NCP). :class:`Scenario` / :class:`ScenarioBuilder` are the
fluent front door. Component wall-times are accumulated in the same
categories the paper reports (COL, BIE-solve, BIE-FMM, Other-FMM,
Other) so the scaling harness can regenerate Figs. 4-6.

Per-cell stages run through the :class:`CellBatch` structure-of-arrays
layer (same-order cells share stacked GEMMs) on the executor selected by
``NumericsOptions.executor`` (see :mod:`repro.runtime.executor`).
"""
from .timers import ComponentTimers
from .cellbatch import CellBatch
from .interactions import (BACKENDS, DirectBackend, InteractionBackend,
                           TreecodeBackend, make_backend, register_backend)
from .stepper import TimeStepper, StepReport
from .simulation import Simulation, SimulationConfig
from .scenario import Scenario, ScenarioBuilder

__all__ = [
    "ComponentTimers",
    "CellBatch",
    "TimeStepper",
    "StepReport",
    "Simulation",
    "SimulationConfig",
    "Scenario",
    "ScenarioBuilder",
    "InteractionBackend",
    "DirectBackend",
    "TreecodeBackend",
    "BACKENDS",
    "make_backend",
    "register_backend",
]

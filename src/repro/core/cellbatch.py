"""Structure-of-arrays batch view over a scene's cells.

The per-cell stages of a time step act on *every* cell with the same
kind of dense linear algebra: a forward SHT of the positions, a GEMV
against the cell's assembled self-interaction operator, a factorized
solve. :class:`CellBatch` is the batching layer those stages go through:
it groups the cells by spherical-harmonic order, and inside each group
the per-cell calls collapse into one *stacked* operation — a single
``(ncell, nlat, nphi, 3)``-shaped transform, or one batched
``(ncell, 3N, 3N) @ (ncell, 3N)`` GEMM — instead of ``ncell`` separate
GEMVs. Homogeneous scenes (every cell the same order, the common case)
are therefore one BLAS call per stage; heterogeneous scenes degrade
gracefully to one call per order group.

Batching changes no semantics: the stacked paths agree with the
per-cell loops to floating-point roundoff (``<= 1e-12`` relative, tested)
and everything here is deterministic, so it composes with any
:mod:`repro.runtime.executor` choice.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..linalg import StackedLUFactorization
from ..sph import get_transform
from ..surfaces import SpectralSurface
from ..vesicle.self_interaction import assemble_circulant


class CellBatch:
    """Groups a cell list by order and batches their per-cell dense ops.

    The batch holds references (not copies) to the cells, so it stays
    valid as they move; only membership is fixed at construction.
    """

    def __init__(self, cells: Sequence[SpectralSurface]):
        self.cells: List[SpectralSurface] = list(cells)
        by_order: Dict[int, List[int]] = {}
        for i, c in enumerate(self.cells):
            by_order.setdefault(c.order, []).append(i)
        #: ``(order, cell indices)`` per group, ascending in order; the
        #: index lists preserve scene order, so scattering grouped
        #: results back by index is deterministic.
        self.groups: List[Tuple[int, List[int]]] = sorted(by_order.items())

    @property
    def homogeneous(self) -> bool:
        """Whether every cell shares one spherical-harmonic order."""
        return len(self.groups) <= 1

    def __len__(self) -> int:
        return len(self.cells)

    # -- stacked views -----------------------------------------------------
    def stacked_positions(self) -> Dict[int, np.ndarray]:
        """Per order group, positions stacked as ``(k, nlat, nphi, 3)``."""
        return {order: np.stack([self.cells[i].X for i in idx])
                for order, idx in self.groups}

    # -- batched SHT -------------------------------------------------------
    def seed_coeffs(self) -> None:
        """Fill every cell's SH-coefficient cache with stacked transforms.

        Per order group, the coordinate fields of all cells whose cache
        is empty are stacked and pushed through *one* forward SHT (the
        transform's leading axes are batch dimensions), then scattered
        into each cell via :meth:`SpectralSurface.seed_coeffs` — one
        Legendre GEMM per group instead of one per cell. Every
        downstream consumer (geometry, self-op assembly, the near
        evaluators) then finds the coefficients already cached.
        """
        for order, idx in self.groups:
            todo = [i for i in idx if self.cells[i]._coeffs is None]
            if not todo:
                continue
            T = get_transform(order)
            fields = np.stack([np.moveaxis(self.cells[i].X, -1, 0)
                               for i in todo])        # (k, 3, nlat, nphi)
            coeffs = T.forward(fields)
            for slot, i in enumerate(todo):
                self.cells[i].seed_coeffs(coeffs[slot])

    # -- stacked self-interaction reassembly -------------------------------
    def assemble_selfops(self, ops: Sequence, due: Sequence[int]) -> None:
        """Stacked block-circulant reassembly of the ``due`` cells'
        singular self-interaction operators.

        Cells sharing rotation tables (same order/upsample pair) and
        viscosity are assembled in one
        :func:`repro.vesicle.assemble_circulant` call — the per-ring
        GEMMs and inverse azimuthal transforms carry a leading cell axis
        instead of re-dispatching per cell — and the slices are handed
        to each operator via
        :meth:`~repro.vesicle.SingularSelfInteraction.install_full`; the
        cells' next policy-driven ``refresh()`` consumes the installed
        state. A stacked slice equals the per-cell assembly to
        floating-point roundoff (same batched kernels on the same data;
        <= 1e-16 tested), and the stacking is deterministic, so threaded
        runs stay bit-identical to serial. Callers must pass only cells
        that are *due* a full reassembly at the current geometry, on
        operators in ``"circulant"`` assembly mode.
        """
        groups: Dict[tuple, List[int]] = {}
        for i in due:
            key = (id(ops[i].tables), float(ops[i].viscosity))
            groups.setdefault(key, []).append(i)
        for idx in groups.values():
            surfs = [self.cells[i] for i in idx]
            op0 = ops[idx[0]]
            M, X_rot, w_rot = assemble_circulant(op0.tables, surfs,
                                                 op0.viscosity)
            for slot, i in enumerate(idx):
                ops[i].install_full(M[slot], X_rot[slot], w_rot[slot])

    # -- stacked direct-solve factorization --------------------------------
    def factorize_lu(self, matrices: Sequence[Optional[np.ndarray]]
                     ) -> List[Optional[object]]:
        """Factorize per-cell dense operators as stacked equal-order
        groups.

        ``matrices[i]`` is cell ``i``'s square system (or ``None`` for
        cells with nothing to factorize this step). Same-order groups
        share operator shape, so each group becomes one
        :class:`repro.linalg.StackedLUFactorization` — the getrf/getrs
        calls run over one ``(k, n, n)`` buffer — and every cell gets
        back a solve handle bit-identical to its own per-cell
        ``LUFactorization`` (same LAPACK kernels on the same matrix).
        """
        if len(matrices) != len(self.cells):
            raise ValueError(f"expected {len(self.cells)} matrices, got "
                             f"{len(matrices)}")
        out: List[Optional[object]] = [None] * len(self.cells)
        for _, idx in self.groups:
            live = [i for i in idx if matrices[i] is not None]
            if not live:
                continue
            stacked = StackedLUFactorization([matrices[i] for i in live])
            for slot, i in enumerate(live):
                out[i] = stacked.handle(slot)
        return out

    # -- batched per-cell operator application -----------------------------
    def apply_matrices(self, matrices: Sequence[Optional[np.ndarray]],
                       vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """``y_i = M_i @ x_i`` for per-cell square operators, batched.

        ``matrices[i]`` / ``vectors[i]`` belong to cell ``i``. Cells in
        the same order group share operator shape, so each group is one
        stacked ``(k, m, m) @ (k, m, 1)`` GEMM; a cell with ``None`` for
        its matrix passes its vector through unchanged (identity).
        Results come back as a list indexed by cell.
        """
        if len(matrices) != len(self.cells) or len(vectors) != len(self.cells):
            raise ValueError(
                f"expected {len(self.cells)} matrices/vectors, got "
                f"{len(matrices)}/{len(vectors)}")
        out: List[Optional[np.ndarray]] = [None] * len(self.cells)
        for _, idx in self.groups:
            live = [i for i in idx if matrices[i] is not None]
            for i in idx:
                if matrices[i] is None:
                    out[i] = np.asarray(vectors[i], float).ravel().copy()
            if not live:
                continue
            if len(live) == 1:
                i = live[0]
                out[i] = matrices[i] @ np.asarray(vectors[i], float).ravel()
                continue
            M = np.stack([matrices[i] for i in live])
            x = np.stack([np.asarray(vectors[i], float).ravel()
                          for i in live])
            y = np.matmul(M, x[:, :, None])[:, :, 0]
            for slot, i in enumerate(live):
                out[i] = y[slot]
        return out

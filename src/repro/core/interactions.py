"""Pluggable cell-cell interaction backends.

The explicit part of each time step needs the velocity induced by every
cell's single layer on every *other* cell (and on the vessel wall). How
that N-body sum is computed is a performance policy, not physics, so it
lives behind the :class:`InteractionBackend` protocol:

- :class:`DirectBackend` — the near-singular-aware pairwise loop, O(n^2)
  in the number of cells but exact up to quadrature error.
- :class:`TreecodeBackend` — far-field sums routed through one
  kernel-independent treecode *per source cell*; near pairs (and the
  self term removal) fall back to the near-singular evaluators, the
  paper's FMM + near-correction split.
- :class:`FMMBackend` — a single global two-pass KIFMM over all cells'
  sources (:class:`repro.fmm.GlobalKIFMM`), with exact float64 self
  subtraction and near-scheme deltas layered on top; the O(N) choice
  once the suspension outgrows a dozen cells.

All cache one :class:`~repro.vesicle.CellNearEvaluator` per cell across
steps (rebuilding them every step was a measurable hot-path cost) and
upsample each cell's force density to the fine grid once per step,
reusing it for every target batch.

The per-source sums are independent tasks, so every source loop maps
over the backend's :attr:`~InteractionBackend.executor` (assigned by the
time stepper, serial by default) and the per-target accumulations are
folded afterwards in fixed source order — the threaded schedule is
bit-identical to the serial one.

Under the ``"process"`` executor the same fan-out runs across worker
*processes*: the backend asks the executor for a shard count, partitions
the source cells with the Morton partitioner (spatially compact shards
keep each worker's near-zone candidates local), and maps
:data:`repro.core.shardwork.RUN_SHARD` over payloads carrying only
coefficients/positions/densities. Results regroup by global source index
(:func:`_regroup`) so the fixed-order fold — and the trajectory — stays
bit-identical to serial.
"""
from __future__ import annotations

from typing import ClassVar, Dict, List, Optional, Sequence, Type

import numpy as np

from ..fmm import GlobalKIFMM, KernelIndependentTreecode
from ..kernels import stokes_slp_apply
from ..runtime.executor import Executor, SerialExecutor
from ..runtime.partition import partition_by_morton
from ..surfaces import SpectralSurface
from ..vesicle import CellNearEvaluator
from . import shardwork


def _regroup(ncell: int, shards: Sequence[np.ndarray],
             per_shard: Sequence[list]) -> list:
    """Flatten shard results back to global source order.

    Each shard returns one result per source cell, in the shard's own
    order; the fold that follows must run in ascending global source
    order (the accumulation order is part of the bit-identity contract),
    so results are re-indexed by the shard index arrays first.
    """
    out = [None] * ncell
    for shard, vals in zip(shards, per_shard):
        for j, v in zip(shard, vals):
            out[int(j)] = v
    return out


class InteractionBackend:
    """Computes all-pairs single-layer velocities for the explicit step.

    Lifecycle: :meth:`bind` once to a cell list, :meth:`prepare` once per
    step with that step's force densities, then any number of
    :meth:`cell_cell` / :meth:`evaluate_at` calls; :meth:`refresh` after
    cell ``i`` moves.
    """

    name: ClassVar[str] = ""

    def __init__(self) -> None:
        self.cells: List[SpectralSurface] = []
        self.viscosity = 1.0
        self.farfield_dtype = "float64"
        self.evaluators: List[CellNearEvaluator] = []
        #: executor the per-source tasks are mapped over (the stepper
        #: installs its own, so backend and stages share one policy).
        self.executor: Executor = SerialExecutor()
        self._bound = False
        self._prepared = False
        self._fw: List[np.ndarray] = []
        self._forces: List[np.ndarray] = []

    def bind(self, cells: Sequence[SpectralSurface], viscosity: float,
             farfield_dtype: str = "float64") -> "InteractionBackend":
        # Copy: a caller mutating its own list must not desynchronize
        # cells from their evaluators.
        self.cells = list(cells)
        self.viscosity = float(viscosity)
        self.farfield_dtype = str(farfield_dtype)
        self.evaluators = [CellNearEvaluator(
            c, viscosity=self.viscosity,
            farfield_dtype=self.farfield_dtype) for c in self.cells]
        self._bound = True
        self._prepared = False
        return self

    @property
    def bound(self) -> bool:
        return self._bound

    def options(self) -> dict:
        """JSON-safe constructor options (for config serialization)."""
        return {}

    def refresh(self, i: int) -> None:
        """Rebuild the cached evaluator state of cell ``i`` after it moved.

        Also discards any prepared step state: force densities weighted
        on the pre-move geometry would silently misrepresent the new
        configuration, so :meth:`prepare` must be called again before
        the next evaluation.
        """
        self.evaluators[i].refresh()
        self._prepared = False
        self._fw = []
        self._forces = []

    def _require_prepared(self) -> None:
        if not self._prepared:
            raise RuntimeError(
                "backend has no prepared step state; call prepare(forces) "
                "(again after any refresh) before evaluating")

    def refresh_all(self) -> None:
        for i in range(len(self.evaluators)):
            self.refresh(i)

    def prepare(self, forces: Sequence[np.ndarray]) -> None:
        """Cache this step's force densities for reuse across targets.

        Densities are normalized to C-contiguous layout: pickling a
        strided array contiguifies it, and numpy's reductions take
        layout-dependent (ulp-different) paths — so the parent must
        compute on the exact layout a worker process would receive, or
        process != serial at the last bit.
        """
        self._forces = [np.ascontiguousarray(f) for f in forces]
        if len(self._forces) != len(self.evaluators):
            raise ValueError(f"got {len(self._forces)} force densities for "
                             f"{len(self.evaluators)} bound cells")
        self._fw = [None] * len(self._forces)
        self._prepared = True

    def _weighted(self, j: int) -> np.ndarray:
        """Cell j's quadrature-weighted fine density, upsampled lazily
        once per step (a single-cell free-space run never needs it).
        C-contiguous for the same reason as :meth:`prepare`."""
        if self._fw[j] is None:
            self._fw[j] = np.ascontiguousarray(
                self.evaluators[j].weighted_fine_density(self._forces[j]))
        return self._fw[j]

    def _source_velocity(self, j: int, targets: np.ndarray) -> np.ndarray:
        """Cell j's single-layer velocity at arbitrary targets."""
        raise NotImplementedError

    def _source_shards(self) -> Optional[List[np.ndarray]]:
        """Morton shards of the source-cell indices, or None.

        None means "run the inline per-source path" — the executor did
        not ask for process-level sharding (:meth:`Executor.shard_count`
        returned < 2) or there are too few cells to cut. Otherwise the
        cells are partitioned by the Morton order of their centroids so
        each shard is spatially compact.
        """
        nshard = self.executor.shard_count(len(self.cells))
        if nshard <= 1:
            return None
        centroids = np.array([c.points.mean(axis=0) for c in self.cells])
        shards = [s for s in partition_by_morton(centroids, nshard)
                  if s.size]
        return shards if len(shards) > 1 else None

    def _payload(self, j: int) -> "shardwork.CellPayload":
        """Source cell j snapshotted for shipment to a worker process."""
        return shardwork.payload_for(j, self.evaluators[j], self._forces[j],
                                     self._weighted(j))

    def cell_cell(self) -> List[np.ndarray]:
        """``b_i = sum_{j != i} S_j f_j`` at cell i's points, per cell.

        All other cells' points are stacked into one target batch per
        source cell, so the near-singular pipeline and the far kernel run
        once per source instead of once per (source, target-cell) pair.
        The per-source batches are independent tasks mapped over the
        executor; the accumulation folds in fixed source order.
        """
        self._require_prepared()
        cells = self.cells
        ncell = len(cells)
        b = [np.zeros((c.n_points, 3)) for c in cells]

        def task(j: int) -> Optional[np.ndarray]:
            others = [i for i in range(ncell) if i != j]
            if not others:
                return None
            targets = np.concatenate([cells[i].points for i in others])
            return self._source_velocity(j, targets)

        vals_per_source = self.executor.map(task, range(ncell))
        for j, vals in enumerate(vals_per_source):
            if vals is None:
                continue
            at = 0
            for i in range(ncell):
                if i == j:
                    continue
                n = cells[i].n_points
                b[i] += vals[at:at + n]
                at += n
        return b

    def evaluate_at(self, targets: np.ndarray) -> np.ndarray:
        """``sum_j S_j f_j`` at external targets (e.g. the vessel wall)."""
        self._require_prepared()
        targets = np.atleast_2d(np.asarray(targets, float))
        out = np.zeros((targets.shape[0], 3))
        vals = self.executor.map(
            lambda j: self._source_velocity(j, targets),
            range(len(self.cells)))
        for v in vals:
            out += v
        return out


# repro-lint: disable=global-mutable — class registry written once at import time by @register_backend, read-only afterwards
BACKENDS: Dict[str, Type[InteractionBackend]] = {}


def register_backend(cls: Type[InteractionBackend]) -> Type[InteractionBackend]:
    """Class decorator adding a backend to the :data:`BACKENDS` registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    BACKENDS[cls.name] = cls
    return cls


def make_backend(name: str, **options) -> InteractionBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown interaction backend {name!r}; "
                         f"registered: {sorted(BACKENDS)}") from None
    return cls(**options)


@register_backend
class DirectBackend(InteractionBackend):
    """Exact pairwise near-singular evaluation, O(ncell^2) pairs."""

    name = "direct"

    def _source_velocity(self, j: int, targets: np.ndarray) -> np.ndarray:
        return self.evaluators[j].evaluate(self._forces[j], targets,
                                           fine_weighted=self._weighted(j))

    def cell_cell(self) -> List[np.ndarray]:
        """Shard-aware specialization of the all-pairs sum.

        With a sharding executor the per-source evaluations ship to
        worker processes as :class:`repro.core.shardwork.DirectShard`
        batches; each worker excludes a source's own block from the
        stacked cloud exactly like the inline task stacks "all other
        cells", and the fold runs in ascending source order either way.
        """
        shards = self._source_shards()
        if shards is None:
            return super().cell_cell()
        self._require_prepared()
        cells = self.cells
        ncell = len(cells)
        counts = [c.n_points for c in cells]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        allpts = np.concatenate([c.points for c in cells])
        tasks = [shardwork.DirectShard(
                     sources=[self._payload(j) for j in shard],
                     allpts=allpts,
                     own=[(int(offsets[j]), int(offsets[j + 1]))
                          for j in shard])
                 for shard in shards]
        vals_per_source = _regroup(
            ncell, shards, self.executor.map(shardwork.RUN_SHARD, tasks))
        b = [np.zeros((n, 3)) for n in counts]
        for j, vals in enumerate(vals_per_source):
            at = 0
            for i in range(ncell):
                if i == j:
                    continue
                b[i] += vals[at:at + counts[i]]
                at += counts[i]
        return b


class NearZoneMixin:
    """Conservative bounding-sphere near-zone classification, shared by
    every tree-accelerated backend: a target is *possibly near* source
    cell ``j`` when it falls inside ``j``'s bounding sphere inflated by
    ``near_safety`` times the cell's near-scheme distance. Only those
    targets are handed to the near-singular machinery."""

    near_safety: float
    cells: List[SpectralSurface]
    evaluators: List[CellNearEvaluator]

    def _bounding_spheres(self) -> None:
        centers, radii = [], []
        for c in self.cells:
            pts = c.points
            ctr = pts.mean(axis=0)
            centers.append(ctr)
            radii.append(float(np.linalg.norm(pts - ctr, axis=1).max()))
        self._centers = np.asarray(centers)
        self._radii = np.asarray(radii)

    def _near_cutoffs(self) -> np.ndarray:
        """Per-source near-zone radius (bounding sphere + near distance)."""
        return self._radii + self.near_safety * np.array(
            [ev.near_distance for ev in self.evaluators])

    def _near_mask(self, j: int, targets: np.ndarray) -> np.ndarray:
        """Targets that may fall in source cell j's near-evaluation zone."""
        d = np.linalg.norm(targets - self._centers[j], axis=1)
        return d < self._near_cutoffs()[j]


@register_backend
class TreecodeBackend(NearZoneMixin, InteractionBackend):
    """Far field through the KIFMM treecode, near pairs exact.

    One treecode is built per source cell per step over that cell's fine
    quadrature sources. Targets in a source cell's near zone (by a
    conservative bounding-sphere test) go through the near-singular
    evaluator; all other targets are summed through the tree, whose
    multipole acceptance collapses a far cell to a handful of
    equivalent-density boxes. A cell's own sources never enter its
    right-hand side, so there is no self-term subtraction (the global
    tree of :class:`FMMBackend` needs one, and neutralizes the
    cancellation against the on-surface smooth sum by pairing it with
    an exact float64 subtraction).

    Parameters mirror :class:`repro.fmm.KernelIndependentTreecode`;
    ``near_safety`` scales the bounding-sphere gap below which a pair is
    treated as near.
    """

    name = "treecode"

    def __init__(self, mac: float = 3.0, equiv_points_per_edge: int = 5,
                 max_leaf: int = 64, near_safety: float = 1.5):
        super().__init__()
        self.mac = float(mac)
        self.equiv_points_per_edge = int(equiv_points_per_edge)
        self.max_leaf = int(max_leaf)
        self.near_safety = float(near_safety)
        self._trees: List[KernelIndependentTreecode] = []
        self._centers: Optional[np.ndarray] = None
        self._radii: Optional[np.ndarray] = None

    def options(self) -> dict:
        return {"mac": self.mac,
                "equiv_points_per_edge": self.equiv_points_per_edge,
                "max_leaf": self.max_leaf,
                "near_safety": self.near_safety}

    def prepare(self, forces: Sequence[np.ndarray]) -> None:
        super().prepare(forces)
        self._bounding_spheres()
        self._trees = []
        if self._source_shards() is None:
            # Eager parent-side builds for the inline path. Under
            # process sharding each worker builds its own shard's trees
            # instead (shardwork.TreecodeShard), so building them here
            # too would double the work; evaluate_at falls back to a
            # lazy build when it needs them (see _masked_velocity).
            self._build_trees()

    def _build_trees(self) -> None:
        # Per-source tree builds (upward pass included) are independent
        # tasks; the far-field dtype only affects evaluation, the fits
        # stay float64.
        self._trees = self.executor.map(
            lambda j: KernelIndependentTreecode(
                self.evaluators[j]._fine.points,
                self._weighted(j).reshape(-1, 3), "stokes_slp",
                self.viscosity, max_leaf=self.max_leaf,
                equiv_points_per_edge=self.equiv_points_per_edge,
                mac=self.mac, farfield_dtype=self.farfield_dtype),
            range(len(self.cells)))

    def evaluate_at(self, targets: np.ndarray) -> np.ndarray:
        self._require_prepared()
        if not self._trees and self.cells:
            # prepare() skips the eager build under a sharding executor
            # (workers build their own shard's trees); external-target
            # evaluation still needs parent-side trees, so build them
            # here — on the calling thread, never inside a mapped task.
            self._build_trees()
        return super().evaluate_at(targets)

    def _masked_velocity(self, j: int, targets: np.ndarray,
                         mask: np.ndarray) -> np.ndarray:
        """Cell j's velocity at targets, near pairs (``mask``) through the
        near-singular evaluator, the rest through the tree."""
        out = np.empty((targets.shape[0], 3))
        if mask.any():
            out[mask] = self.evaluators[j].evaluate(
                self._forces[j], targets[mask],
                fine_weighted=self._weighted(j))
        if (~mask).any():
            out[~mask] = self._trees[j].evaluate(targets[~mask])
        return out

    def _source_velocity(self, j: int, targets: np.ndarray) -> np.ndarray:
        """Cell j's single-layer velocity at targets: near-aware where
        needed, treecode elsewhere."""
        return self._masked_velocity(j, targets, self._near_mask(j, targets))

    def cell_cell(self) -> List[np.ndarray]:
        """Near-pair-batched specialization of the all-pairs sum.

        All cells' points are stacked once and the near masks of *every*
        source are computed in a single vectorized distance pass against
        the stacked cloud (one (n_points_total, ncell) sweep instead of
        one mask evaluation per source call); each source then runs one
        near-evaluator batch and one treecode batch over its gathered
        targets, exactly like :meth:`DirectBackend.cell_cell` stacks
        target cells.
        """
        self._require_prepared()
        cells = self.cells
        ncell = len(cells)
        if ncell <= 1:
            return [np.zeros((c.n_points, 3)) for c in cells]
        counts = [c.n_points for c in cells]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        allpts = np.concatenate([c.points for c in cells])
        # (ntot, ncell) near classification in one pass.
        d = np.linalg.norm(allpts[:, None, :] - self._centers[None, :, :],
                           axis=2)
        near = d < self._near_cutoffs()[None, :]
        b = [np.zeros((n, 3)) for n in counts]

        shards = self._source_shards()
        if shards is not None:
            # Workers rebuild their shard's trees locally; the parent
            # ships the near columns it already classified.
            tasks = [shardwork.TreecodeShard(
                         sources=[self._payload(j) for j in shard],
                         allpts=allpts,
                         own=[(int(offsets[j]), int(offsets[j + 1]))
                              for j in shard],
                         near=[near[:, j].copy() for j in shard],
                         mac=self.mac,
                         equiv_points_per_edge=self.equiv_points_per_edge,
                         max_leaf=self.max_leaf)
                     for shard in shards]
            vals_per_source = _regroup(
                ncell, shards, self.executor.map(shardwork.RUN_SHARD, tasks))
        else:
            def task(j: int) -> np.ndarray:
                keep = np.ones(allpts.shape[0], dtype=bool)
                keep[offsets[j]:offsets[j + 1]] = False   # skip self targets
                return self._masked_velocity(j, allpts[keep], near[keep, j])

            vals_per_source = self.executor.map(task, range(ncell))
        for j, vals in enumerate(vals_per_source):
            at = 0
            for i in range(ncell):
                if i == j:
                    continue
                b[i] += vals[at:at + counts[i]]
                at += counts[i]
        return b


@register_backend
class FMMBackend(NearZoneMixin, InteractionBackend):
    """One global kernel-independent FMM over *all* cells' sources.

    Where :class:`TreecodeBackend` builds a tree per source cell (O(ncell)
    tree sweeps per target batch), this backend stacks every cell's fine
    quadrature sources into a single :class:`repro.fmm.GlobalKIFMM` per
    step: one upward + downward pass, then each target batch costs one
    O(N) evaluation regardless of cell count — the crossover is around a
    dozen cells (see ``examples/quickstart.py`` for the full table).

    A global tree mixes every cell's contribution, so two corrections
    restore the pairwise semantics:

    - **Self term**: cell ``i``'s own sources are subtracted through the
      *exact float64 smooth* sum at ``i``'s points. The FMM computed those
      same sources through exact float64 P2P (adjacent boxes) plus
      far-field translations, so the difference is far-field FMM error
      only — the catastrophic cancellation that ruled out a global tree
      for a naive smooth-minus-smooth scheme does not occur because both
      sides carry identical singular near terms.
    - **Near pairs**: targets inside another cell's near zone (bounding
      sphere prefilter, then the evaluator's exact near scan) get
      :meth:`~repro.vesicle.CellNearEvaluator.near_correction` added —
      near-scheme value minus the same exact smooth sum the FMM's P2P
      route already delivered.

    ``equiv_points_per_edge`` is the accuracy knob (defaults match the
    treecode: rel error ~1e-4 vs Direct at 5, ~1e-6 at 8); ``max_leaf``
    trades P2P against translation work — the 400 default keeps leaves
    at roughly one cell's near cluster, which measured ~3x faster than
    the treecode's 64..128 regime on dense suspensions (deep trees over
    lattice-packed cells explode the M2L pair count); ``mac`` only
    steers the fallback descent for targets outside the source cube
    (vessel walls).
    """

    name = "fmm"

    def __init__(self, mac: float = 3.0, equiv_points_per_edge: int = 5,
                 max_leaf: int = 400, near_safety: float = 1.5):
        super().__init__()
        self.mac = float(mac)
        self.equiv_points_per_edge = int(equiv_points_per_edge)
        self.max_leaf = int(max_leaf)
        self.near_safety = float(near_safety)
        self._fmm: Optional[GlobalKIFMM] = None
        self._centers: Optional[np.ndarray] = None
        self._radii: Optional[np.ndarray] = None

    def options(self) -> dict:
        return {"mac": self.mac,
                "equiv_points_per_edge": self.equiv_points_per_edge,
                "max_leaf": self.max_leaf,
                "near_safety": self.near_safety}

    @property
    def stats(self) -> dict:
        """Interaction counters of the current step's tree (see
        :attr:`repro.fmm.GlobalKIFMM.stats`)."""
        return {} if self._fmm is None else dict(self._fmm.stats)

    def prepare(self, forces: Sequence[np.ndarray]) -> None:
        super().prepare(forces)
        self._bounding_spheres()
        # Upsample every cell once (independent tasks), then build the
        # one global tree; its per-box stages fan out over the same
        # executor internally.
        fws = self.executor.map(self._weighted, range(len(self.cells)))
        src = np.concatenate(
            [ev._fine.points for ev in self.evaluators])
        den = np.concatenate([fw.reshape(-1, 3) for fw in fws])
        self._fmm = GlobalKIFMM(
            src, den, "stokes_slp", self.viscosity,
            max_leaf=self.max_leaf,
            equiv_points_per_edge=self.equiv_points_per_edge,
            mac=self.mac, farfield_dtype=self.farfield_dtype,
            executor=self.executor)

    def _self_smooth(self, j: int, targets: np.ndarray) -> np.ndarray:
        """Exact float64 smooth sum of cell j's own fine sources."""
        return stokes_slp_apply(self.evaluators[j]._fine.points,
                                self._weighted(j).reshape(-1, 3),
                                targets, self.viscosity)

    def _near_deltas(self, j: int, targets: np.ndarray,
                     candidates: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Near-scheme corrections of source j at the candidate targets,
        as (global target indices, velocity deltas)."""
        if candidates.size == 0:
            return candidates, np.zeros((0, 3))
        idx, delta = self.evaluators[j].near_correction(
            self._forces[j], targets[candidates],
            fine_weighted=self._weighted(j))
        return candidates[idx], delta

    def cell_cell(self) -> List[np.ndarray]:
        """Global-tree specialization: one FMM evaluation at the stacked
        points, then per-source self subtraction and near corrections
        (independent tasks, folded in fixed source order)."""
        self._require_prepared()
        cells = self.cells
        ncell = len(cells)
        counts = [c.n_points for c in cells]
        if ncell <= 1:
            return [np.zeros((n, 3)) for n in counts]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        allpts = np.concatenate([c.points for c in cells])
        u = self._fmm.evaluate(allpts)
        d = np.linalg.norm(allpts[:, None, :] - self._centers[None, :, :],
                           axis=2)
        near = d < self._near_cutoffs()[None, :]

        shards = self._source_shards()
        if shards is not None:
            # The global tree evaluation above stays in the parent; the
            # per-source corrections ship out with parent-selected
            # candidate targets (other cells' near-zone points).
            tasks = []
            for shard in shards:
                sources, own_points, cand_idx, cand_points = [], [], [], []
                for j in shard:
                    own = slice(offsets[j], offsets[j + 1])
                    cand = near[:, j].copy()
                    cand[own] = False   # self handled by the subtraction
                    cidx = np.nonzero(cand)[0]
                    sources.append(self._payload(j))
                    own_points.append(allpts[own])
                    cand_idx.append(cidx)
                    cand_points.append(allpts[cidx])
                tasks.append(shardwork.FMMShard(
                    sources=sources, own_points=own_points,
                    cand_idx=cand_idx, cand_points=cand_points))
            corrections = _regroup(
                ncell, shards, self.executor.map(shardwork.RUN_SHARD, tasks))
        else:
            def task(j: int) -> tuple:
                own = slice(offsets[j], offsets[j + 1])
                cand = near[:, j].copy()
                cand[own] = False      # self handled by the subtraction
                gidx, delta = self._near_deltas(j, allpts,
                                                np.nonzero(cand)[0])
                return self._self_smooth(j, allpts[own]), gidx, delta

            corrections = self.executor.map(task, range(ncell))
        for j, (self_u, gidx, delta) in enumerate(corrections):
            u[offsets[j]:offsets[j + 1]] -= self_u
            u[gidx] += delta
        return [u[offsets[i]:offsets[i + 1]].copy() for i in range(ncell)]

    def evaluate_at(self, targets: np.ndarray) -> np.ndarray:
        """One FMM evaluation plus near corrections (no self terms:
        external targets belong to no cell)."""
        self._require_prepared()
        targets = np.atleast_2d(np.asarray(targets, float))
        u = self._fmm.evaluate(targets)

        def task(j: int) -> tuple:
            cand = np.nonzero(self._near_mask(j, targets))[0]
            return self._near_deltas(j, targets, cand)

        for gidx, delta in self.executor.map(task,
                                             range(len(self.cells))):
            u[gidx] += delta
        return u

"""Fluent scenario construction: the front door of the public API.

A scenario is everything a run needs — a :class:`~repro.config.ReproConfig`,
cells (given explicitly and/or grown by the paper's filling algorithm), an
optional vessel with boundary data, a recycler, and the interaction
backend. :class:`ScenarioBuilder` assembles those pieces fluently::

    from repro import Scenario, presets
    from repro.physics.terms import Gravity

    sim = (Scenario.builder()
           .config(presets.sedimentation())
           .vessel(container)
           .fill(signed_distance=sd, bounds=(lo, hi), spacing=1.3)
           .force(Gravity(2.0))
           .backend("treecode")
           .build())
    sim.run(10)
"""
from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Union

import numpy as np

from ..config import ReproConfig
from ..physics.terms import ForceTerm
from ..surfaces import SpectralSurface
from ..vessel.filling import fill_with_rbcs
from ..vessel.recycling import OutletRecycler
from .interactions import InteractionBackend
from .simulation import Simulation


class ScenarioBuilder:
    """Accumulates scenario pieces; ``build()`` returns a ready
    :class:`~repro.core.Simulation`. Every method returns ``self``."""

    def __init__(self) -> None:
        self._config: Optional[ReproConfig] = None
        self._cells: list[SpectralSurface] = []
        self._vessel = None
        self._bc: Optional[np.ndarray] = None
        self._recycler: Optional[OutletRecycler] = None
        self._backend: Optional[InteractionBackend] = None
        self._backend_name: Optional[str] = None
        self._backend_options: dict = {}
        self._extra_forces: list[ForceTerm] = []
        self._fill_spec: Optional[dict] = None

    # -- configuration -------------------------------------------------------
    def config(self, cfg: ReproConfig) -> "ScenarioBuilder":
        """Base configuration (typically a :mod:`repro.presets` instance).

        The builder works on a copy, so presets are never mutated.
        """
        self._config = dataclasses.replace(cfg, forces=list(cfg.forces))
        return self

    def force(self, term: ForceTerm) -> "ScenarioBuilder":
        """Append a force term to the configuration's list."""
        self._extra_forces.append(term)
        return self

    def backend(self, backend: Union[str, InteractionBackend],
                **options) -> "ScenarioBuilder":
        """Select the interaction backend by registry name (with options)
        or as a pre-built instance."""
        if isinstance(backend, InteractionBackend):
            if options:
                raise ValueError("options only apply to a backend name")
            self._backend = backend
            self._backend_name = None
            self._backend_options = {}
        else:
            self._backend_name = backend
            self._backend_options = dict(options)
            self._backend = None
        return self

    # -- geometry ------------------------------------------------------------
    def cells(self, cells: Sequence[SpectralSurface]) -> "ScenarioBuilder":
        self._cells.extend(cells)
        return self

    def cell(self, cell: SpectralSurface) -> "ScenarioBuilder":
        self._cells.append(cell)
        return self

    def vessel(self, surface, bc: Optional[np.ndarray] = None
               ) -> "ScenarioBuilder":
        """Confine the flow to a patch surface, optionally with Dirichlet
        data at its coarse nodes."""
        self._vessel = surface
        if bc is not None:
            self._bc = np.asarray(bc, float)
        return self

    def boundary_condition(self, bc: np.ndarray) -> "ScenarioBuilder":
        self._bc = np.asarray(bc, float)
        return self

    def recycler(self, rec: OutletRecycler) -> "ScenarioBuilder":
        self._recycler = rec
        return self

    def fill(self, signed_distance, bounds, spacing: float = 1.5,
             volume_fraction: Optional[float] = None,
             lumen_volume: Optional[float] = None,
             max_attempts: int = 5, **kwargs) -> "ScenarioBuilder":
        """Grow RBCs into the domain with the paper's filling algorithm
        (Sec. 5.1).

        ``volume_fraction`` optionally targets a packing fraction by
        shrinking the sampling spacing over up to ``max_attempts``
        fills; ``lumen_volume`` defaults to the vessel's volume.
        """
        self._fill_spec = dict(signed_distance=signed_distance,
                               bounds=bounds, spacing=float(spacing),
                               volume_fraction=volume_fraction,
                               lumen_volume=lumen_volume,
                               max_attempts=int(max_attempts),
                               kwargs=kwargs)
        return self

    # -- assembly ------------------------------------------------------------
    def _run_fill(self) -> list[SpectralSurface]:
        spec = self._fill_spec
        lumen = spec["lumen_volume"]
        if lumen is None:
            if self._vessel is None:
                raise ValueError("fill() needs lumen_volume without a vessel")
            lumen = self._vessel.volume()
        target = spec["volume_fraction"]
        spacing = spec["spacing"]
        fill = fill_with_rbcs(spec["signed_distance"], spec["bounds"],
                              spacing=spacing, lumen_volume=lumen,
                              **spec["kwargs"])
        if target is not None:
            for _ in range(spec["max_attempts"] - 1):
                if fill.volume_fraction >= target:
                    break
                # Cell count scales like spacing^-3; shrink toward target.
                ratio = max(fill.volume_fraction, 1e-3) / target
                spacing *= max(ratio ** (1.0 / 3.0), 0.6)
                fill = fill_with_rbcs(spec["signed_distance"], spec["bounds"],
                                      spacing=spacing, lumen_volume=lumen,
                                      **spec["kwargs"])
        return list(fill.cells)

    def build(self) -> Simulation:
        """Validate and assemble the :class:`Simulation`."""
        cfg = self._config or ReproConfig()
        if self._extra_forces:
            cfg = dataclasses.replace(
                cfg, forces=[*cfg.forces, *self._extra_forces])
        if self._backend_name is not None:
            cfg = dataclasses.replace(cfg, backend=self._backend_name,
                                      backend_options=self._backend_options)
        # (a pre-built backend instance is recorded into the config by
        # Simulation itself, so both public entry points archive
        # faithfully)
        cells = list(self._cells)
        if self._fill_spec is not None:
            cells.extend(self._run_fill())
        if not cells:
            raise ValueError("scenario has no cells; call cells()/cell()/"
                             "fill() before build()")
        if self._bc is not None and self._vessel is None:
            raise ValueError("boundary data given but no vessel; call "
                             "vessel() first")
        return Simulation(cells, vessel=self._vessel, boundary_bc=self._bc,
                          config=cfg, recycler=self._recycler,
                          backend=self._backend)


class Scenario:
    """Entry point of the fluent API: ``Scenario.builder()``."""

    @staticmethod
    def builder() -> ScenarioBuilder:
        return ScenarioBuilder()

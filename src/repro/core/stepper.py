"""The locally-implicit time step (paper Sec. 2.2).

Per step, from state (X, sigma, lambda):

1. explicit part b_i:
   (a) u_fr on Gamma from all cells'  single layers,
   (b) GMRES solve of the boundary equation for phi,
   (c) u_Gamma_i = D phi at the cell points,
   (d) contributions of the *other* cells b_c_i = sum_{j != i} S_j f_j,
   (e) b_i = u_Gamma_i + b_c_i (+ any imposed-velocity force terms);
2. implicit part: solve X+ = X + dt (b + S_i f_i(X+)) per cell with the
   frozen-geometry linearized bending operator, via GMRES;
3. contact projection: the NCP loop renders (X+, lambda+) contact-free.

Interactions with the vessel and between cells are explicit; the cell's
self-interaction is implicit — exactly the paper's splitting. The
physics of step 1 is an open list of :class:`~repro.physics.terms.ForceTerm`
objects, and the cell-cell summation of (d) is delegated to an
:class:`~repro.core.interactions.InteractionBackend`.

Every per-cell stage — force evaluation, the tension and implicit
factorize-and-solve, the operator refreshes — is expressed as an
independent task per cell and mapped over the
:class:`~repro.runtime.executor.Executor` selected by
``NumericsOptions.executor`` / ``workers``; results are gathered by cell
index, so the threaded schedule is bit-identical to the serial one.
Same-order cells additionally share stacked GEMMs (the
:class:`~repro.core.cellbatch.CellBatch` layer) for the self-interaction
applies and the post-step forward SHTs.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..config import NumericsOptions
from ..linalg import LUFactorization, gmres
from ..physics import linearized_bending_apply
from ..physics.bending import implicit_operator_matrix
from ..physics.tension import TensionSolver
from ..physics.terms import (BackgroundFlow, Bending, CellState, ForceTerm,
                             Gravity, Tension)
from ..analysis.contracts import set_debug_checks
from ..resilience.health import WarnOnceRegistry
from ..runtime.executor import make_executor, resolve_workers
from ..surfaces import SpectralSurface
from ..vesicle import SingularSelfInteraction
from ..collision import NCPSolver, NCPReport
from .cellbatch import CellBatch
from .interactions import DirectBackend, InteractionBackend
from .timers import ComponentTimers


@dataclasses.dataclass
class StepReport:
    """Diagnostics of one time step.

    The defaulted tail fields carry the solver convergence flags and the
    resilience layer's verdict; they default so report construction
    stays source-compatible with pre-resilience callers.
    """

    t: float
    dt: float
    bie_iterations: int
    implicit_iterations: list[int]
    ncp: Optional[NCPReport]
    recycled: list[int]
    #: whether the boundary-integral GMRES met tolerance (record-only:
    #: the paper caps that solve's iterations by design).
    bie_converged: bool = True
    #: per-cell convergence of the implicit update (the direct LU path
    #: always reports converged; the GMRES fallback surfaces its flag).
    implicit_converged: list[bool] = dataclasses.field(default_factory=list)
    #: per-cell inner iterations of the tension solve (0 on the direct
    #: path), empty when tension is off.
    tension_iterations: list[int] = dataclasses.field(default_factory=list)
    #: AND of the per-cell tension convergence flags.
    tension_converged: bool = True
    #: cells whose factorized tension/implicit operator hit a singular
    #: pivot this step (their solves run the GMRES fallback).
    lu_singular: list[int] = dataclasses.field(default_factory=list)
    #: name of the backend the degradation policy fell back to (sticky;
    #: ``None`` while the configured backend is active).
    backend_degraded_to: Optional[str] = None
    #: the health sentinel's verdict (``None`` when resilience is off).
    health: Optional["StepHealth"] = None  # noqa: F821
    #: reports of the dt-halved sub-steps a rejected step was re-run as
    #: (empty for a clean single step).
    substeps: list = dataclasses.field(default_factory=list)
    #: number of rejected attempts before this step was accepted.
    retries: int = 0


class TimeStepper:
    """Advances a list of cells through one locally-implicit step.

    The preferred construction passes ``forces`` (a list of
    :class:`ForceTerm`) and ``backend`` (an
    :class:`InteractionBackend`); the legacy keyword arguments
    ``bending_modulus`` / ``gravity`` / ``with_tension`` /
    ``background_flow`` are still accepted and converted to the
    equivalent terms when ``forces`` is omitted.
    """

    def __init__(self, cells: Sequence[SpectralSurface],
                 options: Optional[NumericsOptions] = None,
                 boundary_solver=None,
                 boundary_bc: Optional[np.ndarray] = None,
                 background_flow: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 bending_modulus: float = 0.01,
                 gravity: Optional[tuple[float, np.ndarray]] = None,
                 with_tension: bool = False,
                 ncp_solver: Optional[NCPSolver] = None,
                 timers: Optional[ComponentTimers] = None,
                 implicit_tol: float = 1e-8,
                 implicit_max_iter: int = 60,
                 forces: Optional[Sequence[ForceTerm]] = None,
                 backend: Optional[InteractionBackend] = None,
                 resilience=None):
        self.cells = list(cells)
        self.options = options or NumericsOptions()
        #: graceful-degradation policy (a
        #: :class:`repro.config.ResilienceOptions` or ``None``): with
        #: ``backend_degradation`` set, non-finite cell-cell output from
        #: a fast backend rebinds the next backend of
        #: ``degradation_order`` in its place (see
        #: :meth:`_degrade_backend`).
        self.resilience = resilience
        #: name of the backend the degradation fell back to, or ``None``.
        self.backend_degraded_to: Optional[str] = None
        self.boundary_solver = boundary_solver
        self.boundary_bc = boundary_bc
        self.ncp = ncp_solver
        self.timers = timers or ComponentTimers()
        #: per-run once-only warning registry: recurring findings (capped
        #: BIE, degraded backend) log once per *simulation*, so concurrent
        #: runs in one process never suppress each other's warnings.
        self.warnings = WarnOnceRegistry()
        self.implicit_tol = implicit_tol
        self.implicit_max_iter = implicit_max_iter
        self.viscosity = self.options.viscosity
        if self.options.debug_checks:
            # Process-wide on purpose: the @checked seams live on shared
            # module-level functions, not per-stepper state.
            set_debug_checks(True)
        #: executor the per-cell stage tasks are mapped over.
        #: ``workers="auto"`` resolves against the cell count here — a
        #: pool wider than the shardable work would only sit idle.
        self.executor = make_executor(
            self.options.executor,
            resolve_workers(self.options.workers, len(self.cells)))
        # Process pools fold worker-side timer deltas into these
        # accumulators (a no-op attach everywhere else).
        self.executor.attach(self.timers)
        #: order-grouped SoA view used for the stacked-GEMM paths.
        self.batch = CellBatch(self.cells)

        if forces is None:
            forces = [Bending(bending_modulus)]
            if with_tension:
                forces.append(Tension())
            if gravity is not None:
                drho, gvec = gravity
                forces.append(Gravity(drho, tuple(np.asarray(gvec, float))))
            if background_flow is not None:
                forces.append(BackgroundFlow(background_flow))
        self.forces: List[ForceTerm] = list(forces)
        #: modulus of the linearized implicit bending operator.
        self.kappa = next((t.modulus for t in self.forces
                           if isinstance(t, Bending)), 0.0)
        self._tension_term = next((t for t in self.forces
                                   if isinstance(t, Tension)), None)
        self.with_tension = self._tension_term is not None
        # Per-cell cache of the summed non-tension traction: within a step
        # only the tension field changes, so the expensive geometric terms
        # (bending above all) are computed once per cell per step instead
        # of once per consumer (explicit rhs, tension solve, implicit rhs).
        self._f_ext: list[Optional[np.ndarray]] = [None] * len(self.cells)

        self.backend: InteractionBackend = backend or DirectBackend()
        # A backend instance is per-simulation state: rebinding one that
        # another simulation still holds would corrupt that simulation,
        # so a mismatched pre-bound backend is an error, not a rebind.
        if not self.backend.bound:
            self.backend.bind(self.cells, self.viscosity,
                              farfield_dtype=self.options.farfield_dtype)
        elif (self.backend.viscosity != self.viscosity
              or len(self.backend.cells) != len(self.cells)
              or any(a is not b for a, b in zip(self.backend.cells,
                                                self.cells))):
            raise ValueError(
                "interaction backend is already bound to a different "
                "simulation's cells; create a fresh backend instance per "
                "simulation")
        elif self.backend.farfield_dtype != self.options.farfield_dtype:
            raise ValueError(
                f"interaction backend was bound with farfield_dtype="
                f"{self.backend.farfield_dtype!r} but the numerics request "
                f"{self.options.farfield_dtype!r}; bind with the matching "
                f"dtype")
        # The backend's per-source loops run on the same executor as the
        # per-cell stages (one scheduling policy per simulation).
        self.backend.executor = self.executor

        self._self_ops: list[SingularSelfInteraction] = [
            SingularSelfInteraction(
                c, viscosity=self.viscosity,
                refresh_interval=self.options.selfop_refresh_interval,
                assembly=self.options.selfop_assembly)
            for c in self.cells]
        self.sigmas: list[np.ndarray] = [
            np.zeros((c.grid.nlat, c.grid.nphi)) for c in self.cells]
        # Per-cell direct-solve state, rebuilt lazily after each refresh:
        # the factorized tension Schur complement and the factorized
        # implicit operator I - dt S L (keyed by the dt it was built for).
        self._tension_solvers: list[Optional[TensionSolver]] = \
            [None] * len(self.cells)
        #: per cell: (dt, LU of I - dt S L, bending core, normals) or None.
        self._impl_lu: list[Optional[tuple]] = [None] * len(self.cells)

    # -- cached-state maintenance -----------------------------------------
    def refresh_cell(self, i: int) -> None:
        """Rebuild the cached operators of cell ``i`` after it moved.

        Covers the singular self-interaction tables (a forced full
        reassembly — out-of-band changes like recycling are too large for
        the amortized first-order correction), the interaction backend's
        near evaluator, and the factorized per-cell solve operators; call
        after any out-of-band position change (the recycler, external
        steering, ...).
        """
        self._self_ops[i].refresh(full=True)
        self._invalidate_cell(i)

    def _refresh_after_step(self, i: int) -> None:
        """Per-step refresh of cell ``i``: the self-interaction follows
        the ``selfop_refresh_interval`` amortization policy.

        The factorized tension Schur and implicit operators are rebuilt
        only on the interval's *full* reassemblies (the "factorize once
        per refresh, reuse across solves" amortization): on intermediate
        steps they stay frozen at the reference geometry — consistent
        with the first-order-corrected self-interaction they were built
        from — while everything explicit (forces, near-singular
        inter-cell terms, collision meshes) tracks the true geometry.
        With the default interval of 1 every step is a full rebuild.
        """
        was_full = self._self_ops[i].refresh()
        self.backend.refresh(i)
        self._f_ext[i] = None
        if was_full:
            self._tension_solvers[i] = None
            self._impl_lu[i] = None

    def _invalidate_cell(self, i: int) -> None:
        self.backend.refresh(i)
        self._f_ext[i] = None
        self._tension_solvers[i] = None
        self._impl_lu[i] = None

    # -- forces -----------------------------------------------------------
    def _cell_state(self, i: int) -> CellState:
        return CellState(index=i,
                         sigma=self.sigmas[i] if self.with_tension else None)

    def _external_force(self, i: int) -> np.ndarray:
        """Summed sigma-independent traction at the current geometry.

        Cached until cell ``i`` moves (see :meth:`refresh_cell`): within a
        step only the tension field changes, and terms declare via
        :attr:`ForceTerm.sigma_dependent` whether they consult it. Internal
        callers must not mutate the returned array.
        """
        if self._f_ext[i] is None:
            cell = self.cells[i]
            state = self._cell_state(i)
            f = np.zeros_like(cell.X)
            for term in self.forces:
                if term.sigma_dependent:
                    continue
                tr = term.traction(cell, state)
                if tr is not None:
                    f = f + tr
            self._f_ext[i] = f
        return self._f_ext[i]

    def interfacial_force(self, i: int,
                          include_tension: bool = True) -> np.ndarray:
        """Summed traction of the force terms for cell i at current state.

        ``include_tension=False`` gives the external forcing the tension
        solve balances against (everything but the tension itself). The
        sigma-independent part is computed once per cell per step and
        shared by the explicit pipeline, the tension solve, and the
        implicit solve; sigma-dependent terms are evaluated fresh here.
        Always returns a new array the caller may freely mutate.
        """
        f = self._external_force(i)
        fresh = False
        for term in self.forces:
            if not term.sigma_dependent:
                continue
            if not include_tension and isinstance(term, Tension):
                continue
            tr = term.traction(self.cells[i], self._cell_state(i))
            if tr is not None:
                f = f + tr
                fresh = True
        return f if fresh else f.copy()

    def _imposed_velocity(self, points: np.ndarray) -> Optional[np.ndarray]:
        """Summed imposed velocity of all force terms (None when absent)."""
        u = None
        for term in self.forces:
            v = term.velocity(points)
            if v is not None:
                u = v if u is None else u + v
        return u

    # -- the explicit pipeline ------------------------------------------------
    def _next_degraded_backend(self) -> Optional[str]:
        """Name of the backend the degradation policy would fall back to
        from the active one, or ``None`` (policy off / chain exhausted /
        active backend not in the chain)."""
        pol = self.resilience
        if pol is None or not (pol.enabled and pol.backend_degradation):
            return None
        order = tuple(pol.degradation_order)
        name = self.backend.name
        if name not in order or order.index(name) + 1 >= len(order):
            return None
        return order[order.index(name) + 1]

    def _degrade_backend(self, forces: Sequence[np.ndarray],
                         contrib: list) -> list:
        """Graceful degradation of the cell-cell summation: while the
        active backend's output contains non-finite values and the
        policy names a fallback, permanently rebind the next backend of
        ``degradation_order`` (fmm -> treecode -> direct by default) and
        re-evaluate. Sticky: later steps keep the degraded backend (the
        fast backend already proved unreliable on this scene). When the
        chain is exhausted the poisoned result is returned unchanged and
        the health sentinel's finiteness check takes over (dt-retry
        path)."""
        while not all(np.isfinite(c).all() for c in contrib):
            nxt = self._next_degraded_backend()
            if nxt is None:
                break
            from .interactions import make_backend
            self.warnings.warn_once(
                f"backend-degraded:{self.backend.name}->{nxt}",
                f"interaction backend {self.backend.name!r} produced "
                f"non-finite velocities; degrading to {nxt!r} for the "
                "rest of the run")
            self.backend = make_backend(nxt).bind(
                self.cells, self.viscosity,
                farfield_dtype=self.options.farfield_dtype)
            self.backend.executor = self.executor
            self.backend_degraded_to = nxt
            with self.timers.scope("Other-FMM"):
                self.backend.prepare(forces)
                contrib = self.backend.cell_cell()
        return contrib

    def _explicit_velocities(self) -> tuple[list[np.ndarray], int, bool]:
        cells = self.cells
        ncell = len(cells)
        forces = self.executor.map(self.interfacial_force, range(ncell))
        bie_iters = 0
        bie_converged = True

        # (d) cell-cell contributions (near-singular-aware), via the
        # pluggable backend; evaluators are cached across steps.
        with self.timers.scope("Other-FMM"):
            self.backend.prepare(forces)
            contrib = self.backend.cell_cell()
        if self.resilience is not None:
            contrib = self._degrade_backend(forces, contrib)
        b = [contrib[i].reshape(cells[i].X.shape) for i in range(ncell)]

        if self.boundary_solver is not None:
            solver = self.boundary_solver
            # (a) u_fr on Gamma.
            with self.timers.scope("Other-FMM"):
                ufr = self.backend.evaluate_at(solver.coarse.points)
            # (b) solve for phi.
            g = (self.boundary_bc if self.boundary_bc is not None
                 else np.zeros((solver.N, 3))) - ufr
            with self.timers.scope("BIE-solve"):
                phi, rep = solver.solve(g.ravel())
                bie_iters = rep.iterations
                bie_converged = bool(getattr(rep, "converged", True))
            # (c) u_Gamma at all cell points, one task per target cell.
            with self.timers.scope("BIE-FMM"):
                vals = self.executor.map(
                    lambda i: solver.evaluate(phi, cells[i].points),
                    range(ncell))
                for i in range(ncell):
                    b[i] += np.asarray(vals[i]).reshape(cells[i].X.shape)

        imposed = self.executor.map(
            lambda i: self._imposed_velocity(cells[i].points), range(ncell))
        for i in range(ncell):
            if imposed[i] is not None:
                b[i] += imposed[i].reshape(cells[i].X.shape)
        return b, bie_iters, bie_converged

    # -- tension update ---------------------------------------------------------
    def _update_tensions(self, b: list[np.ndarray]
                         ) -> tuple[list[int], bool]:
        """Solve the inextensibility constraint cell by cell (explicit in
        the inter-cell coupling, as the paper's splitting).

        The background velocity includes every non-tension traction
        (bending, gravity, user terms) through the self-interaction, so
        the computed tension is consistent with the forcing actually
        applied.

        With ``options.direct_tension`` (the default) the per-cell Schur
        complement is assembled and LU-factorized on first use after each
        refresh and the solve is a direct back-substitution; otherwise
        the matrix-free GMRES path runs.

        Batched in three stages: the self-interaction applies of all
        same-order cells collapse into one stacked GEMM (CellBatch),
        missing Schur factorizations are rebuilt — assembled as per-cell
        executor tasks, then factorized as one stacked getrf pass per
        equal-order group (``options.batched_lu``; bit-identical to the
        per-cell factorizations) — and the per-cell solve tasks map over
        the executor.
        """
        ncell = len(self.cells)
        f_bg = self.executor.map(
            lambda i: self.interfacial_force(i, include_tension=False),
            range(ncell))
        applied = self.batch.apply_matrices(
            [op.matrix for op in self._self_ops], f_bg)
        if self.options.direct_tension and self.options.batched_lu:
            self._ensure_tension_solvers()

        def task(i: int) -> tuple[np.ndarray, int, bool]:
            cell = self.cells[i]
            op = self._self_ops[i]
            u_bg = b[i] + applied[i].reshape(cell.X.shape)
            solver = self._tension_solvers[i]
            if solver is None:
                solver = TensionSolver(
                    cell, op.apply,
                    self_matrix=(op.matrix if self.options.direct_tension
                                 else None))
                self._tension_solvers[i] = solver
            # solve_report returns the GMRES convergence flag the plain
            # solve() drops (the direct path always reports converged).
            return solver.solve_report(u_bg)

        solved = self.executor.map(task, range(ncell))
        self.sigmas = [sigma for sigma, _, _ in solved]
        return ([iters for _, iters, _ in solved],
                all(conv for _, _, conv in solved))

    def _ensure_tension_solvers(self) -> None:
        """Rebuild missing direct tension solvers with one stacked
        factorization per equal-order group: the Schur systems are
        assembled as independent per-cell executor tasks, gathered, and
        getrf-factorized through ``CellBatch.factorize_lu``."""
        ncell = len(self.cells)
        todo = [i for i in range(ncell) if self._tension_solvers[i] is None]
        if not todo:
            return

        def build(i: int):
            solver = TensionSolver(self.cells[i], self._self_ops[i].apply)
            return solver, solver.schur_system(self._self_ops[i].matrix)

        built = self.executor.map(build, todo)
        systems: list[Optional[np.ndarray]] = [None] * ncell
        for (_, A), i in zip(built, todo):
            systems[i] = A
        handles = self.batch.factorize_lu(systems)
        for (solver, _), i in zip(built, todo):
            solver.install_factorization(handles[i])
            self._tension_solvers[i] = solver

    # -- implicit update ----------------------------------------------------------
    def _prepare_implicit(self, dt: float) -> None:
        """Rebuild missing implicit factorizations ``I - dt S L`` with
        one stacked getrf pass per equal-order group (mirrors
        :meth:`_ensure_tension_solvers`): assembly fans out as per-cell
        executor tasks, factorization runs stacked via
        ``CellBatch.factorize_lu``."""
        ncell = len(self.cells)
        todo = [i for i in range(ncell) if self._impl_lu[i] is None]
        if not todo:
            return
        built = self.executor.map(
            lambda i: implicit_operator_matrix(
                self.cells[i], self._self_ops[i].matrix, self.kappa, dt),
            todo)
        systems: list[Optional[np.ndarray]] = [None] * ncell
        for (A, _, _), i in zip(built, todo):
            systems[i] = A
        handles = self.batch.factorize_lu(systems)
        for (_, core, nrm), i in zip(built, todo):
            self._impl_lu[i] = (dt, handles[i], core, nrm)

    def _implicit_update(self, i: int, b: np.ndarray, dt: float
                         ) -> tuple[np.ndarray, int, bool]:
        """Solve X+ = X + dt (b + S_i f_i(X+)) with linearized bending;
        returns ``(X+, iterations, converged)``.

        With ``options.direct_implicit`` (the default) the dense operator
        ``I - dt S L`` is assembled and LU-factorized per (cell, dt) on
        first use after each refresh, and the update is a single
        back-substitution (0 reported iterations, always converged). If
        ``dt`` differs from the factorization already cached for this
        geometry — adaptive stepping mid-run, including the resilience
        layer's dt-halved retries — the solve falls back to GMRES rather
        than thrashing refactorizations, and surfaces that solve's
        convergence flag.
        """
        cell = self.cells[i]
        op = self._self_ops[i]
        shape = cell.X.shape
        f_now = self.interfacial_force(i)

        if self.options.direct_implicit:
            cached = self._impl_lu[i]
            if cached is None:
                A, core, nrm = implicit_operator_matrix(
                    cell, op.matrix, self.kappa, dt)
                cached = (dt, LUFactorization(A), core, nrm)
                self._impl_lu[i] = cached
            if cached[0] == dt:
                _, lu, core, nrm = cached
                w = np.einsum("mj,mj->m", cell.points, nrm)
                LX = ((core @ w)[:, None] * nrm).reshape(shape)
                rhs = (cell.X + dt * (b.reshape(shape)
                                      + op.apply(f_now - LX))).ravel()
                return lu.solve(rhs).reshape(shape), 0, True

        def L_apply(dX_flat: np.ndarray) -> np.ndarray:
            dX = dX_flat.reshape(shape)
            return linearized_bending_apply(cell, dX, self.kappa)

        def matvec(y: np.ndarray) -> np.ndarray:
            Y = y.reshape(shape)
            return (Y - dt * op.apply(L_apply(y))).ravel()

        rhs = (cell.X + dt * (b + op.apply(f_now
                                           - L_apply(cell.X.ravel())))).ravel()
        res = gmres(matvec, rhs, x0=cell.X.ravel(),
                    tol=self.implicit_tol, max_iter=self.implicit_max_iter)
        return res.x.reshape(shape), res.iterations, res.converged

    # -- one step ----------------------------------------------------------------
    def _singular_lu_cells(self) -> list[int]:
        """Cells whose factorized tension or implicit operator hit a
        singular pivot (their solves run the GMRES fallback of
        :mod:`repro.linalg.dense`)."""
        out = []
        for i in range(len(self.cells)):
            solver = self._tension_solvers[i]
            schur = getattr(solver, "_schur", None) if solver else None
            cached = self._impl_lu[i]
            if ((schur is not None and getattr(schur, "singular", False))
                    or (cached is not None
                        and getattr(cached[1], "singular", False))):
                out.append(i)
        return out

    def step(self, t: float, dt: float) -> StepReport:
        with self.timers.scope("Other"):
            b, bie_iters, bie_conv = self._explicit_velocities()
            tension_iters: list[int] = []
            tension_conv = True
            if self.with_tension:
                with self.timers.scope("Tension"):
                    # tensions folded via forces
                    tension_iters, tension_conv = self._update_tensions(b)

            with self.timers.scope("Implicit"):
                if self.options.direct_implicit and self.options.batched_lu:
                    self._prepare_implicit(dt)
                results = self.executor.map(
                    lambda i: self._implicit_update(i, b[i], dt),
                    range(len(self.cells)))
            candidates = [Xp for Xp, _, _ in results]
            impl_iters = [iters for _, iters, _ in results]
            impl_conv = [conv for _, _, conv in results]
            lu_singular = self._singular_lu_cells()
            if not bie_conv:
                self.warnings.warn_once(
                    "stepper:bie-nonconverged",
                    "boundary-integral GMRES hit its iteration cap "
                    "without reaching tolerance (recorded on "
                    "StepReport.bie_converged)")
            if not all(impl_conv):
                self.warnings.warn_once(
                    "stepper:implicit-nonconverged",
                    "implicit GMRES fallback did not converge on "
                    "cells %s (recorded on "
                    "StepReport.implicit_converged)" % [
                        i for i, ok in enumerate(impl_conv) if not ok])
            if not tension_conv:
                self.warnings.warn_once(
                    "stepper:tension-nonconverged",
                    "tension GMRES solve did not converge (recorded "
                    "on StepReport.tension_converged)")
            if lu_singular:
                self.warnings.warn_once(
                    "stepper:lu-singular",
                    "singular factorized operator on cells %s; "
                    "solves routed through the GMRES fallback"
                    % lu_singular)

        ncp_report = None
        if self.ncp is not None:
            with self.timers.scope("COL"):
                mobilities = [op.apply for op in self._self_ops]
                newpos, ncp_report = self.ncp.project(
                    self.cells, candidates, mobilities, dt)
        else:
            newpos = candidates

        with self.timers.scope("Other"):
            for i, cell in enumerate(self.cells):
                cell.set_positions(newpos[i])
            # One stacked forward SHT per order group seeds every cell's
            # coefficient cache before the per-cell refresh tasks (self-op
            # reassembly, evaluator rebuilds) fan out over the executor.
            self.batch.seed_coeffs()
            # Cells due a full block-circulant reassembly this step are
            # assembled as one stacked pass per same-order group; their
            # refresh tasks below consume the installed operators.
            due = [i for i, op in enumerate(self._self_ops)
                   if op.assembly_mode == "circulant" and op.due_full()]
            if len(due) > 1:
                self.batch.assemble_selfops(self._self_ops, due)
            self.executor.map(self._refresh_after_step,
                              range(len(self.cells)))
        return StepReport(t=t, dt=dt, bie_iterations=bie_iters,
                          implicit_iterations=impl_iters, ncp=ncp_report,
                          recycled=[], bie_converged=bie_conv,
                          implicit_converged=impl_conv,
                          tension_iterations=tension_iters,
                          tension_converged=tension_conv,
                          lu_singular=lu_singular,
                          backend_degraded_to=self.backend_degraded_to)

"""The locally-implicit time step (paper Sec. 2.2).

Per step, from state (X, sigma, lambda):

1. explicit part b_i:
   (a) u_fr on Gamma from all cells'  single layers,
   (b) GMRES solve of the boundary equation for phi,
   (c) u_Gamma_i = D phi at the cell points,
   (d) contributions of the *other* cells b_c_i = sum_{j != i} S_j f_j,
   (e) b_i = u_Gamma_i + b_c_i (+ any background flow / gravity drive);
2. implicit part: solve X+ = X + dt (b + S_i f_i(X+)) per cell with the
   frozen-geometry linearized bending operator, via GMRES;
3. contact projection: the NCP loop renders (X+, lambda+) contact-free.

Interactions with the vessel and between cells are explicit; the cell's
self-interaction is implicit — exactly the paper's splitting.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from ..config import NumericsOptions
from ..linalg import gmres
from ..physics import bending_force, linearized_bending_apply, gravity_force
from ..physics.tension import TensionSolver, tension_force
from ..surfaces import SpectralSurface
from ..vesicle import CellNearEvaluator, SingularSelfInteraction
from ..collision import NCPSolver, NCPReport
from .timers import ComponentTimers


@dataclasses.dataclass
class StepReport:
    """Diagnostics of one time step."""

    t: float
    dt: float
    bie_iterations: int
    implicit_iterations: list[int]
    ncp: Optional[NCPReport]
    recycled: list[int]


class TimeStepper:
    """Advances a list of cells through one locally-implicit step."""

    def __init__(self, cells: Sequence[SpectralSurface],
                 options: Optional[NumericsOptions] = None,
                 boundary_solver=None,
                 boundary_bc: Optional[np.ndarray] = None,
                 background_flow: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 bending_modulus: float = 0.01,
                 gravity: Optional[tuple[float, np.ndarray]] = None,
                 with_tension: bool = False,
                 ncp_solver: Optional[NCPSolver] = None,
                 timers: Optional[ComponentTimers] = None,
                 implicit_tol: float = 1e-8,
                 implicit_max_iter: int = 60):
        self.cells = list(cells)
        self.options = options or NumericsOptions()
        self.boundary_solver = boundary_solver
        self.boundary_bc = boundary_bc
        self.background_flow = background_flow
        self.kappa = bending_modulus
        self.gravity = gravity
        self.with_tension = with_tension
        self.ncp = ncp_solver
        self.timers = timers or ComponentTimers()
        self.implicit_tol = implicit_tol
        self.implicit_max_iter = implicit_max_iter
        self.viscosity = self.options.viscosity
        self._self_ops: list[SingularSelfInteraction] = [
            SingularSelfInteraction(c, viscosity=self.viscosity)
            for c in self.cells]
        self.sigmas: list[np.ndarray] = [
            np.zeros((c.grid.nlat, c.grid.nphi)) for c in self.cells]

    # -- forces -----------------------------------------------------------
    def interfacial_force(self, i: int) -> np.ndarray:
        """f = f_b (+ f_sigma) (+ gravity) for cell i at current state."""
        cell = self.cells[i]
        f = bending_force(cell, self.kappa)
        if self.with_tension:
            f = f + tension_force(cell, self.sigmas[i])
        if self.gravity is not None:
            drho, gvec = self.gravity
            f = f + gravity_force(cell, drho, gvec)
        return f

    # -- the explicit pipeline ------------------------------------------------
    def _explicit_velocities(self) -> tuple[list[np.ndarray], int]:
        cells = self.cells
        ncell = len(cells)
        forces = [self.interfacial_force(i) for i in range(ncell)]
        evaluators = [CellNearEvaluator(c, viscosity=self.viscosity)
                      for c in cells]
        b = [np.zeros_like(c.X) for c in cells]
        bie_iters = 0

        # (d) cell-cell contributions (near-singular-aware).
        with self.timers.scope("Other-FMM"):
            for j in range(ncell):
                for i in range(ncell):
                    if i == j:
                        continue
                    vals = evaluators[j].evaluate(forces[j],
                                                  cells[i].points)
                    b[i] += vals.reshape(cells[i].X.shape)

        if self.boundary_solver is not None:
            solver = self.boundary_solver
            # (a) u_fr on Gamma.
            with self.timers.scope("Other-FMM"):
                ufr = np.zeros((solver.N, 3))
                for j in range(ncell):
                    ufr += evaluators[j].evaluate(forces[j],
                                                  solver.coarse.points)
            # (b) solve for phi.
            g = (self.boundary_bc if self.boundary_bc is not None
                 else np.zeros((solver.N, 3))) - ufr
            with self.timers.scope("BIE-solve"):
                phi, rep = solver.solve(g.ravel())
                bie_iters = rep.iterations
            # (c) u_Gamma at all cell points.
            with self.timers.scope("BIE-FMM"):
                for i in range(ncell):
                    vals = solver.evaluate(phi, cells[i].points)
                    b[i] += np.asarray(vals).reshape(cells[i].X.shape)

        if self.background_flow is not None:
            for i in range(ncell):
                b[i] += self.background_flow(cells[i].points).reshape(
                    cells[i].X.shape)
        return b, bie_iters

    # -- tension update ---------------------------------------------------------
    def _update_tensions(self, b: list[np.ndarray]) -> None:
        """Solve the inextensibility constraint cell by cell (explicit in
        the inter-cell coupling, as the paper's splitting)."""
        for i, cell in enumerate(self.cells):
            op = self._self_ops[i]
            u_bg = b[i] + op.apply(bending_force(cell, self.kappa))
            solver = TensionSolver(cell, op.apply)
            sigma, _ = solver.solve(u_bg)
            self.sigmas[i] = sigma

    # -- implicit update ----------------------------------------------------------
    def _implicit_update(self, i: int, b: np.ndarray, dt: float
                         ) -> tuple[np.ndarray, int]:
        """Solve X+ = X + dt (b + S_i f_i(X+)) with linearized bending."""
        cell = self.cells[i]
        op = self._self_ops[i]
        shape = cell.X.shape
        f_now = self.interfacial_force(i)

        def L(dX_flat: np.ndarray) -> np.ndarray:
            dX = dX_flat.reshape(shape)
            return linearized_bending_apply(cell, dX, self.kappa)

        def matvec(y: np.ndarray) -> np.ndarray:
            Y = y.reshape(shape)
            return (Y - dt * op.apply(L(y))).ravel()

        rhs = (cell.X + dt * (b + op.apply(f_now - L(cell.X.ravel())))).ravel()
        res = gmres(matvec, rhs, x0=cell.X.ravel(),
                    tol=self.implicit_tol, max_iter=self.implicit_max_iter)
        return res.x.reshape(shape), res.iterations

    # -- one step ----------------------------------------------------------------
    def step(self, t: float, dt: float) -> StepReport:
        with self.timers.scope("Other"):
            b, bie_iters = self._explicit_velocities()
            if self.with_tension:
                self._update_tensions(b)
                b, bie_iters2 = b, bie_iters  # tensions folded via forces

            candidates = []
            impl_iters = []
            for i in range(len(self.cells)):
                Xp, iters = self._implicit_update(i, b[i], dt)
                candidates.append(Xp)
                impl_iters.append(iters)

        ncp_report = None
        if self.ncp is not None:
            with self.timers.scope("COL"):
                mobilities = [op.apply for op in self._self_ops]
                newpos, ncp_report = self.ncp.project(
                    self.cells, candidates, mobilities, dt)
        else:
            newpos = candidates

        with self.timers.scope("Other"):
            for i, cell in enumerate(self.cells):
                cell.set_positions(newpos[i])
                self._self_ops[i].refresh()
        return StepReport(t=t, dt=dt, bie_iterations=bie_iters,
                          implicit_iterations=impl_iters, ncp=ncp_report,
                          recycled=[])

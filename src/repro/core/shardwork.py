"""Worker-side shard execution for the ``"process"`` executor.

The interaction backends cut their per-source ``cell_cell`` fan-out into
Morton shards (see ``InteractionBackend._source_shards``) and map
:data:`RUN_SHARD` — a module-level :class:`ProcessTask` — over the shard
payloads defined here. The serialization story is deliberately minimal:

- Only coefficients, positions, and densities cross the process
  boundary (:class:`CellPayload`). The expensive per-order machinery —
  circulant mode symbols, Legendre/rotation/quadrature tables, the
  near-evaluator's rotation rule — is *geometry independent*, so each
  worker rebuilds it locally through the same module lru caches the
  parent uses; it is never pickled and persists inside the worker across
  tasks and steps.
- The parent's spherical-harmonic coefficients are shipped and *seeded*
  into the rebuilt surface, never recomputed: the stacked forward SHT of
  :class:`repro.core.cellbatch.CellBatch` agrees with the per-cell
  transform only to roundoff, and the contract is bit-identity, not
  numeric closeness.
- Each shard's result list is ordered by its own source order; the
  backend regroups results by global source index and folds them in
  ascending source order, exactly like the serial loop — so process ==
  thread == serial bit-identical.

Every shard type mirrors one backend's inline per-source task
verbatim — same target stacking, same masks, same kernel calls — which
is what makes the ``"checked"`` executor's inline rerun of a shard a
meaningful cross-process bit-identity check.
"""
from __future__ import annotations

import dataclasses
from typing import ClassVar, List, Tuple

import numpy as np

from ..fmm import KernelIndependentTreecode
from ..kernels import stokes_slp_apply
from ..runtime.executor import ProcessTask, worker_timers
from ..surfaces import SpectralSurface
from ..vesicle import CellNearEvaluator

_FLOAT_BYTES = 8


@dataclasses.dataclass
class CellPayload:
    """Everything a worker needs to rebuild one source cell.

    Grid positions, the parent's SH coefficients, the coarse force
    density, and the quadrature-weighted fine density — a few arrays per
    cell. The coefficients are seeded (not recomputed) in the worker;
    the weighted fine density is shipped precomputed because the parent
    needed it anyway and recomputing it is the single most expensive
    per-cell prepare step.
    """

    index: int                  # global source-cell index
    X: np.ndarray               # (nlat, nphi, 3) grid positions
    coeffs: np.ndarray          # (3, p+1, 2p+1) parent-side SH coeffs
    force: np.ndarray           # coarse force density
    fine_weighted: np.ndarray   # quadrature-weighted fine density
    viscosity: float
    farfield_dtype: str
    aliasing_factor: int


def payload_for(index: int, evaluator: CellNearEvaluator,
                force: np.ndarray,
                fine_weighted: np.ndarray) -> CellPayload:
    """Snapshot one bound cell into a shippable :class:`CellPayload`."""
    surface = evaluator.surface
    return CellPayload(index=int(index), X=surface.X,
                       coeffs=np.asarray(surface.coeffs()),
                       force=np.asarray(force),
                       fine_weighted=np.asarray(fine_weighted),
                       viscosity=evaluator.viscosity,
                       farfield_dtype=evaluator.farfield_dtype,
                       aliasing_factor=surface.aliasing_factor)


def rebuild_evaluator(payload: CellPayload) -> CellNearEvaluator:
    """Worker-side rebuild of a cell's near evaluator from its payload.

    Same idiom as checkpoint restore: construct the surface from the
    grid positions, seed the parent's coefficients *before* anything
    consumes them (the evaluator's constructor runs ``refresh``, which
    upsamples through the coefficients), then build the evaluator with
    the parent's options. All per-order tables repopulate this process's
    own caches on first use.
    """
    surface = SpectralSurface(payload.X, payload.X.shape[0] - 1,
                              payload.aliasing_factor)
    surface.seed_coeffs(payload.coeffs)
    return CellNearEvaluator(surface, viscosity=payload.viscosity,
                             farfield_dtype=payload.farfield_dtype)


def _keep_mask(n_total: int, own: Tuple[int, int]) -> np.ndarray:
    keep = np.ones(n_total, dtype=bool)
    keep[own[0]:own[1]] = False
    return keep


@dataclasses.dataclass
class DirectShard:
    """One Morton shard of :class:`DirectBackend`'s per-source fan-out.

    ``allpts`` is the full stacked target cloud; each source's own block
    (``own`` = its ``(start, stop)`` in ``allpts``) is excluded from its
    targets, mirroring the serial task's "all other cells" stacking
    bit-for-bit. The non-owned part of ``allpts`` is the shard's
    far-field ghost region (:attr:`ghost_nbytes` prices it).
    """

    phase: ClassVar[str] = "Other-FMM"

    sources: List[CellPayload]
    allpts: np.ndarray
    own: List[Tuple[int, int]]

    @property
    def ghost_nbytes(self) -> int:
        owned = sum(hi - lo for lo, hi in self.own)
        return (self.allpts.shape[0] - owned) * 3 * _FLOAT_BYTES

    def run(self) -> List[np.ndarray]:
        out = []
        for payload, own in zip(self.sources, self.own):
            evaluator = rebuild_evaluator(payload)
            keep = _keep_mask(self.allpts.shape[0], own)
            out.append(evaluator.evaluate(
                payload.force, self.allpts[keep],
                fine_weighted=payload.fine_weighted))
        return out


@dataclasses.dataclass
class TreecodeShard:
    """One Morton shard of :class:`TreecodeBackend`'s per-source fan-out.

    The near classification (one global distance sweep) stays in the
    parent — each source ships its boolean near column over ``allpts`` —
    while the per-source treecode is built inside the worker from the
    rebuilt fine sources, so no tree ever crosses the process boundary.
    """

    phase: ClassVar[str] = "Other-FMM"

    sources: List[CellPayload]
    allpts: np.ndarray
    own: List[Tuple[int, int]]
    near: List[np.ndarray]      # per-source bool near column over allpts
    mac: float
    equiv_points_per_edge: int
    max_leaf: int

    @property
    def ghost_nbytes(self) -> int:
        owned = sum(hi - lo for lo, hi in self.own)
        return (self.allpts.shape[0] - owned) * 3 * _FLOAT_BYTES

    def run(self) -> List[np.ndarray]:
        out = []
        for payload, own, near_col in zip(self.sources, self.own, self.near):
            evaluator = rebuild_evaluator(payload)
            tree = KernelIndependentTreecode(
                evaluator._fine.points,
                payload.fine_weighted.reshape(-1, 3), "stokes_slp",
                payload.viscosity, max_leaf=self.max_leaf,
                equiv_points_per_edge=self.equiv_points_per_edge,
                mac=self.mac, farfield_dtype=payload.farfield_dtype)
            keep = _keep_mask(self.allpts.shape[0], own)
            targets = self.allpts[keep]
            mask = near_col[keep]
            vals = np.empty((targets.shape[0], 3))
            if mask.any():
                vals[mask] = evaluator.evaluate(
                    payload.force, targets[mask],
                    fine_weighted=payload.fine_weighted)
            if (~mask).any():
                vals[~mask] = tree.evaluate(targets[~mask])
            out.append(vals)
        return out


@dataclasses.dataclass
class FMMShard:
    """One Morton shard of :class:`FMMBackend`'s correction fan-out.

    The single global tree evaluation stays in the parent; the shard
    computes each source's exact float64 self subtraction (over its own
    block's points) and its near-scheme deltas (over the parent-selected
    candidate targets), returning ``(self_u, global indices, deltas)``
    per source just like the inline task.
    """

    phase: ClassVar[str] = "Other-FMM"

    sources: List[CellPayload]
    own_points: List[np.ndarray]    # per-source own-block target points
    cand_idx: List[np.ndarray]      # per-source global candidate indices
    cand_points: List[np.ndarray]   # per-source candidate target points

    @property
    def ghost_nbytes(self) -> int:
        # The candidate targets are other cells' points — the only
        # non-owned geometry this shard receives.
        return sum(pts.shape[0] for pts in self.cand_points) * 3 * _FLOAT_BYTES

    def run(self) -> List[tuple]:
        out = []
        for payload, own, cidx, cpts in zip(self.sources, self.own_points,
                                            self.cand_idx, self.cand_points):
            evaluator = rebuild_evaluator(payload)
            self_u = stokes_slp_apply(evaluator._fine.points,
                                      payload.fine_weighted.reshape(-1, 3),
                                      own, payload.viscosity)
            if cidx.size == 0:
                out.append((self_u, cidx, np.zeros((0, 3))))
                continue
            idx, delta = evaluator.near_correction(
                payload.force, cpts, fine_weighted=payload.fine_weighted)
            out.append((self_u, cidx[idx], delta))
        return out


class _RunShard(ProcessTask):
    """The one process-safe entry point every shard map uses: executes a
    shard under a worker-side timer scope named by the shard's stage
    category (the deltas travel back with the results and fold into the
    parent's accumulators)."""

    def __call__(self, shard):
        with worker_timers().scope(shard.phase):
            return shard.run()


#: Module-level task instance — picklable by reference, as the
#: ``picklable-task`` lint pass requires.
RUN_SHARD = _RunShard()

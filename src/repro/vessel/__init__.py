"""Vascular geometry, boundary conditions, RBC filling, recycling.

Substitution S7 (DESIGN.md): the paper's patient-derived vessel geometries
are replaced by procedurally generated ones — networkx centerline graphs
swept into patch tubes with smooth single-segment vessels (capsules,
bent tubes) for the solver-accuracy paths. The *algorithms* of paper
Sec. 5.1 are all here: inlet/outlet parabolic boundary conditions with
zero net flux, the RBC filling algorithm (uniform seeding + growth until
contact, giving radii in [r0, 2r0]), and inlet/outlet recycling of cells.
"""
from .network import VesselNetwork, demo_bifurcation_network, demo_tree_network
from .boundary_conditions import InletOutlet, capsule_inlet_outlet_bc
from .filling import fill_with_rbcs, FillResult
from .recycling import OutletRecycler

__all__ = [
    "VesselNetwork",
    "demo_bifurcation_network",
    "demo_tree_network",
    "InletOutlet",
    "capsule_inlet_outlet_bc",
    "fill_with_rbcs",
    "FillResult",
    "OutletRecycler",
]

"""Inlet/outlet velocity boundary conditions (paper Sec. 5.1).

"We prescribe portions of the blood vessel as inflow and outflow regions
and appropriately prescribe positive and negative parabolic flows ... such
that the total fluid flux is zero." Outside those regions g = 0 (no-slip
walls).
"""
from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..patches import PatchSurface


@dataclasses.dataclass
class InletOutlet:
    """One port: a disk-shaped region of Gamma around ``center`` with
    axis ``direction`` (pointing into the domain for inlets), nominal
    ``radius`` and signed ``flux`` (positive = inflow)."""

    center: np.ndarray
    direction: np.ndarray
    radius: float
    flux: float
    #: nodes within this cap angle/extent of the port belong to it.
    cap_depth: float = 0.35

    def __post_init__(self):
        self.center = np.asarray(self.center, float)
        d = np.asarray(self.direction, float)
        self.direction = d / np.linalg.norm(d)


def port_mask(surface_points: np.ndarray, port: InletOutlet) -> np.ndarray:
    """Boolean mask of boundary nodes belonging to a port region."""
    rel = surface_points - port.center
    axial = rel @ port.direction
    radial = np.linalg.norm(rel - axial[:, None] * port.direction[None, :],
                            axis=1)
    return (np.abs(axial) <= port.cap_depth * port.radius) & \
           (radial <= port.radius) | \
           ((np.linalg.norm(rel, axis=1) <= port.radius) &
            (axial <= port.cap_depth * port.radius))


def parabolic_bc(surface: PatchSurface,
                 ports: Sequence[InletOutlet]) -> np.ndarray:
    """Dirichlet data g at the coarse nodes for a set of ports.

    Each port contributes ``u = u_max (1 - (rho/R)^2) d`` on its region
    with ``u_max`` chosen to meet the requested flux; the port fluxes are
    rebalanced so the total is exactly zero (solvability of the interior
    problem).
    """
    ports = list(ports)
    total = sum(p.flux for p in ports)
    neg_total = sum(p.flux for p in ports if p.flux < 0)
    if abs(total) > 1e-14 and neg_total < 0:
        # Rebalance outlets proportionally so requested fluxes sum to zero.
        factor = 1.0 + total / (-neg_total)
        ports = [p if p.flux >= 0 else
                 dataclasses.replace(p, flux=p.flux * factor) for p in ports]
    d = surface.coarse()
    g = np.zeros_like(d.points)
    achieved = []
    masks = []
    for port in ports:
        m = port_mask(d.points, port)
        masks.append(m)
        rel = d.points[m] - port.center
        axial = rel @ port.direction
        radial = np.linalg.norm(rel - axial[:, None] * port.direction[None, :], axis=1)
        # Squared parabola: C^1 falloff at the port rim keeps the
        # Dirichlet data smooth, which the second-kind GMRES needs.
        profile = np.maximum(0.0, 1.0 - (radial / port.radius) ** 2) ** 2
        # normalize the discrete flux \int u . n dS to the requested value.
        un = profile * (d.normals[m] @ port.direction)
        disc_flux = float((d.weights[m] * un).sum())
        if abs(disc_flux) < 1e-14:
            scale = 0.0
        else:
            # inward flux through the port: sign convention handled by the
            # requested flux directly.
            scale = -port.flux / disc_flux
        g[m] += scale * profile[:, None] * port.direction[None, :]
        achieved.append(port.flux)
    # Exact zero-total-flux correction: subtract the residual flux spread
    # over all port nodes (weighted by |g|) so that sum w g.n == 0.
    flux = float(np.einsum("n,nk,nk->", d.weights, g, d.normals))
    any_port = np.logical_or.reduce(masks) if masks else np.zeros(len(g), bool)
    if np.any(any_port) and abs(flux) > 0:
        nn = d.normals[any_port]
        w = d.weights[any_port]
        denom = float((w * np.einsum("nk,nk->n", nn, nn)).sum())
        g[any_port] -= (flux / denom) * nn
    return g


def capsule_inlet_outlet_bc(surface: PatchSurface, axis: int = 2,
                            flux: float = 1.0, cap_fraction: float = 0.25
                            ) -> np.ndarray:
    """Convenience BC for a single capsule vessel: inflow on the low end
    of ``axis``, outflow on the high end, parabolic profiles, zero net
    flux. Returns g at the coarse nodes."""
    d = surface.coarse()
    pts = d.points
    lo, hi = pts[:, axis].min(), pts[:, axis].max()
    span = hi - lo
    radius_est = 0.5 * (pts[:, (axis + 1) % 3].max() - pts[:, (axis + 1) % 3].min())
    direction = np.zeros(3)
    direction[axis] = 1.0
    c_in = np.zeros(3)
    c_in[axis] = lo
    c_out = np.zeros(3)
    c_out[axis] = hi
    # center the ports on the tube axis (assume centered geometry).
    mid = pts.mean(axis=0)
    c_in[(axis + 1) % 3] = mid[(axis + 1) % 3]
    c_in[(axis + 2) % 3] = mid[(axis + 2) % 3]
    c_out[(axis + 1) % 3] = c_in[(axis + 1) % 3]
    c_out[(axis + 2) % 3] = c_in[(axis + 2) % 3]
    inlet = InletOutlet(center=c_in, direction=direction,
                        radius=radius_est, flux=flux,
                        cap_depth=cap_fraction * span / radius_est)
    outlet = InletOutlet(center=c_out, direction=direction,
                         radius=radius_est, flux=-flux,
                         cap_depth=cap_fraction * span / radius_est)
    return parabolic_bc(surface, [inlet, outlet])

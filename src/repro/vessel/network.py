"""Vascular networks: centerline graphs swept into patch-based tubes.

A :class:`VesselNetwork` owns a networkx graph whose nodes carry 3-D
positions and radii. Geometry services:

- ``signed_distance(x)`` — distance to the vessel *medial* description
  (union of edge capsules); negative inside the lumen. The filling
  algorithm and collision margins use this analytic form.
- ``build_patch_surfaces()`` — one patch tube per edge (C0 at junctions;
  see DESIGN.md S7) for patch-distribution / collision / scaling paths.
- degree-1 nodes are inlets/outlets.
"""
from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..config import NumericsOptions
from ..patches import PatchSurface, capsule_tube
from ..patches.patch import ChebPatch


def _rotation_to(axis_from: np.ndarray, axis_to: np.ndarray) -> np.ndarray:
    a = axis_from / np.linalg.norm(axis_from)
    b = axis_to / np.linalg.norm(axis_to)
    v = np.cross(a, b)
    c = float(a @ b)
    if np.linalg.norm(v) < 1e-14:
        if c > 0:
            return np.eye(3)
        # 180 degrees: rotate about any perpendicular axis.
        perp = np.array([1.0, 0.0, 0.0])
        if abs(a[0]) > 0.9:
            perp = np.array([0.0, 1.0, 0.0])
        v = np.cross(a, perp)
        v /= np.linalg.norm(v)
        return 2.0 * np.outer(v, v) - np.eye(3)
    vx = np.array([[0, -v[2], v[1]], [v[2], 0, -v[0]], [-v[1], v[0], 0]])
    return np.eye(3) + vx + vx @ vx * (1.0 / (1.0 + c))


class VesselNetwork:
    """A vascular network defined by a centerline graph."""

    def __init__(self, graph: nx.Graph,
                 options: Optional[NumericsOptions] = None):
        for n, data in graph.nodes(data=True):
            if "pos" not in data or "radius" not in data:
                raise ValueError("every node needs 'pos' and 'radius'")
        self.graph = graph
        self.options = options or NumericsOptions()

    # -- topology ---------------------------------------------------------
    def terminals(self) -> list:
        """Degree-1 nodes: the inflow/outflow ports."""
        return [n for n in self.graph.nodes if self.graph.degree[n] == 1]

    def edge_segments(self) -> list[tuple[np.ndarray, np.ndarray, float, float]]:
        """(p0, p1, r0, r1) per edge."""
        out = []
        for u, v in self.graph.edges:
            out.append((np.asarray(self.graph.nodes[u]["pos"], float),
                        np.asarray(self.graph.nodes[v]["pos"], float),
                        float(self.graph.nodes[u]["radius"]),
                        float(self.graph.nodes[v]["radius"])))
        return out

    # -- medial geometry -----------------------------------------------------
    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        """Signed distance to the lumen boundary (negative inside).

        Distance to the union of linearly-tapered edge capsules.
        """
        pts = np.atleast_2d(np.asarray(points, float))
        best = np.full(pts.shape[0], np.inf)
        for p0, p1, r0, r1 in self.edge_segments():
            d = p1 - p0
            L2 = float(d @ d)
            t = np.clip(((pts - p0) @ d) / L2, 0.0, 1.0)
            proj = p0 + t[:, None] * d
            rad = r0 + t * (r1 - r0)
            dist = np.linalg.norm(pts - proj, axis=1) - rad
            best = np.minimum(best, dist)
        return best

    def contains(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        return self.signed_distance(points) < -margin

    def bounding_box(self, pad_factor: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        pos = np.array([self.graph.nodes[n]["pos"] for n in self.graph.nodes])
        rad = np.array([self.graph.nodes[n]["radius"] for n in self.graph.nodes])
        pad = pad_factor * rad.max()
        return pos.min(axis=0) - pad, pos.max(axis=0) + pad

    def lumen_volume(self, samples_per_axis: int = 40) -> float:
        """Monte-Carlo-free volume estimate on a regular grid."""
        lo, hi = self.bounding_box(pad_factor=1.0)
        axes = [np.linspace(lo[k], hi[k], samples_per_axis) for k in range(3)]
        A, B, C = np.meshgrid(*axes, indexing="ij")
        pts = np.column_stack([A.ravel(), B.ravel(), C.ravel()])
        inside = self.contains(pts)
        cell = np.prod((hi - lo) / (samples_per_axis - 1))
        return float(inside.sum() * cell)

    # -- patch geometry -----------------------------------------------------
    def build_patch_surfaces(self, refine: int = 1) -> list[PatchSurface]:
        """One closed capsule patch surface per edge (C0 at junctions)."""
        out = []
        for p0, p1, r0, r1 in self.edge_segments():
            d = p1 - p0
            length = float(np.linalg.norm(d))
            r = 0.5 * (r0 + r1)
            surf = capsule_tube(length=length + 2 * r, radius=r,
                                refine=refine, options=self.options)
            R = _rotation_to(np.array([0.0, 0.0, 1.0]), d)
            center = 0.5 * (p0 + p1)
            moved = []
            for patch in surf.patches:
                vals = patch.values.reshape(-1, 3) @ R.T + center
                moved.append(ChebPatch(vals.reshape(patch.values.shape)))
            out.append(PatchSurface(moved, self.options))
        return out

    def all_patches(self, refine: int = 1):
        patches = []
        for s in self.build_patch_surfaces(refine=refine):
            patches.extend(s.patches)
        return patches


def demo_bifurcation_network(scale: float = 1.0,
                             options: Optional[NumericsOptions] = None
                             ) -> VesselNetwork:
    """A Y-bifurcation: one inlet branch splitting into two outlets
    (the minimal analogue of the paper's Fig. 8 weak-scaling vessel:
    inflow on one side, outflow on the two others)."""
    g = nx.Graph()
    s = scale
    g.add_node(0, pos=(-4.0 * s, 0.0, 0.0), radius=1.2 * s)
    g.add_node(1, pos=(0.0, 0.0, 0.0), radius=1.1 * s)
    g.add_node(2, pos=(3.5 * s, 2.2 * s, 0.5 * s), radius=0.9 * s)
    g.add_node(3, pos=(3.5 * s, -2.2 * s, -0.5 * s), radius=0.9 * s)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(1, 3)
    return VesselNetwork(g, options)


def demo_tree_network(levels: int = 3, scale: float = 1.0,
                      seed: int = 7,
                      options: Optional[NumericsOptions] = None
                      ) -> VesselNetwork:
    """A random binary vascular tree (Murray-law-ish radius decay),
    standing in for the complex capillary geometry of the paper's Fig. 1."""
    rng = np.random.default_rng(seed)
    g = nx.Graph()
    g.add_node(0, pos=(0.0, 0.0, 0.0), radius=1.4 * scale)
    frontier = [(0, np.array([1.0, 0.0, 0.0]), 1.4 * scale)]
    nid = 1
    for lvl in range(levels):
        nxt = []
        for parent, direction, rad in frontier:
            for sgn in (-1.0, 1.0):
                tilt = rng.normal(scale=0.35, size=3)
                tilt[1] += sgn * 0.8
                d = direction + tilt
                d /= np.linalg.norm(d)
                length = scale * (3.5 * 0.8 ** lvl)
                pos = np.asarray(g.nodes[parent]["pos"]) + length * d
                r = rad * 0.79   # Murray's law for a symmetric split
                g.add_node(nid, pos=tuple(pos), radius=r)
                g.add_edge(parent, nid)
                nxt.append((nid, d, r))
                nid += 1
        frontier = nxt
    return VesselNetwork(g, options)

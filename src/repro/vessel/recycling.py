"""Inlet/outlet RBC recycling (paper Sec. 5.1).

"We define regions near the inlet and outlet flows where we can safely
add and remove RBCs. When an RBC gamma_i is within the outlet region, we
subtract off the velocity due to gamma_i from the entire system and move
gamma_i into an inlet region such that the arising RBC configuration is
collision-free."
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from ..surfaces import SpectralSurface


@dataclasses.dataclass
class Region:
    """A spherical region used as inlet or outlet zone."""

    center: np.ndarray
    radius: float

    def contains(self, x: np.ndarray) -> bool:
        return bool(np.linalg.norm(np.asarray(x, float) - self.center)
                    <= self.radius)


class OutletRecycler:
    """Moves cells that reached an outlet region back to an inlet region."""

    def __init__(self, inlets: Sequence[Region], outlets: Sequence[Region],
                 signed_distance: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 seed: int = 0):
        self.inlets = list(inlets)
        self.outlets = list(outlets)
        self.signed_distance = signed_distance
        self.rng = np.random.default_rng(seed)

    def _cell_radius(self, cell: SpectralSurface) -> float:
        c = cell.centroid()
        return float(np.linalg.norm(cell.points - c, axis=1).max())

    def _free_spot(self, radius: float, others: Sequence[SpectralSurface],
                   tries: int = 40) -> Optional[np.ndarray]:
        centers = [o.centroid() for o in others]
        radii = [self._cell_radius(o) for o in others]
        for _ in range(tries):
            inlet = self.inlets[self.rng.integers(len(self.inlets))]
            offset = self.rng.normal(size=3)
            offset *= self.rng.uniform(0, max(inlet.radius - radius, 0.0)) / \
                max(np.linalg.norm(offset), 1e-12)
            cand = inlet.center + offset
            if self.signed_distance is not None and \
                    -float(self.signed_distance(cand[None, :])[0]) < radius:
                continue
            ok = all(np.linalg.norm(cand - c) > (radius + r) * 1.05
                     for c, r in zip(centers, radii))
            if ok:
                return cand
        return None

    def recycle(self, cells: Sequence[SpectralSurface]) -> list[int]:
        """Teleport outlet-region cells to collision-free inlet spots.

        Mutates the cell surfaces in place; returns the recycled indices.
        """
        moved = []
        for i, cell in enumerate(cells):
            c = cell.centroid()
            if not any(o.contains(c) for o in self.outlets):
                continue
            radius = self._cell_radius(cell)
            others = [cells[j] for j in range(len(cells)) if j != i]
            spot = self._free_spot(radius, others)
            if spot is None:
                continue
            cell.set_positions(cell.X + (spot - c))
            moved.append(i)
        return moved

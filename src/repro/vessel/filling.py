"""The RBC filling algorithm (paper Sec. 5.1).

"To populate the blood vessel with RBCs, we uniformly sample the volume of
the bounding box of the vessel with a spacing h to find point locations
inside the domain ... We then slowly increase the size of each RBC until
it collides with the vessel boundary or another RBC ... This typically
produces RBCs of radius r with r0 < r < 2r0."
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from ..config import DEFAULT_SPH_ORDER
from ..surfaces import SpectralSurface, biconcave_rbc, sphere


@dataclasses.dataclass
class FillResult:
    """Outcome of the filling procedure."""

    cells: list[SpectralSurface]
    radii: np.ndarray
    centers: np.ndarray
    volume_fraction: float
    lumen_volume: float

    @property
    def n_cells(self) -> int:
        return len(self.cells)


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    w, x, y, z = q
    return np.array([
        [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
        [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
        [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
    ])


def fill_with_rbcs(signed_distance: Callable[[np.ndarray], np.ndarray],
                   bounds: tuple[np.ndarray, np.ndarray],
                   spacing: float,
                   lumen_volume: float,
                   r0: Optional[float] = None,
                   shape: str = "rbc",
                   order: int = DEFAULT_SPH_ORDER,
                   wall_margin_factor: float = 0.15,
                   growth_iterations: int = 8,
                   seed: int = 0,
                   jitter: float = 0.25,
                   max_cells: Optional[int] = None) -> FillResult:
    """Fill a domain with nearly-touching RBCs of varied sizes.

    Parameters
    ----------
    signed_distance:
        Negative inside the fluid domain (e.g.
        :meth:`VesselNetwork.signed_distance`).
    bounds:
        (lo, hi) of the seeding box.
    spacing:
        The sampling spacing h; r0 defaults to 0.35 h as the minimum cell
        radius (paper: r0 proportional to h).
    lumen_volume:
        Domain volume used for the reported volume fraction.
    shape:
        "rbc" (biconcave) or "sphere".
    """
    rng = np.random.default_rng(seed)
    lo, hi = (np.asarray(b, float) for b in bounds)
    axes = [np.arange(lo[k] + 0.5 * spacing, hi[k], spacing) for k in range(3)]
    A, B, C = np.meshgrid(*axes, indexing="ij")
    pts = np.column_stack([A.ravel(), B.ravel(), C.ravel()])
    pts = pts + rng.uniform(-jitter * spacing, jitter * spacing, pts.shape)

    r0 = r0 if r0 is not None else 0.35 * spacing
    margin = wall_margin_factor * r0
    # Keep seeds with enough wall clearance for the minimum radius.
    wall = -signed_distance(pts)           # clearance (positive inside)
    keep = wall > (r0 + margin)
    centers = pts[keep]
    wall = wall[keep]
    if max_cells is not None and centers.shape[0] > max_cells:
        sel = rng.choice(centers.shape[0], size=max_cells, replace=False)
        centers = centers[sel]
        wall = wall[sel]
    n = centers.shape[0]
    if n == 0:
        return FillResult(cells=[], radii=np.zeros(0),
                          centers=np.zeros((0, 3)), volume_fraction=0.0,
                          lumen_volume=lumen_volume)

    # Grow all cells simultaneously until wall or neighbor contact
    # (fixed-point iteration on r_i = min(wall_i, min_j (d_ij - r_j))).
    radii = np.full(n, r0)
    rmax_wall = wall - margin
    # neighbor distances (n small enough for the dense matrix here;
    # the seeding grid bounds n by the domain volume / h^3).
    diff = centers[:, None, :] - centers[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(dist, np.inf)
    for _ in range(growth_iterations):
        allowed = np.minimum(rmax_wall, (dist - radii[None, :]).min(axis=1))
        radii = np.clip(np.maximum(radii, allowed), r0, 2.0 * r0)
    # Final safety shrink pass: enforce r_i + r_j <= d_ij strictly.
    for _ in range(growth_iterations):
        viol = (radii[:, None] + radii[None, :]) - dist
        worst = viol.max(axis=1)
        radii = np.where(worst > 0, radii - 0.51 * np.maximum(worst, 0),
                         radii)
    radii = np.clip(radii, 0.5 * r0, 2.0 * r0)
    radii = np.minimum(radii, rmax_wall)
    ok = radii >= 0.5 * r0
    centers, radii = centers[ok], radii[ok]
    n = centers.shape[0]

    cells: list[SpectralSurface] = []
    cell_vol = 0.0
    for i in range(n):
        if shape == "rbc":
            base = biconcave_rbc(radius=radii[i], order=order)
        else:
            base = sphere(radii[i], order=order)
        R = _random_rotation(rng)
        cell = base.rotated(R).translated(centers[i])
        cells.append(cell)
        cell_vol += cell.volume()
    vf = cell_vol / lumen_volume if lumen_volume > 0 else 0.0
    return FillResult(cells=cells, radii=radii, centers=centers,
                      volume_fraction=vf, lumen_volume=lumen_volume)

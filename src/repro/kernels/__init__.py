"""Fundamental solutions (kernels) of the Stokes and Laplace operators.

All evaluators are vectorized over sources and targets, chunked to bound
peak memory, and take *weighted* densities (quadrature weight already folded
in), matching how the Nystrom discretization assembles sums like Eq. (3.1)
of the paper.

Sign conventions (verified in ``tests/test_kernels.py``):

- Single-layer Stokes (stokeslet): ``S(x,y) = (1/8 pi mu)(I/r + r r^T/r^3)``,
  ``r = x - y``.
- Double-layer Stokes (stresslet): ``D(x,y) = (6/8 pi)(r r^T/r^5)(r . n(y))``
  with outward normal ``n``; the interior value of ``D[phi]`` for constant
  ``phi`` is ``phi`` and the interior limit is ``(1/2) phi + PV``, which is
  exactly the operator ``(1/2 I + D)`` of paper Eq. (2.5).
- Laplace single/double layers use ``G = 1/(4 pi r)`` with the same
  orientation conventions.
"""
from .stokes import (
    stokes_slp_apply,
    stokes_dlp_apply,
    stokes_slp_matrix,
    stokes_dlp_matrix,
    stokes_pressure_slp_apply,
)
from .laplace import (
    laplace_slp_apply,
    laplace_dlp_apply,
    laplace_slp_matrix,
    laplace_dlp_matrix,
)

__all__ = [
    "stokes_slp_apply",
    "stokes_dlp_apply",
    "stokes_slp_matrix",
    "stokes_dlp_matrix",
    "stokes_pressure_slp_apply",
    "laplace_slp_apply",
    "laplace_dlp_apply",
    "laplace_slp_matrix",
    "laplace_dlp_matrix",
]

"""Laplace layer kernels.

The boundary solver of Section 3 is formulated for general elliptic PDEs;
the Laplace kernels provide a cheap scalar instance used heavily by the
test suite (the constant-density jump identity and interior Dirichlet
solves are much cheaper than their Stokes counterparts).
"""
from __future__ import annotations

import numpy as np

_CHUNK = 2048


def laplace_slp_apply(src: np.ndarray, weighted_density: np.ndarray,
                      trg: np.ndarray) -> np.ndarray:
    """u(x) = sum_j (w_j q_j) / (4 pi |x - y_j|)."""
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    q = np.asarray(weighted_density, float).ravel()
    out = np.zeros(trg.shape[0])
    for a in range(0, trg.shape[0], _CHUNK):
        t = trg[a:a + _CHUNK]
        r = t[:, None, :] - src[None, :, :]
        r2 = np.einsum("tsk,tsk->ts", r, r)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_r = 1.0 / np.sqrt(r2)
        inv_r[~np.isfinite(inv_r)] = 0.0
        out[a:a + _CHUNK] = (inv_r @ q) / (4.0 * np.pi)
    return out


def laplace_dlp_apply(src: np.ndarray, normals: np.ndarray,
                      weighted_density: np.ndarray, trg: np.ndarray) -> np.ndarray:
    """u(x) = sum_j (r . n_j) (w_j q_j) / (4 pi |r|^3), r = x - y_j.

    For constant density on a closed surface the interior value is +1
    (outward normals), matching the Stokes convention.
    """
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    n = np.asarray(normals, float).reshape(-1, 3)
    q = np.asarray(weighted_density, float).ravel()
    out = np.zeros(trg.shape[0])
    for a in range(0, trg.shape[0], _CHUNK):
        t = trg[a:a + _CHUNK]
        r = t[:, None, :] - src[None, :, :]
        r2 = np.einsum("tsk,tsk->ts", r, r)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_r3 = r2 ** -1.5
        inv_r3[~np.isfinite(inv_r3)] = 0.0
        rn = np.einsum("tsk,sk->ts", r, n)
        out[a:a + _CHUNK] = -((rn * inv_r3) @ q) / (4.0 * np.pi)
    return out


def laplace_slp_matrix(src: np.ndarray, trg: np.ndarray) -> np.ndarray:
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    r = trg[:, None, :] - src[None, :, :]
    r2 = np.einsum("tsk,tsk->ts", r, r)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_r = 1.0 / np.sqrt(r2)
    inv_r[~np.isfinite(inv_r)] = 0.0
    return inv_r / (4.0 * np.pi)


def laplace_dlp_matrix(src: np.ndarray, normals: np.ndarray,
                       trg: np.ndarray) -> np.ndarray:
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    n = np.asarray(normals, float).reshape(-1, 3)
    r = trg[:, None, :] - src[None, :, :]
    r2 = np.einsum("tsk,tsk->ts", r, r)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_r3 = r2 ** -1.5
    inv_r3[~np.isfinite(inv_r3)] = 0.0
    rn = np.einsum("tsk,sk->ts", r, n)
    return -(rn * inv_r3) / (4.0 * np.pi)

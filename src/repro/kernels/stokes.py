"""Vectorized Stokes kernels (stokeslet / stresslet / pressure).

The free-space solution u_fr of paper Eq. (2.4) and the double-layer term
u_Gamma are sums of these kernels over quadrature points. The ``*_apply``
functions evaluate those sums directly (the O(N^2) path used for modest
sizes and as the FMM reference); the ``*_matrix`` functions assemble dense
operators for the small per-patch / per-check-point blocks.
"""
from __future__ import annotations

import numpy as np

from ..analysis.contracts import checked

_CHUNK = 1024
#: Cache-blocked tile of :func:`stokes_slp_apply`: the handful of
#: (targets, sources) transients the pairwise sums stream through fit in
#: L2 at 512 x 256 doubles (1 MB/array). Measured on the benchmark host,
#: tiling wins from ~256 sources up (578 sources, 810 targets: 14.7 ->
#: 7.9 ms; 2312 sources, 4096 targets: 269 -> 161 ms) and is a no-op
#: below one source tile, so the single-pass path keeps its larger
#: target chunk there.
_SRC_CHUNK = 256
_TRG_CHUNK_BLOCKED = 512
#: Squared distance below which a pair counts as coincident and is
#: excluded like exact zero distance (1e-10 in length units — far below
#: any physical separation, far above coordinate roundoff). Without it,
#: grid points that are *mathematically* identical but computed through
#: different floating-point routes (a Gauss grid and its upsampling
#: share rings) produce ~1/eps garbage instead of the intended
#: self-exclusion.
_COINCIDENT_R2 = 1e-20


def _pairwise_r(trg_chunk: np.ndarray, src: np.ndarray):
    """r = x - y for all pairs; returns (r, r2) with a zero-distance guard."""
    r = trg_chunk[:, None, :] - src[None, :, :]
    r2 = np.einsum("tsk,tsk->ts", r, r)
    return r, r2


@checked(src="(..., 3) f8", weighted_density="(..., 3) f8",
         trg="(..., 3) f8", out="(m, 3) f8")
def stokes_slp_apply(src: np.ndarray, weighted_density: np.ndarray,
                     trg: np.ndarray, viscosity: float = 1.0,
                     exclude_self: bool = False,
                     dtype=None) -> np.ndarray:
    """Sum of stokeslets: u(x) = sum_j S(x, y_j) (w_j f_j).

    ``weighted_density`` is (ns, 3) with quadrature weights folded in.
    Pairs at zero distance contribute nothing (used with ``exclude_self``
    semantics when sources and targets coincide).

    The pairwise sums are factored into rank-3 GEMMs instead of
    materializing the (nt, ns, 3) displacement tensor: with r = x - y,

        sum_s r (r.f) / r^3 = x (c.1) - c @ Y,   c_ts = (r.f) / r^3,

    so only (nt, ns) intermediates are formed. Coordinates are centered
    on the source cloud first, which keeps the expansion of ``r^2 = |x|^2
    + |y|^2 - 2 x.y`` well-conditioned at near-field distances; the rare
    pairs below the working precision's cancellation threshold — where
    the expansion does lose accuracy — are re-evaluated with the exact
    float64 difference formula, which also restores the exact
    zero-distance exclusion.

    ``dtype="float32"`` runs the bulk GEMMs in single precision — the
    far-field mode of ``NumericsOptions.farfield_dtype`` — with per-chunk
    results accumulated in float64 and the close-pair patch still exact;
    relative error vs the default float64 path is ~1e-6. ``dtype=None``
    (or ``"float64"``) is the bit-exact double-precision path.
    """
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    f = np.asarray(weighted_density, float).reshape(-1, 3)
    work = (np.float32 if dtype in ("float32", np.float32)
            else np.float64)
    # Relative cancellation threshold of the expanded r^2 in the working
    # precision (pairs below get the exact difference formula), plus an
    # absolute term keeping inv_r^3 finite for a degenerate zero-scale
    # cloud (single source at its own centroid) — in float32 that needs
    # tiny >= ~2e-26 so (1/sqrt(tiny))^3 stays below the float32 max.
    rel_floor, tiny = (1e-8, 1e-100) if work is np.float64 else (1e-3, 1e-24)
    out = np.empty((trg.shape[0], 3))
    scale = 1.0 / (8.0 * np.pi * viscosity)
    center = src.mean(axis=0) if src.size else np.zeros(3)
    srcc = src - center
    srcc_w = srcc.astype(work, copy=False)
    f_w = f.astype(work, copy=False)
    src2 = np.einsum("sk,sk->s", srcc_w, srcc_w)
    sf = np.einsum("sk,sk->s", srcc_w, f_w)
    ns = src.shape[0]
    # Above one source tile, cache-block both dimensions so the streamed
    # (targets, sources) transients stay L2-resident (see _SRC_CHUNK).
    tchunk = _TRG_CHUNK_BLOCKED if ns > _SRC_CHUNK else _CHUNK
    for a in range(0, trg.shape[0], tchunk):
        t64 = trg[a:a + tchunk] - center
        t = t64.astype(work, copy=False)
        t2 = np.einsum("tk,tk->t", t, t)
        acc = np.zeros((t.shape[0], 3))       # float64 accumulator
        for b in range(0, ns, _SRC_CHUNK):
            sb = slice(b, min(b + _SRC_CHUNK, ns))
            scale2 = t2[:, None] + src2[None, sb]
            r2 = scale2 - 2.0 * (t @ srcc_w[sb].T)
            # Pairs this close lose accuracy to cancellation in the
            # expanded r^2 (and coincident points no longer give an exact
            # zero); clamp them for the bulk GEMMs and patch them exactly
            # below.
            floor = rel_floor * scale2 + tiny
            sus_t, sus_s = np.nonzero(r2 < floor)
            inv_r = 1.0 / np.sqrt(np.maximum(r2, floor))
            rf = (t @ f_w[sb].T - sf[None, sb]) * inv_r ** 3  # (r.f) / r^3
            acc += inv_r @ f_w[sb] + t * rf.sum(axis=1)[:, None] \
                - rf @ srcc_w[sb]
            if sus_t.size:
                rv = t[sus_t] - srcc_w[sb][sus_s]
                fs = f_w[sb][sus_s]
                # what the bulk sums included for these pairs...
                included = (inv_r[sus_t, sus_s, None] * fs
                            + rf[sus_t, sus_s, None] * rv)
                # ...versus the exact per-pair float64 kernel, from the
                # *original* (uncentered) coordinates: the patched values
                # are then independent of this call's source centering,
                # so two calls covering the same pair agree bitwise — the
                # global-FMM self subtraction relies on that. Pairs below
                # the coincidence floor (points identical up to roundoff,
                # e.g. shared nodes of a coarse grid and its upsampling)
                # are excluded like exact zero distance.
                rv64 = trg[a + sus_t] - src[sb][sus_s]
                fs64 = f[sb][sus_s]
                r2e = np.einsum("nk,nk->n", rv64, rv64)
                with np.errstate(divide="ignore"):
                    inv_e = np.where(r2e > _COINCIDENT_R2,
                                     1.0 / np.sqrt(r2e), 0.0)
                rfe = np.einsum("nk,nk->n", rv64, fs64) * inv_e ** 3
                exact = inv_e[:, None] * fs64 + rfe[:, None] * rv64
                np.add.at(acc, sus_t, exact - included.astype(np.float64))
        out[a:a + tchunk] = scale * acc
    return out


def stokes_dlp_apply(src: np.ndarray, normals: np.ndarray,
                     weighted_density: np.ndarray, trg: np.ndarray) -> np.ndarray:
    """Sum of stresslets: u(x) = sum_j D(x, y_j)[n_j] (w_j phi_j).

    Kernel: (6/8pi) r (r.phi) (r.n) / r^5 with r = x - y.
    """
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    n = np.asarray(normals, float).reshape(-1, 3)
    phi = np.asarray(weighted_density, float).reshape(-1, 3)
    out = np.zeros((trg.shape[0], 3))
    scale = -6.0 / (8.0 * np.pi)
    for a in range(0, trg.shape[0], _CHUNK):
        t = trg[a:a + _CHUNK]
        r, r2 = _pairwise_r(t, src)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_r2 = 1.0 / r2
        inv_r2[~np.isfinite(inv_r2)] = 0.0
        inv_r5 = inv_r2 ** 2 * np.sqrt(inv_r2)
        rphi = np.einsum("tsk,sk->ts", r, phi)
        rn = np.einsum("tsk,sk->ts", r, n)
        out[a:a + _CHUNK] = scale * np.einsum("ts,tsk->tk", rphi * rn * inv_r5, r)
    return out


def stokes_pressure_slp_apply(src: np.ndarray, weighted_density: np.ndarray,
                              trg: np.ndarray) -> np.ndarray:
    """Pressure of the single-layer potential: p(x) = sum (r.f) / (4 pi r^3)."""
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    f = np.asarray(weighted_density, float).reshape(-1, 3)
    out = np.zeros(trg.shape[0])
    for a in range(0, trg.shape[0], _CHUNK):
        t = trg[a:a + _CHUNK]
        r, r2 = _pairwise_r(t, src)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_r3 = r2 ** -1.5
        inv_r3[~np.isfinite(inv_r3)] = 0.0
        rf = np.einsum("tsk,sk->ts", r, f)
        out[a:a + _CHUNK] = (rf * inv_r3).sum(axis=1) / (4.0 * np.pi)
    return out


def stokes_slp_matrix(src: np.ndarray, trg: np.ndarray,
                      viscosity: float = 1.0) -> np.ndarray:
    """Dense (3 nt, 3 ns) stokeslet matrix (no weights folded in)."""
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    nt, ns = trg.shape[0], src.shape[0]
    r = trg[:, None, :] - src[None, :, :]
    r2 = np.einsum("tsk,tsk->ts", r, r)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_r = 1.0 / np.sqrt(r2)
    inv_r[~np.isfinite(inv_r)] = 0.0
    inv_r3 = inv_r ** 3
    M = np.einsum("ts,ij->tisj", inv_r, np.eye(3)) + \
        np.einsum("tsi,tsj,ts->tisj", r, r, inv_r3)
    M *= 1.0 / (8.0 * np.pi * viscosity)
    return M.reshape(3 * nt, 3 * ns)


def stokes_dlp_matrix(src: np.ndarray, normals: np.ndarray,
                      trg: np.ndarray) -> np.ndarray:
    """Dense (3 nt, 3 ns) stresslet matrix (normals folded, no weights)."""
    src = np.asarray(src, float).reshape(-1, 3)
    trg = np.asarray(trg, float).reshape(-1, 3)
    n = np.asarray(normals, float).reshape(-1, 3)
    nt, ns = trg.shape[0], src.shape[0]
    r = trg[:, None, :] - src[None, :, :]
    r2 = np.einsum("tsk,tsk->ts", r, r)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_r2 = 1.0 / r2
    inv_r2[~np.isfinite(inv_r2)] = 0.0
    inv_r5 = inv_r2 ** 2 * np.sqrt(inv_r2)
    rn = np.einsum("tsk,sk->ts", r, n)
    M = np.einsum("tsi,tsj,ts->tisj", r, r, rn * inv_r5) * (-6.0 / (8.0 * np.pi))
    return M.reshape(3 * nt, 3 * ns)

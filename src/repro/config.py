"""Global configuration and numerical policy for the repro package.

All floating point work is done in float64. Tolerances collected here are the
single source of truth used across modules so that tests, benchmarks and the
library agree on what "converged" and "touching" mean.
"""
from __future__ import annotations

import dataclasses

#: Working dtype for all geometry / density / velocity arrays.
DTYPE = "float64"

#: Machine-epsilon-scale guard used when normalising vectors.
EPS = 1e-14

#: Default fluid viscosity (paper uses unit viscosity with no contrast).
DEFAULT_VISCOSITY = 1.0

#: Default spherical harmonic order for RBC surfaces. Order 8 gives the
#: paper's 544-point discretization: (p+1) Gauss-Legendre colatitudes times
#: (2p+2) uniform longitudes = 9 * 18 = 162 for p=8 on our grid; the paper's
#: 544 corresponds to p=16 (17*34=578) with pole handling. We default to 8
#: for speed and expose the order everywhere.
DEFAULT_SPH_ORDER = 8

#: Default tensor-product patch order (paper: 8th order, 11x11 Clenshaw-
#: Curtis quadrature points per patch -> q = 10 panel order).
DEFAULT_PATCH_ORDER = 8
DEFAULT_PATCH_QUAD = 11

#: Near-singular evaluation defaults (paper Sec. 5.1): p+1 check points at
#: distances R + i*r along the inward normal with R = r = 0.15 L for strong
#: scaling runs, 0.1 L for weak scaling runs.
DEFAULT_CHECK_ORDER = 8
DEFAULT_CHECK_R_FACTOR = 0.15
DEFAULT_UPSAMPLE_ETA = 1

#: GMRES policy: the paper caps iterations at 30 to emulate typical
#: steady-state time-step work.
GMRES_MAX_ITER = 30
GMRES_TOL = 1e-10

#: Collision handling: maximum LCP linearizations per NCP solve (paper: ~7).
NCP_MAX_LCP = 7

#: Contact activation distance, as a fraction of local mesh edge length.
CONTACT_EPS_FACTOR = 0.5


@dataclasses.dataclass
class NumericsOptions:
    """Bundle of numerical parameters threaded through the simulation.

    Attributes mirror the symbols used in the paper: ``sph_order`` is the
    spherical harmonic order of RBC surfaces, ``patch_quad`` the per-patch
    Clenshaw-Curtis rule size, ``check_order`` the extrapolation order ``p``
    of the singular quadrature scheme, ``upsample_eta`` the fine-grid
    subdivision depth (each coarse patch splits into ``4**eta`` subpatches),
    and ``check_r_factor`` the check point spacing ``R = r = factor * L``.
    """

    sph_order: int = DEFAULT_SPH_ORDER
    patch_order: int = DEFAULT_PATCH_ORDER
    patch_quad: int = DEFAULT_PATCH_QUAD
    check_order: int = DEFAULT_CHECK_ORDER
    check_r_factor: float = DEFAULT_CHECK_R_FACTOR
    upsample_eta: int = DEFAULT_UPSAMPLE_ETA
    gmres_max_iter: int = GMRES_MAX_ITER
    gmres_tol: float = GMRES_TOL
    ncp_max_lcp: int = NCP_MAX_LCP
    viscosity: float = DEFAULT_VISCOSITY

    def fine_subpatches(self) -> int:
        """Number of subpatches in the fine discretization of one patch."""
        return 4 ** self.upsample_eta

"""Global configuration and numerical policy for the repro package.

All floating point work is done in float64. Tolerances collected here are the
single source of truth used across modules so that tests, benchmarks and the
library agree on what "converged" and "touching" mean.

:class:`ReproConfig` is the single serializable configuration of a
simulation: time step, fluid, composable force terms, interaction
backend, collision handling and the :class:`NumericsOptions` bundle. It
validates on construction and round-trips through ``to_dict`` /
``from_dict`` / JSON; :mod:`repro.presets` ships named instances for the
paper's scenarios.
"""
from __future__ import annotations

import dataclasses
import json

#: Working dtype for all geometry / density / velocity arrays.
DTYPE = "float64"

#: Machine-epsilon-scale guard used when normalising vectors.
EPS = 1e-14

#: Default fluid viscosity (paper uses unit viscosity with no contrast).
DEFAULT_VISCOSITY = 1.0

#: Default spherical harmonic order for RBC surfaces. Order 8 gives the
#: paper's 544-point discretization: (p+1) Gauss-Legendre colatitudes times
#: (2p+2) uniform longitudes = 9 * 18 = 162 for p=8 on our grid; the paper's
#: 544 corresponds to p=16 (17*34=578) with pole handling. We default to 8
#: for speed and expose the order everywhere.
DEFAULT_SPH_ORDER = 8

#: Default tensor-product patch order (paper: 8th order, 11x11 Clenshaw-
#: Curtis quadrature points per patch -> q = 10 panel order).
DEFAULT_PATCH_ORDER = 8
DEFAULT_PATCH_QUAD = 11

#: Near-singular evaluation defaults (paper Sec. 5.1): p+1 check points at
#: distances R + i*r along the inward normal with R = r = 0.15 L for strong
#: scaling runs, 0.1 L for weak scaling runs.
DEFAULT_CHECK_ORDER = 8
DEFAULT_CHECK_R_FACTOR = 0.15
DEFAULT_UPSAMPLE_ETA = 1

#: GMRES policy: the paper caps iterations at 30 to emulate typical
#: steady-state time-step work.
GMRES_MAX_ITER = 30
GMRES_TOL = 1e-10

#: Collision handling: maximum LCP linearizations per NCP solve (paper: ~7).
NCP_MAX_LCP = 7

#: Contact activation distance, as a fraction of local mesh edge length.
CONTACT_EPS_FACTOR = 0.5


@dataclasses.dataclass
class NumericsOptions:
    """Bundle of numerical parameters threaded through the simulation.

    Attributes mirror the symbols used in the paper: ``sph_order`` is the
    spherical harmonic order of RBC surfaces, ``patch_quad`` the per-patch
    Clenshaw-Curtis rule size, ``check_order`` the extrapolation order ``p``
    of the singular quadrature scheme, ``upsample_eta`` the fine-grid
    subdivision depth (each coarse patch splits into ``4**eta`` subpatches),
    and ``check_r_factor`` the check point spacing ``R = r = factor * L``.
    """

    sph_order: int = DEFAULT_SPH_ORDER
    patch_order: int = DEFAULT_PATCH_ORDER
    patch_quad: int = DEFAULT_PATCH_QUAD
    check_order: int = DEFAULT_CHECK_ORDER
    check_r_factor: float = DEFAULT_CHECK_R_FACTOR
    upsample_eta: int = DEFAULT_UPSAMPLE_ETA
    gmres_max_iter: int = GMRES_MAX_ITER
    gmres_tol: float = GMRES_TOL
    ncp_max_lcp: int = NCP_MAX_LCP
    viscosity: float = DEFAULT_VISCOSITY
    #: Full singular self-interaction reassembly every ``k`` refreshes; the
    #: intermediate ``k - 1`` refreshes apply a first-order geometric
    #: correction (exact for rigid translation and uniform dilation) to the
    #: last assembled operator. ``1`` (the default) reassembles every step,
    #: i.e. the exact per-step behavior.
    selfop_refresh_interval: int = 1
    #: Full-reassembly route of the singular self-interaction operator.
    #: ``"circulant"`` is the FFT-diagonalized block-circulant assembly:
    #: exact for arbitrary shapes, ~2x faster than the fused route at
    #: order 8 and free of the fused table's memory gate, so it is what
    #: ``"auto"`` (the default) currently always picks — orders 12+ are
    #: practical only on this route. ``"fused"`` keeps the per-target
    #: fused assembly of PR 3 (with its size-gated table) as the
    #: independently-implemented reference; all routes agree to ~1e-12
    #: (pinned by ``tests/test_selfop_equivalence.py``). Under ``"auto"``
    #: / ``"circulant"`` the stepper additionally runs the full
    #: reassemblies of same-order cell groups as one *stacked* assembly
    #: (``CellBatch.assemble_selfops``).
    selfop_assembly: str = "auto"
    #: Stack the per-cell direct-solve factorizations (tension Schur,
    #: implicit ``I - dt S L``) of equal-order cell groups into one
    #: ``(ncell, N, N)`` getrf/getrs pass instead of one LAPACK call per
    #: cell (bit-identical solutions — same getrf/getrs on the same
    #: matrices; tested). ``False`` restores the per-cell calls.
    batched_lu: bool = True
    #: Solve the tension Schur complement with a per-refresh LU
    #: factorization of the assembled dense operator (one back-substitution
    #: per solve) instead of the inner GMRES loop. The two paths agree to
    #: solver tolerance; set ``False`` to force the matrix-free path.
    direct_tension: bool = True
    #: Factorize the implicit operator ``I - dt S L`` per (cell, dt) and
    #: back-substitute instead of running the implicit GMRES. Falls back to
    #: GMRES automatically when ``dt`` changes between a cell's
    #: factorization and its solve (mid-run adaptive stepping).
    direct_implicit: bool = True
    #: Executor of the per-cell stage pipeline (a key of
    #: :data:`repro.runtime.executor.EXECUTORS`): ``"serial"`` (the
    #: default) runs every per-cell task in order on the calling thread;
    #: ``"thread"`` maps them over a pool of ``workers`` threads;
    #: ``"process"`` shards the interaction backends' per-source batches
    #: over a pool of ``workers`` processes (cells Morton-partitioned,
    #: only coefficients/positions/densities shipped — see
    #: :mod:`repro.core.shardwork`) while every other stage runs inline;
    #: ``"checked"`` / ``"checked-process"`` wrap the thread / process
    #: pool with the runtime determinism checks (frozen shared tables +
    #: sampled bit-identical task reruns). The per-cell tasks touch
    #: disjoint state and results are always gathered by cell index, so
    #: every executor is bit-identical to serial.
    #:
    #: This knob parallelizes *within* one scene. For many independent
    #: scenes (parameter sweeps), parallelize *across* scenes instead —
    #: :class:`repro.sweep.SweepRunner` maps whole scene jobs over the
    #: same registry, with each scene's own executor left ``"serial"``.
    executor: str = "serial"
    #: Worker count of the ``"thread"``/``"process"`` executors (ignored
    #: by ``"serial"``). ``workers=1`` still runs tasks on a pool but
    #: produces the same results as the serial executor.
    #:
    #: ``"auto"`` applies the recommended policy: ``min(cpu_count,
    #: ncells)`` — one worker per core, capped at the cell count since a
    #: shard needs at least one cell (resolved in
    #: :func:`repro.runtime.executor.resolve_workers`). On a single-core
    #: host that degenerates to ``1``, which matches measurement: the
    #: ``--workers-sweep`` rows of ``benchmarks/bench_step_breakdown.py``
    #: are flat to slightly negative there for threads and pay pickling
    #: overhead for processes. On multi-core hosts prefer ``"auto"``
    #: with ``"process"`` for many-cell scenes (the per-source
    #: interaction batches dominate and shard cleanly) and ``"thread"``
    #: where BLAS-released-GIL overlap suffices; measure with the sweep
    #: and pin the knee of the curve if you need an explicit count.
    workers: "int | str" = 1
    #: Precision of the *far-field* smooth quadrature: ``"float32"`` runs
    #: the far block of :func:`repro.kernels.stokes_slp_apply` and the
    #: treecode equivalent-density (M2P) sums in single precision —
    #: roughly halving their memory traffic — while every near-singular,
    #: singular and on-surface path stays float64. Adds ~1e-6 relative
    #: error to the far field only; ``"float64"`` (the default) is the
    #: exact path.
    farfield_dtype: str = "float64"
    #: Enable the runtime array-contract checks of
    #: :mod:`repro.analysis.contracts`: every ``@checked`` seam (kernel
    #: applies, stacked LU solves, SH transforms, operator assembly)
    #: verifies its declared shapes and dtypes on entry and exit.
    #: Zero-cost when ``False`` (the default); the environment variable
    #: ``REPRO_DEBUG=1`` turns it on process-wide without a config.
    debug_checks: bool = False

    def fine_subpatches(self) -> int:
        """Number of subpatches in the fine discretization of one patch."""
        return 4 ** self.upsample_eta


@dataclasses.dataclass
class ResilienceOptions:
    """Policy knobs of the transactional stepping layer
    (:mod:`repro.resilience`).

    With ``enabled`` (the default) every :meth:`repro.core.Simulation.step`
    snapshots the mutable per-cell state, validates the stepped state with
    the health sentinel (finite coefficients/velocities, per-cell
    area/volume drift against the pre-step geometry, the solver
    convergence flags), and on a failed check rolls back and retries the
    step at half the time step — sub-stepping back onto the nominal time
    grid, so accepted trajectories always live on multiples of
    ``ReproConfig.dt``. Healthy steps are bit-identical to stepping with
    the layer disabled.
    """

    #: run the health sentinel and reject-and-retry loop around every
    #: step. ``False`` restores the raw, non-transactional stepping.
    enabled: bool = True
    #: retry budget per *nominal* step: how many times the layer may
    #: halve ``dt`` before giving up and raising ``StepRejectedError``.
    max_retries: int = 4
    #: smallest allowed sub-step, as a fraction of the nominal ``dt``
    #: (retries stop when halving would cross below
    #: ``dt_floor_factor * dt``, independent of the retry budget).
    dt_floor_factor: float = 1e-3
    #: reject a step when any cell's surface area drifts by more than
    #: this relative fraction within the step (membranes are
    #: inextensible; large one-step drift flags a corrupted solve).
    max_area_drift: float = 0.05
    #: reject a step when any cell's enclosed volume drifts by more than
    #: this relative fraction within the step.
    max_volume_drift: float = 0.05
    #: treat a non-converged implicit GMRES fallback solve as a health
    #: failure (the direct LU path always reports converged).
    reject_nonconverged_implicit: bool = True
    #: treat an exhausted contact projection (the NCP loop ran out of
    #: LCP linearizations with penetrating volume left, or an inner LCP
    #: failed to converge) as a health failure.
    reject_unresolved_contact: bool = True
    #: on non-finite cell-cell output from a fast summation backend,
    #: permanently degrade the simulation to the next backend of
    #: ``degradation_order`` instead of rejecting the step outright.
    backend_degradation: bool = True
    #: accuracy-ordered backend chain the degradation walks: when the
    #: active backend emits non-finite velocities, the next entry to its
    #: right is bound in its place (the last entry — the exact pairwise
    #: ``"direct"`` sum — has nowhere to fall back to, so a non-finite
    #: direct result goes down the dt-retry path instead).
    degradation_order: tuple = ("fmm", "treecode", "direct")

    @classmethod
    def from_dict(cls, d: dict) -> "ResilienceOptions":
        """Build from a dict, ignoring unknown keys (forward
        compatibility: configs saved by newer versions with extra policy
        knobs still load) and normalizing ``degradation_order`` back to
        a tuple after a JSON round-trip."""
        known = {f.name for f in dataclasses.fields(cls)}
        kw = {k: v for k, v in d.items() if k in known}
        if "degradation_order" in kw:
            kw["degradation_order"] = tuple(kw["degradation_order"])
        return cls(**kw)


def _default_forces() -> list:
    from .physics.terms import Bending
    return [Bending()]


@dataclasses.dataclass
class ReproConfig:
    """Unified, serializable configuration of a blood-flow simulation.

    Replaces the deprecated ``SimulationConfig`` + loose
    :class:`NumericsOptions` pair. Physics composes through ``forces``
    (a list of :class:`repro.physics.terms.ForceTerm`), the cell-cell
    summation strategy is chosen by ``backend`` (a key of
    :data:`repro.core.interactions.BACKENDS`), all numerical
    tolerances live in the nested ``numerics`` bundle, and the
    transactional-stepping policy (retry budget, dt floor, backend
    degradation order) in the nested ``resilience`` bundle. Instances
    validate on construction and round-trip losslessly through
    :meth:`to_dict` / :meth:`from_dict` (and JSON) provided every force
    term is serializable.

    That serializability is also what makes a config the unit of a
    *sweep*: a :class:`repro.sweep.SceneJob` is one config plus initial
    cell state and a duration, and :class:`repro.sweep.SweepRunner`
    maps N such jobs over the executor registry with failure isolation
    and whole-sweep kill/resume (see "Running sweeps" in
    ``examples/quickstart.py``).
    """

    dt: float = 0.05
    viscosity: float = DEFAULT_VISCOSITY
    forces: list = dataclasses.field(default_factory=_default_forces)
    #: Cell-cell summation strategy (a key of
    #: :data:`repro.core.interactions.BACKENDS`). Guidance by scene
    #: size (see ``examples/quickstart.py`` for measured numbers):
    #: ``"direct"`` — exact O(ncell^2) pairwise sums; the reference,
    #: fastest below ~8 cells. ``"treecode"`` — per-source-cell octrees
    #: with multipole far fields, O(N log N); wins from ~8 cells.
    #: ``"fmm"`` — one global octree with the full two-pass
    #: kernel-independent FMM, O(N); overtakes the treecode around
    #: 16-32 cells and is ~2x faster at 64 cells (rel error vs direct
    #: ~3e-5 at defaults, tunable via ``equiv_points_per_edge``).
    backend: str = "direct"
    #: Constructor keywords for the chosen backend (e.g. ``mac`` for
    #: ``"treecode"``; ``equiv_points_per_edge``, ``max_leaf`` for
    #: ``"fmm"``) — see the backend classes in
    #: :mod:`repro.core.interactions` for the full knob list.
    backend_options: dict = dataclasses.field(default_factory=dict)
    with_collisions: bool = True
    collision_points_per_patch_edge: int = 12
    numerics: NumericsOptions = dataclasses.field(
        default_factory=NumericsOptions)
    #: transactional-stepping policy (health sentinel, retry budget, dt
    #: floor, backend degradation order); see :class:`ResilienceOptions`.
    resilience: ResilienceOptions = dataclasses.field(
        default_factory=ResilienceOptions)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` listing every invalid field."""
        from .core.interactions import BACKENDS
        from .physics.terms import ForceTerm

        errors = []
        if not self.dt >= 0:
            errors.append(f"dt must be non-negative, got {self.dt}")
        if not self.viscosity > 0:
            errors.append(f"viscosity must be positive, got {self.viscosity}")
        if self.backend not in BACKENDS:
            errors.append(f"unknown backend {self.backend!r}; "
                          f"registered: {sorted(BACKENDS)}")
        for t in self.forces:
            if not isinstance(t, ForceTerm):
                errors.append(f"forces entries must be ForceTerm, got {t!r}")
        # Bending and Tension are singletons: the implicit operator and
        # the tension solve consult exactly one instance, so duplicates
        # would silently split the physics between code paths.
        from .physics.terms import Bending, Tension
        for singleton in (Bending, Tension):
            n_dup = sum(isinstance(t, singleton) for t in self.forces)
            if n_dup > 1:
                errors.append(f"at most one {singleton.__name__} term is "
                              f"allowed, got {n_dup}")
        if self.collision_points_per_patch_edge < 2:
            errors.append("collision_points_per_patch_edge must be >= 2")
        n = self.numerics
        if not isinstance(n, NumericsOptions):
            errors.append(f"numerics must be NumericsOptions, got {n!r}")
        else:
            if n.sph_order < 2:
                errors.append(f"sph_order must be >= 2, got {n.sph_order}")
            if n.patch_quad < 3:
                errors.append(f"patch_quad must be >= 3, got {n.patch_quad}")
            if n.check_order < 2:
                errors.append(f"check_order must be >= 2, got {n.check_order}")
            if not n.check_r_factor > 0:
                errors.append("check_r_factor must be positive")
            if n.upsample_eta < 0:
                errors.append("upsample_eta must be >= 0")
            if n.gmres_max_iter < 1:
                errors.append("gmres_max_iter must be >= 1")
            if not n.gmres_tol > 0:
                errors.append("gmres_tol must be positive")
            if n.ncp_max_lcp < 1:
                errors.append("ncp_max_lcp must be >= 1")
            if n.selfop_refresh_interval < 1:
                errors.append("selfop_refresh_interval must be >= 1, got "
                              f"{n.selfop_refresh_interval}")
            from .vesicle import SingularSelfInteraction
            if n.selfop_assembly not in SingularSelfInteraction.ASSEMBLY_MODES:
                errors.append(
                    f"unknown selfop_assembly {n.selfop_assembly!r}; "
                    f"expected one of "
                    f"{SingularSelfInteraction.ASSEMBLY_MODES}")
            from .runtime.executor import EXECUTORS
            if n.executor not in EXECUTORS:
                errors.append(f"unknown executor {n.executor!r}; "
                              f"registered: {sorted(EXECUTORS)}")
            if n.workers != "auto" and (
                    not isinstance(n.workers, int)
                    or isinstance(n.workers, bool) or n.workers < 1):
                errors.append("workers must be >= 1 or 'auto', got "
                              f"{n.workers!r}")
            if n.farfield_dtype not in ("float32", "float64"):
                errors.append("farfield_dtype must be 'float32' or "
                              f"'float64', got {n.farfield_dtype!r}")
        r = self.resilience
        if not isinstance(r, ResilienceOptions):
            errors.append(f"resilience must be ResilienceOptions, got {r!r}")
        else:
            if r.max_retries < 0:
                errors.append(f"max_retries must be >= 0, got "
                              f"{r.max_retries}")
            if not 0 < r.dt_floor_factor <= 1:
                errors.append("dt_floor_factor must be in (0, 1], got "
                              f"{r.dt_floor_factor}")
            if not r.max_area_drift > 0:
                errors.append("max_area_drift must be positive")
            if not r.max_volume_drift > 0:
                errors.append("max_volume_drift must be positive")
            for name in r.degradation_order:
                if name not in BACKENDS:
                    errors.append(
                        f"unknown backend {name!r} in degradation_order; "
                        f"registered: {sorted(BACKENDS)}")
        if errors:
            raise ValueError("invalid ReproConfig: " + "; ".join(errors))

    # -- convenience --------------------------------------------------------
    @property
    def bending_modulus(self) -> float:
        """Modulus of the first bending term (0.0 when bending is absent).

        A property so legacy ``sim.config.bending_modulus`` attribute
        reads keep returning a float after the shim conversion.
        """
        from .physics.terms import Bending
        for t in self.forces:
            if isinstance(t, Bending):
                return t.modulus
        return 0.0

    def with_force(self, term) -> "ReproConfig":
        """A copy of this config with ``term`` appended to ``forces``."""
        return dataclasses.replace(self, forces=[*self.forces, term])

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "dt": self.dt,
            "viscosity": self.viscosity,
            "forces": [t.to_dict() for t in self.forces],
            "backend": self.backend,
            "backend_options": dict(self.backend_options),
            "with_collisions": self.with_collisions,
            "collision_points_per_patch_edge":
                self.collision_points_per_patch_edge,
            "numerics": dataclasses.asdict(self.numerics),
            "resilience": {
                **dataclasses.asdict(self.resilience),
                "degradation_order":
                    list(self.resilience.degradation_order),
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ReproConfig":
        from .physics.terms import force_term_from_dict
        d = dict(d)
        # Absent keys fall through to the constructor defaults, so a
        # partial dict behaves like the equivalent ReproConfig(...) call.
        if "forces" in d:
            d["forces"] = [force_term_from_dict(t) for t in d["forces"]]
        if "numerics" in d:
            d["numerics"] = NumericsOptions(**d["numerics"])
        if "resilience" in d:
            d["resilience"] = ResilienceOptions.from_dict(d["resilience"])
        return cls(**d)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ReproConfig":
        return cls.from_dict(json.loads(text))

    # -- migration ----------------------------------------------------------
    @classmethod
    def from_legacy(cls, legacy) -> "ReproConfig":
        """Convert a deprecated ``SimulationConfig`` to a ``ReproConfig``."""
        from .physics.terms import (BackgroundFlow, Bending, Gravity,
                                    Tension)
        forces: list = [Bending(legacy.bending_modulus)]
        if legacy.with_tension:
            forces.append(Tension())
        if legacy.gravity is not None:
            drho, gvec = legacy.gravity
            forces.append(Gravity(drho, tuple(gvec)))
        if legacy.background_flow is not None:
            forces.append(BackgroundFlow(legacy.background_flow))
        return cls(dt=legacy.dt, viscosity=legacy.viscosity, forces=forces,
                   with_collisions=legacy.with_collisions,
                   collision_points_per_patch_edge=(
                       legacy.collision_points_per_patch_edge),
                   numerics=legacy.numerics)

"""Many-scene throughput engine: serve sweeps, not steps.

The production workload is thousands of *independent* scenes (parameter
sweeps, per-user configs). This package makes one scene a schedulable,
serializable unit (:class:`SceneJob` -> :func:`run_scene` ->
:class:`SceneResult`) and multiplexes N of them over the executor
registry (:class:`SweepRunner`), with per-job failure isolation,
per-job timeouts, process-wide warm table caches
(:func:`repro.runtime.warm_caches`), and whole-sweep kill/resume on top
of the bit-identical checkpoint layer.

Quick use::

    from repro import presets
    from repro.surfaces import biconcave_rbc
    from repro.sweep import SceneJob, SweepRunner

    jobs = [SceneJob.from_cells(f"visc{mu}", presets.relaxation(),
                                [biconcave_rbc(order=8)], n_steps=20)
            for mu in (0.5, 1.0, 2.0)]
    report = SweepRunner(jobs, executor="process", workers="auto",
                         workdir="sweep_out").run()
    for res in report.results:
        print(res.job_id, res.status, res.t)
"""
from ..runtime.caches import warm_caches
from .job import SceneJob, SceneResult, SceneTask, run_scene
from .runner import SweepReport, SweepRunner

__all__ = [
    "SceneJob", "SceneResult", "SceneTask", "run_scene",
    "SweepReport", "SweepRunner", "warm_caches",
]

"""The schedulable scene unit: :class:`SceneJob` -> :func:`run_scene`.

A sweep's unit of work is one independent scene: a serializable
:class:`repro.config.ReproConfig` plus the initial cell state and a
duration. :func:`run_scene` is the pure entry point — build (or resume)
the simulation, step it to the end, checkpoint along the way — and
returns a :class:`SceneResult` instead of raising, so one scene's
failure (a :class:`repro.StepRejectedError`, a solver blow-up, an
injected fault) is data, never a crashed batch. Any executor of the
:mod:`repro.runtime.executor` registry can map it: :class:`SceneTask`
is the module-level :class:`~repro.runtime.executor.ProcessTask`
wrapper the process pool ships to workers.

Jobs and results are deliberately plain (dataclasses of config +
numpy arrays): they pickle across process boundaries, price cleanly on
the communicator ledger, and round-trip to disk for the sweep
manifest's kill/resume story.
"""
from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Callable, List, Optional

import numpy as np

from ..config import ReproConfig
from ..runtime.caches import warm_caches
from ..runtime.executor import ProcessTask

__all__ = ["SceneJob", "SceneResult", "SceneTask", "run_scene"]


@dataclasses.dataclass
class SceneJob:
    """One independent scene, as a serializable schedulable unit.

    The common case carries the initial cell state inline
    (``positions``/``orders``, one entry per cell — build via
    :meth:`from_cells`); scenes the flat state cannot describe
    (vessel-bounded, recycling) instead name a module-level ``build``
    callable returning a ready :class:`repro.core.Simulation` — it must
    be picklable by reference for the process executor, exactly like a
    :class:`~repro.runtime.executor.ProcessTask`.
    """

    #: unique name within the sweep; keys checkpoints, results, manifest.
    job_id: str
    #: full scene physics/numerics; the per-scene executor should stay
    #: ``"serial"`` — the sweep parallelizes across scenes, not within.
    config: ReproConfig
    #: nominal steps to run (the scene's duration is ``n_steps * dt``).
    n_steps: int
    #: initial per-cell positions, each ``(n_points, 3)`` (grid layout
    #: flattened row-major); ignored when ``build`` is given.
    positions: Optional[List[np.ndarray]] = None
    #: per-cell spherical-harmonic orders, parallel to ``positions``.
    orders: Optional[List[int]] = None
    #: module-level factory for scenes beyond flat cell state;
    #: called as ``build(job)`` and must return a fresh Simulation.
    build: Optional[Callable] = None
    #: where to checkpoint/resume this job (``.npz`` appended); ``None``
    #: disables checkpointing (the job is then never resumable).
    checkpoint_path: Optional[str] = None
    #: steps between periodic checkpoints (plus one at the final step);
    #: 0 saves only the final-step checkpoint.
    checkpoint_interval: int = 1
    #: soft wall-clock budget in seconds, checked between steps; an
    #: over-budget job checkpoints and returns status ``"timeout"``.
    timeout: Optional[float] = None

    @classmethod
    def from_cells(cls, job_id: str, config: ReproConfig, cells,
                   n_steps: int, **kw) -> "SceneJob":
        """Build a job from ready surfaces (copies their positions)."""
        return cls(job_id=job_id, config=config, n_steps=int(n_steps),
                   positions=[np.array(c.X) for c in cells],
                   orders=[int(c.order) for c in cells], **kw)

    def scene_orders(self) -> List[int]:
        """The distinct SH orders this job touches (for cache warm-up);
        empty when unknown (custom ``build`` scenes)."""
        return sorted(set(self.orders)) if self.orders else []

    def make_simulation(self):
        """Fresh simulation at the job's *initial* state (no resume)."""
        from ..core.simulation import Simulation
        from ..surfaces import SpectralSurface
        if self.build is not None:
            return self.build(self)
        if self.positions is None or self.orders is None:
            raise ValueError(
                f"job {self.job_id!r} has neither inline cell state "
                "(positions/orders) nor a build callable")
        cells = [SpectralSurface(np.array(X), int(p))
                 for X, p in zip(self.positions, self.orders)]
        return Simulation(cells, config=self.config)


@dataclasses.dataclass
class SceneResult:
    """Outcome of one :func:`run_scene` call (failure is data, not an
    exception — the sweep's isolation contract)."""

    job_id: str
    #: ``"completed"`` | ``"failed"`` | ``"timeout"``.
    status: str
    #: nominal steps actually accepted (completed => ``n_steps``).
    steps_done: int
    #: simulation time reached.
    t: float
    #: final per-cell positions (at the failure/timeout frontier for
    #: non-completed jobs); ``None`` only if the build itself failed.
    positions: Optional[List[np.ndarray]] = None
    #: exception summary for ``"failed"`` jobs.
    error: Optional[str] = None
    #: whether a resume can continue this job from a checkpoint (False
    #: for non-checkpointable scenes and checkpoint-less jobs).
    resumable: bool = False
    #: the checkpoint actually written (``None`` when none was).
    checkpoint_path: Optional[str] = None
    #: wall-clock seconds this call spent.
    elapsed: float = 0.0

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    def meta_dict(self) -> dict:
        """JSON-safe summary (everything but the position arrays)."""
        return {"job_id": self.job_id, "status": self.status,
                "steps_done": self.steps_done, "t": self.t,
                "error": self.error, "resumable": self.resumable,
                "checkpoint_path": self.checkpoint_path,
                "elapsed": self.elapsed}


def _steps_completed(sim, config: ReproConfig) -> int:
    """Nominal steps a (resumed) simulation has already accepted.

    Accepted trajectories live on exact multiples of the nominal dt
    (the transactional stepper sub-steps back onto the grid), so the
    rounded ratio is exact."""
    return int(round(sim.t / config.dt))


def run_scene(job: SceneJob) -> SceneResult:
    """Run one scene to completion; the pure function any executor maps.

    Resumes bit-identically from ``job.checkpoint_path`` when that file
    exists (a previous attempt's frontier), steps to ``job.n_steps``,
    checkpoints every ``checkpoint_interval`` accepted steps plus once
    at the end, and converts every scene-level failure — a
    :class:`repro.StepRejectedError`, a solver error, an injected fault
    — into a ``"failed"`` :class:`SceneResult` carrying the rolled-back
    frontier. A scene that cannot be checkpointed
    (``Simulation.checkpointable`` is False: vessel-bounded or recycling
    scenes) runs normally but is marked non-resumable; it never aborts
    the batch.
    """
    from ..resilience import load_checkpoint, save_checkpoint

    t_start = time.perf_counter()
    ckpt = job.checkpoint_path
    if ckpt is not None and not str(ckpt).endswith(".npz"):
        ckpt = str(ckpt) + ".npz"

    def result(sim, status, steps_done, error=None, wrote_ckpt=False):
        return SceneResult(
            job_id=job.job_id, status=status, steps_done=steps_done,
            t=0.0 if sim is None else float(sim.t),
            positions=None if sim is None
            else [np.array(c.X) for c in sim.cells],
            error=error,
            resumable=wrote_ckpt,
            checkpoint_path=ckpt if wrote_ckpt else None,
            elapsed=time.perf_counter() - t_start)

    try:
        if ckpt is not None and os.path.exists(ckpt):
            sim = load_checkpoint(ckpt)
            steps_done = _steps_completed(sim, job.config)
            have_ckpt = True
        else:
            sim = job.make_simulation()
            steps_done = _steps_completed(sim, job.config)
            have_ckpt = False
    except Exception as exc:                       # noqa: BLE001 — isolation:
        # a scene whose *build* fails is a failed job, not a dead sweep
        return SceneResult(job_id=job.job_id, status="failed",
                           steps_done=0, t=0.0, positions=None,
                           error=f"{type(exc).__name__}: {exc}",
                           elapsed=time.perf_counter() - t_start)

    can_ckpt = ckpt is not None and sim.checkpointable
    interval = max(0, int(job.checkpoint_interval))

    def maybe_checkpoint(step_no: int, final: bool) -> bool:
        if not can_ckpt:
            return False
        if final or (interval and step_no % interval == 0):
            save_checkpoint(sim, ckpt)
            return True
        return False

    wrote = have_ckpt
    try:
        while steps_done < job.n_steps:
            if (job.timeout is not None
                    and time.perf_counter() - t_start > job.timeout):
                wrote = maybe_checkpoint(steps_done, final=True) or wrote
                return result(sim, "timeout", steps_done, wrote_ckpt=wrote)
            sim.step()
            steps_done += 1
            wrote = maybe_checkpoint(
                steps_done, final=steps_done == job.n_steps) or wrote
    except Exception as exc:                       # noqa: BLE001 — isolation:
        # StepRejectedError (budget exhausted, state already rolled
        # back), solver errors, injected faults: all land as data
        return result(sim, "failed", steps_done,
                      error=f"{type(exc).__name__}: {exc}",
                      wrote_ckpt=wrote)
    return result(sim, "completed", steps_done, wrote_ckpt=wrote)


class SceneTask(ProcessTask):
    """Module-level :class:`ProcessTask` so the process executor ships
    scene jobs to its fork pool (the PR 9 ``executor.map`` contract:
    picklable, pure ``__call__(self, job)``, disjoint state per item).

    Warms the worker's geometry-independent per-order caches before the
    first job touches them — idempotent and build-locked, so on a fork
    pool (parent already warm) it is a cache hit, and on a cold spawn
    worker it fronts the table cost once instead of inside every job.
    """

    def __call__(self, job: SceneJob) -> SceneResult:
        orders = job.scene_orders()
        if orders:
            warm_caches(orders)
        return run_scene(job)


def result_to_npz(res: SceneResult, path: str) -> str:
    """Persist a result for the sweep manifest (kill/resume bookkeeping)."""
    arrays = {}
    if res.positions is not None:
        for i, X in enumerate(res.positions):
            arrays[f"c{i}_X"] = X
    path = str(path)
    if not path.endswith(".npz"):
        path += ".npz"
    with open(path, "wb") as fh:
        np.savez(fh, meta=np.array(json.dumps(res.meta_dict())), **arrays)
    return path


def result_from_npz(path: str) -> SceneResult:
    """Inverse of :func:`result_to_npz`."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        ncell = sum(1 for k in data.files if k.endswith("_X"))
        positions = [np.array(data[f"c{i}_X"]) for i in range(ncell)] \
            if ncell else None
    return SceneResult(positions=positions, **meta)

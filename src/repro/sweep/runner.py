"""The sweep runner: N independent scenes multiplexed over one executor.

:class:`SweepRunner` serves the production workload ROADMAP item 2
names — thousands of independent scenes, not one giant scene — on top
of the pieces earlier PRs shipped: the pluggable executor registry
(serial / thread / process, PR 4/9), bit-identical checkpoint/resume
(PR 8), and the geometry-independent per-order table caches.

Guarantees:

- **Bit-identity.** Each job runs through the same pure
  :func:`~repro.sweep.job.run_scene` no matter the executor, so an
  N-job process sweep's per-job trajectories are bit-identical to
  running each job alone serially (gated in CI by the ``sweep-smoke``
  lane).
- **Failure isolation.** One scene's :class:`repro.StepRejectedError`
  (or any crash) lands as a ``"failed"`` :class:`SceneResult`; the
  sweep completes every other job.
- **Kill/resume.** With a ``workdir``, the runner checkpoints each job
  periodically and records completed jobs in an atomically-rewritten
  manifest; a SIGKILLed sweep re-run with the same arguments skips
  completed jobs (their persisted results are returned verbatim) and
  resumes unfinished ones from their checkpoint frontier — no job lost
  or repeated. Non-checkpointable scenes (vessel/recycler:
  ``Simulation.checkpointable`` is False) degrade gracefully to
  non-resumable jobs that restart from scratch on resume.
- **Warm caches.** The per-order shared tables of every order the sweep
  touches are pre-built once in the parent before the pool forks
  (copy-on-write shares them with every worker) and defensively on
  first touch inside each worker — so a 1000-scene sweep pays table
  assembly once per order, not once per job, and the raised cache
  bounds (:mod:`repro.analysis.guard`) keep mixed-order sweeps from
  thrashing evictions.
"""
from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Union

from ..runtime.caches import warm_caches
from ..runtime.executor import Executor, make_executor
from .job import (SceneJob, SceneResult, SceneTask, result_from_npz,
                  result_to_npz)

__all__ = ["SweepRunner", "SweepReport"]

MANIFEST_NAME = "sweep_manifest.json"


@dataclasses.dataclass
class SweepReport:
    """What a :meth:`SweepRunner.run` did, beyond the results list."""

    #: results in input-job order (one per job, always).
    results: List[SceneResult]
    #: job_ids restored from a previous run's persisted results.
    restored: List[str]
    #: job_ids resumed mid-trajectory from a checkpoint frontier.
    resumed: List[str]
    #: wall-clock seconds of this run (restored jobs cost none).
    elapsed: float = 0.0

    @property
    def completed(self) -> List[SceneResult]:
        return [r for r in self.results if r.completed]

    @property
    def failed(self) -> List[SceneResult]:
        return [r for r in self.results if r.status == "failed"]


class SweepRunner:
    """Multiplex :class:`SceneJob`s over a registry executor.

    ``executor`` is a registry name (``"serial"``, ``"thread"``,
    ``"process"``) or a ready :class:`~repro.runtime.executor.Executor`
    instance; ``workers`` follows the same ``"auto"``/int convention as
    :attr:`repro.config.NumericsOptions.workers`, resolved against the
    job count. ``max_inflight`` bounds how many jobs are handed to the
    executor at once (default ``4 * workers``): the manifest frontier
    advances wave by wave, so a kill loses at most one wave of
    *bookkeeping* (the per-job checkpoints inside the wave still resume
    mid-trajectory). ``workdir`` enables the kill/resume story; without
    it the sweep is a one-shot in-memory run.

    ``timeout`` / ``checkpoint_interval`` are per-job defaults applied
    to jobs that leave them unset.
    """

    def __init__(self, jobs: Sequence[SceneJob],
                 executor: Union[str, Executor] = "process",
                 workers: Union[int, str] = "auto",
                 max_inflight: Optional[int] = None,
                 workdir: Optional[str] = None,
                 warm: bool = True,
                 timeout: Optional[float] = None,
                 checkpoint_interval: Optional[int] = None):
        jobs = list(jobs)
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate job_ids in sweep: {dupes}")
        self.jobs = jobs
        if isinstance(executor, Executor):
            self.executor = executor
            self._own_executor = False
        else:
            from ..runtime.executor import resolve_workers
            self.executor = make_executor(
                executor, resolve_workers(workers, len(jobs)))
            self._own_executor = True
        self.max_inflight = (int(max_inflight) if max_inflight
                             else max(1, 4 * self.executor.workers))
        self.workdir = workdir
        self.warm = warm
        self.default_timeout = timeout
        self.default_checkpoint_interval = checkpoint_interval

    # -- manifest bookkeeping ---------------------------------------------
    def _manifest_path(self) -> Optional[str]:
        return (os.path.join(self.workdir, MANIFEST_NAME)
                if self.workdir else None)

    def _load_manifest(self) -> Dict[str, dict]:
        path = self._manifest_path()
        if path is None or not os.path.exists(path):
            return {}
        try:
            with open(path) as fh:
                data = json.load(fh)
            return data.get("jobs", {})
        except (json.JSONDecodeError, OSError):
            # a manifest torn by a kill mid-write never happens (atomic
            # rename), but an unreadable file must not kill the sweep:
            # fall back to re-running everything from checkpoints
            return {}

    def _write_manifest(self, entries: Dict[str, dict]) -> None:
        path = self._manifest_path()
        if path is None:
            return
        payload = json.dumps({"version": 1, "jobs": entries}, indent=1)
        # Atomic replace: a SIGKILL between write and rename leaves the
        # previous manifest intact, never a torn file.
        fd, tmp = tempfile.mkstemp(dir=self.workdir, suffix=".manifest")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _result_path(self, job_id: str) -> str:
        return os.path.join(self.workdir, f"result_{job_id}.npz")

    # -- the run -----------------------------------------------------------
    def _prepare_jobs(self) -> List[SceneJob]:
        """Apply workdir checkpoint paths and per-job defaults."""
        prepared = []
        for job in self.jobs:
            updates = {}
            if (self.workdir and job.checkpoint_path is None):
                updates["checkpoint_path"] = os.path.join(
                    self.workdir, f"ckpt_{job.job_id}.npz")
            if job.timeout is None and self.default_timeout is not None:
                updates["timeout"] = self.default_timeout
            if self.default_checkpoint_interval is not None:
                updates["checkpoint_interval"] = \
                    self.default_checkpoint_interval
            prepared.append(dataclasses.replace(job, **updates)
                            if updates else job)
        return prepared

    def run(self) -> SweepReport:
        """Run (or resume) the sweep; returns one result per input job,
        in input order, regardless of failures."""
        import time
        t0 = time.perf_counter()
        if self.workdir:
            os.makedirs(self.workdir, exist_ok=True)
        jobs = self._prepare_jobs()
        manifest = self._load_manifest()

        results: Dict[str, SceneResult] = {}
        restored: List[str] = []
        resumed: List[str] = []
        pending: List[SceneJob] = []
        for job in jobs:
            entry = manifest.get(job.job_id)
            if entry and entry.get("status") == "completed":
                rpath = entry.get("result")
                if rpath and os.path.exists(rpath):
                    results[job.job_id] = result_from_npz(rpath)
                    restored.append(job.job_id)
                    continue
            if (job.checkpoint_path
                    and os.path.exists(str(job.checkpoint_path))):
                resumed.append(job.job_id)
            pending.append(job)

        if self.warm and pending:
            orders = sorted({o for j in pending for o in j.scene_orders()})
            if orders:
                # Parent-side warm-up *before* the process pool forks:
                # workers inherit the built tables copy-on-write.
                warm_caches(orders)

        task = SceneTask()
        try:
            for start in range(0, len(pending), self.max_inflight):
                wave = pending[start:start + self.max_inflight]
                for res in self.executor.map(task, wave):
                    results[res.job_id] = res
                    if self.workdir:
                        entry = dict(res.meta_dict())
                        if res.completed:
                            entry["result"] = result_to_npz(
                                res, self._result_path(res.job_id))
                        manifest[res.job_id] = entry
                # Manifest frontier advances once per wave (bounded
                # in-flight => bounded re-run window after a kill).
                self._write_manifest(manifest)
        finally:
            if self._own_executor:
                self.executor.close()

        return SweepReport(
            results=[results[j.job_id] for j in jobs],
            restored=restored, resumed=resumed,
            elapsed=time.perf_counter() - t0)

"""Sphere rotations for the singular quadrature of the single layer.

The single-layer self-interaction on an RBC is computed with the rotation
trick of [48]/[14] (cited in paper Sec. 2.2): for each target point the
sphere parametrization is rotated so the target sits at the north pole;
in the rotated coordinates the quadrature weight ``sin(psi)`` cancels the
``1/r`` kernel singularity and the standard product rule converges
spectrally. This module provides the geometry of that rotation: given a
pole direction, compute the (theta, phi) coordinates of a reference
latitude-longitude grid rotated to that pole.
"""
from __future__ import annotations

import numpy as np


def rotation_matrix_to_pole(theta0: float, phi0: float) -> np.ndarray:
    """Rotation R mapping the north pole to the direction (theta0, phi0).

    Composition Rz(phi0) @ Ry(theta0); columns are orthonormal.
    """
    ct, st = np.cos(theta0), np.sin(theta0)
    cp, sp = np.cos(phi0), np.sin(phi0)
    Ry = np.array([[ct, 0.0, st], [0.0, 1.0, 0.0], [-st, 0.0, ct]])
    Rz = np.array([[cp, -sp, 0.0], [sp, cp, 0.0], [0.0, 0.0, 1.0]])
    return Rz @ Ry


def rotation_matrices_to_poles(theta0: np.ndarray,
                               phi0: np.ndarray) -> np.ndarray:
    """Stacked rotations mapping the north pole to each ``(theta0, phi0)``.

    Vectorized :func:`rotation_matrix_to_pole`; returns shape ``(n, 3, 3)``.
    """
    theta0 = np.asarray(theta0, float).ravel()
    phi0 = np.asarray(phi0, float).ravel()
    ct, st = np.cos(theta0), np.sin(theta0)
    cp, sp = np.cos(phi0), np.sin(phi0)
    R = np.empty((theta0.size, 3, 3))
    R[:, 0, 0] = cp * ct
    R[:, 0, 1] = -sp
    R[:, 0, 2] = cp * st
    R[:, 1, 0] = sp * ct
    R[:, 1, 1] = cp
    R[:, 1, 2] = sp * st
    R[:, 2, 0] = -st
    R[:, 2, 1] = 0.0
    R[:, 2, 2] = ct
    return R


def rotated_sphere_points_batch(theta0: np.ndarray, phi0: np.ndarray,
                                psi: np.ndarray, alpha: np.ndarray
                                ) -> tuple[np.ndarray, np.ndarray]:
    """Rotated grid coordinates for a *batch* of pole directions.

    The same relative ``(psi, alpha)`` rule (flat, broadcast together) is
    rotated to every pole ``(theta0[a], phi0[a])``; returns ``(theta,
    phi)`` arrays of shape ``(n_poles, n_rule)``.
    """
    psi, alpha = np.broadcast_arrays(np.asarray(psi, float),
                                     np.asarray(alpha, float))
    sp = np.sin(psi).ravel()
    pts = np.stack([sp * np.cos(alpha.ravel()),
                    sp * np.sin(alpha.ravel()),
                    np.cos(psi).ravel()], axis=-1)       # (n_rule, 3)
    R = rotation_matrices_to_poles(theta0, phi0)         # (n_poles, 3, 3)
    world = np.einsum("nj,aij->ani", pts, R)
    z = np.clip(world[:, :, 2], -1.0, 1.0)
    theta = np.arccos(z)
    phi = np.arctan2(world[:, :, 1], world[:, :, 0]) % (2.0 * np.pi)
    return theta, phi


def rotated_ring_points(theta0: float, psi: np.ndarray,
                        alpha: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rotated rule coordinates for the ``phi0 = 0`` target of a latitude
    ring — the ring's one distinct geometry.

    Rotations to the other targets of the same ring differ only by a
    rotation about the polar axis: the target at longitude ``phi_t`` sees
    the rule at ``(theta_r, phi_r + phi_t)`` with the *same* ``theta_r``
    returned here. Consequences, both exploited by the singular
    self-interaction tables: (a) rotated-synthesis matrices of a whole
    ring differ only by per-``m`` phases ``exp(i m phi_t)``, and (b) the
    composition (rotated synthesis, azimuthal shift, forward SHT) is
    block-circulant in (target longitude, source longitude) and therefore
    FFT-diagonalizable over the azimuthal index.
    """
    return rotated_sphere_points(theta0, 0.0, psi, alpha)


def rotated_sphere_points(theta0: float, phi0: float,
                          psi: np.ndarray, alpha: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Spherical coordinates of rotated grid points.

    Points at colatitude ``psi`` and azimuth ``alpha`` *relative to the
    rotated pole* ``(theta0, phi0)`` are mapped back to standard (theta,
    phi) coordinates. ``psi`` and ``alpha`` are broadcast against each
    other; returns flat arrays of the broadcast size.
    """
    psi, alpha = np.broadcast_arrays(np.asarray(psi, float), np.asarray(alpha, float))
    sp = np.sin(psi)
    pts = np.stack([sp * np.cos(alpha), sp * np.sin(alpha), np.cos(psi)], axis=-1)
    R = rotation_matrix_to_pole(theta0, phi0)
    world = pts.reshape(-1, 3) @ R.T
    z = np.clip(world[:, 2], -1.0, 1.0)
    theta = np.arccos(z)
    phi = np.arctan2(world[:, 1], world[:, 0]) % (2.0 * np.pi)
    return theta, phi

"""Spherical-harmonic substrate for RBC surface representation.

RBC surfaces are closed genus-0 surfaces represented by spherical-harmonic
(SH) expansions of the three coordinate functions, sampled on a standard
latitude-longitude grid (paper Sec. 2.2: Gauss-Legendre colatitudes x uniform
longitudes). This subpackage provides

- :class:`SphGrid` — the (p+1) x (2p+2) sampling grid with quadrature
  weights exact for band-limited integrands,
- forward/inverse spherical-harmonic transforms (:func:`sht`, :func:`isht`),
- spectral differentiation in both angles,
- synthesis at arbitrary points on the sphere (used by the rotation-based
  singular quadrature of [48]/[14] cited in the paper),
- band-limited upsampling between grids of different order.
"""
from .grid import SphGrid
from .alp import normalized_alp, normalized_alp_theta_derivative
from .transform import SHTransform, get_transform, sht, isht
from .rotation import rotated_sphere_points, rotation_matrix_to_pole

__all__ = [
    "SphGrid",
    "SHTransform",
    "get_transform",
    "sht",
    "isht",
    "normalized_alp",
    "normalized_alp_theta_derivative",
    "rotated_sphere_points",
    "rotation_matrix_to_pole",
]

"""Latitude-longitude sampling grid for spherical-harmonic surfaces."""
from __future__ import annotations

import numpy as np

from ..analysis.guard import (PER_ORDER_CACHE_SIZE, freeze_attributes,
                              locked_cache)
from ..quadrature import gauss_legendre


class SphGrid:
    """The standard SH sampling grid of order ``p``.

    ``nlat = p + 1`` Gauss-Legendre nodes in ``cos(theta)`` (theta is the
    colatitude, 0 at the north pole) and ``nphi = 2 p + 2`` uniform
    longitudes. Quadrature with the stored weights is exact for spherical
    polynomials of degree ``<= 2p + 1`` in theta and band limit ``p + 1`` in
    phi, which makes the forward transform of band-limited data exact.

    Fields on the grid are stored as arrays of shape ``(nlat, nphi)`` (theta
    index first); point clouds are the row-major flattening of that layout.
    """

    def __init__(self, order: int):
        if order < 1:
            raise ValueError("SH order must be >= 1")
        self.order = int(order)
        self.nlat = self.order + 1
        self.nphi = 2 * self.order + 2
        x, w = gauss_legendre(self.nlat)
        # Descending in x = cos(theta) => ascending in theta from pole.
        idx = np.argsort(-x)
        self.cos_theta = x[idx]
        self.glw = w[idx]
        self.theta = np.arccos(np.clip(self.cos_theta, -1.0, 1.0))
        self.sin_theta = np.sin(self.theta)
        self.phi = 2.0 * np.pi * np.arange(self.nphi) / self.nphi
        #: quadrature weight of each grid point for integration over S^2
        #: with the standard measure sin(theta) dtheta dphi; the sin(theta)
        #: Jacobian is already folded into the Gauss-Legendre weights since
        #: they integrate in x = cos(theta).
        self.weights = np.outer(self.glw, np.full(self.nphi, 2.0 * np.pi / self.nphi))
        # Instances are shared through get_grid's cache: mark every table
        # read-only so a caller mutating one would fail loudly instead of
        # corrupting all other users of this order.
        freeze_attributes(self)

    @property
    def n_points(self) -> int:
        return self.nlat * self.nphi

    def mesh(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (theta, phi) meshgrid arrays of shape (nlat, nphi)."""
        return np.meshgrid(self.theta, self.phi, indexing="ij")

    def points_unit_sphere(self) -> np.ndarray:
        """Cartesian coordinates of the grid points on the unit sphere,
        shape ``(n_points, 3)`` in row-major (theta-first) order."""
        T, P = self.mesh()
        st = np.sin(T)
        pts = np.stack([st * np.cos(P), st * np.sin(P), np.cos(T)], axis=-1)
        return pts.reshape(-1, 3)

    def integrate(self, f: np.ndarray) -> float | np.ndarray:
        """Integrate a field over the unit sphere measure.

        ``f`` may have shape ``(nlat, nphi)`` or ``(nlat, nphi, k)``.
        """
        f = np.asarray(f)
        if f.shape[:2] != (self.nlat, self.nphi):
            raise ValueError("field shape does not match grid")
        return np.tensordot(self.weights, f, axes=([0, 1], [0, 1]))

    def flatten(self, f: np.ndarray) -> np.ndarray:
        """Reshape a gridded field to point-cloud layout."""
        f = np.asarray(f)
        return f.reshape(self.n_points, *f.shape[2:])

    def unflatten(self, f: np.ndarray) -> np.ndarray:
        """Reshape a point-cloud field back to the grid layout."""
        f = np.asarray(f)
        return f.reshape(self.nlat, self.nphi, *f.shape[1:])


@locked_cache(maxsize=PER_ORDER_CACHE_SIZE)
def get_grid(order: int) -> SphGrid:
    """Cached grid accessor (grids are immutable; bound and build-locking
    per the shared-table cache policy in :mod:`repro.analysis.guard`)."""
    return SphGrid(order)

"""Fully-normalized associated Legendre functions and theta-derivatives.

We use the orthonormal convention: the spherical harmonics are
``Y_l^m(theta, phi) = Pbar_l^m(cos theta) e^{i m phi}`` with

``int_{S^2} Y_l^m conj(Y_l'^m') dOmega = delta_{ll'} delta_{mm'}``,

and the Condon-Shortley phase included in ``Pbar``. Negative orders follow
from ``Y_l^{-m} = (-1)^m conj(Y_l^m)``.

The recursions below are the standard stable ones (increasing degree for
fixed order); they are exercised against :func:`scipy.special.sph_harm_y`
in the test suite.
"""
from __future__ import annotations

import numpy as np


def normalized_alp(lmax: int, x: np.ndarray) -> np.ndarray:
    """Evaluate ``Pbar_l^m(x)`` for ``0 <= m <= l <= lmax``.

    Parameters
    ----------
    lmax:
        Maximum degree.
    x:
        Evaluation points in [-1, 1], any shape; flattened internally.

    Returns
    -------
    ndarray of shape ``(lmax+1, lmax+1, n)``: entry ``[l, m]`` holds
    ``Pbar_l^m`` at the n points (zero where ``m > l``).
    """
    x = np.asarray(x, dtype=float).ravel()
    n = x.size
    s = np.sqrt(np.maximum(0.0, 1.0 - x * x))  # sin(theta)
    P = np.zeros((lmax + 1, lmax + 1, n))
    P[0, 0] = np.full(n, np.sqrt(1.0 / (4.0 * np.pi)))
    # Diagonal: Pbar_m^m = -sqrt((2m+1)/(2m)) * s * Pbar_{m-1}^{m-1}
    for m in range(1, lmax + 1):
        P[m, m] = -np.sqrt((2.0 * m + 1.0) / (2.0 * m)) * s * P[m - 1, m - 1]
    # First off-diagonal: Pbar_{m+1}^m = sqrt(2m+3) * x * Pbar_m^m
    for m in range(0, lmax):
        P[m + 1, m] = np.sqrt(2.0 * m + 3.0) * x * P[m, m]
    # Upward recursion in degree.
    for m in range(0, lmax + 1):
        for l in range(m + 2, lmax + 1):
            a = np.sqrt((4.0 * l * l - 1.0) / (l * l - m * m))
            b = np.sqrt(((l - 1.0) ** 2 - m * m) / (4.0 * (l - 1.0) ** 2 - 1.0))
            P[l, m] = a * (x * P[l - 1, m] - b * P[l - 2, m])
    return P


def normalized_alp_theta_derivative(lmax: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``Pbar_l^m`` and ``d Pbar_l^m / d theta``.

    Uses the identity (valid for fully-normalized ALPs)

    ``sin(theta) dPbar_l^m/dtheta = l A_{l+1}^m Pbar_{l+1}^m
                                     - (l+1) A_l^m Pbar_{l-1}^m``

    with ``A_l^m = sqrt((l^2 - m^2) / (4 l^2 - 1))``. The division by
    ``sin(theta)`` is safe on Gauss-Legendre grids, which exclude the poles.

    Returns ``(P, dP)`` each of shape ``(lmax+1, lmax+1, n)``.
    """
    x = np.asarray(x, dtype=float).ravel()
    s = np.sqrt(np.maximum(0.0, 1.0 - x * x))
    if np.any(s < 1e-13):
        raise ValueError("theta-derivative evaluation requested at a pole")
    P_ext = normalized_alp(lmax + 1, x)
    P = P_ext[: lmax + 1, : lmax + 1]
    dP = np.zeros_like(P)
    for m in range(0, lmax + 1):
        for l in range(m, lmax + 1):
            a_lp1 = np.sqrt(((l + 1.0) ** 2 - m * m) / (4.0 * (l + 1.0) ** 2 - 1.0))
            term = l * a_lp1 * P_ext[l + 1, m]
            if l - 1 >= m:
                a_l = np.sqrt((l * l - m * m) / (4.0 * l * l - 1.0))
                term = term - (l + 1.0) * a_l * P_ext[l - 1, m]
            dP[l, m] = term / s
    return P.copy(), dP


def normalized_alp_theta_derivative2(lmax: int, x: np.ndarray
                                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate ``Pbar``, ``dPbar/dtheta`` and ``d^2 Pbar/dtheta^2``.

    Differentiating the first-derivative identity once more gives

    ``d2P_l^m = (l A_{l+1} dP_{l+1}^m - (l+1) A_l dP_{l-1}^m
                 - cos(theta) dP_l^m) / sin(theta)``,

    which only needs ``dP`` up to degree ``lmax + 1`` (hence ``P`` up to
    ``lmax + 2``). Exact for band-limited series; poles excluded.
    """
    x = np.asarray(x, dtype=float).ravel()
    s = np.sqrt(np.maximum(0.0, 1.0 - x * x))
    if np.any(s < 1e-13):
        raise ValueError("second-derivative evaluation requested at a pole")
    P1, dP1 = normalized_alp_theta_derivative(lmax + 1, x)
    P = P1[: lmax + 1, : lmax + 1].copy()
    dP = dP1[: lmax + 1, : lmax + 1].copy()
    d2P = np.zeros_like(P)
    for m in range(0, lmax + 1):
        for l in range(m, lmax + 1):
            a_lp1 = np.sqrt(((l + 1.0) ** 2 - m * m) / (4.0 * (l + 1.0) ** 2 - 1.0))
            term = l * a_lp1 * dP1[l + 1, m]
            if l - 1 >= m:
                a_l = np.sqrt((l * l - m * m) / (4.0 * l * l - 1.0))
                term = term - (l + 1.0) * a_l * dP1[l - 1, m]
            d2P[l, m] = (term - x * dP[l, m]) / s
    return P, dP, d2P

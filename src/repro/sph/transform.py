"""Forward and inverse spherical-harmonic transforms.

The forward transform combines an FFT in longitude with Gauss-Legendre
quadrature in colatitude; it is exact for fields band-limited at the grid
order. Coefficients are stored densely as a complex array ``c[l, m + p]``
for ``0 <= l <= p`` and ``-l <= m <= l`` (entries outside the triangle are
zero). Real fields keep the Hermitian symmetry ``c[l, -m] = (-1)^m
conj(c[l, m])``; we store the full complex triangle for simplicity and
return real grids from synthesis when the input was real.

The Legendre (latitude) half of every transform is applied as one dense
matrix contraction over the flattened ``(l, m)`` index rather than a
Python loop over ``m``: the per-order tables cache analysis/synthesis
matrices of shape ``(ncoef, nlat)`` (value, d/dtheta, d^2/dtheta^2) plus
the per-coefficient phi-mode bookkeeping, so ``forward`` / ``inverse`` /
``derivative_grid`` are an FFT plus a single vectorized contraction.
Transforms themselves are cached per order via :func:`get_transform`.
"""
from __future__ import annotations

import threading

import numpy as np

from ..analysis.contracts import checked
from ..analysis.guard import (PER_ORDER_CACHE_SIZE, freeze,
                              freeze_attributes, locked_cache)
from .alp import (
    normalized_alp,
    normalized_alp_theta_derivative,
    normalized_alp_theta_derivative2,
)
from .grid import SphGrid, get_grid


class _TransformTables:
    """Per-order dense transform machinery (shared by all instances)."""

    def __init__(self, order: int):
        p = order
        grid = get_grid(order)
        self.grid = grid
        P, dP, d2P = normalized_alp_theta_derivative2(order, grid.cos_theta)
        self.P, self.dP, self.d2P = P, dP, d2P

        # Flattened dense (l, m) index of the (p+1, 2p+1) coefficient array.
        ls = np.repeat(np.arange(p + 1), 2 * p + 1)
        ms = np.tile(np.arange(-p, p + 1), p + 1)
        self.ls, self.ms = ls, ms
        #: FFT column holding mode m (negative m wrap around).
        self.cols = ms % grid.nphi
        #: negative-m sign factors of the Y_l^{-m} = (-1)^m conj(Y_l^m)
        #: convention, on the flat (l, m) index.
        self.sign = np.where(ms < 0, (-1.0) ** np.abs(ms), 1.0)
        sign = self.sign
        # S_*[r, j] = sign_m * tab[l, |m|, j]; rows with |m| > l are zero
        # because the ALP tables are zero there.
        self.S_val = sign[:, None] * P[ls, np.abs(ms), :]
        self.S_dth = sign[:, None] * dP[ls, np.abs(ms), :]
        self.S_d2th = sign[:, None] * d2P[ls, np.abs(ms), :]
        #: analysis matrix: S_val with the quadrature weights folded in.
        self.A_lat = self.S_val * grid.glw[None, :]
        self._analysis_dense = None
        self._synthesis_dense = None
        # Guards the lazy dense-matrix builds: concurrent simulations
        # share one table set per order, and an unlocked lazy build
        # races the same way an unlocked factory does.
        self._dense_lock = threading.Lock()
        # One table set per order, shared by every transform/surface of
        # that order via the _transform_tables cache: freeze them.
        freeze_attributes(self)

    def synthesis_tab(self, which: str) -> tuple[np.ndarray, np.ndarray]:
        """(latitude matrix, per-coefficient phi factor) for a derivative."""
        if which in ("theta", "thetaphi"):
            S = self.S_dth
        elif which == "theta2":
            S = self.S_d2th
        else:
            S = self.S_val
        if which in ("phi", "thetaphi"):
            fac = 1j * self.ms
        elif which == "phi2":
            fac = -(self.ms.astype(float) ** 2)
        else:
            fac = np.ones(self.ms.size)
        return S, fac

    def analysis_dense(self) -> np.ndarray:
        """Full dense analysis matrix ``A``: ``c.ravel() = A @ f.ravel()``.

        Shape ``((p+1)(2p+1), nlat * nphi)`` complex; built lazily (only
        operator-assembly code paths need it).
        """
        if self._analysis_dense is None:
            with self._dense_lock:
                if self._analysis_dense is None:
                    grid = self.grid
                    phase = np.exp(-1j * np.outer(self.ms, grid.phi))
                    A = (self.A_lat[:, :, None] * phase[:, None, :]
                         * (2.0 * np.pi / grid.nphi))
                    self._analysis_dense = freeze(
                        A.reshape(self.ms.size, grid.n_points))
        return self._analysis_dense

    def synthesis_dense(self) -> np.ndarray:
        """Full dense synthesis matrix ``S``: ``f.ravel() = S @ c.ravel()``
        (real part for real fields). Shape ``(nlat * nphi, (p+1)(2p+1))``."""
        if self._synthesis_dense is None:
            with self._dense_lock:
                if self._synthesis_dense is None:
                    grid = self.grid
                    phase = np.exp(1j * np.outer(self.ms, grid.phi))
                    S = self.S_val[:, :, None] * phase[:, None, :]
                    self._synthesis_dense = freeze(
                        S.reshape(self.ms.size, grid.n_points).T.copy())
        return self._synthesis_dense


@locked_cache(maxsize=PER_ORDER_CACHE_SIZE)
def _transform_tables(order: int) -> _TransformTables:
    return _TransformTables(order)


class SHTransform:
    """Reusable transform object for a fixed order ``p``.

    The heavy tables are cached per order, so constructing these objects
    is cheap; prefer :func:`get_transform` to share instances outright.
    """

    def __init__(self, order: int):
        self.order = int(order)
        self._tab = _transform_tables(self.order)
        self.grid: SphGrid = self._tab.grid
        self._P, self._dP, self._d2P = (self._tab.P, self._tab.dP,
                                        self._tab.d2P)

    # -- analysis ---------------------------------------------------------
    @checked(f="(..., nlat, nphi)", out="(..., nlat, m) c16")
    def forward(self, f: np.ndarray) -> np.ndarray:
        """Forward SHT of a real or complex field of shape (..., nlat, nphi).

        Returns coefficients ``c`` of shape ``(..., p+1, 2p+1)`` with
        column index ``m + p``; leading axes are batch dimensions (e.g.
        the three coordinates of a vector field, transformed in one call).
        """
        p = self.order
        grid = self.grid
        tab = self._tab
        f = np.asarray(f)
        if f.shape[-2:] != (grid.nlat, grid.nphi):
            raise ValueError(f"expected field of shape {(grid.nlat, grid.nphi)}")
        # Fourier analysis in phi: F[j, m] = (2 pi / nphi) sum_k f e^{-im phi_k}
        F = np.fft.fft(f, axis=-1) * (2.0 * np.pi / grid.nphi)
        # Legendre analysis as one contraction over the flat (l, m) index:
        # c_lm = sum_j A_lat[lm, j] F[j, col(m)].
        c = np.einsum("rj,...jr->...r", tab.A_lat, F[..., tab.cols])
        return c.reshape(*f.shape[:-2], p + 1, 2 * p + 1)

    def analysis_matrix(self) -> np.ndarray:
        """Dense analysis operator: ``forward(f).ravel() == A @ f.ravel()``."""
        return self._tab.analysis_dense()

    def analysis_latitude_matrix(self) -> np.ndarray:
        """The latitude factor of the analysis operator (real).

        The forward transform separates exactly into a longitude DFT and
        a latitude contraction: on the flat ``(l, m)`` index,

        ``A[(l, m), (j, s)] = A_lat[(l, m), j] exp(-i m phi_s) (2 pi / nphi)``

        with ``A_lat`` real (quadrature-weighted associated Legendre
        values, negative-``m`` sign convention folded in). Because the
        longitudes are uniform, shifting the source column ``s`` by ``t``
        equals multiplying row ``(l, m)`` by ``exp(i m phi_t)`` — the
        azimuthal-shift structure the block-circulant self-interaction
        assembly diagonalizes with FFTs. Shape ``((p+1)(2p+1), nlat)``.
        """
        return self._tab.A_lat

    def synthesis_matrix(self) -> np.ndarray:
        """Dense synthesis operator: ``inverse(c) == (S @ c.ravel()).real``."""
        return self._tab.synthesis_dense()

    # -- synthesis --------------------------------------------------------
    def _grid_synthesis(self, c: np.ndarray, which: str,
                        real: bool) -> np.ndarray:
        """Shared synthesis path of :meth:`inverse` / :meth:`derivative_grid`:
        one latitude contraction, a phi-mode scatter, and an inverse FFT.
        Leading axes of ``c`` are batch dimensions."""
        p = self.order
        grid = self.grid
        tab = self._tab
        S, fac = tab.synthesis_tab(which)
        c = np.asarray(c)
        lead = c.shape[:-2]
        cf = c.reshape(*lead, -1) * fac
        # G[r, j] = S[r, j] c_r, folded over l for each m: (2p+1, nlat).
        G = (S * cf[..., None]).reshape(*lead, p + 1, 2 * p + 1,
                                        grid.nlat).sum(axis=-3)
        F = np.zeros((*lead, grid.nlat, grid.nphi), dtype=complex)
        F[..., tab.cols[: 2 * p + 1]] = np.swapaxes(G, -1, -2)
        f = np.fft.ifft(F * grid.nphi, axis=-1)
        return f.real if real else f

    def inverse(self, c: np.ndarray, real: bool = True) -> np.ndarray:
        """Synthesize the field on the native grid from coefficients."""
        return self._grid_synthesis(c, "none", real)

    def _synth_with_tables(self, c, tab, phi, derivative):
        t = self._tab
        phi = np.asarray(phi, dtype=float).ravel()
        B = t.sign[:, None] * tab[t.ls, np.abs(t.ms), :]  # (ncoef, npts)
        cf = np.asarray(c).ravel().copy()
        if derivative in ("phi", "thetaphi"):
            cf = cf * (1j * t.ms)
        elif derivative == "phi2":
            cf = cf * (-(t.ms.astype(float) ** 2))
        phase = np.exp(1j * np.outer(t.ms, phi))
        return ((B * phase).T @ cf)

    def evaluate(self, c: np.ndarray, theta: np.ndarray, phi: np.ndarray,
                 derivative: str = "none", real: bool = True) -> np.ndarray:
        """Evaluate the SH series (or an angular derivative) at points.

        ``derivative`` is one of ``"none"``, ``"theta"``, ``"phi"``,
        ``"theta2"``, ``"thetaphi"``, ``"phi2"``. Points may not lie on the
        poles when a theta derivative is requested.
        """
        p = self.order
        theta = np.asarray(theta, dtype=float).ravel()
        x = np.cos(theta)
        if derivative in ("theta", "thetaphi"):
            tab = normalized_alp_theta_derivative(p, x)[1]
        elif derivative == "theta2":
            tab = normalized_alp_theta_derivative2(p, x)[2]
        else:
            tab = normalized_alp(p, x)
        out = self._synth_with_tables(c, tab, phi, derivative)
        return out.real if real else out

    # -- spectral derivatives on the native grid --------------------------
    def derivative_grid(self, c: np.ndarray, which: str, real: bool = True) -> np.ndarray:
        """Evaluate an angular derivative of the series on the native grid.

        ``which`` is one of ``"none"``, ``"theta"``, ``"phi"``, ``"theta2"``,
        ``"thetaphi"``, ``"phi2"``. Derivatives are exact for band-limited
        series (no product aliasing is introduced here).
        """
        return self._grid_synthesis(c, which, real)

    # -- resampling --------------------------------------------------------
    def resample(self, c: np.ndarray, new_order: int, real: bool = True) -> np.ndarray:
        """Synthesize on the grid of a different order (up/downsampling).

        Upsampling is exact; downsampling truncates the expansion.
        """
        q = int(new_order)
        p = self.order
        c = np.asarray(c)
        cq = np.zeros((*c.shape[:-2], q + 1, 2 * q + 1), dtype=complex)
        lm = min(p, q)
        # Entries outside the (l, |m| <= l) triangle are zero, so the
        # triangle-preserving copy is a single block slice.
        cq[..., : lm + 1, q - lm: q + lm + 1] = \
            c[..., : lm + 1, p - lm: p + lm + 1]
        return get_transform(q).inverse(cq, real=real)


@locked_cache(maxsize=PER_ORDER_CACHE_SIZE)
def get_transform(order: int) -> SHTransform:
    """Cached per-order transform accessor (instances are stateless).

    Bound and build-locking follow the shared-table cache policy in
    :mod:`repro.analysis.guard` (``PER_ORDER_CACHE_SIZE``): concurrent
    first calls build once, and mixed-order sweeps never evict a live
    scene's tables."""
    return SHTransform(order)


def sht(f: np.ndarray, order: int | None = None) -> np.ndarray:
    """One-shot forward transform; infers the order from the grid shape."""
    f = np.asarray(f)
    if order is None:
        order = f.shape[0] - 1
    return get_transform(order).forward(f)


def isht(c: np.ndarray, real: bool = True) -> np.ndarray:
    """One-shot inverse transform; infers the order from ``c``."""
    order = c.shape[0] - 1
    return get_transform(order).inverse(c, real=real)

"""Forward and inverse spherical-harmonic transforms.

The forward transform combines an FFT in longitude with Gauss-Legendre
quadrature in colatitude; it is exact for fields band-limited at the grid
order. Coefficients are stored densely as a complex array ``c[l, m + p]``
for ``0 <= l <= p`` and ``-l <= m <= l`` (entries outside the triangle are
zero). Real fields keep the Hermitian symmetry ``c[l, -m] = (-1)^m
conj(c[l, m])``; we store the full complex triangle for simplicity and
return real grids from synthesis when the input was real.
"""
from __future__ import annotations

from functools import lru_cache

import numpy as np

from .alp import (
    normalized_alp,
    normalized_alp_theta_derivative,
    normalized_alp_theta_derivative2,
)
from .grid import SphGrid, get_grid


@lru_cache(maxsize=32)
def _analysis_tables(order: int):
    """Precompute ALP tables on the grid colatitudes for a given order."""
    grid = get_grid(order)
    P, dP, d2P = normalized_alp_theta_derivative2(order, grid.cos_theta)
    return grid, P, dP, d2P


class SHTransform:
    """Reusable transform object for a fixed order ``p``.

    The heavy trigonometric tables are cached per order, so constructing
    these objects is cheap.
    """

    def __init__(self, order: int):
        self.order = int(order)
        self.grid, self._P, self._dP, self._d2P = _analysis_tables(self.order)

    # -- analysis ---------------------------------------------------------
    def forward(self, f: np.ndarray) -> np.ndarray:
        """Forward SHT of a real or complex field of shape (nlat, nphi).

        Returns coefficients ``c`` of shape ``(p+1, 2p+1)`` with column
        index ``m + p``.
        """
        p = self.order
        grid = self.grid
        f = np.asarray(f)
        if f.shape != (grid.nlat, grid.nphi):
            raise ValueError(f"expected field of shape {(grid.nlat, grid.nphi)}")
        # Fourier analysis in phi: F[j, m] = (2 pi / nphi) sum_k f e^{-im phi_k}
        F = np.fft.fft(f, axis=1) * (2.0 * np.pi / grid.nphi)
        c = np.zeros((p + 1, 2 * p + 1), dtype=complex)
        wj = grid.glw  # includes sin(theta) dtheta Jacobian
        for m in range(0, p + 1):
            Fm = F[:, m]  # (nlat,)
            # c_l^m = sum_j w_j Pbar_l^m(x_j) F_m(theta_j)
            c[m:, p + m] = (self._P[m:, m] * (wj * Fm)[None, :]).sum(axis=1)
            if m > 0:
                Fmneg = F[:, grid.nphi - m]
                sign = (-1.0) ** m
                # Pbar_l^{-m} relation: Y_l^{-m} = (-1)^m conj(Y_l^m) =>
                # use the same Pbar with the sign factor.
                c[m:, p - m] = sign * (self._P[m:, m] * (wj * Fmneg)[None, :]).sum(axis=1)
        return c

    # -- synthesis --------------------------------------------------------
    def inverse(self, c: np.ndarray, real: bool = True) -> np.ndarray:
        """Synthesize the field on the native grid from coefficients."""
        p = self.order
        grid = self.grid
        F = np.zeros((grid.nlat, grid.nphi), dtype=complex)
        for m in range(0, p + 1):
            col = (self._P[m:, m] * c[m:, p + m][:, None]).sum(axis=0)
            F[:, m] = col
            if m > 0:
                sign = (-1.0) ** m
                F[:, grid.nphi - m] = sign * (self._P[m:, m] * c[m:, p - m][:, None]).sum(axis=0)
        f = np.fft.ifft(F * grid.nphi, axis=1)
        return f.real if real else f

    def _synth_with_tables(self, c, tab, theta, phi, derivative):
        p = self.order
        theta = np.asarray(theta, dtype=float).ravel()
        phi = np.asarray(phi, dtype=float).ravel()
        npts = theta.size
        out = np.zeros(npts, dtype=complex)
        for m in range(-p, p + 1):
            am = abs(m)
            basis = tab[am:, am, :]  # (p+1-am, npts)
            coef = c[am:, p + m]
            radial = (basis * coef[:, None]).sum(axis=0)
            if m < 0:
                radial = radial * (-1.0) ** am
            phase = np.exp(1j * m * phi)
            if derivative in ("phi", "thetaphi"):
                phase = phase * (1j * m)
            elif derivative == "phi2":
                phase = phase * (-(m * m))
            out += radial * phase
        return out

    def evaluate(self, c: np.ndarray, theta: np.ndarray, phi: np.ndarray,
                 derivative: str = "none", real: bool = True) -> np.ndarray:
        """Evaluate the SH series (or an angular derivative) at points.

        ``derivative`` is one of ``"none"``, ``"theta"``, ``"phi"``,
        ``"theta2"``, ``"thetaphi"``, ``"phi2"``. Points may not lie on the
        poles when a theta derivative is requested.
        """
        p = self.order
        theta = np.asarray(theta, dtype=float).ravel()
        x = np.cos(theta)
        if derivative in ("theta", "thetaphi"):
            tab = normalized_alp_theta_derivative(p, x)[1]
        elif derivative == "theta2":
            tab = normalized_alp_theta_derivative2(p, x)[2]
        else:
            tab = normalized_alp(p, x)
        out = self._synth_with_tables(c, tab, theta, phi, derivative)
        return out.real if real else out

    # -- spectral derivatives on the native grid --------------------------
    def derivative_grid(self, c: np.ndarray, which: str, real: bool = True) -> np.ndarray:
        """Evaluate an angular derivative of the series on the native grid.

        ``which`` is one of ``"none"``, ``"theta"``, ``"phi"``, ``"theta2"``,
        ``"thetaphi"``, ``"phi2"``. Derivatives are exact for band-limited
        series (no product aliasing is introduced here).
        """
        p = self.order
        grid = self.grid
        F = np.zeros((grid.nlat, grid.nphi), dtype=complex)
        if which in ("theta", "thetaphi"):
            tab = self._dP
        elif which == "theta2":
            tab = self._d2P
        else:
            tab = self._P
        for m in range(0, p + 1):
            col = (tab[m:, m] * c[m:, p + m][:, None]).sum(axis=0)
            colneg = None
            if m > 0:
                sign = (-1.0) ** m
                colneg = sign * (tab[m:, m] * c[m:, p - m][:, None]).sum(axis=0)
            if which in ("phi", "thetaphi"):
                col = col * (1j * m)
                if colneg is not None:
                    colneg = colneg * (-1j * m)
            elif which == "phi2":
                col = col * (-(m * m))
                if colneg is not None:
                    colneg = colneg * (-(m * m))
            F[:, m] = col
            if colneg is not None:
                F[:, grid.nphi - m] = colneg
        f = np.fft.ifft(F * grid.nphi, axis=1)
        return f.real if real else f

    # -- resampling --------------------------------------------------------
    def resample(self, c: np.ndarray, new_order: int, real: bool = True) -> np.ndarray:
        """Synthesize on the grid of a different order (up/downsampling).

        Upsampling is exact; downsampling truncates the expansion.
        """
        q = int(new_order)
        cq = np.zeros((q + 1, 2 * q + 1), dtype=complex)
        p = self.order
        lm = min(p, q)
        for l in range(lm + 1):
            for m in range(-l, l + 1):
                cq[l, q + m] = c[l, p + m]
        return SHTransform(q).inverse(cq, real=real)


def sht(f: np.ndarray, order: int | None = None) -> np.ndarray:
    """One-shot forward transform; infers the order from the grid shape."""
    f = np.asarray(f)
    if order is None:
        order = f.shape[0] - 1
    return SHTransform(order).forward(f)


def isht(c: np.ndarray, real: bool = True) -> np.ndarray:
    """One-shot inverse transform; infers the order from ``c``."""
    order = c.shape[0] - 1
    return SHTransform(order).inverse(c, real=real)

"""Near-singular evaluation of a cell's single-layer potential.

For targets close to (but not on) an RBC surface, the smooth quadrature of
the single layer loses accuracy. Following the paper (Sec. 2.2, citing
[28, 43] and the check-point idea of [58]): compute the velocity *on* the
surface at the closest point with the singular rotation quadrature, compute
it at check points placed along the outward normal with upsampled smooth
quadrature, and interpolate between them to the target distance.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels import stokes_slp_apply
from ..quadrature.interpolation import barycentric_matrix, barycentric_weights
from ..sph import SHTransform
from ..sph.alp import normalized_alp, normalized_alp_theta_derivative2
from ..sph.rotation import rotated_sphere_points
from ..quadrature import gauss_legendre
from ..surfaces import SpectralSurface
from .self_interaction import pack_coeffs, _coeff_index

_POLE_GUARD = 1e-7


def _synthesize(surface: SpectralSurface, coeff_stack: np.ndarray,
                theta: np.ndarray, phi: np.ndarray, derivs: bool = False):
    """Evaluate several packed series at arbitrary sphere points.

    ``coeff_stack`` has shape (ncoef, k). Returns values (n, k) and, when
    ``derivs``, first and second parametric derivatives as well.
    """
    p = surface.order
    ls, ms = _coeff_index(p)
    theta = np.clip(np.asarray(theta, float).ravel(), _POLE_GUARD, np.pi - _POLE_GUARD)
    phi = np.asarray(phi, float).ravel()
    x = np.cos(theta)
    if derivs:
        P, dP, d2P = normalized_alp_theta_derivative2(p, x)
    else:
        P = normalized_alp(p, x)
    sign = np.where(ms < 0, (-1.0) ** np.abs(ms), 1.0)
    phase = np.exp(1j * ms[None, :] * phi[:, None])
    Bv = P[ls, np.abs(ms), :].T * sign[None, :] * phase
    val = (Bv @ coeff_stack).real
    if not derivs:
        return val
    Bt = dP[ls, np.abs(ms), :].T * sign[None, :] * phase
    Bp = Bv * (1j * ms)[None, :]
    Btt = d2P[ls, np.abs(ms), :].T * sign[None, :] * phase
    Btp = Bt * (1j * ms)[None, :]
    Bpp = Bv * (-(ms ** 2))[None, :]
    return (val, (Bt @ coeff_stack).real, (Bp @ coeff_stack).real,
            (Btt @ coeff_stack).real, (Btp @ coeff_stack).real,
            (Bpp @ coeff_stack).real)


class CellNearEvaluator:
    """Evaluates one cell's single-layer velocity anywhere in the fluid.

    Parameters
    ----------
    surface:
        The source cell.
    viscosity:
        Fluid viscosity.
    upsample_order:
        Order of the fine grid used for smooth quadrature (default 2p).
    check_order:
        Number of interpolation nodes (closest point + check points).
    """

    def __init__(self, surface: SpectralSurface, viscosity: float = 1.0,
                 upsample_order: Optional[int] = None, check_order: int = 6):
        self.surface = surface
        self.viscosity = viscosity
        p = surface.order
        self.up_order = upsample_order or 2 * p
        self.check_order = check_order
        self.refresh()

    def refresh(self) -> None:
        """Re-evaluate position-dependent caches after the surface moved."""
        surface = self.surface
        self._fine = surface.upsampled(self.up_order)
        self._fine_w = self._fine.quadrature_weights()
        # Characteristic resolution of the *fine* grid: the smooth
        # quadrature is accurate a few fine-grid spacings off the surface.
        self.h = float(np.sqrt(surface.area() / self._fine.n_points))
        #: targets closer than this need the near scheme.
        self.near_distance = 3.0 * self.h
        self._cX_packed = np.stack(
            [pack_coeffs(surface.coeffs()[k]) for k in range(3)], axis=1)

    # -- closest point ------------------------------------------------------
    def closest_point(self, x: np.ndarray, newton_iters: int = 12
                      ) -> tuple[float, float, np.ndarray, float]:
        """Closest point on the cell to ``x``.

        Returns ``(theta, phi, y, distance)``; Newton on the squared
        distance in parameter space, seeded from the best fine-grid node.
        """
        x = np.asarray(x, float)
        fine_pts = self._fine.points
        d2 = np.einsum("nk,nk->n", fine_pts - x, fine_pts - x)
        i0 = int(np.argmin(d2))
        g = self._fine.grid
        th = g.theta[i0 // g.nphi]
        ph = g.phi[i0 % g.nphi]
        for _ in range(newton_iters):
            X, Xt, Xp, Xtt, Xtp, Xpp = _synthesize(
                self.surface, self._cX_packed, np.array([th]), np.array([ph]),
                derivs=True)
            rvec = (X[0] - x)
            grad = np.array([rvec @ Xt[0], rvec @ Xp[0]])
            Hmat = np.array([
                [Xt[0] @ Xt[0] + rvec @ Xtt[0], Xt[0] @ Xp[0] + rvec @ Xtp[0]],
                [Xt[0] @ Xp[0] + rvec @ Xtp[0], Xp[0] @ Xp[0] + rvec @ Xpp[0]],
            ])
            try:
                step = np.linalg.solve(Hmat, grad)
            except np.linalg.LinAlgError:
                break
            # Backtracking line search on the squared distance.
            f0 = 0.5 * float(rvec @ rvec)
            t = 1.0
            for _ in range(20):
                th_n = np.clip(th - t * step[0], _POLE_GUARD, np.pi - _POLE_GUARD)
                ph_n = (ph - t * step[1]) % (2.0 * np.pi)
                Xn = _synthesize(self.surface, self._cX_packed,
                                 np.array([th_n]), np.array([ph_n]))
                fn = 0.5 * float(np.sum((Xn[0] - x) ** 2))
                if fn <= f0:
                    th, ph = th_n, ph_n
                    break
                t *= 0.5
            if np.linalg.norm(t * step) < 1e-12:
                break
        y = _synthesize(self.surface, self._cX_packed,
                        np.array([th]), np.array([ph]))[0]
        return float(th), float(ph), y, float(np.linalg.norm(y - x))

    def _surface_normal_at(self, th: float, ph: float) -> np.ndarray:
        _, Xt, Xp, *_ = _synthesize(self.surface, self._cX_packed,
                                    np.array([th]), np.array([ph]), derivs=True)
        n = np.cross(Xt[0], Xp[0])
        return n / np.linalg.norm(n)

    # -- singular on-surface value at an arbitrary surface point -------------
    def on_surface_velocity(self, th: float, ph: float,
                            density: np.ndarray) -> np.ndarray:
        """Rotation-quadrature single-layer value at surface point (th, ph)."""
        surf = self.surface
        p = surf.order
        q = self.up_order
        npsi, nalpha = q + 1, 2 * q + 2
        psi, wpsi = gauss_legendre(npsi, 0.0, np.pi)
        wpsi = wpsi * np.sin(psi)
        alpha = 2.0 * np.pi * np.arange(nalpha) / nalpha
        PSI, ALPHA = np.meshgrid(psi, alpha, indexing="ij")
        th_r, ph_r = rotated_sphere_points(th, ph, PSI.ravel(), ALPHA.ravel())
        density = np.asarray(density, float).reshape(surf.grid.nlat,
                                                     surf.grid.nphi, 3)
        cf = np.stack([pack_coeffs(surf.transform.forward(density[:, :, k]))
                       for k in range(3)], axis=1)
        stack = np.concatenate([self._cX_packed, cf], axis=1)
        X, Xt, Xp, *_ = _synthesize(surf, stack, th_r, ph_r, derivs=True)
        Xr, fr = X[:, :3], X[:, 3:]
        W = np.linalg.norm(np.cross(Xt[:, :3], Xp[:, :3]), axis=-1)
        th_rc = np.clip(th_r, _POLE_GUARD, np.pi - _POLE_GUARD)
        wq = (np.outer(wpsi, np.full(nalpha, 2.0 * np.pi / nalpha)).ravel()
              * W / np.sin(th_rc))
        x0 = _synthesize(surf, self._cX_packed, np.array([th]), np.array([ph]))[0]
        r = x0[None, :] - Xr
        r2 = np.einsum("nk,nk->n", r, r)
        inv_r = 1.0 / np.sqrt(r2)
        fw = fr * wq[:, None]
        rf = np.einsum("nk,nk->n", r, fw)
        scale = 1.0 / (8.0 * np.pi * self.viscosity)
        return scale * ((inv_r[:, None] * fw).sum(axis=0)
                        + (rf * inv_r ** 3)[:, None].T @ r).ravel()

    # -- public evaluation ----------------------------------------------------
    def weighted_fine_density(self, density: np.ndarray) -> np.ndarray:
        """Quadrature-weighted density on the fine grid: the source strengths
        of the smooth far quadrature. Shape ``(fine_nlat, fine_nphi, 3)``.

        Computing this once per step and passing it to :meth:`evaluate` for
        every target batch avoids re-upsampling the same density per batch.
        """
        density = np.asarray(density, float).reshape(self.surface.grid.nlat,
                                                     self.surface.grid.nphi, 3)
        T = self.surface.transform
        dens_fine = np.stack([
            T.resample(T.forward(density[:, :, k]), self.up_order)
            for k in range(3)], axis=-1)
        return dens_fine * self._fine_w[..., None]

    def evaluate(self, density: np.ndarray, targets: np.ndarray,
                 fine_weighted: Optional[np.ndarray] = None) -> np.ndarray:
        """Velocity at arbitrary targets due to this cell's single layer."""
        targets = np.atleast_2d(np.asarray(targets, float))
        density = np.asarray(density, float).reshape(self.surface.grid.nlat,
                                                     self.surface.grid.nphi, 3)
        fw = (fine_weighted if fine_weighted is not None
              else self.weighted_fine_density(density))
        out = stokes_slp_apply(self._fine.points, fw.reshape(-1, 3), targets,
                               self.viscosity)
        # Identify near targets by distance to the fine point cloud.
        fine_pts = self._fine.points
        for t_idx in range(targets.shape[0]):
            x = targets[t_idx]
            dmin = np.sqrt(np.min(np.einsum("nk,nk->n", fine_pts - x,
                                            fine_pts - x)))
            if dmin >= self.near_distance:
                continue
            out[t_idx] = self._near_value(density, fw, x)
        return out

    def _near_value(self, density: np.ndarray, fine_weighted: np.ndarray,
                    x: np.ndarray) -> np.ndarray:
        th, ph, y, d = self.closest_point(x)
        n = self._surface_normal_at(th, ph)
        # Signed distance: positive along outward normal. Cell-cell targets
        # are always exterior; near interior targets (which only occur in
        # diagnostics) mirror to the interior side.
        sgn = float(np.sign((x - y) @ n)) or 1.0
        ds = sgn * d
        # Interpolation nodes: 0 (on-surface, singular quadrature) plus
        # check points from the first trusted distance outward.
        p_chk = self.check_order
        ts = sgn * (self.near_distance + self.h * np.arange(p_chk))
        ts = np.concatenate([[0.0], ts])
        vals = np.empty((ts.size, 3))
        vals[0] = self.on_surface_velocity(th, ph, density)
        checks = y[None, :] + ts[1:, None] * n[None, :]
        vals[1:] = stokes_slp_apply(self._fine.points,
                                    fine_weighted.reshape(-1, 3), checks,
                                    self.viscosity)
        w = barycentric_weights(ts)
        M = barycentric_matrix(ts, np.array([ds]), w)
        return (M @ vals).ravel()

"""Near-singular evaluation of a cell's single-layer potential.

For targets close to (but not on) an RBC surface, the smooth quadrature of
the single layer loses accuracy. Following the paper (Sec. 2.2, citing
[28, 43] and the check-point idea of [58]): compute the velocity *on* the
surface at the closest point with the singular rotation quadrature, compute
it at check points placed along the outward normal with upsampled smooth
quadrature, and interpolate between them to the target distance.

The whole near pipeline is batched: near targets are found with one
vectorized (chunked) min-distance sweep behind a bounding-sphere
prefilter, the closest-point Newton iteration runs on all near targets at
once, the on-surface rotation quadrature stacks every target's rotated
nodes into a handful of synthesis calls, all check points go through a
single :func:`stokes_slp_apply`, and the density's forward SHT is hoisted
out of the per-target path entirely.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels import stokes_slp_apply
from ..quadrature.interpolation import barycentric_matrix, barycentric_weights
from ..sph.alp import normalized_alp, normalized_alp_theta_derivative2
from ..sph.rotation import rotated_sphere_points_batch
from ..quadrature import gauss_legendre
from ..surfaces import SpectralSurface
from .self_interaction import pack_coeffs, _coeff_index

_POLE_GUARD = 1e-7
#: chunk sizes bounding transient ALP-table memory in the batched paths.
_DIST_CHUNK = 512
_SYNTH_POINT_BUDGET = 8192


def _synthesize(surface: SpectralSurface, coeff_stack: np.ndarray,
                theta: np.ndarray, phi: np.ndarray, derivs: bool = False):
    """Evaluate several packed series at arbitrary sphere points.

    ``coeff_stack`` has shape (ncoef, k). Returns values (n, k) and, when
    ``derivs``, first and second parametric derivatives as well.
    """
    p = surface.order
    ls, ms = _coeff_index(p)
    theta = np.clip(np.asarray(theta, float).ravel(), _POLE_GUARD, np.pi - _POLE_GUARD)
    phi = np.asarray(phi, float).ravel()
    x = np.cos(theta)
    if derivs:
        P, dP, d2P = normalized_alp_theta_derivative2(p, x)
    else:
        P = normalized_alp(p, x)
    sign = np.where(ms < 0, (-1.0) ** np.abs(ms), 1.0)
    phase = np.exp(1j * ms[None, :] * phi[:, None])
    Bv = P[ls, np.abs(ms), :].T * sign[None, :] * phase
    val = (Bv @ coeff_stack).real
    if not derivs:
        return val
    Bt = dP[ls, np.abs(ms), :].T * sign[None, :] * phase
    Bp = Bv * (1j * ms)[None, :]
    Btt = d2P[ls, np.abs(ms), :].T * sign[None, :] * phase
    Btp = Bt * (1j * ms)[None, :]
    Bpp = Bv * (-(ms ** 2))[None, :]
    return (val, (Bt @ coeff_stack).real, (Bp @ coeff_stack).real,
            (Btt @ coeff_stack).real, (Btp @ coeff_stack).real,
            (Bpp @ coeff_stack).real)


class CellNearEvaluator:
    """Evaluates one cell's single-layer velocity anywhere in the fluid.

    Parameters
    ----------
    surface:
        The source cell.
    viscosity:
        Fluid viscosity.
    upsample_order:
        Order of the fine grid used for smooth quadrature (default 2p).
    check_order:
        Number of interpolation nodes (closest point + check points).
    farfield_dtype:
        ``"float32"`` evaluates the smooth *far* quadrature (the bulk
        :func:`stokes_slp_apply` over the fine grid) in single
        precision; the near scheme — singular on-surface values, check
        points, interpolation — always stays float64.
    """

    def __init__(self, surface: SpectralSurface, viscosity: float = 1.0,
                 upsample_order: Optional[int] = None, check_order: int = 6,
                 farfield_dtype: str = "float64"):
        self.surface = surface
        self.viscosity = viscosity
        self.farfield_dtype = str(farfield_dtype)
        self._far_dtype = (None if self.farfield_dtype == "float64"
                           else self.farfield_dtype)
        p = surface.order
        self.up_order = upsample_order or 2 * p
        self.check_order = check_order
        # Rotation quadrature rule of the on-surface singular values
        # (order-dependent only; hoisted out of the per-target path).
        q = self.up_order
        npsi, nalpha = q + 1, 2 * q + 2
        psi, wpsi = gauss_legendre(npsi, 0.0, np.pi)
        wpsi = wpsi * np.sin(psi)
        alpha = 2.0 * np.pi * np.arange(nalpha) / nalpha
        PSI, ALPHA = np.meshgrid(psi, alpha, indexing="ij")
        self._rot_psi = PSI.ravel()
        self._rot_alpha = ALPHA.ravel()
        self._rot_w = np.outer(wpsi, np.full(nalpha, 2.0 * np.pi / nalpha)).ravel()
        self.refresh()

    def refresh(self) -> None:
        """Re-evaluate position-dependent caches after the surface moved."""
        surface = self.surface
        self._fine = surface.upsampled(self.up_order)
        self._fine_w = self._fine.quadrature_weights()
        # Characteristic resolution of the *fine* grid: the smooth
        # quadrature is accurate a few fine-grid spacings off the surface.
        self.h = float(np.sqrt(surface.area() / self._fine.n_points))
        #: targets closer than this need the near scheme.
        self.near_distance = 3.0 * self.h
        self._cX_packed = pack_coeffs(surface.coeffs()).T
        # Bounding sphere of the fine cloud: the broadphase filter in
        # front of the exact min-distance near test.
        pts = self._fine.points
        self._center = pts.mean(axis=0)
        self._radius = float(np.linalg.norm(pts - self._center, axis=1).max())
        # Interpolation geometry of the check-point scheme. The nodes for
        # an interior target are the mirror image of these; barycentric
        # interpolation is invariant under that reflection, so one weight
        # set serves both sides.
        self._check_ts = np.concatenate(
            [[0.0], self.near_distance + self.h * np.arange(self.check_order)])
        self._check_w = barycentric_weights(self._check_ts)

    # -- closest point ------------------------------------------------------
    def _nearest_fine_nodes(self, x: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Closest fine-grid node to each target: ``(index, squared
        distance)``, computed in chunks."""
        fine_pts = self._fine.points
        i0 = np.empty(x.shape[0], dtype=int)
        dmin2 = np.empty(x.shape[0])
        for a in range(0, x.shape[0], _DIST_CHUNK):
            diff = x[a:a + _DIST_CHUNK, None, :] - fine_pts[None, :, :]
            d2 = np.einsum("tnk,tnk->tn", diff, diff)
            best = np.argmin(d2, axis=1)
            i0[a:a + _DIST_CHUNK] = best
            dmin2[a:a + _DIST_CHUNK] = d2[np.arange(best.size), best]
        return i0, dmin2

    def closest_points(self, x: np.ndarray, newton_iters: int = 12,
                       seeds: Optional[np.ndarray] = None
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Closest surface points to a batch of targets ``x`` (n, 3).

        Returns ``(theta, phi, y, distance)`` arrays; Newton on the
        squared distance in parameter space for all targets at once,
        seeded from the best fine-grid node (``seeds``, an index array
        into the fine point cloud, skips that scan when the caller — the
        near filter — already found the nearest nodes).
        """
        x = np.atleast_2d(np.asarray(x, float))
        n = x.shape[0]
        g = self._fine.grid
        i0 = self._nearest_fine_nodes(x)[0] if seeds is None else seeds
        th = g.theta[i0 // g.nphi].copy()
        ph = g.phi[i0 % g.nphi].copy()
        active = np.ones(n, dtype=bool)
        for _ in range(newton_iters):
            idx = np.nonzero(active)[0]
            if idx.size == 0:
                break
            X, Xt, Xp, Xtt, Xtp, Xpp = _synthesize(
                self.surface, self._cX_packed, th[idx], ph[idx], derivs=True)
            rvec = X - x[idx]
            g1 = np.einsum("nk,nk->n", rvec, Xt)
            g2 = np.einsum("nk,nk->n", rvec, Xp)
            H11 = np.einsum("nk,nk->n", Xt, Xt) + np.einsum("nk,nk->n", rvec, Xtt)
            H12 = np.einsum("nk,nk->n", Xt, Xp) + np.einsum("nk,nk->n", rvec, Xtp)
            H22 = np.einsum("nk,nk->n", Xp, Xp) + np.einsum("nk,nk->n", rvec, Xpp)
            det = H11 * H22 - H12 * H12
            solvable = np.abs(det) > 0.0
            active[idx[~solvable]] = False
            idx = idx[solvable]
            if idx.size == 0:
                break
            sel = solvable
            step = np.stack([
                (H22[sel] * g1[sel] - H12[sel] * g2[sel]) / det[sel],
                (H11[sel] * g2[sel] - H12[sel] * g1[sel]) / det[sel]], axis=1)
            f0 = 0.5 * np.einsum("nk,nk->n", rvec[sel], rvec[sel])
            # Backtracking line search on the squared distance, batched:
            # halve each target's step until its objective stops growing.
            t = np.ones(idx.size)
            accepted = np.zeros(idx.size, dtype=bool)
            for _ in range(20):
                rem = np.nonzero(~accepted)[0]
                if rem.size == 0:
                    break
                th_c = np.clip(th[idx[rem]] - t[rem] * step[rem, 0],
                               _POLE_GUARD, np.pi - _POLE_GUARD)
                ph_c = (ph[idx[rem]] - t[rem] * step[rem, 1]) % (2.0 * np.pi)
                Xn = _synthesize(self.surface, self._cX_packed, th_c, ph_c)
                fn = 0.5 * np.einsum("nk,nk->n", Xn - x[idx[rem]],
                                     Xn - x[idx[rem]])
                ok = fn <= f0[rem]
                th[idx[rem[ok]]] = th_c[ok]
                ph[idx[rem[ok]]] = ph_c[ok]
                accepted[rem[ok]] = True
                t[rem[~ok]] *= 0.5
            converged = np.linalg.norm(t[:, None] * step, axis=1) < 1e-12
            active[idx[converged]] = False
        y = _synthesize(self.surface, self._cX_packed, th, ph)
        return th, ph, y, np.linalg.norm(y - x, axis=1)

    def closest_point(self, x: np.ndarray, newton_iters: int = 12
                      ) -> tuple[float, float, np.ndarray, float]:
        """Single-target convenience wrapper around :meth:`closest_points`."""
        th, ph, y, d = self.closest_points(np.asarray(x, float)[None, :],
                                           newton_iters)
        return float(th[0]), float(ph[0]), y[0], float(d[0])

    def _surface_normals_at(self, th: np.ndarray,
                            ph: np.ndarray) -> np.ndarray:
        _, Xt, Xp, *_ = _synthesize(self.surface, self._cX_packed,
                                    th, ph, derivs=True)
        nrm = np.cross(Xt, Xp)
        return nrm / np.linalg.norm(nrm, axis=1, keepdims=True)

    def _surface_normal_at(self, th: float, ph: float) -> np.ndarray:
        return self._surface_normals_at(np.array([th]), np.array([ph]))[0]

    # -- singular on-surface value at arbitrary surface points ---------------
    def _packed_density_coeffs(self, density: np.ndarray) -> np.ndarray:
        density = np.asarray(density, float).reshape(
            self.surface.grid.nlat, self.surface.grid.nphi, 3)
        T = self.surface.transform
        return pack_coeffs(T.forward(np.moveaxis(density, -1, 0))).T

    def _on_surface_velocities(self, th: np.ndarray, ph: np.ndarray,
                               cf: np.ndarray,
                               x0: Optional[np.ndarray] = None) -> np.ndarray:
        """Rotation-quadrature single-layer values at surface points.

        ``cf`` is the packed density coefficient stack (ncoef, 3); ``x0``
        the surface positions at (th, ph) when already known (from the
        closest-point solve). All targets' rotated nodes are stacked into
        chunked synthesis calls, then reduced per target.
        """
        surf = self.surface
        n = th.size
        nrot = self._rot_psi.size
        stack = np.concatenate([self._cX_packed, cf], axis=1)
        out = np.empty((n, 3))
        if x0 is None:
            x0 = _synthesize(surf, self._cX_packed, th, ph)
        scale = 1.0 / (8.0 * np.pi * self.viscosity)
        chunk = max(1, _SYNTH_POINT_BUDGET // nrot)
        for a in range(0, n, chunk):
            sl = slice(a, min(a + chunk, n))
            k = sl.stop - sl.start
            th_r, ph_r = rotated_sphere_points_batch(
                th[sl], ph[sl], self._rot_psi, self._rot_alpha)
            X, Xt, Xp, *_ = _synthesize(surf, stack, th_r.ravel(),
                                        ph_r.ravel(), derivs=True)
            Xr = X[:, :3].reshape(k, nrot, 3)
            fr = X[:, 3:].reshape(k, nrot, 3)
            W = np.linalg.norm(np.cross(Xt[:, :3], Xp[:, :3]),
                               axis=-1).reshape(k, nrot)
            th_rc = np.clip(th_r, _POLE_GUARD, np.pi - _POLE_GUARD)
            wq = self._rot_w[None, :] * W / np.sin(th_rc)
            r = x0[sl][:, None, :] - Xr
            r2 = np.einsum("tnk,tnk->tn", r, r)
            inv_r = 1.0 / np.sqrt(r2)
            fw = fr * wq[:, :, None]
            rf = np.einsum("tnk,tnk->tn", r, fw)
            out[sl] = scale * (
                np.einsum("tn,tnk->tk", inv_r, fw)
                + np.einsum("tn,tnk->tk", rf * inv_r ** 3, r))
        return out

    def on_surface_velocity(self, th: float, ph: float,
                            density: np.ndarray) -> np.ndarray:
        """Rotation-quadrature single-layer value at surface point (th, ph)."""
        cf = self._packed_density_coeffs(density)
        return self._on_surface_velocities(np.array([float(th)]),
                                           np.array([float(ph)]), cf)[0]

    # -- public evaluation ----------------------------------------------------
    def weighted_fine_density(self, density: np.ndarray) -> np.ndarray:
        """Quadrature-weighted density on the fine grid: the source strengths
        of the smooth far quadrature. Shape ``(fine_nlat, fine_nphi, 3)``.

        Computing this once per step and passing it to :meth:`evaluate` for
        every target batch avoids re-upsampling the same density per batch.
        """
        density = np.asarray(density, float).reshape(self.surface.grid.nlat,
                                                     self.surface.grid.nphi, 3)
        T = self.surface.transform
        cf = T.forward(np.moveaxis(density, -1, 0))
        dens_fine = np.moveaxis(T.resample(cf, self.up_order), 0, -1)
        return dens_fine * self._fine_w[..., None]

    def near_target_indices(self, targets: np.ndarray) -> np.ndarray:
        """Indices of targets inside the near zone of the fine cloud."""
        return self._near_scan(np.atleast_2d(np.asarray(targets, float)))[0]

    def _near_scan(self, targets: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Near-zone filter: ``(near indices, their nearest fine nodes)``.

        A bounding-sphere broadphase rejects the bulk; survivors get the
        exact chunked min-distance test, whose argmin doubles as the
        closest-point Newton seed.
        """
        d_ctr = np.linalg.norm(targets - self._center[None, :], axis=1)
        cand = np.nonzero(d_ctr < self._radius + self.near_distance)[0]
        if cand.size == 0:
            return cand, cand
        seeds, dmin2 = self._nearest_fine_nodes(targets[cand])
        near = dmin2 < self.near_distance ** 2
        return cand[near], seeds[near]

    def evaluate(self, density: np.ndarray, targets: np.ndarray,
                 fine_weighted: Optional[np.ndarray] = None) -> np.ndarray:
        """Velocity at arbitrary targets due to this cell's single layer."""
        targets = np.atleast_2d(np.asarray(targets, float))
        density = np.asarray(density, float).reshape(self.surface.grid.nlat,
                                                     self.surface.grid.nphi, 3)
        fw = (fine_weighted if fine_weighted is not None
              else self.weighted_fine_density(density))
        out = stokes_slp_apply(self._fine.points, fw.reshape(-1, 3), targets,
                               self.viscosity, dtype=self._far_dtype)
        near, seeds = self._near_scan(targets)
        if near.size:
            out[near] = self._near_values(density, fw, targets[near], seeds)
        return out

    def near_correction(self, density: np.ndarray, targets: np.ndarray,
                        fine_weighted: Optional[np.ndarray] = None
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Near-scheme delta against the float64 smooth quadrature.

        Returns ``(indices, delta)`` where ``indices`` selects the
        targets inside this cell's near zone and ``delta`` is the
        near-scheme velocity minus the *exact double-precision* smooth
        sum at those targets. A caller that already holds a smooth
        all-sources velocity computed in float64 (the global FMM's
        near-field P2P route) turns it into the near-singular-accurate
        value by adding ``delta`` — the large singular contributions
        cancel to roundoff because both sides evaluate them with the
        same exact kernel, which is what makes a global source tree
        viable despite the on-surface smooth sums it contains.
        """
        targets = np.atleast_2d(np.asarray(targets, float))
        density = np.asarray(density, float).reshape(self.surface.grid.nlat,
                                                     self.surface.grid.nphi, 3)
        fw = (fine_weighted if fine_weighted is not None
              else self.weighted_fine_density(density))
        near, seeds = self._near_scan(targets)
        if near.size == 0:
            return near, np.zeros((0, 3))
        x = targets[near]
        smooth = stokes_slp_apply(self._fine.points, fw.reshape(-1, 3), x,
                                  self.viscosity)
        return near, self._near_values(density, fw, x, seeds) - smooth

    def _near_values(self, density: np.ndarray, fine_weighted: np.ndarray,
                     x: np.ndarray,
                     seeds: Optional[np.ndarray] = None) -> np.ndarray:
        """Near-scheme velocities for a batch of near targets ``x`` (n, 3)."""
        n = x.shape[0]
        th, ph, y, d = self.closest_points(x, seeds=seeds)
        nrm = self._surface_normals_at(th, ph)
        # Signed distance: positive along outward normal. Cell-cell targets
        # are always exterior; near interior targets (which only occur in
        # diagnostics) mirror to the interior side.
        sgn = np.sign(np.einsum("nk,nk->n", x - y, nrm))
        sgn[sgn == 0.0] = 1.0
        # Interpolation nodes: 0 (on-surface, singular quadrature) plus
        # check points from the first trusted distance outward.
        p_chk = self.check_order
        cf = self._packed_density_coeffs(density)
        vals = np.empty((n, p_chk + 1, 3))
        vals[:, 0, :] = self._on_surface_velocities(th, ph, cf, x0=y)
        checks = (y[:, None, :]
                  + (sgn[:, None] * self._check_ts[None, 1:])[:, :, None]
                  * nrm[:, None, :])
        vals[:, 1:, :] = stokes_slp_apply(
            self._fine.points, fine_weighted.reshape(-1, 3),
            checks.reshape(-1, 3), self.viscosity).reshape(n, p_chk, 3)
        # Interpolate each target to its (unsigned) distance: barycentric
        # interpolation is reflection-invariant, so the one-sided node set
        # serves interior targets too.
        M = barycentric_matrix(self._check_ts, d, self._check_w)
        return np.einsum("nc,nck->nk", M, vals)

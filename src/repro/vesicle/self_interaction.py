"""Singular single-layer quadrature on spherical-harmonic surfaces.

For a target point on the surface of its own cell, the Stokes single-layer
integrand has a 1/r singularity. Following [48] and the quadrature rule of
Graham & Sloan [14] (paper Sec. 2.2), the sphere parametrization is rotated
so the target sits at the north pole; in rotated coordinates
``dS = (W / sin theta) sin psi dpsi dalpha`` and ``sin psi / r`` is smooth,
so a Gauss-Legendre rule in ``cos psi`` times a trapezoid rule in ``alpha``
converges spectrally.

The expensive, geometry-independent parts (rotated parameter coordinates
and complex synthesis matrices) depend only on the pair of orders
``(p, q_rot)`` and the target's *latitude row* — a rotation about the polar
axis only multiplies SH coefficients by phases. They are therefore built
once per order pair and cached.

At frozen geometry the whole operator ``density -> velocity`` is a fixed
linear map, so :meth:`SingularSelfInteraction.refresh` additionally
assembles it as one dense ``(3N, 3N)`` matrix (the precomputed singular
integration operator of [28] the paper credits with a substantial
complexity improvement): the per-target kernel tensor is contracted with
the cached rotated-synthesis matrices and composed with the dense forward
SHT, after which every :meth:`~SingularSelfInteraction.apply` — called
inside the tension solve, every implicit-GMRES matvec, and the NCP
mobility — is a single GEMV.
"""
from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..quadrature import gauss_legendre
from ..sph.alp import normalized_alp_theta_derivative
from ..sph.grid import get_grid
from ..sph.rotation import rotated_sphere_points
from ..surfaces import SpectralSurface

_POLE_GUARD = 1e-7


def _coeff_index(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Flattened (l, m) indexing of the dense (p+1, 2p+1) coefficient array."""
    ls, ms = [], []
    for l in range(p + 1):
        for m in range(-l, l + 1):
            ls.append(l)
            ms.append(m)
    return np.array(ls), np.array(ms)


def pack_coeffs(c: np.ndarray) -> np.ndarray:
    """Dense (..., p+1, 2p+1) coefficient array -> flat (..., (l, m)) vector.

    Leading axes are batch dimensions (e.g. vector-field components).
    """
    c = np.asarray(c)
    p = c.shape[-2] - 1
    ls, ms = _coeff_index(p)
    return c[..., ls, p + ms]


@lru_cache(maxsize=8)
class _RotationTables:
    """Per-(p, q_rot) cached rotation quadrature machinery."""

    def __init__(self, p: int, q_rot: int):
        self.p = p
        self.q_rot = q_rot
        grid = get_grid(p)
        self.grid = grid
        # Rotated quadrature rule: Gauss-Legendre in psi itself (not in
        # cos psi), trapezoid in alpha. Written in psi the single-layer
        # integrand is smooth: sin(psi)/r ~ sin(psi)/(2 sin(psi/2)) =
        # cos(psi/2), which is the cancellation the Graham-Sloan rule [14]
        # exploits; Gauss-Legendre in psi then converges spectrally.
        npsi = q_rot + 1
        nalpha = 2 * q_rot + 2
        psi, wpsi = gauss_legendre(npsi, 0.0, np.pi)
        wpsi = wpsi * np.sin(psi)  # fold in the sphere Jacobian
        alpha = 2.0 * np.pi * np.arange(nalpha) / nalpha
        PSI, ALPHA = np.meshgrid(psi, alpha, indexing="ij")
        self.weights = np.outer(wpsi, np.full(nalpha, 2.0 * np.pi / nalpha)).ravel()
        self.nrot = npsi * nalpha

        ls, ms = _coeff_index(p)
        self.ncoef = ls.size
        self.ms = ms
        #: packed rows inside the dense (p+1)(2p+1) coefficient layout.
        self.packed_rows = ls * (2 * p + 1) + (p + ms)
        #: loop-invariant longitude phases exp(i m phi_t), shape
        #: (ncoef, nphi) — the azimuthal-rotation trick: moving a target
        #: around its latitude row only multiplies coefficients by these.
        self.phases = np.exp(1j * ms[:, None] * grid.phi[None, :])

        # Per latitude row: rotated coordinates for phi0 = 0 and synthesis
        # matrices (value, d/dtheta, d/dphi) from packed coefficients;
        # stacked over rows so downstream contractions are batched GEMMs.
        row_sin, Bvs, Bts, Bps = [], [], [], []
        for i in range(grid.nlat):
            th_r, ph_r = rotated_sphere_points(grid.theta[i], 0.0,
                                               PSI.ravel(), ALPHA.ravel())
            th_r = np.clip(th_r, _POLE_GUARD, np.pi - _POLE_GUARD)
            x = np.cos(th_r)
            P, dP = normalized_alp_theta_derivative(p, x)
            phase = np.exp(1j * ms[None, :] * ph_r[:, None])  # (nrot, ncoef)
            sign = np.where(ms < 0, (-1.0) ** np.abs(ms), 1.0)
            Pm = P[ls, np.abs(ms), :].T * sign[None, :]   # (nrot, ncoef)
            dPm = dP[ls, np.abs(ms), :].T * sign[None, :]
            Bv = Pm * phase
            row_sin.append(np.sin(th_r))
            Bvs.append(Bv)
            Bts.append(dPm * phase)
            Bps.append(Bv * (1j * ms)[None, :])
        #: (nlat, nrot) / (nlat, nrot, ncoef) stacks; row i of each is the
        #: per-latitude machinery of the phi0 = 0 target of that row.
        self.row_sin_theta_r = np.stack(row_sin)
        self.B_val = np.stack(Bvs)
        self.B_dth = np.stack(Bts)
        self.B_dph = np.stack(Bps)
        # Contiguous real/imaginary parts: downstream compositions only
        # need real results, so complex GEMMs are split into real pairs.
        self.B_val_re = np.ascontiguousarray(self.B_val.real)
        self.B_val_im = np.ascontiguousarray(self.B_val.imag)
        self.B_dth_re = np.ascontiguousarray(self.B_dth.real)
        self.B_dth_im = np.ascontiguousarray(self.B_dth.imag)
        self.B_dph_re = np.ascontiguousarray(self.B_dph.real)
        self.B_dph_im = np.ascontiguousarray(self.B_dph.imag)


class SingularSelfInteraction:
    """Applies the singular single-layer operator ``S_i`` of one cell.

    ``apply(density)`` returns the velocity induced *on the cell's own
    surface* by a force density sampled on its grid — the implicit
    self-interaction term ``S_i f_i`` of paper Eq. (2.8). The operator is
    assembled as a dense matrix at every :meth:`refresh`, so ``apply`` is
    a single matrix-vector product.
    """

    def __init__(self, surface: SpectralSurface, viscosity: float = 1.0,
                 upsample: float = 1.5):
        self.surface = surface
        self.viscosity = viscosity
        p = surface.order
        q_rot = max(p, int(np.ceil(upsample * p)))
        self.tables = _RotationTables(p, q_rot)
        # Packed-row forward SHT (geometry-independent), split for the
        # real-GEMM composition in :meth:`_assemble_matrix`.
        A = surface.transform.analysis_matrix()[self.tables.packed_rows]
        self._A_re = np.ascontiguousarray(A.real)
        self._A_im = np.ascontiguousarray(A.imag)
        self.refresh()

    def _prepare_geometry(self) -> None:
        """Evaluate surface position and area element at all rotated points.

        These depend on the current configuration; call :meth:`refresh`
        after the surface moves.
        """
        surf = self.surface
        tb = self.tables
        grid = surf.grid
        packed = pack_coeffs(surf.coeffs()).T                  # (ncoef, 3)
        nlat, nphi = grid.nlat, grid.nphi
        nrot, ncoef = tb.nrot, tb.ncoef
        # One synthesis per derivative kind for *all* rows at once, as a
        # real GEMM pair: Re(B @ C) = Br @ Cr - Bi @ Ci.
        C = (packed[:, None, :] * tb.phases[:, :, None]).reshape(ncoef,
                                                                 nphi * 3)
        Cr = np.ascontiguousarray(C.real)
        Ci = np.ascontiguousarray(C.imag)

        def synth(B_re, B_im):
            out = (B_re.reshape(nlat * nrot, ncoef) @ Cr
                   - B_im.reshape(nlat * nrot, ncoef) @ Ci)
            return out.reshape(nlat, nrot, nphi, 3).transpose(0, 2, 1, 3)

        Xr = synth(tb.B_val_re, tb.B_val_im)                   # (nlat, nphi, nrot, 3)
        Xt = synth(tb.B_dth_re, tb.B_dth_im)
        Xp = synth(tb.B_dph_re, tb.B_dph_im)
        W = np.linalg.norm(np.cross(Xt, Xp), axis=-1)
        self.X_rot = Xr
        self.w_rot = ((W / tb.row_sin_theta_r[:, None, :])
                      * tb.weights[None, None, :])

    def _assemble_matrix(self) -> None:
        """Assemble the dense operator ``density.ravel() -> velocity.ravel()``.

        Composition, per target row ``i`` (all ``nphi`` targets at once):
        kernel-and-weights tensor ``KW`` (target, rotated node, k, j)
        contracted with the cached rotated synthesis ``B_val[i]`` over the
        rotated nodes, the azimuthal phases over targets, and the dense
        forward-SHT matrix over grid nodes. All contractions are GEMMs.
        """
        surf = self.surface
        tb = self.tables
        grid = surf.grid
        nlat, nphi, nrot, ncoef = grid.nlat, grid.nphi, tb.nrot, tb.ncoef
        n = grid.n_points
        scale = 1.0 / (8.0 * np.pi * self.viscosity)
        ph_r = tb.phases.T.real[None, :, None, :]
        ph_i = tb.phases.T.imag[None, :, None, :]
        M = np.empty((nlat, nphi, 3, n, 3))
        # The (rows, nphi, nrot, 3, 3) kernel tensor scales like O(p^6);
        # process latitude rows in groups bounded by a flat byte budget so
        # the transient stays modest at high order.
        rows = max(1, int(24e6 // (nphi * nrot * 9 * 8)))
        for a in range(0, nlat, rows):
            sl = slice(a, min(a + rows, nlat))
            r = surf.X[sl, :, None, :] - self.X_rot[sl]  # (rows, nphi, nrot, 3)
            inv_r = 1.0 / np.sqrt(np.einsum("itsk,itsk->its", r, r))
            w = scale * self.w_rot[sl]
            # KW[i, t, s, k, j] = w ( inv_r delta_kj + r_k r_j inv_r^3 )
            KW = ((w * inv_r)[..., None, None] * np.eye(3)
                  + (r * (w * inv_r ** 3)[..., None])[..., :, None]
                  * r[..., None, :])
            # contract rotated nodes with the per-row synthesis matrices
            # (batched real GEMMs over latitude rows)
            KWt = KW.transpose(0, 1, 3, 4, 2).reshape(-1, nphi * 9, nrot)
            Qr = np.matmul(KWt, tb.B_val_re[sl]).reshape(-1, nphi, 9, ncoef)
            Qi = np.matmul(KWt, tb.B_val_im[sl]).reshape(-1, nphi, 9, ncoef)
            # azimuthal phase of each target column
            Q2r = (Qr * ph_r - Qi * ph_i).reshape(-1, nphi * 9, ncoef)
            Q2i = (Qr * ph_i + Qi * ph_r).reshape(-1, nphi * 9, ncoef)
            # compose with the forward transform; densities are real, so
            # the real part of the composition is the full operator:
            # Re((Q2r + i Q2i) @ (Ar + i Ai)) = Q2r @ Ar - Q2i @ Ai.
            Mi = np.matmul(Q2r, self._A_re) - np.matmul(Q2i, self._A_im)
            M[sl] = (Mi.reshape(-1, nphi, 3, 3, n)
                     .transpose(0, 1, 2, 4, 3))
        self._matrix = M.reshape(3 * n, 3 * n)

    def refresh(self) -> None:
        """Re-evaluate cached geometry and reassemble the dense operator
        after the surface has moved."""
        self._prepare_geometry()
        self._assemble_matrix()

    @property
    def matrix(self) -> np.ndarray:
        """The dense ``(3N, 3N)`` operator at the current geometry."""
        return self._matrix

    def apply(self, density: np.ndarray) -> np.ndarray:
        """Velocity on the surface from force density ``f`` (grid field).

        Shape in/out: ``(nlat, nphi, 3)``. One GEMV against the assembled
        operator matrix.
        """
        grid = self.surface.grid
        density = np.asarray(density, float)
        return (self._matrix @ density.ravel()).reshape(
            grid.nlat, grid.nphi, 3)

    def apply_reference(self, density: np.ndarray) -> np.ndarray:
        """Seed-path re-synthesis evaluation (reference for the assembled
        matrix; kept for verification and convergence tests)."""
        surf = self.surface
        tb = self.tables
        grid = surf.grid
        density = np.asarray(density, float).reshape(grid.nlat, grid.nphi, 3)
        cf = np.stack([surf.transform.forward(density[:, :, k]) for k in range(3)])
        packed = np.stack([pack_coeffs(cf[k]) for k in range(3)], axis=1)
        out = np.empty_like(density)
        scale = 1.0 / (8.0 * np.pi * self.viscosity)
        targets = surf.X
        C = (packed[:, None, :] * tb.phases[:, :, None]).reshape(tb.ncoef, -1)
        for i in range(grid.nlat):
            f_rot = (tb.B_val[i] @ C).reshape(tb.nrot, grid.nphi, 3).real
            f_rot = f_rot.transpose(1, 0, 2)                    # (nphi, nrot, 3)
            fw = f_rot * self.w_rot[i][:, :, None]
            r = targets[i][:, None, :] - self.X_rot[i]          # (nphi, nrot, 3)
            r2 = np.einsum("tsk,tsk->ts", r, r)
            inv_r = 1.0 / np.sqrt(r2)
            rf = np.einsum("tsk,tsk->ts", r, fw)
            out[i] = scale * (
                np.einsum("ts,tsk->tk", inv_r, fw)
                + np.einsum("ts,tsk->tk", rf * inv_r ** 3, r)
            )
        return out

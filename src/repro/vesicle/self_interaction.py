"""Singular single-layer quadrature on spherical-harmonic surfaces.

For a target point on the surface of its own cell, the Stokes single-layer
integrand has a 1/r singularity. Following [48] and the quadrature rule of
Graham & Sloan [14] (paper Sec. 2.2), the sphere parametrization is rotated
so the target sits at the north pole; in rotated coordinates
``dS = (W / sin theta) sin psi dpsi dalpha`` and ``sin psi / r`` is smooth,
so a Gauss-Legendre rule in ``cos psi`` times a trapezoid rule in ``alpha``
converges spectrally.

The expensive, geometry-independent parts (rotated parameter coordinates
and complex synthesis matrices) depend only on the pair of orders
``(p, q_rot)`` and the target's *latitude row* — a rotation about the polar
axis only multiplies SH coefficients by phases. They are therefore built
once per order pair and cached.

At frozen geometry the whole operator ``density -> velocity`` is a fixed
linear map, so :meth:`SingularSelfInteraction.refresh` additionally
assembles it as one dense ``(3N, 3N)`` matrix (the precomputed singular
integration operator of [28] the paper credits with a substantial
complexity improvement): the per-target kernel tensor is contracted with
the cached rotated-synthesis matrices and composed with the dense forward
SHT, after which every :meth:`~SingularSelfInteraction.apply` — called
inside the tension solve, every implicit-GMRES matvec, and the NCP
mobility — is a single GEMV.

Two assembly routes produce that matrix. The *fused* route (PR 3)
contracts a per-target synthesis/phase/SHT table. The *block-circulant*
route exploits the azimuthal structure the uniform longitudes give both
table factors exactly, for arbitrary (non-axisymmetric) shapes:

- moving a target around its latitude ring rotates the quadrature rule
  about the polar axis, so the ring's rotated-synthesis matrices differ
  only by per-mode phases ``exp(i m phi_t)``
  (:func:`repro.sph.rotation.rotated_ring_points`), and
- the forward SHT factors into a latitude contraction times a uniform
  longitude DFT (:meth:`repro.sph.SHTransform.analysis_latitude_matrix`),
  so the target phase is an exact circular shift of the *source*
  longitude: the composed (synthesis, phase, SHT) table is
  block-circulant in (target longitude, source longitude).

FFT-diagonalizing both pieces replaces the per-target work with
``O(nlat)`` GEMMs against per-ring mode symbols plus batched inverse real
FFTs: the rotated geometry of a whole ring is one per-mode GEMM and an
inverse FFT over the target longitude, and the operator rows of a ring
are one GEMM against the ``(nrot, (p+1) nlat)`` conjugate symbol, a
diagonal target-phase multiply, and an inverse FFT over the source
longitude. Only the pointwise Stokeslet kernel fields remain per-target
(they carry the actual, generally non-axisymmetric geometry), which is
why the route is exact. The per-ring symbol replaces the
``(nlat, nphi, N, nrot)`` fused table with ``(nlat, nrot, (p+1) nlat)``
— smaller by the ``2p+2`` target longitudes — lifting the
``FUSED_TABLE_BUDGET`` memory gate that stops the fused table at order
~10. (In cylindrical vector components about the polar axis the full
operator of a surface of revolution is itself block-circulant in the
target longitude; the equivalence suite demonstrates that limit, but the
assembly here only relies on the parametrization-level circulance, which
is exact for every shape.)
"""
from __future__ import annotations

import logging
import threading
from typing import Sequence

import numpy as np

from ..analysis.guard import (HEAVY_TABLE_CACHE_SIZE, freeze,
                              freeze_attributes, locked_cache)
from ..quadrature import gauss_legendre
from ..sph.alp import normalized_alp_theta_derivative
from ..sph.grid import get_grid
from ..sph.rotation import rotated_ring_points
from ..surfaces import SpectralSurface

_log = logging.getLogger(__name__)

_POLE_GUARD = 1e-7


def _coeff_index(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Flattened (l, m) indexing of the dense (p+1, 2p+1) coefficient array."""
    ls, ms = [], []
    for l in range(p + 1):
        for m in range(-l, l + 1):
            ls.append(l)
            ms.append(m)
    return np.array(ls), np.array(ms)


def pack_coeffs(c: np.ndarray) -> np.ndarray:
    """Dense (..., p+1, 2p+1) coefficient array -> flat (..., (l, m)) vector.

    Leading axes are batch dimensions (e.g. vector-field components).
    """
    c = np.asarray(c)
    p = c.shape[-2] - 1
    ls, ms = _coeff_index(p)
    return c[..., ls, p + ms]


class _RotationTables:
    """Per-(p, q_rot) rotation quadrature machinery.

    Instances are shared through the :func:`_rotation_tables` factory
    cache (a plain class here — not wrapped in ``lru_cache`` directly —
    so class attributes like :data:`FUSED_TABLE_BUDGET` stay patchable
    by tests)."""

    def __init__(self, p: int, q_rot: int):
        self.p = p
        self.q_rot = q_rot
        grid = get_grid(p)
        self.grid = grid
        # Rotated quadrature rule: Gauss-Legendre in psi itself (not in
        # cos psi), trapezoid in alpha. Written in psi the single-layer
        # integrand is smooth: sin(psi)/r ~ sin(psi)/(2 sin(psi/2)) =
        # cos(psi/2), which is the cancellation the Graham-Sloan rule [14]
        # exploits; Gauss-Legendre in psi then converges spectrally.
        npsi = q_rot + 1
        nalpha = 2 * q_rot + 2
        psi, wpsi = gauss_legendre(npsi, 0.0, np.pi)
        wpsi = wpsi * np.sin(psi)  # fold in the sphere Jacobian
        alpha = 2.0 * np.pi * np.arange(nalpha) / nalpha
        PSI, ALPHA = np.meshgrid(psi, alpha, indexing="ij")
        self.weights = np.outer(wpsi, np.full(nalpha, 2.0 * np.pi / nalpha)).ravel()
        self.nrot = npsi * nalpha

        ls, ms = _coeff_index(p)
        self.ncoef = ls.size
        self.ms = ms
        #: packed rows inside the dense (p+1)(2p+1) coefficient layout.
        self.packed_rows = ls * (2 * p + 1) + (p + ms)
        #: loop-invariant longitude phases exp(i m phi_t), shape
        #: (ncoef, nphi) — the azimuthal-rotation trick: moving a target
        #: around its latitude row only multiplies coefficients by these.
        self.phases = np.exp(1j * ms[:, None] * grid.phi[None, :])

        # Per latitude row: rotated coordinates for phi0 = 0 and synthesis
        # matrices (value, d/dtheta, d/dphi) from packed coefficients;
        # stacked over rows so downstream contractions are batched GEMMs.
        row_sin, Bvs, Bts, Bps = [], [], [], []
        for i in range(grid.nlat):
            th_r, ph_r = rotated_ring_points(grid.theta[i],
                                             PSI.ravel(), ALPHA.ravel())
            th_r = np.clip(th_r, _POLE_GUARD, np.pi - _POLE_GUARD)
            x = np.cos(th_r)
            P, dP = normalized_alp_theta_derivative(p, x)
            phase = np.exp(1j * ms[None, :] * ph_r[:, None])  # (nrot, ncoef)
            sign = np.where(ms < 0, (-1.0) ** np.abs(ms), 1.0)
            Pm = P[ls, np.abs(ms), :].T * sign[None, :]   # (nrot, ncoef)
            dPm = dP[ls, np.abs(ms), :].T * sign[None, :]
            Bv = Pm * phase
            row_sin.append(np.sin(th_r))
            Bvs.append(Bv)
            Bts.append(dPm * phase)
            Bps.append(Bv * (1j * ms)[None, :])
        #: (nlat, nrot) / (nlat, nrot, ncoef) stacks; row i of each is the
        #: per-latitude machinery of the phi0 = 0 target of that row.
        self.row_sin_theta_r = np.stack(row_sin)
        self.B_val = np.stack(Bvs)
        self.B_dth = np.stack(Bts)
        self.B_dph = np.stack(Bps)
        # Contiguous real/imaginary parts: downstream compositions only
        # need real results, so complex GEMMs are split into real pairs.
        self.B_val_re = np.ascontiguousarray(self.B_val.real)
        self.B_val_im = np.ascontiguousarray(self.B_val.imag)
        self.B_dth_re = np.ascontiguousarray(self.B_dth.real)
        self.B_dth_im = np.ascontiguousarray(self.B_dth.imag)
        self.B_dph_re = np.ascontiguousarray(self.B_dph.real)
        self.B_dph_im = np.ascontiguousarray(self.B_dph.imag)
        # The three synthesis kinds stacked along the rotated-node axis:
        # the geometry pass evaluates all of (X, X_theta, X_phi) with one
        # GEMM pair instead of three.
        self.B_all_re = np.ascontiguousarray(np.concatenate(
            [self.B_val_re, self.B_dth_re, self.B_dph_re], axis=1))
        self.B_all_im = np.ascontiguousarray(np.concatenate(
            [self.B_val_im, self.B_dth_im, self.B_dph_im], axis=1))
        self._fused: np.ndarray | None = None
        self._circ: dict | None = None
        # Tables are shared by every same-order cell; when refresh tasks
        # run on a thread pool the lazy fused/circulant table builds must
        # happen exactly once.
        self._fused_lock = threading.Lock()
        self._circ_lock = threading.Lock()
        self._budget_warned = False
        # One table set per (p, q_rot), shared by every same-order cell
        # through the _rotation_tables cache: mark everything read-only.
        freeze_attributes(self)

    #: byte budget of the fused (nlat, nphi, nrot, N) composition table;
    #: 71 MB at order 8, ~240 MB at order 10, prohibitive beyond — higher
    #: orders fall back to the staged complex-split composition.
    FUSED_TABLE_BUDGET = 256e6

    def fused_table(self) -> np.ndarray | None:
        """Per-(row, target) rotated-synthesis -> grid-density table.

        ``D[i, t] = Re(B_val[i] diag(phases[:, t]) A)`` composes the
        rotated synthesis, the azimuthal phase shift of target ``t`` and
        the dense forward SHT in one real (nrot, N) block. The assembly
        contraction against the (real) kernel fields then needs a single
        real GEMM per target — no complex split, no separate phase and
        SHT passes. Stored transposed, (nlat, nphi, N, nrot), so the
        batched GEMM has its long dimension first (measurably faster than
        the 7-row-skinny orientation). Geometry-independent, shared by
        every cell of this order pair; built lazily, ``None`` when over
        budget.
        """
        if self._fused is None:
            from ..sph import get_transform
            grid = self.grid
            n = grid.n_points
            nbytes = grid.nlat * grid.nphi * self.nrot * n * 8
            if nbytes > self.FUSED_TABLE_BUDGET:
                with self._fused_lock:
                    if not self._budget_warned:
                        self._budget_warned = True
                        _log.warning(
                            "fused self-interaction table at order %d "
                            "(%.0f MB) exceeds FUSED_TABLE_BUDGET "
                            "(%.0f MB); falling back to the slower staged "
                            "assembly — the 'circulant' assembly mode has "
                            "no such gate",
                            self.p, nbytes / 1e6,
                            self.FUSED_TABLE_BUDGET / 1e6)
                return None
            with self._fused_lock:
                if self._fused is not None:     # built by a racing task
                    return self._fused
                A = get_transform(self.p).analysis_matrix()[self.packed_rows]
                D = np.empty((grid.nlat, grid.nphi, n, self.nrot))
                for t in range(grid.nphi):
                    PA = self.phases[:, t, None] * A       # (ncoef, N)
                    D[:, t] = (self.B_val @ PA).real.transpose(0, 2, 1)
                self._fused = freeze(D)
        return self._fused

    def circulant_tables(self) -> dict:
        """Per-ring azimuthal-mode symbols of the block-circulant assembly.

        Both factors of the per-target table are diagonal in the
        azimuthal mode ``m`` once the target phase is absorbed:

        - ``syn``, a list over modes ``m`` of complex ``(nlat, 2, nrot,
          p+1-m)`` blocks: the value and d/dtheta rotated-synthesis
          columns ``B[rot, l]``, ``l = m..p``, of the ``phi_t = 0``
          target. The rotated geometry of a whole ring is per-mode GEMMs
          against the coefficients' ``m >= 0`` block (exact by the
          Hermitian symmetry of real fields) followed by the inverse
          azimuthal transform over the target longitude; d/dphi is the
          same modes times ``i m``.
        - ``Ec_even`` / ``Ec_odd``: the *conjugate* composed symbol
          ``conj(sum_l B[rot, (l, m)] A_lat[(l, m), j]) * 2 pi / nphi``
          split into real/imaginary parts and *folded* over the exact
          mirror symmetry ``alpha -> -alpha`` of the rotated rule (the
          real part is even in ``alpha``, the imaginary part odd — the
          pole rotation preserves the rule's reflection plane), which
          halves the inner dimension of the assembly's dominant GEMM.
          Row order along the folded axis is ``(psi, [alpha=0,
          alpha=nalpha/2, alpha=1..nalpha/2-1])`` for both parts (the
          self-paired columns ride along verbatim — see the inline
          comment); columns are ``(j, m)`` j-major. Shapes
          ``(nlat, npsi*(nalpha/2+1), nlat*(p+1))``.
        - ``Ci``/``Si``/``mCi``/``mSi``, shape ``(p+1, nphi)``: the
          dense inverse azimuthal transform ``fac_m cos(m phi_t)`` /
          ``fac_m sin(m phi_t)`` (``fac = 2 - delta_m0``) and its
          ``m``-weighted variants for the phi derivative. This *is* the
          FFT diagonalization — at the ``nphi = 2p + 2`` sizes used here
          the dense length-``nphi`` transform beats a batched FFT call.
        - ``Einv_cos`` / ``Einv_sin``, shape ``(nphi, p+1, nphi)``: the
          diagonalized block shift of the operator rows,
          ``fac_m cos(m (phi_s - phi_t))`` and ``-fac_m sin(m (phi_s -
          phi_t))`` — the target-longitude phase and the inverse
          transform over the *source* longitude in one batched factor.

        Geometry-independent, shared by every cell of this order pair;
        built lazily under a lock.
        """
        if self._circ is None:
            with self._circ_lock:
                if self._circ is not None:      # built by a racing task
                    return self._circ
                from ..sph import get_transform
                grid = self.grid
                p = self.p
                nm = p + 1
                npsi = self.q_rot + 1
                nal = 2 * self.q_rot + 2
                half = nal // 2
                syn = []
                A_lat = get_transform(p).analysis_latitude_matrix()[
                    self.packed_rows]
                E_re = np.empty((grid.nlat, self.nrot, grid.nlat, nm))
                E_im = np.empty_like(E_re)
                for m in range(nm):
                    cols = np.nonzero(self.ms == m)[0]  # l = m..p ascending
                    syn.append(np.ascontiguousarray(np.stack(
                        [self.B_val[:, :, cols], self.B_dth[:, :, cols]],
                        axis=1)))                # (nlat, 2, nrot, p+1-m)
                    Am = (2.0 * np.pi / grid.nphi) * A_lat[cols]
                    E_re[:, :, :, m] = self.B_val_re[:, :, cols] @ Am
                    E_im[:, :, :, m] = -(self.B_val_im[:, :, cols] @ Am)
                # Fold the alpha-mirror symmetry (exact up to rounding;
                # the fold symmetrizes, so the folded contraction agrees
                # with the unfolded one to machine precision).
                K = grid.nlat * nm
                E_re = E_re.reshape(grid.nlat, npsi, nal, K)
                E_im = E_im.reshape(grid.nlat, npsi, nal, K)
                # The self-paired alpha = 0, pi columns are kept verbatim
                # in both halves (the imaginary part there is zero in
                # exact arithmetic, but when a rotated node lands on a
                # pole the computed longitude — and hence the imaginary
                # column — is an arbitrary finite value every other
                # assembly route shares; dropping it would break the
                # cross-route equivalence at ~1e-9).
                Ec_even = np.concatenate([
                    E_re[:, :, :1], E_re[:, :, half: half + 1],
                    0.5 * (E_re[:, :, 1: half] + E_re[:, :, :half: -1]),
                ], axis=2).reshape(grid.nlat, npsi * (half + 1), K)
                Ec_odd = np.concatenate([
                    E_im[:, :, :1], E_im[:, :, half: half + 1],
                    0.5 * (E_im[:, :, 1: half] - E_im[:, :, :half: -1]),
                ], axis=2).reshape(grid.nlat, npsi * (half + 1), K)
                marr = np.arange(nm)
                fac = np.where(marr == 0, 1.0, 2.0)
                Ci = fac[:, None] * np.cos(np.outer(marr, grid.phi))
                Si = fac[:, None] * np.sin(np.outer(marr, grid.phi))
                dphi = grid.phi[None, :] - grid.phi[:, None]   # (t, s)
                Einv_cos = np.ascontiguousarray(
                    (fac[:, None, None]
                     * np.cos(marr[:, None, None] * dphi)).transpose(1, 0, 2))
                Einv_sin = np.ascontiguousarray(
                    (-fac[:, None, None]
                     * np.sin(marr[:, None, None] * dphi)).transpose(1, 0, 2))
                self._circ = {
                    "syn": [freeze(s) for s in syn],
                    "Ec_even": freeze(np.ascontiguousarray(Ec_even)),
                    "Ec_odd": freeze(np.ascontiguousarray(Ec_odd)),
                    "Ci": freeze(Ci), "Si": freeze(Si),
                    "mCi": freeze(marr[:, None] * Ci),
                    "mSi": freeze(marr[:, None] * Si),
                    "Einv_cos": freeze(Einv_cos),
                    "Einv_sin": freeze(Einv_sin),
                    "npsi": npsi, "nalpha": nal,
                }
        return self._circ


@locked_cache(maxsize=HEAVY_TABLE_CACHE_SIZE)
def _rotation_tables(p: int, q_rot: int) -> _RotationTables:
    """Shared per-(p, q_rot) tables (every same-order cell reuses one).

    Bound and build-locking per the shared-table cache policy in
    :mod:`repro.analysis.guard` (``HEAVY_TABLE_CACHE_SIZE``)."""
    return _RotationTables(p, q_rot)


#: symmetric pairs (k, j) of the ``r (x) r`` part of the Stokeslet, and
#: where each contraction lands in the (3, 3) component block.
_STOKESLET_PAIRS = ((0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2))

#: flat byte budget of one row chunk's kernel-field transients in
#: :func:`assemble_circulant` (measured optimum on the bench host: small
#: enough that a chunk's several elementwise passes stay cache-resident).
_CHUNK_BUDGET = 4e6


def assemble_circulant(tables: _RotationTables,
                       surfaces: Sequence[SpectralSurface],
                       viscosity: float = 1.0
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Block-circulant assembly of the singular operator, stacked over a
    group of same-order surfaces.

    Per latitude ring, the rotated geometry of all targets comes from
    per-azimuthal-mode GEMMs plus an inverse real FFT over the target
    longitude, and the operator rows come from one GEMM pair against the
    ring's conjugate circulant symbol, a diagonal target-phase multiply
    and an inverse real FFT over the *source* longitude (see
    :meth:`_RotationTables.circulant_tables`); only the pointwise
    Stokeslet kernel fields are evaluated per target, so the result is
    exact for arbitrary shapes. All GEMMs and inverse transforms carry a
    leading cell axis: stacking same-order cells widens the batched
    calls without changing the per-cell arithmetic, so a stacked slice
    agrees with the single-surface assembly of that cell to roundoff
    (<= 1e-16 observed; BLAS blocking may differ with the batch width).

    Every surface must have the tables' order. Returns ``(M, X_rot,
    w_rot)``: the dense operators ``(ncell, 3N, 3N)`` and the rotated
    quadrature geometry ``(ncell, nlat, nphi, nrot[, 3])``.
    """
    tb = tables
    grid = tb.grid
    p = tb.p
    nlat, nphi, nrot = grid.nlat, grid.nphi, tb.nrot
    n = grid.n_points
    nm = p + 1
    ncell = len(surfaces)
    for s in surfaces:
        if s.order != p:
            raise ValueError(f"surface order {s.order} does not match the "
                             f"rotation tables' order {p}")
    ct = tb.circulant_tables()
    syn = ct["syn"]
    Ec_even, Ec_odd = ct["Ec_even"], ct["Ec_odd"]
    Ci, Si, mCi, mSi = ct["Ci"], ct["Si"], ct["mCi"], ct["mSi"]
    Einv_cos, Einv_sin = ct["Einv_cos"], ct["Einv_sin"]
    npsi, nal = ct["npsi"], ct["nalpha"]
    half = nal // 2
    scale = 1.0 / (8.0 * np.pi * viscosity)
    targets = np.stack([s.X for s in surfaces])        # (ncell, nlat, nphi, 3)
    # m >= 0 coefficient block of every surface, arranged (m, l, cell*comp)
    # for the per-mode synthesis GEMMs (the m < 0 half is the Hermitian
    # conjugate for real coordinate fields, supplied by the real inverse
    # azimuthal transform).
    cg = np.stack([s.coeffs()[:, :, p:] for s in surfaces])
    cg = np.ascontiguousarray(
        cg.transpose(3, 2, 0, 1).reshape(nm, nm, ncell * 3))
    pairs = _STOKESLET_PAIRS

    M = np.empty((ncell, nlat, nphi, 3, n, 3))
    X_rot = np.empty((ncell, nlat, nphi, nrot, 3))
    w_rot = np.empty((ncell, nlat, nphi, nrot))
    # The (rows, nphi, nrot, ...) transients scale like O(p^5); bound the
    # per-chunk working set so it stays cache-resident (cf. the fused
    # route's policy; tighter here because the whole chunk makes several
    # elementwise passes).
    rows = max(1, int(_CHUNK_BUDGET // (ncell * nphi * nrot * 9 * 8)))
    for a in range(0, nlat, rows):
        sl = slice(a, min(a + rows, nlat))
        nsl = sl.stop - a

        # -- rotated geometry: compact per-mode GEMMs, then the dense
        # inverse azimuthal transform over the target longitude (one
        # flattened GEMM per derivative kind) --
        G = np.stack([syn[m][sl].reshape(nsl * 2 * nrot, nm - m)
                      @ cg[m, m:] for m in range(nm)], axis=-1)
        Gr = np.ascontiguousarray(G.real).reshape(-1, nm)
        Gi = np.ascontiguousarray(G.imag).reshape(-1, nm)
        Xboth = (Gr @ Ci - Gi @ Si).reshape(nsl, 2, nrot, ncell, 3, nphi)
        Xr = Xboth[:, 0].transpose(2, 0, 4, 1, 3)   # (ncell,nsl,nphi,nrot,3)
        Xt = Xboth[:, 1]                            # (nsl,nrot,ncell,3,nphi)
        Gval = np.s_[:, 0]
        Xp = (-(Gr.reshape(nsl, 2, -1, nm)[Gval].reshape(-1, nm) @ mSi)
              - (Gi.reshape(nsl, 2, -1, nm)[Gval].reshape(-1, nm) @ mCi)
              ).reshape(nsl, nrot, ncell, 3, nphi)
        # area element |X_theta x X_phi| without the np.cross temporaries
        W = ((Xt[:, :, :, 1] * Xp[:, :, :, 2]
              - Xt[:, :, :, 2] * Xp[:, :, :, 1]) ** 2
             + (Xt[:, :, :, 2] * Xp[:, :, :, 0]
                - Xt[:, :, :, 0] * Xp[:, :, :, 2]) ** 2
             + (Xt[:, :, :, 0] * Xp[:, :, :, 1]
                - Xt[:, :, :, 1] * Xp[:, :, :, 0]) ** 2)
        np.sqrt(W, out=W)
        X_rot[:, sl] = Xr
        w_rot[:, sl] = ((W.transpose(2, 0, 3, 1)
                         / tb.row_sin_theta_r[None, sl, None, :])
                        * tb.weights[None, None, None, :])

        # -- pointwise Stokeslet kernel fields (the per-target part; the
        # trace delta_kj term is folded into the diagonal pairs) --
        r = targets[:, sl, :, None, :] - Xr
        inv_r = np.einsum("aitsk,aitsk->aits", r, r)
        np.sqrt(inv_r, out=inv_r)
        np.reciprocal(inv_r, out=inv_r)
        trace = (scale * w_rot[:, sl]) * inv_r
        g3 = trace * inv_r * inv_r           # w / r^3
        F = np.empty((ncell, nsl, nphi, 6, nrot))
        for idx, (k, j) in enumerate(pairs):
            np.multiply(r[..., k], r[..., j], out=F[:, :, :, idx])
            F[:, :, :, idx] *= g3
            if k == j:
                F[:, :, :, idx] += trace
        # -- fold the alpha-mirror symmetry: even part meets the real
        # symbol, odd part the imaginary one (half-size inner dims) --
        F = F.reshape(ncell, nsl, nphi, 6, npsi, nal)
        Fe = np.empty((ncell, nsl, nphi, 6, npsi, half + 1))
        Fe[..., 0] = F[..., 0]
        Fe[..., 1] = F[..., half]
        Fe[..., 2:] = F[..., 1: half] + F[..., :half: -1]
        Fo = np.empty_like(Fe)
        Fo[..., 0] = F[..., 0]
        Fo[..., 1] = F[..., half]
        Fo[..., 2:] = F[..., 1: half] - F[..., :half: -1]

        # -- contraction against the folded conjugate symbols, then the
        # diagonalized block shift (target phase + inverse transform over
        # the source longitude) --
        c2re = np.matmul(Fe.reshape(ncell, nsl, nphi * 6, npsi * (half + 1)),
                         Ec_even[sl]).reshape(ncell, nsl, nphi, 6 * nlat, nm)
        c2im = np.matmul(Fo.reshape(ncell, nsl, nphi * 6, npsi * (half + 1)),
                         Ec_odd[sl]).reshape(ncell, nsl, nphi, 6 * nlat, nm)
        Q = np.matmul(c2re, Einv_cos)
        Q += np.matmul(c2im, Einv_sin)
        Q = Q.reshape(ncell, nsl, nphi, 6, n)

        Msl = M[:, sl]
        for idx, (k, j) in enumerate(pairs):
            Msl[:, :, :, k, :, j] = Q[:, :, :, idx]
            if k != j:
                Msl[:, :, :, j, :, k] = Q[:, :, :, idx]
    return M.reshape(ncell, 3 * n, 3 * n), X_rot, w_rot


class SingularSelfInteraction:
    """Applies the singular single-layer operator ``S_i`` of one cell.

    ``apply(density)`` returns the velocity induced *on the cell's own
    surface* by a force density sampled on its grid — the implicit
    self-interaction term ``S_i f_i`` of paper Eq. (2.8). The operator is
    assembled as a dense matrix at every :meth:`refresh`, so ``apply`` is
    a single matrix-vector product.

    ``assembly`` selects the full-reassembly route (see the module
    docstring): ``"circulant"`` is the FFT-diagonalized block-circulant
    assembly, ``"fused"`` the per-target fused route (single pass, with
    the memory-gated fused table when it fits), and ``"auto"`` (the
    default, mirrored by ``NumericsOptions.selfop_assembly``) currently
    always picks ``"circulant"`` — it does strictly less work per
    assembly and has no order gate; ``"fused"`` remains as the
    independent reference the equivalence suite pins it against. All
    routes agree to ~1e-12 and share the same refresh/correction policy.
    """

    #: valid ``assembly`` arguments.
    ASSEMBLY_MODES = ("auto", "fused", "circulant")

    #: smallest best-fit rotation angle (rad) the intermediate refresh
    #: corrects by kernel conjugation; see :meth:`_correct_matrix` for
    #: the rationale of the gate.
    KABSCH_MIN_ANGLE = 5e-3

    def __init__(self, surface: SpectralSurface, viscosity: float = 1.0,
                 upsample: float = 1.5, refresh_interval: int = 1,
                 assembly: str = "auto"):
        self.surface = surface
        self.viscosity = viscosity
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1, got "
                             f"{refresh_interval}")
        if assembly not in self.ASSEMBLY_MODES:
            raise ValueError(f"unknown assembly mode {assembly!r}; "
                             f"expected one of {self.ASSEMBLY_MODES}")
        #: resolved full-reassembly route, ``"fused"`` or ``"circulant"``.
        self.assembly_mode = "circulant" if assembly == "auto" else assembly
        self.refresh_interval = int(refresh_interval)
        p = surface.order
        q_rot = max(p, int(np.ceil(upsample * p)))
        self.tables = _rotation_tables(p, q_rot)
        # Packed-row forward SHT (geometry-independent), split for the
        # real-GEMM composition in :meth:`_assemble_full`.
        A = surface.transform.analysis_matrix()[self.tables.packed_rows]
        self._A_re = np.ascontiguousarray(A.real)
        self._A_im = np.ascontiguousarray(A.imag)
        self._since_full = 0
        self._pending_install = False
        self.refresh(full=True)

    def _assemble_full(self) -> None:
        """One fused pass: rotated geometry + dense operator assembly.

        The rotated synthesis, the area elements and the kernel
        contraction all consume the same per-latitude-row intermediates,
        so they are produced chunk by chunk inside a single loop (the
        separate ``_prepare_geometry`` / ``_assemble_matrix`` passes used
        to round-trip the (nlat, nphi, nrot, 3) rotated cloud through
        memory twice). Per chunk, the Stokeslet contraction exploits the
        kernel's ``r_k r_j`` symmetry: six symmetric-pair GEMMs plus one
        trace GEMM against the rotated synthesis replace the dense
        (nphi*9, nrot) kernel-tensor product, and the (rows, nphi, nrot,
        3, 3) tensor is never materialized.
        """
        surf = self.surface
        tb = self.tables
        grid = surf.grid
        nlat, nphi, nrot, ncoef = grid.nlat, grid.nphi, tb.nrot, tb.ncoef
        n = grid.n_points
        scale = 1.0 / (8.0 * np.pi * self.viscosity)
        packed = pack_coeffs(surf.coeffs()).T                  # (ncoef, 3)
        C = (packed[:, None, :] * tb.phases[:, :, None]).reshape(ncoef,
                                                                 nphi * 3)
        Cr = np.ascontiguousarray(C.real)
        Ci = np.ascontiguousarray(C.imag)
        ph_r = tb.phases.T.real[None, :, None, :]
        ph_i = tb.phases.T.imag[None, :, None, :]
        D = tb.fused_table()
        pairs = _STOKESLET_PAIRS
        X_rot = np.empty((nlat, nphi, nrot, 3))
        w_rot = np.empty((nlat, nphi, nrot))
        M = np.empty((nlat, nphi, 3, n, 3))
        # The (rows, nphi, nrot, 3) transients scale like O(p^5); process
        # latitude rows in groups bounded by a flat byte budget so the
        # working set stays cache-resident at high order.
        rows = max(1, int(24e6 // (nphi * nrot * 9 * 8)))
        for a in range(0, nlat, rows):
            sl = slice(a, min(a + rows, nlat))
            nsl = sl.stop - a

            syn = (tb.B_all_re[sl].reshape(nsl * 3 * nrot, ncoef) @ Cr
                   - tb.B_all_im[sl].reshape(nsl * 3 * nrot, ncoef) @ Ci)
            syn = syn.reshape(nsl, 3, nrot, nphi, 3).transpose(1, 0, 3, 2, 4)
            Xr, Xt, Xp = syn[0], syn[1], syn[2]    # (nsl, nphi, nrot, 3)
            W = np.linalg.norm(np.cross(Xt, Xp), axis=-1)
            X_rot[sl] = Xr
            w_rot[sl] = ((W / tb.row_sin_theta_r[sl, None, :])
                         * tb.weights[None, None, :])

            r = surf.X[sl, :, None, :] - Xr        # (nsl, nphi, nrot, 3)
            inv_r = 1.0 / np.sqrt(np.einsum("itsk,itsk->its", r, r))
            w = scale * w_rot[sl]
            trace = w * inv_r                      # the delta_kj part
            g3 = trace * inv_r * inv_r             # w / r^3
            # Contract each scalar (target, rotated-node) field with the
            # per-row synthesis matrices: batched real GEMMs over rows.
            fields = [trace] + [r[..., k] * r[..., j] * g3
                                for k, j in pairs]
            if D is not None:
                # One real GEMM per target against the fused
                # synthesis-phase-SHT table, scattered straight into the
                # (velocity comp, node, density comp) block layout.
                F = np.stack(fields, axis=2)       # (nsl, nphi, 7, nrot)
                Q = np.matmul(D[sl], F.transpose(0, 1, 3, 2))
                Msl = M[sl]
                for idx, (k, j) in enumerate(pairs):
                    Msl[:, :, k, :, j] = Q[..., 1 + idx]
                    if k != j:
                        Msl[:, :, j, :, k] = Q[..., 1 + idx]
                for k in range(3):
                    Msl[:, :, k, :, k] += Q[..., 0]
                continue
            F = np.stack(fields, axis=2)           # (nsl, nphi, 7, nrot)
            Qr = np.matmul(F, tb.B_val_re[sl, None])
            Qi = np.matmul(F, tb.B_val_im[sl, None])

            def expand(Q):
                """(nsl, nphi, 7, ncoef) -> full (nsl, nphi, 9, ncoef)."""
                out = np.empty((nsl, nphi, 3, 3, ncoef))
                for idx, (k, j) in enumerate(pairs):
                    out[:, :, k, j] = Q[:, :, 1 + idx]
                    if k != j:
                        out[:, :, j, k] = Q[:, :, 1 + idx]
                for k in range(3):
                    out[:, :, k, k] += Q[:, :, 0]
                return out.reshape(nsl, nphi, 9, ncoef)

            Qr, Qi = expand(Qr), expand(Qi)
            # azimuthal phase of each target column
            Q2r = (Qr * ph_r - Qi * ph_i).reshape(-1, nphi * 9, ncoef)
            Q2i = (Qr * ph_i + Qi * ph_r).reshape(-1, nphi * 9, ncoef)
            # compose with the forward transform; densities are real, so
            # the real part of the composition is the full operator:
            # Re((Q2r + i Q2i) @ (Ar + i Ai)) = Q2r @ Ar - Q2i @ Ai.
            Mi = np.matmul(Q2r, self._A_re) - np.matmul(Q2i, self._A_im)
            M[sl] = (Mi.reshape(-1, nphi, 3, 3, n)
                     .transpose(0, 1, 2, 4, 3))
        self.X_rot = X_rot
        self.w_rot = w_rot
        self._finalize_full(M.reshape(3 * n, 3 * n))

    def _assemble_circulant(self) -> None:
        """The FFT-diagonalized block-circulant assembly (module
        docstring); the single-surface case of :func:`assemble_circulant`.
        """
        M, X_rot, w_rot = assemble_circulant(self.tables, [self.surface],
                                             self.viscosity)
        self.X_rot = X_rot[0]
        self.w_rot = w_rot[0]
        self._finalize_full(M[0])

    def _assemble(self) -> None:
        """Full reassembly via the configured route."""
        if self.assembly_mode == "circulant":
            self._assemble_circulant()
        else:
            self._assemble_full()

    def _finalize_full(self, matrix: np.ndarray) -> None:
        """Shared bookkeeping of a full assembly (any route): install the
        operator and snapshot the reference configuration of the
        intermediate-refresh correction — the best-fit rotation is
        extracted against these points, with the surface quadrature
        weights as the (area-faithful) fit weights."""
        surf = self.surface
        self._matrix = matrix
        self._ref_matrix = matrix
        self._ref_area = surf.area()
        self._ref_points = surf.points.copy()
        self._ref_weights = surf.quadrature_weights().ravel().copy()
        self._rotated_geometry_stale = False

    def install_full(self, matrix: np.ndarray, X_rot: np.ndarray,
                     w_rot: np.ndarray) -> None:
        """Install an externally assembled full operator.

        Used by :meth:`repro.core.cellbatch.CellBatch.assemble_selfops`,
        which runs :func:`assemble_circulant` stacked over a same-order
        group of cells and scatters the slices here. The arrays must
        describe this surface's *current* geometry; the next
        :meth:`refresh` that lands on a full reassembly consumes the
        installed state instead of assembling its own.
        """
        self.X_rot = X_rot
        self.w_rot = w_rot
        self._finalize_full(matrix)
        self._pending_install = True

    def _best_fit_rotation(self) -> np.ndarray:
        """Kabsch best-fit rotation from the reference points to the
        current points (area-weighted, orientation-safe)."""
        w = self._ref_weights[:, None]
        wsum = w.sum()
        ref = self._ref_points
        cur = self.surface.points
        A = ref - (w * ref).sum(axis=0) / wsum
        B = cur - (w * cur).sum(axis=0) / wsum
        H = (w * A).T @ B
        U, _, Vt = np.linalg.svd(H)
        R = Vt.T @ U.T
        if np.linalg.det(R) < 0.0:          # exclude reflections
            Vt = Vt.copy()
            Vt[-1] *= -1.0
            R = Vt.T @ U.T
        return R

    def _correct_matrix(self) -> None:
        """First-order geometric correction of the last full assembly.

        The Stokeslet is translation-invariant, so a rigid translation
        leaves the assembled operator exactly unchanged; under a uniform
        dilation ``X -> c + s (X - c)`` the single layer scales exactly
        like ``s`` (weights ``s^2``, kernel ``1/s``); and under a rigid
        rotation ``X -> c + R (X - c)`` the operator conjugates exactly,
        ``S -> R S R^T`` blockwise (kernel covariance, rotation-invariant
        weights). The cheap intermediate refresh therefore applies the
        best-fit (Kabsch) rotation by conjugation and rescales by
        ``s = sqrt(area / area_ref)`` — exact for any similarity motion
        of the reference configuration; the remaining *shear* part of the
        shape change is the O(deformation) error bounded by the refresh
        interval (see ``NumericsOptions.selfop_refresh_interval``).

        The conjugation is gated on the rotation *angle*: a deforming
        but non-tumbling cell yields a small spurious best-fit rotation
        (measured ~1e-3 rad per cycle on the sedimentation benchmark,
        vs >=2.5e-2 rad for genuine tumbling in shear), and at that
        scale conjugating buys less than it costs in consistency with
        the per-cell factorized solvers frozen at the reference
        orientation — so below :data:`KABSCH_MIN_ANGLE` the exact
        closed-form translation/dilation correction of PR 3 is kept
        unchanged.
        """
        s = float(np.sqrt(self.surface.area() / self._ref_area))
        R = self._best_fit_rotation()
        angle = float(np.arccos(np.clip((np.trace(R) - 1.0) / 2.0,
                                        -1.0, 1.0)))
        if angle > self.KABSCH_MIN_ANGLE:
            n = self.surface.grid.n_points
            M4 = self._ref_matrix.reshape(n, 3, n, 3)
            M4 = np.einsum("ab,ibjc,dc->iajd", R, M4, R, optimize=True)
            self._matrix = s * M4.reshape(3 * n, 3 * n)
        else:
            # Translation/dilation/deformation-noise regime: skip the
            # near-identity conjugation, keeping those motions' exact
            # closed-form correction (and the PR 3 trajectories).
            self._matrix = s * self._ref_matrix
        # X_rot / w_rot still describe the reference geometry; only the
        # corrected operator matrix is valid until the next full assembly.
        self._rotated_geometry_stale = True

    def refresh(self, full: bool | None = None) -> bool:
        """Re-evaluate cached state after the surface has moved.

        ``full=None`` applies the amortization policy: a full reassembly
        every ``refresh_interval``-th call, the first-order correction in
        between. ``full=True`` forces reassembly (and restarts the cycle)
        — callers making out-of-band position changes (recycling,
        steering) should force it, since the correction is only accurate
        for the small per-step motion. Returns whether a full reassembly
        happened, so dependents (e.g. the per-cell factorized solvers)
        can align their own refresh cycle with this operator's.
        """
        if full is None:
            full = self.due_full()
        if full:
            if self._pending_install:
                # a stacked group assembly already installed this
                # geometry's operator (see install_full)
                self._pending_install = False
            else:
                self._assemble()
            self._since_full = 1
        else:
            self._pending_install = False
            self._correct_matrix()
            self._since_full += 1
        return full

    def due_full(self) -> bool:
        """Whether the next policy-driven ``refresh()`` (``full=None``)
        will be a full reassembly — lets the stepper route due cells
        through the stacked group assembly beforehand."""
        return self._since_full % self.refresh_interval == 0

    @property
    def matrix(self) -> np.ndarray:
        """The dense ``(3N, 3N)`` operator at the current geometry."""
        return self._matrix

    def apply(self, density: np.ndarray) -> np.ndarray:
        """Velocity on the surface from force density ``f`` (grid field).

        Shape in/out: ``(nlat, nphi, 3)``. One GEMV against the assembled
        operator matrix.
        """
        grid = self.surface.grid
        density = np.asarray(density, float)
        return (self._matrix @ density.ravel()).reshape(
            grid.nlat, grid.nphi, 3)

    def apply_reference(self, density: np.ndarray) -> np.ndarray:
        """Seed-path re-synthesis evaluation (reference for the assembled
        matrix; kept for verification and convergence tests).

        Only valid right after a full assembly: it mixes the cached
        rotated geometry with the surface's *current* position and
        coefficients, so after an intermediate (first-order-corrected)
        refresh it would compare against neither geometry.
        """
        if getattr(self, "_rotated_geometry_stale", False):
            raise RuntimeError(
                "apply_reference needs the cached rotated geometry of a "
                "full assembly, but only a first-order-corrected operator "
                "is current (selfop_refresh_interval > 1); call "
                "refresh(full=True) first")
        surf = self.surface
        tb = self.tables
        grid = surf.grid
        density = np.asarray(density, float).reshape(grid.nlat, grid.nphi, 3)
        cf = np.stack([surf.transform.forward(density[:, :, k]) for k in range(3)])
        packed = np.stack([pack_coeffs(cf[k]) for k in range(3)], axis=1)
        out = np.empty_like(density)
        scale = 1.0 / (8.0 * np.pi * self.viscosity)
        targets = surf.X
        C = (packed[:, None, :] * tb.phases[:, :, None]).reshape(tb.ncoef, -1)
        for i in range(grid.nlat):
            f_rot = (tb.B_val[i] @ C).reshape(tb.nrot, grid.nphi, 3).real
            f_rot = f_rot.transpose(1, 0, 2)                    # (nphi, nrot, 3)
            fw = f_rot * self.w_rot[i][:, :, None]
            r = targets[i][:, None, :] - self.X_rot[i]          # (nphi, nrot, 3)
            r2 = np.einsum("tsk,tsk->ts", r, r)
            inv_r = 1.0 / np.sqrt(r2)
            rf = np.einsum("tsk,tsk->ts", r, fw)
            out[i] = scale * (
                np.einsum("ts,tsk->tk", inv_r, fw)
                + np.einsum("ts,tsk->tk", rf * inv_r ** 3, r)
            )
        return out

"""Singular single-layer quadrature on spherical-harmonic surfaces.

For a target point on the surface of its own cell, the Stokes single-layer
integrand has a 1/r singularity. Following [48] and the quadrature rule of
Graham & Sloan [14] (paper Sec. 2.2), the sphere parametrization is rotated
so the target sits at the north pole; in rotated coordinates
``dS = (W / sin theta) sin psi dpsi dalpha`` and ``sin psi / r`` is smooth,
so a Gauss-Legendre rule in ``cos psi`` times a trapezoid rule in ``alpha``
converges spectrally.

The expensive, geometry-independent parts (rotated parameter coordinates
and complex synthesis matrices) depend only on the pair of orders
``(p, q_rot)`` and the target's *latitude row* — a rotation about the polar
axis only multiplies SH coefficients by phases. They are therefore built
once per order pair and cached (the "precomputed singular integration
operator" of [28] the paper credits with a substantial complexity
improvement).
"""
from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..quadrature import gauss_legendre
from ..sph.alp import normalized_alp, normalized_alp_theta_derivative
from ..sph.grid import get_grid
from ..sph.rotation import rotated_sphere_points
from ..surfaces import SpectralSurface

_POLE_GUARD = 1e-7


def _coeff_index(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Flattened (l, m) indexing of the dense (p+1, 2p+1) coefficient array."""
    ls, ms = [], []
    for l in range(p + 1):
        for m in range(-l, l + 1):
            ls.append(l)
            ms.append(m)
    return np.array(ls), np.array(ms)


def pack_coeffs(c: np.ndarray) -> np.ndarray:
    """Dense (p+1, 2p+1) coefficient array -> flat (l, m) vector."""
    p = c.shape[0] - 1
    ls, ms = _coeff_index(p)
    return c[ls, p + ms]


@lru_cache(maxsize=8)
class _RotationTables:
    """Per-(p, q_rot) cached rotation quadrature machinery."""

    def __init__(self, p: int, q_rot: int):
        self.p = p
        self.q_rot = q_rot
        grid = get_grid(p)
        self.grid = grid
        # Rotated quadrature rule: Gauss-Legendre in psi itself (not in
        # cos psi), trapezoid in alpha. Written in psi the single-layer
        # integrand is smooth: sin(psi)/r ~ sin(psi)/(2 sin(psi/2)) =
        # cos(psi/2), which is the cancellation the Graham-Sloan rule [14]
        # exploits; Gauss-Legendre in psi then converges spectrally.
        npsi = q_rot + 1
        nalpha = 2 * q_rot + 2
        psi, wpsi = gauss_legendre(npsi, 0.0, np.pi)
        wpsi = wpsi * np.sin(psi)  # fold in the sphere Jacobian
        alpha = 2.0 * np.pi * np.arange(nalpha) / nalpha
        PSI, ALPHA = np.meshgrid(psi, alpha, indexing="ij")
        self.weights = np.outer(wpsi, np.full(nalpha, 2.0 * np.pi / nalpha)).ravel()
        self.nrot = npsi * nalpha

        ls, ms = _coeff_index(p)
        self.ncoef = ls.size
        self.ms = ms

        # Per latitude row: rotated coordinates for phi0 = 0 and synthesis
        # matrices (value, d/dtheta, d/dphi) from packed coefficients.
        self.row_sin_theta_r = []
        self.B_val = []
        self.B_dth = []
        self.B_dph = []
        for i in range(grid.nlat):
            th_r, ph_r = rotated_sphere_points(grid.theta[i], 0.0,
                                               PSI.ravel(), ALPHA.ravel())
            th_r = np.clip(th_r, _POLE_GUARD, np.pi - _POLE_GUARD)
            x = np.cos(th_r)
            P, dP = normalized_alp_theta_derivative(p, x)
            phase = np.exp(1j * ms[None, :] * ph_r[:, None])  # (nrot, ncoef)
            sign = np.where(ms < 0, (-1.0) ** np.abs(ms), 1.0)
            Pm = P[ls, np.abs(ms), :].T * sign[None, :]   # (nrot, ncoef)
            dPm = dP[ls, np.abs(ms), :].T * sign[None, :]
            Bv = Pm * phase
            Bt = dPm * phase
            Bp = Bv * (1j * ms)[None, :]
            self.row_sin_theta_r.append(np.sin(th_r))
            self.B_val.append(Bv)
            self.B_dth.append(Bt)
            self.B_dph.append(Bp)


class SingularSelfInteraction:
    """Applies the singular single-layer operator ``S_i`` of one cell.

    ``apply(density)`` returns the velocity induced *on the cell's own
    surface* by a force density sampled on its grid — the implicit
    self-interaction term ``S_i f_i`` of paper Eq. (2.8).
    """

    def __init__(self, surface: SpectralSurface, viscosity: float = 1.0,
                 upsample: float = 1.5):
        self.surface = surface
        self.viscosity = viscosity
        p = surface.order
        q_rot = max(p, int(np.ceil(upsample * p)))
        self.tables = _RotationTables(p, q_rot)
        self._prepare_geometry()

    def _prepare_geometry(self) -> None:
        """Evaluate surface position and area element at all rotated points.

        These depend on the current configuration; call :meth:`refresh`
        after the surface moves.
        """
        surf = self.surface
        tb = self.tables
        grid = surf.grid
        cX = surf.coeffs()
        packed = np.stack([pack_coeffs(cX[k]) for k in range(3)], axis=1)  # (ncoef, 3)
        nlat, nphi = grid.nlat, grid.nphi
        nrot = tb.nrot
        self.X_rot = np.empty((nlat, nphi, nrot, 3))
        self.w_rot = np.empty((nlat, nphi, nrot))
        ms = tb.ms
        for i in range(nlat):
            phases = np.exp(1j * ms[:, None] * grid.phi[None, :])  # (ncoef, nphi)
            # batched synthesis over the row: (nrot, ncoef) @ (ncoef, nphi*3)
            C = packed[:, None, :] * phases[:, :, None]            # (ncoef, nphi, 3)
            C = C.reshape(tb.ncoef, nphi * 3)
            val = (tb.B_val[i] @ C).reshape(nrot, nphi, 3)
            dth = (tb.B_dth[i] @ C).reshape(nrot, nphi, 3)
            dph = (tb.B_dph[i] @ C).reshape(nrot, nphi, 3)
            Xr = val.real.transpose(1, 0, 2)
            Xt = dth.real.transpose(1, 0, 2)
            Xp = dph.real.transpose(1, 0, 2)
            W = np.linalg.norm(np.cross(Xt, Xp), axis=-1)
            self.X_rot[i] = Xr
            self.w_rot[i] = (W / tb.row_sin_theta_r[i][None, :]) * tb.weights[None, :]

    def refresh(self) -> None:
        """Re-evaluate cached geometry after the surface has moved."""
        self._prepare_geometry()

    def apply(self, density: np.ndarray) -> np.ndarray:
        """Velocity on the surface from force density ``f`` (grid field).

        Shape in/out: ``(nlat, nphi, 3)``.
        """
        surf = self.surface
        tb = self.tables
        grid = surf.grid
        density = np.asarray(density, float).reshape(grid.nlat, grid.nphi, 3)
        cf = np.stack([surf.transform.forward(density[:, :, k]) for k in range(3)])
        packed = np.stack([pack_coeffs(cf[k]) for k in range(3)], axis=1)
        out = np.empty_like(density)
        scale = 1.0 / (8.0 * np.pi * self.viscosity)
        ms = tb.ms
        targets = surf.X
        for i in range(grid.nlat):
            phases = np.exp(1j * ms[:, None] * grid.phi[None, :])
            C = (packed[:, None, :] * phases[:, :, None]).reshape(tb.ncoef, -1)
            f_rot = (tb.B_val[i] @ C).reshape(tb.nrot, grid.nphi, 3).real
            f_rot = f_rot.transpose(1, 0, 2)                    # (nphi, nrot, 3)
            fw = f_rot * self.w_rot[i][:, :, None]
            r = targets[i][:, None, :] - self.X_rot[i]          # (nphi, nrot, 3)
            r2 = np.einsum("tsk,tsk->ts", r, r)
            inv_r = 1.0 / np.sqrt(r2)
            rf = np.einsum("tsk,tsk->ts", r, fw)
            out[i] = scale * (
                np.einsum("ts,tsk->tk", inv_r, fw)
                + np.einsum("ts,tsk->tk", rf * inv_r ** 3, r)
            )
        return out

"""Vesicle (RBC) integral operators.

- :class:`SingularSelfInteraction` — spectrally-accurate single-layer
  self-interaction via the rotation trick of [48]/[14] (paper Sec. 2.2,
  "Other parallel quadrature methods").
- :func:`cell_cell_interaction` — smooth far quadrature between distinct
  cells with near-singular correction by upsampling + check-point
  interpolation (paper's scheme of [28, 43]).
"""
from .self_interaction import SingularSelfInteraction, assemble_circulant
from .near_singular import CellNearEvaluator

__all__ = ["SingularSelfInteraction", "CellNearEvaluator",
           "assemble_circulant"]

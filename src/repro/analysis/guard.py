"""Shared read-only table registry and the frozen-table context.

Every ``lru_cache``'d numpy-table factory in the library (quadrature
rules, SH transform tables, patch interpolation matrices, treecode cube
surfaces, rotation-quadrature tables, ...) hands the same arrays to
every cell / order / thread that asks. A single in-place write through
any of those references would silently corrupt every other user — the
exact shared-state hazard the executor determinism contract rules out.

:func:`freeze` is the enforcement point: factories pass their arrays
through it before returning, which (a) marks them non-writeable so a
mutating caller gets an immediate ``ValueError`` instead of a silent
corruption, and (b) registers them (by weak reference) in a
process-wide table so the ``"checked"`` executor can flip every known
shared table non-writeable for the duration of each ``map`` via
:func:`tables_frozen` — including arrays some code path unfroze or
registered without freezing.
"""
from __future__ import annotations

import contextlib
import functools
import threading
import weakref

import numpy as np

__all__ = ["DeterminismError", "freeze", "freeze_attributes",
           "register_shared", "iter_shared_arrays", "tables_frozen",
           "locked_cache", "PER_ORDER_CACHE_SIZE", "HEAVY_TABLE_CACHE_SIZE"]

# -- shared-table cache policy ---------------------------------------------
#
# The per-order tables are keyed by spherical-harmonic order (plus an
# aliasing order for some), and realistic sweeps mix at most a few dozen
# distinct orders — but the old bounds (8-32) were sized for a single
# simulation per process, where at most two orders are live. Under a
# mixed-order many-scene sweep, an lru_cache(8) rotation-table factory
# thrashes: scene A's table is evicted while scene A still runs, and the
# next refresh rebuilds it from scratch mid-job. The bounds below are
# the documented policy; both are far above any realistic live-order
# count, and entries are only built on demand, so raising them costs
# nothing for single-scene runs.

#: bound for cheap per-order tables (grids, SH transform tables,
#: quadrature rules): tens of kB per entry, so hundreds of entries are
#: negligible next to one simulation's state.
PER_ORDER_CACHE_SIZE = 128

#: bound for heavy per-order tables (rotation/circulant bundles, dense
#: grid-operator matrices, band-limit projectors): up to tens of MB per
#: entry at high order, so the bound stays moderate — still 4x the old
#: value, covering a 32-distinct-order concurrent sweep without
#: eviction.
HEAVY_TABLE_CACHE_SIZE = 32


def locked_cache(maxsize: int):
    """``lru_cache`` variant whose misses build under a lock.

    CPython's ``lru_cache`` is thread-safe for *lookups*, but two
    threads missing on the same key both call the factory and one
    result wins — for our table factories that means the same table is
    built twice (wasted seconds at high order) and the frozen-table
    registry holds a weakref to a table that is immediately dropped.
    This wrapper serializes the factory call with a re-entrant lock so
    concurrent first calls build exactly once and every caller gets the
    same object. Hits pay one uncontended lock acquire (~100 ns) on top
    of the cache lookup — invisible next to the numpy work all callers
    do with the result.

    ``cache_info`` / ``cache_clear`` are forwarded from the underlying
    ``lru_cache``.
    """
    def deco(fn):
        cached = functools.lru_cache(maxsize=maxsize)(fn)
        lock = threading.RLock()

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with lock:
                return cached(*args, **kwargs)

        wrapper.cache_info = cached.cache_info
        wrapper.cache_clear = cached.cache_clear
        wrapper.__wrapped__ = fn
        return wrapper
    return deco


class DeterminismError(RuntimeError):
    """A mapped task violated the executor determinism contract."""


#: weak references to every registered shared table (dead refs are
#: pruned lazily on iteration).
_shared: list = []  # repro-lint: disable=global-mutable — the process-wide shared-table registry is the point of this module; append-only weakrefs


def register_shared(arr: np.ndarray) -> np.ndarray:
    """Register ``arr`` as a shared read-mostly table (no freezing)."""
    _shared.append(weakref.ref(arr))
    return arr


def iter_shared_arrays():
    """Yield the live registered shared tables, pruning dead refs."""
    live = []
    for ref in _shared:
        arr = ref()
        if arr is not None:
            live.append(ref)
            yield arr
    _shared[:] = live


def freeze(*arrays):
    """Mark arrays read-only and register them as shared tables.

    Returns the single array, or the tuple, so factories can ``return
    freeze(x, w)`` directly. Non-array entries (e.g. ``None``) pass
    through untouched.
    """
    out = []
    for a in arrays:
        if isinstance(a, np.ndarray):
            a.setflags(write=False)
            register_shared(a)
        out.append(a)
    return out[0] if len(out) == 1 else tuple(out)


def freeze_attributes(obj) -> None:
    """Freeze every ndarray attribute of ``obj`` (one level deep into
    lists/tuples/dicts) — the class-instance variant of :func:`freeze`
    for cached table bundles like the SH grids and rotation tables."""
    for value in vars(obj).values():
        if isinstance(value, np.ndarray):
            freeze(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, np.ndarray):
                    freeze(item)
        elif isinstance(value, dict):
            for item in value.values():
                if isinstance(item, np.ndarray):
                    freeze(item)


@contextlib.contextmanager
def tables_frozen():
    """Hold every registered shared table non-writeable for the scope.

    Arrays already read-only (the normal state after :func:`freeze`) are
    left alone; arrays found writable are flipped for the duration and
    restored on exit. Re-entrant: the inner scope restores only what it
    flipped.
    """
    flipped = []
    for arr in iter_shared_arrays():
        if arr.flags.writeable:
            arr.setflags(write=False)
            flipped.append(arr)
    try:
        yield
    finally:
        for arr in flipped:
            arr.setflags(write=True)

"""Shared read-only table registry and the frozen-table context.

Every ``lru_cache``'d numpy-table factory in the library (quadrature
rules, SH transform tables, patch interpolation matrices, treecode cube
surfaces, rotation-quadrature tables, ...) hands the same arrays to
every cell / order / thread that asks. A single in-place write through
any of those references would silently corrupt every other user — the
exact shared-state hazard the executor determinism contract rules out.

:func:`freeze` is the enforcement point: factories pass their arrays
through it before returning, which (a) marks them non-writeable so a
mutating caller gets an immediate ``ValueError`` instead of a silent
corruption, and (b) registers them (by weak reference) in a
process-wide table so the ``"checked"`` executor can flip every known
shared table non-writeable for the duration of each ``map`` via
:func:`tables_frozen` — including arrays some code path unfroze or
registered without freezing.
"""
from __future__ import annotations

import contextlib
import weakref

import numpy as np

__all__ = ["DeterminismError", "freeze", "freeze_attributes",
           "register_shared", "iter_shared_arrays", "tables_frozen"]


class DeterminismError(RuntimeError):
    """A mapped task violated the executor determinism contract."""


#: weak references to every registered shared table (dead refs are
#: pruned lazily on iteration).
_shared: list = []


def register_shared(arr: np.ndarray) -> np.ndarray:
    """Register ``arr`` as a shared read-mostly table (no freezing)."""
    _shared.append(weakref.ref(arr))
    return arr


def iter_shared_arrays():
    """Yield the live registered shared tables, pruning dead refs."""
    live = []
    for ref in _shared:
        arr = ref()
        if arr is not None:
            live.append(ref)
            yield arr
    _shared[:] = live


def freeze(*arrays):
    """Mark arrays read-only and register them as shared tables.

    Returns the single array, or the tuple, so factories can ``return
    freeze(x, w)`` directly. Non-array entries (e.g. ``None``) pass
    through untouched.
    """
    out = []
    for a in arrays:
        if isinstance(a, np.ndarray):
            a.setflags(write=False)
            register_shared(a)
        out.append(a)
    return out[0] if len(out) == 1 else tuple(out)


def freeze_attributes(obj) -> None:
    """Freeze every ndarray attribute of ``obj`` (one level deep into
    lists/tuples/dicts) — the class-instance variant of :func:`freeze`
    for cached table bundles like the SH grids and rotation tables."""
    for value in vars(obj).values():
        if isinstance(value, np.ndarray):
            freeze(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, np.ndarray):
                    freeze(item)
        elif isinstance(value, dict):
            for item in value.values():
                if isinstance(item, np.ndarray):
                    freeze(item)


@contextlib.contextmanager
def tables_frozen():
    """Hold every registered shared table non-writeable for the scope.

    Arrays already read-only (the normal state after :func:`freeze`) are
    left alone; arrays found writable are flipped for the duration and
    restored on exit. Re-entrant: the inner scope restores only what it
    flipped.
    """
    flipped = []
    for arr in iter_shared_arrays():
        if arr.flags.writeable:
            arr.setflags(write=False)
            flipped.append(arr)
    try:
        yield
    finally:
        for arr in flipped:
            arr.setflags(write=True)

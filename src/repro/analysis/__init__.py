"""Correctness tooling for the executor pipeline's determinism contract.

Three runtime counterparts to the static passes of ``tools/repro_lint``:

- :mod:`repro.analysis.contracts` — the ``@checked`` array-contract
  decorator (shape/dtype verification of the hot public seams, active
  only under ``NumericsOptions.debug_checks`` / ``REPRO_DEBUG=1``).
- :mod:`repro.analysis.guard` — the shared read-only table registry:
  ``freeze`` marks cached numpy tables immutable and registers them so
  the ``"checked"`` executor can hold every shared table non-writeable
  for the duration of each ``map``.
- :mod:`repro.analysis.faultinject` — deterministic fault injection
  (NaN poisoning, forced non-convergence, task crashes) for driving the
  recovery paths of :mod:`repro.resilience` in tests and CI.
"""
from .contracts import (ContractViolation, checked, checks_enabled,
                        debug_checks, set_debug_checks)
from .faultinject import (InjectedFault, force_nonconvergence,
                          force_unresolved_contact, inject_nan,
                          raise_in_task)
from .guard import (DeterminismError, freeze, freeze_attributes,
                    iter_shared_arrays, register_shared, tables_frozen)

__all__ = [
    "ContractViolation", "checked", "checks_enabled", "debug_checks",
    "set_debug_checks",
    "DeterminismError", "freeze", "freeze_attributes",
    "iter_shared_arrays", "register_shared", "tables_frozen",
    "InjectedFault", "inject_nan", "force_nonconvergence",
    "force_unresolved_contact", "raise_in_task",
]

"""Correctness tooling for the executor pipeline's determinism contract.

Two runtime counterparts to the static passes of ``tools/repro_lint``:

- :mod:`repro.analysis.contracts` — the ``@checked`` array-contract
  decorator (shape/dtype verification of the hot public seams, active
  only under ``NumericsOptions.debug_checks`` / ``REPRO_DEBUG=1``).
- :mod:`repro.analysis.guard` — the shared read-only table registry:
  ``freeze`` marks cached numpy tables immutable and registers them so
  the ``"checked"`` executor can hold every shared table non-writeable
  for the duration of each ``map``.
"""
from .contracts import (ContractViolation, checked, checks_enabled,
                        debug_checks, set_debug_checks)
from .guard import (DeterminismError, freeze, freeze_attributes,
                    iter_shared_arrays, register_shared, tables_frozen)

__all__ = [
    "ContractViolation", "checked", "checks_enabled", "debug_checks",
    "set_debug_checks",
    "DeterminismError", "freeze", "freeze_attributes",
    "iter_shared_arrays", "register_shared", "tables_frozen",
]

"""Deterministic fault injection for exercising the resilience layer.

The recovery paths of :mod:`repro.resilience` — backend degradation,
dt-halved retries, rollback on a crashed stage — only fire on inputs a
healthy test scene never produces. This module manufactures those
conditions *deterministically*: each injector is a context manager that
wraps one bound method of a live object and perturbs a chosen window of
its calls (``start``-th through ``start + count - 1``-th, counted from
0), then restores the original binding on exit. Call counting makes the
injections reproducible run-to-run — the same step, the same cell, the
same stage — which the recovery tests rely on to assert *which* path
fired.

The wrappers are installed as instance attributes (shadowing the class
method), so only the targeted object is affected and unrelated
simulations in the same process stay clean.
"""
from __future__ import annotations

import contextlib
import dataclasses

import numpy as np


class InjectedFault(RuntimeError):
    """Raised by :func:`raise_in_call`-style injections; a subclass of
    ``RuntimeError`` so the transactional step classifies it as
    recoverable (the point is to test recovery)."""


class _CallCounter:
    """Shared call-window bookkeeping of one injection."""

    def __init__(self, start: int, count: int):
        self.start = int(start)
        self.count = int(count)
        self.calls = 0
        #: how many calls were actually perturbed (assert on this to
        #: verify the injection really fired).
        self.fired = 0

    def active(self) -> bool:
        i = self.calls
        self.calls += 1
        hit = self.start <= i < self.start + self.count
        if hit:
            self.fired += 1
        return hit


def _poison_first_array(result):
    """Overwrite the first float of the first ndarray found in ``result``
    (directly, or inside a list/tuple) with NaN; returns the poisoned
    result."""
    if isinstance(result, np.ndarray):
        out = np.array(result, dtype=float)
        out.reshape(-1)[0] = np.nan
        return out
    if isinstance(result, (list, tuple)):
        items = list(result)
        for k, item in enumerate(items):
            if isinstance(item, np.ndarray):
                items[k] = _poison_first_array(item)
                break
        return type(result)(items) if isinstance(result, tuple) else items
    raise TypeError(f"no ndarray to poison in {type(result).__name__}")


def _mark_nonconverged(result):
    """Flip ``converged=False`` on a dataclass result (or on each
    dataclass element of a tuple that has a ``converged`` field)."""
    if dataclasses.is_dataclass(result):
        return dataclasses.replace(result, converged=False)
    if isinstance(result, tuple):
        return tuple(
            dataclasses.replace(item, converged=False)
            if dataclasses.is_dataclass(item)
            and any(f.name == "converged"
                    for f in dataclasses.fields(item)) else item
            for item in result)
    raise TypeError(f"cannot mark {type(result).__name__} non-converged")


@contextlib.contextmanager
def _wrap_method(obj, method: str, make_wrapper):
    """Install ``make_wrapper(original, counter)`` over ``obj.method``
    for the duration of the block; yields the :class:`_CallCounter`."""
    original = getattr(obj, method)
    counter = make_wrapper.counter
    setattr(obj, method, make_wrapper(original))
    try:
        yield counter
    finally:
        # remove the instance shadow; fall back to deleting when the
        # original was itself an instance attribute
        try:
            delattr(obj, method)
            getattr(obj, method)
        except AttributeError:
            setattr(obj, method, original)


def _injector(start, count, transform):
    def factory(original):
        def wrapper(*args, **kwargs):
            result = original(*args, **kwargs)
            if factory.counter.active():
                return transform(result)
            return result
        return wrapper
    factory.counter = _CallCounter(start, count)
    return factory


@contextlib.contextmanager
def inject_nan(obj, method: str, start: int = 0, count: int = 1):
    """Poison the result of ``obj.method`` with a NaN on the chosen call
    window (the first ndarray in the result gets ``result.flat[0] =
    nan``). E.g. ``inject_nan(sim.backend, "cell_cell")`` makes the fast
    backend emit a non-finite velocity — the trigger of the graceful
    backend degradation."""
    with _wrap_method(obj, method,
                      _injector(start, count, _poison_first_array)) as c:
        yield c


@contextlib.contextmanager
def force_nonconvergence(obj, method: str, start: int = 0, count: int = 1):
    """Flip the ``converged`` flag of ``obj.method``'s dataclass result
    to ``False`` on the chosen call window (e.g. an LCP/GMRES result) —
    the trigger of a sentinel rejection and dt backoff."""
    with _wrap_method(obj, method,
                      _injector(start, count, _mark_nonconverged)) as c:
        yield c


@contextlib.contextmanager
def force_unresolved_contact(ncp, start: int = 0, count: int = 1):
    """Mark the :class:`~repro.collision.ncp.NCPReport` of
    ``ncp.project`` unresolved on the chosen call window, as if the LCP
    loop had exhausted its linearizations with penetration left."""

    def transform(result):
        positions, report = result
        return positions, dataclasses.replace(
            report, resolved=False, contact_active=True)

    with _wrap_method(ncp, "project",
                      _injector(start, count, transform)) as c:
        yield c


@contextlib.contextmanager
def raise_in_task(executor, start: int = 0, count: int = 1):
    """Make the first task of ``executor.map`` raise
    :class:`InjectedFault` on the chosen window of ``map`` calls —
    exercises rollback after a crash *inside* a mapped per-cell stage."""

    def factory(original):
        def wrapper(fn, items, *args, **kwargs):
            if factory.counter.active():
                items = list(items)

                def failing(item, _first=items[0] if items else None):
                    if items and item == _first:
                        raise InjectedFault(
                            "injected task failure (faultinject)")
                    return fn(item)
                return original(failing, items, *args, **kwargs)
            return original(fn, items, *args, **kwargs)
        return wrapper
    factory.counter = _CallCounter(start, count)
    with _wrap_method(executor, "map", factory) as c:
        yield c

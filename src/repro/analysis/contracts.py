"""Array contracts for the hot public seams.

``@checked`` attaches a shape/dtype contract to a function::

    @checked(src="(ns,3) f8", weighted_density="(ns,3) f8",
             out="(nt,3) f8")
    def stokes_slp_apply(src, weighted_density, trg, ...): ...

Specs are ``"(dim, dim, ...) dtype"`` where each dim is an integer
literal, a symbol (bound on first use and required to match everywhere
it reappears in the same call — across arguments *and* the return
value), a product ``k*SYM`` (the dimension must be divisible by ``k``;
binds ``SYM``), or a leading ``...`` matching any batch dims. The dtype
is a numpy dtype code (``f8``, ``f4``, ``c16``, ``i8``, ...) and may be
omitted for a shape-only contract; a spec without parentheses
(``"f8"``) checks dtype only.

The decorator is near-zero-cost by default: the wrapper tests one module
flag and calls through. Verification turns on process-wide via
``REPRO_DEBUG=1`` in the environment, :func:`set_debug_checks`, or
``NumericsOptions.debug_checks`` (the time stepper enables checking when
constructed with it). Violations raise :class:`ContractViolation` naming
the function, the argument and the mismatch.

The static half lives in ``tools/repro_lint``: the ``contract-dtype``
rule cross-checks each declared dtype against literal ``astype`` /
``dtype=`` constructor choices in the decorated function's body, so a
hard-coded downcast contradicting the contract is caught at lint time
without running anything.
"""
from __future__ import annotations

import contextlib
import functools
import inspect
import os
import re

import numpy as np

__all__ = ["ContractViolation", "checked", "checks_enabled",
           "debug_checks", "set_debug_checks", "parse_spec"]


class ContractViolation(TypeError):
    """An array failed the shape/dtype contract of a ``@checked`` seam."""


#: process-wide switch; flipping it affects every decorated seam at once.
_enabled = os.environ.get("REPRO_DEBUG", "") not in ("", "0")


def checks_enabled() -> bool:
    """Whether ``@checked`` contracts are currently verified."""
    return _enabled


def set_debug_checks(on: bool) -> None:
    """Turn contract verification on/off process-wide."""
    global _enabled
    _enabled = bool(on)


@contextlib.contextmanager
def debug_checks(on: bool = True):
    """Context manager scoping :func:`set_debug_checks` (used in tests)."""
    global _enabled
    prev = _enabled
    _enabled = bool(on)
    try:
        yield
    finally:
        _enabled = prev


_DIM_RE = re.compile(r"^(?:(\d+)\*)?([A-Za-z_]\w*)$")


def parse_spec(spec: str) -> tuple[tuple | None, np.dtype | None]:
    """Parse ``"(n,3) f8"`` into (shape template, dtype).

    The shape template is a tuple of ``int`` (literal), ``str``
    (symbol), ``(k, sym)`` (product) and ``Ellipsis`` (leading batch
    dims) entries; either half may be ``None`` when absent.
    """
    spec = spec.strip()
    shape: tuple | None = None
    dtype: np.dtype | None = None
    m = re.match(r"^\(([^)]*)\)\s*(\S+)?$", spec)
    if m:
        dims: list = []
        body = m.group(1).strip()
        parts = [d.strip() for d in body.split(",")] if body else []
        for k, d in enumerate(parts):
            if d == "":      # trailing comma of a 1-tuple: "(n,)"
                continue
            if d == "...":
                if k != 0:
                    raise ValueError(
                        f"'...' must lead the shape spec: {spec!r}")
                dims.append(Ellipsis)
            elif d.isdigit():
                dims.append(int(d))
            else:
                dm = _DIM_RE.match(d)
                if dm is None:
                    raise ValueError(f"bad dimension {d!r} in spec {spec!r}")
                mult, sym = dm.groups()
                dims.append((int(mult), sym) if mult else sym)
        shape = tuple(dims)
        if m.group(2):
            dtype = np.dtype(m.group(2))
    else:
        dtype = np.dtype(spec)
    return shape, dtype


def _check_one(fname: str, name: str, value, shape, dtype,
               env: dict) -> None:
    arr = np.asanyarray(value)
    if dtype is not None and arr.dtype != dtype:
        raise ContractViolation(
            f"{fname}: {name} has dtype {arr.dtype}, contract says {dtype}")
    if shape is None:
        return
    dims = list(shape)
    got = arr.shape
    if dims and dims[0] is Ellipsis:
        dims = dims[1:]
        if len(got) < len(dims):
            raise ContractViolation(
                f"{fname}: {name} has shape {got}, contract needs at least "
                f"{len(dims)} trailing dims {tuple(dims)}")
        got = got[len(arr.shape) - len(dims):]
    elif len(got) != len(dims):
        raise ContractViolation(
            f"{fname}: {name} has shape {arr.shape}, contract says "
            f"{len(dims)} dims {tuple(dims)}")
    for want, have in zip(dims, got):
        if isinstance(want, int):
            if have != want:
                raise ContractViolation(
                    f"{fname}: {name} has shape {arr.shape}, contract "
                    f"pins a dim to {want}")
        elif isinstance(want, str):
            bound = env.setdefault(want, have)
            if bound != have:
                raise ContractViolation(
                    f"{fname}: {name} has shape {arr.shape}, but symbol "
                    f"{want!r} is already bound to {bound} in this call")
        else:                       # (k, sym) product
            k, sym = want
            if have % k != 0:
                raise ContractViolation(
                    f"{fname}: {name} has shape {arr.shape}; dim {have} "
                    f"is not a multiple of {k} ({k}*{sym})")
            bound = env.setdefault(sym, have // k)
            if bound != have // k:
                raise ContractViolation(
                    f"{fname}: {name} has shape {arr.shape}, but symbol "
                    f"{sym!r} is already bound to {bound} in this call")


def checked(**specs: str):
    """Attach shape/dtype contracts to arguments (by name) and ``out``.

    Near-zero-cost unless :func:`checks_enabled`; see the module
    docstring for the spec language.
    """
    parsed = {name: parse_spec(s) for name, s in specs.items()}

    def decorate(fn):
        sig = inspect.signature(fn)
        for name in parsed:
            if name != "out" and name not in sig.parameters:
                raise TypeError(
                    f"@checked on {fn.__qualname__}: no parameter {name!r}")

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            bound = sig.bind(*args, **kwargs)
            env: dict = {}
            for name, (shape, dtype) in parsed.items():
                if name == "out" or name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                if value is None:
                    continue
                _check_one(fn.__qualname__, name, value, shape, dtype, env)
            result = fn(*args, **kwargs)
            if "out" in parsed and result is not None:
                shape, dtype = parsed["out"]
                _check_one(fn.__qualname__, "return value", result, shape,
                           dtype, env)
            return result

        wrapper.__contracts__ = dict(specs)
        return wrapper

    return decorate

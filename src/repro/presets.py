"""Named, serializable configurations for the paper's scenario family.

Each function returns a fresh :class:`~repro.config.ReproConfig` wired
with the force terms and numerics of one experiment from the paper
(conf_sc_LuMRSZ19); tweak via keyword arguments or
``dataclasses.replace``. All presets round-trip through JSON::

    cfg = presets.sedimentation()
    presets.ensure_roundtrip(cfg)   # raises ValueError on any drift

:func:`ensure_roundtrip` is the library's guard for configs carrying
custom force terms: it reports exactly which fields fail to survive
serialization instead of asserting.
"""
from __future__ import annotations

import dataclasses

from .config import NumericsOptions, ReproConfig
from .physics.terms import Bending, Gravity, ShearFlow, Tension


def ensure_roundtrip(cfg: ReproConfig) -> ReproConfig:
    """Verify ``cfg`` survives a JSON round-trip; return the reconstruction.

    Raises ``ValueError`` naming every top-level field whose
    reconstructed value differs from the original — typically a custom
    force term whose ``to_dict``/``from_dict`` drop a parameter.
    """
    back = ReproConfig.from_json(cfg.to_json())
    if back == cfg:
        return back
    diffs = []
    for fld in dataclasses.fields(cfg):
        a = getattr(cfg, fld.name)
        b = getattr(back, fld.name)
        if a != b:
            diffs.append(f"  {fld.name}: {a!r} != {b!r}")
    detail = "\n".join(diffs) or "  (values differ only inside nested objects)"
    raise ValueError(
        "config does not round-trip through JSON; differing fields:\n"
        + detail)


def _light_numerics(**overrides) -> NumericsOptions:
    """Scaled-down numerics used by the runnable mini-experiments."""
    base = dict(patch_quad=7, check_order=4, upsample_eta=1,
                check_r_factor=0.25, gmres_max_iter=20)
    base.update(overrides)
    return NumericsOptions(**base)


def sedimentation(delta_rho: float = 1.5, dt: float = 0.08,
                  bending_modulus: float = 0.02) -> ReproConfig:
    """Gravity-driven settling in a closed container (paper Fig. 7)."""
    return ReproConfig(
        dt=dt,
        forces=[Bending(bending_modulus),
                Gravity(delta_rho, (0.0, 0.0, -1.0))],
        with_collisions=True,
        numerics=_light_numerics(gmres_max_iter=10))


def shear(rate: float = 1.0, dt: float = 0.1,
          bending_modulus: float = 0.02) -> ReproConfig:
    """Cells overtaking each other in linear shear flow (paper Figs. 10/11).

    Free-space scenario: numerics stay at the library defaults so the
    temporal-convergence benchmark keeps its committed baseline fidelity.
    """
    return ReproConfig(
        dt=dt,
        forces=[Bending(bending_modulus), ShearFlow(rate)],
        with_collisions=True,
        numerics=NumericsOptions())


def vessel_flow(dt: float = 0.05, bending_modulus: float = 0.02
                ) -> ReproConfig:
    """Pressure-driven flow of a filled vessel (paper Fig. 1 runs)."""
    return ReproConfig(
        dt=dt,
        forces=[Bending(bending_modulus)],
        with_collisions=True,
        numerics=_light_numerics())


def relaxation(dt: float = 0.05, bending_modulus: float = 0.05
               ) -> ReproConfig:
    """A single cell relaxing in quiescent fluid (the quickstart).

    Free-space scenario: numerics stay at the library defaults.
    """
    return ReproConfig(
        dt=dt,
        forces=[Bending(bending_modulus)],
        with_collisions=False,
        numerics=NumericsOptions())


def strong_scaling(dt: float = 0.05) -> ReproConfig:
    """Strong-scaling runs (paper Fig. 4): full tolerances, the paper's
    check-point spacing R = r = 0.15 L, treecode far field."""
    return ReproConfig(
        dt=dt,
        forces=[Bending(0.01), Tension()],
        backend="treecode",
        with_collisions=True,
        numerics=NumericsOptions(check_r_factor=0.15))


def weak_scaling(dt: float = 0.05) -> ReproConfig:
    """Weak-scaling runs (paper Figs. 5/6): check-point spacing 0.1 L,
    treecode far field."""
    return ReproConfig(
        dt=dt,
        forces=[Bending(0.01), Tension()],
        backend="treecode",
        with_collisions=True,
        numerics=NumericsOptions(check_r_factor=0.1))


# repro-lint: disable=global-mutable — name->factory table written once here at import time, read-only afterwards
ALL = {
    "sedimentation": sedimentation,
    "shear": shear,
    "vessel_flow": vessel_flow,
    "relaxation": relaxation,
    "strong_scaling": strong_scaling,
    "weak_scaling": weak_scaling,
}

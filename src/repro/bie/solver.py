"""Nystrom discretization and GMRES solution of the boundary equation."""
from __future__ import annotations

import dataclasses
from typing import Callable, Literal, Optional

import numpy as np

from ..config import NumericsOptions
from ..kernels import (
    laplace_dlp_apply,
    laplace_dlp_matrix,
    stokes_dlp_apply,
    stokes_dlp_matrix,
)
from ..linalg import gmres
from ..patches import PatchSurface, surface_closest_point
from ..quadrature import extrapolation_weights
from ..quadrature.interpolation import chebyshev_lobatto_nodes, interp_matrix_2d

KernelName = Literal["stokes", "laplace"]


@dataclasses.dataclass
class BIESolveReport:
    """Diagnostics of one boundary solve."""

    iterations: int
    residual: float
    converged: bool
    matvecs: int


def _upsample_matrix(q: int, k: int) -> np.ndarray:
    """Interpolation from a patch's q x q nodes to the nodes of its k x k
    subpatches, rows ordered to match ``ChebPatch.subdivide`` + per-subpatch
    tensor-CC node ordering."""
    nodes = chebyshev_lobatto_nodes(q)
    rows = []
    for bi in range(k):
        for bj in range(k):
            lo_u = -1.0 + 2.0 * bi / k
            lo_v = -1.0 + 2.0 * bj / k
            U, V = np.meshgrid(lo_u + (nodes + 1.0) / k,
                               lo_v + (nodes + 1.0) / k, indexing="ij")
            uv = np.column_stack([U.ravel(), V.ravel()])
            rows.append(interp_matrix_2d(q, uv))
    return np.vstack(rows)


class BoundarySolver:
    """Boundary solver for the interior Dirichlet problem on Gamma.

    Parameters
    ----------
    surface:
        Closed patch surface with outward normals (fluid inside).
    kernel:
        ``"stokes"`` (3 components, rank completion N on) or ``"laplace"``
        (scalar, rank completion off — the interior Laplace DLP equation
        is already full rank).
    viscosity:
        Stokes viscosity mu.
    check_r_factor / check_order:
        Check points at distances ``(R + i r)`` along the inward normal,
        ``R = r = check_r_factor * L`` with L the owning patch size and
        ``i = 0..check_order`` (paper Sec. 5.1 uses 0.15 L, p = 8).
    """

    def __init__(self, surface: PatchSurface, kernel: KernelName = "stokes",
                 viscosity: float = 1.0,
                 options: Optional[NumericsOptions] = None,
                 rank_completion: Optional[bool] = None,
                 far_backend: Optional[Callable] = None):
        self.surface = surface
        self.kernel: KernelName = kernel
        self.viscosity = viscosity
        self.options = options or surface.options
        self.ncomp = 3 if kernel == "stokes" else 1
        self.rank_completion = (kernel == "stokes") if rank_completion is None \
            else rank_completion
        self.far_backend = far_backend

        opts = self.options
        self.coarse = surface.coarse()
        self.fine = surface.fine()
        self.N = self.coarse.points.shape[0]
        q = opts.patch_quad
        k = 2 ** opts.upsample_eta
        self._Mup = _upsample_matrix(q, k)
        self._q2 = q * q

        # Check points: per coarse node, p+1 points along the inward normal.
        p = opts.check_order
        L = surface.patch_sizes()[self.coarse.patch_of]
        self._Rr = opts.check_r_factor * L                        # (N,)
        offsets = (1.0 + np.arange(p + 1))[None, :] * self._Rr[:, None]
        self.check_points = (self.coarse.points[:, None, :]
                             - offsets[:, :, None] * self.coarse.normals[:, None, :]
                             ).reshape(-1, 3)
        # Scale-invariant extrapolation weights to the surface (t = 0).
        self._extrap = extrapolation_weights(1.0, 1.0, p, 0.0)

        self._dense_dlp: Optional[np.ndarray] = None
        self._A: Optional[np.ndarray] = None

    # -- internals -------------------------------------------------------------
    def _upsample(self, phi: np.ndarray) -> np.ndarray:
        """Density on coarse nodes -> fine nodes (per-patch polynomial
        interpolation), shape (N_fine, ncomp)."""
        npatch = self.surface.n_patches
        per = phi.reshape(npatch, self._q2, self.ncomp)
        fine = np.einsum("fc,pcn->pfn", self._Mup, per)
        return fine.reshape(-1, self.ncomp)

    def _dlp_to_points(self, weighted_fine: np.ndarray,
                       targets: np.ndarray) -> np.ndarray:
        """Smooth double-layer quadrature from fine nodes to targets."""
        if self.far_backend is not None:
            return self.far_backend(self.fine.points, self.fine.normals,
                                    weighted_fine, targets)
        if self.kernel == "stokes":
            return stokes_dlp_apply(self.fine.points, self.fine.normals,
                                    weighted_fine, targets)
        return laplace_dlp_apply(self.fine.points, self.fine.normals,
                                 weighted_fine.ravel(), targets)[:, None]

    def _maybe_dense(self, max_bytes: float = 1.5e9) -> Optional[np.ndarray]:
        """Precompute the fine-to-check-point DLP matrix when it fits.

        The geometry is fixed during a solve, so caching this operator
        turns every GMRES iteration into one BLAS multiply.
        """
        if self._dense_dlp is not None:
            return self._dense_dlp
        nt = self.check_points.shape[0]
        ns = self.fine.points.shape[0]
        nbytes = (nt * self.ncomp) * (ns * self.ncomp) * 8.0
        if nbytes > max_bytes:
            return None
        if self.kernel == "stokes":
            M = stokes_dlp_matrix(self.fine.points, self.fine.normals,
                                  self.check_points)
        else:
            M = laplace_dlp_matrix(self.fine.points, self.fine.normals,
                                   self.check_points)
        self._dense_dlp = M
        return M

    def _check_values(self, weighted_fine: np.ndarray) -> np.ndarray:
        M = self._maybe_dense() if self.far_backend is None else None
        if M is not None:
            if self.kernel == "stokes":
                vals = (M @ weighted_fine.reshape(-1)).reshape(-1, 3)
            else:
                vals = (M @ weighted_fine.ravel())[:, None]
        else:
            vals = self._dlp_to_points(weighted_fine, self.check_points)
        return vals

    # -- precomputed singular operator (the [28] optimization) -------------------
    def assemble(self, check_chunk: int = 4096) -> np.ndarray:
        """Assemble the dense Nystrom matrix A of Eq. (3.5).

        The operator is the composition (extrapolate) o (smooth DLP from
        the fine grid to the check points) o (weights) o (upsample); since
        the upsample operator is block-diagonal per patch, A is assembled
        patch-by-patch with BLAS matmuls and costs O(N_check * N_fine *
        q^2) once — after which every GMRES iteration (and every time step
        on a static vessel) is a single gemv. This is the precomputed
        singular integration operator of [28] cited in paper Sec. 2.2.
        """
        if self._A is not None:
            return self._A
        nc = self.ncomp
        q2 = self._q2
        k2 = 4 ** self.options.upsample_eta
        npatch = self.surface.n_patches
        p1 = self.options.check_order + 1
        N = self.N
        A = np.zeros((N * nc, N * nc))
        fine_per_patch = k2 * q2
        checks = self.check_points
        e = self._extrap
        # Align chunks with whole coarse nodes (p1 check points each).
        chunk = max(p1, (check_chunk // p1) * p1)

        for pi in range(npatch):
            sl = slice(pi * fine_per_patch, (pi + 1) * fine_per_patch)
            src = self.fine.points[sl]
            nrm = self.fine.normals[sl]
            w = self.fine.weights[sl]
            # Weighted upsample operator for this patch: (nfine_p, q2).
            B = w[:, None] * self._Mup
            cols = slice(pi * q2 * nc, (pi + 1) * q2 * nc)
            for a in range(0, checks.shape[0], chunk):
                trg = checks[a:a + chunk]
                m = trg.shape[0]
                mn = m // p1          # whole coarse nodes in this chunk
                n0 = a // p1
                if nc == 3:
                    K = stokes_dlp_matrix(src, nrm, trg)      # (3m, 3nf)
                    Kr = K.reshape(3 * m, fine_per_patch, 3)
                    Kt = np.ascontiguousarray(Kr.transpose(0, 2, 1)
                                              ).reshape(9 * m, fine_per_patch)
                    Ct = (Kt @ B).reshape(3 * m, 3, q2)
                    C = Ct.transpose(0, 2, 1).reshape(m, 3, q2 * 3)
                    # extrapolation contraction over the p1 checks per node
                    D = np.einsum("q,nqcs->ncs", e,
                                  C.reshape(mn, p1, 3, q2 * 3))
                    A[n0 * 3:(n0 + mn) * 3, cols] += D.reshape(mn * 3, q2 * 3)
                else:
                    K = laplace_dlp_matrix(src, nrm, trg)     # (m, nf)
                    C = (K @ B).reshape(mn, p1, q2)
                    D = np.einsum("q,nqs->ns", e, C)
                    A[n0:n0 + mn, cols] += D
        if self.rank_completion:
            wn = (self.coarse.weights[:, None] * self.coarse.normals).reshape(-1)
            nrm = self.coarse.normals.reshape(-1)
            A += np.outer(nrm, wn)
        self._A = A
        return A

    # -- the Nystrom operator ----------------------------------------------------
    def apply(self, phi: np.ndarray) -> np.ndarray:
        """Apply the discrete operator A of Eq. (3.5): the interior limit of
        the double layer (which carries the +1/2 jump) plus the rank
        completion N."""
        phi = np.asarray(phi, float).reshape(self.N, self.ncomp)
        fine_phi = self._upsample(phi)
        weighted = fine_phi * self.fine.weights[:, None]
        p1 = self.options.check_order + 1
        vals = self._check_values(weighted).reshape(self.N, p1, self.ncomp)
        out = np.einsum("q,nqc->nc", self._extrap, vals)
        if self.rank_completion:
            flux = np.einsum("n,nk,nk->", self.coarse.weights,
                             phi, self.coarse.normals)
            out = out + flux * self.coarse.normals
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.apply(x).ravel()

    # -- solve ---------------------------------------------------------------
    def solve(self, g: np.ndarray, tol: Optional[float] = None,
              max_iter: Optional[int] = None
              ) -> tuple[np.ndarray, BIESolveReport]:
        """Solve A phi = g for the density.

        ``g`` is the Dirichlet data at the coarse nodes, shape (N, ncomp)
        (or flat). Returns (phi, report); GMRES iterations are capped per
        paper Sec. 5.1.
        """
        g = np.asarray(g, float).reshape(self.N, self.ncomp)
        n_dof = self.N * self.ncomp
        if self._A is None and n_dof <= 45000:
            self.assemble()
        mv = (lambda x: self._A @ x) if self._A is not None else self.matvec
        res = gmres(mv, g.ravel(),
                    tol=tol if tol is not None else self.options.gmres_tol,
                    max_iter=max_iter if max_iter is not None else self.options.gmres_max_iter)
        report = BIESolveReport(iterations=res.iterations,
                                residual=res.final_residual,
                                converged=res.converged, matvecs=res.matvecs)
        return res.x.reshape(self.N, self.ncomp), report

    # -- off-surface evaluation -----------------------------------------------
    def evaluate(self, phi: np.ndarray, targets: np.ndarray,
                 near_tol_factor: float = 1.5) -> np.ndarray:
        """Evaluate u_Gamma = D phi at points inside the domain.

        Targets within ``near_tol_factor * (R + p r)`` of the surface use
        the check-point extrapolation anchored at their closest point
        (near-singular integration, Sec. 3.1); the rest use the smooth
        fine-grid quadrature directly.
        """
        phi = np.asarray(phi, float).reshape(self.N, self.ncomp)
        targets = np.atleast_2d(np.asarray(targets, float))
        fine_phi = self._upsample(phi)
        weighted = fine_phi * self.fine.weights[:, None]
        out = self._dlp_to_points(weighted, targets)

        # Distance screen against coarse nodes (cheap, conservative).
        p = self.options.check_order
        for t in range(targets.shape[0]):
            x = targets[t]
            d2 = np.einsum("nk,nk->n", self.coarse.points - x,
                           self.coarse.points - x)
            imin = int(np.argmin(d2))
            L = self.surface.patch_sizes()[self.coarse.patch_of[imin]]
            if np.sqrt(d2[imin]) > near_tol_factor * self.options.check_r_factor * L * (1 + p):
                continue
            out[t] = self._near_eval(weighted, x)
        if self.rank_completion:
            # The completed operator is only modified *on* Gamma; off-surface
            # evaluation uses the plain double layer.
            pass
        return out if self.ncomp > 1 else out.ravel()

    def _near_eval(self, weighted_fine: np.ndarray, x: np.ndarray) -> np.ndarray:
        cp = surface_closest_point(self.surface, x)
        R = self.options.check_r_factor * cp.patch_size
        p = self.options.check_order
        # Signed distance along the inward direction (fluid side).
        t_par = float((cp.point - x) @ cp.normal)
        checks = (cp.point[None, :]
                  - (R * (1.0 + np.arange(p + 1)))[:, None] * cp.normal[None, :])
        vals = self._dlp_to_points(weighted_fine, checks)
        e = extrapolation_weights(R, R, p, t_par)
        return e @ vals

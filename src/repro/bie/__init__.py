"""The parallel boundary solver for elliptic PDEs (paper Section 3).

:class:`BoundarySolver` discretizes the second-kind boundary integral
equation (paper Eq. (2.5) / Eq. (3.5))

    ``(1/2 I + D + N) phi = g``     on Gamma,

with a Nystrom method on the coarse per-patch Clenshaw-Curtis nodes. The
singular/near-singular quadrature follows Fig. 2 of the paper: upsample the
density to the fine discretization, evaluate the smooth rule at check
points placed along the (inward) normal, and extrapolate back to the
target. The operator is applied matrix-free inside GMRES (matrix assembly
is never required); the far-field evaluation can run through the direct
vectorized kernels or the kernel-independent FMM of :mod:`repro.fmm`.
"""
from .solver import BoundarySolver, BIESolveReport

__all__ = ["BoundarySolver", "BIESolveReport"]

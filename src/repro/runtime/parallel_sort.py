"""Distributed sample sort (HykSort substitute, paper [45]).

Sorts key/value pairs distributed across the virtual ranks: every rank
contributes local samples, splitters are chosen from the gathered sample,
each rank buckets its data by splitter and exchanges buckets with an
all-to-all, then sorts locally. The result is a globally sorted
distribution (rank r holds keys <= rank r+1's keys), which is how the
spatial-hash pipeline of Sec. 3.3 collects equal keys onto one rank.
"""
from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .communicator import VirtualComm


def parallel_sample_sort(comm: VirtualComm, keys: Sequence[np.ndarray],
                         values: Optional[Sequence[np.ndarray]] = None,
                         oversample: int = 8):
    """Globally sort distributed (key, value) arrays.

    Parameters
    ----------
    comm:
        The virtual communicator.
    keys:
        One 1-D key array per rank.
    values:
        Optional per-rank value rows aligned with the keys (2-D allowed).

    Returns
    -------
    (sorted_keys, sorted_values): per-rank lists; concatenation over ranks
    is globally sorted, and equal keys always end up on a single rank
    boundary-consistently (stable within rank; splitters cut between
    distinct key values whenever possible).
    """
    P = comm.size
    keys = [np.asarray(k) for k in keys]
    if values is not None:
        values = [np.asarray(v) for v in values]
        for k, v in zip(keys, values):
            if k.shape[0] != v.shape[0]:
                raise ValueError("keys/values length mismatch")

    # 1. Local samples -> splitters (allgather).
    samples = []
    for k in keys:
        if k.size:
            idx = np.linspace(0, k.size - 1, min(k.size, oversample * P)).astype(int)
            samples.append(np.sort(k)[idx])
        else:
            samples.append(k[:0])
    gathered = comm.allgather(samples)[0]
    allsamp = np.sort(np.concatenate(gathered)) if gathered else np.zeros(0)
    if allsamp.size == 0:
        empty_v = [v[:0] for v in values] if values is not None else None
        return list(keys), empty_v if values is not None else None
    cut = np.linspace(0, allsamp.size, P + 1)[1:-1].astype(int)
    splitters = allsamp[np.minimum(cut, allsamp.size - 1)]

    # 2. Bucket local data by splitter (destination rank).
    buckets_k = []
    buckets_v = []
    for r in range(P):
        dest = np.searchsorted(splitters, keys[r], side="right")
        bk = {d: keys[r][dest == d] for d in np.unique(dest)}
        buckets_k.append(bk)
        if values is not None:
            buckets_v.append({d: values[r][dest == d] for d in np.unique(dest)})

    # 3. Sparse all-to-all exchange.
    recv_k = comm.alltoallv(buckets_k)
    recv_v = comm.alltoallv(buckets_v) if values is not None else None

    # 4. Local sort.
    out_k: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for r in range(P):
        parts = [recv_k[r][s] for s in sorted(recv_k[r])]
        k = np.concatenate(parts) if parts else keys[r][:0]
        order = np.argsort(k, kind="stable")
        out_k.append(k[order])
        if values is not None:
            vparts = [recv_v[r][s] for s in sorted(recv_v[r])]
            v = (np.concatenate(vparts) if vparts
                 else values[r][:0])
            out_v.append(v[order])
    return out_k, (out_v if values is not None else None)

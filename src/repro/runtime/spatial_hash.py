"""Morton (Z-order) spatial hashing (paper Sec. 3.3, steps a-c).

Bounding boxes of patch near-zones and RBC space-time extents are sampled
with equispaced points; samples and query points are assigned Morton keys
on a uniform grid of spacing H, sorted (in parallel), and matching keys
identify candidate near pairs. The same machinery drives both the
closest-point search of the boundary solver and the collision broad phase
of Sec. 4 (Fig. 3).
"""
from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_MORTON_BITS = 21  # 63-bit keys


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of x so there are two zeros between bits."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def morton_keys_3d(ijk: np.ndarray) -> np.ndarray:
    """Morton keys of integer grid coordinates, shape (n, 3) -> (n,)."""
    ijk = np.asarray(ijk)
    if np.any(ijk < 0) or np.any(ijk >= (1 << _MORTON_BITS)):
        raise ValueError("grid coordinates out of Morton range")
    return (_part1by2(ijk[:, 0]) << np.uint64(2)) | \
           (_part1by2(ijk[:, 1]) << np.uint64(1)) | _part1by2(ijk[:, 2])


def morton_decode_3d(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`morton_keys_3d`."""
    keys = np.asarray(keys, dtype=np.uint64)
    i = _compact1by2(keys >> np.uint64(2))
    j = _compact1by2(keys >> np.uint64(1))
    k = _compact1by2(keys)
    return np.column_stack([i, j, k]).astype(np.int64)


class SpatialHash:
    """Uniform-grid Morton hash over a given domain.

    Parameters
    ----------
    origin, spacing:
        Grid geometry; ``spacing`` is the H of Sec. 3.3 (the average
        near-zone box diagonal).
    """

    def __init__(self, origin: np.ndarray, spacing: float):
        self.origin = np.asarray(origin, float)
        self.spacing = float(spacing)
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")

    def cell_of(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, float))
        return np.floor((pts - self.origin) / self.spacing).astype(np.int64)

    def keys_of(self, points: np.ndarray) -> np.ndarray:
        return morton_keys_3d(self.cell_of(points))

    def sample_box(self, lo: np.ndarray, hi: np.ndarray,
                   max_samples_per_axis: int = 8) -> np.ndarray:
        """Equispaced samples covering an AABB with spacing < H.

        The samples are guaranteed to touch every grid cell the box
        overlaps (sampling step <= H with boundary inclusion).
        """
        lo = np.asarray(lo, float)
        hi = np.asarray(hi, float)
        axes = []
        for k in range(3):
            n = int(np.ceil((hi[k] - lo[k]) / self.spacing)) + 1
            n = min(max(n, 2), max_samples_per_axis * 4)
            axes.append(np.linspace(lo[k], hi[k], n))
        A, B, C = np.meshgrid(*axes, indexing="ij")
        return np.column_stack([A.ravel(), B.ravel(), C.ravel()])

    def box_keys(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """All grid cells overlapped by an AABB, as unique Morton keys.

        This is the exact version of box sampling (cheaper and tighter
        than sampling for the box sizes used here).
        """
        lo_c = self.cell_of(np.asarray(lo, float)[None, :])[0]
        hi_c = self.cell_of(np.asarray(hi, float)[None, :])[0]
        ranges = [np.arange(lo_c[k], hi_c[k] + 1) for k in range(3)]
        A, B, C = np.meshgrid(*ranges, indexing="ij")
        ijk = np.column_stack([A.ravel(), B.ravel(), C.ravel()])
        return morton_keys_3d(np.maximum(ijk, 0))


def candidate_pairs_by_key(keys_a: np.ndarray, owners_a: np.ndarray,
                           keys_b: np.ndarray, owners_b: np.ndarray
                           ) -> np.ndarray:
    """Unique (owner_a, owner_b) pairs whose hash keys coincide.

    ``owners_*`` map each key to the object (patch, cell, ...) that
    generated it; objects sharing at least one grid cell become candidate
    pairs for the narrow phase.
    """
    keys_a = np.asarray(keys_a, dtype=np.uint64)
    keys_b = np.asarray(keys_b, dtype=np.uint64)
    order_a = np.argsort(keys_a, kind="stable")
    order_b = np.argsort(keys_b, kind="stable")
    ka, oa = keys_a[order_a], np.asarray(owners_a)[order_a]
    kb, ob = keys_b[order_b], np.asarray(owners_b)[order_b]
    pairs: set[tuple[int, int]] = set()
    ia = ib = 0
    while ia < ka.size and ib < kb.size:
        if ka[ia] < kb[ib]:
            ia += 1
        elif ka[ia] > kb[ib]:
            ib += 1
        else:
            key = ka[ia]
            ja = ia
            while ja < ka.size and ka[ja] == key:
                ja += 1
            jb = ib
            while jb < kb.size and kb[jb] == key:
                jb += 1
            for u in set(oa[ia:ja].tolist()):
                for v in set(ob[ib:jb].tolist()):
                    pairs.add((u, v))
            ia, ib = ja, jb
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    return np.array(sorted(pairs), dtype=np.int64)

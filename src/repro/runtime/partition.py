"""Workload partitioning across virtual ranks."""
from __future__ import annotations

from typing import Sequence

import numpy as np

from .spatial_hash import SpatialHash, morton_keys_3d


def block_partition(n_items: int, n_ranks: int) -> list[np.ndarray]:
    """Contiguous near-equal index ranges (PETSc-style block layout)."""
    base = n_items // n_ranks
    extra = n_items % n_ranks
    out = []
    start = 0
    for r in range(n_ranks):
        cnt = base + (1 if r < extra else 0)
        out.append(np.arange(start, start + cnt))
        start += cnt
    return out


def partition_by_morton(points: np.ndarray, n_ranks: int,
                        spacing: float | None = None) -> list[np.ndarray]:
    """Spatially-local partition: sort by Morton key, split evenly.

    This mirrors how p4est/PVFMM distribute geometry: objects close in
    space land on the same rank, which is what makes the near-pair
    exchanges of Secs. 3.3 and 4 sparse.
    """
    points = np.atleast_2d(np.asarray(points, float))
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    if spacing is None:
        spacing = max(float((hi - lo).max()) / 1024.0, 1e-12)
    grid = SpatialHash(lo - spacing, spacing)
    keys = grid.keys_of(points)
    order = np.argsort(keys, kind="stable")
    blocks = block_partition(points.shape[0], n_ranks)
    return [order[b] for b in blocks]

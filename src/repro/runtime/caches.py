"""Process-wide warm-up of the geometry-independent shared tables.

Every expensive cached table in the library is keyed by spherical-
harmonic order alone (grids, SH transform tables, quadrature rules,
rotation/circulant bundles, dense grid-operator matrices) — nothing in
them depends on a scene's geometry. A sweep that runs many scenes per
process therefore wants those tables built exactly once, *before* the
first job: on a fork-based process pool, tables warmed in the parent are
shared copy-on-write by every worker for free; on any executor, the
first job of each worker otherwise pays seconds of table assembly that
every later job then skips.

:func:`warm_caches` is that warm-up: given the set of orders a batch of
scenes will use, it touches every per-order factory a simulation of
that order touches at step time. It is idempotent (every factory is a
build-locked ``lru_cache`` per the policy in
:mod:`repro.analysis.guard`) and safe to call concurrently.
"""
from __future__ import annotations

import math
from typing import Iterable

__all__ = ["warm_caches"]


def warm_caches(orders: Iterable[int], upsample: float = 1.5,
                aliasing_factor: int = 2, circulant: bool = True) -> dict:
    """Pre-build the geometry-independent per-order tables for ``orders``.

    Touches, per order ``p``: the sampling grid and Gauss-Legendre rule
    (:func:`repro.sph.grid.get_grid`), the SH transform tables at ``p``
    and at the aliasing order ``max(p + 2, aliasing_factor * p)``
    (:func:`repro.sph.transform.get_transform`, including the dense
    analysis/synthesis matrices the operator-assembly paths need), the
    dense grid-operator matrices and band-limit projector
    (:mod:`repro.surfaces.spectral_surface`), and the rotation-quadrature
    bundle at ``q_rot = max(p, ceil(upsample * p))`` with its circulant
    mode symbols (:mod:`repro.vesicle.self_interaction`) — the tables
    the default ``"circulant"`` self-interaction assembly consumes.

    ``upsample`` / ``aliasing_factor`` mirror the
    ``SingularSelfInteraction`` / ``SpectralSurface`` constructor
    defaults; pass the values your scenes override them with. With
    ``circulant=False`` the (largest) circulant symbol tables are
    skipped.

    Returns a small dict mapping each warmed order to the derived
    ``(aliasing_order, q_rot)`` pair, mostly for logging.
    """
    # Imports are local: this module is importable from anywhere in the
    # package (workers import it before the heavy modules), and the
    # heavy imports happen only when warming actually runs.
    from ..sph.grid import get_grid
    from ..sph.transform import get_transform
    from ..surfaces.spectral_surface import (_grid_operator_matrices,
                                             bandlimit_projector)
    from ..vesicle.self_interaction import _rotation_tables

    warmed: dict = {}
    for p in sorted({int(o) for o in orders}):
        get_grid(p)
        T = get_transform(p)
        T.analysis_matrix()
        T.synthesis_matrix()
        q = max(p + 2, int(aliasing_factor) * p)
        get_transform(q)
        _grid_operator_matrices(p, q)
        bandlimit_projector(p)
        q_rot = max(p, int(math.ceil(upsample * p)))
        tables = _rotation_tables(p, q_rot)
        if circulant:
            tables.circulant_tables()
        warmed[p] = (q, q_rot)
    return warmed

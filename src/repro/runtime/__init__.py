"""Virtual distributed-memory runtime (substitution S1 in DESIGN.md).

The paper runs one MPI rank per Stampede2 node. This environment has no
MPI, so the parallel algorithms run on a *virtual* communicator: P logical
ranks executed in-process, with every collective routed through
:class:`VirtualComm`, which implements the MPI semantics over lists of
per-rank numpy payloads and records a :class:`CommLedger` of message
counts and bytes. The ledger, combined with the machine models in
:mod:`repro.scaling`, regenerates the paper's scaling figures; the
algorithms themselves (Morton spatial hashing of Sec. 3.3, the HykSort-
style parallel sample sort [45], the sparse all-to-all used by the LCP
assembly) are real implementations operating on the virtual ranks.

:mod:`repro.runtime.executor` is the *real* intra-process parallelism:
pluggable executors (serial / worker-thread pool) that the time stepper
maps its per-cell stage tasks over.
"""
from .caches import warm_caches
from .communicator import VirtualComm, CommLedger
from .executor import (EXECUTORS, Executor, ProcessPoolExecutor, ProcessTask,
                       SerialExecutor, ThreadPoolExecutor, make_executor,
                       register_executor, resolve_workers, worker_timers)
from .partition import block_partition, partition_by_morton
from .parallel_sort import parallel_sample_sort
from .spatial_hash import SpatialHash, morton_keys_3d, morton_decode_3d

__all__ = [
    "warm_caches",
    "VirtualComm",
    "CommLedger",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "ProcessTask",
    "EXECUTORS",
    "make_executor",
    "register_executor",
    "resolve_workers",
    "worker_timers",
    "block_partition",
    "partition_by_morton",
    "parallel_sample_sort",
    "SpatialHash",
    "morton_keys_3d",
    "morton_decode_3d",
]

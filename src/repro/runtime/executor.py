"""Pluggable executors for the per-cell stage pipeline.

Every expensive stage of a time step — singular self-interaction
reassembly, the tension/implicit factorize-and-solve, the per-source
interaction sums, force evaluation — is independent across cells, so the
stepper expresses each stage as ``executor.map(task, cells)`` and the
policy of *how* that map runs lives here:

- :class:`SerialExecutor` — a plain in-order loop; the default, and the
  reference semantics every other executor must reproduce.
- :class:`ThreadPoolExecutor` — a persistent worker-thread pool. The
  per-cell tasks are numpy-GEMM-heavy (they release the GIL), so threads
  scale the dense stages on multi-core hosts without any serialization.

Determinism contract: :meth:`Executor.map` returns results ordered by
input index, tasks touch disjoint per-cell state, and no executor ever
accumulates across tasks — so the threaded schedule is *bit-identical*
to the serial one regardless of worker count or interleaving. Callers
that reduce over cells (e.g. the interaction backends) gather the mapped
results first and fold them in fixed index order themselves.

Select via :class:`repro.config.NumericsOptions` (``executor`` /
``workers``) or construct directly with :func:`make_executor`.
"""
from __future__ import annotations

import concurrent.futures
from typing import Callable, ClassVar, Dict, Iterable, List, Type, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class Executor:
    """Maps per-cell tasks over cell indices; results ordered by input.

    Subclasses implement :meth:`map`. Tasks must be independent (they
    may mutate only their own cell's state); exceptions raised by any
    task propagate to the caller.
    """

    #: Registry key; subclasses registered via :func:`register_executor`.
    name: ClassVar[str] = ""

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; a no-op when none)."""

    def options(self) -> dict:
        """JSON-safe descriptor of this executor (for diagnostics)."""
        return {"executor": self.name, "workers": self.workers}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


#: Registry of named executors (mirrors the interaction-backend registry).
EXECUTORS: Dict[str, Type[Executor]] = {}


def register_executor(cls: Type[Executor]) -> Type[Executor]:
    """Class decorator adding an executor to the :data:`EXECUTORS` registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    EXECUTORS[cls.name] = cls
    return cls


def make_executor(name: str, workers: int = 1) -> Executor:
    """Instantiate a registered executor by name."""
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise ValueError(f"unknown executor {name!r}; "
                         f"registered: {sorted(EXECUTORS)}") from None
    return cls(workers=workers)


@register_executor
class SerialExecutor(Executor):
    """In-order single-thread execution (the reference semantics)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(x) for x in items]


@register_executor
class ThreadPoolExecutor(Executor):
    """Worker-thread pool over a persistent ``concurrent.futures`` pool.

    All tasks are submitted up front and gathered by submission index,
    so results are ordered (and bit-identical to serial) no matter how
    the pool interleaves them. The pool is created lazily on first use
    and its idle threads exit when the executor is garbage collected, so
    short-lived simulations do not leak threads.
    """

    name = "thread"

    def __init__(self, workers: int = 2):
        super().__init__(workers=workers)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-cell")
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            # Nothing to overlap; skip the submission round-trip.
            return [fn(x) for x in items]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, x) for x in items]
        # result() re-raises task exceptions; gather strictly by index.
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

"""Pluggable executors for the per-cell stage pipeline.

Every expensive stage of a time step — singular self-interaction
reassembly, the tension/implicit factorize-and-solve, the per-source
interaction sums, force evaluation — is independent across cells, so the
stepper expresses each stage as ``executor.map(task, cells)`` and the
policy of *how* that map runs lives here:

- :class:`SerialExecutor` — a plain in-order loop; the default, and the
  reference semantics every other executor must reproduce.
- :class:`ThreadPoolExecutor` — a persistent worker-thread pool. The
  per-cell tasks are numpy-GEMM-heavy (they release the GIL), so threads
  scale the dense stages on multi-core hosts without any serialization.
- :class:`ProcessPoolExecutor` — a lazy persistent process pool for the
  stages that opt in by mapping a :class:`ProcessTask` (the Morton-
  sharded per-source batches of the interaction backends). Everything
  else — closures, bound methods, anything that mutates parent state —
  runs inline in the parent, so every existing ``map`` call site keeps
  its exact serial semantics. Only coefficients, positions and densities
  cross the process boundary (see :mod:`repro.core.shardwork`); the
  geometry-independent per-order tables are rebuilt inside each worker
  and never pickled, and the shard payload traffic is priced on a
  :class:`repro.runtime.communicator.CommLedger`.
- :class:`CheckedExecutor` — a verifying wrapper around any of the
  above that *enforces* the determinism contract at runtime (see
  below); ``"checked-process"`` composes it with the process pool.

Determinism contract: :meth:`Executor.map` returns results ordered by
input index, tasks touch disjoint per-cell state, and no executor ever
accumulates across tasks — so the threaded schedule is *bit-identical*
to the serial one regardless of worker count or interleaving. Callers
that reduce over cells (e.g. the interaction backends) gather the mapped
results first and fold them in fixed index order themselves.

The contract is checked two ways. Statically, the ``repro_lint``
determinism pass (``python -m repro_lint src/``) walks every
``executor.map`` call site and verifies the task body only writes state
indexed by the mapped item. Dynamically, ``executor="checked"`` wraps
the real executor: during each ``map`` the shared cached tables
(registered by :func:`repro.analysis.guard.freeze`) are flipped
non-writeable so any task scribbling on cross-cell state raises, and a
deterministic sample of the tasks is re-run afterwards to confirm
bit-identical results. Violations raise
:class:`repro.analysis.guard.DeterminismError`.

Select via :class:`repro.config.NumericsOptions` (``executor`` /
``workers``) or construct directly with :func:`make_executor`.
"""
from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import threading
import weakref
from typing import Callable, ClassVar, Dict, Iterable, List, Optional, Type, TypeVar, Union

import numpy as np

from ..analysis.guard import DeterminismError, tables_frozen
from .communicator import CommLedger, _nbytes

T = TypeVar("T")
R = TypeVar("R")


class Executor:
    """Maps per-cell tasks over cell indices; results ordered by input.

    Subclasses implement :meth:`map`. Tasks must be independent (they
    may mutate only their own cell's state); exceptions raised by any
    task propagate to the caller.
    """

    #: Registry key; subclasses registered via :func:`register_executor`.
    name: ClassVar[str] = ""

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; a no-op when none)."""

    def shard_count(self, n_items: int) -> int:
        """How many Morton shards a caller should split ``n_items``
        source cells into before mapping a :class:`ProcessTask`.

        Zero means "don't shard — run the inline per-item path"; only
        the process executor (and its ``"checked"`` wrapper) ever asks
        for more.
        """
        return 0

    def attach(self, timers=None) -> None:
        """Give the executor the stepper's :class:`ComponentTimers`.

        Only the process executor uses this (to fold worker-side timer
        deltas back into the parent's accumulators); everywhere else the
        tasks already write the parent timers directly.
        """

    def options(self) -> dict:
        """JSON-safe descriptor of this executor (for diagnostics)."""
        return {"executor": self.name, "workers": self.workers}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


#: Registry of named executors (mirrors the interaction-backend registry).
# repro-lint: disable=global-mutable — class registry written once at import time by @register_executor, read-only afterwards
EXECUTORS: Dict[str, Type[Executor]] = {}


def register_executor(cls: Type[Executor]) -> Type[Executor]:
    """Class decorator adding an executor to the :data:`EXECUTORS` registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    EXECUTORS[cls.name] = cls
    return cls


def resolve_workers(workers: Union[int, str], n_items: Optional[int] = None) -> int:
    """Resolve the ``workers`` knob to a concrete worker count.

    ``"auto"`` means ``min(cpu_count, n_items)`` (floored at 1): one
    worker per core, but never more workers than there are cells to
    shard — extra pool members would only sit idle while still costing
    fork/teardown. An integer passes through unchanged (it must be
    >= 1). ``n_items`` is the number of independent work items the
    caller will shard (the cell count for the stepper); omit it to cap
    by core count alone.
    """
    if workers == "auto":
        count = os.cpu_count() or 1
        if n_items is not None:
            count = min(count, max(1, n_items))
        return max(1, count)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    return count


def make_executor(name: str, workers: Union[int, str] = 1) -> Executor:
    """Instantiate a registered executor by name.

    ``workers`` accepts the same values as
    :attr:`repro.config.NumericsOptions.workers`, including ``"auto"``
    (resolved against the core count here; callers that know their cell
    count should pre-resolve via :func:`resolve_workers`).
    """
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise ValueError(f"unknown executor {name!r}; "
                         f"registered: {sorted(EXECUTORS)}") from None
    return cls(workers=resolve_workers(workers))


@register_executor
class SerialExecutor(Executor):
    """In-order single-thread execution (the reference semantics)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(x) for x in items]


@register_executor
class ThreadPoolExecutor(Executor):
    """Worker-thread pool over a persistent ``concurrent.futures`` pool.

    All tasks are submitted up front and gathered by submission index,
    so results are ordered (and bit-identical to serial) no matter how
    the pool interleaves them. The pool is created lazily on first use
    and its idle threads exit when the executor is garbage collected, so
    short-lived simulations do not leak threads.
    """

    name = "thread"

    def __init__(self, workers: int = 2):
        super().__init__(workers=workers)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        # Guards lazy creation and teardown: concurrent first maps (or a
        # map racing a close) must agree on one pool, never leak a second.
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        """Caller must hold ``_pool_lock``."""
        pool = self._pool
        if pool is None:
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-cell")
            self._pool = pool
        return pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            # Nothing to overlap; skip the submission round-trip.
            return [fn(x) for x in items]
        # Submission happens under the lock so a concurrent close() can
        # never shut the pool down mid-submit: it either runs before (we
        # build a fresh pool) or after (shutdown waits for our futures).
        # Only submission is serialized; the tasks overlap freely.
        with self._pool_lock:
            pool = self._ensure_pool()
            futures = [pool.submit(fn, x) for x in items]
        # result() re-raises task exceptions; gather strictly by index.
        return [f.result() for f in futures]

    def close(self) -> None:
        with self._pool_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessTask:
    """Marker base for callables the process executor may ship to workers.

    The process executor only ever dispatches a ``map`` whose callable
    is a ``ProcessTask`` — everything else (closures, bound methods,
    anything that mutates parent state) runs inline in the parent, which
    is what keeps every existing ``map`` call site on its exact serial
    semantics. Subclasses must therefore be module-level (picklable —
    the ``picklable-task`` lint pass enforces this), hold only picklable
    state, and implement ``__call__(item)`` as a pure function of
    ``(self, item)``: no parent state is visible in the worker, and the
    result must be bit-identical to running the same call inline.
    """

    def __call__(self, item):
        raise NotImplementedError


#: Per-worker-process ComponentTimers scratchpad (created lazily inside
#: each worker; the parent never touches it).
_WORKER_TIMERS = None


def worker_timers():
    """The calling process's private :class:`ComponentTimers`.

    Process tasks open their stage scopes on this object; the executor's
    worker wrapper resets it around each task and ships the per-category
    deltas back to the parent alongside the result. Imported lazily:
    ``repro.core`` imports this module at package init, so a top-level
    import of ``repro.core.timers`` here would be circular.
    """
    global _WORKER_TIMERS
    if _WORKER_TIMERS is None:
        from ..core.timers import ComponentTimers
        _WORKER_TIMERS = ComponentTimers()
    return _WORKER_TIMERS


def _process_invoke(fn: "ProcessTask", item):
    """Worker-side wrapper: run one task, return ``(result, timer deltas)``.

    The timers are reset before the call so the deltas are exactly this
    task's seconds; the parent folds them into its own accumulators and
    strips them off before returning results to the caller (timings
    differ run to run, so they must never reach the ``"checked"``
    executor's bit-identity comparison).
    """
    timers = worker_timers()
    timers.reset()
    result = fn(item)
    return result, dict(timers.seconds)


def _terminate_pool(pool) -> None:
    """GC finalizer target (module-level so it never pins an executor)."""
    pool.terminate()
    pool.join()


@register_executor
class ProcessPoolExecutor(Executor):
    """Process-pool executor: Morton-sharded cell work in worker processes.

    Dispatch policy: a ``map`` goes to the pool only when the callable
    is a :class:`ProcessTask`, there is more than one item, and more
    than one worker — otherwise it runs inline, preserving the serial
    semantics of every closure/bound-method call site in the stepper.
    The interaction backends are the opt-in sites: they ask
    :meth:`shard_count` how many Morton shards to cut, build payload
    objects holding only coefficients/positions/densities (see
    :mod:`repro.core.shardwork`), and map a module-level task over them.
    Workers rebuild surfaces/evaluators from the payloads; the
    geometry-independent per-order tables (circulant mode symbols,
    Legendre/rotation/quadrature) repopulate each worker's own lru
    caches on first use and persist across tasks and steps.

    Results are gathered strictly by submission index and exceptions
    re-raise in the parent, so process == thread == serial bit-identical
    under the determinism contract. Each dispatched map is priced on
    :attr:`ledger` (a :class:`~repro.runtime.communicator.CommLedger`):
    a ``scatter`` for the shipped payload bytes, an ``alltoallv`` for
    the cross-shard far-field ghost targets the payloads carry, and a
    ``gather`` for the returned velocities — so the scaling harness
    reads real traffic, not a model.

    The pool is forked lazily on first dispatch (fork shares the
    parent's warm table caches copy-on-write where the platform allows
    it) and torn down on :meth:`close` or garbage collection.
    """

    name = "process"

    def __init__(self, workers: int = 2):
        super().__init__(workers=workers)
        self._pool = None
        # Guards lazy creation and teardown, exactly like the thread pool.
        self._pool_lock = threading.Lock()
        #: parent-side ComponentTimers worker deltas fold into (attached
        #: by the stepper; None = deltas are dropped).
        self.timers = None
        #: prices payload scatter / ghost exchange / result gather.
        self.ledger = CommLedger()

    def shard_count(self, n_items: int) -> int:
        if self.workers <= 1 or n_items <= 1:
            return 0
        return min(self.workers, n_items)

    def attach(self, timers=None) -> None:
        self.timers = timers

    def _ensure_pool(self):
        """Caller must hold ``_pool_lock``."""
        pool = self._pool
        if pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            pool = ctx.Pool(processes=self.workers)
            self._pool = pool
            weakref.finalize(self, _terminate_pool, pool)
        return pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if (not isinstance(fn, ProcessTask) or len(items) <= 1
                or self.workers <= 1):
            # Not marked process-safe (or nothing to overlap): the
            # in-order inline loop is the contract's reference semantics.
            return [fn(x) for x in items]
        phase = getattr(items[0], "phase", None)
        if phase is not None:
            self.ledger.phase = phase
        self.ledger.record("scatter", len(items),
                           sum(_nbytes(x) for x in items))
        ghost = sum(getattr(x, "ghost_nbytes", 0) for x in items)
        if ghost:
            # Far-field target points each shard needs but does not own.
            self.ledger.record("alltoallv", len(items), ghost)
        with self._pool_lock:
            pool = self._ensure_pool()
            handles = [pool.apply_async(_process_invoke, (fn, x))
                       for x in items]
        # get() re-raises task exceptions; gather strictly by index.
        pairs = [h.get() for h in handles]
        self.ledger.record("gather", len(items),
                           sum(_nbytes(r) for r, _ in pairs))
        if self.timers is not None:
            for _, deltas in pairs:
                self.timers.fold(deltas)
        return [r for r, _ in pairs]

    def close(self) -> None:
        with self._pool_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.terminate()
            pool.join()


def _bit_identical(a, b) -> bool:
    """Whether two task results are bitwise the same.

    Arrays compare by shape, dtype and raw bytes (NaNs included — the
    contract is *bit* identity, not numeric equality); containers
    recurse; objects without a meaningful equality are skipped (True).
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a)
        b = np.asarray(b)
        return (a.shape == b.shape and a.dtype == b.dtype
                and a.tobytes() == b.tobytes())
    if isinstance(a, (tuple, list)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(_bit_identical(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (isinstance(b, dict) and a.keys() == b.keys()
                and all(_bit_identical(a[k], b[k]) for k in a))
    if isinstance(a, (bool, int, float, complex, str, bytes, type(None))):
        return a == b or (a != a and b != b)   # NaN floats count as equal
    return True                                 # opaque object: no claim


@register_executor
class CheckedExecutor(Executor):
    """Contract-enforcing wrapper around a real executor.

    Runs every ``map`` through an inner executor (serial for
    ``workers=1``, the thread pool otherwise, or any explicit ``inner``)
    with two runtime checks layered on top:

    1. *Frozen shared tables.* For the duration of the map, every cached
       table registered via :func:`repro.analysis.guard.freeze` is
       flipped non-writeable, so a task that writes shared state through
       a cached array raises immediately instead of silently corrupting
       the other cells. The resulting ``read-only`` ``ValueError`` is
       re-raised as :class:`~repro.analysis.guard.DeterminismError`.
    2. *Rerun sampling.* After the map, a deterministic sample of the
       tasks (first, last, and evenly spaced up to
       :data:`RERUN_SAMPLES`) is executed a second time and the results
       compared bit-for-bit. A task whose repeat diverges depends on
       mutable cross-task state (ordering, accumulation, hidden caches)
       and violates the contract. Only tasks that returned a value are
       re-run: a ``None``-returning task is a stateful mutator (e.g. the
       stepper's refresh stage) whose repeat would advance its own
       amortization counters.

    The overhead is one extra task execution per sampled index — meant
    for validation runs and CI scenes, not production stepping.
    """

    name = "checked"

    #: how many mapped tasks are re-executed per map (deterministic
    #: evenly-spaced sample, capped by the number of eligible tasks).
    RERUN_SAMPLES = 2

    def __init__(self, workers: int = 1, inner: Optional[Executor] = None):
        super().__init__(workers=workers)
        if inner is None:
            inner = (SerialExecutor(workers=1) if workers == 1
                     else ThreadPoolExecutor(workers=workers))
        self.inner = inner

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        with tables_frozen():
            try:
                results = self.inner.map(fn, items)
            except ValueError as e:
                if "read-only" in str(e):
                    raise DeterminismError(
                        "task wrote to a frozen shared table during "
                        f"{type(self.inner).__name__}.map — per-cell tasks "
                        "must only write state owned by their own item"
                    ) from e
                raise
            for i in self._sample_indices(results):
                repeat = fn(items[i])
                if not _bit_identical(results[i], repeat):
                    raise DeterminismError(
                        f"task {i} is not deterministic: re-running it "
                        "produced a different result, so the map depends "
                        "on mutable cross-task state")
        return results

    def _sample_indices(self, results: List[R]) -> List[int]:
        eligible = [i for i, r in enumerate(results) if r is not None]
        k = min(self.RERUN_SAMPLES, len(eligible))
        if k == 0:
            return []
        # Evenly spaced over the eligible tasks, endpoints included.
        if k == 1:
            return [eligible[0]]
        pos = [round(j * (len(eligible) - 1) / (k - 1)) for j in range(k)]
        return sorted({eligible[p] for p in pos})

    def shard_count(self, n_items: int) -> int:
        # Forwarded so a wrapped process pool still shards — the rerun
        # sample then re-executes whole shards inline and compares them
        # bit-for-bit against the worker-process results.
        return self.inner.shard_count(n_items)

    def attach(self, timers=None) -> None:
        self.inner.attach(timers)

    def close(self) -> None:
        self.inner.close()

    def options(self) -> dict:
        return {"executor": self.name, "workers": self.workers,
                "inner": self.inner.name}


@register_executor
class CheckedProcessExecutor(CheckedExecutor):
    """``"checked"`` wrapped around the process pool, as one registry name.

    Config-selectable (``NumericsOptions.executor = "checked-process"``)
    so acceptance runs can verify the process executor's contract
    end-to-end: shards execute in worker processes, then the rerun
    sample recomputes a deterministic subset of them inline in the
    parent and requires bit-identical results across the process
    boundary.
    """

    name = "checked-process"

    def __init__(self, workers: int = 2):
        super().__init__(workers=workers,
                         inner=ProcessPoolExecutor(workers=workers))

"""Pluggable executors for the per-cell stage pipeline.

Every expensive stage of a time step — singular self-interaction
reassembly, the tension/implicit factorize-and-solve, the per-source
interaction sums, force evaluation — is independent across cells, so the
stepper expresses each stage as ``executor.map(task, cells)`` and the
policy of *how* that map runs lives here:

- :class:`SerialExecutor` — a plain in-order loop; the default, and the
  reference semantics every other executor must reproduce.
- :class:`ThreadPoolExecutor` — a persistent worker-thread pool. The
  per-cell tasks are numpy-GEMM-heavy (they release the GIL), so threads
  scale the dense stages on multi-core hosts without any serialization.
- :class:`CheckedExecutor` — a verifying wrapper around either of the
  above that *enforces* the determinism contract at runtime (see below).

Determinism contract: :meth:`Executor.map` returns results ordered by
input index, tasks touch disjoint per-cell state, and no executor ever
accumulates across tasks — so the threaded schedule is *bit-identical*
to the serial one regardless of worker count or interleaving. Callers
that reduce over cells (e.g. the interaction backends) gather the mapped
results first and fold them in fixed index order themselves.

The contract is checked two ways. Statically, the ``repro_lint``
determinism pass (``python -m repro_lint src/``) walks every
``executor.map`` call site and verifies the task body only writes state
indexed by the mapped item. Dynamically, ``executor="checked"`` wraps
the real executor: during each ``map`` the shared cached tables
(registered by :func:`repro.analysis.guard.freeze`) are flipped
non-writeable so any task scribbling on cross-cell state raises, and a
deterministic sample of the tasks is re-run afterwards to confirm
bit-identical results. Violations raise
:class:`repro.analysis.guard.DeterminismError`.

Select via :class:`repro.config.NumericsOptions` (``executor`` /
``workers``) or construct directly with :func:`make_executor`.
"""
from __future__ import annotations

import concurrent.futures
import threading
from typing import Callable, ClassVar, Dict, Iterable, List, Optional, Type, TypeVar

import numpy as np

from ..analysis.guard import DeterminismError, tables_frozen

T = TypeVar("T")
R = TypeVar("R")


class Executor:
    """Maps per-cell tasks over cell indices; results ordered by input.

    Subclasses implement :meth:`map`. Tasks must be independent (they
    may mutate only their own cell's state); exceptions raised by any
    task propagate to the caller.
    """

    #: Registry key; subclasses registered via :func:`register_executor`.
    name: ClassVar[str] = ""

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; a no-op when none)."""

    def options(self) -> dict:
        """JSON-safe descriptor of this executor (for diagnostics)."""
        return {"executor": self.name, "workers": self.workers}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


#: Registry of named executors (mirrors the interaction-backend registry).
EXECUTORS: Dict[str, Type[Executor]] = {}


def register_executor(cls: Type[Executor]) -> Type[Executor]:
    """Class decorator adding an executor to the :data:`EXECUTORS` registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    EXECUTORS[cls.name] = cls
    return cls


def make_executor(name: str, workers: int = 1) -> Executor:
    """Instantiate a registered executor by name."""
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise ValueError(f"unknown executor {name!r}; "
                         f"registered: {sorted(EXECUTORS)}") from None
    return cls(workers=workers)


@register_executor
class SerialExecutor(Executor):
    """In-order single-thread execution (the reference semantics)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(x) for x in items]


@register_executor
class ThreadPoolExecutor(Executor):
    """Worker-thread pool over a persistent ``concurrent.futures`` pool.

    All tasks are submitted up front and gathered by submission index,
    so results are ordered (and bit-identical to serial) no matter how
    the pool interleaves them. The pool is created lazily on first use
    and its idle threads exit when the executor is garbage collected, so
    short-lived simulations do not leak threads.
    """

    name = "thread"

    def __init__(self, workers: int = 2):
        super().__init__(workers=workers)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        # Guards lazy creation and teardown: concurrent first maps (or a
        # map racing a close) must agree on one pool, never leak a second.
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        """Caller must hold ``_pool_lock``."""
        pool = self._pool
        if pool is None:
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-cell")
            self._pool = pool
        return pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            # Nothing to overlap; skip the submission round-trip.
            return [fn(x) for x in items]
        # Submission happens under the lock so a concurrent close() can
        # never shut the pool down mid-submit: it either runs before (we
        # build a fresh pool) or after (shutdown waits for our futures).
        # Only submission is serialized; the tasks overlap freely.
        with self._pool_lock:
            pool = self._ensure_pool()
            futures = [pool.submit(fn, x) for x in items]
        # result() re-raises task exceptions; gather strictly by index.
        return [f.result() for f in futures]

    def close(self) -> None:
        with self._pool_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)


def _bit_identical(a, b) -> bool:
    """Whether two task results are bitwise the same.

    Arrays compare by shape, dtype and raw bytes (NaNs included — the
    contract is *bit* identity, not numeric equality); containers
    recurse; objects without a meaningful equality are skipped (True).
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a)
        b = np.asarray(b)
        return (a.shape == b.shape and a.dtype == b.dtype
                and a.tobytes() == b.tobytes())
    if isinstance(a, (tuple, list)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(_bit_identical(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (isinstance(b, dict) and a.keys() == b.keys()
                and all(_bit_identical(a[k], b[k]) for k in a))
    if isinstance(a, (bool, int, float, complex, str, bytes, type(None))):
        return a == b or (a != a and b != b)   # NaN floats count as equal
    return True                                 # opaque object: no claim


@register_executor
class CheckedExecutor(Executor):
    """Contract-enforcing wrapper around a real executor.

    Runs every ``map`` through an inner executor (serial for
    ``workers=1``, the thread pool otherwise, or any explicit ``inner``)
    with two runtime checks layered on top:

    1. *Frozen shared tables.* For the duration of the map, every cached
       table registered via :func:`repro.analysis.guard.freeze` is
       flipped non-writeable, so a task that writes shared state through
       a cached array raises immediately instead of silently corrupting
       the other cells. The resulting ``read-only`` ``ValueError`` is
       re-raised as :class:`~repro.analysis.guard.DeterminismError`.
    2. *Rerun sampling.* After the map, a deterministic sample of the
       tasks (first, last, and evenly spaced up to
       :data:`RERUN_SAMPLES`) is executed a second time and the results
       compared bit-for-bit. A task whose repeat diverges depends on
       mutable cross-task state (ordering, accumulation, hidden caches)
       and violates the contract. Only tasks that returned a value are
       re-run: a ``None``-returning task is a stateful mutator (e.g. the
       stepper's refresh stage) whose repeat would advance its own
       amortization counters.

    The overhead is one extra task execution per sampled index — meant
    for validation runs and CI scenes, not production stepping.
    """

    name = "checked"

    #: how many mapped tasks are re-executed per map (deterministic
    #: evenly-spaced sample, capped by the number of eligible tasks).
    RERUN_SAMPLES = 2

    def __init__(self, workers: int = 1, inner: Optional[Executor] = None):
        super().__init__(workers=workers)
        if inner is None:
            inner = (SerialExecutor(workers=1) if workers == 1
                     else ThreadPoolExecutor(workers=workers))
        self.inner = inner

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        with tables_frozen():
            try:
                results = self.inner.map(fn, items)
            except ValueError as e:
                if "read-only" in str(e):
                    raise DeterminismError(
                        "task wrote to a frozen shared table during "
                        f"{type(self.inner).__name__}.map — per-cell tasks "
                        "must only write state owned by their own item"
                    ) from e
                raise
            for i in self._sample_indices(results):
                repeat = fn(items[i])
                if not _bit_identical(results[i], repeat):
                    raise DeterminismError(
                        f"task {i} is not deterministic: re-running it "
                        "produced a different result, so the map depends "
                        "on mutable cross-task state")
        return results

    def _sample_indices(self, results: List[R]) -> List[int]:
        eligible = [i for i, r in enumerate(results) if r is not None]
        k = min(self.RERUN_SAMPLES, len(eligible))
        if k == 0:
            return []
        # Evenly spaced over the eligible tasks, endpoints included.
        if k == 1:
            return [eligible[0]]
        pos = [round(j * (len(eligible) - 1) / (k - 1)) for j in range(k)]
        return sorted({eligible[p] for p in pos})

    def close(self) -> None:
        self.inner.close()

    def options(self) -> dict:
        return {"executor": self.name, "workers": self.workers,
                "inner": self.inner.name}

"""The virtual communicator and its communication ledger.

SPMD code is written in "lockstep" style: local computation loops over the
per-rank payload list, and every exchange goes through a ``VirtualComm``
collective that takes a list with one entry per rank and returns the same.
Semantics mirror MPI (Allreduce, Allgather, Alltoallv, point-to-point
batches); each call records (operation, message count, bytes moved) so
that the scaling model can price the communication on a real machine.
"""
from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Callable, Sequence

import numpy as np


@dataclasses.dataclass
class _OpStats:
    calls: int = 0
    messages: int = 0
    bytes: int = 0


class CommLedger:
    """Accumulates per-operation communication statistics.

    ``phase`` labels (e.g. "COL", "BIE-solve") attribute traffic to the
    component breakdown used in the paper's Figs. 4-6.
    """

    def __init__(self) -> None:
        self.stats: dict[tuple[str, str], _OpStats] = defaultdict(_OpStats)
        self.phase = "Other"

    def record(self, op: str, messages: int, nbytes: int) -> None:
        s = self.stats[(self.phase, op)]
        s.calls += 1
        s.messages += messages
        s.bytes += nbytes

    def total_bytes(self, phase: str | None = None) -> int:
        return sum(s.bytes for (ph, _), s in self.stats.items()
                   if phase is None or ph == phase)

    def total_messages(self, phase: str | None = None) -> int:
        return sum(s.messages for (ph, _), s in self.stats.items()
                   if phase is None or ph == phase)

    def summary(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for (ph, op), s in sorted(self.stats.items()):
            d = out.setdefault(ph, {})
            d[op] = s.bytes
        return out


def _nbytes(x: Any) -> int:
    if isinstance(x, np.ndarray):
        return x.nbytes
    if isinstance(x, (list, tuple)):
        return sum(_nbytes(v) for v in x)
    if isinstance(x, dict):
        return sum(_nbytes(v) for v in x.values())
    if dataclasses.is_dataclass(x) and not isinstance(x, type):
        # Payload objects (e.g. the process executor's shard tasks)
        # price as the sum of their fields.
        return sum(_nbytes(getattr(x, f.name))
                   for f in dataclasses.fields(x))
    if isinstance(x, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(x, (bytes, str)):
        return len(x)
    return 64  # conservative default for small python objects


class VirtualComm:
    """P logical MPI ranks executed in-process."""

    def __init__(self, size: int, ledger: CommLedger | None = None):
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = int(size)
        self.ledger = ledger or CommLedger()

    # -- phases -----------------------------------------------------------
    def set_phase(self, phase: str) -> None:
        self.ledger.phase = phase

    def _check(self, data: Sequence[Any]) -> None:
        if len(data) != self.size:
            raise ValueError(
                f"collective needs one payload per rank ({self.size}), got {len(data)}")

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        self.ledger.record("barrier", self.size, 0)

    def bcast(self, value: Any, root: int = 0) -> list[Any]:
        self.ledger.record("bcast", self.size - 1,
                           (self.size - 1) * _nbytes(value))
        return [value for _ in range(self.size)]

    def allreduce(self, data: Sequence[Any], op: Callable = np.add) -> list[Any]:
        """MPI_Allreduce with an elementwise reduction op."""
        self._check(data)
        acc = data[0]
        for d in data[1:]:
            acc = op(acc, d)
        self.ledger.record("allreduce", 2 * (self.size - 1),
                           2 * (self.size - 1) * _nbytes(data[0]))
        return [acc for _ in range(self.size)]

    def allgather(self, data: Sequence[Any]) -> list[list[Any]]:
        self._check(data)
        gathered = list(data)
        total = sum(_nbytes(d) for d in data)
        self.ledger.record("allgather", self.size * (self.size - 1),
                           (self.size - 1) * total)
        return [list(gathered) for _ in range(self.size)]

    def alltoall(self, data: Sequence[Sequence[Any]]) -> list[list[Any]]:
        """MPI_Alltoall: data[i][j] is sent from rank i to rank j."""
        self._check(data)
        out = [[data[i][j] for i in range(self.size)] for j in range(self.size)]
        nbytes = sum(_nbytes(data[i][j])
                     for i in range(self.size) for j in range(self.size) if i != j)
        self.ledger.record("alltoall", self.size * (self.size - 1), nbytes)
        return out

    def alltoallv(self, buckets: Sequence[dict[int, Any]]) -> list[dict[int, Any]]:
        """Sparse MPI_Alltoallv: ``buckets[i][j]`` goes from rank i to j.

        Only nonempty pairs are counted as messages — this is the sparse
        exchange the paper uses to assemble the distributed LCP matrix
        ("a sparse MPI_All_to_Allv to send each local contribution").
        """
        self._check(buckets)
        out: list[dict[int, Any]] = [dict() for _ in range(self.size)]
        messages = 0
        nbytes = 0
        for i, bucket in enumerate(buckets):
            for j, payload in bucket.items():
                if not (0 <= j < self.size):
                    raise ValueError(f"invalid destination rank {j}")
                out[j][i] = payload
                if i != j:
                    messages += 1
                    nbytes += _nbytes(payload)
        self.ledger.record("alltoallv", messages, nbytes)
        return out

    def gather(self, data: Sequence[Any], root: int = 0) -> list[Any] | None:
        self._check(data)
        total = sum(_nbytes(d) for i, d in enumerate(data) if i != root)
        self.ledger.record("gather", self.size - 1, total)
        return list(data)

    def scatter(self, chunks: Sequence[Any], root: int = 0) -> list[Any]:
        self._check(chunks)
        total = sum(_nbytes(c) for i, c in enumerate(chunks) if i != root)
        self.ledger.record("scatter", self.size - 1, total)
        return list(chunks)

    def reduce_scalar(self, data: Sequence[float], op: Callable = max) -> float:
        self._check(data)
        self.ledger.record("allreduce", 2 * (self.size - 1),
                           16 * (self.size - 1))
        out = data[0]
        for d in data[1:]:
            out = op(out, d)
        return out

"""Closed genus-0 spectral surfaces (RBC membranes).

:class:`SpectralSurface` wraps a spherical-harmonic position field with
differential-geometry quantities (metric, normals, curvatures, surface
differential operators) computed spectrally with 2x anti-aliasing.
:mod:`repro.surfaces.shapes` provides the reference shapes used in the
paper's experiments (spheres of varied radii from the filling algorithm,
the biconcave RBC rest shape, ellipsoids for convergence studies).
"""
from .spectral_surface import SpectralSurface, SurfaceGeometry
from .shapes import biconcave_rbc, ellipsoid, unit_sphere, sphere

__all__ = [
    "SpectralSurface",
    "SurfaceGeometry",
    "biconcave_rbc",
    "ellipsoid",
    "unit_sphere",
    "sphere",
]

"""Spectral representation of one deformable cell surface.

The surface is the image of the unit sphere under a band-limited map
``X(theta, phi)``; all differential geometry is obtained by spectral
differentiation of the coordinate series. Products of derivatives are
formed pointwise on the sampling grid; to control aliasing, geometry can be
computed on a grid upsampled by ``aliasing_factor`` (default 2) and
band-limited back, the standard 2/3-style dealiasing used by spectral
vesicle codes such as [48].
"""
from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..analysis.contracts import checked
from ..analysis.guard import HEAVY_TABLE_CACHE_SIZE, freeze, locked_cache
from ..sph import SHTransform, get_transform
from ..sph.grid import SphGrid


def _phi_derivative_rows(F: np.ndarray) -> np.ndarray:
    """Exact d/dphi via per-latitude FFT (rows are smooth periodic)."""
    nphi = F.shape[1]
    Fk = np.fft.fft(F, axis=1)
    m = np.fft.fftfreq(nphi, d=1.0 / nphi)
    m[nphi // 2] = 0.0  # drop the Nyquist mode of the derivative
    return np.fft.ifft(Fk * (1j * m)[None, :], axis=1).real


@locked_cache(maxsize=HEAVY_TABLE_CACHE_SIZE)
def _grid_operator_matrices(p: int, q: int) -> dict:
    """Dense real grid-to-grid operators between orders ``p`` and ``q``.

    Each matrix is the composition (forward SHT at the source order) ∘
    (pad/truncate) ∘ (derivative synthesis at the target order), assembled
    per azimuthal mode — the composition is block-diagonal in ``m``, so
    assembly is a handful of tiny latitude GEMMs plus rank-1 phase outer
    products rather than a dense complex triple product. With these, every
    surface differential operator is one real GEMV per field instead of a
    round of FFT-based transforms.

    Keys: ``up_theta``/``up_phi`` (native grid -> theta/phi derivative on
    the order-q grid), ``down`` (order-q grid -> band-limited native
    grid), ``theta_q`` (order-q grid -> theta derivative on itself) and
    ``dphi_rows`` (right-multiplication matrix for exact per-latitude
    d/dphi on the order-q grid).
    """
    Tp, Tq = get_transform(p), get_transform(q)
    gp, gq = Tp.grid, Tq.grid
    Pp = Tp._P
    Pq, dPq = Tq._P, Tq._dP
    Dqp = gq.phi[:, None] - gp.phi[None, :]
    Dqq = gq.phi[:, None] - gq.phi[None, :]

    def compose(tab_syn, P_ana, w_ana, Delta, lmax, mmax, phi_deriv=False):
        nls, nla = tab_syn.shape[2], P_ana.shape[2]
        nps, npa = Delta.shape
        M = np.zeros((nls, nps, nla, npa))
        scale = 2.0 * np.pi / npa
        for m in range(mmax + 1):
            if phi_deriv and m == 0:
                continue
            # latitude kernel of mode m: contraction over degrees l
            L = tab_syn[m: lmax + 1, m, :].T @ (P_ana[m: lmax + 1, m, :]
                                                * w_ana[None, :])
            if phi_deriv:
                ph = (-2.0 * m * scale) * np.sin(m * Delta)
            else:
                ph = ((1.0 if m == 0 else 2.0) * scale) * np.cos(m * Delta)
            M += L[:, None, :, None] * ph[None, :, None, :]
        return M.reshape(nls * nps, nla * npa)

    return {
        "up_theta": freeze(compose(dPq, Pp, gp.glw, Dqp, p, p)),
        "up_phi": freeze(compose(Pq, Pp, gp.glw, Dqp, p, p,
                                 phi_deriv=True)),
        "down": freeze(compose(Pp, Pq, gq.glw, -Dqp.T, p, p)),
        "theta_q": freeze(compose(dPq, Pq, gq.glw, Dqq, q, q)),
        "dphi_rows": freeze(_phi_derivative_rows(np.eye(gq.nphi))),
    }


@locked_cache(maxsize=HEAVY_TABLE_CACHE_SIZE)
def bandlimit_projector(p: int) -> np.ndarray:
    """Dense (N, N) projector onto band-limited order-``p`` grid fields.

    The sampling grid has ``(p+1)(2p+2)`` points but band-limited fields
    span only the ``(p+1)^2`` spherical-harmonic modes, so grid-space
    operators whose range is band-limited (every operator here ending in
    a band-limiting synthesis) are rank-deficient by the complement. The
    projector ``synthesis . analysis`` restricts a direct solve to the
    subspace the iterative Krylov solvers implicitly work in (their
    right-hand sides and operator ranges are band-limited).
    """
    T = get_transform(p)
    return freeze((T.synthesis_matrix() @ T.analysis_matrix()).real)


@dataclasses.dataclass
class SurfaceGeometry:
    """First/second fundamental forms and derived fields on the grid.

    All arrays have grid shape ``(nlat, nphi[, 3])``. ``W`` is the area
    element ``|X_theta x X_phi|``; ``area_ratio = W / sin(theta)`` is the
    smooth density of surface measure against the sphere measure, so
    ``integral_Gamma f dS = grid.integrate(f * area_ratio)``. With the
    grid's orientation the normal points outward; the mean curvature of a
    sphere of radius R is ``H = -1/R`` in this convention.
    """

    X_theta: np.ndarray
    X_phi: np.ndarray
    E: np.ndarray
    F: np.ndarray
    G: np.ndarray
    W: np.ndarray
    normal: np.ndarray
    area_ratio: np.ndarray
    H: np.ndarray
    K: np.ndarray


class SpectralSurface:
    """A closed surface with spherical-harmonic order ``p``.

    Parameters
    ----------
    positions:
        Grid samples of the surface map, shape ``(nlat, nphi, 3)`` or the
        flattened ``(nlat * nphi, 3)``.
    order:
        Spherical-harmonic order ``p``; inferred from the array shape when
        omitted.
    """

    def __init__(self, positions: np.ndarray, order: Optional[int] = None,
                 aliasing_factor: int = 2):
        positions = np.asarray(positions, dtype=float)
        if positions.ndim == 2:
            # infer order: n = (p+1)(2p+2) = 2(p+1)^2
            n = positions.shape[0]
            p = int(round(np.sqrt(n / 2.0))) - 1
            positions = positions.reshape(p + 1, 2 * p + 2, 3)
        if order is None:
            order = positions.shape[0] - 1
        self.order = int(order)
        self.transform = get_transform(self.order)
        self.grid: SphGrid = self.transform.grid
        if positions.shape != (self.grid.nlat, self.grid.nphi, 3):
            raise ValueError("positions do not match the grid of this order")
        self.X = positions.copy()
        self.aliasing_factor = int(aliasing_factor)
        self._coeffs: Optional[np.ndarray] = None
        self._geom: Optional[SurfaceGeometry] = None
        self._dense_ops: Optional[dict] = None

    # -- basics ------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return self.grid.n_points

    @property
    def points(self) -> np.ndarray:
        """Flattened point cloud view, shape (n_points, 3)."""
        return self.X.reshape(-1, 3)

    def coeffs(self) -> np.ndarray:
        """SH coefficients of the three coordinates, shape (3, p+1, 2p+1)."""
        if self._coeffs is None:
            self._coeffs = self.transform.forward(
                np.moveaxis(self.X, -1, 0))
        return self._coeffs

    def seed_coeffs(self, coeffs: np.ndarray) -> None:
        """Install externally computed SH coefficients of the positions.

        Used by :class:`repro.core.cellbatch.CellBatch`, which transforms
        all same-order cells' coordinates in one stacked forward SHT and
        scatters the results here, so :meth:`coeffs` never recomputes
        them per cell. The coefficients must describe the *current*
        positions; only the shape is validated.
        """
        coeffs = np.ascontiguousarray(coeffs)
        expected = (3, self.order + 1, 2 * self.order + 1)
        if coeffs.shape != expected:
            raise ValueError(f"expected coefficients of shape {expected}, "
                             f"got {coeffs.shape}")
        self._coeffs = coeffs

    def set_positions(self, positions: np.ndarray) -> None:
        """Update the surface (invalidates cached geometry)."""
        positions = np.asarray(positions, dtype=float)
        if positions.ndim == 2:
            positions = positions.reshape(self.grid.nlat, self.grid.nphi, 3)
        self.X = positions.copy()
        self._coeffs = None
        self._geom = None
        self._up_tables = None
        self._dense_ops = None

    def translated(self, shift: np.ndarray) -> "SpectralSurface":
        return SpectralSurface(self.X + np.asarray(shift, float), self.order,
                               self.aliasing_factor)

    def scaled(self, factor: float, about_centroid: bool = True) -> "SpectralSurface":
        c = self.centroid() if about_centroid else np.zeros(3)
        return SpectralSurface(c + factor * (self.X - c), self.order,
                               self.aliasing_factor)

    def rotated(self, R: np.ndarray) -> "SpectralSurface":
        c = self.centroid()
        pts = (self.points - c) @ np.asarray(R, float).T + c
        return SpectralSurface(pts.reshape(self.X.shape), self.order,
                               self.aliasing_factor)

    def upsampled(self, new_order: int) -> "SpectralSurface":
        """Exact band-limited resampling to a finer grid."""
        Xup = np.moveaxis(self.transform.resample(self.coeffs(), new_order),
                          0, -1)
        return SpectralSurface(Xup, new_order, self.aliasing_factor)

    # -- geometry ------------------------------------------------------------
    @staticmethod
    def _geometry_from_transform(T: SHTransform, coeffs) -> SurfaceGeometry:
        """Pointwise-exact differential geometry on T's grid.

        All parametric derivatives come straight from the coefficient
        series (exact for band-limited X); the subsequent products are
        formed pointwise, so no spherical re-expansion of the pole-singular
        coordinate-derivative fields is ever needed.
        """
        grid = T.grid
        coeffs = np.asarray(coeffs)

        def d(which):
            return np.moveaxis(T.derivative_grid(coeffs, which), 0, -1)

        Xt, Xp = d("theta"), d("phi")
        Xtt, Xtp, Xpp = d("theta2"), d("thetaphi"), d("phi2")

        E = np.einsum("ijk,ijk->ij", Xt, Xt)
        F = np.einsum("ijk,ijk->ij", Xt, Xp)
        G = np.einsum("ijk,ijk->ij", Xp, Xp)
        cross = np.cross(Xt, Xp)
        W = np.linalg.norm(cross, axis=-1)
        normal = cross / W[..., None]
        L = np.einsum("ijk,ijk->ij", Xtt, normal)
        M = np.einsum("ijk,ijk->ij", Xtp, normal)
        N = np.einsum("ijk,ijk->ij", Xpp, normal)
        W2 = W * W
        H = (E * N + G * L - 2.0 * F * M) / (2.0 * W2)
        K = (L * N - M * M) / W2
        area_ratio = W / grid.sin_theta[:, None]
        return SurfaceGeometry(X_theta=Xt, X_phi=Xp, E=E, F=F, G=G, W=W,
                               normal=normal, area_ratio=area_ratio, H=H, K=K)

    def geometry(self) -> SurfaceGeometry:
        """Compute (and cache) the differential geometry on the native grid."""
        if self._geom is None:
            self._geom = self._geometry_from_transform(self.transform, self.coeffs())
        return self._geom

    def _pad_coeffs(self, c: np.ndarray, q: int) -> np.ndarray:
        return self._pad_coeffs_any(c, self.order, q)

    # -- integral quantities ---------------------------------------------------
    def area(self) -> float:
        g = self.geometry()
        return float(self.grid.integrate(g.area_ratio))

    def volume(self) -> float:
        g = self.geometry()
        integrand = np.einsum("ijk,ijk->ij", self.X, g.normal) * g.area_ratio
        return float(self.grid.integrate(integrand)) / 3.0

    def centroid(self) -> np.ndarray:
        """Volume centroid computed from the divergence theorem."""
        g = self.geometry()
        xn = np.einsum("ijk,ijk->ij", self.X, g.normal)
        vol = float(self.grid.integrate(xn * g.area_ratio)) / 3.0
        # centroid_i = (1/V) int x_i dV = (1/2V) int x_i (x . n) ... use
        # int_V x_i dV = (1/4) int_Gamma x_i (x . n) dS for star-shaped exact
        # forms; we use the standard surface form (1/2) int x_i^2 n_i dS.
        mom = np.stack([
            0.5 * self.grid.integrate(self.X[:, :, i] ** 2 * g.normal[:, :, i] * g.area_ratio)
            for i in range(3)
        ])
        return mom / vol

    def reduced_volume(self) -> float:
        """3 sqrt(4 pi) V / A^{3/2}; 1 for a sphere, ~0.65 for an RBC."""
        A = self.area()
        V = self.volume()
        return 3.0 * np.sqrt(4.0 * np.pi) * V / A ** 1.5

    def cylindrical_frames(self) -> np.ndarray:
        """Orthonormal cylindrical component frames about the
        parametrization's polar axis, shape ``(nlat, nphi, 3, 3)``.

        Row ``k`` of the ``(3, 3)`` block at a grid point is the ``k``-th
        frame vector ``(e_rho, e_phi, e_z)`` at that point's longitude
        (the frame depends only on ``phi``, not on the actual surface
        position). For a surface of revolution about the polar axis,
        conjugating a grid operator into these frames per point makes it
        block-circulant in the target longitude — the geometric limit of
        the structure the block-circulant self-interaction assembly
        exploits at the parametrization level for arbitrary shapes
        (see :mod:`repro.vesicle.self_interaction`); the equivalence
        suite pins that limit on a sphere.
        """
        grid = self.grid
        cp, sp = np.cos(grid.phi), np.sin(grid.phi)
        F = np.zeros((grid.nphi, 3, 3))
        F[:, 0, 0] = cp
        F[:, 0, 1] = sp
        F[:, 1, 0] = -sp
        F[:, 1, 1] = cp
        F[:, 2, 2] = 1.0
        return np.broadcast_to(F[None], (grid.nlat, grid.nphi, 3, 3)).copy()

    def quadrature_weights(self) -> np.ndarray:
        """Surface-quadrature weight of each grid point, shape (nlat, nphi).

        ``sum_i w_i f(x_i)`` approximates ``int_Gamma f dS`` spectrally.
        """
        g = self.geometry()
        return self.grid.weights * g.area_ratio

    # -- surface differential operators ----------------------------------------
    def _upsampled_tables(self):
        """Anti-aliasing workspace: transform and geometry at order
        ``aliasing_factor * p`` (cached)."""
        if getattr(self, "_up_tables", None) is None:
            Tq = get_transform(self._aliasing_order())
            cq = self._pad_coeffs(self.coeffs(), Tq.order)
            geom_q = self._geometry_from_transform(Tq, cq)
            self._up_tables = (Tq, geom_q)
        return self._up_tables

    @staticmethod
    def _pad_coeffs_any(c: np.ndarray, p: int, q: int) -> np.ndarray:
        """Zero-pad order-p coefficients to order q (batched over leading
        axes); a block slice, since entries outside the triangle are zero."""
        c = np.asarray(c)
        cq = np.zeros((*c.shape[:-2], q + 1, 2 * q + 1), dtype=complex)
        cq[..., : p + 1, q - p: q + p + 1] = c
        return cq

    def _aliasing_order(self) -> int:
        """Order of the anti-aliasing workspace grid."""
        return max(self.order + 2, self.aliasing_factor * self.order)

    def _op_matrices(self) -> dict:
        """Dense surface-operator building blocks for this surface's
        (native, anti-aliasing) order pair."""
        return _grid_operator_matrices(self.order, self._aliasing_order())

    def surface_gradient(self, f: np.ndarray) -> np.ndarray:
        """Tangential gradient of a scalar grid field, shape (nlat, nphi, 3)."""
        Tq, g = self._upsampled_tables()
        ops = self._op_matrices()
        shq = (Tq.grid.nlat, Tq.grid.nphi)
        fv = np.asarray(f, float).reshape(-1)
        ft = (ops["up_theta"] @ fv).reshape(shq)
        fp = (ops["up_phi"] @ fv).reshape(shq)
        W2 = g.W ** 2
        a = (g.G * ft - g.F * fp) / W2
        b = (g.E * fp - g.F * ft) / W2
        grad_q = a[..., None] * g.X_theta + b[..., None] * g.X_phi
        # The gradient is a smooth ambient vector field; band-limit all
        # three components back with one GEMM.
        return (ops["down"] @ grad_q.reshape(-1, 3)).reshape(
            self.grid.nlat, self.grid.nphi, 3)

    def surface_divergence(self, v: np.ndarray) -> np.ndarray:
        """Surface divergence of an ambient vector field sampled on the grid.

        Used for the inextensibility constraint div_gamma(u) = 0 of paper
        Eq. (2.9).
        """
        Tq, g = self._upsampled_tables()
        ops = self._op_matrices()
        shq3 = (Tq.grid.nlat, Tq.grid.nphi, 3)
        v = np.asarray(v, float).reshape(-1, 3)
        vt = (ops["up_theta"] @ v).reshape(shq3)
        vp = (ops["up_phi"] @ v).reshape(shq3)
        W2 = g.W ** 2
        e1 = (g.G[..., None] * g.X_theta - g.F[..., None] * g.X_phi) / W2[..., None]
        e2 = (g.E[..., None] * g.X_phi - g.F[..., None] * g.X_theta) / W2[..., None]
        div_q = (np.einsum("ijk,ijk->ij", e1, vt)
                 + np.einsum("ijk,ijk->ij", e2, vp))
        return (ops["down"] @ div_q.reshape(-1)).reshape(self.grid.nlat,
                                                         self.grid.nphi)

    def laplace_beltrami(self, f: np.ndarray) -> np.ndarray:
        """Laplace-Beltrami of a scalar grid field.

        Divergence form (1/W)[d_theta((G f_t - F f_p)/W) + d_phi((E f_p -
        F f_t)/W)]. The theta-flux P is a smooth spherical function (the
        sin(theta) inside W cancels the pole behaviour of f_theta) and is
        differentiated via a spherical re-expansion; the phi-flux Q is
        *not* smooth at the poles (it tends to a nonzero function of phi),
        but each latitude row of it is smooth and periodic, so d/dphi is
        taken row-wise with an FFT, which is exact.
        """
        Tq, g = self._upsampled_tables()
        ops = self._op_matrices()
        shq = (Tq.grid.nlat, Tq.grid.nphi)
        fv = np.asarray(f, float).reshape(-1)
        ft = (ops["up_theta"] @ fv).reshape(shq)
        fp = (ops["up_phi"] @ fv).reshape(shq)
        P = (g.G * ft - g.F * fp) / g.W
        Q = (g.E * fp - g.F * ft) / g.W
        dP = (ops["theta_q"] @ P.reshape(-1)).reshape(shq)
        dQ = Q @ ops["dphi_rows"]
        lb_q = (dP + dQ) / g.W
        return (ops["down"] @ lb_q.reshape(-1)).reshape(self.grid.nlat,
                                                        self.grid.nphi)

    # -- dense operators at the current geometry -------------------------------
    def _dense_operator_tables(self) -> dict:
        """Assembled dense surface operators at the current configuration.

        Every surface differential operator above is an affine composition
        of the fixed grid-to-grid matrices of
        :func:`_grid_operator_matrices` with diagonal scalings by the
        (geometry-dependent) fundamental forms, so each one *is* a dense
        matrix at frozen geometry. These feed the per-step direct linear
        algebra (the tension Schur complement and the factorized implicit
        bending operator); they are cached until :meth:`set_positions`.

        Keys: ``grad`` maps ``f.ravel()`` (N,) to the gradient field
        raveled in grid order (3N,); ``div`` maps a raveled vector field
        (3N,) to the divergence (N,); ``lb`` is the (N, N)
        Laplace-Beltrami matrix.
        """
        if self._dense_ops is not None:
            return self._dense_ops
        Tq, g = self._upsampled_tables()
        ops = self._op_matrices()
        n = self.grid.n_points
        nq = Tq.grid.n_points
        up_t, up_p, down = ops["up_theta"], ops["up_phi"], ops["down"]
        W2 = (g.W ** 2).ravel()
        E, F, G = g.E.ravel(), g.F.ravel(), g.G.ravel()
        Xt = g.X_theta.reshape(nq, 3)
        Xp = g.X_phi.reshape(nq, 3)

        # gradient: grad_q[.., k] = c1_k * (up_t f) + c2_k * (up_p f) with
        # c1 = (G Xt - F Xp)/W^2, c2 = (E Xp - F Xt)/W^2, then band-limit.
        # The divergence uses the *same* reciprocal-basis fields per
        # component (div v = sum_k e1_k (up_t v_k) + e2_k (up_p v_k) with
        # e = c), so its three column blocks equal the gradient's three
        # row blocks; assemble the blocks once with a single stacked GEMM.
        c1 = (G[:, None] * Xt - F[:, None] * Xp) / W2[:, None]
        c2 = (E[:, None] * Xp - F[:, None] * Xt) / W2[:, None]
        stacked = np.concatenate(
            [c1[:, k, None] * up_t + c2[:, k, None] * up_p
             for k in range(3)], axis=1)
        blocks = (down @ stacked).reshape(n, 3, n)
        grad = np.empty((3 * n, n))
        div = np.empty((n, 3 * n))
        for k in range(3):
            grad[k::3] = blocks[:, k]
            div[:, k::3] = blocks[:, k]

        # Laplace-Beltrami in divergence form (see laplace_beltrami):
        # theta-flux through the order-q theta-derivative matrix, phi-flux
        # through the per-latitude-row FFT derivative matrix.
        Wq = g.W.ravel()
        MP = ((G / Wq)[:, None] * up_t - (F / Wq)[:, None] * up_p)
        MQ = ((E / Wq)[:, None] * up_p - (F / Wq)[:, None] * up_t)
        dP = ops["theta_q"] @ MP
        nlat_q, nphi_q = Tq.grid.nlat, Tq.grid.nphi
        # row-wise d/dphi as a batched GEMM over latitude rows:
        # dQ[i, l, n] = sum_j dphi_rows[j, l] MQ[i, j, n]
        dQ = np.matmul(ops["dphi_rows"].T[None, :, :],
                       MQ.reshape(nlat_q, nphi_q, n)).reshape(nq, n)
        lb = down @ ((dP + dQ) / Wq[:, None])

        self._dense_ops = {"grad": grad, "div": div, "lb": lb}
        return self._dense_ops

    @checked(out="(3*N, N) f8")
    def surface_gradient_matrix(self) -> np.ndarray:
        """Dense (3N, N) operator: scalar grid field -> tangential
        gradient field, both raveled in grid order (cached per geometry)."""
        return self._dense_operator_tables()["grad"]

    @checked(out="(N, 3*N) f8")
    def surface_divergence_matrix(self) -> np.ndarray:
        """Dense (N, 3N) operator: raveled vector grid field -> surface
        divergence (cached per geometry)."""
        return self._dense_operator_tables()["div"]

    @checked(out="(N, N) f8")
    def laplace_beltrami_matrix(self) -> np.ndarray:
        """Dense (N, N) Laplace-Beltrami operator on scalar grid fields
        (cached per geometry)."""
        return self._dense_operator_tables()["lb"]

"""Reference cell shapes.

``biconcave_rbc`` is the Evans-Fung resting shape of a red blood cell
(reduced volume ~0.64); spheres and ellipsoids support the verification
studies (bending force vanishes on spheres; curvature of ellipsoids has a
closed form).
"""
from __future__ import annotations

import numpy as np

from ..config import DEFAULT_SPH_ORDER
from ..sph.grid import get_grid
from .spectral_surface import SpectralSurface


def unit_sphere(order: int = DEFAULT_SPH_ORDER) -> SpectralSurface:
    """The unit sphere sampled on the order-p grid."""
    return sphere(1.0, order=order)


def sphere(radius: float, center=(0.0, 0.0, 0.0),
           order: int = DEFAULT_SPH_ORDER) -> SpectralSurface:
    grid = get_grid(order)
    pts = radius * grid.points_unit_sphere() + np.asarray(center, float)
    return SpectralSurface(pts.reshape(grid.nlat, grid.nphi, 3), order)


def ellipsoid(a: float, b: float, c: float, center=(0.0, 0.0, 0.0),
              order: int = DEFAULT_SPH_ORDER) -> SpectralSurface:
    grid = get_grid(order)
    pts = grid.points_unit_sphere() * np.array([a, b, c])
    pts = pts + np.asarray(center, float)
    return SpectralSurface(pts.reshape(grid.nlat, grid.nphi, 3), order)


def biconcave_rbc(radius: float = 1.0, center=(0.0, 0.0, 0.0),
                  order: int = DEFAULT_SPH_ORDER,
                  c0: float = 0.2072, c1: float = 2.0026, c2: float = -1.1228) -> SpectralSurface:
    """Evans-Fung biconcave discocyte of equatorial radius ``radius``.

    Parametrized over the sphere: with w = sin(theta),

        x = R w cos(phi),  y = R w sin(phi),
        z = (R/2) cos(theta) (c0 + c1 w^2 + c2 w^4),

    which is a smooth band-limited-in-practice map (the z-profile is a
    degree-5 spherical polynomial), so low SH orders represent it exactly.
    """
    grid = get_grid(order)
    T, P = grid.mesh()
    w2 = np.sin(T) ** 2
    x = radius * np.sin(T) * np.cos(P)
    y = radius * np.sin(T) * np.sin(P)
    z = 0.5 * radius * np.cos(T) * (c0 + c1 * w2 + c2 * w2 * w2)
    pts = np.stack([x, y, z], axis=-1) + np.asarray(center, float)
    return SpectralSurface(pts, order)

"""Gravitational traction jump for sedimentation (paper Fig. 7).

With a density contrast ``delta_rho`` between the inside and outside
fluids, the hydrostatic pressure jump across the membrane contributes the
traction ``f_g = delta_rho (g . X) n``, the standard form used by vesicle
sedimentation studies.
"""
from __future__ import annotations

import numpy as np

from ..surfaces import SpectralSurface


def gravity_force(surface: SpectralSurface, delta_rho: float,
                  g_vector=(0.0, 0.0, -1.0)) -> np.ndarray:
    """Traction jump due to gravity, shape (nlat, nphi, 3)."""
    g = surface.geometry()
    gv = np.asarray(g_vector, float)
    potential = np.einsum("ijk,k->ij", surface.X, gv)
    return delta_rho * potential[..., None] * g.normal

"""Composable force terms: the open-ended half of the physics model.

The paper runs a *family* of scenarios — sedimentation (gravity), shear
(background flow), vessel filling (wall-driven flow) — that differ only
in which explicit contributions drive the cells. Instead of boolean
constructor flags, each contribution is a :class:`ForceTerm`: an object
that may add an interfacial *traction* (a force density on the membrane,
entering through the single-layer potentials) and/or a direct *velocity*
(an imposed background flow evaluated at cell points). Terms compose as
a plain list on :class:`repro.config.ReproConfig`; user-defined terms
subclass :class:`ForceTerm` and, if registered, serialize with the rest
of the configuration.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, ClassVar, Dict, Optional, Type

import numpy as np

from ..surfaces import SpectralSurface
from .bending import bending_force
from .gravity import gravity_force
from .tension import tension_force


@dataclasses.dataclass
class CellState:
    """Per-cell state a term may consult when computing its traction."""

    index: int
    sigma: Optional[np.ndarray] = None  #: current tension field (or None)


class ForceTerm:
    """One composable contribution to the explicit right-hand side.

    Subclasses override :meth:`traction` (force density on the membrane,
    shape ``(nlat, nphi, 3)``) and/or :meth:`velocity` (imposed velocity
    at arbitrary points, shape ``(n, 3)``); either may return ``None``
    when the term does not contribute that piece.
    """

    #: Registry key; subclasses registered via :func:`register_force_term`.
    name: ClassVar[str] = ""
    #: Whether :meth:`to_dict` produces a faithful description.
    serializable: ClassVar[bool] = True
    #: Whether :meth:`traction` consults ``state.sigma``. Tractions of
    #: sigma-independent terms depend on geometry alone, so the stepper
    #: computes them once per cell per step; terms that declare
    #: ``sigma_dependent = False`` opt into that caching. The default is
    #: conservative (re-evaluate whenever the tension field changes) so
    #: unknown subclasses stay correct.
    sigma_dependent: ClassVar[bool] = True

    def traction(self, cell: SpectralSurface,
                 state: CellState) -> Optional[np.ndarray]:
        return None

    def velocity(self, points: np.ndarray) -> Optional[np.ndarray]:
        return None

    # -- serialization ------------------------------------------------------
    def params(self) -> dict:
        """JSON-safe constructor arguments; the serialization payload."""
        return {}

    def to_dict(self) -> dict:
        if not self.serializable:
            raise ValueError(
                f"force term {type(self).__name__!r} holds a raw callable "
                "and cannot be serialized; use a registered named term")
        return {"term": self.name, **self.params()}

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other.params() == self.params()

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"


#: Registry of named, serializable force terms.
# repro-lint: disable=global-mutable — class registry written once at import time by @register_force_term, read-only afterwards
FORCE_TERMS: Dict[str, Type[ForceTerm]] = {}


def register_force_term(cls: Type[ForceTerm]) -> Type[ForceTerm]:
    """Class decorator adding a term to the :data:`FORCE_TERMS` registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    FORCE_TERMS[cls.name] = cls
    return cls


def force_term_from_dict(d: dict) -> ForceTerm:
    """Inverse of :meth:`ForceTerm.to_dict`."""
    d = dict(d)
    name = d.pop("term")
    try:
        cls = FORCE_TERMS[name]
    except KeyError:
        raise ValueError(f"unknown force term {name!r}; registered terms: "
                         f"{sorted(FORCE_TERMS)}") from None
    return cls(**d)


# -- built-in terms ---------------------------------------------------------
@register_force_term
class Bending(ForceTerm):
    """Canham-Helfrich bending traction (paper Sec. 2.1).

    The time stepper also uses this term's modulus for the linearized
    implicit self-interaction operator.
    """

    name = "bending"
    sigma_dependent = False

    def __init__(self, modulus: float = 0.01):
        self.modulus = float(modulus)

    def traction(self, cell, state):
        return bending_force(cell, self.modulus)

    def params(self):
        return {"modulus": self.modulus}


@register_force_term
class Tension(ForceTerm):
    """Membrane tension enforcing inextensibility (paper Eq. 2.9).

    Presence of this term switches the stepper's per-cell tension solve
    on; the traction uses the most recent tension field.
    """

    name = "tension"

    def traction(self, cell, state):
        if state.sigma is None:
            return None
        return tension_force(cell, state.sigma)


@register_force_term
class Gravity(ForceTerm):
    """Gravitational traction jump for sedimentation (paper Fig. 7)."""

    name = "gravity"
    sigma_dependent = False

    def __init__(self, delta_rho: float = 1.0,
                 direction=(0.0, 0.0, -1.0)):
        self.delta_rho = float(delta_rho)
        self.direction = tuple(float(v) for v in direction)

    def traction(self, cell, state):
        return gravity_force(cell, self.delta_rho, self.direction)

    def params(self):
        return {"delta_rho": self.delta_rho, "direction": list(self.direction)}


@register_force_term
class ShearFlow(ForceTerm):
    """Linear shear background flow ``u[flow_axis] = rate * x[gradient_axis]``
    (paper Figs. 10/11 scenario)."""

    name = "shear_flow"
    sigma_dependent = False

    def __init__(self, rate: float = 1.0, flow_axis: int = 0,
                 gradient_axis: int = 2):
        self.rate = float(rate)
        self.flow_axis = int(flow_axis)
        self.gradient_axis = int(gradient_axis)

    def velocity(self, points):
        points = np.atleast_2d(np.asarray(points, float))
        u = np.zeros_like(points)
        u[:, self.flow_axis] = self.rate * points[:, self.gradient_axis]
        return u

    def params(self):
        return {"rate": self.rate, "flow_axis": self.flow_axis,
                "gradient_axis": self.gradient_axis}


class BackgroundFlow(ForceTerm):
    """Arbitrary imposed background velocity from a raw callable.

    Not serializable — use a named term (e.g. :class:`ShearFlow`) when the
    configuration must round-trip through JSON.
    """

    name = "background_flow"
    serializable = False
    sigma_dependent = False

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray]):
        self.fn = fn

    def velocity(self, points):
        return np.asarray(self.fn(points), float)

    def __eq__(self, other):
        return type(other) is type(self) and other.fn is self.fn

    def __repr__(self):
        return f"BackgroundFlow({self.fn!r})"

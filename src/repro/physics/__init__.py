"""Membrane mechanics of the RBC model.

The paper's simplified RBC model (Sec. 2.1): inextensible membranes with
Canham-Helfrich bending elasticity and no in-plane shear rigidity; the
interfacial force is ``f = f_b + f_sigma`` (plus the artificial collision
force ``f_c`` from :mod:`repro.collision` and, for the sedimentation
experiment of Fig. 7, a gravitational traction jump).
"""
from .bending import (bending_force, bending_energy,
                      linearized_bending_apply, linearized_bending_matrix)
from .tension import tension_force, tension_operator_matrix, TensionSolver
from .gravity import gravity_force
from .terms import (FORCE_TERMS, BackgroundFlow, Bending, CellState,
                    ForceTerm, Gravity, ShearFlow, Tension,
                    force_term_from_dict, register_force_term)

__all__ = [
    "bending_force",
    "bending_energy",
    "linearized_bending_apply",
    "linearized_bending_matrix",
    "tension_force",
    "tension_operator_matrix",
    "TensionSolver",
    "gravity_force",
    "ForceTerm",
    "CellState",
    "Bending",
    "Tension",
    "Gravity",
    "ShearFlow",
    "BackgroundFlow",
    "FORCE_TERMS",
    "register_force_term",
    "force_term_from_dict",
]

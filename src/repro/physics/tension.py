"""Surface tension and the inextensibility constraint.

The membrane is inextensible: ``div_Gamma(u) = 0`` (paper Eq. (2.9)). The
tension ``sigma`` acts as the Lagrange multiplier of that constraint, with
force density

``f_sigma = grad_Gamma(sigma) + sigma * Delta_Gamma(X) = grad_Gamma(sigma)
            + 2 sigma H n``.

:class:`TensionSolver` solves the Schur-complement problem for sigma:
given a background velocity ``u_bg`` (everything except the tension's own
contribution), find sigma with ``div_Gamma(u_bg + S[f_sigma(sigma)]) = 0``.

Every factor of the Schur operator — the surface gradient/divergence,
the curvature term and the singular self-interaction — is a dense matrix
at frozen geometry, so the solver assembles the per-cell (N, N) operator
``Div . S . (Grad + 2Hn .)`` explicitly and LU-factorizes it once per
refresh; each :meth:`~TensionSolver.solve` is then a single
back-substitution instead of an inner GMRES loop. The matrix-free GMRES
path is kept as :meth:`~TensionSolver.solve_iterative` for equivalence
testing and for callers without an assembled self-interaction matrix.
"""
from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..linalg import LUFactorization, gmres
from ..surfaces import SpectralSurface
from ..surfaces.spectral_surface import bandlimit_projector


def tension_force(surface: SpectralSurface, sigma: np.ndarray) -> np.ndarray:
    """Force density of a tension field, shape (nlat, nphi, 3)."""
    g = surface.geometry()
    sigma = np.asarray(sigma, float).reshape(surface.grid.nlat, surface.grid.nphi)
    grad = surface.surface_gradient(sigma)
    return grad + (2.0 * sigma * g.H)[..., None] * g.normal


def tension_operator_matrix(surface: SpectralSurface) -> np.ndarray:
    """Dense (3N, N) matrix of :func:`tension_force`:
    ``sigma.ravel() -> (grad_Gamma sigma + 2 sigma H n).ravel()``."""
    g = surface.geometry()
    n = surface.grid.n_points
    F = surface.surface_gradient_matrix().copy()
    curv = (2.0 * g.H[..., None] * g.normal).reshape(n, 3)
    idx = np.arange(n)
    for k in range(3):
        F[3 * idx + k, idx] += curv[:, k]
    return F


class TensionSolver:
    """Solves the inextensibility constraint for the tension field.

    Parameters
    ----------
    self_interaction:
        Callable mapping a force grid field (nlat, nphi, 3) to the velocity
        it induces on the same surface (the singular single-layer
        self-interaction operator).
    self_matrix:
        Optional dense (3N, 3N) matrix of that same operator (e.g.
        :attr:`repro.vesicle.SingularSelfInteraction.matrix`). When given,
        the Schur complement is assembled and factorized at construction
        and :meth:`solve` becomes a direct back-substitution.
    """

    def __init__(self, surface: SpectralSurface,
                 self_interaction: Callable[[np.ndarray], np.ndarray],
                 tol: float = 1e-8, max_iter: int = 60,
                 self_matrix: Optional[np.ndarray] = None):
        self.surface = surface
        self.self_interaction = self_interaction
        self.tol = tol
        self.max_iter = max_iter
        self._schur: Optional[LUFactorization] = None
        if self_matrix is not None:
            self.factorize(self_matrix)

    def schur_system(self, self_matrix: np.ndarray) -> np.ndarray:
        """The regularized dense system :meth:`solve` inverts at the
        surface's *current* geometry.

        The Schur operator is rank-deficient on the grid: the grid has
        (p+1)(2p+2) points but band-limited fields span only (p+1)^2
        modes, and both the operator's range and the right-hand side are
        band-limited. Solving A P + (I - P) — on the band-limited
        subspace this is A, on the complement the identity — reproduces
        the unique band-limited solution the Krylov path converges to.
        Split from :meth:`factorize` so the stepper can gather the
        systems of an equal-order cell group and factorize them as one
        stacked getrf pass (``NumericsOptions.batched_lu``).
        """
        P = bandlimit_projector(self.surface.order)
        A = self.schur_matrix(self_matrix) @ P
        A += np.eye(P.shape[0]) - P
        return A

    def factorize(self, self_matrix: np.ndarray) -> None:
        """(Re)assemble and LU-factorize the Schur complement at the
        surface's *current* geometry.

        The per-cell factor-and-solve stage of the time stepper calls
        this as an independent batch task per cell after each operator
        refresh (or assembles via :meth:`schur_system` and installs a
        slice of a stacked group factorization instead).
        """
        self._schur = LUFactorization(self.schur_system(self_matrix))

    def install_factorization(self, factorization) -> None:
        """Adopt an externally built factorization of
        :meth:`schur_system`'s matrix (anything with ``.solve(rhs)``,
        e.g. a :class:`repro.linalg.StackedLUHandle` of a stacked
        equal-order group factorization)."""
        self._schur = factorization

    def _shape(self):
        return self.surface.grid.nlat, self.surface.grid.nphi

    def schur_matrix(self, self_matrix: np.ndarray) -> np.ndarray:
        """Assemble the dense (N, N) Schur operator
        ``Div . S . (Grad + 2Hn .)`` at the current geometry."""
        F = tension_operator_matrix(self.surface)
        return self.surface.surface_divergence_matrix() @ (self_matrix @ F)

    @property
    def direct(self) -> bool:
        """Whether :meth:`solve` uses the factorized Schur complement."""
        return self._schur is not None

    def operator(self, sigma_flat: np.ndarray) -> np.ndarray:
        sigma = sigma_flat.reshape(self._shape())
        f = tension_force(self.surface, sigma)
        u = self.self_interaction(f)
        return self.surface.surface_divergence(u).ravel()

    def solve(self, u_background: np.ndarray) -> tuple[np.ndarray, int]:
        """Return (sigma grid field, inner iterations; 0 when direct).

        ``u_background`` is the velocity on the surface from all sources
        except the tension force of this cell.
        """
        if self._schur is None:
            return self.solve_iterative(u_background)
        rhs = -self.surface.surface_divergence(u_background).ravel()
        return self._schur.solve(rhs).reshape(self._shape()), 0

    def solve_report(self, u_background: np.ndarray
                     ) -> tuple[np.ndarray, int, bool]:
        """:meth:`solve` plus the convergence flag: ``(sigma,
        iterations, converged)``.

        The direct path is a back-substitution against the factorized
        Schur complement and always reports converged (unless the
        factorization went singular and fell back to GMRES — see
        :class:`repro.linalg.LUFactorization`); the matrix-free path
        surfaces the GMRES flag the plain :meth:`solve` drops. Returned
        rather than stored on the solver so batch tasks mapped over the
        threaded executor never write shared state.
        """
        if self._schur is None:
            rhs = -self.surface.surface_divergence(u_background).ravel()
            res = gmres(self.operator, rhs, tol=self.tol,
                        max_iter=self.max_iter)
            return res.x.reshape(self._shape()), res.iterations, res.converged
        sigma, iters = self.solve(u_background)
        return sigma, iters, not getattr(self._schur, "singular", False)

    def solve_iterative(self, u_background: np.ndarray
                        ) -> tuple[np.ndarray, int]:
        """The matrix-free GMRES path (reference for :meth:`solve`)."""
        rhs = -self.surface.surface_divergence(u_background).ravel()
        res = gmres(self.operator, rhs, tol=self.tol, max_iter=self.max_iter)
        return res.x.reshape(self._shape()), res.iterations

"""Surface tension and the inextensibility constraint.

The membrane is inextensible: ``div_Gamma(u) = 0`` (paper Eq. (2.9)). The
tension ``sigma`` acts as the Lagrange multiplier of that constraint, with
force density

``f_sigma = grad_Gamma(sigma) + sigma * Delta_Gamma(X) = grad_Gamma(sigma)
            + 2 sigma H n``.

:class:`TensionSolver` solves the Schur-complement problem for sigma:
given a background velocity ``u_bg`` (everything except the tension's own
contribution), find sigma with ``div_Gamma(u_bg + S[f_sigma(sigma)]) = 0``.
"""
from __future__ import annotations

from typing import Callable

import numpy as np

from ..linalg import gmres
from ..surfaces import SpectralSurface


def tension_force(surface: SpectralSurface, sigma: np.ndarray) -> np.ndarray:
    """Force density of a tension field, shape (nlat, nphi, 3)."""
    g = surface.geometry()
    sigma = np.asarray(sigma, float).reshape(surface.grid.nlat, surface.grid.nphi)
    grad = surface.surface_gradient(sigma)
    return grad + (2.0 * sigma * g.H)[..., None] * g.normal


class TensionSolver:
    """Solves the inextensibility constraint for the tension field.

    Parameters
    ----------
    self_interaction:
        Callable mapping a force grid field (nlat, nphi, 3) to the velocity
        it induces on the same surface (the singular single-layer
        self-interaction operator).
    """

    def __init__(self, surface: SpectralSurface,
                 self_interaction: Callable[[np.ndarray], np.ndarray],
                 tol: float = 1e-8, max_iter: int = 60):
        self.surface = surface
        self.self_interaction = self_interaction
        self.tol = tol
        self.max_iter = max_iter

    def _shape(self):
        return self.surface.grid.nlat, self.surface.grid.nphi

    def operator(self, sigma_flat: np.ndarray) -> np.ndarray:
        sigma = sigma_flat.reshape(self._shape())
        f = tension_force(self.surface, sigma)
        u = self.self_interaction(f)
        return self.surface.surface_divergence(u).ravel()

    def solve(self, u_background: np.ndarray) -> tuple[np.ndarray, int]:
        """Return (sigma grid field, gmres iterations).

        ``u_background`` is the velocity on the surface from all sources
        except the tension force of this cell.
        """
        rhs = -self.surface.surface_divergence(u_background).ravel()
        res = gmres(self.operator, rhs, tol=self.tol, max_iter=self.max_iter)
        return res.x.reshape(self._shape()), res.iterations

"""Canham-Helfrich bending forces [8, 18 in the paper].

Energy ``E_b = (kappa_b / 2) int_Gamma H^2 dS`` (spontaneous curvature
zero). The first variation gives the force density

``f_b = -kappa_b (Delta_Gamma H + 2 H (H^2 - K)) n``,

which vanishes identically on spheres (H constant, H^2 = K) — the test
suite uses that invariant, plus energy decay under relaxation, to pin the
sign conventions (recall H = -1/R for a sphere with outward normals).
"""
from __future__ import annotations

import numpy as np

from ..surfaces import SpectralSurface


def bending_energy(surface: SpectralSurface, kappa: float = 1.0) -> float:
    """Helfrich energy (kappa/2) int H^2 dS."""
    g = surface.geometry()
    w = surface.quadrature_weights()
    return 0.5 * kappa * float((w * g.H ** 2).sum())


def bending_force(surface: SpectralSurface, kappa: float = 1.0) -> np.ndarray:
    """Bending force density on the grid, shape (nlat, nphi, 3).

    Sign convention: this is the *negative* variational derivative of the
    Helfrich energy, i.e. the traction the membrane exerts on the fluid,
    so that relaxation under ``X_t = S[f_b]`` decreases the energy.
    """
    g = surface.geometry()
    lbH = surface.laplace_beltrami(g.H)
    scalar = -kappa * (lbH + 2.0 * g.H * (g.H ** 2 - g.K))
    return scalar[..., None] * g.normal


def linearized_bending_apply(surface: SpectralSurface, dX: np.ndarray,
                             kappa: float = 1.0) -> np.ndarray:
    """Frozen-geometry linearization of the bending force.

    The locally-implicit time step (paper Sec. 2.2) treats the cell
    self-interaction implicitly. The dominant (stiffest, fourth-order)
    part of the bending-force Jacobian is the biharmonic-like operator

    ``L[dX] = -kappa Delta_Gamma(Delta_Gamma(dX . n)/2) n`` ,

    obtained by perturbing H ~ Delta_Gamma(X)/2 . n with the geometry
    (metric, normal) frozen at the current configuration. This is the
    operator inverted by GMRES inside the implicit solve; only its action
    is needed.
    """
    g = surface.geometry()
    dX = np.asarray(dX, float).reshape(surface.grid.nlat, surface.grid.nphi, 3)
    w = np.einsum("ijk,ijk->ij", dX, g.normal)
    dH = 0.5 * surface.laplace_beltrami(w)
    scalar = -kappa * surface.laplace_beltrami(dH)
    return scalar[..., None] * g.normal


def linearized_bending_factors(surface: SpectralSurface, kappa: float = 1.0
                               ) -> tuple[np.ndarray, np.ndarray]:
    """The rank-N factorization ``L = Nout core Nin`` of the linearized
    bending operator: ``core`` is the dense (N, N) scalar map
    ``(-kappa/2) Delta_Gamma^2`` and the (N, 3) ``normal`` array defines
    both projections. Shared by the dense matrix below and the
    factorized implicit assembly in the stepper, so the two stay the
    same operator by construction.
    """
    g = surface.geometry()
    n = surface.grid.n_points
    lb = surface.laplace_beltrami_matrix()
    return (-0.5 * kappa) * (lb @ lb), g.normal.reshape(n, 3)


def implicit_operator_matrix(surface: SpectralSurface,
                             self_matrix: np.ndarray, kappa: float,
                             dt: float
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense ``I - dt S L`` of the locally-implicit step, plus factors.

    ``L`` factors as ``Nout core Nin`` (project on the normal, apply
    ``(-kappa/2) LB^2``, scatter along the normal), so ``S L`` is the
    rank-N product ``(S Nout) core Nin`` — assembled with one (3N, N)
    contraction and an outer scatter instead of a dense (3N, 3N) x
    (3N, 3N) GEMM; the full ``L`` matrix is never formed
    (:func:`linearized_bending_matrix` builds the dense reference from
    the same factors). Returns ``(A, core, normal)`` so the caller can
    form the right-hand side ``L X`` from the same frozen factors.
    """
    core, nrm = linearized_bending_factors(surface, kappa)
    n = surface.grid.n_points
    S_nout = np.einsum("rmj,mj->rm",
                       self_matrix.reshape(3 * n, n, 3), nrm)
    P = S_nout @ core                                 # (3N, N)
    A = (-dt) * (P[:, :, None] * nrm[None, :, :]).reshape(3 * n, 3 * n)
    A[np.diag_indices_from(A)] += 1.0
    return A, core, nrm


def linearized_bending_matrix(surface: SpectralSurface,
                              kappa: float = 1.0) -> np.ndarray:
    """Dense (3N, 3N) matrix of :func:`linearized_bending_apply`.

    At frozen geometry the linearization is the composition
    ``(. n) -> (-kappa/2) Delta_Gamma^2 -> (. n)`` of dense operators, so
    the implicit system ``I - dt S L`` of the locally-implicit step is an
    assemblable, factorizable matrix (see
    :meth:`repro.core.stepper.TimeStepper`).
    """
    core, normal = linearized_bending_factors(surface, kappa)
    n = normal.shape[0]
    # Sandwich between the normal projections: rows/cols interleave the
    # three components in grid-field ravel order.
    L = np.empty((3 * n, 3 * n))
    for k in range(3):
        row = normal[:, k, None] * core                    # (N, N)
        for j in range(3):
            L[k::3, j::3] = row * normal[None, :, j]
    return L

"""Scaling model and harness tests."""
import numpy as np
import pytest

from repro.scaling import (
    KNL,
    SKX,
    CalibratedCosts,
    ComponentModel,
    strong_scaling_table,
    weak_scaling_table,
)
from repro.scaling.harness import format_table, measure_imbalance_curve
from repro.scaling.perfmodel import Workload


@pytest.fixture(scope="module")
def costs():
    # fixed costs so tests don't re-measure the host
    return CalibratedCosts()


class TestMachineModels:
    def test_nodes(self):
        assert SKX.nodes(384) == 8
        assert KNL.nodes(136) == 2

    def test_knl_slower_per_node(self):
        assert KNL.node_speed < SKX.node_speed


class TestComponentModel:
    def test_all_components_positive(self, costs):
        m = ComponentModel(costs, SKX)
        t = m.predict(Workload(n_rbc=4096, n_patches=8192), cores=384)
        assert set(t) == {"COL", "BIE-solve", "BIE-FMM", "Other-FMM", "Other"}
        assert all(v > 0 for v in t.values())

    def test_strong_scaling_monotone_total(self, costs):
        m = ComponentModel(costs, SKX)
        w = Workload(n_rbc=40960, n_patches=40960)
        times = [sum(m.predict(w, c).values()) for c in (384, 1536, 6144)]
        assert times[0] > times[1] > times[2]

    def test_efficiency_below_one_at_scale(self, costs):
        m = ComponentModel(costs, SKX)
        w = Workload(n_rbc=40960, n_patches=40960)
        t1 = sum(m.predict(w, 384).values())
        t2 = sum(m.predict(w, 12288).values())
        eff = t1 * 384 / (t2 * 12288)
        assert 0.2 < eff < 0.95

    def test_imbalance_callable_used(self, costs):
        flat = ComponentModel(costs, SKX, imbalance=1.0)
        lumpy = ComponentModel(costs, SKX, imbalance=2.0)
        w = Workload(n_rbc=1000, n_patches=1000)
        assert sum(lumpy.predict(w, 384).values()) > \
            sum(flat.predict(w, 384).values())


class TestImbalanceCurve:
    def test_decreasing_with_grain(self):
        imb = measure_imbalance_curve()
        assert imb(16) > imb(1024) >= 1.0


class TestTables:
    def test_strong_table_matches_paper_shape(self, costs):
        rows = strong_scaling_table(costs=costs)
        assert rows[0].efficiency == 1.0
        assert rows[0].total_time == pytest.approx(11257, rel=0.01)
        effs = [r.efficiency for r in rows]
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        # paper: 0.49 at 12288 cores; require same ballpark
        assert 0.35 < rows[-1].efficiency < 0.7
        # COL+BIE scales better than total (paper: 0.66 vs 0.49)
        assert rows[-1].col_bie_efficiency > rows[-1].efficiency

    def test_weak_table_skx(self, costs):
        rows = weak_scaling_table(costs=costs)
        assert rows[1].efficiency == 1.0   # reference at 192 cores
        assert rows[-1].efficiency < 1.0
        assert rows[-1].cores == 12288
        assert rows[-1].n_rbc == 4096 * 256

    def test_weak_table_knl_worse_than_skx(self, costs):
        skx = weak_scaling_table(costs=costs)
        knl = weak_scaling_table(machine=KNL, rbc_per_node=512,
                                 patches_per_node=1024,
                                 node_counts=(2, 8, 32, 128, 512),
                                 volume_fractions=(0.17, 0.19, 0.20, 0.23, 0.26),
                                 collision_fractions=(0.10, 0.15, 0.13, 0.17, 0.15),
                                 ref_index=0, costs=costs)
        assert knl[-1].efficiency < skx[-1].efficiency

    def test_breakdown_dominated_by_fmm(self, costs):
        # Paper: "the vast majority of compute time is spent in FMM".
        rows = strong_scaling_table(costs=costs)
        bd = rows[0].breakdown
        fmm = bd["BIE-FMM"] + bd["Other-FMM"]
        assert fmm > bd["COL"] + bd["BIE-solve"]

    def test_format_table_renders(self, costs):
        rows = strong_scaling_table(costs=costs)
        txt = format_table(rows)
        assert "cores" in txt and "efficiency" in txt
        txt2 = format_table(weak_scaling_table(costs=costs), weak=True)
        assert "vol frac" in txt2

    def test_row_serialization(self, costs):
        rows = strong_scaling_table(costs=costs)
        d = rows[0].as_dict()
        assert d["cores"] == 384 and "breakdown" in d

"""The resilience layer: sentinel, rollback/retry, checkpoint/restart.

The two pinned properties everything else rides on:

- healthy runs with the sentinel on are *bit-identical* to runs with the
  layer disabled, and
- a checkpoint saved mid-run resumes *bit-identically* to the
  uninterrupted trajectory.
"""
import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.faultinject import (InjectedFault,
                                        force_unresolved_contact,
                                        inject_nan, raise_in_task)
from repro.config import NumericsOptions, ReproConfig, ResilienceOptions
from repro.core import Simulation
from repro.linalg.dense import (LUFactorization, StackedLUFactorization)
from repro.physics.terms import Bending, Tension
from repro.resilience import (CHECKPOINT_VERSION, HealthSentinel,
                              StepRejectedError, WarnOnceRegistry,
                              capture_state, load_checkpoint,
                              reset_warnings, restore_state,
                              save_checkpoint, warn_once)
from repro.surfaces.shapes import biconcave_rbc, sphere


def _scene(ncell=2, order=6, dt=0.05, resilience=None, **cfg_kw):
    cfg = ReproConfig(dt=dt, forces=[Bending(0.01), Tension()],
                      with_collisions=False,
                      resilience=resilience or ResilienceOptions(),
                      **cfg_kw)
    cells = [biconcave_rbc(order=order).translated([0.0, 0.0, 2.5 * i])
             for i in range(ncell)]
    return Simulation(cells, config=cfg)


def _state(sim):
    return ([c.X.copy() for c in sim.cells],
            [s.copy() for s in sim.stepper.sigmas])


def _states_equal(a, b):
    return all(np.array_equal(x, y) for x, y in zip(a[0], b[0])) and \
        all(np.array_equal(x, y) for x, y in zip(a[1], b[1]))


class TestWarnOnce:
    def test_fires_once_per_key(self):
        reset_warnings()
        try:
            assert warn_once("test-key-a", "message a")
            assert not warn_once("test-key-a", "message a again")
            assert warn_once("test-key-b", "message b")
        finally:
            reset_warnings()


class TestWarnOnceRegistry:
    def test_registries_do_not_suppress_each_other(self):
        a, b = WarnOnceRegistry(), WarnOnceRegistry()
        assert a.warn_once("k", "m")
        assert b.warn_once("k", "m")        # same key, other run: fires
        assert not a.warn_once("k", "m")
        assert a.run_id != b.run_id         # keys carry run identity

    def test_reset_is_scoped(self):
        a, b = WarnOnceRegistry(), WarnOnceRegistry()
        a.warn_once("k", "m")
        b.warn_once("k", "m")
        a.reset()
        assert a.warn_once("k", "m")        # a forgot
        assert not b.warn_once("k", "m")    # b did not

    def test_module_shim_reset_leaves_simulations_alone(self):
        sim = _scene(ncell=1)
        assert sim.stepper.warnings.warn_once("k", "m")
        reset_warnings()                    # the deprecated global shim
        assert not sim.stepper.warnings.warn_once("k", "m")

    def test_degradation_warning_fires_once_per_simulation(self, caplog):
        """Regression: pre-PR the first simulation to degrade its
        backend silenced that warning for every other simulation in the
        process (one process-global warn_once registry)."""
        import logging
        with caplog.at_level(logging.WARNING,
                             logger="repro.resilience.health"):
            for _ in range(2):
                sim = _scene(ncell=2, backend="treecode")
                with inject_nan(sim.backend, "cell_cell"):
                    rep = sim.step()
                assert rep.backend_degraded_to == "direct"
        degraded = [r for r in caplog.records
                    if "degrading to" in r.getMessage()]
        assert len(degraded) == 2

    def test_sentinel_uses_simulation_scoped_registry(self):
        sim = _scene(ncell=1)
        sentinel = HealthSentinel(sim.config.resilience,
                                  warnings=sim.stepper.warnings)
        assert sentinel.warnings is sim.stepper.warnings


class TestSentinelBitIdentity:
    def test_healthy_run_identical_with_sentinel_on_and_off(self):
        on = _scene()
        off = _scene(resilience=ResilienceOptions(enabled=False))
        for _ in range(3):
            on.step()
            off.step()
        assert _states_equal(_state(on), _state(off))
        assert on.t == off.t
        # the on-run carried a healthy verdict on every report
        assert all(r.health is not None and r.health.healthy
                   for r in on.history)
        assert all(r.health is None for r in off.history)


class TestSnapshotRollback:
    def test_restore_then_restep_is_bit_identical(self):
        sim = _scene()
        sim.step()
        snap = capture_state(sim.stepper, sim.t)
        before = _state(sim)
        sim.stepper.step(sim.t, sim.config.dt)
        stepped = _state(sim)
        assert not _states_equal(before, stepped)
        restore_state(sim.stepper, snap)
        assert _states_equal(_state(sim), before)
        # re-running the identical step after rollback reproduces it
        sim.stepper.step(sim.t, sim.config.dt)
        assert _states_equal(_state(sim), stepped)

    def test_snapshot_survives_multiple_restores(self):
        sim = _scene(ncell=1)
        snap = capture_state(sim.stepper, sim.t)
        before = _state(sim)
        for _ in range(2):
            sim.stepper.step(sim.t, sim.config.dt)
            restore_state(sim.stepper, snap)
            assert _states_equal(_state(sim), before)


class TestHealthSentinel:
    def test_nonfinite_positions_fail(self):
        sim = _scene(ncell=1)
        snap = capture_state(sim.stepper, sim.t)
        rep = sim.stepper.step(sim.t, sim.config.dt)
        sentinel = HealthSentinel(sim.config.resilience)
        assert sentinel.evaluate(sim.stepper, rep, snap).healthy
        X = sim.cells[0].X.copy()
        X.reshape(-1)[0] = np.nan
        sim.cells[0].set_positions(X)
        health = sentinel.evaluate(sim.stepper, rep, snap)
        assert not health
        assert health.nonfinite_cells == [0]

    def test_area_drift_bound(self):
        sim = _scene(ncell=1)
        snap = capture_state(sim.stepper, sim.t)
        rep = sim.stepper.step(sim.t, sim.config.dt)
        strict = HealthSentinel(dataclasses.replace(
            sim.config.resilience, max_area_drift=1e-30,
            max_volume_drift=1e-30))
        health = strict.evaluate(sim.stepper, rep, snap)
        assert not health.healthy
        assert any("drift" in f for f in health.failures)

    def test_nonconverged_implicit_rejects(self):
        sim = _scene(ncell=1)
        snap = capture_state(sim.stepper, sim.t)
        rep = sim.stepper.step(sim.t, sim.config.dt)
        rep = dataclasses.replace(rep, implicit_converged=[False])
        sentinel = HealthSentinel(sim.config.resilience)
        assert not sentinel.evaluate(sim.stepper, rep, snap)
        lax = HealthSentinel(dataclasses.replace(
            sim.config.resilience, reject_nonconverged_implicit=False))
        assert lax.evaluate(sim.stepper, rep, snap).healthy


class TestRetryAndRejection:
    def test_task_crash_triggers_rollback_and_retry(self):
        sim = _scene(ncell=1)
        with raise_in_task(sim.executor) as counter:
            rep = sim.step()
        assert counter.fired == 1
        assert rep.retries == 1
        # the retried sub-steps land back on the nominal grid
        assert rep.dt == sim.config.dt
        assert sum(s.dt for s in rep.substeps) == pytest.approx(rep.dt)
        assert sim.t == pytest.approx(sim.config.dt)

    def test_dt_backoff_converges_back_to_nominal_grid(self):
        sim = _scene(ncell=1)
        # fail the first two attempts -> dt/4 sub-steps, 4 of them
        with raise_in_task(sim.executor, start=0, count=2):
            rep = sim.step()
        assert rep.retries == 2
        assert len(rep.substeps) == 4
        assert all(s.dt == pytest.approx(sim.config.dt / 4)
                   for s in rep.substeps)
        assert sim.t == pytest.approx(sim.config.dt)
        # sub-step start times tile the nominal interval exactly
        assert [s.t for s in rep.substeps] == pytest.approx(
            [k * sim.config.dt / 4 for k in range(4)])

    def test_exhausted_retry_budget_raises_and_rolls_back(self):
        sim = _scene(ncell=1, resilience=ResilienceOptions(max_retries=1))
        before = _state(sim)
        with raise_in_task(sim.executor, count=99):
            with pytest.raises(StepRejectedError):
                sim.step()
        assert _states_equal(_state(sim), before)
        assert sim.t == 0.0
        assert sim.history == []

    def test_dt_floor_stops_halving(self):
        sim = _scene(ncell=1, resilience=ResilienceOptions(
            max_retries=50, dt_floor_factor=0.3))
        with raise_in_task(sim.executor, count=99):
            with pytest.raises(StepRejectedError, match="floor"):
                sim.step()

    def test_disabled_layer_propagates_the_crash(self):
        sim = _scene(ncell=1,
                     resilience=ResilienceOptions(enabled=False))
        with raise_in_task(sim.executor, count=99):
            with pytest.raises(InjectedFault):
                sim.step()

    def test_unresolved_contact_rejects_under_policy(self):
        sim = _scene(ncell=1)  # no collisions: fabricate the NCP flags
        snap = capture_state(sim.stepper, sim.t)
        rep = sim.stepper.step(sim.t, sim.config.dt)
        from repro.collision.ncp import NCPReport
        bad = NCPReport(n_candidates=1, n_components=1, lcp_solves=7,
                        max_penetration_before=1.0,
                        max_penetration_after=0.5, contact_active=True,
                        lambdas=np.zeros(0), resolved=False)
        rep = dataclasses.replace(rep, ncp=bad)
        sentinel = HealthSentinel(sim.config.resilience)
        assert not sentinel.evaluate(sim.stepper, rep, snap)
        lax = HealthSentinel(dataclasses.replace(
            sim.config.resilience, reject_unresolved_contact=False))
        assert lax.evaluate(sim.stepper, rep, snap).healthy


class TestBackendDegradation:
    def test_nan_farfield_degrades_to_next_backend(self):
        sim = _scene(ncell=2, backend="treecode",
                     resilience=ResilienceOptions(
                         degradation_order=("treecode", "direct")))
        ref = _scene(ncell=2, backend="direct")
        with inject_nan(sim.backend, "cell_cell") as counter:
            rep = sim.step()
        ref.step()
        assert counter.fired == 1
        assert rep.backend_degraded_to == "direct"
        assert sim.backend.name == "direct"
        assert rep.health.healthy
        # the degraded step ran on the exact backend: bit-identical to
        # a direct-backend run of the same scene
        assert _states_equal(_state(sim), _state(ref))
        # sticky: the next step stays on the fallback
        rep2 = sim.step()
        assert rep2.backend_degraded_to == "direct"

    def test_exhausted_chain_falls_through_to_dt_retry(self):
        sim = _scene(ncell=2, resilience=ResilienceOptions(
            max_retries=1, degradation_order=("treecode", "direct")))
        # active backend is "direct": no fallback exists, so a persistent
        # NaN goes down the dt-retry path and exhausts the budget
        with inject_nan(sim.backend, "cell_cell", count=99):
            with pytest.raises(StepRejectedError):
                sim.step()
        assert sim.backend.name == "direct"


class TestCheckpoint:
    def test_mid_run_resume_is_bit_identical(self, tmp_path):
        full = _scene()
        for _ in range(2):
            full.step()
        path = save_checkpoint(full, str(tmp_path / "ckpt"))
        for _ in range(2):
            full.step()
        resumed = load_checkpoint(path)
        assert resumed.t == pytest.approx(2 * full.config.dt)
        for _ in range(2):
            resumed.step()
        assert _states_equal(_state(full), _state(resumed))
        assert full.t == resumed.t

    def test_resume_mid_refresh_cycle_is_bit_identical(self, tmp_path):
        full = _scene(
            numerics=NumericsOptions(selfop_refresh_interval=3))
        for _ in range(2):   # checkpoint lands mid-cycle (since_full=2)
            full.step()
        ops = full.stepper._self_ops
        assert any(op._since_full > 1 for op in ops)
        path = save_checkpoint(full, str(tmp_path / "ckpt"))
        for _ in range(3):
            full.step()
        resumed = load_checkpoint(path)
        for _ in range(3):
            resumed.step()
        assert _states_equal(_state(full), _state(resumed))

    def test_rng_round_trip(self, tmp_path):
        sim = _scene(ncell=1)
        rng = np.random.default_rng(1234)
        rng.normal(size=7)  # advance past the seed state
        path = save_checkpoint(sim, str(tmp_path / "c"), rng=rng)
        expect = rng.normal(size=5)
        rng2 = np.random.default_rng(0)
        load_checkpoint(path, rng=rng2)
        assert np.array_equal(rng2.normal(size=5), expect)

    def test_config_round_trips_through_manifest(self, tmp_path):
        sim = _scene(resilience=ResilienceOptions(
            max_retries=7, degradation_order=("direct",)))
        path = save_checkpoint(sim, str(tmp_path / "c"))
        resumed = load_checkpoint(path)
        assert resumed.config.to_dict() == sim.config.to_dict()
        assert resumed.config.resilience.max_retries == 7
        assert resumed.config.resilience.degradation_order == ("direct",)

    def test_vessel_and_recycler_refuse(self):
        sim = _scene(ncell=1)
        sim.recycler = object()
        with pytest.raises(NotImplementedError):
            save_checkpoint(sim, "nope")

    def test_newer_version_refuses_to_load(self, tmp_path):
        sim = _scene(ncell=1)
        path = save_checkpoint(sim, str(tmp_path / "c"))
        with np.load(path, allow_pickle=False) as data:
            payload = {k: data[k] for k in data.files}
        manifest = json.loads(str(payload["manifest"]))
        manifest["version"] = CHECKPOINT_VERSION + 1
        payload["manifest"] = np.array(json.dumps(manifest))
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)


class TestSingularLUFallback:
    def test_singular_matrix_solves_finite_via_gmres(self):
        A = np.eye(4)
        A[2, 2] = 0.0
        with pytest.warns(Warning, match="singular"):
            lu = LUFactorization(A)
        assert lu.singular
        rhs = np.array([1.0, 2.0, 0.0, 3.0])
        x = lu.solve(rhs)
        assert np.isfinite(x).all()
        assert np.allclose(A @ x, rhs)

    def test_stacked_singular_slice_isolated(self):
        good = np.diag([1.0, 2.0, 3.0])
        bad = np.diag([1.0, 0.0, 3.0])
        with pytest.warns(Warning, match="singular"):
            st = StackedLUFactorization(np.stack([good, bad]))
        assert st.singular == (1,)
        assert not st.handle(0).singular
        assert st.handle(1).singular
        x0 = st.solve_one(0, np.ones(3))
        assert np.allclose(good @ x0, np.ones(3))
        assert np.isfinite(st.solve_one(1, np.array([1.0, 0.0, 2.0]))).all()

    def test_factor_round_trip_is_bit_identical(self, rng):
        A = rng.normal(size=(12, 12)) + 12.0 * np.eye(12)
        lu = LUFactorization(A)
        clone = LUFactorization.from_factors(*lu.factors)
        rhs = rng.normal(size=12)
        assert np.array_equal(lu.solve(rhs), clone.solve(rhs))

    def test_stacked_handle_factors_match_per_cell(self, rng):
        A = rng.normal(size=(3, 8, 8)) + 8.0 * np.eye(8)
        st = StackedLUFactorization(A)
        rhs = rng.normal(size=8)
        for i in range(3):
            clone = LUFactorization.from_factors(*st.handle(i).factors)
            assert np.array_equal(st.solve_one(i, rhs), clone.solve(rhs))


class TestResilienceOptionsSerialization:
    def test_from_dict_ignores_unknown_keys(self):
        opts = ResilienceOptions.from_dict(
            {"max_retries": 2, "future_knob": "whatever"})
        assert opts.max_retries == 2

    def test_config_json_round_trip(self):
        cfg = ReproConfig(resilience=ResilienceOptions(
            max_retries=9, degradation_order=("treecode", "direct")))
        back = ReproConfig.from_json(cfg.to_json())
        assert back.resilience == cfg.resilience
        assert isinstance(back.resilience.degradation_order, tuple)

"""Integration tests of the simulation platform."""
import numpy as np
import pytest

from repro.config import NumericsOptions
from repro.core import ComponentTimers, Simulation, SimulationConfig
from repro.patches import capsule_tube
from repro.physics import bending_energy
from repro.surfaces import biconcave_rbc, ellipsoid, sphere
from repro.vessel import capsule_inlet_outlet_bc
from repro.vessel.recycling import OutletRecycler, Region


class TestTimers:
    def test_categories_exclusive(self):
        import time
        t = ComponentTimers()
        with t.scope("Other"):
            with t.scope("COL"):
                time.sleep(0.01)
        assert t.seconds["COL"] >= 0.01
        assert t.seconds["Other"] < 0.01
        assert t.total() >= 0.01

    def test_unknown_category(self):
        t = ComponentTimers()
        with pytest.raises(ValueError):
            with t.scope("nope"):
                pass

    def test_breakdown_keys(self):
        t = ComponentTimers()
        bd = t.breakdown()
        assert set(bd) == {"COL", "BIE-solve", "BIE-FMM", "Other-FMM",
                           "Tension", "Implicit", "Other"}


class TestFreeSpaceSimulation:
    def test_relaxation_decreases_bending_energy(self):
        e = ellipsoid(1.0, 1.0, 1.4, order=6)
        cfg = SimulationConfig(dt=0.05, bending_modulus=0.05,
                               with_collisions=False)
        sim = Simulation([e], config=cfg)
        E0 = bending_energy(sim.cells[0], cfg.bending_modulus)
        sim.run(3)
        assert bending_energy(sim.cells[0], cfg.bending_modulus) < E0

    def test_shear_flow_advects_cells(self):
        c = biconcave_rbc(radius=1.0, order=5, center=(0.0, 0.0, 1.0))
        def shear(pts):
            u = np.zeros_like(pts)
            u[:, 0] = pts[:, 2]
            return u
        cfg = SimulationConfig(dt=0.1, background_flow=shear,
                               with_collisions=False)
        sim = Simulation([c], config=cfg)
        x0 = sim.centroids()[0, 0]
        sim.run(2)
        x1 = sim.centroids()[0, 0]
        # centroid at z=1 moves in +x with speed ~1
        assert 0.1 < (x1 - x0) < 0.3

    def test_area_approximately_conserved(self):
        c = sphere(1.0, order=6)
        def shear(pts):
            u = np.zeros_like(pts)
            u[:, 0] = 0.2 * pts[:, 2]
            return u
        cfg = SimulationConfig(dt=0.05, background_flow=shear,
                               with_collisions=False, bending_modulus=0.02)
        sim = Simulation([c], config=cfg)
        A0 = sim.total_cell_area()
        sim.run(3)
        assert abs(sim.total_cell_area() - A0) / A0 < 0.05

    def test_collision_keeps_cells_apart(self):
        # Two spheres driven together by opposing flows.
        s1 = sphere(0.8, center=(-1.0, 0, 0), order=5)
        s2 = sphere(0.8, center=(1.0, 0, 0), order=5)
        def squeeze(pts):
            u = np.zeros_like(pts)
            u[:, 0] = -1.5 * np.sign(pts[:, 0])
            return u
        cfg = SimulationConfig(dt=0.1, background_flow=squeeze,
                               with_collisions=True)
        sim = Simulation([s1, s2], config=cfg)
        reports = sim.run(3)
        assert any(r.ncp is not None and r.ncp.contact_active
                   for r in reports)
        c = sim.centroids()
        # cells must not have passed through each other
        assert c[0, 0] < c[1, 0]

    def test_sedimentation_moves_down(self):
        s = sphere(1.0, center=(0, 0, 0), order=6)
        cfg = SimulationConfig(dt=0.1, gravity=(1.0, (0, 0, -1.0)),
                               with_collisions=False)
        sim = Simulation([s], config=cfg)
        z0 = sim.centroids()[0, 2]
        sim.run(3)
        assert sim.centroids()[0, 2] < z0

    def test_history_and_reports(self):
        s = sphere(1.0, order=5)
        sim = Simulation([s], config=SimulationConfig(
            dt=0.05, with_collisions=False))
        rep = sim.step()
        assert rep.t == 0.0 and sim.t == 0.05
        assert len(sim.history) == 1
        assert rep.implicit_iterations[0] >= 0


class TestVesselSimulation:
    @pytest.fixture(scope="class")
    def vessel_sim(self):
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1,
                               check_r_factor=0.25, gmres_max_iter=20)
        vessel = capsule_tube(length=8.0, radius=1.6, refine=0, options=opts)
        g = capsule_inlet_outlet_bc(vessel, axis=2, flux=2.0)
        cells = [sphere(0.5, center=(0.0, 0.0, -1.0), order=5),
                 sphere(0.5, center=(0.5, 0.3, 1.2), order=5)]
        cfg = SimulationConfig(dt=0.05, numerics=opts)
        return Simulation(cells, vessel=vessel, boundary_bc=g, config=cfg)

    def test_step_runs_and_reports(self, vessel_sim):
        rep = vessel_sim.step()
        assert rep.bie_iterations > 0
        assert vessel_sim.timers.seconds.get("BIE-solve", 0) > 0

    def test_cells_stay_inside_vessel(self, vessel_sim):
        for cell in vessel_sim.cells:
            r = np.linalg.norm(cell.points[:, :2], axis=1)
            assert r.max() < 1.65

    def test_flow_advects_along_axis(self, vessel_sim):
        z0 = vessel_sim.centroids()[:, 2].copy()
        vessel_sim.step()
        z1 = vessel_sim.centroids()[:, 2]
        assert np.all(z1 > z0 - 1e-3)  # inflow at -z pushes toward +z

    def test_volume_fraction_and_dof(self, vessel_sim):
        vf = vessel_sim.volume_fraction()
        assert 0 < vf < 0.5
        assert vessel_sim.n_dof() > 0

    def test_recycler_integration(self):
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1,
                               check_r_factor=0.25, gmres_max_iter=10)
        cells = [sphere(0.4, center=(0.0, 0.0, 5.0), order=5)]
        rec = OutletRecycler(
            inlets=[Region(center=np.array([0.0, 0, -5.0]), radius=1.0)],
            outlets=[Region(center=np.array([0.0, 0, 5.0]), radius=1.0)])
        sim = Simulation(cells, config=SimulationConfig(
            dt=0.01, with_collisions=False, numerics=opts), recycler=rec)
        rep = sim.step()
        assert rep.recycled == [0]
        assert sim.centroids()[0, 2] < 0

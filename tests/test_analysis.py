"""Runtime counterparts of the static passes: the ``@checked`` array
contracts, the frozen shared-table registry, and the library-hygiene
fixes (real errors instead of asserts)."""
import numpy as np
import pytest

from repro import presets
from repro.analysis import (ContractViolation, checked, checks_enabled,
                            debug_checks, freeze, register_shared,
                            tables_frozen)
from repro.analysis.contracts import parse_spec
from repro.config import NumericsOptions, ReproConfig
from repro.surfaces import biconcave_rbc


class TestSpecParsing:
    def test_shapes_and_dtypes(self):
        shape, dtype = parse_spec("(n, 3) f8")
        assert shape == ("n", 3) and dtype == np.dtype("f8")
        shape, dtype = parse_spec("(3*N,) f8")
        assert shape == ((3, "N"),)
        shape, dtype = parse_spec("(..., nlat, nphi)")
        assert shape[0] is Ellipsis and dtype is None
        shape, dtype = parse_spec("c16")
        assert shape is None and dtype == np.dtype("c16")

    def test_rejects_malformed(self):
        with pytest.raises((TypeError, ValueError, SyntaxError)):
            parse_spec("(n,3")              # unclosed: read as a dtype
        with pytest.raises(TypeError):
            parse_spec("(n, 3) nosuchdtype")
        with pytest.raises(ValueError):
            parse_spec("(n, ..., 3) f8")     # ellipsis must lead

    def test_decoration_validates_parameter_names(self):
        with pytest.raises(TypeError):
            @checked(nosucharg="(n,) f8")
            def f(x):
                return x


class TestCheckedDecorator:
    def test_zero_cost_by_default(self):
        calls = []

        @checked(x="(n, 3) f8", out="(n,) f8")
        def f(x):
            calls.append(1)
            return np.zeros(2)               # wrong n — never checked

        assert not checks_enabled()
        f(np.zeros((5, 3)))                  # silent: checks are off
        assert calls == [1]

    def test_symbol_binding_across_args(self):
        @checked(a="(n, 3) f8", b="(n,) f8", out="(3*n,) f8")
        def f(a, b):
            return np.zeros(3 * a.shape[0])

        with debug_checks():
            f(np.zeros((4, 3)), np.zeros(4))
            with pytest.raises(ContractViolation, match="b has shape"):
                f(np.zeros((4, 3)), np.zeros(5))

    def test_none_arguments_are_skipped(self):
        @checked(a="(n,) f8")
        def f(a=None):
            return 0.0

        with debug_checks():
            f(None)

    def test_scoped_toggle_restores(self):
        assert not checks_enabled()
        with debug_checks():
            assert checks_enabled()
            with debug_checks(False):
                assert not checks_enabled()
            assert checks_enabled()
        assert not checks_enabled()


class TestSeamContracts:
    """Each ``@checked`` seam raises on a violating call when debug
    checks are on (and is silent when they are off)."""

    def test_stokes_slp_apply(self):
        from repro.kernels import stokes_slp_apply
        src = np.zeros((5, 3))
        bad_density = np.zeros((5, 2))
        stokes_slp_apply(src, bad_density[:, [0, 0, 1]], src)  # fine, off
        with debug_checks():
            with pytest.raises(ContractViolation, match="weighted_density"):
                stokes_slp_apply(src, bad_density, src)

    def test_stacked_lu_solve(self):
        from repro.linalg import StackedLUFactorization
        lu = StackedLUFactorization(np.stack([np.eye(3)] * 2))
        with debug_checks():
            assert lu.solve(np.ones((2, 3))).shape == (2, 3)
            with pytest.raises(ContractViolation, match="rhs"):
                lu.solve(np.ones((2, 3, 4)))

    def test_sht_forward(self):
        from repro.sph import get_transform
        T = get_transform(4)
        with debug_checks():
            c = T.forward(np.ones((T.grid.nlat, T.grid.nphi)))
            assert c.dtype == np.dtype("c16")
            with pytest.raises(ContractViolation, match="f"):
                T.forward(np.ones(7))

    def test_surface_operator_matrices(self):
        s = biconcave_rbc(1.0, order=4)
        n = s.n_points
        with debug_checks():
            assert s.surface_gradient_matrix().shape == (3 * n, n)
            assert s.surface_divergence_matrix().shape == (n, 3 * n)
            assert s.laplace_beltrami_matrix().shape == (n, n)
            # Break the cached table: the out contract must catch it.
            s._dense_ops = {"grad": np.zeros((3, 3)),
                            "div": np.zeros((3, 3)),
                            "lb": np.zeros((3, 3))}
            with pytest.raises(ContractViolation, match="return value"):
                s.surface_gradient_matrix()

    def test_config_wires_debug_checks(self):
        from repro.analysis.contracts import set_debug_checks
        from repro.core.simulation import Simulation
        cfg = ReproConfig(forces=[], with_collisions=False,
                          numerics=NumericsOptions(debug_checks=True))
        assert not checks_enabled()
        try:
            Simulation([biconcave_rbc(1.0, order=4)], config=cfg)
            assert checks_enabled()
        finally:
            set_debug_checks(False)


class TestFrozenTables:
    """Every lru_cache'd numpy table is read-only: in-place mutation of a
    shared cache entry must raise instead of corrupting other users."""

    def _entries(self):
        from repro.collision.mesh import (_grid_triangulation,
                                          _patch_triangulation)
        from repro.fmm.treecode import _cube_surface
        from repro.patches.patch import _sub_interp_matrix, cheb_diff_matrix
        from repro.quadrature.clenshaw_curtis import _cc_cached
        from repro.quadrature.gauss_legendre import _gl_cached
        from repro.quadrature.interpolation import _bary_weights_cached
        from repro.sph.grid import get_grid
        from repro.sph.transform import _transform_tables
        from repro.surfaces.spectral_surface import (_grid_operator_matrices,
                                                     bandlimit_projector)
        from repro.vesicle.self_interaction import _rotation_tables
        yield _gl_cached(8)[0]
        yield _cc_cached(7)[1]
        yield _bary_weights_cached(9)
        yield cheb_diff_matrix(7)
        yield _sub_interp_matrix(7, 2)[0]
        yield _cube_surface(4)
        yield _grid_triangulation(5, 10)
        yield _patch_triangulation(6)
        yield get_grid(6).weights
        yield get_grid(6).cos_theta
        yield _transform_tables(4).P
        yield _grid_operator_matrices(4, 6)["up_theta"]
        yield bandlimit_projector(4)
        yield _rotation_tables(4, 6).B_val
        yield _rotation_tables(4, 6).weights

    def test_all_cached_tables_are_read_only(self):
        count = 0
        for arr in self._entries():
            assert isinstance(arr, np.ndarray)
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[(0,) * arr.ndim] = 0
            count += 1
        assert count == 15

    def test_lazy_selfop_tables_are_read_only(self):
        from repro.vesicle.self_interaction import _rotation_tables
        tb = _rotation_tables(4, 6)
        ct = tb.circulant_tables()
        for key in ("Ec_even", "Ec_odd", "Ci", "Einv_cos"):
            assert not ct[key].flags.writeable
        assert all(not s.flags.writeable for s in ct["syn"])
        fused = tb.fused_table()
        if fused is not None:
            assert not fused.flags.writeable

    def test_public_quadrature_still_returns_writable_copies(self):
        from repro.quadrature import clenshaw_curtis, gauss_legendre
        x, w = gauss_legendre(8)
        x[0] = -2.0                          # callers own their copies
        x2, _ = gauss_legendre(8)
        assert x2[0] != -2.0
        xc, wc = clenshaw_curtis(7)
        wc *= 2.0

    def test_tables_frozen_context(self):
        arr = register_shared(np.zeros(4))
        assert arr.flags.writeable
        with tables_frozen():
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 1.0
        assert arr.flags.writeable           # restored on exit

    def test_freeze_passthrough(self):
        a, b = freeze(np.zeros(2), np.ones(2))
        assert not a.flags.writeable and not b.flags.writeable
        assert freeze("not-an-array") == "not-an-array"


class TestLibraryErrors:
    def test_ensure_roundtrip_passes_for_all_presets(self):
        for name, factory in presets.ALL.items():
            cfg = factory()
            assert presets.ensure_roundtrip(cfg) == cfg

    def test_ensure_roundtrip_reports_failing_field(self, monkeypatch):
        import dataclasses
        cfg = presets.relaxation()

        class BrokenConfig:
            @staticmethod
            def from_json(_):
                return dataclasses.replace(cfg, dt=cfg.dt + 1.0)

        monkeypatch.setattr(presets, "ReproConfig", BrokenConfig)
        with pytest.raises(ValueError, match=r"dt: 0\.05"):
            presets.ensure_roundtrip(cfg)

    def test_closest_point_empty_candidates_raises(self):
        from repro.patches import cube_sphere, surface_closest_point
        s = cube_sphere(refine=0)
        with pytest.raises(RuntimeError, match="candidate"):
            surface_closest_point(s, np.zeros(3), candidates=[])

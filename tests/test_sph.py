"""Spherical-harmonic transform tests (exactness against scipy)."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.special import sph_harm_y

from repro.sph import SHTransform, get_transform, isht, sht
from repro.sph.alp import (
    normalized_alp,
    normalized_alp_theta_derivative,
    normalized_alp_theta_derivative2,
)
from repro.sph.grid import SphGrid, get_grid
from repro.sph.rotation import rotated_sphere_points, rotation_matrix_to_pole


def random_real_coeffs(p, seed=0):
    rng = np.random.default_rng(seed)
    c = np.zeros((p + 1, 2 * p + 1), dtype=complex)
    for l in range(p + 1):
        c[l, p] = rng.normal()
        for m in range(1, l + 1):
            c[l, p + m] = rng.normal() + 1j * rng.normal()
            c[l, p - m] = (-1) ** m * np.conj(c[l, p + m])
    return c


class TestGrid:
    def test_shape_and_weights(self):
        g = SphGrid(8)
        assert g.nlat == 9 and g.nphi == 18
        assert np.isclose(g.weights.sum(), 4 * np.pi)

    def test_quadrature_exact_for_harmonics(self):
        g = SphGrid(6)
        T, P = g.mesh()
        # int Y_2^0 over sphere = 0; int |Y_2^1|^2 = 1
        Y = sph_harm_y(2, 1, T, P)
        assert np.isclose(g.integrate(np.abs(Y) ** 2), 1.0)
        assert np.isclose(g.integrate(sph_harm_y(2, 0, T, P).real), 0.0,
                          atol=1e-14)

    def test_points_on_unit_sphere(self):
        g = SphGrid(5)
        pts = g.points_unit_sphere()
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_flatten_unflatten(self, rng):
        g = get_grid(4)
        f = rng.normal(size=(g.nlat, g.nphi, 3))
        assert np.array_equal(g.unflatten(g.flatten(f)), f)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            SphGrid(0)


class TestALP:
    def test_against_scipy(self):
        x = np.array([-0.7, 0.0, 0.31, 0.9])
        P = normalized_alp(5, x)
        theta = np.arccos(x)
        for l in range(6):
            for m in range(l + 1):
                ref = sph_harm_y(l, m, theta, np.zeros_like(theta)).real
                assert np.allclose(P[l, m], ref, atol=1e-12), (l, m)

    def test_theta_derivative_fd(self):
        x = np.array([0.3])
        theta = float(np.arccos(x)[0])
        _, dP = normalized_alp_theta_derivative(6, x)
        h = 1e-6
        Pp = normalized_alp(6, np.array([np.cos(theta + h)]))
        Pm = normalized_alp(6, np.array([np.cos(theta - h)]))
        fd = (Pp - Pm) / (2 * h)
        assert np.allclose(dP, fd, atol=1e-6)

    def test_second_derivative_fd(self):
        x = np.array([0.12])
        theta = float(np.arccos(x)[0])
        _, _, d2P = normalized_alp_theta_derivative2(5, x)
        h = 1e-4
        P0 = normalized_alp(5, np.array([np.cos(theta)]))
        Pp = normalized_alp(5, np.array([np.cos(theta + h)]))
        Pm = normalized_alp(5, np.array([np.cos(theta - h)]))
        fd = (Pp - 2 * P0 + Pm) / h ** 2
        assert np.allclose(d2P, fd, atol=1e-5)

    def test_pole_rejected_for_derivatives(self):
        with pytest.raises(ValueError):
            normalized_alp_theta_derivative(3, np.array([1.0]))


class TestTransform:
    @pytest.mark.parametrize("p", [4, 8, 12])
    def test_roundtrip(self, p):
        c = random_real_coeffs(p)
        T = SHTransform(p)
        assert np.abs(T.forward(T.inverse(c)) - c).max() < 1e-12

    def test_single_harmonic_isolated(self):
        p = 7
        T = SHTransform(p)
        TH, PH = T.grid.mesh()
        Y = sph_harm_y(3, -2, TH, PH)
        c = T.forward(Y.real) + 1j * T.forward(Y.imag)
        expect = np.zeros_like(c)
        expect[3, p - 2] = 1.0
        assert np.abs(c - expect).max() < 1e-12

    def test_evaluate_matches_grid(self):
        p = 6
        T = SHTransform(p)
        c = random_real_coeffs(p, seed=3)
        f = T.inverse(c)
        TH, PH = T.grid.mesh()
        vals = T.evaluate(c, TH.ravel(), PH.ravel())
        assert np.allclose(vals, f.ravel(), atol=1e-11)

    @pytest.mark.parametrize("which", ["theta", "phi", "theta2", "thetaphi", "phi2"])
    def test_derivative_grid_fd(self, which):
        p = 6
        T = SHTransform(p)
        c = random_real_coeffs(p, seed=5)
        TH, PH = T.grid.mesh()
        d = T.derivative_grid(c, which).ravel()
        h = 1e-5
        def ev(th, ph):
            return T.evaluate(c, th, ph)
        th, ph = TH.ravel(), PH.ravel()
        if which == "theta":
            fd = (ev(th + h, ph) - ev(th - h, ph)) / (2 * h)
        elif which == "phi":
            fd = (ev(th, ph + h) - ev(th, ph - h)) / (2 * h)
        elif which == "theta2":
            fd = (ev(th + h, ph) - 2 * ev(th, ph) + ev(th - h, ph)) / h ** 2
        elif which == "phi2":
            fd = (ev(th, ph + h) - 2 * ev(th, ph) + ev(th, ph - h)) / h ** 2
        else:
            fd = (ev(th + h, ph + h) - ev(th + h, ph - h)
                  - ev(th - h, ph + h) + ev(th - h, ph - h)) / (4 * h * h)
        assert np.abs(d - fd).max() < 2e-4

    def test_upsample_preserves_coeffs(self):
        p = 5
        c = random_real_coeffs(p, seed=7)
        T = SHTransform(p)
        f16 = T.resample(c, 11)
        c16 = SHTransform(11).forward(f16)
        assert np.abs(c16[:p + 1, 11 - p:11 + p + 1] - c).max() < 1e-12

    def test_one_shot_helpers(self):
        p = 4
        c = random_real_coeffs(p, seed=9)
        f = isht(c)
        assert np.abs(sht(f) - c).max() < 1e-12

    @given(st.integers(min_value=2, max_value=9))
    @settings(max_examples=10, deadline=None)
    def test_property_roundtrip_any_order(self, p):
        c = random_real_coeffs(p, seed=p)
        T = SHTransform(p)
        assert np.abs(T.forward(T.inverse(c)) - c).max() < 1e-11

    def test_get_transform_cached_identity_and_roundtrip(self):
        T = get_transform(7)
        assert T is get_transform(7)
        assert T.grid is get_transform(7).grid
        c = random_real_coeffs(7, seed=13)
        assert np.abs(T.forward(T.inverse(c)) - c).max() < 1e-12

    def test_batched_transforms_match_per_field(self, rng):
        p = 6
        T = get_transform(p)
        f = rng.normal(size=(3, p + 1, 2 * p + 2))
        cb = T.forward(f)
        for k in range(3):
            assert np.abs(cb[k] - T.forward(f[k])).max() < 1e-14
        gb = T.derivative_grid(cb, "theta")
        rb = T.resample(cb, p + 3)
        for k in range(3):
            assert np.abs(gb[k] - T.derivative_grid(cb[k], "theta")).max() < 1e-14
            assert np.abs(rb[k] - T.resample(cb[k], p + 3)).max() < 1e-14

    def test_dense_matrices_match_transforms(self, rng):
        p = 5
        T = get_transform(p)
        f = rng.normal(size=(p + 1, 2 * p + 2))
        A = T.analysis_matrix()
        assert np.abs((A @ f.ravel()).reshape(p + 1, 2 * p + 1)
                      - T.forward(f)).max() < 1e-13
        c = random_real_coeffs(p, seed=4)
        S = T.synthesis_matrix()
        assert np.abs((S @ c.ravel()).real.reshape(p + 1, 2 * p + 2)
                      - T.inverse(c)).max() < 1e-13


class TestRotation:
    def test_matrix_maps_pole(self):
        R = rotation_matrix_to_pole(0.7, 1.3)
        pole = R @ np.array([0.0, 0.0, 1.0])
        expect = np.array([np.sin(0.7) * np.cos(1.3),
                           np.sin(0.7) * np.sin(1.3), np.cos(0.7)])
        assert np.allclose(pole, expect)

    def test_matrix_orthogonal(self):
        R = rotation_matrix_to_pole(2.1, 4.0)
        assert np.allclose(R @ R.T, np.eye(3), atol=1e-13)

    def test_rotated_points_distance_preserved(self):
        # Points at colatitude psi from the rotated pole must be at
        # angular distance psi from the pole direction.
        theta0, phi0 = 1.1, 0.4
        psi = np.array([0.3, 0.9, 2.0])
        alpha = np.array([0.0, 2.0, 5.0])
        th, ph = rotated_sphere_points(theta0, phi0, psi, alpha)
        pole = np.array([np.sin(theta0) * np.cos(phi0),
                         np.sin(theta0) * np.sin(phi0), np.cos(theta0)])
        pts = np.column_stack([np.sin(th) * np.cos(ph),
                               np.sin(th) * np.sin(ph), np.cos(th)])
        ang = np.arccos(np.clip(pts @ pole, -1, 1))
        assert np.allclose(ang, psi, atol=1e-12)

"""Polynomial patch, patch surface, closest point and forest tests."""
import numpy as np
import pytest

from repro.config import NumericsOptions
from repro.patches import (
    ChebPatch,
    PatchSurface,
    QuadForest,
    capsule_tube,
    cheb_diff_matrix,
    closest_point_on_patch,
    cube_sphere,
    deformed_sphere,
    surface_closest_point,
    torus_surface,
)


def _poly_patch(n=8):
    def fn(u, v):
        return np.column_stack([u, v, u ** 2 - 0.5 * v ** 3 + u * v])
    return ChebPatch.from_function(fn, n), fn


class TestChebPatch:
    def test_evaluate_reproduces_polynomial(self):
        patch, fn = _poly_patch()
        uv = np.array([[0.3, -0.7], [0.0, 0.0], [1.0, -1.0]])
        assert np.allclose(patch.evaluate(uv), fn(uv[:, 0], uv[:, 1]),
                           atol=1e-12)

    def test_derivatives_fd(self):
        patch, _ = _poly_patch()
        uv = np.array([[0.2, 0.4]])
        X, Xu, Xv, Xuu, Xuv, Xvv = patch.derivatives(uv, second=True)
        h = 1e-6
        fdu = (patch.evaluate(uv + [h, 0]) - patch.evaluate(uv - [h, 0])) / (2 * h)
        fdv = (patch.evaluate(uv + [0, h]) - patch.evaluate(uv - [0, h])) / (2 * h)
        assert np.allclose(Xu, fdu, atol=1e-6)
        assert np.allclose(Xv, fdv, atol=1e-6)
        # exact second derivative of z = u^2 - 0.5 v^3 + uv
        assert np.isclose(Xuu[0, 2], 2.0, atol=1e-10)
        assert np.isclose(Xvv[0, 2], -3.0 * 0.4, atol=1e-9)
        assert np.isclose(Xuv[0, 2], 1.0, atol=1e-10)

    def test_diff_matrix_exact_on_polynomials(self):
        from repro.quadrature.interpolation import chebyshev_lobatto_nodes
        n = 9
        D = cheb_diff_matrix(n)
        x = chebyshev_lobatto_nodes(n)
        f = x ** 4 - 2 * x
        assert np.allclose(D @ f, 4 * x ** 3 - 2, atol=1e-10)

    def test_quadrature_area_flat(self):
        def fn(u, v):
            return np.column_stack([u, v, np.zeros_like(u)])
        patch = ChebPatch.from_function(fn, 7)
        assert np.isclose(patch.area(), 4.0, rtol=1e-12)
        assert np.isclose(patch.size(), 2.0)

    def test_subdivision_exact(self):
        patch, fn = _poly_patch()
        kids = patch.subdivide(2)
        assert len(kids) == 4
        # child 0 covers [-1,0]x[-1,0]: its center = parent (-0.5, -0.5)
        child_center = kids[0].evaluate(np.array([[0.0, 0.0]]))
        parent_val = patch.evaluate(np.array([[-0.5, -0.5]]))
        assert np.allclose(child_center, parent_val, atol=1e-12)
        assert np.isclose(sum(k.area() for k in kids), patch.area(), rtol=1e-4)

    def test_collision_points_corners(self):
        patch, fn = _poly_patch()
        pts = patch.collision_points(5)
        assert pts.shape == (25, 3)
        assert np.allclose(pts[0], fn(np.array([-1.0]), np.array([-1.0]))[0])

    def test_bounding_box_pad(self):
        patch, _ = _poly_patch()
        lo0, hi0 = patch.bounding_box()
        lo1, hi1 = patch.bounding_box(pad=0.5)
        assert np.allclose(lo1, lo0 - 0.5)
        assert np.allclose(hi1, hi0 + 0.5)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ChebPatch(np.zeros((3, 4, 3)))


class TestSurfaces:
    def test_cube_sphere_metrics(self, small_opts):
        s = cube_sphere(refine=1, options=small_opts)
        assert s.n_patches == 24
        assert np.isclose(s.area(), 4 * np.pi, rtol=1e-6)
        assert np.isclose(s.volume(), 4 * np.pi / 3, rtol=1e-6)

    def test_torus_metrics(self, small_opts):
        R, r = 2.0, 0.5
        t = torus_surface(R=R, r=r, options=small_opts)
        assert np.isclose(t.area(), 4 * np.pi ** 2 * R * r, rtol=1e-5)
        assert np.isclose(t.volume(), 2 * np.pi ** 2 * R * r ** 2, rtol=1e-5)

    def test_normals_outward(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        d = s.coarse()
        rad = d.points / np.linalg.norm(d.points, axis=1, keepdims=True)
        assert np.einsum("nk,nk->n", d.normals, rad).min() > 0.9

    def test_refined_preserves_geometry(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        s4 = s.refined()
        assert s4.n_patches == 4 * s.n_patches
        assert np.isclose(s4.area(), s.area(), rtol=1e-3)

    def test_fine_discretization_consistent(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        assert np.isclose(s.fine().weights.sum(), s.area(), rtol=1e-3)

    def test_flip_orientation(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        assert np.isclose(s.flip_orientation().volume(), -s.volume())

    def test_capsule_volume_reasonable(self, small_opts):
        # pill of length 8, radius 1: V between cylinder(len 6) + sphere
        cap = capsule_tube(length=8, radius=1, refine=0, options=small_opts)
        assert 15.0 < cap.volume() < 30.0

    def test_patch_sizes_positive(self, small_opts):
        s = deformed_sphere(refine=0, stretch=(1, 1, 2), options=small_opts)
        assert np.all(s.patch_sizes() > 0)

    def test_collision_points_owner(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        pts, owner = s.collision_points(m=5)
        assert pts.shape == (6 * 25, 3)
        assert owner.max() == 5


class TestClosestPoint:
    def test_sphere_analytic(self, small_opts):
        s = cube_sphere(refine=1, options=small_opts)
        for x in ([2.0, 0.3, -0.4], [0.2, 0.1, 0.3], [0.0, -1.7, 0.0]):
            x = np.array(x)
            res = surface_closest_point(s, x)
            expect = abs(np.linalg.norm(x) - 1.0)
            assert abs(res.distance - expect) < 1e-4
            assert np.allclose(res.point, x / np.linalg.norm(x), atol=1e-2)

    def test_torus_analytic(self, small_opts):
        R, r = 2.0, 0.5
        t = torus_surface(R=R, r=r, options=small_opts)
        x = np.array([3.5, 0.0, 0.0])
        res = surface_closest_point(t, x)
        assert abs(res.distance - 1.0) < 1e-8

    def test_patch_level_newton(self):
        patch, _ = _poly_patch()
        # target slightly off an interior surface point along its normal,
        # so the closest point is interior and the gradient vanishes there
        base = patch.evaluate(np.array([[0.25, -0.3]]))[0]
        n = patch.normals(np.array([[0.25, -0.3]]))[0]
        x = base + 0.05 * n
        uv, p, d = closest_point_on_patch(patch, x)
        # gradient orthogonality at an interior minimum
        _, Xu, Xv = patch.derivatives(uv[None, :])
        rvec = p - x
        assert d < 0.051
        assert abs(rvec @ Xu[0]) < 1e-4
        assert abs(rvec @ Xv[0]) < 1e-4

    def test_candidate_restriction(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        x = np.array([2.0, 0.0, 0.0])
        full = surface_closest_point(s, x)
        restricted = surface_closest_point(s, x,
                                           candidates=[full.patch_index])
        assert abs(full.distance - restricted.distance) < 1e-12


class TestForest:
    def test_refine_all(self, small_opts):
        F = QuadForest(cube_sphere(refine=0, options=small_opts).patches)
        assert F.n_leaves == 6
        F.refine()
        assert F.n_leaves == 24
        assert set(F.levels()) == {1}

    def test_selective_refine(self, small_opts):
        F = QuadForest(cube_sphere(refine=0, options=small_opts).patches)
        n = F.refine(lambda node: node.tree == 0)
        assert n == 1
        assert F.n_leaves == 9

    def test_refine_coarsen_roundtrip_geometry(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        F = QuadForest(s.patches)
        ref_vals = [p.values.copy() for p in F.patches()]
        F.refine()
        F.coarsen()
        assert F.n_leaves == 6
        for a, b in zip(ref_vals, F.patches()):
            assert np.allclose(a, b.values, atol=1e-10)

    def test_morton_order_stable(self, small_opts):
        F = QuadForest(cube_sphere(refine=0, options=small_opts).patches)
        F.refine()
        keys = [n.morton_key() for n in F.leaves]
        assert keys == sorted(keys)

    def test_partition_balanced_contiguous(self, small_opts):
        F = QuadForest(cube_sphere(refine=0, options=small_opts).patches)
        F.refine()
        parts = F.partition(5)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 24
        assert max(sizes) - min(sizes) <= 1
        flat = [i for p in parts for i in p]
        assert flat == list(range(24))

    def test_total_area_preserved_under_refinement(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        F = QuadForest(s.patches)
        F.refine()
        area = sum(p.area() for p in F.patches())
        assert np.isclose(area, s.area(), rtol=1e-3)

"""Singular self-interaction and near-singular cell evaluation tests."""
import numpy as np
import pytest

from repro.kernels import stokes_slp_apply
from repro.sph import SHTransform
from repro.surfaces import ellipsoid, sphere
from repro.vesicle import CellNearEvaluator, SingularSelfInteraction


class TestSingularSelfInteraction:
    def test_constant_density_sphere_identity(self):
        a, mu = 1.3, 2.0
        s = sphere(a, order=8)
        op = SingularSelfInteraction(s, viscosity=mu)
        c = np.array([0.3, -0.2, 0.7])
        den = np.broadcast_to(c, (s.grid.nlat, s.grid.nphi, 3)).copy()
        u = op.apply(den)
        expect = 2 * a / (3 * mu) * c
        assert np.abs(u - expect).max() < 1e-4

    def test_spectral_convergence_with_order(self):
        # Reference: high-order solve on the same ellipsoid with a smooth
        # non-constant density; coarser orders must converge toward it.
        def dens(s):
            return np.stack([np.sin(s.X[:, :, 0]), s.X[:, :, 1] ** 2,
                             s.X[:, :, 2]], axis=-1)
        ref_s = ellipsoid(1.0, 1.2, 0.9, order=16)
        u_ref = SingularSelfInteraction(ref_s).apply(dens(ref_s))
        Tref = SHTransform(16)
        errs = []
        for p in (6, 10):
            s = ellipsoid(1.0, 1.2, 0.9, order=p)
            u = SingularSelfInteraction(s).apply(dens(s))
            ref_on_p = np.stack([
                Tref.resample(Tref.forward(u_ref[:, :, k]), p)
                for k in range(3)], axis=-1)
            errs.append(np.abs(u - ref_on_p).max())
        assert errs[1] < errs[0] * 0.5

    def test_agreement_across_orders_on_ellipsoid(self):
        def dens(s):
            return np.stack([s.X[:, :, 0] ** 2, s.X[:, :, 1],
                             np.ones_like(s.X[:, :, 0])], axis=-1)
        e8 = ellipsoid(1.0, 1.2, 0.9, order=8)
        e14 = ellipsoid(1.0, 1.2, 0.9, order=14)
        u8 = SingularSelfInteraction(e8).apply(dens(e8))
        u14 = SingularSelfInteraction(e14).apply(dens(e14))
        T = SHTransform(14)
        u14_on8 = np.stack([T.resample(T.forward(u14[:, :, k]), 8)
                            for k in range(3)], axis=-1)
        assert np.abs(u8 - u14_on8).max() < 5e-4

    def test_refresh_tracks_moving_surface(self):
        s = sphere(1.0, order=6)
        op = SingularSelfInteraction(s)
        den = np.broadcast_to([1.0, 0, 0], (7, 14, 3)).copy()
        u1 = op.apply(den)
        s.set_positions(2.0 * s.X)   # radius doubles
        op.refresh()
        u2 = op.apply(den)
        # u = 2a/3: doubles with radius
        assert np.allclose(u2, 2 * u1, atol=1e-3)

    def test_linearity(self, rng):
        s = sphere(1.0, order=6)
        op = SingularSelfInteraction(s)
        f1 = rng.normal(size=(7, 14, 3))
        f2 = rng.normal(size=(7, 14, 3))
        u = op.apply(2.0 * f1 - f2)
        assert np.allclose(u, 2 * op.apply(f1) - op.apply(f2), atol=1e-11)


class TestOperatorMatrix:
    """The assembled dense self-interaction operator vs the seed path."""

    def test_matrix_apply_matches_synthesis_path(self, rng):
        e = ellipsoid(1.0, 1.2, 0.9, order=8)
        op = SingularSelfInteraction(e, viscosity=1.7)
        f = rng.normal(size=(e.grid.nlat, e.grid.nphi, 3))
        assert np.abs(op.apply(f) - op.apply_reference(f)).max() <= 1e-12

    def test_matrix_reassembled_on_refresh(self, rng):
        s = sphere(1.0, order=6)
        op = SingularSelfInteraction(s)
        f = rng.normal(size=(s.grid.nlat, s.grid.nphi, 3))
        s.set_positions(1.5 * s.X)
        op.refresh()
        assert np.abs(op.apply(f) - op.apply_reference(f)).max() <= 1e-12

    def test_matrix_property_is_the_operator(self, rng):
        s = sphere(1.1, order=5)
        op = SingularSelfInteraction(s)
        f = rng.normal(size=(s.grid.nlat, s.grid.nphi, 3))
        u = (op.matrix @ f.ravel()).reshape(f.shape)
        assert np.allclose(u, op.apply(f), atol=1e-14)


class TestBatchedNearPipeline:
    """Batched near evaluation vs per-target evaluation."""

    @pytest.fixture(scope="class")
    def near_contact(self):
        from repro.surfaces import biconcave_rbc
        a = biconcave_rbc(1.0, center=(0.0, 0.0, 0.0), order=8)
        b = biconcave_rbc(1.0, center=(2.25, 0.0, 0.1), order=8)
        rng = np.random.default_rng(7)
        den = rng.normal(size=(a.grid.nlat, a.grid.nphi, 3))
        return a, b, den, CellNearEvaluator(a)

    def test_batch_matches_per_target(self, near_contact):
        a, b, den, ev = near_contact
        targets = b.points
        batched = ev.evaluate(den, targets)
        singles = np.stack([ev.evaluate(den, t[None])[0] for t in targets])
        assert np.abs(batched - singles).max() < 1e-12

    def test_near_targets_detected(self, near_contact):
        a, b, den, ev = near_contact
        near = ev.near_target_indices(b.points)
        assert near.size > 0
        dmin = np.array([np.linalg.norm(ev._fine.points - t, axis=1).min()
                         for t in b.points])
        assert np.array_equal(near, np.nonzero(dmin < ev.near_distance)[0])

    def test_near_value_matches_manual_scheme(self, near_contact):
        # Reconstruct one near target's value from the public pieces:
        # closest point + singular on-surface value + check points +
        # barycentric interpolation (the seed per-target algorithm).
        from repro.quadrature.interpolation import (barycentric_matrix,
                                                    barycentric_weights)
        a, b, den, ev = near_contact
        t = b.points[ev.near_target_indices(b.points)[0]]
        th, ph, y, d = ev.closest_point(t)
        n = ev._surface_normal_at(th, ph)
        sgn = float(np.sign((t - y) @ n)) or 1.0
        ts = np.concatenate(
            [[0.0], sgn * (ev.near_distance + ev.h * np.arange(ev.check_order))])
        vals = np.empty((ts.size, 3))
        vals[0] = ev.on_surface_velocity(th, ph, den)
        checks = y[None, :] + ts[1:, None] * n[None, :]
        fw = ev.weighted_fine_density(den)
        vals[1:] = stokes_slp_apply(ev._fine.points, fw.reshape(-1, 3),
                                    checks, ev.viscosity)
        M = barycentric_matrix(ts, np.array([sgn * d]),
                               barycentric_weights(ts))
        expect = (M @ vals).ravel()
        got = ev.evaluate(den, t[None])[0]
        assert np.abs(got - expect).max() < 1e-10

    def test_batched_closest_points(self, near_contact):
        a, b, den, ev = near_contact
        targets = b.points[::11]
        th, ph, y, d = ev.closest_points(targets)
        for k, t in enumerate(targets):
            th1, ph1, y1, d1 = ev.closest_point(t)
            assert abs(d[k] - d1) < 1e-10
            assert np.allclose(y[k], y1, atol=1e-8)


class TestCellNearEvaluator:
    @pytest.fixture(scope="class")
    def setup(self):
        a = 1.3
        s = sphere(a, order=8)
        c = np.array([0.3, -0.2, 0.7])
        den = np.broadcast_to(c, (s.grid.nlat, s.grid.nphi, 3)).copy()
        ev = CellNearEvaluator(s)
        # reference: very fine direct quadrature
        fine = s.upsampled(40)
        fw = np.broadcast_to(c, (41, 82, 3)) * fine.quadrature_weights()[..., None]
        return a, s, c, den, ev, (fine.points, fw.reshape(-1, 3))

    def test_far_evaluation_spectral(self, setup):
        a, s, c, den, ev, (fp, fw) = setup
        trg = np.array([[3.0, 1.0, 0.0], [0.0, -4.0, 0.5]])
        ref = stokes_slp_apply(fp, fw, trg)
        assert np.abs(ev.evaluate(den, trg) - ref).max() < 1e-10

    def test_near_exterior_evaluation(self, setup):
        a, s, c, den, ev, (fp, fw) = setup
        trg = np.array([[a + 0.05, 0.0, 0.0], [0.0, 0.0, a + 0.12]])
        ref = stokes_slp_apply(fp, fw, trg)
        err = np.abs(ev.evaluate(den, trg) - ref).max()
        assert err < 5e-3

    def test_on_surface_singular_value(self, setup):
        a, s, c, den, ev, _ = setup
        v = ev.on_surface_velocity(s.grid.theta[3], s.grid.phi[5], den)
        assert np.abs(v - 2 * a / 3 * c).max() < 1e-6

    def test_closest_point_on_sphere(self, setup):
        a, s, c, den, ev, _ = setup
        x = np.array([2.0, 1.0, -0.5])
        th, ph, y, d = ev.closest_point(x)
        assert abs(d - (np.linalg.norm(x) - a)) < 1e-8
        assert np.allclose(y, a * x / np.linalg.norm(x), atol=1e-7)

    def test_interior_center_value(self, setup):
        a, s, c, den, ev, _ = setup
        v = ev.evaluate(den, np.array([[0.0, 0.0, 0.0]]))
        assert np.abs(v[0] - 2 * a / 3 * c).max() < 1e-10

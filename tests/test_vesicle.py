"""Singular self-interaction and near-singular cell evaluation tests."""
import numpy as np
import pytest

from repro.kernels import stokes_slp_apply
from repro.sph import SHTransform
from repro.surfaces import ellipsoid, sphere
from repro.vesicle import CellNearEvaluator, SingularSelfInteraction


class TestSingularSelfInteraction:
    def test_constant_density_sphere_identity(self):
        a, mu = 1.3, 2.0
        s = sphere(a, order=8)
        op = SingularSelfInteraction(s, viscosity=mu)
        c = np.array([0.3, -0.2, 0.7])
        den = np.broadcast_to(c, (s.grid.nlat, s.grid.nphi, 3)).copy()
        u = op.apply(den)
        expect = 2 * a / (3 * mu) * c
        assert np.abs(u - expect).max() < 1e-4

    def test_spectral_convergence_with_order(self):
        # Reference: high-order solve on the same ellipsoid with a smooth
        # non-constant density; coarser orders must converge toward it.
        def dens(s):
            return np.stack([np.sin(s.X[:, :, 0]), s.X[:, :, 1] ** 2,
                             s.X[:, :, 2]], axis=-1)
        ref_s = ellipsoid(1.0, 1.2, 0.9, order=16)
        u_ref = SingularSelfInteraction(ref_s).apply(dens(ref_s))
        Tref = SHTransform(16)
        errs = []
        for p in (6, 10):
            s = ellipsoid(1.0, 1.2, 0.9, order=p)
            u = SingularSelfInteraction(s).apply(dens(s))
            ref_on_p = np.stack([
                Tref.resample(Tref.forward(u_ref[:, :, k]), p)
                for k in range(3)], axis=-1)
            errs.append(np.abs(u - ref_on_p).max())
        assert errs[1] < errs[0] * 0.5

    def test_agreement_across_orders_on_ellipsoid(self):
        def dens(s):
            return np.stack([s.X[:, :, 0] ** 2, s.X[:, :, 1],
                             np.ones_like(s.X[:, :, 0])], axis=-1)
        e8 = ellipsoid(1.0, 1.2, 0.9, order=8)
        e14 = ellipsoid(1.0, 1.2, 0.9, order=14)
        u8 = SingularSelfInteraction(e8).apply(dens(e8))
        u14 = SingularSelfInteraction(e14).apply(dens(e14))
        T = SHTransform(14)
        u14_on8 = np.stack([T.resample(T.forward(u14[:, :, k]), 8)
                            for k in range(3)], axis=-1)
        assert np.abs(u8 - u14_on8).max() < 5e-4

    def test_refresh_tracks_moving_surface(self):
        s = sphere(1.0, order=6)
        op = SingularSelfInteraction(s)
        den = np.broadcast_to([1.0, 0, 0], (7, 14, 3)).copy()
        u1 = op.apply(den)
        s.set_positions(2.0 * s.X)   # radius doubles
        op.refresh()
        u2 = op.apply(den)
        # u = 2a/3: doubles with radius
        assert np.allclose(u2, 2 * u1, atol=1e-3)

    def test_linearity(self, rng):
        s = sphere(1.0, order=6)
        op = SingularSelfInteraction(s)
        f1 = rng.normal(size=(7, 14, 3))
        f2 = rng.normal(size=(7, 14, 3))
        u = op.apply(2.0 * f1 - f2)
        assert np.allclose(u, 2 * op.apply(f1) - op.apply(f2), atol=1e-11)


class TestCellNearEvaluator:
    @pytest.fixture(scope="class")
    def setup(self):
        a = 1.3
        s = sphere(a, order=8)
        c = np.array([0.3, -0.2, 0.7])
        den = np.broadcast_to(c, (s.grid.nlat, s.grid.nphi, 3)).copy()
        ev = CellNearEvaluator(s)
        # reference: very fine direct quadrature
        fine = s.upsampled(40)
        fw = np.broadcast_to(c, (41, 82, 3)) * fine.quadrature_weights()[..., None]
        return a, s, c, den, ev, (fine.points, fw.reshape(-1, 3))

    def test_far_evaluation_spectral(self, setup):
        a, s, c, den, ev, (fp, fw) = setup
        trg = np.array([[3.0, 1.0, 0.0], [0.0, -4.0, 0.5]])
        ref = stokes_slp_apply(fp, fw, trg)
        assert np.abs(ev.evaluate(den, trg) - ref).max() < 1e-10

    def test_near_exterior_evaluation(self, setup):
        a, s, c, den, ev, (fp, fw) = setup
        trg = np.array([[a + 0.05, 0.0, 0.0], [0.0, 0.0, a + 0.12]])
        ref = stokes_slp_apply(fp, fw, trg)
        err = np.abs(ev.evaluate(den, trg) - ref).max()
        assert err < 5e-3

    def test_on_surface_singular_value(self, setup):
        a, s, c, den, ev, _ = setup
        v = ev.on_surface_velocity(s.grid.theta[3], s.grid.phi[5], den)
        assert np.abs(v - 2 * a / 3 * c).max() < 1e-6

    def test_closest_point_on_sphere(self, setup):
        a, s, c, den, ev, _ = setup
        x = np.array([2.0, 1.0, -0.5])
        th, ph, y, d = ev.closest_point(x)
        assert abs(d - (np.linalg.norm(x) - a)) < 1e-8
        assert np.allclose(y, a * x / np.linalg.norm(x), atol=1e-7)

    def test_interior_center_value(self, setup):
        a, s, c, den, ev, _ = setup
        v = ev.evaluate(den, np.array([[0.0, 0.0, 0.0]]))
        assert np.abs(v[0] - 2 * a / 3 * c).max() < 1e-10

"""Tests of the composable scenario API: ReproConfig serialization,
presets, the ScenarioBuilder, interaction backends, and the deprecation
shim for the legacy flag-style configuration."""
import dataclasses
import warnings

import numpy as np
import pytest

from repro import NumericsOptions, ReproConfig, Scenario, presets
from repro.core import (DirectBackend, Simulation, SimulationConfig,
                        TreecodeBackend, make_backend)
from repro.physics.terms import (BackgroundFlow, Bending, ForceTerm, Gravity,
                                 ShearFlow, Tension, force_term_from_dict,
                                 register_force_term)
from repro.surfaces import sphere
from repro.vessel.recycling import OutletRecycler, Region


class TestReproConfig:
    def test_json_round_trip(self):
        cfg = ReproConfig(
            dt=0.02, viscosity=2.0,
            forces=[Bending(0.03), Tension(),
                    Gravity(1.5, (0.0, 0.0, -1.0)), ShearFlow(0.7)],
            backend="treecode", backend_options={"mac": 4.0},
            with_collisions=False,
            numerics=NumericsOptions(patch_quad=7, gmres_max_iter=12))
        assert ReproConfig.from_dict(cfg.to_dict()) == cfg
        assert ReproConfig.from_json(cfg.to_json()) == cfg

    def test_all_presets_validate_and_round_trip(self):
        assert len(presets.ALL) >= 4
        for name, fn in presets.ALL.items():
            cfg = fn()
            cfg.validate()
            assert ReproConfig.from_dict(cfg.to_dict()) == cfg, name

    def test_partial_dict_gets_constructor_defaults(self):
        cfg = ReproConfig.from_dict({"dt": 0.1})
        assert cfg == ReproConfig(dt=0.1)
        assert cfg.bending_modulus == ReproConfig().bending_modulus > 0

    def test_invalid_config_rejected_on_construction(self):
        with pytest.raises(ValueError, match="dt"):
            ReproConfig(dt=-1.0)
        with pytest.raises(ValueError, match="backend"):
            ReproConfig(backend="nope")
        with pytest.raises(ValueError, match="gmres_max_iter"):
            ReproConfig(numerics=NumericsOptions(gmres_max_iter=0))
        with pytest.raises(ValueError, match="ForceTerm"):
            ReproConfig(forces=["bending"])

    def test_raw_callable_flow_not_serializable(self):
        cfg = ReproConfig(forces=[Bending(), BackgroundFlow(lambda p: p)])
        with pytest.raises(ValueError, match="serial"):
            cfg.to_dict()

    def test_custom_registered_term_round_trips(self):
        @register_force_term
        class Pull(ForceTerm):
            name = "test_pull"

            def __init__(self, strength=1.0):
                self.strength = float(strength)

            def velocity(self, points):
                u = np.zeros_like(np.asarray(points, float))
                u[:, 2] = self.strength
                return u

            def params(self):
                return {"strength": self.strength}

        cfg = ReproConfig(forces=[Bending(), Pull(0.25)])
        back = ReproConfig.from_dict(cfg.to_dict())
        assert back == cfg
        assert isinstance(force_term_from_dict({"term": "test_pull"}), Pull)

    def test_duplicate_singleton_terms_rejected(self):
        with pytest.raises(ValueError, match="at most one Bending"):
            ReproConfig(forces=[Bending(0.05), Bending(0.1)])
        with pytest.raises(ValueError, match="at most one Tension"):
            ReproConfig(forces=[Bending(), Tension(), Tension()])
        # including via the builder's force() stage
        with pytest.raises(ValueError, match="at most one Bending"):
            (Scenario.builder().config(presets.relaxation())
             .cell(sphere(1.0, order=5)).force(Bending(0.1)).build())

    def test_tension_solve_sees_other_tractions(self):
        # The inextensibility solve must include gravity in its
        # background velocity: with gravity the computed tension field
        # differs from the bending-only one.
        def sigma_after_step(with_gravity):
            forces = [Bending(0.02), Tension()]
            if with_gravity:
                forces.append(Gravity(2.0, (0.0, 0.0, -1.0)))
            cfg = ReproConfig(dt=0.05, forces=forces, with_collisions=False)
            sim = Simulation([sphere(1.0, order=5)], config=cfg)
            sim.step()
            return sim.stepper.sigmas[0]

        s0 = sigma_after_step(False)
        s1 = sigma_after_step(True)
        assert not np.allclose(s0, s1)

    def test_bending_modulus_helper(self):
        assert presets.relaxation(bending_modulus=0.07).bending_modulus == 0.07
        assert ReproConfig(forces=[Tension()]).bending_modulus == 0.0

    def test_with_force_copies(self):
        cfg = presets.relaxation()
        cfg2 = cfg.with_force(Gravity(2.0))
        assert len(cfg2.forces) == len(cfg.forces) + 1
        assert all(not isinstance(t, Gravity) for t in cfg.forces)


class TestLegacyShim:
    def test_simulation_config_still_runs_with_warning(self):
        with pytest.warns(DeprecationWarning, match="SimulationConfig"):
            sim = Simulation([sphere(1.0, order=5)],
                             config=SimulationConfig(dt=0.05,
                                                     with_collisions=False))
        rep = sim.step()
        assert sim.t == pytest.approx(0.05)
        assert rep.implicit_iterations[0] >= 0

    def test_legacy_flags_map_to_terms(self):
        def flow(pts):
            return np.zeros_like(pts)

        legacy = SimulationConfig(dt=0.1, bending_modulus=0.02,
                                  with_tension=True,
                                  gravity=(1.5, (0.0, 0.0, -1.0)),
                                  background_flow=flow)
        cfg = ReproConfig.from_legacy(legacy)
        kinds = [type(t) for t in cfg.forces]
        assert kinds == [Bending, Tension, Gravity, BackgroundFlow]
        assert cfg.forces[0].modulus == 0.02
        # legacy attribute-style read must still return a float
        assert cfg.bending_modulus == 0.02

    def test_numerics_not_mutated_by_simulation(self):
        opts = NumericsOptions(gmres_max_iter=17)
        cfg = ReproConfig(viscosity=3.0, with_collisions=False,
                          numerics=opts)
        Simulation([sphere(1.0, order=5)], config=cfg)
        assert opts.viscosity == 1.0  # caller's bundle untouched
        assert cfg.numerics is opts


class TestScenarioBuilder:
    def test_minimal_free_space_build(self):
        sim = (Scenario.builder()
               .config(presets.relaxation())
               .cell(sphere(1.0, order=5))
               .build())
        rep = sim.step()
        assert len(sim.history) == 1 and rep.ncp is None

    def test_build_without_cells_raises(self):
        with pytest.raises(ValueError, match="no cells"):
            Scenario.builder().config(presets.relaxation()).build()

    def test_bc_without_vessel_raises(self):
        b = (Scenario.builder().cell(sphere(1.0, order=5))
             .boundary_condition(np.zeros((4, 3))))
        with pytest.raises(ValueError, match="vessel"):
            b.build()

    def test_force_and_backend_override(self):
        sim = (Scenario.builder()
               .config(presets.relaxation())
               .cell(sphere(1.0, order=5))
               .force(Gravity(2.0, (0.0, 0.0, -1.0)))
               .backend("treecode", mac=4.0)
               .build())
        assert isinstance(sim.backend, TreecodeBackend)
        assert sim.backend.mac == 4.0
        assert any(isinstance(t, Gravity) for t in sim.config.forces)
        z0 = sim.centroids()[0, 2]
        sim.step()
        assert sim.centroids()[0, 2] < z0  # gravity term acts

    def test_builder_does_not_mutate_preset(self):
        cfg = presets.relaxation()
        n = len(cfg.forces)
        (Scenario.builder().config(cfg).cell(sphere(1.0, order=5))
         .force(Gravity(1.0)).build())
        assert len(cfg.forces) == n

    def test_prebuilt_backend_instance(self):
        be = DirectBackend()
        sim = (Scenario.builder()
               .config(presets.relaxation())
               .cell(sphere(1.0, order=5))
               .backend(be)
               .build())
        assert sim.backend is be and be.bound

    def test_vessel_and_fill_path(self):
        from repro.patches import capsule_tube
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1,
                               check_r_factor=0.25, gmres_max_iter=10)
        vessel = capsule_tube(length=8.0, radius=1.6, refine=0, options=opts)

        def sd(pts):
            z = np.clip(pts[:, 2], -2.4, 2.4)
            ax = np.column_stack([np.zeros(len(pts)), np.zeros(len(pts)), z])
            return np.linalg.norm(pts - ax, axis=1) - 1.6

        cfg = dataclasses.replace(presets.vessel_flow(), numerics=opts)
        sim = (Scenario.builder()
               .config(cfg)
               .vessel(vessel)
               .fill(sd, (np.array([-1.6, -1.6, -4.0]),
                          np.array([1.6, 1.6, 4.0])),
                     spacing=1.6, order=5, shape="sphere", seed=1)
               .build())
        assert sim.vessel is vessel and len(sim.cells) > 0
        assert 0 < sim.volume_fraction() < 0.7

    def test_recycler_path(self):
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1,
                               check_r_factor=0.25, gmres_max_iter=10)
        rec = OutletRecycler(
            inlets=[Region(center=np.array([0.0, 0.0, -5.0]), radius=1.0)],
            outlets=[Region(center=np.array([0.0, 0.0, 5.0]), radius=1.0)])
        cfg = ReproConfig(dt=0.01, forces=[Bending(0.01)],
                          with_collisions=False, numerics=opts)
        sim = (Scenario.builder()
               .config(cfg)
               .cell(sphere(0.4, center=(0.0, 0.0, 5.0), order=5))
               .recycler(rec)
               .build())
        rep = sim.step()
        assert rep.recycled == [0]
        assert sim.centroids()[0, 2] < 0


class TestInteractionBackends:
    @pytest.fixture(scope="class")
    def three_cell_scene(self):
        cells = [sphere(0.7, center=(-2.0, 0.0, 0.0), order=5),
                 sphere(0.7, center=(2.0, 0.0, 0.3), order=5),
                 sphere(0.7, center=(0.0, 2.2, -0.2), order=5)]
        rng = np.random.default_rng(3)
        forces = [rng.normal(size=(c.grid.nlat, c.grid.nphi, 3))
                  for c in cells]
        return cells, forces

    def test_backend_equivalence_cell_cell(self, three_cell_scene):
        cells, forces = three_cell_scene
        direct = DirectBackend().bind(cells, 1.0)
        tree = TreecodeBackend().bind(cells, 1.0)
        direct.prepare(forces)
        tree.prepare(forces)
        bd, bt = direct.cell_cell(), tree.cell_cell()
        for i in range(len(cells)):
            rel = (np.linalg.norm(bd[i] - bt[i])
                   / np.linalg.norm(bd[i]))
            assert rel < 5e-3, f"cell {i}: rel diff {rel:.2e}"

    def test_treecode_batched_cell_cell_matches_generic(self,
                                                        three_cell_scene):
        """The near-pair-batched cell_cell override computes exactly what
        the generic per-source path computes."""
        from repro.core.interactions import InteractionBackend
        cells, forces = three_cell_scene
        tree = TreecodeBackend().bind(cells, 1.0)
        tree.prepare(forces)
        batched = tree.cell_cell()
        generic = InteractionBackend.cell_cell(tree)
        for bb, gg in zip(batched, generic):
            assert np.allclose(bb, gg, atol=1e-12)

    def test_backend_equivalence_external_targets(self, three_cell_scene):
        cells, forces = three_cell_scene
        direct = DirectBackend().bind(cells, 1.0)
        tree = TreecodeBackend().bind(cells, 1.0)
        direct.prepare(forces)
        tree.prepare(forces)
        targets = np.array([[0.0, 0.0, 4.0], [3.0, 0.0, 0.0],
                            [-1.2, 0.1, 0.0]])
        ud, ut = direct.evaluate_at(targets), tree.evaluate_at(targets)
        assert np.linalg.norm(ud - ut) / np.linalg.norm(ud) < 5e-3

    def test_cached_density_matches_fresh(self, three_cell_scene):
        cells, forces = three_cell_scene
        be = DirectBackend().bind(cells, 1.0)
        be.prepare(forces)
        fresh = be.evaluators[0].evaluate(forces[0], cells[1].points)
        cached = be.evaluators[0].evaluate(forces[0], cells[1].points,
                                           fine_weighted=be._weighted(0))
        assert np.allclose(fresh, cached, rtol=0, atol=1e-14)

    def test_make_backend_registry(self):
        assert isinstance(make_backend("direct"), DirectBackend)
        assert isinstance(make_backend("treecode", mac=5.0),
                          TreecodeBackend)
        with pytest.raises(ValueError, match="unknown"):
            make_backend("bogus")

    def test_refresh_cell_public_api(self):
        cells = [sphere(0.8, center=(-1.2, 0.0, 0.0), order=5),
                 sphere(0.8, center=(1.2, 0.0, 0.0), order=5)]
        cfg = ReproConfig(dt=0.05, with_collisions=False)
        sim = Simulation(cells, config=cfg)
        moved = cells[0].X + np.array([0.0, 0.0, 0.5])
        cells[0].set_positions(moved)
        sim.stepper.refresh_cell(0)
        ev = sim.backend.evaluators[0]
        # the cached evaluator now agrees with a freshly built one
        from repro.vesicle import CellNearEvaluator
        ref = CellNearEvaluator(cells[0], viscosity=1.0)
        assert np.allclose(ev._fine.points, ref._fine.points)

    def test_prebound_backend_not_shared_across_simulations(self):
        be = DirectBackend()
        sim_a = (Scenario.builder().config(presets.relaxation())
                 .cell(sphere(1.0, order=5)).backend(be).build())
        # reusing the instance for a second simulation would corrupt the
        # first one's cached state -> refused
        with pytest.raises(ValueError, match="fresh backend"):
            (Scenario.builder().config(presets.relaxation())
             .cells([sphere(0.8, center=(-1.5, 0.0, 0.0), order=5),
                     sphere(0.8, center=(1.5, 0.0, 0.0), order=5)])
             .backend(be).build())
        sim_a.step()  # first simulation is unharmed

    def test_backend_instance_recorded_in_config(self):
        sim = (Scenario.builder()
               .config(presets.relaxation())
               .cell(sphere(1.0, order=5))
               .backend(TreecodeBackend(mac=4.0))
               .build())
        d = sim.config.to_dict()
        assert d["backend"] == "treecode"
        assert d["backend_options"]["mac"] == 4.0
        # also via the plain Simulation entry point
        sim2 = Simulation([sphere(1.0, order=5)],
                          config=presets.relaxation(),
                          backend=TreecodeBackend(mac=5.0))
        assert sim2.config.to_dict()["backend_options"]["mac"] == 5.0

    def test_backend_call_overrides_previous_selection(self):
        sim = (Scenario.builder()
               .config(presets.relaxation())
               .cell(sphere(1.0, order=5))
               .backend(TreecodeBackend(mac=4.0))
               .backend("direct")
               .build())
        assert isinstance(sim.backend, DirectBackend)
        assert sim.config.backend == "direct"

    def test_unregistered_custom_backend_instance(self):
        class MyBackend(DirectBackend):
            name = "custom_unregistered"

        be = MyBackend()
        sim = (Scenario.builder()
               .config(presets.relaxation())
               .cell(sphere(1.0, order=5))
               .backend(be)
               .build())
        assert sim.backend is be
        sim.step()

    def test_boundary_only_simulation_still_runs(self):
        from repro.patches import capsule_tube
        from repro.vessel import capsule_inlet_outlet_bc
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1,
                               check_r_factor=0.25, gmres_max_iter=10)
        vessel = capsule_tube(length=8.0, radius=1.6, refine=0, options=opts)
        g = capsule_inlet_outlet_bc(vessel, axis=2, flux=2.0)
        for name in ("direct", "treecode"):
            cfg = ReproConfig(dt=0.05, backend=name, with_collisions=False,
                              numerics=opts)
            sim = Simulation([], vessel=vessel, boundary_bc=g, config=cfg)
            rep = sim.step()
            assert rep.bie_iterations > 0

    def test_refresh_invalidates_prepared_state(self, three_cell_scene):
        cells, forces = three_cell_scene
        be = DirectBackend().bind(cells, 1.0)
        be.prepare(forces)
        be.cell_cell()
        be.refresh(0)
        with pytest.raises(RuntimeError, match="prepare"):
            be.cell_cell()
        with pytest.raises(RuntimeError, match="prepare"):
            be.evaluate_at(np.zeros((1, 3)))
        be.prepare(forces)  # re-preparing restores evaluation
        be.cell_cell()

    def test_simulation_with_treecode_backend_steps(self):
        cells = [sphere(0.7, center=(-1.6, 0.0, 0.3), order=5),
                 sphere(0.7, center=(1.6, 0.0, -0.3), order=5)]
        cfg = ReproConfig(dt=0.05, forces=[Bending(0.02), ShearFlow(1.0)],
                          backend="treecode", with_collisions=False)
        sim = Simulation(cells, config=cfg)
        x0 = sim.centroids()[0, 0]
        sim.run(2)
        assert sim.centroids()[0, 0] != pytest.approx(x0)

"""Vessel network, boundary-condition, filling, and recycling tests."""
import numpy as np
import networkx as nx
import pytest

from repro.patches import capsule_tube
from repro.vessel import (
    InletOutlet,
    OutletRecycler,
    VesselNetwork,
    capsule_inlet_outlet_bc,
    demo_bifurcation_network,
    demo_tree_network,
    fill_with_rbcs,
)
from repro.vessel.boundary_conditions import parabolic_bc
from repro.vessel.recycling import Region
from repro.surfaces import sphere


class TestNetwork:
    def test_terminals_of_bifurcation(self):
        net = demo_bifurcation_network()
        assert sorted(net.terminals()) == [0, 2, 3]

    def test_signed_distance_straight_tube(self):
        g = nx.Graph()
        g.add_node(0, pos=(0, 0, 0), radius=1.0)
        g.add_node(1, pos=(10, 0, 0), radius=1.0)
        g.add_edge(0, 1)
        net = VesselNetwork(g)
        pts = np.array([[5.0, 0, 0], [5.0, 0.5, 0], [5.0, 2.0, 0],
                        [-3.0, 0, 0]])
        d = net.signed_distance(pts)
        assert np.allclose(d, [-1.0, -0.5, 1.0, 2.0])

    def test_tapered_radius(self):
        g = nx.Graph()
        g.add_node(0, pos=(0, 0, 0), radius=2.0)
        g.add_node(1, pos=(10, 0, 0), radius=1.0)
        g.add_edge(0, 1)
        net = VesselNetwork(g)
        d = net.signed_distance(np.array([[5.0, 0, 0]]))
        assert np.isclose(d[0], -1.5)

    def test_contains_and_volume(self):
        net = demo_bifurcation_network()
        lo, hi = net.bounding_box()
        vol = net.lumen_volume(samples_per_axis=25)
        assert vol > 0
        center = np.asarray(net.graph.nodes[1]["pos"], float)
        assert net.contains(center[None, :])[0]

    def test_patch_surfaces_built_per_edge(self, small_opts):
        net = demo_bifurcation_network(options=small_opts)
        surfs = net.build_patch_surfaces(refine=0)
        assert len(surfs) == 3
        for s in surfs:
            assert s.volume() > 0  # closed, outward

    def test_tree_network_counts(self):
        net = demo_tree_network(levels=2)
        # binary tree: 1 + 2 + 4 nodes
        assert net.graph.number_of_nodes() == 7
        assert len(net.terminals()) >= 4

    def test_missing_attrs_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            VesselNetwork(g)


class TestBoundaryConditions:
    def test_capsule_bc_zero_net_flux(self, small_opts):
        vessel = capsule_tube(length=8.0, radius=1.5, refine=0,
                              options=small_opts)
        g = capsule_inlet_outlet_bc(vessel, axis=2, flux=2.0)
        d = vessel.coarse()
        flux = np.einsum("n,nk,nk->", d.weights, g, d.normals)
        assert abs(flux) < 1e-10
        assert np.abs(g).max() > 0

    def test_walls_no_slip(self, small_opts):
        vessel = capsule_tube(length=10.0, radius=1.0, refine=0,
                              options=small_opts)
        g = capsule_inlet_outlet_bc(vessel, axis=2, flux=1.0,
                                    cap_fraction=0.1)
        d = vessel.coarse()
        mid = np.abs(d.points[:, 2]) < 2.0
        assert np.abs(g[mid]).max() < 1e-12

    def test_outlet_rebalance(self, small_opts):
        vessel = capsule_tube(length=8.0, radius=1.5, refine=0,
                              options=small_opts)
        d = vessel.coarse()
        lo = d.points[:, 2].min()
        hi = d.points[:, 2].max()
        ports = [
            InletOutlet(center=[0, 0, lo], direction=[0, 0, 1],
                        radius=1.5, flux=3.0, cap_depth=0.6),
            InletOutlet(center=[0, 0, hi], direction=[0, 0, 1],
                        radius=1.5, flux=-1.0, cap_depth=0.6),
        ]
        g = parabolic_bc(vessel, ports)
        flux = np.einsum("n,nk,nk->", d.weights, g, d.normals)
        assert abs(flux) < 1e-10


class TestFilling:
    @pytest.fixture(scope="class")
    def tube_fill(self):
        def sd(pts):
            z = np.clip(pts[:, 2], -3.0, 3.0)
            ax = np.column_stack([np.zeros(len(pts)), np.zeros(len(pts)), z])
            return np.linalg.norm(pts - ax, axis=1) - 1.5
        lumen = np.pi * 1.5 ** 2 * 6 + 4 / 3 * np.pi * 1.5 ** 3
        return fill_with_rbcs(sd, (np.array([-1.5, -1.5, -4.5]),
                                   np.array([1.5, 1.5, 4.5])),
                              spacing=1.2, lumen_volume=lumen, order=5,
                              shape="sphere", seed=2)

    def test_cells_inside_domain(self, tube_fill):
        for cell in tube_fill.cells:
            r = np.linalg.norm(cell.points[:, :2], axis=1)
            assert r.max() < 1.55

    def test_no_pairwise_overlap(self, tube_fill):
        c = tube_fill.centers
        r = tube_fill.radii
        n = len(r)
        for i in range(n):
            for j in range(i + 1, n):
                d = np.linalg.norm(c[i] - c[j])
                assert d >= r[i] + r[j] - 1e-9, (i, j)

    def test_radii_within_bounds(self, tube_fill):
        r0 = 0.35 * 1.2
        assert np.all(tube_fill.radii >= 0.5 * r0 - 1e-12)
        assert np.all(tube_fill.radii <= 2.0 * r0 + 1e-12)

    def test_volume_fraction_positive(self, tube_fill):
        assert 0.0 < tube_fill.volume_fraction < 0.7

    def test_rbc_shape_option(self):
        def sd(pts):
            return np.linalg.norm(pts, axis=1) - 3.0
        res = fill_with_rbcs(sd, (np.full(3, -3.0), np.full(3, 3.0)),
                             spacing=1.5, lumen_volume=4 / 3 * np.pi * 27,
                             order=5, shape="rbc", seed=0, max_cells=6)
        assert res.n_cells <= 6
        for cell in res.cells:
            nu = cell.reduced_volume()
            assert 0.5 < nu < 0.8  # biconcave cells

    def test_empty_domain(self):
        def sd(pts):
            return np.ones(len(pts))  # nothing inside
        res = fill_with_rbcs(sd, (np.zeros(3), np.ones(3)), spacing=0.5,
                             lumen_volume=1.0)
        assert res.n_cells == 0


class TestRecycling:
    def test_outlet_cell_moved_to_inlet(self):
        inlet = Region(center=np.array([-5.0, 0, 0]), radius=2.0)
        outlet = Region(center=np.array([5.0, 0, 0]), radius=2.0)
        rec = OutletRecycler([inlet], [outlet])
        cell = sphere(0.5, center=(5.0, 0, 0), order=5)
        other = sphere(0.5, center=(0.0, 0, 0), order=5)
        moved = rec.recycle([cell, other])
        assert moved == [0]
        assert np.linalg.norm(cell.centroid() - inlet.center) <= inlet.radius
        # collision-free vs the other cell
        assert np.linalg.norm(cell.centroid() - other.centroid()) > 1.0

    def test_non_outlet_cells_untouched(self):
        inlet = Region(center=np.array([-5.0, 0, 0]), radius=2.0)
        outlet = Region(center=np.array([5.0, 0, 0]), radius=1.0)
        rec = OutletRecycler([inlet], [outlet])
        cell = sphere(0.5, center=(0.0, 0, 0), order=5)
        X0 = cell.X.copy()
        assert rec.recycle([cell]) == []
        assert np.array_equal(cell.X, X0)

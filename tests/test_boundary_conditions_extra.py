"""Additional boundary-condition and port-geometry tests."""
import numpy as np
import pytest

from repro.config import NumericsOptions
from repro.patches import capsule_tube, cube_sphere
from repro.vessel.boundary_conditions import InletOutlet, parabolic_bc, port_mask


@pytest.fixture(scope="module")
def opts():
    return NumericsOptions(patch_quad=7)


class TestPortMask:
    def test_mask_selects_cap_nodes(self, opts):
        vessel = capsule_tube(length=8.0, radius=1.5, refine=0, options=opts)
        d = vessel.coarse()
        lo = d.points[:, 2].min()
        port = InletOutlet(center=[0, 0, lo], direction=[0, 0, 1],
                           radius=1.5, flux=1.0, cap_depth=0.4)
        m = port_mask(d.points, port)
        assert m.any()
        # every selected node is near the low end
        assert d.points[m, 2].max() < 0.0

    def test_direction_normalized(self):
        port = InletOutlet(center=[0, 0, 0], direction=[0, 0, 5.0],
                           radius=1.0, flux=1.0)
        assert np.isclose(np.linalg.norm(port.direction), 1.0)


class TestParabolicBC:
    def test_three_port_balance(self, opts):
        # Sphere with one inflow and two outflows: flux must balance to 0
        # even when the requested fluxes do not.
        s = cube_sphere(refine=0, radius=2.0, options=opts)
        ports = [
            InletOutlet(center=[0, 0, -2.0], direction=[0, 0, 1],
                        radius=1.0, flux=2.0, cap_depth=0.5),
            InletOutlet(center=[0, 0, 2.0], direction=[0, 0, 1],
                        radius=1.0, flux=-0.7, cap_depth=0.5),
            InletOutlet(center=[2.0, 0, 0], direction=[1, 0, 0],
                        radius=1.0, flux=-0.6, cap_depth=0.5),
        ]
        g = parabolic_bc(s, ports)
        d = s.coarse()
        flux = np.einsum("n,nk,nk->", d.weights, g, d.normals)
        assert abs(flux) < 1e-10
        assert np.abs(g).max() > 0

    def test_no_ports_gives_zero(self, opts):
        s = cube_sphere(refine=0, options=opts)
        g = parabolic_bc(s, [])
        assert np.abs(g).max() == 0.0

    def test_profile_is_smooth_at_rim(self, opts):
        # Squared-parabola profile: values just inside the rim are small.
        vessel = capsule_tube(length=8.0, radius=1.5, refine=0, options=opts)
        d = vessel.coarse()
        lo = d.points[:, 2].min()
        port = InletOutlet(center=[0, 0, lo], direction=[0, 0, 1],
                           radius=1.5, flux=1.0, cap_depth=0.4)
        g = parabolic_bc(vessel, [port])
        m = port_mask(d.points, port)
        rel = d.points[m] - port.center
        axial = rel @ port.direction
        radial = np.linalg.norm(rel - axial[:, None] * port.direction, axis=1)
        rim = radial > 0.9 * port.radius
        if rim.any():
            core = radial < 0.3 * port.radius
            assert np.abs(g[m][rim]).max() < 0.25 * np.abs(g[m][core]).max()

"""Failure-injection and edge-case tests across modules."""
import numpy as np
import pytest

from repro.bie import BoundarySolver
from repro.collision import NCPSolver, solve_lcp
from repro.config import NumericsOptions
from repro.core import Simulation, SimulationConfig
from repro.fmm import Octree
from repro.patches import cube_sphere
from repro.surfaces import SpectralSurface, sphere
from repro.vesicle import SingularSelfInteraction


class TestDegenerateInputs:
    def test_octree_coincident_points(self):
        pts = np.zeros((50, 3))
        tree = Octree(pts, max_leaf=8, max_level=4)
        # coincident points cannot be split; the level cap must stop it
        assert tree.depth() <= 4
        seen = np.concatenate([tree.nodes[l].indices for l in tree.leaves()])
        assert seen.size == 50

    def test_lcp_all_separated(self):
        # strictly positive q: lambda = 0 is the solution
        res = solve_lcp(lambda x: 2 * x, np.array([0.5, 1.0, 0.2]))
        assert res.converged
        assert np.allclose(res.lam, 0.0)

    def test_ncp_empty_cell_list(self):
        ncp = NCPSolver(boundary_meshes=[])
        out, rep = ncp.project([], [], [], dt=0.1)
        assert out == [] and not rep.contact_active

    def test_simulation_volume_fraction_requires_lumen(self):
        sim = Simulation([sphere(1.0, order=4)],
                         config=SimulationConfig(with_collisions=False))
        with pytest.raises(ValueError):
            sim.volume_fraction()
        assert sim.volume_fraction(lumen_volume=100.0) > 0

    def test_surface_wrong_order_grid(self):
        s = sphere(1.0, order=6)
        with pytest.raises(ValueError):
            SpectralSurface(s.X, order=8)


class TestSolverRobustness:
    def test_bie_zero_rhs_zero_solution(self):
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1)
        s = cube_sphere(refine=0, options=opts)
        solver = BoundarySolver(s, kernel="laplace", options=opts)
        phi, rep = solver.solve(np.zeros(solver.N))
        assert rep.converged
        assert np.abs(phi).max() < 1e-12

    def test_bie_linearity(self, rng):
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1)
        s = cube_sphere(refine=0, options=opts)
        solver = BoundarySolver(s, kernel="laplace", options=opts)
        x1 = rng.normal(size=solver.N)
        x2 = rng.normal(size=solver.N)
        a1 = solver.apply((2 * x1 - 3 * x2)[:, None]).ravel()
        a2 = 2 * solver.apply(x1[:, None]).ravel() - \
            3 * solver.apply(x2[:, None]).ravel()
        assert np.abs(a1 - a2).max() < 1e-10

    def test_self_interaction_zero_density(self):
        s = sphere(1.0, order=5)
        op = SingularSelfInteraction(s)
        u = op.apply(np.zeros((6, 12, 3)))
        assert np.abs(u).max() == 0.0

    def test_stepper_zero_dt_is_identity_up_to_contact(self):
        s = sphere(1.0, order=5)
        sim = Simulation([s], config=SimulationConfig(
            dt=0.0, with_collisions=False))
        X0 = sim.cells[0].X.copy()
        sim.step()
        assert np.abs(sim.cells[0].X - X0).max() < 1e-10

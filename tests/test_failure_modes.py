"""Failure-injection and edge-case tests across modules."""
import json

import numpy as np
import pytest

from repro.analysis.faultinject import force_unresolved_contact, inject_nan
from repro.bie import BoundarySolver
from repro.collision import NCPSolver, solve_lcp
from repro.config import NumericsOptions, ReproConfig, ResilienceOptions
from repro.core import Simulation, SimulationConfig
from repro.fmm import Octree
from repro.patches import cube_sphere
from repro.physics.terms import Bending, Tension
from repro.resilience import load_checkpoint, save_checkpoint
from repro.surfaces import SpectralSurface, sphere
from repro.surfaces.shapes import biconcave_rbc
from repro.vesicle import SingularSelfInteraction


class TestDegenerateInputs:
    def test_octree_coincident_points(self):
        pts = np.zeros((50, 3))
        tree = Octree(pts, max_leaf=8, max_level=4)
        # coincident points cannot be split; the level cap must stop it
        assert tree.depth() <= 4
        seen = np.concatenate([tree.nodes[l].indices for l in tree.leaves()])
        assert seen.size == 50

    def test_lcp_all_separated(self):
        # strictly positive q: lambda = 0 is the solution
        res = solve_lcp(lambda x: 2 * x, np.array([0.5, 1.0, 0.2]))
        assert res.converged
        assert np.allclose(res.lam, 0.0)

    def test_ncp_empty_cell_list(self):
        ncp = NCPSolver(boundary_meshes=[])
        out, rep = ncp.project([], [], [], dt=0.1)
        assert out == [] and not rep.contact_active

    def test_simulation_volume_fraction_requires_lumen(self):
        sim = Simulation([sphere(1.0, order=4)],
                         config=SimulationConfig(with_collisions=False))
        with pytest.raises(ValueError):
            sim.volume_fraction()
        assert sim.volume_fraction(lumen_volume=100.0) > 0

    def test_surface_wrong_order_grid(self):
        s = sphere(1.0, order=6)
        with pytest.raises(ValueError):
            SpectralSurface(s.X, order=8)


class TestSolverRobustness:
    def test_bie_zero_rhs_zero_solution(self):
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1)
        s = cube_sphere(refine=0, options=opts)
        solver = BoundarySolver(s, kernel="laplace", options=opts)
        phi, rep = solver.solve(np.zeros(solver.N))
        assert rep.converged
        assert np.abs(phi).max() < 1e-12

    def test_bie_linearity(self, rng):
        opts = NumericsOptions(patch_quad=7, check_order=4, upsample_eta=1)
        s = cube_sphere(refine=0, options=opts)
        solver = BoundarySolver(s, kernel="laplace", options=opts)
        x1 = rng.normal(size=solver.N)
        x2 = rng.normal(size=solver.N)
        a1 = solver.apply((2 * x1 - 3 * x2)[:, None]).ravel()
        a2 = 2 * solver.apply(x1[:, None]).ravel() - \
            3 * solver.apply(x2[:, None]).ravel()
        assert np.abs(a1 - a2).max() < 1e-10

    def test_self_interaction_zero_density(self):
        s = sphere(1.0, order=5)
        op = SingularSelfInteraction(s)
        u = op.apply(np.zeros((6, 12, 3)))
        assert np.abs(u).max() == 0.0

    def test_stepper_zero_dt_is_identity_up_to_contact(self):
        s = sphere(1.0, order=5)
        sim = Simulation([s], config=SimulationConfig(
            dt=0.0, with_collisions=False))
        X0 = sim.cells[0].X.copy()
        sim.step()
        assert np.abs(sim.cells[0].X - X0).max() < 1e-10


def _resilient_scene(with_collisions=False, backend="direct",
                     resilience=None):
    cfg = ReproConfig(dt=0.05, forces=[Bending(0.01), Tension()],
                      with_collisions=with_collisions, backend=backend,
                      resilience=resilience or ResilienceOptions())
    cells = [biconcave_rbc(order=6).translated([0.0, 0.0, 3.0 * i])
             for i in range(2)]
    return Simulation(cells, config=cfg)


class TestFaultInjectedRecovery:
    """The three recovery paths of :mod:`repro.resilience`, each driven
    end-to-end by :mod:`repro.analysis.faultinject`."""

    def test_nan_farfield_degrades_backend_and_run_stays_healthy(self):
        # NaN in the fast backend's far-field output -> graceful
        # degradation treecode -> direct, sticky for the rest of the run.
        sim = _resilient_scene(backend="treecode")
        with inject_nan(sim.backend, "cell_cell") as counter:
            rep = sim.step()
        assert counter.fired == 1
        assert rep.backend_degraded_to == "direct"
        assert rep.health.healthy and rep.retries == 0
        rep2 = sim.step()  # no re-probe of the failed backend
        assert rep2.backend_degraded_to == "direct"
        assert all(np.isfinite(c.X).all() for c in sim.cells)

    def test_forced_ncp_nonconvergence_triggers_dt_backoff(self):
        # An unresolved contact projection rejects the step; the retry
        # runs two dt/2 sub-steps landing back on the nominal grid.
        sim = _resilient_scene(with_collisions=True)
        with force_unresolved_contact(sim.stepper.ncp) as counter:
            rep = sim.step()
        assert counter.fired == 1
        assert rep.retries == 1
        assert len(rep.substeps) == 2
        assert all(s.dt == pytest.approx(sim.config.dt / 2)
                   for s in rep.substeps)
        assert sim.t == pytest.approx(sim.config.dt)
        assert rep.health.healthy

    def test_kill_mid_run_then_resume_is_bit_identical(self, tmp_path):
        # Reference: 6 uninterrupted steps. Crash run: checkpoint at
        # step 3, drop the simulation ("kill"), resume from disk.
        ref = _resilient_scene(with_collisions=True)
        for _ in range(6):
            ref.step()
        sim = _resilient_scene(with_collisions=True)
        for _ in range(3):
            sim.step()
        path = save_checkpoint(sim, str(tmp_path / "mid"))
        del sim  # the "kill": only the on-disk checkpoint survives
        resumed = load_checkpoint(path)
        assert resumed.t == pytest.approx(3 * 0.05)
        for _ in range(3):
            resumed.step()
        assert resumed.t == ref.t
        for a, b in zip(ref.cells, resumed.cells):
            assert np.array_equal(a.X, b.X)
        for a, b in zip(ref.stepper.sigmas, resumed.stepper.sigmas):
            assert np.array_equal(a, b)


class TestCheckpointForwardCompat:
    def test_unknown_manifest_keys_and_arrays_are_ignored(self, tmp_path):
        # A same-version checkpoint written by a *newer* minor revision
        # may carry extra manifest keys and extra arrays; loading must
        # ignore them rather than crash.
        sim = _resilient_scene()
        path = save_checkpoint(sim, str(tmp_path / "fw"))
        with np.load(path, allow_pickle=False) as data:
            payload = {k: data[k] for k in data.files}
        manifest = json.loads(str(payload["manifest"]))
        manifest["future_policy"] = {"knob": 1}
        for entry in manifest["cells"]:
            entry["future_cell_field"] = "x"
        payload["manifest"] = np.array(json.dumps(manifest))
        payload["future_array"] = np.zeros(3)
        np.savez(path, **payload)
        resumed = load_checkpoint(path)
        for a, b in zip(sim.cells, resumed.cells):
            assert np.array_equal(a.X, b.X)

"""Fixture-based self-tests of the ``repro_lint`` static-analysis passes.

Each rule gets a seeded violation (must fire), the fixed form (must
pass), and a suppression check. The final test pins the acceptance
criterion: the linter runs clean on the shipped ``src/`` tree.
"""
import pathlib
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_ROOT / "tools"))

from repro_lint import lint_paths, lint_source          # noqa: E402
from repro_lint.__main__ import main as lint_main       # noqa: E402


def rules_of(source: str):
    return sorted({v.rule for v in lint_source("fixture.py", source)})


def lines_of(source: str, rule: str):
    return [v.line for v in lint_source("fixture.py", source)
            if v.rule == rule]


class TestDeterminismPass:
    def test_shared_attribute_write_fires(self):
        src = """
class Stepper:
    def run(self):
        return self.executor.map(self._task, range(3))

    def _task(self, i):
        self.count = i
        return i
"""
        assert rules_of(src) == ["shared-write"]

    def test_item_indexed_write_passes(self):
        src = """
class Stepper:
    def run(self):
        return self.executor.map(self._task, range(3))

    def _task(self, i):
        self._state[i] = i * 2.0
        return i
"""
        assert rules_of(src) == []

    def test_loop_invariant_subscript_fires(self):
        src = """
class Stepper:
    def run(self):
        return self.executor.map(self._task, range(3))

    def _task(self, i):
        self._acc[0] = i
        return i
"""
        assert rules_of(src) == ["shared-write"]

    def test_lambda_task_resolves_method(self):
        src = """
class Stepper:
    def run(self):
        return self.executor.map(lambda i: self._upd(i, 2.0), range(3))

    def _upd(self, i, dt):
        self.scale = dt
        return i
"""
        assert rules_of(src) == ["shared-write"]

    def test_local_def_task_and_taint_through_assignment(self):
        src = """
class Stepper:
    def run(self):
        def task(i):
            cell = self.cells[i]
            cell.values = 0.0          # derived from the item: fine
            self.cells[i].flag = True  # ditto
            return cell
        return self.executor.map(task, range(3))
"""
        assert rules_of(src) == []

    def test_write_under_lock_passes(self):
        src = """
class Tables:
    def build(self):
        return self.executor.map(self._get, range(3))

    def _get(self, i):
        if self._fused is None:
            with self._fused_lock:
                self._fused = 1.0
        return self._fused
"""
        assert rules_of(src) == []

    def test_thread_local_write_passes(self):
        src = """
class Timers:
    def run(self):
        return self.executor.map(self._task, range(3))

    def _task(self, i):
        self._local.stack = i
        self._local.frames.append(i)
        return i
"""
        assert rules_of(src) == []

    def test_mutator_call_on_shared_receiver_fires(self):
        src = """
class Stepper:
    def run(self):
        return self.executor.map(self._task, range(3))

    def _task(self, i):
        self.log.append(i)
        return i
"""
        assert rules_of(src) == ["shared-write"]

    def test_closure_nonlocal_accumulator_fires(self):
        src = """
class Stepper:
    def run(self):
        total = 0
        def task(i):
            nonlocal total
            total += i
            return i
        return self.executor.map(task, range(3))
"""
        assert rules_of(src) == ["shared-write"]

    def test_base_class_method_resolution(self):
        """A task in a base class calling an overridden method defined in
        a same-module subclass is followed into the override."""
        src = """
class Backend:
    def run(self):
        return self.executor.map(lambda j: self._vel(j), range(3))

    def _vel(self, j):
        raise NotImplementedError

class Direct(Backend):
    def _vel(self, j):
        self.cache = j          # shared write in the override
        return j
"""
        assert "shared-write" in rules_of(src)


class TestHygienePass:
    def test_unfrozen_lru_table_fires(self):
        src = """
import numpy as np
from functools import lru_cache

@lru_cache(maxsize=4)
def table(n):
    t = np.linspace(0.0, 1.0, n)
    return t
"""
        assert rules_of(src) == ["frozen-table"]

    def test_frozen_lru_table_passes(self):
        src = """
import numpy as np
from functools import lru_cache
from repro.analysis.guard import freeze

@lru_cache(maxsize=4)
def table(n):
    t = np.linspace(0.0, 1.0, n)
    return freeze(t)
"""
        assert rules_of(src) == []

    def test_lru_class_factory_requires_freezing_init(self):
        bad = """
import numpy as np
from functools import lru_cache

class Tables:
    def __init__(self, n):
        self.t = np.linspace(0.0, 1.0, n)

@lru_cache(maxsize=4)
def tables(n):
    return Tables(n)
"""
        good = bad.replace(
            "self.t = np.linspace(0.0, 1.0, n)",
            "self.t = np.linspace(0.0, 1.0, n); freeze_attributes(self)")
        assert rules_of(bad) == ["frozen-table"]
        assert rules_of(good) == []

    def test_assert_and_bare_except_and_mutable_default(self):
        src = """
def f(x=[]):
    try:
        assert x
    except:
        pass
"""
        assert rules_of(src) == ["bare-except", "mutable-default",
                                 "no-assert"]

    def test_literal_float32_cast_fires(self):
        src = """
import numpy as np

def f(x):
    a = x.astype(np.float32)
    b = np.zeros(3, dtype="float32")
    return a, b
"""
        assert lines_of(src, "float32-cast") == [5, 6]

    def test_parameter_driven_dtype_passes(self):
        """The sanctioned farfield_dtype pattern: the working dtype flows
        through a variable, never a literal cast."""
        src = """
import numpy as np

def f(x, dtype=None):
    work = np.float32 if dtype in ("float32", np.float32) else np.float64
    return x.astype(work, copy=False)
"""
        assert rules_of(src) == []


class TestSentinelSuppressRule:
    def test_blanket_except_around_sentinel_fires(self):
        src = """
def guarded(stepper, report, snapshot, sentinel):
    try:
        return sentinel.evaluate(stepper, report, snapshot)
    except Exception:
        return None
"""
        assert "sentinel-suppress" in rules_of(src)

    def test_bare_except_around_rollback_fires_both_rules(self):
        src = """
def rollback(stepper, snapshot):
    try:
        restore_state(stepper, snapshot)
    except:
        pass
"""
        assert rules_of(src) == ["bare-except", "sentinel-suppress"]

    def test_swallowed_step_rejection_fires(self):
        src = """
def drive(sim):
    try:
        capture_state(sim.stepper, sim.t)
        sim.step()
    except StepRejectedError:
        pass
"""
        assert rules_of(src) == ["sentinel-suppress"]

    def test_named_handling_with_recovery_passes(self):
        src = """
def drive(sim, log):
    try:
        capture_state(sim.stepper, sim.t)
        sim.step()
    except StepRejectedError as exc:
        log.error("step rejected: %s", exc.health)
        raise
"""
        assert rules_of(src) == []

    def test_catchall_without_sentinel_machinery_passes(self):
        src = """
def parse(text):
    try:
        return int(text)
    except Exception:
        return 0
"""
        assert rules_of(src) == []

    def test_suppression_comment_with_reason(self):
        src = """
def guarded(stepper, report, snapshot, sentinel):
    try:
        return sentinel.evaluate(stepper, report, snapshot)
    except Exception:  # repro-lint: disable=sentinel-suppress -- fuzz harness
        return None
"""
        assert rules_of(src) == []


class TestContractsPass:
    def test_conflicting_literal_dtype_fires(self):
        src = """
import numpy as np
from repro.analysis.contracts import checked

@checked(x="(n, 3) f8", out="(n,) f8")
def f(x):
    out = np.empty(x.shape[0], dtype=np.int32)
    return out
"""
        assert rules_of(src) == ["contract-dtype"]

    def test_matching_and_variable_dtypes_pass(self):
        src = """
import numpy as np
from repro.analysis.contracts import checked

@checked(x="(n, 3) f8", out="(n,) f8")
def f(x, work=np.float64):
    out = np.empty(x.shape[0], dtype=np.float64)
    tmp = out.astype(work)                   # variable dtype: fine
    return out
"""
        assert rules_of(src) == []


class TestPicklablePass:
    def test_nested_process_task_class_fires(self):
        src = """
from repro.runtime.executor import ProcessTask

def build():
    class Shard(ProcessTask):
        def __call__(self, item):
            return item
    return Shard()
"""
        assert rules_of(src) == ["picklable-task"]
        assert lines_of(src, "picklable-task") == [5]

    def test_module_level_process_task_passes(self):
        src = """
from repro.runtime.executor import ProcessTask

class Shard(ProcessTask):
    def __call__(self, item):
        return item.run()

RUN = Shard()
"""
        assert rules_of(src) == []

    def test_transitive_subclass_tracked(self):
        src = """
from repro.runtime.executor import ProcessTask

class Base(ProcessTask):
    pass

def build():
    class Shard(Base):
        def __call__(self, item):
            return item
    return Shard()
"""
        assert rules_of(src) == ["picklable-task"]

    def test_lambda_instance_state_fires(self):
        src = """
from repro.runtime.executor import ProcessTask

class Shard(ProcessTask):
    def __init__(self, scale):
        self.fn = lambda x: x * scale
"""
        assert rules_of(src) == ["picklable-task"]

    def test_lambda_on_process_map_fires(self):
        src = """
def fan_out(process_executor, items):
    return process_executor.map(lambda x: x * 2, items)
"""
        assert rules_of(src) == ["picklable-task"]

    def test_local_closure_on_process_map_fires(self):
        src = """
def fan_out(process_pool, items):
    total = []

    def task(x):
        return x * 2

    return process_pool.map(task, items)
"""
        assert rules_of(src) == ["picklable-task"]

    def test_module_level_task_on_process_map_passes(self):
        src = """
def run_shard(shard):
    return shard.run()

def fan_out(process_executor, items):
    return process_executor.map(run_shard, items)
"""
        assert rules_of(src) == []

    def test_generic_executor_closures_not_flagged(self):
        """Closures on a generic executor are legal — the process
        executor runs non-ProcessTask callables inline by design."""
        src = """
def fan_out(executor, items):
    return executor.map(lambda x: x * 2, items)
"""
        assert rules_of(src) == []

    def test_suppression_with_reason(self):
        src = """
def fan_out(process_executor, items):
    # repro-lint: disable=picklable-task — test fixture maps inline only
    return process_executor.map(lambda x: x * 2, items)
"""
        assert rules_of(src) == []


class TestSuppressions:
    SRC = """
def f(x):
    assert x
"""

    def test_inline_suppression_with_reason(self):
        src = self.SRC.replace(
            "assert x",
            "assert x  # repro-lint: disable=no-assert — exercised by "
            "test fixtures only")
        assert rules_of(src) == []

    def test_standalone_suppression_covers_next_line(self):
        src = """
def f(x):
    # repro-lint: disable=no-assert — fixture
    assert x
"""
        assert rules_of(src) == []

    def test_missing_reason_is_itself_a_violation(self):
        src = self.SRC.replace(
            "assert x", "assert x  # repro-lint: disable=no-assert")
        assert rules_of(src) == ["bad-suppression", "no-assert"]

    def test_wrong_rule_does_not_suppress(self):
        src = self.SRC.replace(
            "assert x",
            "assert x  # repro-lint: disable=bare-except — wrong rule")
        assert rules_of(src) == ["no-assert"]


class TestGlobalMutablePass:
    def test_module_level_dict_literal_fires(self):
        assert rules_of("REGISTRY = {}\n") == ["global-mutable"]

    def test_module_level_list_and_constructor_fire(self):
        src = "cache = []\nseen = set()\n"
        assert lines_of(src, "global-mutable") == [1, 2]

    def test_annotated_assignment_fires(self):
        src = "from typing import Dict\nB: Dict[str, int] = {}\n"
        assert rules_of(src) == ["global-mutable"]

    def test_comprehension_fires(self):
        assert rules_of("squares = [i * i for i in range(4)]\n") == \
            ["global-mutable"]

    def test_immutable_module_state_passes(self):
        src = ("FACES = ((0, 1), (1, 0))\n"
               "NAMES = frozenset({'a', 'b'})\n"
               "LIMIT = 128\n")
        assert rules_of(src) == []

    def test_dunder_all_exempt(self):
        assert rules_of("__all__ = ['a', 'b']\n") == []

    def test_function_and_class_locals_pass(self):
        src = ("def f():\n    cache = {}\n    return cache\n"
               "class C:\n    def __init__(self):\n"
               "        self.seen = set()\n")
        assert rules_of(src) == []

    def test_suppression_with_reason(self):
        src = ("# repro-lint: disable=global-mutable — import-time "
               "registry, read-only afterwards\nREGISTRY = {}\n")
        assert rules_of(src) == []

    def test_warn_once_bug_shape_fires(self):
        """The exact shape of the bug this rule exists for: a module
        global seen-set shared by every simulation in the process."""
        src = ("_seen = set()\n"
               "def warn_once(key, message):\n"
               "    if key in _seen:\n"
               "        return False\n"
               "    _seen.add(key)\n"
               "    return True\n")
        assert lines_of(src, "global-mutable") == [1]


class TestAcceptance:
    def test_src_tree_is_clean(self):
        assert lint_paths([str(_ROOT / "src")]) == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        assert lint_main([str(clean)]) == 0
        assert lint_main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "no-assert" in out

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("shared-write", "frozen-table", "contract-dtype"):
            assert rule in out

"""Boundary solver tests (paper Sec. 3): identities, solves, convergence."""
import numpy as np
import pytest

from repro.bie import BoundarySolver
from repro.config import NumericsOptions
from repro.kernels import stokes_slp_apply
from repro.patches import cube_sphere


@pytest.fixture(scope="module")
def opts():
    return NumericsOptions(patch_quad=7, check_order=5, upsample_eta=1,
                           check_r_factor=0.2, gmres_max_iter=40)


@pytest.fixture(scope="module")
def sphere_surface(opts):
    return cube_sphere(refine=0, options=opts)


@pytest.fixture(scope="module")
def laplace_solver(sphere_surface, opts):
    s = BoundarySolver(sphere_surface, kernel="laplace", options=opts)
    s.assemble()
    return s


class TestLaplaceOperator:
    def test_constant_density_identity(self, laplace_solver):
        A1 = laplace_solver.apply(np.ones(laplace_solver.N))
        assert np.abs(A1 - 1.0).max() < 5e-2

    def test_spherical_harmonic_eigenvalues(self, laplace_solver):
        # On the unit sphere A Y_l = (1/2 + 1/(2(2l+1))) Y_l.
        z = laplace_solver.coarse.points[:, 2]
        Az = laplace_solver.apply(z[:, None]).ravel()
        assert np.abs(Az - (2.0 / 3.0) * z).max() < 5e-2

    def test_assembled_matches_matrix_free(self, laplace_solver, rng):
        x = rng.normal(size=laplace_solver.N)
        assert np.abs(laplace_solver._A @ x -
                      laplace_solver.apply(x[:, None]).ravel()).max() < 1e-10

    def test_interior_dirichlet_solve(self, laplace_solver):
        x0 = np.array([2.5, 0.3, 0.1])
        uex = lambda p: 1.0 / np.linalg.norm(p - x0, axis=1)
        g = uex(laplace_solver.coarse.points)
        phi, rep = laplace_solver.solve(g)
        targets = np.array([[0.0, 0.0, 0.0], [0.4, 0.2, -0.1]])
        u = laplace_solver.evaluate(phi, targets)
        assert np.abs(u - uex(targets)).max() < 5e-3

    def test_near_surface_evaluation(self, laplace_solver):
        x0 = np.array([2.5, 0.3, 0.1])
        uex = lambda p: 1.0 / np.linalg.norm(p - x0, axis=1)
        g = uex(laplace_solver.coarse.points)
        phi, _ = laplace_solver.solve(g)
        trg = np.array([[0.0, 0.0, 0.97]])
        u = laplace_solver.evaluate(phi, trg)
        assert np.abs(u - uex(trg)).max() < 2e-2


class TestLaplaceConvergence:
    def test_error_decreases_with_refinement(self):
        # Parameters strong enough for the fine rule to resolve the check
        # distances (see DESIGN.md / bench_fig9 for the full study).
        conv_opts = NumericsOptions(patch_quad=7, check_order=5,
                                    upsample_eta=2, check_r_factor=0.15,
                                    gmres_max_iter=60)
        x0 = np.array([2.5, 0.3, 0.1])
        uex = lambda p: 1.0 / np.linalg.norm(p - x0, axis=1)
        targets = np.array([[0.0, 0.0, 0.0], [0.3, -0.2, 0.4]])
        errs = []
        for refine in (0, 1):
            s = cube_sphere(refine=refine, options=conv_opts)
            solver = BoundarySolver(s, kernel="laplace", options=conv_opts)
            g = uex(solver.coarse.points)
            phi, _ = solver.solve(g)
            u = solver.evaluate(phi, targets)
            errs.append(np.abs(u - uex(targets)).max())
        assert errs[1] < errs[0] / 2.0


class TestStokesSolver:
    @pytest.fixture(scope="class")
    def stokes_solver(self, sphere_surface, opts):
        s = BoundarySolver(sphere_surface, kernel="stokes", options=opts)
        s.assemble()
        return s

    def test_rank_completion_on_by_default(self, stokes_solver):
        assert stokes_solver.rank_completion

    def test_constant_density_identity(self, stokes_solver):
        c = np.array([0.4, -0.1, 0.2])
        phi = np.broadcast_to(c, (stokes_solver.N, 3)).copy()
        out = stokes_solver.apply(phi)
        # A[c] = c + n (int c.n dS) = c since int n dS = 0 on closed Gamma.
        assert np.abs(out - c).max() < 5e-2

    def test_interior_stokes_solve(self, stokes_solver):
        x0 = np.array([2.5, 0.3, 0.1])
        f0 = np.array([1.0, 2.0, -0.5])
        uex = lambda p: stokes_slp_apply(x0[None, :], f0[None, :], p)
        g = uex(stokes_solver.coarse.points)
        phi, rep = stokes_solver.solve(g.ravel())
        targets = np.array([[0.0, 0.0, 0.0], [0.3, 0.2, -0.2]])
        u = stokes_solver.evaluate(phi, targets)
        assert np.abs(u - uex(targets)).max() < 2e-2

    def test_gmres_iteration_cap(self, stokes_solver):
        g = np.zeros((stokes_solver.N, 3))
        g[:, 0] = stokes_solver.coarse.points[:, 2]
        phi, rep = stokes_solver.solve(g.ravel(), max_iter=10)
        assert rep.iterations <= 10

    def test_solve_report_fields(self, stokes_solver):
        g = np.zeros((stokes_solver.N, 3))
        phi, rep = stokes_solver.solve(g.ravel())
        assert rep.converged
        assert np.abs(phi).max() < 1e-12

"""Unit and property tests for the 1-D quadrature building blocks."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quadrature import (
    barycentric_matrix,
    barycentric_weights,
    chebyshev_lobatto_nodes,
    clenshaw_curtis,
    extrapolation_weights,
    gauss_legendre,
    interp_matrix_2d,
    tensor_clenshaw_curtis,
)


class TestClenshawCurtis:
    def test_weights_sum_to_interval_length(self):
        for n in (2, 5, 9, 16, 33):
            _, w = clenshaw_curtis(n)
            assert np.isclose(w.sum(), 2.0)

    def test_nodes_ascending_in_interval(self):
        x, _ = clenshaw_curtis(11)
        assert np.all(np.diff(x) > 0)
        assert x[0] == -1.0 and x[-1] == 1.0

    @pytest.mark.parametrize("n", [4, 8, 12])
    def test_polynomial_exactness(self, n):
        x, w = clenshaw_curtis(n)
        for deg in range(n):
            exact = (1.0 - (-1.0) ** (deg + 1)) / (deg + 1)
            assert np.isclose(w @ x ** deg, exact, atol=1e-13), deg

    def test_smooth_function_convergence(self):
        exact = np.sin(1.0) * 2  # integral of cos on [-1,1]
        errs = []
        for n in (5, 9, 17):
            x, w = clenshaw_curtis(n)
            errs.append(abs(w @ np.cos(x) - exact))
        assert errs[-1] < 1e-12

    def test_tensor_rule(self):
        nodes, w = tensor_clenshaw_curtis(6)
        assert nodes.shape == (36, 2)
        assert np.isclose(w.sum(), 4.0)
        # integrate x^2 * y^3 -> (2/3) * 0
        val = w @ (nodes[:, 0] ** 2 * nodes[:, 1] ** 3)
        assert np.isclose(val, 0.0, atol=1e-13)
        val = w @ (nodes[:, 0] ** 2 * nodes[:, 1] ** 2)
        assert np.isclose(val, 4.0 / 9.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            clenshaw_curtis(0)


class TestGaussLegendre:
    def test_exactness_degree_2n_minus_1(self):
        x, w = gauss_legendre(6)
        for deg in range(12):
            exact = (1.0 - (-1.0) ** (deg + 1)) / (deg + 1)
            assert np.isclose(w @ x ** deg, exact, atol=1e-13)

    def test_interval_mapping(self):
        x, w = gauss_legendre(8, 0.0, np.pi)
        assert np.isclose(w.sum(), np.pi)
        assert np.isclose(w @ np.sin(x), 2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            gauss_legendre(0)


class TestBarycentric:
    def test_interpolates_nodes_exactly(self):
        nodes = chebyshev_lobatto_nodes(9)
        M = barycentric_matrix(nodes, nodes)
        assert np.allclose(M, np.eye(9))

    def test_polynomial_reproduction(self):
        nodes = chebyshev_lobatto_nodes(7)
        t = np.linspace(-1, 1, 33)
        M = barycentric_matrix(nodes, t)
        f = 3 * nodes ** 5 - nodes ** 2 + 0.5
        exact = 3 * t ** 5 - t ** 2 + 0.5
        assert np.allclose(M @ f, exact, atol=1e-12)

    @given(st.integers(min_value=3, max_value=10),
           st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_property_partition_of_unity(self, n, t):
        nodes = chebyshev_lobatto_nodes(n)
        M = barycentric_matrix(nodes, np.array([t]))
        assert np.isclose(M.sum(), 1.0, atol=1e-9)

    def test_2d_tensor_interpolation(self):
        n = 6
        nodes = chebyshev_lobatto_nodes(n)
        U, V = np.meshgrid(nodes, nodes, indexing="ij")
        f = (U ** 2 * V + 0.3 * V ** 3).ravel()
        targets = np.array([[0.21, -0.43], [0.9, 0.9], [-1.0, 1.0]])
        M = interp_matrix_2d(n, targets)
        exact = targets[:, 0] ** 2 * targets[:, 1] + 0.3 * targets[:, 1] ** 3
        assert np.allclose(M @ f, exact, atol=1e-12)


class TestExtrapolation:
    def test_polynomial_exact(self):
        R, r, p = 0.3, 0.1, 5
        e = extrapolation_weights(R, r, p)
        t = R + r * np.arange(p + 1)
        for deg in range(p + 1):
            vals = t ** deg
            target = 0.0 ** deg if deg > 0 else 1.0
            assert np.isclose(e @ vals, target, atol=1e-9), deg

    def test_scale_invariance(self):
        e1 = extrapolation_weights(1.0, 1.0, 6)
        e2 = extrapolation_weights(0.01, 0.01, 6)
        assert np.allclose(e1, e2, atol=1e-6)

    def test_interpolation_inside_range(self):
        e = extrapolation_weights(0.1, 0.1, 4, target_t=0.25)
        t = 0.1 + 0.1 * np.arange(5)
        vals = 2.0 * t - 1.0
        assert np.isclose(e @ vals, 2 * 0.25 - 1)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            extrapolation_weights(0.1, 0.1, -1)


class TestBarycentricWeights:
    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_property_weights_alternate_sign_on_sorted_nodes(self, n):
        nodes = np.sort(np.random.default_rng(n).uniform(-1, 1, n))
        w = barycentric_weights(nodes)
        assert np.all(np.sign(w[:-1]) == -np.sign(w[1:]))

"""Tests for the GMRES implementation, LU layers and block helpers."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg import (LUFactorization, StackedLUFactorization,
                          flatten_fields, gmres, unflatten_fields)


class TestStackedLU:
    def test_bit_identical_to_per_slice_lu(self, rng):
        A = rng.normal(size=(4, 30, 30)) + 30.0 * np.eye(30)
        b = rng.normal(size=(4, 30))
        stacked = StackedLUFactorization(A)
        per = [LUFactorization(A[i]) for i in range(4)]
        x = stacked.solve(b)
        for i in range(4):
            # same getrf/getrs kernels on the same matrices: exact, not
            # merely close
            assert np.array_equal(x[i], per[i].solve(b[i]))
            assert np.array_equal(stacked.handle(i).solve(b[i]),
                                  per[i].solve(b[i]))

    def test_multiple_right_hand_sides(self, rng):
        A = rng.normal(size=(2, 12, 12)) + 12.0 * np.eye(12)
        B = rng.normal(size=(12, 5))
        stacked = StackedLUFactorization([A[0], A[1]])
        assert np.array_equal(stacked.solve_one(1, B),
                              LUFactorization(A[1]).solve(B))

    def test_singular_slice_warns_like_lu_factor(self, rng):
        # scipy's lu_factor warns (LinAlgWarning) on an exactly-singular
        # matrix and keeps going; the stacked path must match so the
        # batched_lu toggle never changes whether a run completes
        scipy_linalg = pytest.importorskip("scipy.linalg")
        A = rng.normal(size=(2, 6, 6)) + 6.0 * np.eye(6)
        A[1, 0, :] = 0.0
        A[1, :, 0] = 0.0
        with pytest.warns(scipy_linalg.LinAlgWarning):
            stacked = StackedLUFactorization(A)
        b = rng.normal(size=6)
        # healthy slices are unaffected
        assert np.array_equal(stacked.solve_one(0, b),
                              LUFactorization(A[0]).solve(b))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            StackedLUFactorization(rng.normal(size=(3, 4, 5)))
        with pytest.raises(ValueError):
            StackedLUFactorization(rng.normal(size=(4, 4)))
        st_ = StackedLUFactorization(np.eye(3)[None].repeat(2, axis=0))
        with pytest.raises(ValueError):
            st_.solve(np.zeros((3, 3)))
        assert len(st_) == 2


class TestGMRES:
    def test_matches_direct_solve(self, rng):
        n = 40
        A = np.eye(n) + 0.1 * rng.normal(size=(n, n))
        b = rng.normal(size=n)
        res = gmres(lambda x: A @ x, b, tol=1e-12, max_iter=n)
        assert res.converged
        assert np.allclose(res.x, np.linalg.solve(A, b), atol=1e-8)

    def test_iteration_cap_respected(self, rng):
        n = 60
        A = np.eye(n) + 0.5 * rng.normal(size=(n, n))
        b = rng.normal(size=n)
        res = gmres(lambda x: A @ x, b, tol=1e-14, max_iter=5)
        assert res.iterations <= 5
        assert not res.converged or res.final_residual <= 1e-14

    def test_zero_rhs(self):
        res = gmres(lambda x: x, np.zeros(7))
        assert res.converged
        assert np.all(res.x == 0)
        assert res.iterations == 0

    def test_identity_converges_in_one(self, rng):
        b = rng.normal(size=12)
        res = gmres(lambda x: x, b, tol=1e-12, max_iter=5)
        assert res.converged
        assert res.iterations <= 1
        assert np.allclose(res.x, b)

    def test_restart_still_converges(self, rng):
        n = 30
        A = np.diag(np.linspace(1, 3, n))
        b = rng.normal(size=n)
        res = gmres(lambda x: A @ x, b, tol=1e-10, max_iter=100, restart=7)
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-8)

    def test_initial_guess_used(self, rng):
        n = 25
        A = np.eye(n) * 2.0
        b = rng.normal(size=n)
        res = gmres(lambda x: A @ x, b, x0=b / 2.0, tol=1e-12)
        assert res.converged
        assert res.iterations == 0

    def test_residual_history_monotone_within_cycle(self, rng):
        n = 50
        A = np.eye(n) + 0.2 * rng.normal(size=(n, n))
        b = rng.normal(size=n)
        res = gmres(lambda x: A @ x, b, tol=1e-13, max_iter=n)
        r = np.array(res.residuals)
        assert np.all(np.diff(r[:-1]) <= 1e-12)

    def test_callback_invoked(self, rng):
        calls = []
        A = np.diag(np.arange(1.0, 11.0))
        gmres(lambda x: A @ x, np.ones(10), tol=1e-12,
              callback=lambda k, r: calls.append((k, r)))
        assert calls and calls[0][0] == 1

    def test_spd_large_spectrum(self, rng):
        n = 80
        Q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        A = Q @ np.diag(np.linspace(0.5, 10.0, n)) @ Q.T
        b = rng.normal(size=n)
        res = gmres(lambda x: A @ x, b, tol=1e-10, max_iter=n)
        assert res.converged


class TestBlocks:
    def test_roundtrip(self, rng):
        fields = [rng.normal(size=(4, 3)), rng.normal(size=7),
                  rng.normal(size=(2, 2, 2))]
        flat, shapes = flatten_fields(fields)
        back = unflatten_fields(flat, shapes)
        for a, b in zip(fields, back):
            assert np.allclose(a, b)

    def test_empty(self):
        flat, shapes = flatten_fields([])
        assert flat.size == 0
        assert unflatten_fields(flat, shapes) == []

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            unflatten_fields(np.zeros(5), [(2, 3)])

    @given(st.lists(st.integers(min_value=1, max_value=6),
                    min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip_any_shapes(self, sizes):
        rng = np.random.default_rng(0)
        fields = [rng.normal(size=(s, 3)) for s in sizes]
        flat, shapes = flatten_fields(fields)
        assert flat.size == sum(3 * s for s in sizes)
        back = unflatten_fields(flat, shapes)
        for a, b in zip(fields, back):
            assert np.array_equal(a, b)

"""Octree and kernel-independent treecode tests."""
import numpy as np
import pytest

from repro.fmm import KernelIndependentTreecode, Octree, laplace_slp_fmm, stokes_slp_fmm
from repro.kernels import laplace_slp_apply, stokes_slp_apply


class TestOctree:
    def test_every_point_in_exactly_one_leaf(self, rng):
        pts = rng.normal(size=(500, 3))
        tree = Octree(pts, max_leaf=32)
        seen = np.concatenate([tree.nodes[l].indices for l in tree.leaves()])
        assert np.array_equal(np.sort(seen), np.arange(500))

    def test_leaf_capacity(self, rng):
        pts = rng.normal(size=(1000, 3))
        tree = Octree(pts, max_leaf=40)
        for l in tree.leaves():
            assert tree.nodes[l].indices.size <= 40

    def test_children_inside_parent(self, rng):
        pts = rng.uniform(size=(300, 3))
        tree = Octree(pts, max_leaf=20)
        for n in tree.nodes:
            if n.parent >= 0:
                p = tree.nodes[n.parent]
                assert np.all(np.abs(n.center - p.center) <= p.half + 1e-12)
                assert np.isclose(n.half, 0.5 * p.half)

    def test_points_inside_their_leaf_box(self, rng):
        pts = rng.normal(size=(200, 3))
        tree = Octree(pts, max_leaf=16)
        for l in tree.leaves():
            node = tree.nodes[l]
            d = np.abs(pts[node.indices] - node.center)
            assert np.all(d <= node.half * (1 + 1e-9))

    def test_single_point(self):
        tree = Octree(np.zeros((1, 3)))
        assert tree.n_nodes == 1


class TestTreecode:
    def test_stokes_matches_direct(self, rng):
        n = 3000
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        trg = rng.normal(size=(60, 3)) * 1.5
        ref = stokes_slp_apply(src, den, trg)
        u = stokes_slp_fmm(src, den, trg)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 2e-2

    def test_laplace_matches_direct(self, rng):
        n = 3000
        src = rng.normal(size=(n, 3))
        q = rng.normal(size=n) / n
        trg = rng.normal(size=(60, 3)) * 1.5
        ref = laplace_slp_apply(src, q, trg)
        u = laplace_slp_fmm(src, q, trg)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 5e-3

    def test_accuracy_improves_with_equiv_resolution(self, rng):
        n = 2000
        src = rng.normal(size=(n, 3))
        q = rng.normal(size=n) / n
        trg = rng.normal(size=(40, 3)) * 2.0
        ref = laplace_slp_apply(src, q, trg)
        errs = []
        for e in (3, 6):
            u = laplace_slp_fmm(src, q, trg, equiv_points_per_edge=e)
            errs.append(np.abs(u - ref).max())
        assert errs[1] < errs[0] * 0.5

    def test_far_targets_use_multipoles(self, rng):
        n = 2000
        src = rng.normal(size=(n, 3)) * 0.5
        den = rng.normal(size=(n, 3)) / n
        trg = rng.normal(size=(50, 3)) + 20.0
        tc = KernelIndependentTreecode(src, den, "stokes_slp")
        u = tc.evaluate(trg)
        assert tc.stats["p2p"] == 0       # everything well-separated
        ref = stokes_slp_apply(src, den, trg)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 1e-3

    def test_self_evaluation_skips_zero_distance(self, rng):
        n = 500
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        tc = KernelIndependentTreecode(src, den, "stokes_slp", max_leaf=64)
        u = tc.evaluate(src)
        ref = stokes_slp_apply(src, den, src)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 5e-2

    def test_linearity(self, rng):
        n = 800
        src = rng.normal(size=(n, 3))
        q1 = rng.normal(size=n)
        q2 = rng.normal(size=n)
        trg = rng.normal(size=(20, 3)) * 3
        u = laplace_slp_fmm(src, q1 + q2, trg)
        u12 = laplace_slp_fmm(src, q1, trg) + laplace_slp_fmm(src, q2, trg)
        assert np.abs(u - u12).max() < 1e-10 * max(1.0, np.abs(u).max()) + 1e-8

"""Octree, kernel-independent treecode, and global KIFMM tests."""
import numpy as np
import pytest

from repro.fmm import (GlobalKIFMM, KernelIndependentTreecode, Octree,
                       laplace_slp_fmm, stokes_slp_fmm,
                       stokes_slp_global_fmm)
from repro.fmm.kifmm import _apply_m2l, _m2l_matrix, _offset_symmetry
from repro.kernels import laplace_slp_apply, stokes_slp_apply
from repro.runtime.executor import CheckedExecutor


class TestOctree:
    def test_every_point_in_exactly_one_leaf(self, rng):
        pts = rng.normal(size=(500, 3))
        tree = Octree(pts, max_leaf=32)
        seen = np.concatenate([tree.nodes[l].indices for l in tree.leaves()])
        assert np.array_equal(np.sort(seen), np.arange(500))

    def test_leaf_capacity(self, rng):
        pts = rng.normal(size=(1000, 3))
        tree = Octree(pts, max_leaf=40)
        for l in tree.leaves():
            assert tree.nodes[l].indices.size <= 40

    def test_children_inside_parent(self, rng):
        pts = rng.uniform(size=(300, 3))
        tree = Octree(pts, max_leaf=20)
        for n in tree.nodes:
            if n.parent >= 0:
                p = tree.nodes[n.parent]
                assert np.all(np.abs(n.center - p.center) <= p.half + 1e-12)
                assert np.isclose(n.half, 0.5 * p.half)

    def test_points_inside_their_leaf_box(self, rng):
        pts = rng.normal(size=(200, 3))
        tree = Octree(pts, max_leaf=16)
        for l in tree.leaves():
            node = tree.nodes[l]
            d = np.abs(pts[node.indices] - node.center)
            assert np.all(d <= node.half * (1 + 1e-9))

    def test_single_point(self):
        tree = Octree(np.zeros((1, 3)))
        assert tree.n_nodes == 1


class TestOctreeStructure:
    """Level-linearized Morton storage and adaptive-FMM list invariants."""

    def test_level_nodes_partition_in_morton_order(self, rng):
        tree = Octree(rng.normal(size=(600, 3)), max_leaf=16)
        keys = tree.morton_keys()
        seen = []
        for level, ids in enumerate(tree.level_nodes()):
            assert np.all(tree.levels[ids] == level)
            assert np.all(np.diff(keys[ids].astype(np.int64)) > 0)
            seen.append(ids)
        seen = np.concatenate(seen)
        assert np.array_equal(np.sort(seen), np.arange(tree.n_nodes))

    def test_anchor_matches_geometry(self, rng):
        tree = Octree(rng.uniform(size=(400, 3)), max_leaf=16)
        root = tree.nodes[0]
        lo = root.center - root.half
        for n in tree.nodes:
            width = 2.0 * root.half / (1 << n.level)
            expect = lo + (np.asarray(n.anchor) + 0.5) * width
            assert np.allclose(n.center, expect, atol=1e-9 * root.half)

    def test_adjacent_matches_float_geometry(self, rng):
        tree = Octree(rng.normal(size=(300, 3)), max_leaf=24)
        ids = rng.choice(tree.n_nodes, size=min(40, tree.n_nodes),
                         replace=False)
        for a in ids:
            for b in ids:
                na, nb = tree.nodes[a], tree.nodes[b]
                gap = np.abs(na.center - nb.center) - (na.half + nb.half)
                geom = bool(np.all(gap <= 1e-9 * tree.nodes[0].half))
                assert tree.adjacent(int(a), int(b)) == geom, (a, b)

    def test_leaf_of_points_matches_membership(self, rng):
        pts = rng.normal(size=(500, 3))
        tree = Octree(pts, max_leaf=20)
        owner = np.empty(500, dtype=np.int64)
        for l in tree.leaves():
            owner[tree.nodes[l].indices] = l
        assert np.array_equal(tree.leaf_of_points(pts), owner)

    def test_leaf_of_points_outside_root(self, rng):
        tree = Octree(rng.uniform(size=(100, 3)), max_leaf=16)
        far = np.array([[5.0, 5.0, 5.0], [-4.0, 0.5, 0.5]])
        assert np.array_equal(tree.leaf_of_points(far), [-1, -1])

    def test_interaction_lists_cover_every_source_once(self, rng):
        """Every source reaches every target leaf through exactly one of
        U (P2P), W (M2P), V-at-an-ancestor (M2L), or X-at-an-ancestor
        (P2L) — the completeness/disjointness property the two-pass FMM
        rests on, checked by brute force."""
        n = 400
        tree = Octree(rng.normal(size=(n, 3)), max_leaf=12)
        lists = tree.interaction_lists()
        for t in tree.leaves():
            cnt = np.zeros(n, dtype=np.int64)
            for u in lists.U[t]:
                cnt[tree.nodes[u].indices] += 1
            for w in lists.W[t]:
                cnt[tree.subtree_indices(w)] += 1
            a = t
            while a >= 0:
                for v in lists.V[a]:
                    cnt[tree.subtree_indices(v)] += 1
                for x in lists.X[a]:
                    cnt[tree.nodes[x].indices] += 1
                a = tree.nodes[a].parent
            assert np.all(cnt == 1), f"leaf {t}: coverage {np.unique(cnt)}"

    def test_lists_are_well_separated(self, rng):
        """V and W partners are never adjacent to the target box (the
        separation the equivalent-density approximation needs)."""
        tree = Octree(rng.normal(size=(300, 3)), max_leaf=12)
        lists = tree.interaction_lists()
        for b in range(tree.n_nodes):
            for v in lists.V[b]:
                assert not tree.adjacent(b, v)
                assert tree.nodes[v].level == tree.nodes[b].level
            for w in lists.W[b]:
                assert not tree.adjacent(b, w)

    def test_v_groups_offsets(self, rng):
        tree = Octree(rng.normal(size=(500, 3)), max_leaf=12)
        lists = tree.interaction_lists()
        anchors = tree.anchors
        groups = lists.v_groups(anchors)
        total = 0
        for off, (tgt, src) in groups.items():
            assert max(abs(o) for o in off) <= 3
            assert np.array_equal(anchors[src] - anchors[tgt],
                                  np.broadcast_to(off, (len(tgt), 3)))
            # a box has at most one V partner per offset
            assert len(np.unique(tgt)) == len(tgt)
            total += len(tgt)
        assert total == sum(len(v) for v in lists.V)


class TestM2LSymmetry:
    """The 316 V offsets route through 16 canonical operators via cube
    symmetries; the conjugated operator must equal the directly-built
    one for every kernel."""

    OFFSETS = [(-2, 1, 3), (3, -3, 2), (0, -2, 0), (1, 2, -3), (-3, 0, -1)]

    def test_canonical_form(self):
        for off in self.OFFSETS:
            d_star, r9 = _offset_symmetry(off)
            R = np.array(r9).reshape(3, 3)
            assert np.array_equal(R @ off, d_star)
            assert d_star[0] >= d_star[1] >= d_star[2] >= 0
            assert np.array_equal(np.abs(R @ R.T), np.eye(3))

    @pytest.mark.parametrize("kernel,ncomp", [("stokes_slp", 3),
                                              ("laplace_slp", 1)])
    def test_conjugated_matches_direct(self, rng, kernel, ncomp):
        e = 4
        m = 6 * e * e - 12 * e + 8
        Q = rng.normal(size=(3, m, ncomp))
        for off in self.OFFSETS:
            via_sym = _apply_m2l(kernel, e, 1.0, off, Q)
            M = _m2l_matrix(kernel, e, 1.0, off)
            direct = (Q.reshape(3, -1) @ M.T).reshape(via_sym.shape)
            scale = max(np.abs(direct).max(), 1.0)
            assert np.abs(via_sym - direct).max() < 1e-9 * scale, off


class TestGlobalKIFMM:
    def test_stokes_matches_direct(self, rng):
        n = 4000
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        trg = rng.normal(size=(80, 3)) * 1.2
        ref = stokes_slp_apply(src, den, trg)
        u = stokes_slp_global_fmm(src, den, trg)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 1e-3

    def test_laplace_matches_direct(self, rng):
        n = 4000
        src = rng.normal(size=(n, 3))
        q = rng.normal(size=n) / n
        trg = rng.normal(size=(80, 3)) * 1.2
        ref = laplace_slp_apply(src, q, trg)
        fmm = GlobalKIFMM(src, q.reshape(-1, 1), "laplace_slp")
        u = fmm.evaluate(trg).ravel()
        assert np.abs(u - ref).max() / np.abs(ref).max() < 1e-3

    def test_self_evaluation(self, rng):
        n = 3000
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        fmm = GlobalKIFMM(src, den, "stokes_slp", max_leaf=64)
        u = fmm.evaluate(src)
        ref = stokes_slp_apply(src, den, src)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 1e-3

    def test_accuracy_improves_with_equiv_resolution(self, rng):
        n = 3000
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        trg = rng.normal(size=(60, 3))
        ref = stokes_slp_apply(src, den, trg)
        errs = []
        for e in (4, 6):
            fmm = GlobalKIFMM(src, den, "stokes_slp",
                              equiv_points_per_edge=e)
            errs.append(np.abs(fmm.evaluate(trg) - ref).max())
        assert errs[1] < errs[0] * 0.5

    def test_targets_outside_root_cube(self, rng):
        """Targets outside every leaf fall back to the MAC descent."""
        n = 2000
        src = rng.normal(size=(n, 3)) * 0.5
        den = rng.normal(size=(n, 3)) / n
        trg = rng.normal(size=(40, 3)) + 15.0
        fmm = GlobalKIFMM(src, den, "stokes_slp")
        u = fmm.evaluate(trg)
        ref = stokes_slp_apply(src, den, trg)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 1e-3

    def test_stats_counters(self, rng):
        n = 3000
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        fmm = GlobalKIFMM(src, den, "stokes_slp", max_leaf=64)
        fmm.evaluate(src)
        assert set(fmm.stats) == {"p2p", "m2p", "m2l", "l2p", "p2l"}
        assert fmm.stats["p2p"] > 0 and fmm.stats["m2l"] > 0
        # near field bounded well below brute force
        assert fmm.stats["p2p"] < 0.5 * n * n

    def test_threaded_checked_bit_identical_to_serial(self, rng):
        """The per-box tasks only write box-indexed state, so the
        checked executor's frozen-table and rerun probes pass and the
        threaded result is bitwise the serial result."""
        n = 3000
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        trg = rng.normal(size=(200, 3))
        serial = GlobalKIFMM(src, den, "stokes_slp", max_leaf=64)
        u_serial = serial.evaluate(trg)
        checked = GlobalKIFMM(src, den, "stokes_slp", max_leaf=64,
                              executor=CheckedExecutor(workers=2))
        u_checked = checked.evaluate(trg)
        assert u_serial.tobytes() == u_checked.tobytes()
        assert serial.stats == checked.stats


class TestTreecode:
    def test_stokes_matches_direct(self, rng):
        n = 3000
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        trg = rng.normal(size=(60, 3)) * 1.5
        ref = stokes_slp_apply(src, den, trg)
        u = stokes_slp_fmm(src, den, trg)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 2e-2

    def test_laplace_matches_direct(self, rng):
        n = 3000
        src = rng.normal(size=(n, 3))
        q = rng.normal(size=n) / n
        trg = rng.normal(size=(60, 3)) * 1.5
        ref = laplace_slp_apply(src, q, trg)
        u = laplace_slp_fmm(src, q, trg)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 5e-3

    def test_accuracy_improves_with_equiv_resolution(self, rng):
        n = 2000
        src = rng.normal(size=(n, 3))
        q = rng.normal(size=n) / n
        trg = rng.normal(size=(40, 3)) * 2.0
        ref = laplace_slp_apply(src, q, trg)
        errs = []
        for e in (3, 6):
            u = laplace_slp_fmm(src, q, trg, equiv_points_per_edge=e)
            errs.append(np.abs(u - ref).max())
        assert errs[1] < errs[0] * 0.5

    def test_far_targets_use_multipoles(self, rng):
        n = 2000
        src = rng.normal(size=(n, 3)) * 0.5
        den = rng.normal(size=(n, 3)) / n
        trg = rng.normal(size=(50, 3)) + 20.0
        tc = KernelIndependentTreecode(src, den, "stokes_slp")
        u = tc.evaluate(trg)
        assert tc.stats["p2p"] == 0       # everything well-separated
        ref = stokes_slp_apply(src, den, trg)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 1e-3

    def test_self_evaluation_skips_zero_distance(self, rng):
        n = 500
        src = rng.normal(size=(n, 3))
        den = rng.normal(size=(n, 3)) / n
        tc = KernelIndependentTreecode(src, den, "stokes_slp", max_leaf=64)
        u = tc.evaluate(src)
        ref = stokes_slp_apply(src, den, src)
        assert np.abs(u - ref).max() / np.abs(ref).max() < 5e-2

    def test_linearity(self, rng):
        n = 800
        src = rng.normal(size=(n, 3))
        q1 = rng.normal(size=n)
        q2 = rng.normal(size=n)
        trg = rng.normal(size=(20, 3)) * 3
        u = laplace_slp_fmm(src, q1 + q2, trg)
        u12 = laplace_slp_fmm(src, q1, trg) + laplace_slp_fmm(src, q2, trg)
        assert np.abs(u - u12).max() < 1e-10 * max(1.0, np.abs(u).max()) + 1e-8

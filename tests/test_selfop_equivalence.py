"""Cross-path operator-equivalence suite for the singular self-interaction.

The dense self-interaction operator has four independently implemented
routes: the seed re-synthesis evaluation (``apply_reference``), the fused
single-pass assembly, the fused *table* assembly (memory-gated), and the
FFT-diagonalized block-circulant assembly. This suite pins them against
each other across orders and shapes — including a randomly perturbed
(non-symmetric) surface, which exercises the claim that the circulant
route's structure lives in the parametrization, not the geometry — and
checks that the refresh-amortization policy (dilation rescale + gated
Kabsch conjugation) behaves identically under every assembly mode.

It also covers the companions that ride on the same machinery: the
stacked same-order group assembly (``CellBatch.assemble_selfops``), the
stacked getrf/getrs direct solves (``NumericsOptions.batched_lu``), the
one-time fused-table budget warning, the cylindrical-frame block
circulance of an axisymmetric surface (the geometric limit of the
structure), and an order-12 scene that the fused-table gate previously
made impractical (``slow`` marker; the default CI lane runs
``-m "not slow"``).
"""
import logging

import numpy as np
import pytest

from repro.config import NumericsOptions, ReproConfig
from repro.core.cellbatch import CellBatch
from repro.core.simulation import Simulation
from repro.physics.terms import Bending, Gravity, Tension
from repro.surfaces import SpectralSurface, biconcave_rbc, ellipsoid, sphere
from repro.vesicle import SingularSelfInteraction, assemble_circulant
from repro.vesicle.self_interaction import _RotationTables

#: The assembly routes must agree pairwise to this (issue acceptance).
TOL = 1e-10

SHAPES = ("sphere", "ellipsoid", "rbc", "perturbed")


def order_params():
    """Orders {4, 6, 8, 10}; order 10 (the fused-table budget edge) only
    in the full lane."""
    return [pytest.param(o, marks=pytest.mark.slow) if o >= 10 else o
            for o in (4, 6, 8, 10)]


def make_shape(name: str, order: int) -> SpectralSurface:
    if name == "sphere":
        return sphere(1.1, order=order)
    if name == "ellipsoid":
        return ellipsoid(1.0, 1.25, 0.8, order=order)
    if name == "rbc":
        return biconcave_rbc(1.0, order=order)
    assert name == "perturbed"
    # Seeded random band-limited bump of the RBC: no symmetry left, so
    # nothing in the assembly can lean on axisymmetric geometry.
    base = biconcave_rbc(1.0, order=order)
    rng = np.random.default_rng(100 + order)
    lmax = min(3, order)
    c = np.zeros((3, order + 1, 2 * order + 1), dtype=complex)
    for comp in range(3):
        for l in range(lmax + 1):
            for m in range(l + 1):
                z = rng.standard_normal() + 1j * rng.standard_normal()
                if m == 0:
                    z = complex(z.real, 0.0)
                c[comp, l, order + m] = z
                c[comp, l, order - m] = (-1.0) ** m * np.conj(z)
    bump = np.moveaxis(base.transform.inverse(c), 0, -1)
    bump *= 0.08 / np.abs(bump).max()
    return SpectralSurface(base.X + bump, order)


def fused_ops(surf, viscosity=1.0, refresh_interval=1, table=True):
    """The fused route twice: with its table (when in budget) and with
    the table force-rejected (the staged single-pass fallback).
    ``table=False`` skips the table-backed operator entirely — its slot
    comes back ``None`` — so high orders never build the table just to
    discard it (at order 10 it is the ~240 MB budget edge, and the
    lru-cached tables would keep it resident for the whole session)."""
    with_table = None
    if table:
        with_table = SingularSelfInteraction(
            surf, viscosity=viscosity, refresh_interval=refresh_interval,
            assembly="fused")
    saved_budget = _RotationTables.FUSED_TABLE_BUDGET
    try:
        # budget 0 short-circuits fused_table() before it consults the
        # cached table, so an already-built table is left untouched
        _RotationTables.FUSED_TABLE_BUDGET = 0
        single_pass = SingularSelfInteraction(
            surf, viscosity=viscosity, refresh_interval=refresh_interval,
            assembly="fused")
    finally:
        _RotationTables.FUSED_TABLE_BUDGET = saved_budget
    return with_table, single_pass


class TestAssemblyRouteEquivalence:
    @pytest.mark.parametrize("order", order_params())
    @pytest.mark.parametrize("shape", SHAPES)
    def test_routes_agree(self, order, shape):
        surf = make_shape(shape, order)
        mu = 1.3
        circ = SingularSelfInteraction(surf, viscosity=mu,
                                       assembly="circulant")
        # The fused table at order 10 is the 240 MB budget edge; build it
        # only up to order 8 and keep the staged single-pass route (the
        # same contraction without the table) everywhere.
        if order <= 8:
            fused, single = fused_ops(surf, viscosity=mu)
            assert fused.tables.fused_table() is not None
            routes = {"fused-table": fused, "fused-single-pass": single}
        else:
            _, single = fused_ops(surf, viscosity=mu, table=False)
            routes = {"fused-single-pass": single}
        for name, op in routes.items():
            err = np.abs(op.matrix - circ.matrix).max()
            assert err <= TOL, f"circulant vs {name}: {err:.2e}"
        # ... and against the seed re-synthesis evaluation.
        rng = np.random.default_rng(order)
        f = rng.standard_normal((surf.grid.nlat, surf.grid.nphi, 3))
        assert np.abs(circ.apply(f) - circ.apply_reference(f)).max() <= TOL

    def test_auto_resolves_to_circulant(self):
        surf = sphere(1.0, order=4)
        op = SingularSelfInteraction(surf)
        assert op.assembly_mode == "circulant"
        with pytest.raises(ValueError, match="assembly"):
            SingularSelfInteraction(surf, assembly="blockwise")

    def test_config_validates_assembly_mode(self):
        with pytest.raises(ValueError, match="selfop_assembly"):
            ReproConfig(numerics=NumericsOptions(selfop_assembly="nope"))


class TestCylindricalCirculance:
    def test_surface_of_revolution_operator_is_block_circulant(self):
        """The geometric limit the issue names: in cylindrical vector
        components about the polar axis, the operator of a surface of
        revolution is block-circulant in the *target* longitude (moving
        the target around its ring is a symmetry of the whole geometry).
        The general-shape assembly never relies on this — the ellipsoid
        control below breaks it — but it must hold on a sphere."""
        surf = sphere(1.2, order=6)
        Mc = self._cylindrical_blocks(surf)
        nphi = surf.grid.nphi
        for t in range(1, nphi):
            rolled = np.roll(Mc[:, 0], shift=t, axis=3)
            assert np.abs(Mc[:, t] - rolled).max() <= TOL

    def test_nonaxisymmetric_control_is_not_circulant(self):
        surf = ellipsoid(1.0, 1.4, 0.8, order=6)
        Mc = self._cylindrical_blocks(surf)
        t = surf.grid.nphi // 3
        rolled = np.roll(Mc[:, 0], shift=t, axis=3)
        assert np.abs(Mc[:, t] - rolled).max() > 1e-3

    @staticmethod
    def _cylindrical_blocks(surf):
        op = SingularSelfInteraction(surf, assembly="circulant")
        grid = surf.grid
        n = grid.n_points
        M = op.matrix.reshape(grid.nlat, grid.nphi, 3, grid.nlat,
                              grid.nphi, 3)
        U = surf.cylindrical_frames()
        return np.einsum("itak,itkjslb->itajsb", U,
                         np.einsum("itkjsl,jsbl->itkjslb", M, U),
                         optimize=True)


class TestRefreshPolicyAcrossModes:
    MODES = ("fused", "circulant")

    def _ops(self, interval=3):
        ops = {}
        for mode in self.MODES:
            surf = biconcave_rbc(1.0, order=5)
            ops[mode] = SingularSelfInteraction(
                surf, refresh_interval=interval, assembly=mode)
        return ops

    @staticmethod
    def _move(op, motion):
        op.surface.set_positions(motion(op.surface.X))
        return op.refresh()

    def test_amortization_and_kabsch_identical_under_every_mode(self):
        ops = self._ops(interval=3)
        angle = 0.04                      # > KABSCH_MIN_ANGLE: conjugates
        R = np.array([[np.cos(angle), -np.sin(angle), 0.0],
                      [np.sin(angle), np.cos(angle), 0.0],
                      [0.0, 0.0, 1.0]])
        rng = np.random.default_rng(3)
        noise = 1e-3 * rng.standard_normal((6, 12, 3))
        motions = [
            lambda X: 1.03 * X + np.array([0.2, -0.1, 0.05]),  # scale+shift
            lambda X: (X - X.mean((0, 1))) @ R.T + X.mean((0, 1)) + noise,
            lambda X: X + np.array([0.0, 0.3, 0.0]),   # due: full reassembly
            lambda X: X * 0.99,
        ]
        fulls = {mode: [] for mode in self.MODES}
        for k, motion in enumerate(motions):
            mats = {}
            for mode, op in ops.items():
                fulls[mode].append(self._move(op, motion))
                mats[mode] = op.matrix.copy()
            assert np.abs(mats["fused"] - mats["circulant"]).max() <= TOL, \
                f"refresh {k}"
        # identical full-reassembly schedule (policy state is shared
        # logic, not per-route)
        assert fulls["fused"] == fulls["circulant"] == [False, False, True,
                                                        False]

    def test_forced_full_identical_under_every_mode(self):
        ops = self._ops(interval=4)
        for op in ops.values():
            op.surface.set_positions(op.surface.X * 1.1)
            assert op.refresh(full=True) is True
        assert np.abs(ops["fused"].matrix
                      - ops["circulant"].matrix).max() <= TOL


class TestStackedGroupAssembly:
    def _cells(self, n=3, order=6):
        return [biconcave_rbc(1.0, center=(2.3 * k, 0.1 * k, 0.0),
                              order=order) for k in range(n)]

    def test_stacked_slices_match_per_cell(self):
        cells = self._cells()
        ops = [SingularSelfInteraction(c, assembly="circulant")
               for c in cells]
        M, X_rot, w_rot = assemble_circulant(ops[0].tables, cells, 1.0)
        for i, op in enumerate(ops):
            assert np.abs(M[i] - op.matrix).max() <= 1e-14
            assert np.abs(X_rot[i] - op.X_rot).max() <= 1e-14
            assert np.abs(w_rot[i] - op.w_rot).max() <= 1e-14

    def test_order_mismatch_rejected(self):
        cells = self._cells(2)
        op = SingularSelfInteraction(cells[0], assembly="circulant")
        with pytest.raises(ValueError, match="order"):
            assemble_circulant(op.tables, [sphere(1.0, order=4)], 1.0)

    def test_install_consumed_by_next_refresh(self):
        cells = self._cells()
        ops = [SingularSelfInteraction(c, assembly="circulant")
               for c in cells]
        batch = CellBatch(cells)
        for c in cells:
            c.set_positions(c.X * 1.01)
        due = [i for i, op in enumerate(ops) if op.due_full()]
        assert due == [0, 1, 2]
        batch.assemble_selfops(ops, due)
        installed = [op.matrix for op in ops]
        for op in ops:
            assert op.refresh() is True          # consumes, no reassembly
        for op, mat in zip(ops, installed):
            assert op.matrix is mat
        # the flag is one-shot: the next full refresh reassembles
        for op in ops:
            assert not op._pending_install

    def test_mixed_order_groups(self):
        cells = self._cells(2, order=6) + self._cells(1, order=5)
        ops = [SingularSelfInteraction(c, assembly="circulant")
               for c in cells]
        batch = CellBatch(cells)
        expected = [op.matrix.copy() for op in ops]
        batch.assemble_selfops(ops, [0, 1, 2])
        for op, ref in zip(ops, expected):
            assert np.abs(op.matrix - ref).max() <= 1e-14


def _scene(ncells=3, order=5, **numopts):
    cells = [biconcave_rbc(1.0, center=(2.35 * (k % 2), 2.35 * (k // 2),
                                        0.1 * k), order=order)
             for k in range(ncells)]
    cfg = ReproConfig(
        dt=0.05, viscosity=1.0,
        forces=[Bending(0.01), Tension(), Gravity(0.4, (0.0, 0.0, -1.0))],
        backend="direct", with_collisions=False,
        numerics=NumericsOptions(**numopts))
    return Simulation(cells, config=cfg)


class TestBatchedLU:
    def test_trajectories_bit_identical(self):
        """The stacked getrf/getrs path drives the same LAPACK kernels on
        the same matrices as the per-cell lu_factor/lu_solve path, so the
        trajectories must agree bit for bit — not merely to tolerance."""
        on = _scene(batched_lu=True)
        off = _scene(batched_lu=False)
        on.run(2)
        off.run(2)
        for a, b in zip(on.cells, off.cells):
            assert np.array_equal(a.X, b.X)
        for sa, sb in zip(on.stepper.sigmas, off.stepper.sigmas):
            assert np.array_equal(sa, sb)

    def test_mixed_order_scene_bit_identical(self):
        def scene(batched):
            cells = [biconcave_rbc(1.0, center=(2.4 * k, 0.0, 0.0),
                                   order=5 + (k % 2)) for k in range(3)]
            cfg = ReproConfig(dt=0.05,
                              forces=[Bending(0.01), Tension()],
                              with_collisions=False,
                              numerics=NumericsOptions(batched_lu=batched))
            return Simulation(cells, config=cfg)

        on, off = scene(True), scene(False)   # two equal-shape groups
        on.run(2)
        off.run(2)
        for a, b in zip(on.cells, off.cells):
            assert np.array_equal(a.X, b.X)


class TestFusedTableBudgetWarning:
    def test_warns_once_naming_order_and_budget(self, caplog):
        surf = biconcave_rbc(1.0, order=5)
        saved = _RotationTables.FUSED_TABLE_BUDGET
        try:
            _RotationTables.FUSED_TABLE_BUDGET = 0
            with caplog.at_level(logging.WARNING,
                                 logger="repro.vesicle.self_interaction"):
                # odd upsample -> a fresh (un-warned, un-cached) table pair
                op = SingularSelfInteraction(surf, upsample=1.31,
                                             assembly="fused")
                op.refresh(full=True)       # second rejection: no re-warn
        finally:
            _RotationTables.FUSED_TABLE_BUDGET = saved
        warnings = [r for r in caplog.records
                    if "FUSED_TABLE_BUDGET" in r.message]
        assert len(warnings) == 1
        assert "order 5" in warnings[0].message
        assert "circulant" in warnings[0].message

    def test_within_budget_is_silent(self, caplog):
        surf = biconcave_rbc(1.0, order=4)
        with caplog.at_level(logging.WARNING,
                             logger="repro.vesicle.self_interaction"):
            SingularSelfInteraction(surf, assembly="fused")
        assert not [r for r in caplog.records
                    if "FUSED_TABLE_BUDGET" in r.message]


@pytest.mark.slow
class TestHighOrderRegression:
    def test_order12_two_step_trajectory_matches_reference(self):
        """An order-12 cell — beyond the fused table's memory gate — runs
        a short trajectory under the circulant assembly and matches the
        (table-less, much slower) fused reference assembly to 1e-8."""
        def scene(mode):
            cell = biconcave_rbc(1.0, order=12)
            cfg = ReproConfig(
                dt=0.02, forces=[Bending(0.01), Tension()],
                with_collisions=False,
                numerics=NumericsOptions(selfop_assembly=mode))
            return Simulation([cell], config=cfg)

        circ = scene("circulant")
        assert circ.stepper._self_ops[0].assembly_mode == "circulant"
        circ.run(2)
        ref = scene("fused")
        # order 12 is over the fused-table budget: the gate that used to
        # make such scenes impractical is exactly what circulant lifts
        assert ref.stepper._self_ops[0].tables.fused_table() is None
        ref.run(2)
        dev = np.abs(circ.cells[0].X - ref.cells[0].X).max()
        assert dev <= 1e-8

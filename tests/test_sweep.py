"""The many-scene sweep engine (:mod:`repro.sweep`) and the
cross-simulation global-state fixes it depends on."""
import dataclasses
import threading
import time

import numpy as np
import pytest

from repro import ReproConfig, presets
from repro.analysis.guard import HEAVY_TABLE_CACHE_SIZE, PER_ORDER_CACHE_SIZE
from repro.config import ResilienceOptions
from repro.core import Simulation
from repro.physics.terms import Bending, Tension
from repro.runtime import warm_caches
from repro.surfaces import biconcave_rbc
from repro.sweep import SceneJob, SceneResult, SweepRunner, run_scene


def _job(job_id, n_steps=3, order=6, kappa=0.05, dt=0.05, **kw):
    cfg = presets.relaxation(dt=dt, bending_modulus=kappa)
    return SceneJob.from_cells(
        job_id, cfg, [biconcave_rbc(radius=1.0, order=order)],
        n_steps=n_steps, **kw)


def _jobs(n=3, **kw):
    # distinct physics per job so a cross-job mixup cannot cancel out
    return [_job(f"job{i}", kappa=0.03 + 0.01 * i, **kw) for i in range(n)]


def _positions_equal(a, b):
    return all(x.shape == y.shape and x.tobytes() == y.tobytes()
               for x, y in zip(a, b))


class TestSceneJob:
    def test_from_cells_copies_state(self):
        cell = biconcave_rbc(order=6)
        job = SceneJob.from_cells("a", presets.relaxation(), [cell], 2)
        cell.set_positions(cell.X + 1.0)
        sim = job.make_simulation()
        assert not np.allclose(sim.cells[0].X, cell.X)

    def test_requires_state_or_builder(self):
        job = SceneJob("empty", presets.relaxation(), n_steps=1)
        with pytest.raises(ValueError):
            job.make_simulation()
        # via run_scene the same defect is a failed result, not a raise
        res = run_scene(job)
        assert res.status == "failed" and "empty" in res.error

    def test_run_scene_completes(self):
        res = run_scene(_job("a", n_steps=2))
        assert res.completed and res.steps_done == 2
        assert res.t == pytest.approx(2 * 0.05)
        assert res.positions and np.isfinite(res.positions[0]).all()
        assert not res.resumable          # no checkpoint path given

    def test_timeout_is_a_status_not_an_error(self, tmp_path):
        job = _job("slow", n_steps=50, timeout=1e-6,
                   checkpoint_path=str(tmp_path / "slow"))
        res = run_scene(job)
        assert res.status == "timeout"
        assert res.steps_done < 50
        assert res.resumable and res.checkpoint_path.endswith(".npz")

    def test_timeout_then_resume_matches_uninterrupted(self, tmp_path):
        ref = run_scene(_job("ref", n_steps=4))
        job = _job("ref", n_steps=4, timeout=1e-6,
                   checkpoint_path=str(tmp_path / "ref"))
        attempts = 0
        res = run_scene(job)
        while res.status == "timeout":
            attempts += 1
            assert attempts < 60
            # each retry gets a fresh budget and resumes the frontier
            res = run_scene(dataclasses.replace(job, timeout=30.0))
        assert res.completed
        assert _positions_equal(res.positions, ref.positions)


class TestSweepBitIdentity:
    """Per-job trajectories must be bit-identical to running each job
    alone serially, on every executor (the sweep acceptance gate)."""

    @pytest.mark.parametrize("executor,workers", [
        ("serial", 1), ("thread", 2), ("process", 2)])
    def test_sweep_matches_job_by_job_serial(self, executor, workers):
        ref = [run_scene(j) for j in _jobs(3)]
        report = SweepRunner(_jobs(3), executor=executor,
                             workers=workers).run()
        assert [r.status for r in report.results] == ["completed"] * 3
        for a, b in zip(ref, report.results):
            assert a.job_id == b.job_id
            assert _positions_equal(a.positions, b.positions)

    def test_results_in_input_order(self):
        report = SweepRunner(_jobs(4), executor="thread", workers=2,
                             max_inflight=2).run()
        assert [r.job_id for r in report.results] == \
            [f"job{i}" for i in range(4)]


def _poisoned_build(job):
    """Scene whose far field turns non-finite with no degradation path:
    the retry budget exhausts and step() raises StepRejectedError."""
    from repro.analysis.faultinject import inject_nan
    sim = dataclasses.replace(job, build=None).make_simulation()
    ctx = inject_nan(sim.backend, "cell_cell", start=0, count=99)
    ctx.__enter__()
    sim._fault_ctx = ctx     # pin the suspended context manager
    return sim


class TestFailureIsolation:
    @pytest.mark.parametrize("executor,workers", [
        ("serial", 1), ("process", 2)])
    def test_step_rejected_lands_as_failed_result(self, executor, workers):
        jobs = _jobs(3)
        pol = ResilienceOptions(max_retries=1, backend_degradation=False)
        jobs[1] = dataclasses.replace(
            jobs[1],
            config=dataclasses.replace(jobs[1].config, resilience=pol),
            build=_poisoned_build)
        report = SweepRunner(jobs, executor=executor, workers=workers).run()
        statuses = {r.job_id: r.status for r in report.results}
        assert statuses == {"job0": "completed", "job1": "failed",
                            "job2": "completed"}
        failed = report.results[1]
        assert "StepRejectedError" in failed.error
        # the failed job's state is the rolled-back frontier, not NaNs
        assert np.isfinite(failed.positions[0]).all()
        # the healthy jobs are untouched by their neighbor's failure
        for i in (0, 2):
            solo = run_scene(_jobs(3)[i])
            assert _positions_equal(solo.positions,
                                    report.results[i].positions)


class _QuietRecycler:
    def recycle(self, cells):
        return []


def _recycling_build(job):
    sim = dataclasses.replace(job, build=None).make_simulation()
    sim.recycler = _QuietRecycler()
    return sim


class TestNonCheckpointableJobs:
    def test_marked_non_resumable_and_sweep_continues(self, tmp_path):
        jobs = _jobs(2)
        jobs[0] = dataclasses.replace(jobs[0], build=_recycling_build)
        report = SweepRunner(jobs, executor="serial",
                             workdir=str(tmp_path)).run()
        rec, plain = report.results
        assert rec.completed and not rec.resumable
        assert rec.checkpoint_path is None
        assert plain.completed and plain.resumable

    def test_save_checkpoint_still_refuses_via_capability(self):
        from repro.resilience import save_checkpoint
        sim = _recycling_build(_job("r"))
        assert not sim.checkpointable
        with pytest.raises(NotImplementedError):
            save_checkpoint(sim, "/tmp/never-written")


class TestKillResume:
    def test_interrupted_sweep_resumes_exactly_unfinished(self, tmp_path):
        ref = [run_scene(j) for j in _jobs(4)]
        # First attempt: tiny per-job budget for all but job0 — a mix of
        # completed and timed-out jobs survives the "kill".
        mixed = _jobs(4)
        mixed[0] = dataclasses.replace(mixed[0], timeout=300.0)
        first = SweepRunner(mixed, executor="serial",
                            workdir=str(tmp_path), timeout=1e-6).run()
        unfinished = [r.job_id for r in first.results if not r.completed]
        assert unfinished, "timeout budget unexpectedly sufficed"
        assert first.results[0].completed
        # Resume: full budget. Completed jobs are restored verbatim,
        # unfinished ones resume from their checkpoint frontier.
        second = SweepRunner(_jobs(4), executor="serial",
                             workdir=str(tmp_path)).run()
        assert [r.status for r in second.results] == ["completed"] * 4
        assert set(second.restored) == \
            {r.job_id for r in first.results if r.completed}
        for a, b in zip(ref, second.results):
            assert _positions_equal(a.positions, b.positions)
        # Third run: everything restored, nothing recomputed or repeated.
        third = SweepRunner(_jobs(4), executor="serial",
                            workdir=str(tmp_path)).run()
        assert sorted(third.restored) == [f"job{i}" for i in range(4)]
        for a, b in zip(ref, third.results):
            assert _positions_equal(a.positions, b.positions)

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner([_job("x"), _job("x")], executor="serial")


class TestWarmCaches:
    def test_idempotent_and_shared(self):
        from repro.sph.transform import get_transform
        warmed = warm_caches([6])
        assert 6 in warmed
        t = get_transform(6)
        warm_caches([6])
        assert get_transform(6) is t

    def test_mixed_order_sweep_does_not_evict_live_tables(self):
        from repro.sph.transform import get_transform
        t = get_transform(6)
        # a wide mixed-order batch (old bound: 8-32 entries) must not
        # evict a table another live scene still holds
        warm_caches(range(3, 19))
        assert get_transform(6) is t
        assert PER_ORDER_CACHE_SIZE >= 128
        assert HEAVY_TABLE_CACHE_SIZE >= 32


class TestConcurrentCacheBuilds:
    def test_concurrent_first_build_builds_once(self, monkeypatch):
        """Regression (pre-PR: both threads miss the lru_cache and each
        builds the table; one object wins, one is dropped)."""
        import repro.sph.transform as tr
        order = 23              # touched by nothing else in the suite
        assert tr.get_transform.cache_info().maxsize >= PER_ORDER_CACHE_SIZE
        builds = []
        orig = tr._TransformTables.__init__

        def slow_init(self, p):
            builds.append(p)
            time.sleep(0.05)    # widen the race window
            orig(self, p)

        monkeypatch.setattr(tr._TransformTables, "__init__", slow_init)
        barrier = threading.Barrier(2)
        results = [None, None]

        def build(i):
            barrier.wait()
            results[i] = tr.get_transform(order)

        threads = [threading.Thread(target=build, args=(i,))
                   for i in range(2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert builds == [order]
        assert results[0] is results[1]


class TestConcurrentSimulations:
    def test_two_sims_two_threads_bit_identical(self):
        """Two independent simulations of the same (fresh) order stepped
        concurrently must match their serial selves bit-for-bit — the
        shared-table caches they race on are build-locked now."""
        def scene(kappa):
            cfg = ReproConfig(dt=0.05, forces=[Bending(kappa), Tension()],
                              with_collisions=False)
            cells = [biconcave_rbc(order=7).translated([0, 0, 2.5 * i])
                     for i in range(2)]
            return Simulation(cells, config=cfg)

        serial = []
        for kappa in (0.01, 0.02):
            sim = scene(kappa)
            for _ in range(2):
                sim.step()
            serial.append([c.X.copy() for c in sim.cells])

        sims = [scene(0.01), scene(0.02)]
        errors = []

        def drive(sim):
            try:
                for _ in range(2):
                    sim.step()
            except Exception as exc:             # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(s,)) for s in sims]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        for ref, sim in zip(serial, sims):
            assert all(x.tobytes() == c.X.tobytes()
                       for x, c in zip(ref, sim.cells))


class TestResultRoundTrip:
    def test_npz_round_trip(self, tmp_path):
        from repro.sweep.job import result_from_npz, result_to_npz
        res = run_scene(_job("rt", n_steps=1))
        path = result_to_npz(res, str(tmp_path / "rt"))
        back = result_from_npz(path)
        assert back.meta_dict() == res.meta_dict()
        assert _positions_equal(back.positions, res.positions)

    def test_failed_build_round_trips_without_positions(self, tmp_path):
        res = SceneResult(job_id="x", status="failed", steps_done=0,
                          t=0.0, error="boom")
        from repro.sweep.job import result_from_npz, result_to_npz
        back = result_from_npz(result_to_npz(res, str(tmp_path / "x")))
        assert back.positions is None and back.error == "boom"

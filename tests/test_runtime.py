"""Virtual MPI runtime tests: collectives, ledger, sort, spatial hashing."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    CommLedger,
    SpatialHash,
    VirtualComm,
    block_partition,
    morton_decode_3d,
    morton_keys_3d,
    parallel_sample_sort,
    partition_by_morton,
)
from repro.runtime.spatial_hash import candidate_pairs_by_key


class TestCommunicator:
    def test_allreduce_sum(self):
        comm = VirtualComm(4)
        data = [np.full(3, float(r)) for r in range(4)]
        out = comm.allreduce(data)
        assert all(np.allclose(o, [6, 6, 6]) for o in out)

    def test_allgather(self):
        comm = VirtualComm(3)
        out = comm.allgather([10, 20, 30])
        assert out == [[10, 20, 30]] * 3

    def test_alltoall_transpose(self):
        comm = VirtualComm(3)
        data = [[f"{i}->{j}" for j in range(3)] for i in range(3)]
        out = comm.alltoall(data)
        assert out[2][1] == "1->2"

    def test_alltoallv_sparse(self):
        comm = VirtualComm(4)
        buckets = [dict() for _ in range(4)]
        buckets[0][3] = np.arange(5)
        buckets[2][1] = np.arange(2)
        out = comm.alltoallv(buckets)
        assert np.array_equal(out[3][0], np.arange(5))
        assert np.array_equal(out[1][2], np.arange(2))
        assert out[0] == {}

    def test_alltoallv_bad_rank(self):
        comm = VirtualComm(2)
        with pytest.raises(ValueError):
            comm.alltoallv([{5: 1}, {}])

    def test_bcast(self):
        comm = VirtualComm(5)
        assert comm.bcast(42) == [42] * 5

    def test_size_validation(self):
        with pytest.raises(ValueError):
            VirtualComm(0)
        with pytest.raises(ValueError):
            VirtualComm(3).allreduce([1, 2])

    def test_ledger_accounting(self):
        ledger = CommLedger()
        comm = VirtualComm(4, ledger)
        comm.set_phase("COL")
        comm.allreduce([np.zeros(10)] * 4)
        comm.set_phase("BIE-solve")
        comm.allgather([np.zeros(5)] * 4)
        assert ledger.total_bytes("COL") > 0
        assert ledger.total_bytes("BIE-solve") > 0
        assert ledger.total_messages() > 0
        assert "COL" in ledger.summary()

    def test_reduce_scalar(self):
        comm = VirtualComm(3)
        assert comm.reduce_scalar([1.0, 5.0, 2.0], op=max) == 5.0


class TestMorton:
    def test_roundtrip_small(self):
        ijk = np.array([[0, 0, 0], [1, 2, 3], [1023, 5, 77]])
        keys = morton_keys_3d(ijk)
        assert np.array_equal(morton_decode_3d(keys), ijk)

    @given(st.lists(st.tuples(st.integers(0, 2 ** 20 - 1),
                              st.integers(0, 2 ** 20 - 1),
                              st.integers(0, 2 ** 20 - 1)),
                    min_size=1, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, coords):
        ijk = np.array(coords, dtype=np.int64)
        assert np.array_equal(morton_decode_3d(morton_keys_3d(ijk)), ijk)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_keys_3d(np.array([[-1, 0, 0]]))

    def test_locality(self):
        # adjacent cells differ less in key than distant cells (weakly).
        a = morton_keys_3d(np.array([[5, 5, 5]]))[0]
        b = morton_keys_3d(np.array([[5, 5, 6]]))[0]
        c = morton_keys_3d(np.array([[500, 500, 500]]))[0]
        assert abs(int(b) - int(a)) < abs(int(c) - int(a))


class TestSpatialHash:
    def test_cell_of(self):
        h = SpatialHash(np.zeros(3), 1.0)
        assert np.array_equal(h.cell_of([[0.5, 1.5, 2.5]]), [[0, 1, 2]])

    def test_box_keys_cover_box(self):
        h = SpatialHash(np.zeros(3), 1.0)
        keys = h.box_keys(np.array([0.1, 0.1, 0.1]), np.array([2.9, 0.9, 0.9]))
        assert keys.size == 3  # three cells along x

    def test_same_cell_same_key(self):
        h = SpatialHash(np.zeros(3), 2.0)
        k = h.keys_of(np.array([[0.1, 0.1, 0.1], [1.9, 1.9, 1.9]]))
        assert k[0] == k[1]

    def test_candidate_pairs(self):
        ka = np.array([1, 2, 3], dtype=np.uint64)
        kb = np.array([3, 4, 1], dtype=np.uint64)
        pairs = candidate_pairs_by_key(ka, [10, 11, 12], kb, [20, 21, 22])
        assert (10, 22) in {tuple(p) for p in pairs}
        assert (12, 20) in {tuple(p) for p in pairs}

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            SpatialHash(np.zeros(3), 0.0)


class TestPartition:
    def test_block_partition_covers(self):
        parts = block_partition(10, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert np.array_equal(np.concatenate(parts), np.arange(10))

    def test_morton_partition_balanced(self, rng):
        pts = rng.uniform(size=(100, 3))
        parts = partition_by_morton(pts, 4)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_morton_partition_spatially_local(self, rng):
        # two well-separated clusters should not share ranks for P=2
        a = rng.normal(size=(50, 3)) * 0.1
        b = rng.normal(size=(50, 3)) * 0.1 + 100.0
        parts = partition_by_morton(np.vstack([a, b]), 2)
        first = set(parts[0].tolist())
        assert first == set(range(50)) or first == set(range(50, 100))


class TestParallelSort:
    def test_matches_sequential_sort(self, rng):
        comm = VirtualComm(4)
        keys = [rng.integers(0, 1000, size=rng.integers(5, 30)).astype(np.uint64)
                for _ in range(4)]
        sk, _ = parallel_sample_sort(comm, keys)
        merged = np.concatenate(sk)
        assert np.array_equal(merged, np.sort(np.concatenate(keys)))

    def test_values_follow_keys(self, rng):
        comm = VirtualComm(3)
        keys = [rng.integers(0, 100, size=20) for _ in range(3)]
        values = [k.astype(float) * 10 for k in keys]
        sk, sv = parallel_sample_sort(comm, keys, values)
        for k, v in zip(sk, sv):
            assert np.allclose(v, k * 10)

    def test_globally_sorted_across_ranks(self, rng):
        comm = VirtualComm(5)
        keys = [rng.integers(0, 10000, size=50) for _ in range(5)]
        sk, _ = parallel_sample_sort(comm, keys)
        for r in range(4):
            if sk[r].size and sk[r + 1].size:
                assert sk[r][-1] <= sk[r + 1][0]

    @given(st.lists(st.lists(st.integers(0, 1000), max_size=20),
                    min_size=2, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_property_permutation(self, data):
        comm = VirtualComm(len(data))
        keys = [np.array(d, dtype=np.int64) for d in data]
        sk, _ = parallel_sample_sort(comm, keys)
        merged = np.concatenate([k for k in sk]) if sk else np.zeros(0)
        assert np.array_equal(np.sort(np.concatenate(keys)), merged)

    def test_empty_ranks(self):
        comm = VirtualComm(3)
        keys = [np.zeros(0, dtype=np.int64), np.array([3, 1]),
                np.zeros(0, dtype=np.int64)]
        sk, _ = parallel_sample_sort(comm, keys)
        assert np.array_equal(np.concatenate(sk), [1, 3])

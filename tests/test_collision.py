"""Collision system tests: meshes, narrow phase, broad phase, volumes, LCP, NCP."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collision import (
    CollisionMesh,
    NCPSolver,
    candidate_object_pairs,
    cell_collision_mesh,
    compute_contacts,
    patch_collision_mesh,
    point_triangle_closest,
    signed_distance_to_mesh,
    solve_lcp,
)
from repro.patches import cube_sphere
from repro.runtime import VirtualComm
from repro.surfaces import sphere
from repro.vesicle import SingularSelfInteraction


class TestMeshes:
    def test_cell_mesh_closed_euler(self):
        m = cell_collision_mesh(sphere(1.0, order=6), 0)
        V, F = m.n_vertices, m.n_triangles
        edges = set()
        for t in m.triangles:
            for a, b in ((0, 1), (1, 2), (2, 0)):
                edges.add(tuple(sorted((t[a], t[b]))))
        assert V - len(edges) + F == 2  # closed genus-0

    def test_cell_mesh_outward_orientation(self):
        m = cell_collision_mesh(sphere(1.0, order=6), 0)
        n = m.triangle_normals()
        centers = m.vertices[m.triangles].mean(axis=1)
        assert np.einsum("nk,nk->n", n, centers).min() > 0

    def test_patch_mesh(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        m = patch_collision_mesh(s.patches[0], 0, m=10)
        assert m.n_vertices == 100
        assert m.n_triangles == 2 * 81
        assert not m.closed

    def test_space_time_aabb(self):
        m = cell_collision_mesh(sphere(1.0, order=4), 0)
        lo, hi = m.aabb(other_vertices=m.vertices + 5.0)
        assert hi[0] > 5.0 and lo[0] < 0.0

    def test_edge_scale(self):
        m = cell_collision_mesh(sphere(2.0, order=6), 0)
        assert 0.05 < m.edge_length_scale() < 2.0


class TestNarrowPhase:
    def test_point_triangle_regions(self):
        a = np.array([[0.0, 0, 0]])
        b = np.array([[1.0, 0, 0]])
        c = np.array([[0.0, 1, 0]])
        # interior
        cp, bary = point_triangle_closest(np.array([[0.2, 0.2, 1.0]]), a, b, c)
        assert np.allclose(cp[0], [0.2, 0.2, 0.0])
        assert np.isclose(bary[0].sum(), 1.0)
        # vertex region
        cp, _ = point_triangle_closest(np.array([[-1.0, -1.0, 0.0]]), a, b, c)
        assert np.allclose(cp[0], [0, 0, 0])
        # edge region
        cp, _ = point_triangle_closest(np.array([[0.5, -1.0, 0.0]]), a, b, c)
        assert np.allclose(cp[0], [0.5, 0, 0])

    def test_signed_distance_sphere(self):
        m = cell_collision_mesh(sphere(1.0, order=8), 0)
        pts = np.array([[0.0, 0, 0], [0.5, 0, 0], [1.5, 0, 0]])
        d, tri, cp, bary = signed_distance_to_mesh(pts, m)
        assert d[0] < -0.9
        assert -0.55 < d[1] < -0.45
        assert 0.45 < d[2] < 0.55

    @given(st.floats(min_value=-2.0, max_value=2.0),
           st.floats(min_value=-2.0, max_value=2.0),
           st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_property_closest_point_on_triangle(self, x, y, z):
        a = np.array([[0.0, 0, 0]])
        b = np.array([[1.0, 0, 0]])
        c = np.array([[0.0, 1, 0]])
        p = np.array([[x, y, z]])
        cp, bary = point_triangle_closest(p, a, b, c)
        assert np.all(bary >= -1e-9) and np.isclose(bary.sum(), 1.0)
        # cp must not be farther than any vertex
        d_cp = np.linalg.norm(p - cp)
        for v in (a, b, c):
            assert d_cp <= np.linalg.norm(p - v) + 1e-9


class TestBroadPhase:
    def test_overlapping_cells_found(self):
        m1 = cell_collision_mesh(sphere(1.0, order=4), 0)
        m2 = cell_collision_mesh(sphere(1.0, center=(1.5, 0, 0), order=4), 1)
        pairs = candidate_object_pairs([m1, m2], [None, None], 0.1)
        assert (0, 1) in pairs

    def test_distant_cells_culled(self):
        m1 = cell_collision_mesh(sphere(1.0, order=4), 0)
        m2 = cell_collision_mesh(sphere(1.0, center=(50, 0, 0), order=4), 1)
        pairs = candidate_object_pairs([m1, m2], [None, None], 0.1)
        assert pairs == []

    def test_boundary_boundary_skipped(self, small_opts):
        s = cube_sphere(refine=0, options=small_opts)
        ms = [patch_collision_mesh(p, i, m=6) for i, p in enumerate(s.patches)]
        pairs = candidate_object_pairs(ms, [None] * len(ms), 0.1)
        assert pairs == []

    def test_space_time_box_catches_fast_motion(self):
        m1 = cell_collision_mesh(sphere(1.0, order=4), 0)
        m2 = cell_collision_mesh(sphere(1.0, center=(10, 0, 0), order=4), 1)
        cand = m1.vertices + np.array([8.0, 0, 0])  # moving toward m2
        pairs = candidate_object_pairs([m1, m2], [cand, None], 0.1)
        assert (0, 1) in pairs

    def test_parallel_path_matches_serial(self):
        meshes = [cell_collision_mesh(
            sphere(1.0, center=(1.6 * i, 0, 0), order=4), i) for i in range(4)]
        serial = candidate_object_pairs(meshes, [None] * 4, 0.1)
        comm = VirtualComm(3)
        par = candidate_object_pairs(meshes, [None] * 4, 0.1, comm=comm)
        assert set(serial) == set(par)
        assert comm.ledger.total_messages() > 0


class TestContacts:
    def test_overlap_volume_negative(self):
        m1 = cell_collision_mesh(sphere(1.0, order=6), 0)
        m2 = cell_collision_mesh(sphere(1.0, center=(1.8, 0, 0), order=6), 1)
        comps = compute_contacts([m1, m2], [(0, 1)], contact_eps=0.02)
        assert comps
        assert all(c.volume < 0 for c in comps)

    def test_no_contact_no_components(self):
        m1 = cell_collision_mesh(sphere(1.0, order=6), 0)
        m2 = cell_collision_mesh(sphere(1.0, center=(3.0, 0, 0), order=6), 1)
        comps = compute_contacts([m1, m2], [(0, 1)], contact_eps=0.02)
        assert comps == []

    def test_gradient_pushes_apart(self):
        m1 = cell_collision_mesh(sphere(1.0, order=6), 0)
        m2 = cell_collision_mesh(sphere(1.0, center=(1.8, 0, 0), order=6), 1)
        comps = compute_contacts([m1, m2], [(0, 1)], contact_eps=0.02)
        for c in comps:
            if 0 in c.vertex_forces:
                idx, dirs, w = c.vertex_forces[0]
                # normals of mesh 2 at the contact point toward -x
                assert dirs[:, 0].mean() < 0

    def test_two_separate_overlaps_two_components(self):
        m1 = cell_collision_mesh(sphere(1.0, order=8), 0)
        # two small spheres poking m1 from opposite sides
        m2 = cell_collision_mesh(sphere(0.3, center=(1.05, 0, 0), order=6), 1)
        m3 = cell_collision_mesh(sphere(0.3, center=(-1.05, 0, 0), order=6), 2)
        comps = compute_contacts([m1, m2, m3], [(0, 1), (0, 2)],
                                 contact_eps=0.02)
        owners = {c.pair for c in comps}
        assert len(owners) >= 2


class TestLCP:
    def test_trivial_nonnegative_q(self):
        B = np.eye(2)
        res = solve_lcp(lambda x: B @ x, np.array([1.0, 2.0]))
        assert np.allclose(res.lam, 0.0)

    def test_known_solution(self):
        B = np.array([[2.0, 0.0], [0.0, 1.0]])
        q = np.array([-4.0, 1.0])
        res = solve_lcp(lambda x: B @ x, q)
        assert np.allclose(res.lam, [2.0, 0.0], atol=1e-8)

    def test_complementarity_invariants(self, rng):
        for _ in range(5):
            m = 6
            M = rng.normal(size=(m, m))
            B = M @ M.T + m * np.eye(m)   # SPD
            q = rng.normal(size=m)
            res = solve_lcp(lambda x: B @ x, q)
            w = B @ res.lam + q
            assert np.all(res.lam >= -1e-12)
            assert np.all(w >= -1e-7)
            assert abs(res.lam @ w) < 1e-6

    def test_empty(self):
        res = solve_lcp(lambda x: x, np.zeros(0))
        assert res.converged and res.lam.size == 0


class TestNCP:
    def test_no_contact_passthrough(self):
        s1 = sphere(1.0, order=5)
        s2 = sphere(1.0, center=(5.0, 0, 0), order=5)
        ops = [SingularSelfInteraction(s) for s in (s1, s2)]
        ncp = NCPSolver(boundary_meshes=[])
        cand = [s1.X + 0.01, s2.X + 0.01]
        newpos, rep = ncp.project([s1, s2], cand, [o.apply for o in ops], 0.1)
        assert not rep.contact_active
        assert np.allclose(newpos[0], cand[0])

    def test_two_sphere_projection_reduces_penetration(self):
        s1 = sphere(1.0, order=6)
        s2 = sphere(1.0, center=(2.3, 0, 0), order=6)
        ops = [SingularSelfInteraction(s) for s in (s1, s2)]
        ncp = NCPSolver(boundary_meshes=[])
        cand = [s1.X + np.array([0.25, 0, 0]), s2.X - np.array([0.25, 0, 0])]
        newpos, rep = ncp.project([s1, s2], cand, [o.apply for o in ops], 0.1)
        assert rep.contact_active
        assert rep.lcp_solves >= 1
        assert rep.max_penetration_after < 0.2 * rep.max_penetration_before

    def test_mesh_cache_rebuilds_only_moved_cells(self, monkeypatch):
        """A repeat projection at identical positions builds no meshes;
        results are unchanged by caching."""
        import repro.collision.ncp as ncp_mod
        built = []
        orig = ncp_mod.cell_collision_mesh

        def counting(surface, object_id, collision_order=None):
            built.append(object_id)
            return orig(surface, object_id, collision_order=collision_order)

        monkeypatch.setattr(ncp_mod, "cell_collision_mesh", counting)
        s1 = sphere(1.0, order=5)
        s2 = sphere(1.0, center=(5.0, 0, 0), order=5)
        ops = [SingularSelfInteraction(s) for s in (s1, s2)]
        ncp = NCPSolver(boundary_meshes=[])
        cand = [s1.X + 0.01, s2.X + 0.01]
        pos1, _ = ncp.project([s1, s2], cand, [o.apply for o in ops], 0.1)
        n_cold = len(built)
        assert n_cold == 4          # current + candidate, both cells
        built.clear()
        pos2, _ = ncp.project([s1, s2], cand, [o.apply for o in ops], 0.1)
        assert built == []          # every mesh served from the cache
        assert all(np.array_equal(a, b) for a, b in zip(pos1, pos2))

    def test_cell_wall_contact(self, small_opts):
        vessel = cube_sphere(refine=0, radius=2.0, options=small_opts)
        walls = [patch_collision_mesh(p, i, m=10)
                 for i, p in enumerate(vessel.patches)]
        cell = sphere(0.8, center=(1.0, 0, 0), order=6)
        op = SingularSelfInteraction(cell)
        ncp = NCPSolver(boundary_meshes=walls)
        cand = [cell.X + np.array([0.5, 0, 0])]  # pushes into the wall
        newpos, rep = ncp.project([cell], cand, [op.apply], 0.1)
        assert rep.contact_active
        # after projection the cell should be (nearly) inside the vessel
        assert np.linalg.norm(newpos[0].reshape(-1, 3), axis=1).max() < 2.05

"""Membrane physics tests: bending, tension, gravity."""
import numpy as np
import pytest

from repro.physics import (
    bending_energy,
    bending_force,
    gravity_force,
    linearized_bending_apply,
    tension_force,
)
from repro.physics.tension import TensionSolver
from repro.surfaces import biconcave_rbc, ellipsoid, sphere, unit_sphere
from repro.vesicle import SingularSelfInteraction


class TestBending:
    def test_force_vanishes_on_sphere(self):
        for R in (0.5, 1.0, 3.0):
            s = sphere(R, order=10)
            f = bending_force(s, kappa=1.0)
            assert np.abs(f).max() < 1e-8, R

    def test_energy_of_sphere(self):
        # E = (kappa/2) * H^2 * area = (kappa/2) (1/R^2)(4 pi R^2) = 2 pi kappa
        s = sphere(2.0, order=8)
        assert np.isclose(bending_energy(s, kappa=3.0), 6 * np.pi, rtol=1e-10)

    def test_rbc_force_nonzero_and_normal(self):
        rbc = biconcave_rbc(order=12)
        f = bending_force(rbc)
        g = rbc.geometry()
        assert np.abs(f).max() > 1e-6
        # force is purely normal by construction
        tangential = f - np.einsum("ijk,ijk->ij", f, g.normal)[..., None] * g.normal
        assert np.abs(tangential).max() < 1e-12

    def test_relaxation_decreases_energy(self):
        # Ellipsoid relaxing under bending flow through the true mobility.
        e = ellipsoid(1.0, 1.0, 1.3, order=8)
        op = SingularSelfInteraction(e)
        E0 = bending_energy(e)
        X = e.X.copy()
        for _ in range(3):
            f = bending_force(e)
            u = op.apply(f)
            X = X + 0.05 * u
            e.set_positions(X)
            op.refresh()
        assert bending_energy(e) < E0

    def test_linearized_operator_matches_scale(self):
        rbc = biconcave_rbc(order=8)
        dX = 1e-3 * rbc.geometry().normal
        L = linearized_bending_apply(rbc, dX, kappa=2.0)
        assert L.shape == rbc.X.shape
        assert np.isfinite(L).all()
        # linearity
        L2 = linearized_bending_apply(rbc, 2 * dX, kappa=2.0)
        assert np.allclose(L2, 2 * L, atol=1e-10)


class TestTension:
    def test_constant_tension_force_is_curvature_normal(self):
        s = sphere(1.0, order=8)
        g = s.geometry()
        sig = np.ones((s.grid.nlat, s.grid.nphi))
        f = tension_force(s, sig)
        # grad sigma = 0; f = 2 sigma H n = -2 n on unit sphere
        assert np.allclose(f, -2.0 * g.normal, atol=1e-8)

    def test_solver_reduces_surface_divergence(self):
        e = ellipsoid(1.0, 1.0, 1.2, order=8)
        op = SingularSelfInteraction(e)
        # background velocity = linear straining flow
        pts = e.X
        u_bg = np.stack([pts[:, :, 0], -pts[:, :, 1],
                         np.zeros_like(pts[:, :, 0])], axis=-1)
        solver = TensionSolver(e, op.apply, tol=1e-8, max_iter=80)
        sigma, iters = solver.solve(u_bg)
        u_total = u_bg + op.apply(tension_force(e, sigma))
        div0 = e.surface_divergence(u_bg)
        div1 = e.surface_divergence(u_total)
        assert np.linalg.norm(div1) < 0.15 * np.linalg.norm(div0)


class TestGravity:
    def test_direction_and_magnitude(self):
        s = unit_sphere(8)
        g = s.geometry()
        f = gravity_force(s, delta_rho=2.0, g_vector=(0.0, 0.0, -1.0))
        expect = 2.0 * (-s.X[:, :, 2])[..., None] * g.normal
        assert np.allclose(f, expect, atol=1e-12)

    def test_zero_contrast(self):
        s = unit_sphere(6)
        assert np.abs(gravity_force(s, 0.0)).max() == 0.0

    def test_net_gravity_force_scales_with_volume(self):
        # int (drho g.x) n dS = drho g V  (divergence theorem component-wise)
        s = sphere(1.5, order=10)
        w = s.quadrature_weights()
        f = gravity_force(s, delta_rho=1.0, g_vector=(0.0, 0.0, -1.0))
        net = np.einsum("ij,ijk->k", w, f)
        V = s.volume()
        assert np.allclose(net, [0, 0, -V], atol=1e-8)

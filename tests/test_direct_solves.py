"""Direct (factorized) per-cell solves vs the iterative reference paths,
and the amortized self-interaction refresh policy."""
import numpy as np
import pytest

from repro.config import NumericsOptions, ReproConfig
from repro.core.simulation import Simulation
from repro.core.stepper import TimeStepper
from repro.physics import (linearized_bending_apply, linearized_bending_matrix,
                           tension_force, tension_operator_matrix)
from repro.physics.tension import TensionSolver
from repro.physics.terms import Bending, Gravity, Tension
from repro.surfaces import biconcave_rbc, ellipsoid
from repro.surfaces.spectral_surface import bandlimit_projector
from repro.vesicle import SingularSelfInteraction


@pytest.fixture(scope="module")
def cell():
    return biconcave_rbc(1.0, order=6)


@pytest.fixture(scope="module")
def selfop(cell):
    return SingularSelfInteraction(cell)


class TestDenseOperatorMatrices:
    def test_gradient_matrix_matches_function(self, cell):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((cell.grid.nlat, cell.grid.nphi))
        ref = cell.surface_gradient(f).ravel()
        got = cell.surface_gradient_matrix() @ f.ravel()
        assert np.abs(got - ref).max() <= 1e-12 * np.abs(ref).max()

    def test_divergence_matrix_matches_function(self, cell):
        rng = np.random.default_rng(1)
        v = rng.standard_normal((cell.grid.nlat, cell.grid.nphi, 3))
        ref = cell.surface_divergence(v).ravel()
        got = cell.surface_divergence_matrix() @ v.ravel()
        assert np.abs(got - ref).max() <= 1e-12 * np.abs(ref).max()

    def test_laplace_beltrami_matrix_matches_function(self, cell):
        rng = np.random.default_rng(2)
        f = rng.standard_normal((cell.grid.nlat, cell.grid.nphi))
        ref = cell.laplace_beltrami(f).ravel()
        got = cell.laplace_beltrami_matrix() @ f.ravel()
        assert np.abs(got - ref).max() <= 1e-11 * np.abs(ref).max()

    def test_matrices_invalidated_on_move(self):
        s = ellipsoid(1.0, 1.0, 1.3, order=4)
        g0 = s.surface_gradient_matrix().copy()
        s.set_positions(s.X * 1.1)
        assert np.abs(s.surface_gradient_matrix() - g0).max() > 1e-6

    def test_tension_operator_matrix(self, cell):
        rng = np.random.default_rng(3)
        sig = rng.standard_normal((cell.grid.nlat, cell.grid.nphi))
        ref = tension_force(cell, sig).ravel()
        got = tension_operator_matrix(cell) @ sig.ravel()
        assert np.abs(got - ref).max() <= 1e-12 * np.abs(ref).max()

    def test_linearized_bending_matrix(self, cell):
        rng = np.random.default_rng(4)
        dX = rng.standard_normal((cell.grid.nlat, cell.grid.nphi, 3))
        ref = linearized_bending_apply(cell, dX, kappa=0.02).ravel()
        got = linearized_bending_matrix(cell, kappa=0.02) @ dX.ravel()
        assert np.abs(got - ref).max() <= 1e-11 * max(1.0, np.abs(ref).max())

    def test_bandlimit_projector_idempotent(self, cell):
        P = bandlimit_projector(cell.order)
        assert np.abs(P @ P - P).max() <= 1e-12


class TestDirectTension:
    def test_dense_schur_matches_tight_gmres(self, cell, selfop):
        """The factorized Schur solve equals the Krylov solution of the
        same (band-limited) problem to well below solver tolerance."""
        solver = TensionSolver(cell, selfop.apply, self_matrix=selfop.matrix,
                               tol=1e-13, max_iter=200)
        assert solver.direct
        rng = np.random.default_rng(5)
        u = rng.standard_normal((cell.grid.nlat, cell.grid.nphi, 3))
        sigma_d, it_d = solver.solve(u)
        sigma_i, _ = solver.solve_iterative(u)
        assert it_d == 0
        assert np.abs(sigma_d - sigma_i).max() <= 1e-10

    def test_schur_matrix_matches_operator(self, cell, selfop):
        solver = TensionSolver(cell, selfop.apply)
        A = solver.schur_matrix(selfop.matrix)
        rng = np.random.default_rng(6)
        x = rng.standard_normal(cell.grid.n_points)
        assert np.abs(A @ x - solver.operator(x)).max() <= 1e-12

    def test_solution_is_band_limited(self, cell, selfop):
        solver = TensionSolver(cell, selfop.apply, self_matrix=selfop.matrix)
        rng = np.random.default_rng(7)
        u = rng.standard_normal((cell.grid.nlat, cell.grid.nphi, 3))
        sigma, _ = solver.solve(u)
        P = bandlimit_projector(cell.order)
        assert np.abs(P @ sigma.ravel() - sigma.ravel()).max() <= 1e-9

    def test_without_matrix_falls_back_to_gmres(self, cell, selfop):
        solver = TensionSolver(cell, selfop.apply)
        assert not solver.direct
        rng = np.random.default_rng(8)
        u = rng.standard_normal((cell.grid.nlat, cell.grid.nphi, 3))
        _, iters = solver.solve(u)
        assert iters > 0


def _scene(**numopts):
    cells = [biconcave_rbc(1.0, center=(2.4 * i, 0.0, 0.15 * (-1.0) ** i),
                           order=6) for i in range(2)]
    cfg = ReproConfig(dt=0.05,
                      forces=[Bending(0.01), Tension(),
                              Gravity(0.5, (0.0, 0.0, -1.0))],
                      backend="direct", with_collisions=True,
                      numerics=NumericsOptions(**numopts))
    return Simulation(cells, config=cfg)


class TestDirectVsIterativeTrajectories:
    def test_trajectories_match_over_5_steps(self):
        direct = _scene()
        iterative = _scene(direct_tension=False, direct_implicit=False)
        direct.run(5)
        iterative.run(5)
        err = max(np.abs(a.X - b.X).max()
                  for a, b in zip(direct.cells, iterative.cells))
        assert err <= 1e-8

    def test_direct_reports_zero_inner_iterations(self):
        sim = _scene()
        rep = sim.step()
        assert all(n == 0 for n in rep.implicit_iterations)

    def test_dt_change_falls_back_to_gmres(self):
        """A mid-run dt change at frozen geometry must not reuse the
        factorization built for the old dt."""
        cells = [ellipsoid(1.0, 1.0, 1.4, order=4)]
        stepper = TimeStepper(cells, bending_modulus=0.05)
        b = np.zeros(cells[0].X.shape)
        X1, it1, conv1 = stepper._implicit_update(0, b, 0.05)
        assert it1 == 0 and conv1            # factorized for dt=0.05
        X2, it2, conv2 = stepper._implicit_update(0, b, 0.025)
        assert it2 > 0 and conv2             # GMRES fallback, not stale LU
        # and the fallback solves the dt=0.025 problem, not the old one
        ref_stepper = TimeStepper([ellipsoid(1.0, 1.0, 1.4, order=4)],
                                  bending_modulus=0.05)
        X2_ref, _, _ = ref_stepper._implicit_update(0, b, 0.025)
        assert np.abs(X2 - X2_ref).max() <= 1e-7


class TestAmortizedSelfOpRefresh:
    def test_interval_one_reproduces_default_exactly(self):
        base = _scene()
        k1 = _scene(selfop_refresh_interval=1)
        base.run(3)
        k1.run(3)
        err = max(np.abs(a.X - b.X).max()
                  for a, b in zip(base.cells, k1.cells))
        assert err == 0.0

    def test_translation_is_corrected_exactly(self):
        s = biconcave_rbc(1.0, order=6)
        op = SingularSelfInteraction(s, refresh_interval=10)
        s.set_positions(s.X + np.array([0.4, -0.3, 0.2]))
        full = op.refresh()
        assert not full                     # intermediate, corrected
        exact = SingularSelfInteraction(biconcave_rbc(1.0, order=6)
                                        .translated([0.4, -0.3, 0.2])).matrix
        assert np.abs(op.matrix - exact).max() <= 1e-12 * np.abs(exact).max()

    def test_uniform_dilation_is_corrected_exactly(self):
        s = biconcave_rbc(1.0, order=6)
        op = SingularSelfInteraction(s, refresh_interval=10)
        s.set_positions(1.05 * s.X)
        op.refresh()
        ref = biconcave_rbc(1.0, order=6)
        ref.set_positions(1.05 * ref.X)
        exact = SingularSelfInteraction(ref).matrix
        assert np.abs(op.matrix - exact).max() <= 1e-12 * np.abs(exact).max()

    def test_rigid_rotation_is_corrected_exactly(self):
        """The Kabsch + kernel-conjugation term makes the intermediate
        refresh exact for rigid rotations (the deviatoric-refresh item):
        the corrected operator matches a fresh assembly on the rotated
        geometry to roundoff."""
        s = biconcave_rbc(1.0, order=6)
        op = SingularSelfInteraction(s, refresh_interval=10)
        th = 0.35
        R = np.array([[np.cos(th), -np.sin(th), 0.0],
                      [np.sin(th), np.cos(th), 0.0],
                      [0.0, 0.0, 1.0]])
        c = s.centroid()
        s.set_positions(((s.points - c) @ R.T + c).reshape(s.X.shape))
        assert op.refresh() is False        # intermediate, corrected
        ref = biconcave_rbc(1.0, order=6)
        cr = ref.centroid()
        ref.set_positions(((ref.points - cr) @ R.T + cr).reshape(ref.X.shape))
        exact = SingularSelfInteraction(ref).matrix
        assert np.abs(op.matrix - exact).max() <= 1e-12 * np.abs(exact).max()

    def test_similarity_motion_is_corrected_exactly(self):
        """Rotation + translation + dilation composed: still exact."""
        s = biconcave_rbc(1.0, order=5)
        op = SingularSelfInteraction(s, refresh_interval=10)
        th = -0.2
        R = np.array([[1.0, 0.0, 0.0],
                      [0.0, np.cos(th), -np.sin(th)],
                      [0.0, np.sin(th), np.cos(th)]])
        c = s.centroid()
        moved = 1.07 * ((s.points - c) @ R.T) + c + np.array([0.3, -0.1, 0.2])
        s.set_positions(moved.reshape(s.X.shape))
        op.refresh()
        ref = biconcave_rbc(1.0, order=5)
        ref.set_positions(moved.reshape(ref.X.shape))
        exact = SingularSelfInteraction(ref).matrix
        assert np.abs(op.matrix - exact).max() <= 1e-11 * np.abs(exact).max()

    def test_subthreshold_rotation_keeps_scale_only_correction(self):
        """Below the KABSCH_MIN_ANGLE gate (the deformation-noise regime
        of non-tumbling cells) the correction must stay the exact
        closed-form rescale — preserving the translation-dominated
        behavior the frozen factorized solvers were built against."""
        s = biconcave_rbc(1.0, order=5)
        op = SingularSelfInteraction(s, refresh_interval=10)
        ref_matrix = op.matrix.copy()
        th = 1e-4                           # << KABSCH_MIN_ANGLE
        R = np.array([[np.cos(th), -np.sin(th), 0.0],
                      [np.sin(th), np.cos(th), 0.0],
                      [0.0, 0.0, 1.0]])
        c = s.centroid()
        s.set_positions(((s.points - c) @ R.T + c).reshape(s.X.shape))
        op.refresh()
        scale = np.sqrt(s.area() / op._ref_area)
        assert np.array_equal(op.matrix, scale * ref_matrix)

    def test_full_refresh_cycle(self):
        s = biconcave_rbc(1.0, order=6)
        op = SingularSelfInteraction(s, refresh_interval=3)
        # init was full; two corrected refreshes, then full again
        assert op.refresh() is False
        assert op.refresh() is False
        assert op.refresh() is True
        # forcing restarts the cycle
        assert op.refresh(full=True) is True
        assert op.refresh() is False

    def test_deviation_bounded_and_shrinks_with_interval(self):
        """Trajectory error of the amortized operator is small and does
        not improve when the refresh interval grows."""
        exact = _scene()
        exact.run(4)
        devs = {}
        for k in (2, 4):
            sim = _scene(selfop_refresh_interval=k)
            sim.run(4)
            devs[k] = max(np.abs(a.X - b.X).max()
                          for a, b in zip(exact.cells, sim.cells))
        assert devs[2] <= 1e-4              # first-order-correction regime
        assert devs[2] <= devs[4] + 1e-12   # more refreshes, less error

    def test_validation_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ReproConfig(numerics=NumericsOptions(selfop_refresh_interval=0))
        with pytest.raises(ValueError):
            SingularSelfInteraction(biconcave_rbc(1.0, order=4),
                                    refresh_interval=0)

    def test_apply_reference_rejects_corrected_state(self):
        """After an intermediate refresh the cached rotated geometry is
        stale; the seed-path reference must refuse rather than mix it
        with the current surface."""
        s = biconcave_rbc(1.0, order=5)
        op = SingularSelfInteraction(s, refresh_interval=5)
        s.set_positions(s.X + 0.1)
        op.refresh()                        # corrected, not reassembled
        f = np.zeros((s.grid.nlat, s.grid.nphi, 3))
        with pytest.raises(RuntimeError):
            op.apply_reference(f)
        op.refresh(full=True)
        op.apply_reference(f)               # valid again

    def test_refresh_cell_forces_full_reassembly(self):
        sim = _scene(selfop_refresh_interval=100)
        sim.run(2)                          # operators now corrected-only
        i = 0
        op = sim.stepper._self_ops[i]
        # an out-of-band move (e.g. recycling) must fully reassemble
        sim.cells[i].set_positions(sim.cells[i].X + 0.5)
        sim.stepper.refresh_cell(i)
        fresh = SingularSelfInteraction(sim.cells[i])
        assert np.abs(op.matrix - fresh.matrix).max() <= \
            1e-12 * np.abs(fresh.matrix).max()


class TestFusedAssemblyPaths:
    def test_fused_table_and_fallback_agree(self):
        from repro.vesicle.self_interaction import _RotationTables
        s = ellipsoid(1.0, 1.2, 0.9, order=5)
        # explicit mode: the default assembly is "circulant" now, which
        # never consults the fused table
        op = SingularSelfInteraction(s, assembly="fused")
        fast = op.matrix.copy()
        tb = op.tables
        saved, tb._fused = tb._fused, None
        budget = _RotationTables.FUSED_TABLE_BUDGET
        try:
            _RotationTables.FUSED_TABLE_BUDGET = 0
            op.refresh(full=True)
            # ulp-level, not exactly 0.0: the table folds the phase into
            # the composition before the kernel contraction, the staged
            # fallback applies it after. (The seed asserted == 0.0, but
            # its budget patch landed on the lru_cache wrapper rather
            # than the class and never actually exercised the fallback;
            # _RotationTables is a plain class now, so this test finally
            # runs the path it names.)
            assert np.abs(op.matrix - fast).max() <= 1e-14
        finally:
            _RotationTables.FUSED_TABLE_BUDGET = budget
            tb._fused = saved

    def test_matrix_matches_reference_apply(self):
        s = biconcave_rbc(1.0, order=5)
        op = SingularSelfInteraction(s)
        rng = np.random.default_rng(9)
        f = rng.standard_normal((s.grid.nlat, s.grid.nphi, 3))
        assert np.abs(op.apply(f) - op.apply_reference(f)).max() <= 1e-12

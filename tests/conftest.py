"""Shared fixtures: small, fast numerics configurations."""
import numpy as np
import pytest

from repro.config import NumericsOptions


@pytest.fixture
def small_opts() -> NumericsOptions:
    """Coarse-but-fast parameters for solver tests."""
    return NumericsOptions(patch_quad=7, check_order=5, upsample_eta=1,
                           check_r_factor=0.2, gmres_max_iter=40,
                           gmres_tol=1e-10)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)

"""FMMBackend: accuracy vs DirectBackend, determinism under the checked
executor, registry/config integration, and the (slow) wall-clock race.

Scenes place cells on a lattice with spacing 2.4 for unit radius —
random centers overlap and turn the comparison into a near-singular
stress test instead of a far-field accuracy check.
"""
import time

import numpy as np
import pytest

from repro import ReproConfig, Scenario
from repro.core import make_backend
from repro.core.interactions import (DirectBackend, FMMBackend,
                                     TreecodeBackend)
from repro.runtime.executor import CheckedExecutor
from repro.surfaces import biconcave_rbc, sphere


def lattice_scene(ncells, order, seed=7, spacing=2.4):
    cells = []
    for k in range(ncells):
        center = (spacing * (k % 4), spacing * ((k // 4) % 4),
                  spacing * (k // 16) + 0.05 * (-1) ** k)
        cells.append(biconcave_rbc(1.0, center=center, order=order))
    rng = np.random.default_rng(seed)
    forces = [rng.normal(size=(c.grid.nlat, c.grid.nphi, 3))
              for c in cells]
    return cells, forces


def rel_error(ref, got):
    num = sum(np.linalg.norm(a - b) ** 2 for a, b in zip(ref, got)) ** 0.5
    den = sum(np.linalg.norm(a) ** 2 for a in ref) ** 0.5
    return num / den


@pytest.fixture(scope="module")
def six_cell_scene():
    return lattice_scene(6, 8)


@pytest.fixture(scope="module")
def direct_cell_cell(six_cell_scene):
    cells, forces = six_cell_scene
    be = DirectBackend().bind(cells, 1.0)
    be.prepare(forces)
    return be.cell_cell(), be


class TestFMMBackendAccuracy:
    @pytest.mark.parametrize("e,tol", [(4, 5e-3), (5, 5e-3),
                                       (6, 1e-4), (8, 1e-4)])
    def test_cell_cell_matches_direct(self, six_cell_scene,
                                      direct_cell_cell, e, tol):
        cells, forces = six_cell_scene
        ref, _ = direct_cell_cell
        fmm = FMMBackend(equiv_points_per_edge=e).bind(cells, 1.0)
        fmm.prepare(forces)
        assert rel_error(ref, fmm.cell_cell()) < tol

    def test_evaluate_at_matches_direct(self, six_cell_scene,
                                        direct_cell_cell):
        cells, forces = six_cell_scene
        _, direct = direct_cell_cell
        fmm = FMMBackend().bind(cells, 1.0)
        fmm.prepare(forces)
        targets = np.array([[12.0, 1.0, 0.5], [5.0, 5.0, 5.0],
                            [-3.0, 0.2, 0.1], [2.4, 2.4, 9.0]])
        ud = direct.evaluate_at(targets)
        uf = fmm.evaluate_at(targets)
        assert np.linalg.norm(ud - uf) / np.linalg.norm(ud) < 5e-3

    def test_stats_exposed(self, six_cell_scene):
        cells, forces = six_cell_scene
        fmm = FMMBackend().bind(cells, 1.0)
        fmm.prepare(forces)
        fmm.cell_cell()
        stats = fmm.stats
        assert set(stats) == {"p2p", "m2p", "m2l", "l2p", "p2l"}
        assert stats["p2p"] > 0


class TestFMMBackendDeterminism:
    def test_threaded_checked_bit_identical_to_serial(self, six_cell_scene):
        cells, forces = six_cell_scene
        serial = FMMBackend().bind(cells, 1.0)
        serial.prepare(forces)
        b_serial = serial.cell_cell()

        threaded = FMMBackend().bind(cells, 1.0)
        threaded.executor = CheckedExecutor(workers=2)
        threaded.prepare(forces)
        b_threaded = threaded.cell_cell()
        for s, t in zip(b_serial, b_threaded):
            assert s.tobytes() == t.tobytes()

        targets = np.array([[12.0, 1.0, 0.5], [5.0, 5.0, 5.0]])
        assert (serial.evaluate_at(targets).tobytes()
                == threaded.evaluate_at(targets).tobytes())


class TestFMMBackendIntegration:
    def test_registry_and_options(self):
        be = make_backend("fmm", equiv_points_per_edge=6, max_leaf=200)
        assert isinstance(be, FMMBackend)
        opts = be.options()
        assert opts["equiv_points_per_edge"] == 6
        assert opts["max_leaf"] == 200
        assert type(be)(**opts).options() == opts

    def test_config_accepts_fmm(self):
        cfg = ReproConfig(backend="fmm",
                          backend_options={"equiv_points_per_edge": 6})
        assert ReproConfig.from_dict(cfg.to_dict()) == cfg

    def test_builder_steps_with_fmm_backend(self):
        sim = (Scenario.builder()
               .cell(sphere(1.0, order=5))
               .cell(sphere(1.0, center=(2.4, 0.0, 0.0), order=5))
               .backend("fmm", equiv_points_per_edge=4)
               .build())
        assert isinstance(sim.backend, FMMBackend)
        sim.step()
        for c in sim.cells:
            assert np.all(np.isfinite(c.points))


@pytest.mark.slow
class TestFMMBackendRace:
    def test_fmm_beats_direct_and_treecode_at_64_cells(self):
        cells, forces = lattice_scene(64, 16)
        wall = {}
        results = {}
        for name in ("direct", "treecode", "fmm"):
            be = make_backend(name).bind(cells, 1.0)
            t0 = time.perf_counter()
            be.prepare(forces)
            results[name] = be.cell_cell()
            wall[name] = time.perf_counter() - t0
        assert rel_error(results["direct"], results["fmm"]) < 5e-3
        assert wall["fmm"] < wall["direct"]
        assert wall["fmm"] < wall["treecode"]

"""The CellBatch execution layer: pluggable executors, the
structure-of-arrays batching of per-cell stages, and the float32
far-field mode."""
import numpy as np
import pytest

from repro.config import NumericsOptions, ReproConfig
from repro.core.cellbatch import CellBatch
from repro.core.simulation import Simulation
from repro.physics.terms import Bending, Gravity, Tension
from repro.runtime.executor import (EXECUTORS, ProcessPoolExecutor,
                                    ProcessTask, SerialExecutor,
                                    ThreadPoolExecutor, make_executor,
                                    resolve_workers, worker_timers)
from repro.surfaces import biconcave_rbc, ellipsoid
from repro.vesicle import CellNearEvaluator, SingularSelfInteraction


def _scene(ncells=2, order=6, orders=None, backend="direct", **numopts):
    orders = orders or [order] * ncells
    cells = [biconcave_rbc(1.0, center=(2.4 * i, 0.0, 0.15 * (-1.0) ** i),
                           order=p) for i, p in enumerate(orders)]
    cfg = ReproConfig(dt=0.05,
                      forces=[Bending(0.01), Tension(),
                              Gravity(0.5, (0.0, 0.0, -1.0))],
                      backend=backend, with_collisions=True,
                      numerics=NumericsOptions(**numopts))
    return Simulation(cells, config=cfg)


def _max_dev(a, b):
    return max(np.abs(x.X - y.X).max() for x, y in zip(a.cells, b.cells))


class TestExecutors:
    def test_registry_and_factory(self):
        assert set(EXECUTORS) >= {"serial", "thread"}
        ex = make_executor("thread", workers=3)
        assert isinstance(ex, ThreadPoolExecutor) and ex.workers == 3
        with pytest.raises(ValueError):
            make_executor("gpu")
        with pytest.raises(ValueError):
            make_executor("thread", workers=0)

    def test_maps_preserve_order(self):
        items = list(range(20))
        fn = lambda x: x * x
        serial = SerialExecutor().map(fn, items)
        pool = ThreadPoolExecutor(workers=4)
        try:
            assert pool.map(fn, items) == serial == [x * x for x in items]
        finally:
            pool.close()

    def test_thread_map_propagates_exceptions(self):
        pool = ThreadPoolExecutor(workers=2)

        def boom(x):
            if x == 3:
                raise RuntimeError("task 3 failed")
            return x

        try:
            with pytest.raises(RuntimeError, match="task 3"):
                pool.map(boom, range(6))
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = ThreadPoolExecutor(workers=2)
        pool.map(lambda x: x, range(4))
        pool.close()
        pool.close()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="executor"):
            ReproConfig(numerics=NumericsOptions(executor="gpu"))
        with pytest.raises(ValueError, match="workers"):
            ReproConfig(numerics=NumericsOptions(workers=0))
        with pytest.raises(ValueError, match="farfield_dtype"):
            ReproConfig(numerics=NumericsOptions(farfield_dtype="float16"))
        cfg = ReproConfig(numerics=NumericsOptions(
            executor="thread", workers=2, farfield_dtype="float32"))
        assert ReproConfig.from_dict(cfg.to_dict()) == cfg


class TestCellBatch:
    def test_groups_by_order(self):
        cells = [ellipsoid(1.0, 1.0, 1.2, order=4),
                 biconcave_rbc(1.0, order=6),
                 ellipsoid(1.0, 1.1, 0.9, order=4)]
        batch = CellBatch(cells)
        assert not batch.homogeneous
        assert batch.groups == [(4, [0, 2]), (6, [1])]
        assert CellBatch(cells[:1]).homogeneous
        stacked = batch.stacked_positions()
        assert stacked[4].shape == (2, 5, 10, 3)

    def test_seed_coeffs_matches_per_cell_forward(self):
        cells = [biconcave_rbc(1.0, center=(2.4 * i, 0, 0), order=6)
                 for i in range(3)] + [ellipsoid(1.0, 1.2, 0.8, order=4)]
        ref = [c.coeffs().copy() for c in
               [biconcave_rbc(1.0, center=(2.4 * i, 0, 0), order=6)
                for i in range(3)] + [ellipsoid(1.0, 1.2, 0.8, order=4)]]
        batch = CellBatch(cells)
        batch.seed_coeffs()
        for c, r in zip(cells, ref):
            assert c._coeffs is not None
            scale = np.abs(r).max()
            assert np.abs(c.coeffs() - r).max() <= 1e-12 * scale

    def test_seed_coeffs_validates_shape(self):
        s = ellipsoid(1.0, 1.0, 1.2, order=4)
        with pytest.raises(ValueError):
            s.seed_coeffs(np.zeros((3, 4, 9)))

    def test_apply_matrices_matches_per_cell(self):
        """The stacked-GEMM homogeneous path equals per-cell GEMVs."""
        rng = np.random.default_rng(11)
        cells = [biconcave_rbc(1.0, center=(2.4 * i, 0, 0), order=5)
                 for i in range(3)] + [ellipsoid(1.0, 1.2, 0.8, order=4)]
        ops = [SingularSelfInteraction(c) for c in cells]
        vecs = [rng.standard_normal(3 * c.n_points) for c in cells]
        batch = CellBatch(cells)
        got = batch.apply_matrices([op.matrix for op in ops], vecs)
        for op, v, g in zip(ops, vecs, got):
            ref = op.matrix @ v
            assert np.abs(g - ref).max() <= 1e-12 * max(1.0, np.abs(ref).max())

    def test_apply_matrices_identity_passthrough(self):
        cells = [ellipsoid(1.0, 1.0, 1.2, order=4) for _ in range(2)]
        batch = CellBatch(cells)
        vecs = [np.arange(3.0 * c.n_points) for c in cells]
        M = np.eye(3 * cells[0].n_points) * 2.0
        out = batch.apply_matrices([None, M], vecs)
        assert np.array_equal(out[0], vecs[0])
        assert np.allclose(out[1], 2.0 * vecs[1])

    def test_apply_matrices_rejects_length_mismatch(self):
        batch = CellBatch([ellipsoid(1.0, 1.0, 1.2, order=4)])
        with pytest.raises(ValueError):
            batch.apply_matrices([], [np.zeros(3)])


class TestExecutorEquivalence:
    def test_threaded_bit_identical_on_reference_scene(self):
        """Acceptance: the threaded executor is bit-identical to serial
        on the 6-cell order-8 scene over 5 steps."""
        serial = _scene(ncells=6, order=8)
        threaded = _scene(ncells=6, order=8, executor="thread", workers=4)
        serial.run(5)
        threaded.run(5)
        assert _max_dev(serial, threaded) == 0.0
        assert [r.implicit_iterations for r in serial.history] == \
            [r.implicit_iterations for r in threaded.history]

    def test_single_worker_threadpool_matches_serial(self):
        serial = _scene()
        pool1 = _scene(executor="thread", workers=1)
        serial.run(3)
        pool1.run(3)
        assert _max_dev(serial, pool1) == 0.0

    def test_mixed_order_scene_grouping(self):
        """Heterogeneous scenes group by order (two stacked GEMMs) and
        stay deterministic under threading."""
        serial = _scene(ncells=3, orders=[6, 5, 6])
        assert serial.stepper.batch.groups == [(5, [1]), (6, [0, 2])]
        threaded = _scene(ncells=3, orders=[6, 5, 6],
                          executor="thread", workers=3)
        serial.run(3)
        threaded.run(3)
        assert _max_dev(serial, threaded) == 0.0

    def test_treecode_backend_threaded_matches_serial(self):
        cells = [biconcave_rbc(1.0, center=(2.4 * i, 0.0, 0.0), order=5)
                 for i in range(3)]
        cfg = dict(dt=0.05, forces=[Bending(0.01)], backend="treecode",
                   with_collisions=False)
        a = Simulation([c.translated(0) for c in cells],
                       config=ReproConfig(**cfg))
        b = Simulation([c.translated(0) for c in cells],
                       config=ReproConfig(
                           **cfg, numerics=NumericsOptions(
                               executor="thread", workers=2)))
        a.run(2)
        b.run(2)
        assert _max_dev(a, b) == 0.0


class TestFarfieldFloat32:
    def test_evaluator_far_field_accuracy(self):
        rng = np.random.default_rng(3)
        s = biconcave_rbc(1.0, order=6)
        den = rng.standard_normal((s.grid.nlat, s.grid.nphi, 3))
        trg = rng.standard_normal((200, 3)) * 0.5 + np.array([4.0, 0, 0])
        ref = CellNearEvaluator(s).evaluate(den, trg)
        got = CellNearEvaluator(s, farfield_dtype="float32").evaluate(den, trg)
        rel = np.abs(got - ref).max() / np.abs(ref).max()
        assert 0.0 < rel <= 1e-5        # float32 used, accuracy preserved

    def test_near_path_stays_float64(self):
        """Near targets go through the near scheme, which is identical in
        both modes."""
        rng = np.random.default_rng(4)
        s = biconcave_rbc(1.0, order=6)
        den = rng.standard_normal((s.grid.nlat, s.grid.nphi, 3))
        ev64 = CellNearEvaluator(s)
        ev32 = CellNearEvaluator(s, farfield_dtype="float32")
        g = s.geometry()
        trg = (s.points + 0.3 * ev64.h * g.normal.reshape(-1, 3))[::7]
        assert ev64.near_target_indices(trg).size == trg.shape[0]
        ref = ev64.evaluate(den, trg)
        got = ev32.evaluate(den, trg)
        assert np.array_equal(ref, got)

    def test_treecode_equivalent_sums_accuracy(self):
        from repro.fmm import KernelIndependentTreecode
        rng = np.random.default_rng(5)
        src = rng.standard_normal((500, 3))
        den = rng.standard_normal((500, 3))
        trg = rng.standard_normal((100, 3)) + np.array([12.0, 0, 0])
        t64 = KernelIndependentTreecode(src, den, "stokes_slp")
        t32 = KernelIndependentTreecode(src, den, "stokes_slp",
                                        farfield_dtype="float32")
        ref = t64.evaluate(trg)
        got = t32.evaluate(trg)
        rel = np.abs(got - ref).max() / np.abs(ref).max()
        assert 0.0 < rel <= 1e-5

    def test_trajectory_accuracy_vs_float64(self):
        exact = _scene()
        fast = _scene(farfield_dtype="float32")
        exact.run(3)
        fast.run(3)
        dev = _max_dev(exact, fast)
        assert 0.0 < dev <= 1e-4        # far field engaged, error bounded

    def test_degenerate_cloud_stays_finite(self):
        """A single source coincident with the target must give exactly
        zero in float32 too (the inv_r^3 overflow guard)."""
        from repro.kernels import stokes_slp_apply
        p = np.array([[1.0, 1.0, 1.0]])
        den = np.array([[1.0, 0.0, 0.0]])
        out = stokes_slp_apply(p, den, p, dtype="float32")
        assert np.array_equal(out, np.zeros((1, 3)))

    def test_prebound_dtype_mismatch_raises(self):
        from repro.core.interactions import DirectBackend
        cells = [biconcave_rbc(1.0, order=5)]
        be = DirectBackend().bind(cells, 1.0)    # float64 default
        cfg = ReproConfig(with_collisions=False, forces=[Bending(0.01)],
                          numerics=NumericsOptions(farfield_dtype="float32"))
        with pytest.raises(ValueError, match="farfield_dtype"):
            Simulation(cells, config=cfg, backend=be)


class TestCheckedExecutor:
    def test_registry_and_inner_selection(self):
        from repro.runtime.executor import CheckedExecutor
        assert "checked" in EXECUTORS
        ex1 = make_executor("checked", workers=1)
        assert isinstance(ex1, CheckedExecutor)
        assert isinstance(ex1.inner, SerialExecutor)
        ex4 = make_executor("checked", workers=4)
        assert isinstance(ex4.inner, ThreadPoolExecutor)
        assert ex4.inner.workers == 4
        ex4.close()

    def test_plain_map_matches_serial(self):
        ex = make_executor("checked", workers=2)
        try:
            assert ex.map(lambda x: x * x, range(10)) == \
                [x * x for x in range(10)]
        finally:
            ex.close()

    def test_bit_identical_on_reference_scene(self):
        """Acceptance: the checked executor completes the 6-cell order-8
        scene bit-identically to serial — the verifying wrapper (frozen
        tables + sampled re-runs) must not perturb the physics."""
        serial = _scene(ncells=6, order=8)
        checked = _scene(ncells=6, order=8, executor="checked", workers=4)
        serial.run(3)
        checked.run(3)
        assert _max_dev(serial, checked) == 0.0
        assert [r.implicit_iterations for r in serial.history] == \
            [r.implicit_iterations for r in checked.history]

    def test_detects_shared_cache_write(self):
        """A task scribbling on a registered shared table raises
        DeterminismError instead of silently corrupting other cells."""
        from repro.analysis.guard import DeterminismError, register_shared
        shared = register_shared(np.zeros(8))

        def task(i):
            shared[0] += i          # cross-task accumulator: forbidden
            return i

        ex = make_executor("checked", workers=1)
        try:
            with pytest.raises(DeterminismError, match="frozen shared"):
                ex.map(task, range(4))
        finally:
            ex.close()
        assert shared.flags.writeable       # restored despite the raise
        assert shared[0] == 0.0             # nothing leaked through

    def test_detects_nondeterministic_task(self):
        """A task whose output depends on call count fails the sampled
        re-run check."""
        from repro.analysis.guard import DeterminismError
        state = {"n": 0}

        def task(i):
            state["n"] += 1
            return np.array([float(state["n"])])

        ex = make_executor("checked", workers=1)
        try:
            with pytest.raises(DeterminismError, match="not deterministic"):
                ex.map(task, range(4))
        finally:
            ex.close()

    def test_none_results_not_rerun(self):
        """Stateful mutators returning None (e.g. _refresh_after_step)
        are exempt from the re-run sample: re-running them would advance
        their internal counters."""
        calls = []

        def task(i):
            calls.append(i)
            return None

        ex = make_executor("checked", workers=1)
        try:
            assert ex.map(task, range(4)) == [None] * 4
        finally:
            ex.close()
        assert calls == [0, 1, 2, 3]        # exactly once each


class _Square(ProcessTask):
    """Module-level ProcessTask fixture (workers unpickle by module path)."""

    def __call__(self, x):
        return x * x


class _Boom(ProcessTask):
    def __call__(self, x):
        if x == 3:
            raise RuntimeError("task 3 failed")
        return x


class _Timed(ProcessTask):
    """Accumulates measurable worker-side time in a known category."""

    def __call__(self, x):
        import time
        with worker_timers().scope("Other-FMM"):
            time.sleep(0.002)
        return x + 1


class TestProcessExecutor:
    def test_registry_and_factory(self):
        from repro.runtime.executor import (CheckedExecutor,
                                            CheckedProcessExecutor)
        assert {"process", "checked-process"} <= set(EXECUTORS)
        ex = make_executor("process", workers=2)
        assert isinstance(ex, ProcessPoolExecutor) and ex.workers == 2
        assert ex.shard_count(6) == 2       # capped by workers
        assert ex.shard_count(1) == 0       # nothing to shard
        ex.close()
        chk = make_executor("checked-process", workers=2)
        assert isinstance(chk, CheckedProcessExecutor)
        assert isinstance(chk, CheckedExecutor)
        assert isinstance(chk.inner, ProcessPoolExecutor)
        assert chk.shard_count(4) == 2      # forwarded to the inner pool
        chk.close()

    def test_auto_worker_resolution(self):
        import os
        cores = os.cpu_count() or 1
        assert resolve_workers("auto", 4) == max(1, min(cores, 4))
        assert resolve_workers("auto", 1) == 1   # never more shards than cells
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)
        cfg = ReproConfig(numerics=NumericsOptions(
            executor="process", workers="auto"))
        assert ReproConfig.from_dict(cfg.to_dict()) == cfg

    def test_closures_run_inline_without_pool(self):
        """Non-ProcessTask callables keep serial semantics: they run on
        the calling thread and no worker pool is ever created."""
        ex = ProcessPoolExecutor(workers=2)
        try:
            got = ex.map(lambda x: x * x, range(8))
            assert got == [x * x for x in range(8)]
            assert ex._pool is None
        finally:
            ex.close()

    def test_process_task_dispatch_preserves_order(self):
        ex = ProcessPoolExecutor(workers=2)
        try:
            got = ex.map(_Square(), list(range(12)))
            assert got == [x * x for x in range(12)]
            assert ex._pool is not None     # really crossed the boundary
        finally:
            ex.close()

    def test_process_map_propagates_exceptions(self):
        ex = ProcessPoolExecutor(workers=2)
        try:
            with pytest.raises(RuntimeError, match="task 3"):
                ex.map(_Boom(), list(range(6)))
        finally:
            ex.close()

    def test_close_is_idempotent_and_reopens(self):
        ex = ProcessPoolExecutor(workers=2)
        assert ex.map(_Square(), [1, 2]) == [1, 4]
        ex.close()
        ex.close()
        assert ex.map(_Square(), [3, 4]) == [9, 16]
        ex.close()

    def test_worker_timer_deltas_fold_into_parent(self):
        """Worker-side ComponentTimers seconds come back with each result
        and fold into the parent's accumulators."""
        from repro.core.timers import ComponentTimers
        timers = ComponentTimers()
        ex = ProcessPoolExecutor(workers=2)
        ex.attach(timers)
        try:
            assert ex.map(_Timed(), [0, 1, 2, 3]) == [1, 2, 3, 4]
        finally:
            ex.close()
        assert timers.seconds.get("Other-FMM", 0.0) > 0.0

    def test_ledger_prices_scatter_and_gather(self):
        ex = ProcessPoolExecutor(workers=2)
        try:
            ex.map(_Square(), list(range(8)))
        finally:
            ex.close()
        ops = {op for (_, op) in ex.ledger.stats}
        assert {"scatter", "gather"} <= ops
        assert all(s.bytes > 0 for (_, op), s in ex.ledger.stats.items()
                   if op in ("scatter", "gather"))

    def test_process_bit_identical_on_reference_scene(self):
        """Acceptance: the process executor is bit-identical to serial
        on the 6-cell order-8 scene over 5 steps."""
        serial = _scene(ncells=6, order=8)
        sharded = _scene(ncells=6, order=8, executor="process", workers=2)
        serial.run(5)
        sharded.run(5)
        assert _max_dev(serial, sharded) == 0.0
        assert [r.implicit_iterations for r in serial.history] == \
            [r.implicit_iterations for r in sharded.history]

    @pytest.mark.parametrize("backend", ["treecode", "fmm"])
    def test_far_field_backends_bit_identical(self, backend):
        serial = _scene(ncells=6, order=8, backend=backend)
        sharded = _scene(ncells=6, order=8, backend=backend,
                         executor="process", workers=2)
        serial.run(2)
        sharded.run(2)
        assert _max_dev(serial, sharded) == 0.0

    def test_checked_process_composes(self):
        """The verifying wrapper re-runs sampled shards inline and
        bit-compares against the worker-process results."""
        serial = _scene(ncells=6, order=8)
        checked = _scene(ncells=6, order=8,
                         executor="checked-process", workers=2)
        serial.run(3)
        checked.run(3)
        assert _max_dev(serial, checked) == 0.0

    def test_checkpoint_resume_bit_identical(self, tmp_path):
        """save/load_checkpoint round-trips while the process executor is
        active: the resumed run (fresh pool) matches the original bitwise."""
        from repro.resilience import load_checkpoint, save_checkpoint
        full = _scene(ncells=3, order=5, executor="process", workers=2)
        full.run(2)
        path = save_checkpoint(full, str(tmp_path / "ckpt"))
        full.run(2)
        resumed = load_checkpoint(path)
        assert resumed.config.numerics.executor == "process"
        resumed.run(2)
        assert _max_dev(full, resumed) == 0.0
        assert full.t == resumed.t


class TestThreadPoolLifecycle:
    def test_concurrent_first_map_creates_one_pool(self, monkeypatch):
        """N threads hitting a fresh executor's map() simultaneously must
        agree on a single pool — the lazy _ensure_pool is locked."""
        import concurrent.futures as futures
        import threading

        real = futures.ThreadPoolExecutor
        created = []

        class CountingPool(real):
            def __init__(self, *a, **kw):
                created.append(1)
                super().__init__(*a, **kw)

        monkeypatch.setattr(futures, "ThreadPoolExecutor", CountingPool)
        ex = ThreadPoolExecutor(workers=2)
        n = 8
        barrier = threading.Barrier(n)
        results = [None] * n

        def hammer(k):
            barrier.wait()
            results[k] = ex.map(lambda x: x + k, range(4))

        threads = [threading.Thread(target=hammer, args=(k,))
                   for k in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ex.close()
        assert len(created) == 1
        assert all(results[k] == [x + k for x in range(4)]
                   for k in range(n))

    def test_close_is_idempotent_and_reopens(self):
        ex = ThreadPoolExecutor(workers=2)
        assert ex.map(lambda x: x, range(4)) == [0, 1, 2, 3]
        ex.close()
        ex.close()                           # second close is a no-op
        # a map after close lazily builds a fresh pool
        assert ex.map(lambda x: x * 2, range(4)) == [0, 2, 4, 6]
        ex.close()

    def test_map_racing_close(self):
        """close() during concurrent maps never deadlocks or drops
        results; maps either reuse the old pool or build a new one."""
        import threading
        ex = ThreadPoolExecutor(workers=2)
        stop = threading.Event()
        errors = []

        def mapper():
            while not stop.is_set():
                try:
                    out = ex.map(lambda x: x * x, range(8))
                    assert out == [x * x for x in range(8)]
                except Exception as e:      # pragma: no cover
                    errors.append(e)
                    return

        threads = [threading.Thread(target=mapper) for _ in range(3)]
        for t in threads:
            t.start()
        for _ in range(20):
            ex.close()
        stop.set()
        for t in threads:
            t.join()
        ex.close()
        assert errors == []

"""Stokes/Laplace kernel identity tests (the sign conventions of DESIGN.md)."""
import numpy as np
import pytest

from repro.kernels import (
    laplace_dlp_apply,
    laplace_dlp_matrix,
    laplace_slp_apply,
    laplace_slp_matrix,
    stokes_dlp_apply,
    stokes_dlp_matrix,
    stokes_pressure_slp_apply,
    stokes_slp_apply,
    stokes_slp_matrix,
)
from repro.surfaces import sphere


@pytest.fixture(scope="module")
def sphere_quad():
    s = sphere(1.0, order=12)
    g = s.geometry()
    w = s.quadrature_weights().ravel()
    pts = s.points
    nrm = g.normal.reshape(-1, 3)
    return pts, w, nrm


class TestLaplace:
    def test_dlp_constant_identity(self, sphere_quad):
        pts, w, nrm = sphere_quad
        inside = np.array([[0.1, -0.2, 0.3], [0.0, 0.0, 0.0]])
        outside = np.array([[2.0, 0.0, 0.0], [0.0, -3.0, 1.0]])
        vi = laplace_dlp_apply(pts, nrm, w, inside)
        vo = laplace_dlp_apply(pts, nrm, w, outside)
        assert np.allclose(vi, 1.0, atol=1e-6)
        assert np.allclose(vo, 0.0, atol=1e-6)

    def test_slp_exterior_is_point_charge(self, sphere_quad):
        # Constant density on a sphere looks like a point charge outside.
        pts, w, nrm = sphere_quad
        trg = np.array([[3.0, 0.0, 0.0]])
        v = laplace_slp_apply(pts, w, trg)
        total = w.sum()
        assert np.isclose(v[0], total / (4 * np.pi * 3.0), rtol=1e-8)

    def test_matrix_consistent_with_apply(self, rng):
        src = rng.normal(size=(30, 3))
        trg = rng.normal(size=(7, 3)) + 5.0
        n = rng.normal(size=(30, 3))
        n /= np.linalg.norm(n, axis=1, keepdims=True)
        q = rng.normal(size=30)
        assert np.allclose(laplace_slp_matrix(src, trg) @ q,
                           laplace_slp_apply(src, q, trg))
        assert np.allclose(laplace_dlp_matrix(src, n, trg) @ q,
                           laplace_dlp_apply(src, n, q, trg))

    def test_self_pair_excluded(self):
        src = np.zeros((1, 3))
        assert laplace_slp_apply(src, np.ones(1), src)[0] == 0.0


class TestStokes:
    def test_dlp_constant_identity(self, sphere_quad):
        pts, w, nrm = sphere_quad
        c = np.array([0.3, -0.5, 0.2])
        den = w[:, None] * np.broadcast_to(c, (len(w), 3))
        vi = stokes_dlp_apply(pts, nrm, den, np.array([[0.2, 0.1, -0.3]]))
        vo = stokes_dlp_apply(pts, nrm, den, np.array([[2.5, 0.0, 0.0]]))
        assert np.allclose(vi[0], c, atol=1e-5)
        assert np.allclose(vo[0], 0.0, atol=1e-5)

    def test_slp_divergence_free(self, rng):
        src = rng.normal(size=(20, 3))
        f = rng.normal(size=(20, 3))
        x0 = np.array([4.0, 1.0, -2.0])
        h = 1e-5
        div = 0.0
        for k in range(3):
            e = np.zeros(3)
            e[k] = h
            up = stokes_slp_apply(src, f, (x0 + e)[None, :])[0, k]
            dn = stokes_slp_apply(src, f, (x0 - e)[None, :])[0, k]
            div += (up - dn) / (2 * h)
        assert abs(div) < 1e-8

    def test_stokeslet_satisfies_stokes_eq(self, rng):
        # -mu lap u + grad p = 0 away from the source.
        src = np.zeros((1, 3))
        f = np.array([[1.0, 0.5, -0.25]])
        x0 = np.array([1.5, 0.7, -0.3])
        h = 1e-4
        lap = np.zeros(3)
        for k in range(3):
            e = np.zeros(3)
            e[k] = h
            lap += (stokes_slp_apply(src, f, (x0 + e)[None])[0]
                    - 2 * stokes_slp_apply(src, f, x0[None])[0]
                    + stokes_slp_apply(src, f, (x0 - e)[None])[0]) / h ** 2
        gradp = np.zeros(3)
        for k in range(3):
            e = np.zeros(3)
            e[k] = h
            gradp[k] = (stokes_pressure_slp_apply(src, f, (x0 + e)[None])[0]
                        - stokes_pressure_slp_apply(src, f, (x0 - e)[None])[0]) / (2 * h)
        assert np.allclose(-lap + gradp, 0.0, atol=1e-5)

    def test_matrices_consistent_with_apply(self, rng):
        src = rng.normal(size=(15, 3))
        trg = rng.normal(size=(6, 3)) + 4.0
        n = rng.normal(size=(15, 3))
        n /= np.linalg.norm(n, axis=1, keepdims=True)
        f = rng.normal(size=(15, 3))
        u1 = (stokes_slp_matrix(src, trg) @ f.ravel()).reshape(-1, 3)
        assert np.allclose(u1, stokes_slp_apply(src, f, trg))
        u2 = (stokes_dlp_matrix(src, n, trg) @ f.ravel()).reshape(-1, 3)
        assert np.allclose(u2, stokes_dlp_apply(src, n, f, trg))

    def test_source_blocked_path_matches_matrix(self, rng):
        # Above _SRC_CHUNK sources the apply cache-blocks both dimensions;
        # it must agree with the dense matrix to rounding, including
        # coincident pairs that land mid-block (the exact-zero exclusion).
        src = rng.normal(size=(600, 3))
        f = rng.normal(size=(600, 3))
        trg = np.vstack([rng.normal(size=(40, 3)) + 2.0,
                         src[[5, 300, 599]]])
        ref = (stokes_slp_matrix(src, trg) @ f.ravel()).reshape(-1, 3)
        got = stokes_slp_apply(src, f, trg)
        assert np.allclose(got, ref, atol=1e-10)

    def test_source_blocked_equals_single_pass(self, rng):
        import repro.kernels.stokes as ks
        src = rng.normal(size=(700, 3))
        f = rng.normal(size=(700, 3))
        trg = rng.normal(size=(1200, 3)) * 2.0
        blocked = stokes_slp_apply(src, f, trg)
        old = ks._SRC_CHUNK
        try:
            ks._SRC_CHUNK = 10 ** 9   # force the single-pass path
            single = stokes_slp_apply(src, f, trg)
        finally:
            ks._SRC_CHUNK = old
        assert np.allclose(blocked, single, atol=1e-12)

    def test_viscosity_scaling(self, rng):
        src = rng.normal(size=(10, 3))
        f = rng.normal(size=(10, 3))
        trg = rng.normal(size=(4, 3)) + 3.0
        u1 = stokes_slp_apply(src, f, trg, viscosity=1.0)
        u2 = stokes_slp_apply(src, f, trg, viscosity=2.0)
        assert np.allclose(u1, 2 * u2)

    def test_translating_sphere_single_layer(self, sphere_quad):
        # Constant density c on sphere radius a gives u = (2a/3mu) c inside.
        pts, w, nrm = sphere_quad
        c = np.array([1.0, 0.0, 0.0])
        den = w[:, None] * np.broadcast_to(c, (len(w), 3))
        u = stokes_slp_apply(pts, den, np.array([[0.0, 0.0, 0.0]]))
        assert np.allclose(u[0], 2.0 / 3.0 * c, rtol=1e-8)

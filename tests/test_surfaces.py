"""Differential-geometry tests on spectral surfaces."""
import numpy as np
import pytest

from repro.surfaces import SpectralSurface, biconcave_rbc, ellipsoid, sphere, unit_sphere


class TestSphereGeometry:
    def test_area_volume_exact(self):
        s = sphere(2.5, order=10)
        assert np.isclose(s.area(), 4 * np.pi * 2.5 ** 2, rtol=1e-12)
        assert np.isclose(s.volume(), 4 / 3 * np.pi * 2.5 ** 3, rtol=1e-12)

    def test_curvatures(self):
        s = sphere(2.0, order=8)
        g = s.geometry()
        assert np.allclose(g.H, -0.5, atol=1e-11)
        assert np.allclose(g.K, 0.25, atol=1e-11)

    def test_normals_outward_unit(self):
        s = sphere(1.0, center=(1.0, -1.0, 2.0), order=8)
        g = s.geometry()
        rad = (s.X - np.array([1.0, -1.0, 2.0]))
        rad /= np.linalg.norm(rad, axis=-1, keepdims=True)
        assert np.allclose(np.einsum("ijk,ijk->ij", g.normal, rad), 1.0,
                           atol=1e-10)

    def test_centroid(self):
        s = sphere(1.3, center=(0.5, 0.25, -2.0), order=10)
        assert np.allclose(s.centroid(), [0.5, 0.25, -2.0], atol=1e-10)

    def test_reduced_volume_one(self):
        assert np.isclose(unit_sphere(8).reduced_volume(), 1.0, atol=1e-12)


class TestOperators:
    def test_laplace_beltrami_eigenfunctions(self):
        R = 1.7
        s = sphere(R, order=10)
        for f, lam in [(s.X[:, :, 2], 2.0), (s.X[:, :, 0], 2.0),
                       (s.X[:, :, 0] * s.X[:, :, 1], 6.0)]:
            lb = s.laplace_beltrami(f)
            assert np.abs(lb + lam * f / R ** 2).max() < 1e-9

    def test_divergence_of_position_is_two(self):
        e = ellipsoid(1.0, 1.4, 0.8, order=12)
        dv = e.surface_divergence(e.X)
        assert np.abs(dv - 2.0).max() < 1e-9

    def test_gradient_tangent_to_surface(self):
        e = ellipsoid(1.0, 1.2, 0.9, order=10)
        g = e.geometry()
        grad = e.surface_gradient(e.X[:, :, 2])
        dot = np.einsum("ijk,ijk->ij", grad, g.normal)
        assert np.abs(dot).max() < 1e-4

    def test_integral_of_lb_vanishes(self):
        # int_Gamma Delta_gamma f dS = 0 on closed surfaces; spectral
        # convergence in the order (9.6e-6 at p=20, 0.027 at p=8).
        rbc = biconcave_rbc(order=16)
        w = rbc.quadrature_weights()
        lb = rbc.laplace_beltrami(rbc.X[:, :, 0] ** 2)
        assert abs((w * lb).sum()) < 1e-3

    def test_gradient_of_constant_zero(self):
        s = sphere(1.0, order=6)
        grad = s.surface_gradient(np.ones((s.grid.nlat, s.grid.nphi)))
        assert np.abs(grad).max() < 1e-10


class TestShapes:
    def test_rbc_reduced_volume(self):
        rbc = biconcave_rbc(order=16)
        nu = rbc.reduced_volume()
        assert 0.55 < nu < 0.75  # biconcave discocyte ballpark

    def test_rbc_scales(self):
        r1 = biconcave_rbc(radius=1.0, order=8)
        r2 = biconcave_rbc(radius=2.0, order=8)
        assert np.isclose(r2.volume() / r1.volume(), 8.0, rtol=1e-10)

    def test_ellipsoid_volume(self):
        e = ellipsoid(1.0, 2.0, 3.0, order=12)
        assert np.isclose(e.volume(), 4 / 3 * np.pi * 6.0, rtol=1e-10)


class TestTransformsOfSurfaces:
    def test_translation(self):
        s = unit_sphere(6)
        t = s.translated([1.0, 2.0, 3.0])
        assert np.allclose(t.centroid(), [1, 2, 3], atol=1e-10)
        assert np.isclose(t.area(), s.area())

    def test_rotation_preserves_geometry(self):
        rbc = biconcave_rbc(order=10)
        th = 0.7
        R = np.array([[np.cos(th), -np.sin(th), 0],
                      [np.sin(th), np.cos(th), 0], [0, 0, 1.0]])
        r = rbc.rotated(R)
        assert np.isclose(r.area(), rbc.area(), rtol=1e-10)
        assert np.isclose(r.volume(), rbc.volume(), rtol=1e-10)

    def test_scaling(self):
        s = unit_sphere(6).scaled(2.0)
        assert np.isclose(s.volume(), 4 / 3 * np.pi * 8, rtol=1e-10)

    def test_upsample_exact(self):
        rbc = biconcave_rbc(order=8)
        up = rbc.upsampled(16)
        assert np.isclose(up.area(), rbc.area(), rtol=1e-4)
        assert np.isclose(up.volume(), rbc.volume(), rtol=1e-4)

    def test_set_positions_invalidates_cache(self):
        s = unit_sphere(6)
        a0 = s.area()
        s.set_positions(2.0 * s.X)
        assert np.isclose(s.area(), 4 * a0, rtol=1e-10)

    def test_quadrature_weights_integrate_area(self):
        e = ellipsoid(1.0, 1.1, 0.9, order=10)
        assert np.isclose(e.quadrature_weights().sum(), e.area(), rtol=1e-12)

    def test_point_cloud_roundtrip(self):
        s = unit_sphere(5)
        s2 = SpectralSurface(s.points, order=5)
        assert np.allclose(s2.X, s.X)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SpectralSurface(np.zeros((4, 9, 3)), order=5)

"""E7 — Figs. 1/8 setup: the RBC filling algorithm on vessel networks.

Paper: vessels are filled with nearly-touching RBCs of radii in
[r0, 2r0]; the weak-scaling geometries reach volume fractions of 17-27%.
The bench fills the bifurcating demo network and checks the fraction band
and interference-freeness.
"""
import numpy as np

from repro.collision import candidate_object_pairs, cell_collision_mesh, compute_contacts
from repro.vessel import demo_bifurcation_network, fill_with_rbcs


def _run():
    net = demo_bifurcation_network()
    lo, hi = net.bounding_box()
    lumen = net.lumen_volume(samples_per_axis=30)
    fill = fill_with_rbcs(net.signed_distance, (lo, hi), spacing=0.72,
                          lumen_volume=lumen, order=5, shape="rbc", seed=3)
    return net, fill


def test_fig1_8_filling(benchmark):
    net, fill = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== Figs. 1/8 setup reproduction (vessel filling) ===")
    print(f"paper: volume fractions 17-27% (weak-scaling tables), "
          f"radii in [r0, 2r0]")
    print(f"measured: {fill.n_cells} cells, volume fraction "
          f"{fill.volume_fraction*100:.1f}%")
    assert fill.n_cells > 10
    # Paper reaches 17-27% with h much smaller than the vessel radius;
    # at this demo's coarse h the same algorithm lands in the upper
    # single digits. The bench asserts a meaningful nonzero fraction and
    # all structural invariants of the algorithm.
    assert 0.05 < fill.volume_fraction < 0.45
    # radii within the algorithm's band
    r0 = 0.35 * 0.72
    assert np.all(fill.radii <= 2.0 * r0 + 1e-9)
    # all centers inside the lumen with clearance
    assert np.all(net.signed_distance(fill.centers) < 0)
    # no cell-cell interpenetration in the placed configuration
    meshes = [cell_collision_mesh(c, i) for i, c in enumerate(fill.cells)]
    pairs = candidate_object_pairs(meshes, [None] * len(meshes), 0.0)
    contacts = compute_contacts(meshes, pairs, contact_eps=0.0)
    worst = min((c.volume for c in contacts), default=0.0)
    assert worst > -1e-3  # interference-free (up to mesh tolerance)

"""Per-component time breakdown of the reference 6-cell order-8 scene.

This is the perf-trajectory benchmark: it times full `Simulation.step`
calls on the standard 6-cell order-8 free-space `DirectBackend` scene
(bending + tension + gravity, collisions on) and writes ``BENCH_step.json``
with the measured ms/step, the :class:`ComponentTimers` per-category
breakdown, and the recorded baseline from the previous PR so speedups are
visible across the repo history.

Run:  PYTHONPATH=src python benchmarks/bench_step_breakdown.py
      [--steps N] [--reduced] [--out PATH]

``--reduced`` runs a 2-cell order-6 variant for CI smoke runs.
"""
from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.config import ReproConfig
from repro.core.simulation import Simulation
from repro.physics.terms import Bending, Gravity, Tension
from repro.surfaces import biconcave_rbc

#: ms/step measured for this scene at the end of PR 1 (DirectBackend,
#: evaluator caching in place but the per-call synthesis hot loops
#: intact) on PR 1's benchmark host.
PR1_BASELINE_MS = 406.0

#: The same PR 1 code measured on the PR 2 container (5 steps) — the
#: like-for-like "before" of the PR 2 operator-precomputation work, with
#: its per-component breakdown.
BEFORE = {
    "ms_per_step": 2384.7,
    "breakdown_ms_per_step": {"COL": 83.0, "BIE-solve": 0.0, "BIE-FMM": 0.0,
                              "Other-FMM": 300.9, "Other": 2000.5},
}


def build_scene(order: int = 8, ncells: int = 6) -> Simulation:
    """The reference scene: ``ncells`` RBCs on a close-packed lattice."""
    spacing = 2.4  # equatorial radius 1.0 -> neighbours inside the near zone
    cells = []
    for k in range(ncells):
        i, j = divmod(k, 2)
        center = (spacing * i, spacing * j, 0.15 * (-1.0) ** k)
        cells.append(biconcave_rbc(1.0, center=center, order=order))
    cfg = ReproConfig(dt=0.05, viscosity=1.0,
                      forces=[Bending(0.01), Tension(),
                              Gravity(0.5, (0.0, 0.0, -1.0))],
                      backend="direct", with_collisions=True)
    return Simulation(cells, config=cfg)


def run(steps: int, reduced: bool, out_path: str) -> dict:
    order, ncells = (6, 2) if reduced else (8, 6)
    sim = build_scene(order=order, ncells=ncells)
    t0 = time.perf_counter()
    sim.run(steps)
    elapsed = time.perf_counter() - t0
    ms_per_step = 1e3 * elapsed / steps
    breakdown = {k: 1e3 * v / steps
                 for k, v in sim.timers.breakdown().items()}
    result = {
        "scene": {"order": order, "ncells": ncells, "backend": "direct",
                  "steps": steps, "reduced": reduced},
        "pr1_baseline_ms_per_step": PR1_BASELINE_MS,
        "before": None if reduced else BEFORE,
        "ms_per_step": round(ms_per_step, 2),
        "speedup_vs_before": (round(BEFORE["ms_per_step"] / ms_per_step, 2)
                              if not reduced else None),
        "breakdown_ms_per_step": {k: round(v, 2)
                                  for k, v in breakdown.items()},
        "final_centroids": [c.centroid().tolist() for c in sim.cells],
    }
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)
    return result


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=5)
    ap.add_argument("--reduced", action="store_true",
                    help="2-cell order-6 smoke variant (CI)")
    ap.add_argument("--out", default="BENCH_step.json")
    args = ap.parse_args()
    result = run(args.steps, args.reduced, args.out)
    print(json.dumps(result, indent=2))
    if not args.reduced:
        print(f"\n{result['ms_per_step']:.0f} ms/step "
              f"(before: {BEFORE['ms_per_step']:.0f} ms/step on this host, "
              f"{result['speedup_vs_before']:.1f}x)")


if __name__ == "__main__":
    main()

"""Per-component time breakdown of the reference 6-cell order-8 scene.

This is the perf-trajectory benchmark: it times full `Simulation.step`
calls on the standard 6-cell order-8 free-space `DirectBackend` scene
(bending + tension + gravity, collisions on) and writes ``BENCH_step.json``
with the measured ms/step, the :class:`ComponentTimers` per-category
breakdown — including the ``Tension`` / ``Implicit`` per-cell solve
categories — and the recorded baselines from earlier PRs so speedups are
visible across the repo history.

Each scene is run twice: at the default numerics (exact per-step operator
reassembly, ``selfop_refresh_interval=1``) and at the amortized profile
(``selfop_refresh_interval=4``: full reassembly of the singular self-op
and of the factorized tension/implicit operators every 4th step, the
first-order geometric correction in between). The amortized row reports
the max trajectory deviation against the default run over the same steps
so the speed/accuracy trade is recorded next to the timing.

Run:  PYTHONPATH=src python benchmarks/bench_step_breakdown.py
      [--steps N] [--reduced | --all] [--out PATH] [--workers N]
      [--workers-sweep] [--backends] [--check-against BASELINE.json]

``--reduced`` runs a 2-cell order-6 variant for CI smoke runs; ``--all``
runs both variants into one file (the committed-baseline format).

Each scene also records a ``selfop_assembly`` section: the median
wall-clock of one *full reassembly* of every cell's singular
self-interaction operator under the fused route (per cell, as the
stepper runs it in ``selfop_assembly="fused"``) and under the
block-circulant route (stacked over the same-order group, as the stepper
runs it at the default ``"auto"``), plus their ratio. The regression
gate additionally checks both the circulant row's absolute time and the
fused/circulant speedup ratio against the committed baseline, so the
>= 2x advantage the circulant assembly was landed for stays pinned.
``--workers N`` adds a threaded-executor row per scene (default
numerics on the ``"thread"`` executor with N workers) and records its
trajectory deviation against the serial run — the executor contract
makes that deviation exactly 0.0, so the row doubles as a determinism
check. ``--workers-sweep`` times the ``thread`` *and* ``process`` executors at
workers in {1, 2, 4, 8} and records ms/step per executor per worker
count — the data behind the ``NumericsOptions.workers`` policy
(``workers="auto"`` resolves to ``min(cpu_count, ncells)``; on a
single-core host every sweep row degenerates to serial dispatch, which
is exactly what the committed numbers should show; see the field's
docstring). ``--backends`` adds an
interaction-backend comparison row (``backend_compare``): the stacked
``cell_cell`` sum of a many-cell lattice timed under ``direct``,
``treecode`` and ``fmm`` with each accelerated backend's relative error
against ``direct`` — 64 cells at order 8 on the full variant, 16 cells
at order 6 on the reduced (CI) variant. ``--check-against`` compares the
default-config (serial) ms/step of the matching scene against a
previously committed ``BENCH_step.json`` and exits nonzero on a
regression beyond ``REGRESSION_TOLERANCE``; the ``fmm`` comparison time
is gated the same way (the O(N) backend must not quietly regress), while
the threaded and workers-sweep rows are informational and never gated
(thread scaling is host-dependent).

Each scene also records a ``resilience_overhead`` row: ms/step with the
transactional-stepping layer (snapshot + health sentinel,
``ResilienceOptions.enabled``) off vs a second warm run with it on.
Under ``--check-against`` the overhead is gated *absolutely* (no
baseline entry needed) at ``RESILIENCE_OVERHEAD_LIMIT`` (3%) of the raw
ms/step, and the on/off trajectory deviation — pinned bit-identical for
healthy runs — must be exactly 0.0.
"""
from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.config import NumericsOptions, ReproConfig, ResilienceOptions
from repro.core.cellbatch import CellBatch
from repro.core.simulation import Simulation
from repro.physics.terms import Bending, Gravity, Tension
from repro.surfaces import biconcave_rbc
from repro.vesicle import SingularSelfInteraction

#: ms/step measured for this scene at the end of PR 1 (DirectBackend,
#: evaluator caching in place but the per-call synthesis hot loops
#: intact) on PR 1's benchmark host.
PR1_BASELINE_MS = 406.0

#: The PR 1 code measured on the PR 2 container (5 steps) — the
#: like-for-like "before" of the PR 2 operator-precomputation work.
PR2_BEFORE = {
    "ms_per_step": 2384.7,
    "breakdown_ms_per_step": {"COL": 83.0, "BIE-solve": 0.0, "BIE-FMM": 0.0,
                              "Other-FMM": 300.9, "Other": 2000.5},
}

#: The PR 2 code measured on the PR 3 container (5 steps) — the
#: like-for-like "before" of the PR 3 direct-solve / amortized-refresh
#: work, with its per-component breakdown.
BEFORE = {
    "ms_per_step": 396.4,
    "breakdown_ms_per_step": {"COL": 30.3, "BIE-solve": 0.0, "BIE-FMM": 0.0,
                              "Other-FMM": 91.2, "Other": 274.8},
}

#: --check-against fails when ms/step exceeds the committed baseline by
#: more than this factor.
REGRESSION_TOLERANCE = 1.25

#: selfop/factorization refresh interval of the amortized profile.
AMORTIZED_INTERVAL = 4


def build_scene(order: int = 8, ncells: int = 6,
                selfop_refresh_interval: int = 1,
                executor: str = "serial", workers: int = 1,
                resilience_on: bool = True) -> Simulation:
    """The reference scene: ``ncells`` RBCs on a close-packed lattice
    (spacing 2.4: equatorial radius 1.0 -> neighbours in the near zone)."""
    cells = _scene_cells(order, ncells)
    cfg = ReproConfig(dt=0.05, viscosity=1.0,
                      forces=[Bending(0.01), Tension(),
                              Gravity(0.5, (0.0, 0.0, -1.0))],
                      backend="direct", with_collisions=True,
                      resilience=ResilienceOptions(enabled=resilience_on),
                      numerics=NumericsOptions(
                          selfop_refresh_interval=selfop_refresh_interval,
                          executor=executor, workers=workers))
    return Simulation(cells, config=cfg)


def _scene_cells(order: int, ncells: int):
    spacing = 2.4
    return [biconcave_rbc(
        1.0, center=(spacing * (k // 2), spacing * (k % 2),
                     0.15 * (-1.0) ** k), order=order)
        for k in range(ncells)]


def bench_selfop_assembly(order: int, ncells: int, reps: int = 9) -> dict:
    """Median full-reassembly time of the scene's self-operators per
    assembly route (the ``full``-refresh component the amortization
    interval spreads out; the dominant per-step cost before PR 5)."""
    cells = _scene_cells(order, ncells)
    fused = [SingularSelfInteraction(c, assembly="fused") for c in cells]
    circ = [SingularSelfInteraction(c, assembly="circulant") for c in cells]
    batch = CellBatch(cells)

    def timed(fn):
        samples = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            samples.append(1e3 * (time.perf_counter() - t0))
        return round(statistics.median(samples), 2)

    def circulant_pass():
        # the stepper's default path: one stacked assembly per
        # same-order group, consumed by the per-cell refreshes
        batch.assemble_selfops(circ, range(ncells))
        for op in circ:
            op.refresh(full=True)

    fused_ms = timed(lambda: [op.refresh(full=True) for op in fused])
    circulant_ms = timed(circulant_pass)
    return {
        "reps": reps,
        "fused_ms": fused_ms,
        "circulant_ms": circulant_ms,
        "speedup_vs_fused": round(fused_ms / circulant_ms, 2),
    }


#: Worker counts of the ``--workers-sweep`` rows.
WORKERS_SWEEP = (1, 2, 4, 8)


def _resilience_overhead(order: int, ncells: int, steps: int) -> dict:
    """Cost of the transactional step on a healthy run: ms/step with the
    resilience layer off, then a *second warm* run with it on (the
    ordering keeps both measurements on fully warmed library/OS caches;
    the scene's first on-run already ran above). Healthy transactional
    steps are pinned bit-identical to raw stepping, so the row also
    records the trajectory deviation — exactly 0.0 by contract."""
    sim_off, ms_off, _ = _timed_run(order, ncells, steps, 1,
                                    resilience_on=False)
    sim_on, ms_on, _ = _timed_run(order, ncells, steps, 1)
    deviation = max(float(np.abs(a.X - b.X).max())
                    for a, b in zip(sim_off.cells, sim_on.cells))
    overhead = ms_on - ms_off
    return {
        "ms_per_step_off": ms_off,
        "ms_per_step_on": ms_on,
        "overhead_ms": round(overhead, 2),
        "overhead_frac": round(overhead / ms_off, 4),
        "limit_frac": RESILIENCE_OVERHEAD_LIMIT,
        "max_traj_deviation_vs_off": deviation,
    }


def backend_compare(order: int, ncells: int, seed: int = 3) -> dict:
    """Time ``prepare + cell_cell`` of every interaction backend on an
    ``ncells``-cell lattice with a fixed random force density, and
    measure the accelerated backends' error against ``direct``."""
    from repro.core.interactions import make_backend

    rng = np.random.default_rng(seed)
    spacing = 2.4
    cells = [biconcave_rbc(
        1.0, center=(spacing * (k % 4), spacing * ((k // 4) % 4),
                     spacing * (k // 16) + 0.05 * (-1.0) ** k),
        order=order) for k in range(ncells)]
    forces = [rng.normal(size=(c.n_points, 3)) for c in cells]
    out = {"order": order, "ncells": ncells}
    results = {}
    for name in ("direct", "treecode", "fmm"):
        be = make_backend(name).bind(cells, 1.0)
        be.prepare(forces)          # warm the per-cell evaluator caches
        t0 = time.perf_counter()
        be.prepare(forces)
        results[name] = be.cell_cell()
        out[name + "_ms"] = round(1e3 * (time.perf_counter() - t0), 1)
    ref = results["direct"]
    norm = sum(float(np.linalg.norm(y)) ** 2 for y in ref) ** 0.5
    for name in ("treecode", "fmm"):
        err = sum(float(np.linalg.norm(x - y)) ** 2
                  for x, y in zip(results[name], ref)) ** 0.5
        out[name + "_rel_vs_direct"] = float(err / norm)
    return out


#: the sentinel-overhead gate: the transactional step (snapshot +
#: health sentinel) may cost at most this fraction of the raw ms/step,
#: with RESILIENCE_ABS_SLACK_MS of absolute headroom for scenes so small
#: the difference of two timings is noise-level.
RESILIENCE_OVERHEAD_LIMIT = 0.03
RESILIENCE_ABS_SLACK_MS = 0.5


def _timed_run(order: int, ncells: int, steps: int, interval: int,
               executor: str = "serial", workers: int = 1,
               resilience_on: bool = True):
    sim = build_scene(order=order, ncells=ncells,
                      selfop_refresh_interval=interval,
                      executor=executor, workers=workers,
                      resilience_on=resilience_on)
    t0 = time.perf_counter()
    sim.run(steps)
    elapsed = time.perf_counter() - t0
    breakdown = {k: round(1e3 * v / steps, 2)
                 for k, v in sim.timers.breakdown().items()}
    return sim, round(1e3 * elapsed / steps, 2), breakdown


def run_scene(steps: int, reduced: bool, workers: int = 0,
              workers_sweep: bool = False, backends: bool = False) -> dict:
    order, ncells = (6, 2) if reduced else (8, 6)
    sim, ms, breakdown = _timed_run(order, ncells, steps, 1)
    sim_a, ms_a, breakdown_a = _timed_run(order, ncells, steps,
                                          AMORTIZED_INTERVAL)
    deviation = max(float(np.abs(a.X - b.X).max())
                    for a, b in zip(sim.cells, sim_a.cells))
    out = {
        "scene": {"order": order, "ncells": ncells, "backend": "direct",
                  "steps": steps, "reduced": reduced},
        "ms_per_step": ms,
        "breakdown_ms_per_step": breakdown,
        "amortized": {
            "selfop_refresh_interval": AMORTIZED_INTERVAL,
            "ms_per_step": ms_a,
            "breakdown_ms_per_step": breakdown_a,
            "max_traj_deviation_vs_default": deviation,
        },
        "final_centroids": [c.centroid().tolist() for c in sim.cells],
        "selfop_assembly": bench_selfop_assembly(order, ncells),
        "resilience_overhead": _resilience_overhead(order, ncells, steps),
    }
    if workers > 0:
        sim_t, ms_t, breakdown_t = _timed_run(order, ncells, steps, 1,
                                              executor="thread",
                                              workers=workers)
        dev_t = max(float(np.abs(a.X - b.X).max())
                    for a, b in zip(sim.cells, sim_t.cells))
        out["threaded"] = {
            "workers": workers,
            "ms_per_step": ms_t,
            "breakdown_ms_per_step": breakdown_t,
            # the executor contract: gathered-by-index per-cell tasks
            # make the threaded trajectory bit-identical to serial.
            "max_traj_deviation_vs_serial": dev_t,
        }
    if workers_sweep:
        sweep = {}
        for executor in ("thread", "process"):
            row = {}
            for w in WORKERS_SWEEP:
                _, ms_w, _ = _timed_run(order, ncells, steps, 1,
                                        executor=executor, workers=w)
                row[str(w)] = ms_w
            sweep[executor] = row
        out["workers_sweep_ms_per_step"] = sweep
    if backends:
        out["backend_compare"] = backend_compare(
            *((6, 16) if reduced else (8, 64)))
    return out


def run(steps: int, variants: list[bool], out_path: str,
        workers: int = 0, workers_sweep: bool = False,
        backends: bool = False) -> dict:
    result = {
        "pr1_baseline_ms_per_step": PR1_BASELINE_MS,
        "pr2_before": PR2_BEFORE,
        "before": BEFORE,
        "runs": {},
    }
    for reduced in variants:
        key = "reduced" if reduced else "full"
        result["runs"][key] = run_scene(steps, reduced, workers=workers,
                                        workers_sweep=workers_sweep,
                                        backends=backends)
    full = result["runs"].get("full")
    if full is not None:
        result["speedup_vs_before_default"] = round(
            BEFORE["ms_per_step"] / full["ms_per_step"], 2)
        result["speedup_vs_before_amortized"] = round(
            BEFORE["ms_per_step"] / full["amortized"]["ms_per_step"], 2)
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2)
    return result


def check_against(result: dict, baseline_path: str,
                  tolerance: float = REGRESSION_TOLERANCE) -> int:
    """Regression gate: compare each run against the committed baseline.

    The committed numbers are host-specific, so the gate is only
    meaningful on hosts comparable to the one that wrote the baseline;
    ``tolerance`` (``--tolerance``) is the knob for noisier runners.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for key, run_ in result["runs"].items():
        base = baseline.get("runs", {}).get(key)
        if base is None:
            print(f"[check] no baseline for scene {key!r}; skipping")
            continue
        limit = tolerance * base["ms_per_step"]
        ok = run_["ms_per_step"] <= limit
        print(f"[check] {key}: {run_['ms_per_step']:.1f} ms/step vs "
              f"baseline {base['ms_per_step']:.1f} (limit {limit:.1f}) "
              f"{'OK' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(key)
        sa, sa_base = run_.get("selfop_assembly"), base.get("selfop_assembly")
        if sa is not None and sa_base is not None:
            limit = tolerance * sa_base["circulant_ms"]
            ok = sa["circulant_ms"] <= limit
            print(f"[check] {key} circulant assembly: "
                  f"{sa['circulant_ms']:.1f} ms vs baseline "
                  f"{sa_base['circulant_ms']:.1f} (limit {limit:.1f}) "
                  f"{'OK' if ok else 'REGRESSION'}")
            if not ok:
                failures.append(f"{key}:selfop_assembly")
            # the ratio pins the advantage the circulant route was landed
            # for directly, but it divides two noisy timings, so its
            # floor gets *squared* tolerance headroom (anticorrelated
            # noise within each row's own 25% limit moves the ratio by up
            # to ~tolerance^2) and is enforced only where the baseline
            # advantage exceeds the tolerance (on the reduced smoke scene
            # the routes are within ~25% of each other, so a floor would
            # degenerate to "never tie" and flake on loaded CI runners)
            if sa_base["speedup_vs_fused"] > tolerance:
                floor = sa_base["speedup_vs_fused"] / tolerance ** 2
                ok = sa["speedup_vs_fused"] >= floor
                print(f"[check] {key} circulant-vs-fused advantage: "
                      f"{sa['speedup_vs_fused']:.2f}x vs baseline "
                      f"{sa_base['speedup_vs_fused']:.2f}x "
                      f"(floor {floor:.2f}x) "
                      f"{'OK' if ok else 'REGRESSION'}")
                if not ok:
                    failures.append(f"{key}:selfop_speedup")
        ro = run_.get("resilience_overhead")
        if ro is not None:
            # absolute gate (no baseline needed): the sentinel may cost
            # at most RESILIENCE_OVERHEAD_LIMIT of the raw ms/step, with
            # a small absolute slack for noise-level scenes.
            limit = max(RESILIENCE_OVERHEAD_LIMIT * ro["ms_per_step_off"],
                        RESILIENCE_ABS_SLACK_MS)
            ok = ro["overhead_ms"] <= limit
            print(f"[check] {key} resilience overhead: "
                  f"{ro['overhead_ms']:+.2f} ms/step on "
                  f"{ro['ms_per_step_off']:.1f} (limit {limit:.2f}) "
                  f"{'OK' if ok else 'REGRESSION'}")
            if not ok:
                failures.append(f"{key}:resilience_overhead")
            if ro["max_traj_deviation_vs_off"] != 0.0:
                print(f"[check] {key} resilience bit-identity: deviation "
                      f"{ro['max_traj_deviation_vs_off']:.1e} != 0 "
                      "REGRESSION")
                failures.append(f"{key}:resilience_bit_identity")
        bc, bc_base = run_.get("backend_compare"), base.get("backend_compare")
        if bc is not None and bc_base is not None:
            limit = tolerance * bc_base["fmm_ms"]
            ok = bc["fmm_ms"] <= limit
            print(f"[check] {key} fmm backend_compare: "
                  f"{bc['fmm_ms']:.0f} ms vs baseline "
                  f"{bc_base['fmm_ms']:.0f} (limit {limit:.0f}) "
                  f"{'OK' if ok else 'REGRESSION'}")
            if not ok:
                failures.append(f"{key}:fmm_backend")
    return 1 if failures else 0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=5)
    ap.add_argument("--reduced", action="store_true",
                    help="2-cell order-6 smoke variant (CI)")
    ap.add_argument("--all", action="store_true",
                    help="run both variants (committed-baseline format)")
    ap.add_argument("--out", default="BENCH_step.json")
    ap.add_argument("--workers", type=int, default=0, metavar="N",
                    help="also time a thread-executor row with N workers "
                         "(0 = skip); records its (zero) trajectory "
                         "deviation vs serial, never gated")
    ap.add_argument("--workers-sweep", action="store_true",
                    help="time the thread and process executors at workers "
                         f"in {WORKERS_SWEEP} (informational, never gated)")
    ap.add_argument("--backends", action="store_true",
                    help="add the direct/treecode/fmm cell_cell "
                         "comparison row (64 cells full / 16 reduced)")
    ap.add_argument("--check-against", default=None, metavar="BASELINE",
                    help="fail if ms/step regresses beyond --tolerance x "
                         "this BENCH_step.json")
    ap.add_argument("--tolerance", type=float, default=REGRESSION_TOLERANCE,
                    help="regression-gate factor (default %(default)s)")
    args = ap.parse_args()
    variants = [False, True] if args.all else [args.reduced]
    result = run(args.steps, variants, args.out, workers=args.workers,
                 workers_sweep=args.workers_sweep, backends=args.backends)
    print(json.dumps(result, indent=2))
    full = result["runs"].get("full")
    if full is not None:
        print(f"\ndefault {full['ms_per_step']:.0f} ms/step, amortized "
              f"(k={AMORTIZED_INTERVAL}) "
              f"{full['amortized']['ms_per_step']:.0f} ms/step "
              f"(PR 2 code on this host: {BEFORE['ms_per_step']:.0f}; "
              f"{result['speedup_vs_before_default']:.2f}x / "
              f"{result['speedup_vs_before_amortized']:.2f}x)")
    for key, run_ in result["runs"].items():
        threaded = run_.get("threaded")
        if threaded is not None:
            print(f"threaded[{key}] workers={threaded['workers']}: "
                  f"{threaded['ms_per_step']:.0f} ms/step, deviation vs "
                  f"serial {threaded['max_traj_deviation_vs_serial']:.1e}")
        sa = run_.get("selfop_assembly")
        if sa is not None:
            print(f"selfop assembly[{key}]: fused {sa['fused_ms']:.1f} ms, "
                  f"circulant {sa['circulant_ms']:.1f} ms "
                  f"({sa['speedup_vs_fused']:.2f}x)")
        ro = run_.get("resilience_overhead")
        if ro is not None:
            print(f"resilience overhead[{key}]: "
                  f"{ro['ms_per_step_off']:.1f} ms/step raw -> "
                  f"{ro['ms_per_step_on']:.1f} transactional "
                  f"({ro['overhead_ms']:+.2f} ms, "
                  f"{100 * ro['overhead_frac']:+.2f}%), deviation "
                  f"{ro['max_traj_deviation_vs_off']:.1e}")
        sweep = run_.get("workers_sweep_ms_per_step")
        if sweep is not None:
            for executor, row in sweep.items():
                print(f"workers sweep[{key}][{executor}]: " + ", ".join(
                    f"{w}: {ms:.0f} ms/step" for w, ms in row.items()))
        bc = run_.get("backend_compare")
        if bc is not None:
            print(f"backends[{key}] ({bc['ncells']} cells, order "
                  f"{bc['order']}): direct {bc['direct_ms']:.0f} ms, "
                  f"treecode {bc['treecode_ms']:.0f} ms "
                  f"(rel {bc['treecode_rel_vs_direct']:.1e}), "
                  f"fmm {bc['fmm_ms']:.0f} ms "
                  f"(rel {bc['fmm_rel_vs_direct']:.1e})")
    if args.check_against:
        sys.exit(check_against(result, args.check_against, args.tolerance))


if __name__ == "__main__":
    main()

"""Shared measurement harness behind the scaling benches' CLIs.

``bench_fig4_strong_scaling.py`` and ``bench_fig5_weak_scaling_skx.py``
keep their pytest-benchmark faces (the paper-scale model tables), and
gain a ``__main__`` that *measures* the process executor on this host
and compares against the same :class:`repro.scaling.ComponentModel`
instantiated with a local machine model. Both write their section into
one committed ``BENCH_scaling.json``.

The measured rows run the reference free-space lattice (direct backend,
collisions on) once serially and once per worker count on the
``"process"`` executor, and record:

- wall-clock ms/step and the speedup/efficiency vs the serial run;
- the max trajectory deviation vs serial — **exactly 0.0** by the
  executor contract; this, not speedup, is what CI gates (a single-core
  container cannot exhibit parallel speedup, and the committed numbers
  must say so honestly);
- the process pool's communication ledger (scatter/ghost/gather bytes
  priced by :class:`repro.runtime.CommLedger`), per step;
- the model-predicted efficiency at the same rank count, from the
  calibrated per-unit costs, the measured Morton-partition imbalance
  curve, and a local machine model whose alpha/beta price the fork
  pool's per-message dispatch overhead and pickle bandwidth.
"""
from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.config import NumericsOptions, ReproConfig
from repro.core.simulation import Simulation
from repro.physics.terms import Bending, Gravity, Tension
from repro.scaling import MachineModel, calibrate_costs
from repro.scaling.harness import measure_imbalance_curve
from repro.scaling.perfmodel import ComponentModel, Workload
from repro.surfaces import biconcave_rbc

#: One rank per "node"; ``node_speed`` is relative to this same host
#: (the costs are calibrated here too, so 1.0). ``alpha`` is the
#: per-message dispatch overhead of the fork pool (apply_async + queue
#: round trip), ``beta`` the effective pickle bandwidth of numpy
#: payloads through the pipe.
LOCAL = MachineModel(name="LOCAL", cores_per_node=1, node_speed=1.0,
                     alpha=2.0e-4, beta=0.8e9, collective_factor=1.0)

#: Components that exist in the measured free-space scene (no vessel
#: patches, so the BIE components are structurally zero there and are
#: excluded from the model totals compared against measurement).
SCENE_COMPONENTS = ("COL", "Other-FMM", "Other")


def build_scene(ncells: int, order: int, executor: str = "serial",
                workers: int = 1) -> Simulation:
    """The reference lattice of ``bench_step_breakdown`` at an arbitrary
    cell count (spacing 2.4, alternating z-offset, collisions on)."""
    spacing = 2.4
    cells = [biconcave_rbc(
        1.0, center=(spacing * (k // 2), spacing * (k % 2),
                     0.15 * (-1.0) ** k), order=order)
        for k in range(ncells)]
    cfg = ReproConfig(dt=0.05, viscosity=1.0,
                      forces=[Bending(0.01), Tension(),
                              Gravity(0.5, (0.0, 0.0, -1.0))],
                      backend="direct", with_collisions=True,
                      numerics=NumericsOptions(executor=executor,
                                               workers=workers))
    return Simulation(cells, config=cfg)


def worker_counts(ranks: int) -> list[int]:
    """1, 2, 4, ... up to ``ranks`` (``ranks`` always included)."""
    counts = []
    w = 1
    while w < ranks:
        counts.append(w)
        w *= 2
    counts.append(ranks)
    return counts


def _timed_run(sim: Simulation, steps: int) -> float:
    t0 = time.perf_counter()
    sim.run(steps)
    return 1e3 * (time.perf_counter() - t0) / steps


def _deviation(a: Simulation, b: Simulation) -> float:
    return max(float(np.abs(x.X - y.X).max())
               for x, y in zip(a.cells, b.cells))


def _ledger_row(sim: Simulation, steps: int) -> dict:
    ledger = getattr(sim.stepper.executor, "ledger", None)
    if ledger is None:
        return {}
    return {
        "comm_bytes_per_step": round(ledger.total_bytes() / steps),
        "comm_messages_per_step": round(ledger.total_messages() / steps),
        "comm_bytes_by_phase_op": {
            f"{ph}/{op}": s.bytes
            for (ph, op), s in sorted(ledger.stats.items())},
    }


def local_model() -> ComponentModel:
    """ComponentModel for *this host*: calibrated per-unit costs, the
    measured Morton imbalance curve, and the LOCAL machine model."""
    costs = calibrate_costs(quick=True)
    return ComponentModel(costs, LOCAL,
                          imbalance=measure_imbalance_curve())


def _scene_workload(ncells: int, order: int) -> Workload:
    cell = biconcave_rbc(1.0, order=order)
    return Workload(n_rbc=ncells, n_patches=0,
                    points_per_rbc=cell.n_points,
                    collision_points_per_rbc=8 * cell.n_points,
                    volume_fraction=0.0)


def model_scene_time(model: ComponentModel, ncells: int, order: int,
                     ranks: int) -> float:
    """Predicted per-step seconds of the measured scene's components."""
    t = model.predict(_scene_workload(ncells, order), cores=ranks)
    return sum(t[k] for k in SCENE_COMPONENTS)


def measure_rows(ncells_of, steps: int, ranks: int, order: int,
                 weak: bool = False) -> dict:
    """Serial baseline + one ``"process"`` row per worker count.

    ``ncells_of(w)`` maps a worker count to the scene size (constant for
    strong scaling, proportional for weak scaling). Every process row is
    bit-compared against a serial run of the *same* scene.
    """
    model = local_model()
    n0 = ncells_of(1)
    serial = build_scene(n0, order)
    ms0 = _timed_run(serial, steps)
    t_model0 = model_scene_time(model, n0, order, ranks=1)
    serial_by_size = {n0: serial}
    rows = []
    for w in worker_counts(ranks):
        n = ncells_of(w)
        ref = serial_by_size.get(n)
        if ref is None:
            ref = build_scene(n, order)
            _timed_run(ref, steps)
            serial_by_size[n] = ref
        sim = build_scene(n, order, executor="process", workers=w)
        ms = _timed_run(sim, steps)
        t_model = model_scene_time(model, n, order, ranks=w)
        if weak:
            eff = ms0 / ms
            model_eff = t_model0 / t_model
        else:
            eff = ms0 / (ms * w)
            model_eff = t_model0 / (t_model * w)
        row = {
            "workers": w,
            "ncells": n,
            "ms_per_step": round(ms, 2),
            "speedup_vs_serial": round(ms0 / ms, 3),
            "efficiency": round(eff, 3),
            "model_efficiency": round(model_eff, 3),
            "max_traj_deviation_vs_serial": _deviation(ref, sim),
        }
        row.update(_ledger_row(sim, steps))
        rows.append(row)
    return {
        "scene": {"order": order, "backend": "direct", "steps": steps,
                  "weak": weak},
        "serial_ms_per_step": round(ms0, 2),
        "rows": rows,
        "model": {"machine": LOCAL.name, "alpha_s": LOCAL.alpha,
                  "beta_bytes_per_s": LOCAL.beta,
                  "components": list(SCENE_COMPONENTS)},
    }


def host_info() -> dict:
    n = os.cpu_count() or 1
    note = ("single-core container: process-pool rows cannot beat serial "
            "(dispatch + pickle overhead only); the bit-identity column "
            "is the gate here, speedup is recordable only where cores "
            "exist" if n == 1 else
            f"{n} cores: the >1.5x-at-4-workers criterion applies")
    return {"cpu_count": n, "note": note}


def check_rows(section: dict) -> list[str]:
    """The CI gate: completion + exact bit-identity, never speedup."""
    failures = []
    for row in section["rows"]:
        dev = row["max_traj_deviation_vs_serial"]
        status = "OK" if dev == 0.0 else "REGRESSION"
        print(f"[check] workers={row['workers']} ncells={row['ncells']}: "
              f"{row['ms_per_step']:.0f} ms/step, deviation {dev:.1e} "
              f"{status}")
        if dev != 0.0:
            failures.append(f"workers={row['workers']}")
    return failures


def write_section(out_path: str, name: str, payload: dict) -> dict:
    """Merge one bench's section into the shared BENCH_scaling.json."""
    doc = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            doc = json.load(fh)
    doc["host"] = host_info()
    doc[name] = payload
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc

"""A4 — ablation: broad-phase candidate counts vs contact padding.

Sec. 3.3/4: the spatial hash culls the O(N^2) pair space to the O(m)
near pairs. The bench measures candidate pair counts for a line of cells
as the contact padding grows, and verifies the cull is exact (no missed
touching pairs) and effective (far pairs culled).
"""
import numpy as np

from repro.collision import candidate_object_pairs, cell_collision_mesh
from repro.surfaces import sphere


def _run():
    # 8 cells along a line, gap 0.4 between neighbouring surfaces.
    meshes = [cell_collision_mesh(sphere(1.0, center=(2.4 * i, 0, 0), order=4), i)
              for i in range(8)]
    rows = []
    for eps in (0.05, 0.2, 0.5, 1.5):
        pairs = candidate_object_pairs(meshes, [None] * 8, eps)
        rows.append((eps, len(pairs)))
    return rows


def test_ablation_broadphase(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== A4: broad-phase candidate pairs vs contact padding ===")
    print("  (8 cells in a line, surface gaps 0.4; all-pairs would be 28)")
    for eps, n in rows:
        print(f"  eps={eps:0.2f}: {n} candidate pairs")
    counts = [n for _, n in rows]
    # monotone growth with padding, and far pairs always culled
    assert all(a <= b for a, b in zip(counts, counts[1:]))
    assert counts[0] <= 7          # only neighbours at small padding
    assert counts[-1] < 28         # never the full quadratic set
    # neighbours must be found once the padding covers the gap
    assert counts[2] >= 7

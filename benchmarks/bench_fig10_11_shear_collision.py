"""E6 — Figs. 10 & 11: two RBCs in shear flow; temporal convergence.

Paper: two vesicles in the shear flow u = [z, 0, 0]; the error of the
final centers of mass versus the time step decays as O(dt), i.e. the
contact-resolution algorithm preserves the first-order accuracy of the
locally-implicit time stepper. Scaled-down run: same scenario, smaller
spherical-harmonic orders, reference = finest dt.
"""
import numpy as np

from repro import Scenario, presets
from repro.surfaces import biconcave_rbc


def _final_centroids(dt, T=0.8, order=5):
    c1 = biconcave_rbc(radius=1.0, order=order, center=(-1.6, 0.0, 0.45))
    c2 = biconcave_rbc(radius=1.0, order=order, center=(1.6, 0.0, -0.45))

    sim = (Scenario.builder()
           .config(presets.shear(rate=1.0, dt=dt, bending_modulus=0.02))
           .cells([c1, c2])
           .build())
    sim.run(int(round(T / dt)))
    return sim.centroids()


def _run():
    dts = [0.2, 0.1, 0.05]
    ref = _final_centroids(0.025)
    errs = [np.linalg.norm(_final_centroids(dt) - ref, axis=1).max()
            for dt in dts]
    return dts, errs


def test_fig10_11_shear_collision_convergence(benchmark):
    dts, errs = benchmark.pedantic(_run, rounds=1, iterations=1)
    rates = [np.log2(errs[i] / errs[i + 1]) for i in range(len(errs) - 1)]
    print("\n=== Figs. 10/11 reproduction (shear-flow temporal convergence) ===")
    print("paper: centroid error = O(dt) for SH orders 16 and 32")
    for dt, e in zip(dts, errs):
        print(f"  dt={dt:<6} centroid err={e:.4e}")
    print(f"  observed rates between levels: {[f'{r:.2f}' for r in rates]}")
    # First-order convergence: error decreases monotonically and the
    # average observed rate is at least ~0.5 (O(dt) modulo constants).
    assert errs[0] > errs[1] > errs[2]
    assert np.mean(rates) > 0.5

"""E2 — Fig. 5: weak scaling on SKX (4096 RBCs + 8192 patches per node).

Paper: efficiency (vs 192 cores) 1.00, 0.88, 0.81, 0.71 at 192 -> 12288
cores; volume fractions 19-27%; collision fractions 13-17%; largest run has
1,048,576 RBCs and 3,042,967,552 unknowns per step.
"""
import numpy as np

from repro.scaling import calibrate_costs, weak_scaling_table
from repro.scaling.harness import format_table

PAPER_EFF = [None, 1.00, 0.88, 0.81, 0.71]


def _run():
    costs = calibrate_costs(quick=True)
    return weak_scaling_table(costs=costs)


def test_fig5_weak_scaling_skx(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n=== Fig. 5 reproduction (weak scaling, SKX) ===")
    print(format_table(rows, weak=True))
    print("paper eff:   ", PAPER_EFF)
    print("measured eff:", [round(r.efficiency, 2) for r in rows])
    effs = [r.efficiency for r in rows[1:]]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    assert effs[-1] > 0.5
    # Largest column matches the paper's cell/patch counts.
    assert rows[-1].n_rbc == 1048576
    assert rows[-1].n_patches == 2097152
    # DOF check: 4 dof per RBC point (X + tension), 3 per vessel node:
    dof = rows[-1].n_rbc * 544 * 4 + rows[-1].n_patches * 121 * 3
    assert abs(dof - 3042967552) / 3042967552 < 0.05
